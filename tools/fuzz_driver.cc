// Differential fuzzing driver.
//
//   fuzz_driver --seed=1 --count=200 --threads=8
//   fuzz_driver --seed=123 --count=1 --dump        # reproduce + disassemble
//   fuzz_driver --spec=fuzz.json --count=500       # custom distribution
//
// Each seed generates one random program (see src/fuzz/generator.h),
// computes its reference architectural state with the in-order oracle,
// runs it through every protection policy x machine preset, and checks
// the three differential invariants (oracle equivalence, policy
// invariance, shadow drain). Failing seeds print one-line repro
// commands; the exit code is 1 when any seed failed, 0 otherwise (so
// scripts and CI see a plain pass/fail — per-seed detail lives in the
// output, and large sweeps belong to campaign_driver, which journals
// every verdict).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/cli.h"
#include "fuzz/differential.h"
#include "fuzz/generator.h"
#include "fuzz/fuzz_spec.h"
#include "isa/program.h"
#include "safespec/policy.h"
#include "sim/machine.h"
#include "trace/trace_workload.h"

namespace {

void usage(const char* prog, std::FILE* out) {
  std::fprintf(
      out,
      "usage: %s [--seed=N] [--count=N] [--spec=FILE] [--threads=N]\n"
      "          [--policies=a,b,...] [--presets=a,b,...] [--dump]\n"
      "  --seed=N          first seed (default 1)\n"
      "  --count=N         seeds to check (default 100)\n"
      "  --spec=FILE       FuzzSpec JSON shaping the program distribution\n"
      "                    (default: built-in defaults; see --print-spec)\n"
      "  --threads=N       worker threads (default: hardware concurrency)\n"
      "  --policies=...    comma-separated policy subset (default: all)\n"
      "  --presets=...     comma-separated preset subset (default: all)\n"
      "  --cores=N         cores per cell (default 1); every core runs the\n"
      "                    seed's program on private memory under the\n"
      "                    shared L2/L3, each checked against the oracle\n"
      "  --dump            disassemble each seed's program (use with a\n"
      "                    small --count when reproducing a failure)\n"
      "  --trace=FILE      with --dump: also record each seed's program,\n"
      "                    regions and pokes as a trace file (FILE for a\n"
      "                    single seed, FILE.<seed> for several); replay\n"
      "                    with anything that accepts trace:FILE\n"
      "  --print-spec      print the effective FuzzSpec JSON and exit\n",
      prog);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace safespec;

  std::uint64_t first_seed = 1;
  int count = 100;
  int threads = 0;
  bool dump = false;
  bool print_spec = false;
  std::string spec_path;
  std::string trace_path;
  fuzz::FuzzSpec spec;
  fuzz::DifferentialConfig config;

  // Every value flag accepts "--flag value" as well as "--flag=value",
  // as the hand-rolled loop always did.
  cli::FlagSet flags(usage);
  flags.u64("--seed", &first_seed, /*separated=*/true)
      .bounded_int("--count", &count, /*separated=*/true)
      .bounded_int("--threads", &threads, /*separated=*/true)
      .string("--spec", &spec_path, /*separated=*/true)
      .csv_list("--policies", &config.policies, /*separated=*/true)
      .csv_list("--presets", &config.presets, /*separated=*/true)
      .value(
          "--cores",
          [&config](const char* value) {
            config.cores = cli::parse_int_or_exit(value, "--cores");
            if (config.cores < 1 || config.cores > 64) {
              std::fprintf(stderr, "--cores=%s is out of range (1..64)\n",
                           value);
              std::exit(2);
            }
          },
          /*separated=*/true)
      .set_true("--dump", &dump)
      .string("--trace", &trace_path, /*separated=*/true)
      .set_true("--print-spec", &print_spec);
  flags.parse(argc, argv);

  if (!trace_path.empty() && !dump) {
    std::fprintf(stderr, "--trace requires --dump (it records the dumped "
                         "seeds' programs)\n");
    return 2;
  }
  try {
    if (!spec_path.empty()) spec = fuzz::FuzzSpec::from_json_file(spec_path);
    spec.validate();
    // Resolve name subsets eagerly so a typo fails before the sweep.
    for (const auto& name : config.policies) policy::named_policy(name);
    for (const auto& name : config.presets) sim::machine_preset(name);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bad configuration: %s\n", e.what());
    return 2;
  }
  if (print_spec) {
    std::fputs(spec.to_json().c_str(), stdout);
    return 0;
  }

  fuzz::FuzzReport report;
  try {
    if (dump) {
      for (int i = 0; i < count; ++i) {
        const auto fp = fuzz::generate_program(first_seed + i, spec);
        std::printf("=== seed %llu: %zu instructions, blocks:",
                    static_cast<unsigned long long>(first_seed + i),
                    fp.program.size());
        for (const auto& c : fp.classes) std::printf(" %s", c.c_str());
        std::printf(" ===\n%s", isa::to_string(fp.program).c_str());
        if (!trace_path.empty()) {
          const std::string path =
              count == 1 ? trace_path
                         : trace_path + "." + std::to_string(first_seed + i);
          trace::write_trace_file(path, trace::record_fuzz(fp));
          std::printf("trace: wrote %s\n", path.c_str());
        }
      }
    }
    report = fuzz::run_fuzz(first_seed, count, spec, config, threads);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "fuzz sweep failed: %s\n", e.what());
    return 2;
  }

  for (const auto& failure : report.failures) {
    std::printf("FAIL seed=%llu (%zu cells)\n",
                static_cast<unsigned long long>(failure.seed),
                failure.cells);
    for (const auto& violation : failure.violations) {
      std::printf("  %s\n", violation.c_str());
    }
    std::printf("  repro: %s --seed=%llu --count=1 --dump%s%s\n", argv[0],
                static_cast<unsigned long long>(failure.seed),
                spec_path.empty() ? "" : " --spec=", spec_path.c_str());
  }

  std::printf(
      "fuzz: %d seeds (%llu..%llu), %zu cells, %llu oracle instructions, "
      "%zu failures\n",
      report.count, static_cast<unsigned long long>(report.first_seed),
      static_cast<unsigned long long>(
          report.count > 0 ? report.first_seed + report.count - 1
                           : report.first_seed),
      report.total_cells,
      static_cast<unsigned long long>(report.total_committed),
      report.failures.size());

  // A plain pass/fail: anything in [2, 255] is reserved for usage and
  // harness errors (and the historical count-of-failures code collided
  // with shells' 126/127 and signal codes anyway).
  return report.failures.empty() ? 0 : 1;
}
