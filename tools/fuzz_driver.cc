// Differential fuzzing driver.
//
//   fuzz_driver --seed=1 --count=200 --threads=8
//   fuzz_driver --seed=123 --count=1 --dump        # reproduce + disassemble
//   fuzz_driver --spec=fuzz.json --count=500       # custom distribution
//
// Each seed generates one random program (see src/fuzz/generator.h),
// computes its reference architectural state with the in-order oracle,
// runs it through every protection policy x machine preset, and checks
// the three differential invariants (oracle equivalence, policy
// invariance, shadow drain). Failing seeds print one-line repro
// commands; the exit code is the number of failing seeds (capped at 125).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/json.h"
#include "fuzz/differential.h"
#include "fuzz/generator.h"
#include "fuzz/fuzz_spec.h"
#include "isa/program.h"
#include "safespec/policy.h"
#include "sim/machine.h"
#include "trace/trace_workload.h"

namespace {

/// Strict numeric flag parsing: a typo'd "--count=abc" must fail loudly,
/// not silently check zero seeds and exit green.
std::uint64_t parse_u64_arg(const char* value, const char* flag) {
  try {
    return safespec::json::parse_u64(value, flag);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n", e.what());
    std::exit(2);
  }
}

int parse_int_arg(const char* value, const char* flag) {
  const std::uint64_t v = parse_u64_arg(value, flag);
  if (v > 10'000'000) {
    std::fprintf(stderr, "%s=%s is out of range\n", flag, value);
    std::exit(2);
  }
  return static_cast<int>(v);
}

void usage(const char* prog, std::FILE* out) {
  std::fprintf(
      out,
      "usage: %s [--seed=N] [--count=N] [--spec=FILE] [--threads=N]\n"
      "          [--policies=a,b,...] [--presets=a,b,...] [--dump]\n"
      "  --seed=N          first seed (default 1)\n"
      "  --count=N         seeds to check (default 100)\n"
      "  --spec=FILE       FuzzSpec JSON shaping the program distribution\n"
      "                    (default: built-in defaults; see --print-spec)\n"
      "  --threads=N       worker threads (default: hardware concurrency)\n"
      "  --policies=...    comma-separated policy subset (default: all)\n"
      "  --presets=...     comma-separated preset subset (default: all)\n"
      "  --cores=N         cores per cell (default 1); every core runs the\n"
      "                    seed's program on private memory under the\n"
      "                    shared L2/L3, each checked against the oracle\n"
      "  --dump            disassemble each seed's program (use with a\n"
      "                    small --count when reproducing a failure)\n"
      "  --trace=FILE      with --dump: also record each seed's program,\n"
      "                    regions and pokes as a trace file (FILE for a\n"
      "                    single seed, FILE.<seed> for several); replay\n"
      "                    with anything that accepts trace:FILE\n"
      "  --print-spec      print the effective FuzzSpec JSON and exit\n",
      prog);
}

std::vector<std::string> split_csv(const std::string& text) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t comma = text.find(',', start);
    const std::size_t end = comma == std::string::npos ? text.size() : comma;
    if (end > start) out.push_back(text.substr(start, end - start));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return out;
}

bool flag_value(const char* arg, const char* name, const char** value) {
  const std::size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) == 0 && arg[len] == '=') {
    *value = arg + len + 1;
    return true;
  }
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace safespec;

  std::uint64_t first_seed = 1;
  int count = 100;
  int threads = 0;
  bool dump = false;
  bool print_spec = false;
  std::string spec_path;
  std::string trace_path;
  fuzz::FuzzSpec spec;
  fuzz::DifferentialConfig config;

  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    const char* value = nullptr;
    // "--flag value" is accepted as well as "--flag=value".
    const auto next_value = [&](const char* name) -> bool {
      if (std::strcmp(arg, name) == 0 && i + 1 < argc) {
        value = argv[++i];
        return true;
      }
      return false;
    };
    if (std::strcmp(arg, "--help") == 0 || std::strcmp(arg, "-h") == 0) {
      usage(argv[0], stdout);
      return 0;
    } else if (flag_value(arg, "--seed", &value) || next_value("--seed")) {
      first_seed = parse_u64_arg(value, "--seed");
    } else if (flag_value(arg, "--count", &value) || next_value("--count")) {
      count = parse_int_arg(value, "--count");
    } else if (flag_value(arg, "--threads", &value) || next_value("--threads")) {
      threads = parse_int_arg(value, "--threads");
    } else if (flag_value(arg, "--spec", &value) || next_value("--spec")) {
      spec_path = value;
    } else if (flag_value(arg, "--policies", &value) || next_value("--policies")) {
      config.policies = split_csv(value);
    } else if (flag_value(arg, "--presets", &value) || next_value("--presets")) {
      config.presets = split_csv(value);
    } else if (flag_value(arg, "--cores", &value) || next_value("--cores")) {
      config.cores = parse_int_arg(value, "--cores");
      if (config.cores < 1 || config.cores > 64) {
        std::fprintf(stderr, "--cores=%s is out of range (1..64)\n", value);
        return 2;
      }
    } else if (std::strcmp(arg, "--dump") == 0) {
      dump = true;
    } else if (flag_value(arg, "--trace", &value) || next_value("--trace")) {
      trace_path = value;
    } else if (std::strcmp(arg, "--print-spec") == 0) {
      print_spec = true;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg);
      usage(argv[0], stderr);
      return 2;
    }
  }

  if (!trace_path.empty() && !dump) {
    std::fprintf(stderr, "--trace requires --dump (it records the dumped "
                         "seeds' programs)\n");
    return 2;
  }
  try {
    if (!spec_path.empty()) spec = fuzz::FuzzSpec::from_json_file(spec_path);
    spec.validate();
    // Resolve name subsets eagerly so a typo fails before the sweep.
    for (const auto& name : config.policies) policy::named_policy(name);
    for (const auto& name : config.presets) sim::machine_preset(name);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bad configuration: %s\n", e.what());
    return 2;
  }
  if (print_spec) {
    std::fputs(spec.to_json().c_str(), stdout);
    return 0;
  }

  fuzz::FuzzReport report;
  try {
    if (dump) {
      for (int i = 0; i < count; ++i) {
        const auto fp = fuzz::generate_program(first_seed + i, spec);
        std::printf("=== seed %llu: %zu instructions, blocks:",
                    static_cast<unsigned long long>(first_seed + i),
                    fp.program.size());
        for (const auto& c : fp.classes) std::printf(" %s", c.c_str());
        std::printf(" ===\n%s", isa::to_string(fp.program).c_str());
        if (!trace_path.empty()) {
          const std::string path =
              count == 1 ? trace_path
                         : trace_path + "." + std::to_string(first_seed + i);
          trace::write_trace_file(path, trace::record_fuzz(fp));
          std::printf("trace: wrote %s\n", path.c_str());
        }
      }
    }
    report = fuzz::run_fuzz(first_seed, count, spec, config, threads);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "fuzz sweep failed: %s\n", e.what());
    return 2;
  }

  for (const auto& failure : report.failures) {
    std::printf("FAIL seed=%llu (%zu cells)\n",
                static_cast<unsigned long long>(failure.seed),
                failure.cells);
    for (const auto& violation : failure.violations) {
      std::printf("  %s\n", violation.c_str());
    }
    std::printf("  repro: %s --seed=%llu --count=1 --dump%s%s\n", argv[0],
                static_cast<unsigned long long>(failure.seed),
                spec_path.empty() ? "" : " --spec=", spec_path.c_str());
  }

  std::printf(
      "fuzz: %d seeds (%llu..%llu), %zu cells, %llu oracle instructions, "
      "%zu failures\n",
      report.count, static_cast<unsigned long long>(report.first_seed),
      static_cast<unsigned long long>(
          report.count > 0 ? report.first_seed + report.count - 1
                           : report.first_seed),
      report.total_cells,
      static_cast<unsigned long long>(report.total_committed),
      report.failures.size());

  const std::size_t failures = report.failures.size();
  return static_cast<int>(failures > 125 ? 125 : failures);
}
