// Campaign driver: resumable, shardable sweeps from a manifest.
//
//   campaign_driver run    --manifest=M.json --dir=DIR [--shard=K]
//   campaign_driver status --manifest=M.json --dir=DIR
//   campaign_driver merge  --manifest=M.json --dir=DIR [--out=FILE]
//   campaign_driver triage --manifest=M.json --dir=DIR [--json=FILE]
//   campaign_driver report --perf-dir=DIR [--html=FILE] [--json=FILE]
//
// `run` executes (or resumes) a campaign's work units, streaming each
// shard's results to DIR/NAME.shard<K>.jsonl with a flush per unit — a
// SIGKILLed run loses at most one in-flight line and `run` again picks
// up exactly where it stopped. N processes cover one campaign by each
// passing a distinct --shard. `merge` writes the deterministic combined
// artifact (byte-identical however the campaign was split or
// interrupted), `triage` deduplicates a fuzz campaign's failures into
// distinct groups with one repro line each (exit 1 when any seed
// failed — the CI gate), and `report` renders an HTML/JSON MIPS trend
// across a directory of perf_driver artifacts. See docs/campaigns.md.
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "campaign/campaign.h"
#include "campaign/perf_artifacts.h"
#include "campaign/report.h"
#include "campaign/triage.h"
#include "common/cli.h"

namespace {

using namespace safespec;

void usage(const char* prog, std::FILE* out) {
  std::fprintf(
      out,
      "usage: %s COMMAND [options]\n"
      "  run    --manifest=FILE --dir=DIR [--shard=K] [--threads=N]\n"
      "         [--max-units=N]\n"
      "         run (or resume) the campaign's unfinished units; with\n"
      "         --shard, only shard K (other shards' files are never\n"
      "         touched, so N processes can split one campaign);\n"
      "         --max-units stops after N new units (testing aid)\n"
      "  status --manifest=FILE --dir=DIR\n"
      "         per-shard progress\n"
      "  merge  --manifest=FILE --dir=DIR [--out=FILE]\n"
      "         combine all shard journals into one unit-sorted artifact\n"
      "         (default DIR/NAME.merged.jsonl); requires every unit done\n"
      "  triage --manifest=FILE --dir=DIR [--merged=FILE] [--json=FILE]\n"
      "         group a fuzz campaign's failing seeds by normalized\n"
      "         failure fingerprint; prints one repro per group; exit 1\n"
      "         when any seed failed\n"
      "  report --perf-dir=DIR [--html=FILE] [--json=FILE]\n"
      "         MIPS trend across a directory of perf_driver artifacts\n"
      "         (default HTML to perf_trend.html)\n",
      prog);
}

bool write_text_file(const std::string& path, const std::string& text) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return false;
  }
  std::fwrite(text.data(), 1, text.size(), f);
  std::fclose(f);
  return true;
}

struct Options {
  std::string manifest_path;
  std::string dir;
  int shard = -1;  ///< -1: every shard, sequentially
  int threads = 0;
  std::uint64_t max_units = 0;
  std::string out_path;
  std::string merged_path;
  std::string json_path;
  std::string html_path;
  std::string perf_dir;
};

campaign::Manifest load_manifest(const Options& options) {
  if (options.manifest_path.empty()) {
    std::fprintf(stderr, "need --manifest=FILE\n");
    std::exit(2);
  }
  if (options.dir.empty()) {
    std::fprintf(stderr, "need --dir=DIR\n");
    std::exit(2);
  }
  campaign::Manifest manifest =
      campaign::Manifest::from_json_file(options.manifest_path);
  manifest.validate();
  return manifest;
}

int cmd_run(const Options& options) {
  const campaign::Manifest manifest = load_manifest(options);
  std::filesystem::create_directories(options.dir);
  if (options.shard >= manifest.shards) {
    std::fprintf(stderr, "--shard=%d out of range (manifest has %d)\n",
                 options.shard, manifest.shards);
    return 2;
  }
  campaign::RunOptions run_options;
  run_options.threads = options.threads;
  run_options.max_units = options.max_units;
  campaign::RunStats total;
  const int first = options.shard >= 0 ? options.shard : 0;
  const int last = options.shard >= 0 ? options.shard : manifest.shards - 1;
  for (int shard = first; shard <= last; ++shard) {
    const campaign::RunStats stats =
        campaign::run_shard(manifest, options.dir, shard, run_options);
    // "failing" only means something for fuzz campaigns; grid units have
    // no pass/fail verdict.
    char failing[64] = "";
    if (manifest.kind == "fuzz") {
      std::snprintf(failing, sizeof failing, ", %llu failing",
                    static_cast<unsigned long long>(stats.failures));
    }
    std::printf("campaign %s shard %d/%d: %llu units run, %llu resumed "
                "(already done)%s\n",
                manifest.name.c_str(), shard, manifest.shards,
                static_cast<unsigned long long>(stats.ran),
                static_cast<unsigned long long>(stats.skipped), failing);
    total.ran += stats.ran;
    total.skipped += stats.skipped;
    total.failures += stats.failures;
  }
  char failing[80] = "";
  if (manifest.kind == "fuzz") {
    std::snprintf(failing, sizeof failing,
                  ", %llu failing (failures gate in `triage`)",
                  static_cast<unsigned long long>(total.failures));
  }
  std::printf("campaign %s: %llu units run, %llu skipped%s\n",
              manifest.name.c_str(),
              static_cast<unsigned long long>(total.ran),
              static_cast<unsigned long long>(total.skipped), failing);
  return 0;
}

int cmd_status(const Options& options) {
  const campaign::Manifest manifest = load_manifest(options);
  std::uint64_t done = 0;
  for (const campaign::ShardStatus& s :
       campaign::status(manifest, options.dir)) {
    done += s.done;
    std::printf("shard %d: %llu/%llu units%s%s\n", s.shard,
                static_cast<unsigned long long>(s.done),
                static_cast<unsigned long long>(s.expected),
                s.exists ? "" : " (no journal yet)",
                s.torn_tail ? " (torn tail — will recover on resume)" : "");
  }
  std::printf("campaign %s v%llu (%s, fingerprint %s): %llu/%llu units "
              "done\n",
              manifest.name.c_str(),
              static_cast<unsigned long long>(manifest.version),
              manifest.kind.c_str(), manifest.fingerprint().c_str(),
              static_cast<unsigned long long>(done),
              static_cast<unsigned long long>(manifest.num_units()));
  return 0;
}

int cmd_merge(const Options& options) {
  const campaign::Manifest manifest = load_manifest(options);
  const std::string out_path = options.out_path.empty()
                                   ? manifest.merged_path(options.dir)
                                   : options.out_path;
  const campaign::MergeStats stats =
      campaign::merge(manifest, options.dir, out_path);
  std::printf("merged %llu units from %d shards -> %s\n",
              static_cast<unsigned long long>(stats.units),
              stats.shards_read, out_path.c_str());
  return 0;
}

int cmd_triage(const Options& options) {
  campaign::TriageReport report;
  const campaign::Manifest* manifest_ptr = nullptr;
  campaign::Manifest manifest;
  if (!options.merged_path.empty()) {
    report = campaign::triage_merged_file(options.merged_path);
    if (!options.manifest_path.empty()) {
      manifest = campaign::Manifest::from_json_file(options.manifest_path);
      manifest_ptr = &manifest;
    }
  } else {
    manifest = load_manifest(options);
    manifest_ptr = &manifest;
    report = campaign::triage(manifest, options.dir);
  }
  std::fputs(campaign::render_triage_text(report, manifest_ptr).c_str(),
             stdout);
  if (!options.json_path.empty()) {
    if (!write_text_file(options.json_path,
                         campaign::render_triage_json(report))) {
      return 2;
    }
    std::fprintf(stderr, "wrote triage JSON to %s\n",
                 options.json_path.c_str());
  }
  return report.failures > 0 ? 1 : 0;
}

int cmd_report(const Options& options) {
  if (options.perf_dir.empty()) {
    std::fprintf(stderr, "need --perf-dir=DIR\n");
    return 2;
  }
  const std::vector<campaign::PerfRun> runs =
      campaign::load_perf_dir(options.perf_dir);
  if (runs.empty()) {
    std::fprintf(stderr, "no perf artifacts (*.json with a \"cells\" "
                         "array) in %s\n",
                 options.perf_dir.c_str());
    return 2;
  }
  const std::string html_path =
      options.html_path.empty() && options.json_path.empty()
          ? "perf_trend.html"
          : options.html_path;
  if (!html_path.empty()) {
    if (!write_text_file(html_path, campaign::render_trend_html(runs))) {
      return 2;
    }
    std::printf("wrote %s (%zu runs)\n", html_path.c_str(), runs.size());
  }
  if (!options.json_path.empty()) {
    if (!write_text_file(options.json_path,
                         campaign::render_trend_json(runs))) {
      return 2;
    }
    std::printf("wrote %s (%zu runs)\n", options.json_path.c_str(),
                runs.size());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    usage(argv[0], stderr);
    return 2;
  }
  const std::string command = argv[1];
  if (command == "--help" || command == "-h") {
    usage(argv[0], stdout);
    return 0;
  }

  Options options;
  int shard = -1;
  cli::FlagSet flags(usage);
  flags.string("--manifest", &options.manifest_path, /*separated=*/true)
      .string("--dir", &options.dir, /*separated=*/true)
      .bounded_int("--shard", &shard, /*separated=*/true)
      .bounded_int("--threads", &options.threads, /*separated=*/true)
      .u64("--max-units", &options.max_units, /*separated=*/true)
      .string("--out", &options.out_path, /*separated=*/true)
      .string("--merged", &options.merged_path, /*separated=*/true)
      .string("--json", &options.json_path, /*separated=*/true)
      .string("--html", &options.html_path, /*separated=*/true)
      .string("--perf-dir", &options.perf_dir, /*separated=*/true);
  // Parse everything after the command (argv[0] kept for usage lines).
  std::vector<char*> rest;
  rest.push_back(argv[0]);
  for (int i = 2; i < argc; ++i) rest.push_back(argv[i]);
  flags.parse(static_cast<int>(rest.size()), rest.data());
  options.shard = shard;

  try {
    if (command == "run") return cmd_run(options);
    if (command == "status") return cmd_status(options);
    if (command == "merge") return cmd_merge(options);
    if (command == "triage") return cmd_triage(options);
    if (command == "report") return cmd_report(options);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "campaign_driver %s: %s\n", command.c_str(),
                 e.what());
    return 2;
  }
  std::fprintf(stderr, "unknown command: %s\n", command.c_str());
  usage(argv[0], stderr);
  return 2;
}
