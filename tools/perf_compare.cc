// Simulation-throughput regression gate (CI companion to perf_driver).
//
//   perf_compare BASE.json HEAD.json [--max-drop=0.10] [--summary=FILE]
//                [--waived]
//
// Diffs two BENCH_sim_throughput.json documents cell by cell and prints a
// markdown table (also appended to --summary for the GitHub step
// summary). The gate's actionable signature is deliberately narrow:
//
//   * every matched cell's cycle count is bit-identical (the simulated
//     machine did exactly the same work), AND
//   * the matched-cell aggregate MIPS dropped by more than --max-drop
//     (default 10%).
//
// That combination can only mean the *simulator* got slower — a perf
// regression — so the tool exits 1. Any cycle difference means the
// timing model intentionally changed and wall-clock deltas are not
// comparable; the tool reports and exits 0 (correctness gates live
// elsewhere). --waived (CI passes it for [perf-waive] commit messages)
// downgrades a failure to a warning. Exit 2 on malformed input.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <stdexcept>
#include <string>
#include <vector>

#include "campaign/perf_artifacts.h"

namespace {

/// The cell schema, the key grammar and the loader live in
/// campaign/perf_artifacts.h, shared with perf_driver's consumers (the
/// campaign trend report reads the same artifacts).
using Cell = safespec::campaign::PerfCell;

std::vector<Cell> load_cells(const std::string& path) {
  return safespec::campaign::load_perf_cells(path);
}

const Cell* find_cell(const std::vector<Cell>& cells, const std::string& key) {
  for (const Cell& c : cells) {
    if (c.key() == key) return &c;
  }
  return nullptr;
}

void usage(const char* prog, std::FILE* out) {
  std::fprintf(out,
               "usage: %s BASE.json HEAD.json [--max-drop=FRAC] "
               "[--summary=FILE] [--waived]\n",
               prog);
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> positional;
  double max_drop = 0.10;
  std::string summary_path;
  bool waived = false;

  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--help") == 0 || std::strcmp(arg, "-h") == 0) {
      usage(argv[0], stdout);
      return 0;
    } else if (std::strncmp(arg, "--max-drop=", 11) == 0) {
      max_drop = std::atof(arg + 11);
      if (!(max_drop > 0.0 && max_drop < 1.0)) {
        std::fprintf(stderr, "--max-drop must be in (0, 1)\n");
        return 2;
      }
    } else if (std::strncmp(arg, "--summary=", 10) == 0) {
      summary_path = arg + 10;
    } else if (std::strcmp(arg, "--waived") == 0) {
      waived = true;
    } else if (arg[0] == '-') {
      std::fprintf(stderr, "unknown argument: %s\n", arg);
      usage(argv[0], stderr);
      return 2;
    } else {
      positional.emplace_back(arg);
    }
  }
  if (positional.size() != 2) {
    usage(argv[0], stderr);
    return 2;
  }

  std::vector<Cell> base, head;
  try {
    base = load_cells(positional[0]);
    head = load_cells(positional[1]);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "perf_compare: %s\n", e.what());
    return 2;
  }

  // Markdown report + the aggregate over matched cells only, so a grid
  // change (new/removed cells) never skews the comparison.
  std::string report;
  report += "### Simulation-throughput diff vs base\n\n";
  report +=
      "| cell | base MIPS | head MIPS | delta | cycles |\n"
      "|---|---:|---:|---:|---|\n";
  std::size_t matched = 0;
  std::size_t cycles_changed = 0;
  std::uint64_t base_instrs = 0, head_instrs = 0;
  double base_ms = 0.0, head_ms = 0.0;
  char line[256];
  for (const Cell& b : base) {
    const Cell* h = find_cell(head, b.key());
    if (h == nullptr) {
      std::snprintf(line, sizeof line, "| %s | %.2f | - | - | removed |\n",
                    b.key().c_str(), b.mips);
      report += line;
      continue;
    }
    ++matched;
    const bool identical =
        b.cycles == h->cycles && b.committed_instrs == h->committed_instrs;
    if (!identical) ++cycles_changed;
    base_instrs += b.committed_instrs;
    head_instrs += h->committed_instrs;
    base_ms += b.wall_ms;
    head_ms += h->wall_ms;
    const double delta =
        b.mips <= 0.0 ? 0.0 : (h->mips - b.mips) / b.mips * 100.0;
    std::snprintf(line, sizeof line,
                  "| %s | %.2f | %.2f | %+.1f%% | %s |\n", b.key().c_str(),
                  b.mips, h->mips, delta,
                  identical ? "identical" : "**changed**");
    report += line;
  }
  for (const Cell& h : head) {
    if (find_cell(base, h.key()) == nullptr) {
      std::snprintf(line, sizeof line, "| %s | - | %.2f | - | new |\n",
                    h.key().c_str(), h.mips);
      report += line;
    }
  }

  const double base_mips =
      base_ms <= 0.0 ? 0.0 : static_cast<double>(base_instrs) / (base_ms * 1e3);
  const double head_mips =
      head_ms <= 0.0 ? 0.0 : static_cast<double>(head_instrs) / (head_ms * 1e3);
  const double drop = base_mips <= 0.0 ? 0.0 : 1.0 - head_mips / base_mips;
  std::snprintf(line, sizeof line,
                "\nMatched-cell aggregate: %.2f -> %.2f MIPS (%+.1f%%), "
                "%zu cells matched, %zu with changed cycles.\n",
                base_mips, head_mips,
                base_mips <= 0.0 ? 0.0 : -drop * 100.0, matched,
                cycles_changed);
  report += line;

  int rc = 0;
  if (matched == 0) {
    report += "\nNo matching cells — grids are disjoint; nothing to gate.\n";
  } else if (cycles_changed != 0) {
    report +=
        "\nCycle counts changed: the timing model moved, so wall-clock "
        "deltas are not comparable. Not gating (cycle-level correctness "
        "is covered by golden CSVs and the differential fuzzer).\n";
  } else if (drop > max_drop) {
    std::snprintf(line, sizeof line,
                  "\n**Cycle-identical aggregate MIPS dropped %.1f%% "
                  "(limit %.0f%%): the simulator itself got slower.**\n",
                  drop * 100.0, max_drop * 100.0);
    report += line;
    if (waived) {
      report += "Waived by [perf-waive] in the commit message.\n";
    } else {
      report +=
          "Optimize the change, or add [perf-waive] to the commit message "
          "to accept the slowdown.\n";
      rc = 1;
    }
  } else {
    report += "\nPerf gate: OK.\n";
  }

  std::fputs(report.c_str(), stdout);
  if (!summary_path.empty()) {
    std::FILE* f = std::fopen(summary_path.c_str(), "a");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot append to %s\n", summary_path.c_str());
      return 2;
    }
    std::fputs(report.c_str(), f);
    std::fclose(f);
  }
  return rc;
}
