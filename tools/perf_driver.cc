// Simulation-throughput harness (the BENCH perf signal).
//
//   perf_driver                          # default cell grid, JSON to
//                                        # BENCH_sim_throughput.json
//   perf_driver --instrs=500000 --repeat=3
//   perf_driver --out=perf.json --cells=mcf/WFC/skylake,gcc/baseline/skylake
//
// Each cell runs one representative workload profile under one protection
// policy on one machine preset for a fixed committed-instruction budget,
// measuring host wall time around the simulation loop only (program
// generation and machine construction are excluded). The figure of merit
// is MIPS — millions of simulated committed instructions per host wall
// second — per cell and aggregated over the grid. Results are written as
// machine-readable JSON so CI can archive them and successive runs can be
// compared; with --repeat=N each cell reports its best-of-N (minimum
// wall time), which filters scheduler noise on shared runners.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/cli.h"
#include "safespec/policy.h"
#include "sim/functional.h"
#include "sim/machine.h"
#include "workloads/runner.h"
#include "workloads/workload.h"

namespace {

using safespec::sim::SimResult;

/// One grid point: workload profile x protection policy x machine preset,
/// plus the simulation mode:
///   detailed   — the cycle-accurate core only (historical cells);
///   sampled    — Simulator::run_sampled under the --ff-interval/--warmup/
///                --detail schedule (figure of merit: *effective* MIPS —
///                architectural instructions covered per host second);
///   sampled-fast — run_sampled with an aggressive fast-forward interval
///                (half the budget per gap — few windows, maximal
///                functional duty cycle; tracks the sampling asymptote);
///   functional — the bare FunctionalEngine, no detailed core at all
///                (upper bound; also the fast-forward speed the sampled
///                cells amortise against).
///
/// Workload names go through workloads::profile_by_name, so trace
/// spellings work in cells too: trace:@NAME (in-memory codec round trip
/// of profile NAME) and trace:PATH (a trace file).
struct Cell {
  std::string workload;
  std::string policy;
  std::string preset;
  std::string mode = "detailed";
  /// Cores sharing the L2/L3 (cells grammar: a trailing "/cores=N").
  /// Every core runs the workload on private memory; the figure of merit
  /// counts committed instructions over all cores. Detailed mode only.
  int cores = 1;
};

bool known_mode(const std::string& mode) {
  return mode == "detailed" || mode == "sampled" ||
         mode == "sampled-fast" || mode == "functional";
}

/// The default grid covers the hot-path variety that matters for
/// throughput: pointer-chasing (mcf) and streaming (lbm) d-side traffic,
/// a large code footprint stressing the i-side shadow (gcc), a
/// branchy/squash-heavy control profile (exchange2), the kStall
/// full-table path (WFB-stall), and the little "embedded" preset. The
/// SHARP cells cover the cache-protection family's hot path (the
/// protected-victim scan on every fill; at cores=1 it is
/// cycle-identical to the baseline, so the perf signal is pure host
/// cost). The cores=2 cells exercise the multi-core path — round-robin
/// scheduling and the shared L2/L3 with per-core owner attribution. The
/// trace:@ cells run the same workloads through the trace codec round
/// trip (cycle-identical to their synthetic twins by construction, so
/// the perf_compare gate covers the trace frontend too). The trailing
/// sampled/sampled-fast/functional cells track the sampled-simulation
/// paths: effective MIPS for the SMARTS schedule, the aggressive-gap
/// asymptote, and the raw oracle-engine MIPS.
std::vector<Cell> default_cells() {
  return {
      {"mcf", "baseline", "skylake"},  {"mcf", "WFC", "skylake"},
      {"gcc", "baseline", "skylake"},  {"gcc", "WFC", "skylake"},
      {"lbm", "baseline", "skylake"},  {"lbm", "WFB", "skylake"},
      {"exchange2", "baseline", "skylake"},
      {"exchange2", "WFC", "skylake"},
      {"xalancbmk", "WFB-stall", "skylake"},
      {"mcf", "WFC", "embedded"},
      {"mcf", "SHARP", "skylake"},
      {"gcc", "SHARP", "skylake", "detailed", 2},
      {"mcf", "baseline", "skylake", "detailed", 2},
      {"gcc", "WFC", "skylake", "detailed", 2},
      {"trace:@mcf", "baseline", "skylake"},
      {"trace:@exchange2", "WFC", "skylake"},
      {"mcf", "baseline", "skylake", "sampled"},
      {"gcc", "WFC", "skylake", "sampled"},
      {"mcf", "baseline", "skylake", "sampled-fast"},
      {"mcf", "baseline", "skylake", "functional"},
  };
}

struct CellResult {
  Cell cell;
  std::uint64_t committed_instrs = 0;
  std::uint64_t cycles = 0;
  double wall_ms = 0.0;
  const char* stop = "?";
  // Sampled-mode extras (zero elsewhere).
  std::uint64_t windows = 0;
  double ipc = 0.0;
  double ipc_ci95 = 0.0;

  /// For sampled cells this is *effective* MIPS: fast-forwarded
  /// instructions count too, since they are architecturally covered.
  double mips() const {
    return wall_ms <= 0.0 ? 0.0
                          : static_cast<double>(committed_instrs) /
                                (wall_ms * 1e3);
  }
};

void usage(const char* prog, std::FILE* out) {
  std::fprintf(
      out,
      "usage: %s [--instrs=N] [--repeat=N] [--out=FILE] [--cells=...]\n"
      "          [--ff-interval=N] [--warmup=N] [--detail=N]\n"
      "  --instrs=N       committed instructions per cell (default 200000)\n"
      "  --repeat=N       runs per cell; best (fastest) one is reported\n"
      "                   (default 1)\n"
      "  --out=FILE       JSON output path (default\n"
      "                   BENCH_sim_throughput.json; \"-\" suppresses it)\n"
      "  --cells=...      comma-separated items of the form\n"
      "                   workload/policy/preset[/mode][/cores=N]; mode is\n"
      "                   detailed (default), sampled, sampled-fast, or\n"
      "                   functional; cores=N (detailed mode only) runs N\n"
      "                   cores sharing the L2/L3 (default: a\n"
      "                   representative grid). Workloads accept trace\n"
      "                   spellings: trace:@NAME / trace:PATH\n"
      "  --set=key=value  override one machine field on every cell's\n"
      "                   preset (repeatable; see MachineSpec::set) —\n"
      "                   e.g. --set=dib_lines=0 measures the\n"
      "                   decoded-instruction buffer's host-side win\n"
      "  --ff-interval=N  sampled cells: functional instrs per gap\n"
      "                   (default: --instrs/10, ~10 windows per cell;\n"
      "                   sampled-fast always uses --instrs/2)\n"
      "  --warmup=N       sampled cells: detailed unmeasured instrs per\n"
      "                   window (default 2000; sampled-fast 1000)\n"
      "  --detail=N       sampled cells: detailed measured instrs per\n"
      "                   window (default 10000; sampled-fast 5000)\n",
      prog);
}

std::vector<Cell> parse_cells(const std::string& text) {
  std::vector<Cell> cells;
  std::size_t start = 0;
  while (start < text.size()) {
    std::size_t comma = text.find(',', start);
    if (comma == std::string::npos) comma = text.size();
    const std::string item = text.substr(start, comma - start);
    std::vector<std::string> parts;
    std::size_t p = 0;
    while (p <= item.size()) {
      std::size_t slash = item.find('/', p);
      if (slash == std::string::npos) slash = item.size();
      parts.push_back(item.substr(p, slash - p));
      if (slash == item.size()) break;
      p = slash + 1;
    }
    if (parts.size() < 3 || parts.size() > 5 || parts[0].empty() ||
        parts[1].empty() || parts[2].empty()) {
      std::fprintf(stderr,
                   "--cells item '%s' is not "
                   "workload/policy/preset[/mode][/cores=N]\n",
                   item.c_str());
      std::exit(2);
    }
    Cell cell;
    cell.workload = parts[0];
    cell.policy = parts[1];
    cell.preset = parts[2];
    for (std::size_t extra = 3; extra < parts.size(); ++extra) {
      if (parts[extra].rfind("cores=", 0) == 0) {
        cell.cores = static_cast<int>(safespec::cli::parse_u64_or_exit(
            parts[extra].c_str() + 6, "--cells cores"));
      } else {
        cell.mode = parts[extra];
      }
    }
    cells.push_back(std::move(cell));
    start = comma + 1;
  }
  return cells;
}

CellResult run_cell(const Cell& cell, std::uint64_t instrs, int repeat,
                    const safespec::sim::SamplingSpec& sampling,
                    const std::vector<std::string>& overrides) {
  using namespace safespec;
  sim::MachineSpec machine = sim::machine_preset(cell.preset);
  for (const std::string& kv : overrides) machine.set(kv);
  auto profile = workloads::profile_by_name(cell.workload);
  // Same per-cell trace plumbing as ExperimentSpec::expand().
  if (!machine.trace.empty()) profile.trace_file = machine.trace;
  cpu::CoreConfig config = machine.core;
  config.policy = cell.policy;
  config.cores = cell.cores;

  CellResult best;
  best.cell = cell;
  for (int r = 0; r < repeat; ++r) {
    // A fresh machine per run: the measurement is always a cold start,
    // identical across repeats and across harness invocations.
    auto sim = workloads::make_workload_sim(profile, config, instrs);
    if (cell.mode == "functional") {
      // The bare engine over the same program/memory/page-table the
      // detailed cells use — the oracle fast path in isolation.
      sim::FunctionalEngine engine(&sim->program(), &sim->memory(),
                                   &sim->page_table());
      const auto t0 = std::chrono::steady_clock::now();
      const cpu::StopReason stop = engine.run(instrs);
      const auto t1 = std::chrono::steady_clock::now();
      const double wall_ms =
          std::chrono::duration<double, std::milli>(t1 - t0).count();
      if (r == 0 || wall_ms < best.wall_ms) {
        best.committed_instrs = engine.committed();
        best.cycles = 0;
        best.wall_ms = wall_ms;
        best.stop = cpu::to_string(stop);
      }
      continue;
    }
    sim::SamplingSpec spec;  // disabled => exactly the detailed run
    if (cell.mode == "sampled") {
      spec = sampling;
    } else if (cell.mode == "sampled-fast") {
      // Aggressive schedule: one gap spans half the budget, so almost
      // everything fast-forwards — the sampling-throughput asymptote.
      spec.fast_forward_interval = std::max<std::uint64_t>(instrs / 2, 1);
      spec.warmup_instrs = 1'000;
      spec.detail_instrs = 5'000;
    }
    const auto t0 = std::chrono::steady_clock::now();
    const SimResult result =
        sim->run_sampled(spec, instrs * 40 + 1'000'000, instrs);
    const auto t1 = std::chrono::steady_clock::now();
    const double wall_ms =
        std::chrono::duration<double, std::milli>(t1 - t0).count();
    if (r == 0 || wall_ms < best.wall_ms) {
      // Multi-core cells count every core's committed work (equal to
      // committed_instrs at cores=1, so historical artifacts compare).
      best.committed_instrs = result.committed_all_cores;
      best.cycles = result.cycles;
      best.wall_ms = wall_ms;
      best.stop = cpu::to_string(result.stop);
      best.windows = result.sampling.windows;
      best.ipc = result.ipc;
      best.ipc_ci95 = result.sampling.ipc_ci95;
    }
  }
  return best;
}

void write_json(const std::string& path, std::uint64_t instrs, int repeat,
                const std::vector<CellResult>& results) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    std::exit(2);
  }
  std::uint64_t total_instrs = 0;
  double total_ms = 0.0;
  std::fprintf(f,
               "{\n  \"instrs_per_cell\": %llu,\n  \"repeat\": %d,\n"
               "  \"cells\": [\n",
               static_cast<unsigned long long>(instrs), repeat);
  for (std::size_t i = 0; i < results.size(); ++i) {
    const CellResult& r = results[i];
    total_instrs += r.committed_instrs;
    total_ms += r.wall_ms;
    std::fprintf(
        f,
        "    {\"workload\": \"%s\", \"policy\": \"%s\", \"preset\": \"%s\","
        " \"mode\": \"%s\", \"cores\": %d,"
        " \"committed_instrs\": %llu, \"cycles\": %llu,"
        " \"wall_ms\": %.3f, \"mips\": %.2f, \"stop\": \"%s\"",
        r.cell.workload.c_str(), r.cell.policy.c_str(),
        r.cell.preset.c_str(), r.cell.mode.c_str(), r.cell.cores,
        static_cast<unsigned long long>(r.committed_instrs),
        static_cast<unsigned long long>(r.cycles), r.wall_ms, r.mips(),
        r.stop);
    if (r.cell.mode.rfind("sampled", 0) == 0) {
      std::fprintf(f, ", \"windows\": %llu, \"ipc\": %.4f, \"ipc_ci95\": %.4f",
                   static_cast<unsigned long long>(r.windows), r.ipc,
                   r.ipc_ci95);
    }
    std::fprintf(f, "}%s\n", i + 1 < results.size() ? "," : "");
  }
  const double aggregate =
      total_ms <= 0.0 ? 0.0 : static_cast<double>(total_instrs) /
                                  (total_ms * 1e3);
  std::fprintf(f,
               "  ],\n  \"aggregate\": {\"total_instrs\": %llu,"
               " \"total_wall_ms\": %.3f, \"mips\": %.2f}\n}\n",
               static_cast<unsigned long long>(total_instrs), total_ms,
               aggregate);
  std::fclose(f);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace safespec;

  std::uint64_t instrs = 200'000;
  int repeat = 1;
  std::string out_path = "BENCH_sim_throughput.json";
  std::vector<Cell> cells = default_cells();
  std::vector<std::string> overrides;
  // Sampled-cell schedule. fast_forward_interval == 0 here means "auto":
  // instrs/10, so a sampled cell runs ~10 windows at any --instrs and the
  // detailed duty cycle shrinks as the budget grows (0.012% per window's
  // 12k detailed instrs at --instrs=100000000).
  sim::SamplingSpec sampling;
  sampling.warmup_instrs = 2'000;
  sampling.detail_instrs = 10'000;

  // Historical grammar preserved exactly: "--flag=value" forms only, any
  // other argument (including "--flag value") is an error.
  cli::FlagSet flags(usage);
  flags.u64("--instrs", &instrs)
      .value("--repeat",
             [&repeat](const char* value) {
               repeat = static_cast<int>(
                   cli::parse_u64_or_exit(value, "--repeat"));
               if (repeat < 1 || repeat > 100) {
                 std::fprintf(stderr, "--repeat must be in [1, 100]\n");
                 std::exit(2);
               }
             })
      .string("--out", &out_path)
      .value("--cells",
             [&cells](const char* value) { cells = parse_cells(value); })
      .repeated("--set", &overrides)
      .u64("--ff-interval", &sampling.fast_forward_interval)
      .u64("--warmup", &sampling.warmup_instrs)
      .u64("--detail", &sampling.detail_instrs);
  flags.parse(argc, argv);

  if (sampling.fast_forward_interval == 0) {
    sampling.fast_forward_interval = std::max<std::uint64_t>(instrs / 10, 1);
  }
  try {
    sampling.validate();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bad sampling schedule: %s\n", e.what());
    return 2;
  }

  // Resolve every cell's names (and overrides) eagerly so a typo fails
  // before any run.
  try {
    for (const Cell& cell : cells) {
      workloads::profile_by_name(cell.workload);
      policy::named_policy(cell.policy);
      sim::MachineSpec machine = sim::machine_preset(cell.preset);
      for (const std::string& kv : overrides) machine.set(kv);
      machine.validate();
      if (!known_mode(cell.mode)) {
        std::fprintf(stderr,
                     "bad cell: unknown mode '%s' (detailed, sampled, "
                     "sampled-fast, functional)\n",
                     cell.mode.c_str());
        return 2;
      }
      if (cell.cores < 1 || cell.cores > 64) {
        std::fprintf(stderr, "bad cell: cores=%d is out of range (1..64)\n",
                     cell.cores);
        return 2;
      }
      if (cell.cores > 1 && cell.mode != "detailed") {
        std::fprintf(stderr,
                     "bad cell: cores=%d needs detailed mode (sampled and "
                     "functional runs are single-core)\n",
                     cell.cores);
        return 2;
      }
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bad cell: %s\n", e.what());
    return 2;
  }

  std::vector<CellResult> results;
  results.reserve(cells.size());
  std::uint64_t total_instrs = 0;
  double total_ms = 0.0;
  for (const Cell& cell : cells) {
    const CellResult r = run_cell(cell, instrs, repeat, sampling, overrides);
    const bool full_budget = std::strcmp(r.stop, "max-instrs") == 0;
    const std::string mode_col =
        cell.cores > 1 ? cell.mode + "/c" + std::to_string(cell.cores)
                       : cell.mode;
    std::printf("perf: %-16s %-9s %-8s %-12s %9llu instrs %8llu Kcycles "
                "%8.1f ms %7.2f MIPS%s%s",
                cell.workload.c_str(), cell.policy.c_str(),
                cell.preset.c_str(), mode_col.c_str(),
                static_cast<unsigned long long>(r.committed_instrs),
                static_cast<unsigned long long>(r.cycles / 1000),
                r.wall_ms, r.mips(), full_budget ? "" : " stop=",
                full_budget ? "" : r.stop);
    if (cell.mode.rfind("sampled", 0) == 0) {
      std::printf(" (%llu windows, ipc %.3f +/- %.3f)",
                  static_cast<unsigned long long>(r.windows), r.ipc,
                  r.ipc_ci95);
    }
    std::printf("\n");
    total_instrs += r.committed_instrs;
    total_ms += r.wall_ms;
    results.push_back(r);
  }

  const double aggregate =
      total_ms <= 0.0 ? 0.0 : static_cast<double>(total_instrs) /
                                  (total_ms * 1e3);
  std::printf("perf: aggregate %llu instrs in %.1f ms -> %.2f MIPS "
              "(%zu cells, repeat=%d)\n",
              static_cast<unsigned long long>(total_instrs), total_ms,
              aggregate, results.size(), repeat);

  if (out_path != "-") write_json(out_path, instrs, repeat, results);
  return 0;
}
