// Simulation-throughput harness (the BENCH perf signal).
//
//   perf_driver                          # default cell grid, JSON to
//                                        # BENCH_sim_throughput.json
//   perf_driver --instrs=500000 --repeat=3
//   perf_driver --out=perf.json --cells=mcf/WFC/skylake,gcc/baseline/skylake
//
// Each cell runs one representative workload profile under one protection
// policy on one machine preset for a fixed committed-instruction budget,
// measuring host wall time around the simulation loop only (program
// generation and machine construction are excluded). The figure of merit
// is MIPS — millions of simulated committed instructions per host wall
// second — per cell and aggregated over the grid. Results are written as
// machine-readable JSON so CI can archive them and successive runs can be
// compared; with --repeat=N each cell reports its best-of-N (minimum
// wall time), which filters scheduler noise on shared runners.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/json.h"
#include "safespec/policy.h"
#include "sim/machine.h"
#include "workloads/runner.h"
#include "workloads/workload.h"

namespace {

using safespec::sim::SimResult;

/// One grid point: workload profile x protection policy x machine preset.
struct Cell {
  std::string workload;
  std::string policy;
  std::string preset;
};

/// The default grid covers the hot-path variety that matters for
/// throughput: pointer-chasing (mcf) and streaming (lbm) d-side traffic,
/// a large code footprint stressing the i-side shadow (gcc), a
/// branchy/squash-heavy control profile (exchange2), the kStall
/// full-table path (WFB-stall), and the little "embedded" preset.
std::vector<Cell> default_cells() {
  return {
      {"mcf", "baseline", "skylake"},  {"mcf", "WFC", "skylake"},
      {"gcc", "baseline", "skylake"},  {"gcc", "WFC", "skylake"},
      {"lbm", "baseline", "skylake"},  {"lbm", "WFB", "skylake"},
      {"exchange2", "baseline", "skylake"},
      {"exchange2", "WFC", "skylake"},
      {"xalancbmk", "WFB-stall", "skylake"},
      {"mcf", "WFC", "embedded"},
  };
}

struct CellResult {
  Cell cell;
  std::uint64_t committed_instrs = 0;
  std::uint64_t cycles = 0;
  double wall_ms = 0.0;
  const char* stop = "?";

  double mips() const {
    return wall_ms <= 0.0 ? 0.0
                          : static_cast<double>(committed_instrs) /
                                (wall_ms * 1e3);
  }
};

std::uint64_t parse_u64_arg(const char* value, const char* flag) {
  try {
    return safespec::json::parse_u64(value, flag);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n", e.what());
    std::exit(2);
  }
}

void usage(const char* prog, std::FILE* out) {
  std::fprintf(
      out,
      "usage: %s [--instrs=N] [--repeat=N] [--out=FILE] [--cells=...]\n"
      "  --instrs=N    committed instructions per cell (default 200000)\n"
      "  --repeat=N    runs per cell; best (fastest) one is reported\n"
      "                (default 1)\n"
      "  --out=FILE    JSON output path (default BENCH_sim_throughput.json;\n"
      "                \"-\" suppresses the file)\n"
      "  --cells=...   comma-separated workload/policy/preset triples\n"
      "                (default: a representative 10-cell grid)\n",
      prog);
}

std::vector<Cell> parse_cells(const std::string& text) {
  std::vector<Cell> cells;
  std::size_t start = 0;
  while (start < text.size()) {
    std::size_t comma = text.find(',', start);
    if (comma == std::string::npos) comma = text.size();
    const std::string item = text.substr(start, comma - start);
    const std::size_t a = item.find('/');
    const std::size_t b = a == std::string::npos ? a : item.find('/', a + 1);
    if (a == std::string::npos || b == std::string::npos) {
      std::fprintf(stderr,
                   "--cells item '%s' is not workload/policy/preset\n",
                   item.c_str());
      std::exit(2);
    }
    cells.push_back({item.substr(0, a), item.substr(a + 1, b - a - 1),
                     item.substr(b + 1)});
    start = comma + 1;
  }
  return cells;
}

bool flag_value(const char* arg, const char* name, const char** value) {
  const std::size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) == 0 && arg[len] == '=') {
    *value = arg + len + 1;
    return true;
  }
  return false;
}

CellResult run_cell(const Cell& cell, std::uint64_t instrs, int repeat) {
  using namespace safespec;
  const auto profile = workloads::profile_by_name(cell.workload);
  cpu::CoreConfig config = sim::machine_preset(cell.preset).core;
  config.policy = cell.policy;

  CellResult best;
  best.cell = cell;
  for (int r = 0; r < repeat; ++r) {
    // A fresh machine per run: the measurement is always a cold start,
    // identical across repeats and across harness invocations.
    auto sim = workloads::make_workload_sim(profile, config, instrs);
    const auto t0 = std::chrono::steady_clock::now();
    const SimResult result = sim->run(instrs * 40 + 1'000'000, instrs);
    const auto t1 = std::chrono::steady_clock::now();
    const double wall_ms =
        std::chrono::duration<double, std::milli>(t1 - t0).count();
    if (r == 0 || wall_ms < best.wall_ms) {
      best.committed_instrs = result.committed_instrs;
      best.cycles = result.cycles;
      best.wall_ms = wall_ms;
      best.stop = cpu::to_string(result.stop);
    }
  }
  return best;
}

void write_json(const std::string& path, std::uint64_t instrs, int repeat,
                const std::vector<CellResult>& results) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    std::exit(2);
  }
  std::uint64_t total_instrs = 0;
  double total_ms = 0.0;
  std::fprintf(f,
               "{\n  \"instrs_per_cell\": %llu,\n  \"repeat\": %d,\n"
               "  \"cells\": [\n",
               static_cast<unsigned long long>(instrs), repeat);
  for (std::size_t i = 0; i < results.size(); ++i) {
    const CellResult& r = results[i];
    total_instrs += r.committed_instrs;
    total_ms += r.wall_ms;
    std::fprintf(
        f,
        "    {\"workload\": \"%s\", \"policy\": \"%s\", \"preset\": \"%s\","
        " \"committed_instrs\": %llu, \"cycles\": %llu,"
        " \"wall_ms\": %.3f, \"mips\": %.2f, \"stop\": \"%s\"}%s\n",
        r.cell.workload.c_str(), r.cell.policy.c_str(),
        r.cell.preset.c_str(),
        static_cast<unsigned long long>(r.committed_instrs),
        static_cast<unsigned long long>(r.cycles), r.wall_ms, r.mips(),
        r.stop, i + 1 < results.size() ? "," : "");
  }
  const double aggregate =
      total_ms <= 0.0 ? 0.0 : static_cast<double>(total_instrs) /
                                  (total_ms * 1e3);
  std::fprintf(f,
               "  ],\n  \"aggregate\": {\"total_instrs\": %llu,"
               " \"total_wall_ms\": %.3f, \"mips\": %.2f}\n}\n",
               static_cast<unsigned long long>(total_instrs), total_ms,
               aggregate);
  std::fclose(f);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace safespec;

  std::uint64_t instrs = 200'000;
  int repeat = 1;
  std::string out_path = "BENCH_sim_throughput.json";
  std::vector<Cell> cells = default_cells();

  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    const char* value = nullptr;
    if (std::strcmp(arg, "--help") == 0 || std::strcmp(arg, "-h") == 0) {
      usage(argv[0], stdout);
      return 0;
    } else if (flag_value(arg, "--instrs", &value)) {
      instrs = parse_u64_arg(value, "--instrs");
    } else if (flag_value(arg, "--repeat", &value)) {
      repeat = static_cast<int>(parse_u64_arg(value, "--repeat"));
      if (repeat < 1 || repeat > 100) {
        std::fprintf(stderr, "--repeat must be in [1, 100]\n");
        return 2;
      }
    } else if (flag_value(arg, "--out", &value)) {
      out_path = value;
    } else if (flag_value(arg, "--cells", &value)) {
      cells = parse_cells(value);
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg);
      usage(argv[0], stderr);
      return 2;
    }
  }

  // Resolve every cell's names eagerly so a typo fails before any run.
  try {
    for (const Cell& cell : cells) {
      workloads::profile_by_name(cell.workload);
      policy::named_policy(cell.policy);
      sim::machine_preset(cell.preset);
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bad cell: %s\n", e.what());
    return 2;
  }

  std::vector<CellResult> results;
  results.reserve(cells.size());
  std::uint64_t total_instrs = 0;
  double total_ms = 0.0;
  for (const Cell& cell : cells) {
    const CellResult r = run_cell(cell, instrs, repeat);
    const bool full_budget = std::strcmp(r.stop, "max-instrs") == 0;
    std::printf("perf: %-10s %-9s %-8s %9llu instrs %8llu Kcycles "
                "%8.1f ms %7.2f MIPS%s%s\n",
                cell.workload.c_str(), cell.policy.c_str(),
                cell.preset.c_str(),
                static_cast<unsigned long long>(r.committed_instrs),
                static_cast<unsigned long long>(r.cycles / 1000),
                r.wall_ms, r.mips(), full_budget ? "" : " stop=",
                full_budget ? "" : r.stop);
    total_instrs += r.committed_instrs;
    total_ms += r.wall_ms;
    results.push_back(r);
  }

  const double aggregate =
      total_ms <= 0.0 ? 0.0 : static_cast<double>(total_instrs) /
                                  (total_ms * 1e3);
  std::printf("perf: aggregate %llu instrs in %.1f ms -> %.2f MIPS "
              "(%zu cells, repeat=%d)\n",
              static_cast<unsigned long long>(total_instrs), total_ms,
              aggregate, results.size(), repeat);

  if (out_path != "-") write_json(out_path, instrs, repeat, results);
  return 0;
}
