// Records simulator workloads as trace files (and verifies replays).
//
//   trace_record --out=mcf.trace --profile=mcf --instrs=20000 --verify
//   trace_record --out=fz.trace --fuzz-seed=42
//   trace_record --info=mcf.trace
//
// Converts either producer of programs — the synthetic SPEC generator
// (--profile) or the differential fuzzer's random program generator
// (--fuzz-seed) — into the versioned trace format documented in
// src/trace/trace_format.h. With --verify the tool re-reads the file it
// just wrote, runs both the original image and the replayed one on the
// default machine, and requires bit-identical cycle counts, instruction
// counts, stop reason and architectural registers: the round-trip
// guarantee the trace frontend rests on, checked end to end through the
// real file.
#include <cstdio>
#include <string>

#include "common/cli.h"
#include "fuzz/fuzz_spec.h"
#include "fuzz/generator.h"
#include "sim/simulator.h"
#include "trace/trace.h"
#include "trace/trace_workload.h"
#include "workloads/runner.h"
#include "workloads/workload.h"

namespace {

using namespace safespec;

void usage(const char* prog, std::FILE* out) {
  std::fprintf(
      out,
      "usage: %s --out=FILE (--profile=NAME | --fuzz-seed=N) [options]\n"
      "       %s --info=FILE\n"
      "  --out=FILE        trace file to write\n"
      "  --profile=NAME    record this synthetic SPEC profile\n"
      "  --instrs=N        target committed instructions for --profile\n"
      "                    (default 20000)\n"
      "  --fuzz-seed=N     record the fuzz generator's program for seed N\n"
      "  --fuzz-spec=FILE  FuzzSpec JSON shaping --fuzz-seed's program\n"
      "  --raw             store chunks uncompressed\n"
      "  --verify          re-read the written file, replay it, and\n"
      "                    require bit-identical cycles / instructions /\n"
      "                    stop reason / registers vs the original\n"
      "  --info=FILE       print a trace file's header summary and exit\n",
      prog, prog);
}

workloads::WorkloadImage image_of(const fuzz::FuzzProgram& fp) {
  workloads::WorkloadImage image;
  image.program = fp.program;
  for (const sim::MemRegion& region : fp.regions) {
    image.regions.push_back({region.base, region.bytes,
                             region.perm == memory::PagePerm::kKernel});
  }
  for (const sim::Poke& poke : fp.pokes) {
    image.init_words.emplace_back(poke.addr, poke.value);
  }
  return image;
}

struct RunSummary {
  sim::SimResult result;
  std::uint64_t regs[kNumArchRegs] = {};
};

RunSummary run_image(workloads::WorkloadImage image, std::uint64_t instrs) {
  auto sim = workloads::make_image_sim(std::move(image), cpu::CoreConfig{});
  RunSummary out;
  // Same budget shape as workloads::run_workload; instrs == 0 runs to
  // halt (fuzz programs terminate on their own).
  out.result = sim->run(instrs * 40 + 1'000'000,
                        instrs == 0 ? ~0ULL : instrs);
  for (int r = 0; r < kNumArchRegs; ++r) {
    out.regs[r] = sim->core().reg(static_cast<RegIndex>(r));
  }
  return out;
}

int print_info(const std::string& path) {
  trace::TraceReader reader(path);
  std::printf("%s: trace v%u\n", path.c_str(), trace::kTraceVersion);
  std::printf("  entry          0x%llx\n",
              static_cast<unsigned long long>(reader.entry()));
  std::printf("  fault handler  %s\n",
              reader.fault_handler().has_value() ? "present" : "none");
  std::printf("  records        %llu\n",
              static_cast<unsigned long long>(reader.records_total()));
  std::printf("  regions        %zu\n", reader.regions().size());
  for (const trace::TraceRegion& region : reader.regions()) {
    std::printf("    [0x%llx, +0x%llx) %s\n",
                static_cast<unsigned long long>(region.base),
                static_cast<unsigned long long>(region.bytes),
                region.kernel ? "kernel" : "user");
  }
  std::printf("  init words     %zu\n", reader.init_words().size());
  // Drain the records so the checksum is verified — --info doubles as an
  // integrity check.
  trace::TraceRecord rec;
  while (reader.next(rec)) {
  }
  std::printf("  checksum       ok\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path;
  std::string info_path;
  std::string profile_name;
  std::string fuzz_spec_path;
  std::uint64_t instrs = 20'000;
  std::uint64_t fuzz_seed = 0;
  bool have_fuzz_seed = false;
  bool compress = true;
  bool verify = false;

  // Historical grammar preserved exactly: "--flag=value" forms only.
  cli::FlagSet flags(usage);
  flags.string("--out", &out_path)
      .string("--info", &info_path)
      .string("--profile", &profile_name)
      .u64("--instrs", &instrs)
      .value("--fuzz-seed",
             [&fuzz_seed, &have_fuzz_seed](const char* value) {
               fuzz_seed = cli::parse_u64_or_exit(value, "--fuzz-seed");
               have_fuzz_seed = true;
             })
      .string("--fuzz-spec", &fuzz_spec_path)
      .boolean("--raw", [&compress] { compress = false; })
      .set_true("--verify", &verify);
  flags.parse(argc, argv);

  try {
    if (!info_path.empty()) return print_info(info_path);

    if (out_path.empty() || profile_name.empty() == !have_fuzz_seed) {
      std::fprintf(stderr, "need --out=FILE and exactly one of "
                           "--profile=NAME / --fuzz-seed=N\n");
      usage(argv[0], stderr);
      return 2;
    }

    workloads::WorkloadImage original;
    std::uint64_t verify_instrs = 0;
    if (!profile_name.empty()) {
      original = workloads::generate(workloads::profile_by_name(profile_name),
                                     instrs);
      verify_instrs = instrs;
    } else {
      fuzz::FuzzSpec spec;
      if (!fuzz_spec_path.empty()) {
        spec = fuzz::FuzzSpec::from_json_file(fuzz_spec_path);
      }
      original = image_of(fuzz::generate_program(fuzz_seed, spec));
    }

    const trace::TraceImage image = trace::record_workload(original);
    trace::write_trace_file(out_path, image, compress);
    const std::size_t raw_bytes =
        trace::kTraceHeaderBytes +
        image.regions.size() * trace::kTraceRegionBytes +
        image.init_words.size() * trace::kTraceInitWordBytes +
        image.records.size() * trace::kTraceRecordBytes;
    const std::size_t file_bytes = trace::encode(image, compress).size();
    std::printf("wrote %s: %zu records, %zu regions, %zu init words, "
                "%zu bytes (%.0f%% of raw)\n",
                out_path.c_str(), image.records.size(), image.regions.size(),
                image.init_words.size(), file_bytes,
                100.0 * static_cast<double>(file_bytes) /
                    static_cast<double>(raw_bytes));

    if (verify) {
      const RunSummary want = run_image(original, verify_instrs);
      const RunSummary got =
          run_image(trace::load_workload(out_path), verify_instrs);
      bool ok = want.result.cycles == got.result.cycles &&
                want.result.committed_instrs == got.result.committed_instrs &&
                want.result.stop == got.result.stop;
      for (int r = 0; r < kNumArchRegs; ++r) {
        ok = ok && want.regs[r] == got.regs[r];
      }
      if (!ok) {
        std::printf("verify: FAIL — original %llu cycles / %llu instrs, "
                    "replay %llu cycles / %llu instrs\n",
                    static_cast<unsigned long long>(want.result.cycles),
                    static_cast<unsigned long long>(
                        want.result.committed_instrs),
                    static_cast<unsigned long long>(got.result.cycles),
                    static_cast<unsigned long long>(
                        got.result.committed_instrs));
        return 1;
      }
      std::printf("verify: PASS — replay bit-identical (%llu cycles, "
                  "%llu instrs)\n",
                  static_cast<unsigned long long>(got.result.cycles),
                  static_cast<unsigned long long>(
                      got.result.committed_instrs));
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "trace_record: %s\n", e.what());
    return 2;
  }
  return 0;
}
