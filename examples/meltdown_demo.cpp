// Meltdown end to end: a user-mode program reads kernel memory through
// the deferred permission check, recovers from the fault, and extracts
// the value from the cache — then SafeSpec-WFC stops it while WFB
// (wait-for-branch) demonstrably does NOT, because Meltdown involves no
// branch (Table III).
//
//   $ ./examples/meltdown_demo [secret-byte]
#include <cstdio>
#include <cstdlib>

#include "attacks/attacks.h"

int main(int argc, char** argv) {
  using namespace safespec;
  const int secret = argc > 1 ? std::atoi(argv[1]) & 0xFF : 0x7E;

  std::printf("Kernel page holds secret byte 0x%02X; attacker runs in user "
              "mode.\n\n", secret);
  for (const char* policy : {"baseline", "WFB", "WFC"}) {
    const auto out = attacks::run_meltdown(policy, secret);
    std::printf("policy=%-8s  %s", policy,
                out.leaked ? "LEAKED" : "no leak");
    if (out.leaked) std::printf("  recovered=0x%02X", out.recovered);
    std::printf("  [%s]\n", out.detail.c_str());
  }

  std::printf("\nWhy WFB fails here: WFB promotes shadow state once all\n"
              "older *branches* have resolved — but the Meltdown gadget is\n"
              "straight-line code, so the transmitting cache line is\n"
              "promoted before the faulting load reaches commit. Only WFC\n"
              "(wait-for-commit) holds the state until the load itself\n"
              "commits, which it never does.\n");
  return 0;
}
