// Workload explorer: run any of the 21 SPEC2017-like profiles under any
// protection policy and dump the microarchitectural statistics the
// figures are built from.
//
//   $ ./examples/workload_explorer                 # list profiles
//   $ ./examples/workload_explorer mcf wfc 100000  # run one
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "sim/sim_config.h"
#include "workloads/runner.h"

int main(int argc, char** argv) {
  using namespace safespec;

  if (argc < 2) {
    std::printf("usage: %s <profile> [baseline|wfb|wfc] [instrs]\n\n",
                argv[0]);
    std::printf("profiles:");
    for (const auto& p : workloads::spec2017_profiles()) {
      std::printf(" %s", p.name.c_str());
    }
    std::printf("\n");
    return 0;
  }

  shadow::CommitPolicy policy = shadow::CommitPolicy::kWFC;
  if (argc > 2) {
    if (std::strcmp(argv[2], "baseline") == 0) {
      policy = shadow::CommitPolicy::kBaseline;
    } else if (std::strcmp(argv[2], "wfb") == 0) {
      policy = shadow::CommitPolicy::kWFB;
    }
  }
  const std::uint64_t instrs = argc > 3
                                   ? std::strtoull(argv[3], nullptr, 10)
                                   : 60'000;

  const auto profile = workloads::profile_by_name(argv[1]);
  std::printf("running %s under %s for ~%llu instructions...\n",
              profile.name.c_str(), shadow::to_string(policy),
              static_cast<unsigned long long>(instrs));
  const auto r = workloads::run_workload(profile,
                                         sim::skylake_config(policy), instrs);

  std::printf("\ncommitted instrs     %llu\n",
              static_cast<unsigned long long>(r.committed_instrs));
  std::printf("cycles               %llu\n",
              static_cast<unsigned long long>(r.cycles));
  std::printf("IPC                  %.4f\n", r.ipc);
  std::printf("branch mispredicts   %llu\n",
              static_cast<unsigned long long>(r.mispredicts));
  std::printf("squashed instrs      %llu\n",
              static_cast<unsigned long long>(r.squashed_instrs));
  std::printf("d-cache miss rate    %.4f (incl. shadow)\n",
              r.dcache_miss_rate_incl_shadow());
  std::printf("i-cache miss rate    %.4f (incl. shadow)\n",
              r.icache_miss_rate_incl_shadow());
  if (policy != shadow::CommitPolicy::kBaseline) {
    std::printf("shadow d-cache       hits=%llu commit-rate=%.3f "
                "p99.99-occupancy=%llu\n",
                static_cast<unsigned long long>(r.shadow_dcache_hits),
                r.shadow_dcache_commit_rate,
                static_cast<unsigned long long>(r.shadow_dcache_p9999));
    std::printf("shadow i-cache       hits=%llu commit-rate=%.3f "
                "p99.99-occupancy=%llu\n",
                static_cast<unsigned long long>(r.shadow_icache_hits),
                r.shadow_icache_commit_rate,
                static_cast<unsigned long long>(r.shadow_icache_p9999));
    std::printf("shadow TLBs          iTLB-p99.99=%llu dTLB-p99.99=%llu\n",
                static_cast<unsigned long long>(r.shadow_itlb_p9999),
                static_cast<unsigned long long>(r.shadow_dtlb_p9999));
  }
  return 0;
}
