// Workload explorer: run any of the 22 SPEC2017-like profiles under any
// registered protection policy on any machine — preset, --config file,
// or --set overrides (a one-cell experiment through the same engine the
// figure benches sweep with) — and dump the microarchitectural
// statistics the figures are built from.
//
//   $ ./examples/workload_explorer                  # list profiles etc.
//   $ ./examples/workload_explorer mcf WFC 100000   # run one
//   $ ./examples/workload_explorer mcf WFB-stall --set=preset=embedded
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <stdexcept>

#include "experiment/experiment.h"
#include "safespec/policy.h"

int main(int argc, char** argv) {
  using namespace safespec;
  const auto opts = experiment::parse_bench_args(
      argc, argv, "[profile [policy] [instrs]]");

  if (opts.positional.empty()) {
    std::printf("usage: %s <profile> [policy] [instrs]\n\n", argv[0]);
    std::printf("profiles:");
    for (const auto& name : workloads::spec2017_profile_names()) {
      std::printf(" %s", name.c_str());
    }
    std::printf("\npolicies:");
    for (const auto& name : policy::registered_policy_names()) {
      std::printf(" %s", name.c_str());
    }
    std::printf("\npresets:");
    for (const auto& name : sim::machine_preset_names()) {
      std::printf(" %s", name.c_str());
    }
    std::printf("\n");
    return 0;
  }

  auto machine = experiment::resolve_machine(opts);
  // Policy precedence: positional (any registered name; legacy lowercase
  // aliases kept) > --config/--set policy > WFC.
  bool machine_policy_chosen = !opts.config_path.empty();
  for (const auto& kv : opts.overrides) {
    if (kv.rfind("policy=", 0) == 0) machine_policy_chosen = true;
  }
  std::string policy_name =
      opts.positional.size() > 1
          ? opts.positional[1]
          : machine_policy_chosen ? machine.core.policy : std::string("WFC");
  if (policy_name == "wfb") policy_name = "WFB";
  if (policy_name == "wfc") policy_name = "WFC";
  const std::uint64_t instrs =
      opts.positional.size() > 2
          ? std::strtoull(opts.positional[2].c_str(), nullptr, 10)
          : opts.instrs;

  experiment::ExperimentSpec spec;
  spec.base_machine(std::move(machine));
  try {
    spec.profile_names({opts.positional[0]});
    spec.policy(policy_name);
  } catch (const std::out_of_range& e) {
    std::fprintf(stderr, "%s (run with no arguments to list profiles and "
                 "policies)\n", e.what());
    return 1;
  }
  spec.instrs(instrs);
  std::printf("running %s under %s for ~%llu instructions...\n",
              spec.profile_axis()[0].name.c_str(), policy_name.c_str(),
              static_cast<unsigned long long>(instrs));
  const auto sweep = experiment::ParallelRunner(opts.threads).run(spec);
  const auto& r = sweep.at(0, 0);

  std::printf("\ncommitted instrs     %llu\n",
              static_cast<unsigned long long>(r.committed_instrs));
  std::printf("cycles               %llu\n",
              static_cast<unsigned long long>(r.cycles));
  std::printf("IPC                  %.4f\n", r.ipc);
  std::printf("branch mispredicts   %llu\n",
              static_cast<unsigned long long>(r.mispredicts));
  std::printf("squashed instrs      %llu\n",
              static_cast<unsigned long long>(r.squashed_instrs));
  std::printf("d-cache miss rate    %.4f (incl. shadow)\n",
              r.dcache_miss_rate_incl_shadow());
  std::printf("i-cache miss rate    %.4f (incl. shadow)\n",
              r.icache_miss_rate_incl_shadow());
  if (policy::named_policy(policy_name).shadows_speculation()) {
    std::printf("shadow d-cache       hits=%llu commit-rate=%.3f "
                "p99.99-occupancy=%llu\n",
                static_cast<unsigned long long>(r.shadow_dcache_hits),
                r.shadow_dcache_commit_rate,
                static_cast<unsigned long long>(r.shadow_dcache_p9999));
    std::printf("shadow i-cache       hits=%llu commit-rate=%.3f "
                "p99.99-occupancy=%llu\n",
                static_cast<unsigned long long>(r.shadow_icache_hits),
                r.shadow_icache_commit_rate,
                static_cast<unsigned long long>(r.shadow_icache_p9999));
    std::printf("shadow TLBs          iTLB-p99.99=%llu dTLB-p99.99=%llu\n",
                static_cast<unsigned long long>(r.shadow_itlb_p9999),
                static_cast<unsigned long long>(r.shadow_dtlb_p9999));
  }

  if (!opts.csv_path.empty() || !opts.json_path.empty()) {
    experiment::ResultTable table(
        "workload_explorer", {"ipc", "dcache_miss_rate", "icache_miss_rate"});
    table.add_row(spec.profile_axis()[0].name,
                  {r.ipc, r.dcache_miss_rate_incl_shadow(),
                   r.icache_miss_rate_incl_shadow()});
    experiment::write_files({&table}, opts);
  }
  return 0;
}
