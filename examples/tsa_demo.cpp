// Transient Speculation Attack (Fig 10) demo: shows the covert channel
// *inside* the shadow state opening when the shadow d-cache is
// undersized (both the drop and stall full-policies) and closing under
// the worst-case "Secure" sizing bounded by the LDQ.
//
//   $ ./examples/tsa_demo
#include <cstdio>

#include "attacks/attacks.h"

int main() {
  using namespace safespec;

  std::printf("TSA: a wrong-path Trojan contends for shadow d-cache entries\n"
              "with a committed-path Spy, inside one speculation window.\n\n");
  std::printf("%-8s %-7s %14s %14s %8s\n", "entries", "policy", "probe(bit0)",
              "probe(bit1)", "result");
  for (int entries : {8, 72}) {
    for (auto fp : {shadow::FullPolicy::kDrop, shadow::FullPolicy::kStall}) {
      attacks::TsaConfig config;
      config.shadow_entries = entries;
      config.full_policy = fp;
      const auto out = attacks::run_tsa_attack(config);
      std::printf("%-8d %-7s %14llu %14llu %8s\n", entries,
                  shadow::to_string(fp),
                  static_cast<unsigned long long>(out.probe_latency_bit0),
                  static_cast<unsigned long long>(out.probe_latency_bit1),
                  out.leaked ? "LEAK" : "closed");
    }
  }
  std::printf("\nWith 8 entries the Trojan can fill the table: under the\n"
              "drop policy the Spy's entry is discarded (its marker line\n"
              "reads slow after commit); under the stall policy the Spy's\n"
              "load is delayed past the squash. With the LDQ-bound sizing\n"
              "(72) the Trojan cannot create contention at all — the\n"
              "paper's worst-case provisioning argument (Section V).\n");
  return 0;
}
