// Quickstart: build a tiny program with the ProgramBuilder, run it on a
// SkyLake-like core under baseline and SafeSpec-WFC, and read results
// back out of the architectural state.
//
//   $ ./examples/quickstart
#include <cstdio>

#include "isa/program.h"
#include "sim/sim_config.h"
#include "sim/simulator.h"

int main() {
  using namespace safespec;
  using isa::AluOp;
  using isa::CondOp;

  // A little program: sum the first 100 integers with a loop, touch some
  // memory, and halt.
  constexpr Addr kData = 0x200000;
  isa::ProgramBuilder b(0x1000);
  b.movi(1, 0);      // i
  b.movi(2, 100);    // bound
  b.movi(3, 0);      // sum
  b.movi(4, kData);  // data pointer
  b.label("loop");
  b.alui(AluOp::kAdd, 1, 1, 1);
  b.alu(AluOp::kAdd, 3, 3, 1);
  b.branch(CondOp::kLt, 1, 2, "loop");
  b.store(3, 4, 0);  // data[0] = sum
  b.load(5, 4, 0);   // read it back
  b.halt();
  auto program = b.build();
  program.set_entry(0x1000);

  for (auto policy : {shadow::CommitPolicy::kBaseline,
                      shadow::CommitPolicy::kWFB,
                      shadow::CommitPolicy::kWFC}) {
    sim::Simulator sim(sim::skylake_config(policy), program);
    sim.map_text();                     // map the code pages
    sim.map_region(kData, kPageSize);   // map the data page
    const auto result = sim.run();

    std::printf("policy=%-8s  sum=%llu  readback=%llu  cycles=%llu  "
                "IPC=%.3f  (stop=%s)\n",
                shadow::to_string(policy),
                static_cast<unsigned long long>(sim.core().reg(3)),
                static_cast<unsigned long long>(sim.core().reg(5)),
                static_cast<unsigned long long>(result.cycles), result.ipc,
                result.stop == cpu::StopReason::kHalted ? "halted" : "other");
  }
  std::printf("\nArchitectural results are identical under every policy —\n"
              "SafeSpec only changes where *speculative* state lives.\n");
  return 0;
}
