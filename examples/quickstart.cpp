// Quickstart: build a tiny program with the ProgramBuilder, stand up a
// machine with the MachineBuilder (preset + policy name + address-space
// setup in one fluent chain), and read results back out of the
// architectural state.
//
//   $ ./examples/quickstart
#include <cstdio>

#include "isa/program.h"
#include "sim/machine.h"

int main() {
  using namespace safespec;
  using isa::AluOp;
  using isa::CondOp;

  // A little program: sum the first 100 integers with a loop, touch some
  // memory, and halt.
  constexpr Addr kData = 0x200000;
  isa::ProgramBuilder b(0x1000);
  b.movi(1, 0);      // i
  b.movi(2, 100);    // bound
  b.movi(3, 0);      // sum
  b.movi(4, kData);  // data pointer
  b.label("loop");
  b.alui(AluOp::kAdd, 1, 1, 1);
  b.alu(AluOp::kAdd, 3, 3, 1);
  b.branch(CondOp::kLt, 1, 2, "loop");
  b.store(3, 4, 0);  // data[0] = sum
  b.load(5, 4, 0);   // read it back
  b.halt();
  auto program = b.build();
  program.set_entry(0x1000);

  for (const char* policy : {"baseline", "WFB", "WFC"}) {
    // Text pages are mapped automatically; the data page rides the spec.
    auto sim = sim::MachineBuilder::from_preset("skylake")
                   .policy(policy)
                   .map_region(kData, kPageSize)
                   .build(program);
    const auto result = sim->run();

    std::printf("policy=%-8s  sum=%llu  readback=%llu  cycles=%llu  "
                "IPC=%.3f  (stop=%s)\n",
                policy,
                static_cast<unsigned long long>(sim->core().reg(3)),
                static_cast<unsigned long long>(sim->core().reg(5)),
                static_cast<unsigned long long>(result.cycles), result.ipc,
                cpu::to_string(result.stop));
  }
  std::printf("\nArchitectural results are identical under every policy —\n"
              "SafeSpec only changes where *speculative* state lives.\n");
  return 0;
}
