// Spectre v1 end to end: leaks a secret byte through the d-cache on the
// insecure baseline, then shows SafeSpec (WFB and WFC) stopping it.
//
//   $ ./examples/spectre_demo [secret-byte]
#include <cstdio>
#include <cstdlib>

#include "attacks/attacks.h"

int main(int argc, char** argv) {
  using namespace safespec;
  const int secret = argc > 1 ? std::atoi(argv[1]) & 0xFF : 0x5A;

  std::printf("Planting secret byte 0x%02X beyond the victim's bounds "
              "check...\n\n", secret);
  for (const char* policy : {"baseline", "WFB", "WFC"}) {
    const auto out = attacks::run_spectre_v1(policy, secret);
    std::printf("policy=%-8s  %s", policy,
                out.leaked ? "LEAKED" : "no leak");
    if (out.leaked) std::printf("  recovered=0x%02X", out.recovered);
    std::printf("  [%s]\n", out.detail.c_str());
  }

  std::printf("\nThe attack mistrains the victim's bounds check, flushes\n"
              "array1_size to widen the speculation window, reads the\n"
              "out-of-bounds byte speculatively and transmits it through a\n"
              "probe-array cache line; a Flush+Reload receiver (timed with\n"
              "in-program rdcycle) recovers it. Under SafeSpec the probe\n"
              "line only ever lives in the shadow d-cache and is annulled\n"
              "when the mispredicted branch squashes.\n");
  return 0;
}
