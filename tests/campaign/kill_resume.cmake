# SIGKILL-and-resume end-to-end check (ctest -P script).
#
# A campaign run is killed with SIGKILL mid-flight, resumed, and merged;
# the merged artifact must be byte-identical to an uninterrupted run of
# the same manifest. Inputs: -DDRIVER (campaign_driver binary),
# -DMANIFEST (campaign JSON), -DWORK (scratch directory).
#
# The kill lands wherever it lands — possibly mid-fprintf (torn journal
# tail), possibly after the run finished (resume is then a no-op). Both
# are valid executions of the protocol and both must converge to the
# reference bytes.

function(run_or_die)
  execute_process(COMMAND ${ARGN} RESULT_VARIABLE rc)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "command failed (rc=${rc}): ${ARGN}")
  endif()
endfunction()

file(REMOVE_RECURSE ${WORK})
file(MAKE_DIRECTORY ${WORK}/clean ${WORK}/killed)

# Reference: one uninterrupted run.
run_or_die(${DRIVER} run --manifest=${MANIFEST} --dir=${WORK}/clean
           --threads=2)
run_or_die(${DRIVER} merge --manifest=${MANIFEST} --dir=${WORK}/clean
           --out=${WORK}/clean.merged.jsonl)

# Victim: start the same run, SIGKILL it mid-flight.
execute_process(COMMAND sh -c
  "${DRIVER} run --manifest=${MANIFEST} --dir=${WORK}/killed --threads=2 \
   >/dev/null 2>&1 & pid=$!; sleep 0.4; kill -9 $pid 2>/dev/null; \
   wait $pid 2>/dev/null; exit 0")

# The interrupted journal must not already be complete, or the kill
# missed and the test would silently degenerate to run-twice.
execute_process(
  COMMAND ${DRIVER} status --manifest=${MANIFEST} --dir=${WORK}/killed
  OUTPUT_VARIABLE status_out)
message(STATUS "after SIGKILL: ${status_out}")
if(status_out MATCHES ": ([0-9]+)/([0-9]+) units done")
  if(CMAKE_MATCH_1 EQUAL CMAKE_MATCH_2)
    message(WARNING "run finished before the kill landed; resume will no-op")
  endif()
endif()

# Resume and merge: byte-identical to the uninterrupted reference.
run_or_die(${DRIVER} run --manifest=${MANIFEST} --dir=${WORK}/killed
           --threads=2)
run_or_die(${DRIVER} merge --manifest=${MANIFEST} --dir=${WORK}/killed
           --out=${WORK}/killed.merged.jsonl)

execute_process(COMMAND ${CMAKE_COMMAND} -E compare_files
  ${WORK}/clean.merged.jsonl ${WORK}/killed.merged.jsonl
  RESULT_VARIABLE diff)
if(NOT diff EQUAL 0)
  message(FATAL_ERROR
    "resumed merge differs from uninterrupted merge "
    "(${WORK}/clean.merged.jsonl vs ${WORK}/killed.merged.jsonl)")
endif()
message(STATUS "kill+resume merge is byte-identical to uninterrupted run")
