# Sharded-fuzz reproducibility check (ctest -P script).
#
# The same fuzz campaign runs once as a single shard and once as two
# concurrent OS processes owning disjoint shards. Both merged artifacts
# must be byte-identical and both triage reports must match. Inputs:
# -DDRIVER, -DMANIFEST1 (shards=1), -DMANIFEST2 (same axes, shards=2),
# -DWORK. The manifests use mutate=commit-xor, so every seed fails and
# triage has real groups to deduplicate; campaign_driver triage exits 1
# on failures by design.

function(run_or_die)
  execute_process(COMMAND ${ARGN} RESULT_VARIABLE rc)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "command failed (rc=${rc}): ${ARGN}")
  endif()
endfunction()

file(REMOVE_RECURSE ${WORK})
file(MAKE_DIRECTORY ${WORK}/one ${WORK}/two)

# Single-process reference.
run_or_die(${DRIVER} run --manifest=${MANIFEST1} --dir=${WORK}/one
           --threads=2)

# Two real processes, one shard each, concurrently.
execute_process(COMMAND sh -c
  "${DRIVER} run --manifest=${MANIFEST2} --dir=${WORK}/two --shard=0 \
     >/dev/null 2>&1 & p0=$!; \
   ${DRIVER} run --manifest=${MANIFEST2} --dir=${WORK}/two --shard=1 \
     >/dev/null 2>&1 & p1=$!; \
   wait $p0 && wait $p1"
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "sharded runs failed (rc=${rc})")
endif()

# Merged artifacts: byte-identical regardless of the split.
run_or_die(${DRIVER} merge --manifest=${MANIFEST1} --dir=${WORK}/one
           --out=${WORK}/one.merged.jsonl)
run_or_die(${DRIVER} merge --manifest=${MANIFEST2} --dir=${WORK}/two
           --out=${WORK}/two.merged.jsonl)
execute_process(COMMAND ${CMAKE_COMMAND} -E compare_files
  ${WORK}/one.merged.jsonl ${WORK}/two.merged.jsonl
  RESULT_VARIABLE diff)
if(NOT diff EQUAL 0)
  message(FATAL_ERROR "sharded merge differs from single-shard merge")
endif()

# Triage reports: identical text and JSON, and rc=1 (failures found).
foreach(side one two)
  if(side STREQUAL "one")
    set(manifest ${MANIFEST1})
  else()
    set(manifest ${MANIFEST2})
  endif()
  execute_process(
    COMMAND ${DRIVER} triage --manifest=${manifest} --dir=${WORK}/${side}
            --json=${WORK}/${side}.triage.json
    OUTPUT_VARIABLE triage_${side} RESULT_VARIABLE rc)
  if(NOT rc EQUAL 1)
    message(FATAL_ERROR
      "triage on ${side} exited ${rc}; expected 1 (mutated campaign "
      "must report failures)")
  endif()
endforeach()

if(NOT triage_one STREQUAL triage_two)
  message(FATAL_ERROR "triage text reports differ:\n--- one ---\n"
    "${triage_one}\n--- two ---\n${triage_two}")
endif()
execute_process(COMMAND ${CMAKE_COMMAND} -E compare_files
  ${WORK}/one.triage.json ${WORK}/two.triage.json
  RESULT_VARIABLE diff)
if(NOT diff EQUAL 0)
  message(FATAL_ERROR "triage JSON reports differ")
endif()
message(STATUS "two-process sharded triage reproduces the single-shard report")
