// Tests for the synthetic SPEC2017 stand-ins: profile table integrity,
// generator determinism and structure, and a cross-policy sweep checking
// every profile runs to completion with sane statistics.
#include <gtest/gtest.h>

#include <set>

#include "sim/sim_config.h"
#include "workloads/runner.h"
#include "workloads/workload.h"

namespace safespec::workloads {
namespace {

TEST(Profiles, TwentyTwoInPaperOrder) {
  // The paper's figures plot 22 SPEC2017 benchmarks, perlbench..gcc.
  const auto profiles = spec2017_profiles();
  ASSERT_EQ(profiles.size(), 22u);
  EXPECT_EQ(profiles.front().name, "perlbench");
  EXPECT_EQ(profiles.back().name, "gcc");
  std::set<std::string> names;
  for (const auto& p : profiles) names.insert(p.name);
  EXPECT_EQ(names.size(), 22u) << "duplicate profile names";
}

TEST(Profiles, FractionsAreSane) {
  for (const auto& p : spec2017_profiles()) {
    EXPECT_GT(p.load_frac, 0.0) << p.name;
    EXPECT_LT(p.load_frac + p.store_frac, 1.0) << p.name;
    EXPECT_LE(p.chase_frac + p.stream_frac, 1.0) << p.name;
    EXPECT_GE(p.hot_frac, 0.0) << p.name;
    EXPECT_LE(p.hot_frac, 1.0) << p.name;
    EXPECT_GT(p.code_blocks, 0) << p.name;
    EXPECT_GE(p.data_footprint, 2 * kPageSize) << p.name;
  }
}

TEST(Profiles, LookupByName) {
  EXPECT_EQ(profile_by_name("mcf").name, "mcf");
  EXPECT_THROW(profile_by_name("notabenchmark"), std::out_of_range);
}

TEST(Generator, DeterministicForSameSeed) {
  const auto p = profile_by_name("xz");
  const auto a = generate(p, 10'000);
  const auto b = generate(p, 10'000);
  ASSERT_EQ(a.program.size(), b.program.size());
  for (const Addr pc : a.program.pcs()) {
    const auto* ia = a.program.at(pc);
    const auto* ib = b.program.at(pc);
    ASSERT_NE(ib, nullptr) << "pc layout differs";
    EXPECT_EQ(static_cast<int>(ia->op), static_cast<int>(ib->op));
    EXPECT_EQ(ia->imm, ib->imm);
  }
}

TEST(Generator, ChaseRegionIsOneCycle) {
  auto p = profile_by_name("mcf");
  const auto image = generate(p, 1'000);
  ASSERT_FALSE(image.init_words.empty());
  // Follow the links: every slot visited exactly once, returning to start.
  std::map<Addr, std::uint64_t> links(image.init_words.begin(),
                                      image.init_words.end());
  const Addr start = links.begin()->first;
  Addr cur = start;
  std::set<Addr> visited;
  for (std::size_t i = 0; i < links.size(); ++i) {
    EXPECT_TRUE(visited.insert(cur).second) << "cycle shorter than region";
    auto it = links.find(cur);
    ASSERT_NE(it, links.end());
    cur = it->second;
  }
  EXPECT_EQ(cur, start);
  EXPECT_EQ(visited.size(), links.size());
}

TEST(Generator, CodeFootprintScalesWithBlocks) {
  auto small = profile_by_name("lbm");       // 16 blocks
  auto large = profile_by_name("gcc");       // 192 blocks
  EXPECT_GT(generate(large, 1'000).program.size(),
            2 * generate(small, 1'000).program.size());
}

TEST(Generator, EmptyBodyRejected) {
  WorkloadProfile p;
  p.code_blocks = 0;
  EXPECT_THROW(generate(p, 1000), std::invalid_argument);
}

// ---- trace:PATH / trace:@NAME error reporting ------------------------------

/// Regression: a missing trace file used to surface only the raw reader
/// error. The wrapper must name the offending path and teach both
/// accepted spellings so a workload-axis typo is self-diagnosing.
TEST(TraceWorkloads, MissingTraceFileNamesPathAndGrammar) {
  const auto profile =
      profile_by_name("trace:/nonexistent/definitely_missing.trace");
  try {
    generate(profile, 1'000);
    FAIL() << "expected runtime_error for a missing trace file";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("/nonexistent/definitely_missing.trace"),
              std::string::npos)
        << what;
    EXPECT_NE(what.find("trace:PATH"), std::string::npos) << what;
    EXPECT_NE(what.find("trace:@NAME"), std::string::npos) << what;
  }
}

TEST(TraceWorkloads, UnknownAtNameSuggestsBothSpellings) {
  try {
    profile_by_name("trace:@no_such_profile");
    FAIL() << "expected out_of_range for an unknown trace:@NAME profile";
  } catch (const std::out_of_range& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("no_such_profile"), std::string::npos) << what;
    EXPECT_NE(what.find("trace:@NAME"), std::string::npos) << what;
    EXPECT_NE(what.find("trace:PATH"), std::string::npos) << what;
  }
}

TEST(TraceWorkloads, EmptyTraceSpecRejected) {
  EXPECT_THROW(profile_by_name("trace:"), std::out_of_range);
}

// Cross-product sweep: every profile must run to its halt (or instruction
// budget) under every policy with a plausible IPC.
struct SweepParam {
  std::string profile;
  shadow::CommitPolicy policy;
};

class WorkloadSweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(WorkloadSweep, RunsWithSaneStatistics) {
  const auto profile = profile_by_name(GetParam().profile);
  const auto r = run_workload(profile, sim::skylake_config(GetParam().policy),
                              5'000);
  EXPECT_GE(r.committed_instrs, 5'000u);
  EXPECT_GT(r.ipc, 0.01);
  EXPECT_LT(r.ipc, 6.0);
  EXPECT_LE(r.dcache_miss_rate_incl_shadow(), 1.0);
  EXPECT_LE(r.icache_miss_rate_incl_shadow(), 1.0);
  if (GetParam().policy != shadow::CommitPolicy::kBaseline) {
    // Shadow occupancy percentiles must respect the structure bounds.
    EXPECT_LE(r.shadow_dcache_p9999, 72u);
    EXPECT_LE(r.shadow_icache_p9999, 224u);
  }
}

std::vector<SweepParam> sweep_params() {
  std::vector<SweepParam> out;
  for (const auto& p : spec2017_profiles()) {
    for (auto policy : {shadow::CommitPolicy::kBaseline,
                        shadow::CommitPolicy::kWFB,
                        shadow::CommitPolicy::kWFC}) {
      out.push_back({p.name, policy});
    }
  }
  return out;
}

INSTANTIATE_TEST_SUITE_P(
    AllProfilesAllPolicies, WorkloadSweep, ::testing::ValuesIn(sweep_params()),
    [](const ::testing::TestParamInfo<SweepParam>& info) {
      return info.param.profile + "_" +
             shadow::to_string(info.param.policy);
    });

}  // namespace
}  // namespace safespec::workloads
