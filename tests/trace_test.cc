// Trace subsystem: codec round trips, the chunked streaming reader,
// corrupt-input rejection, replay bit-identity (the guarantee the trace
// frontend rests on), the fetch decoded-instruction buffer's
// cycle-neutrality, and the cached functional engine.
#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "gtest/gtest.h"

#include "experiment/experiment.h"
#include "fuzz/fuzz_spec.h"
#include "fuzz/generator.h"
#include "sim/functional.h"
#include "sim/machine.h"
#include "sim/simulator.h"
#include "trace/trace.h"
#include "trace/trace_workload.h"
#include "workloads/runner.h"
#include "workloads/workload.h"

namespace {

using namespace safespec;

constexpr std::uint64_t kInstrs = 20'000;

/// One detailed run of an image plus the full architectural register
/// file — everything "bit-identical replay" must preserve.
struct RunOutcome {
  sim::SimResult result;
  std::array<std::uint64_t, kNumArchRegs> regs{};
};

RunOutcome run_image(workloads::WorkloadImage image,
                     const cpu::CoreConfig& config, std::uint64_t instrs) {
  auto sim = workloads::make_image_sim(std::move(image), config);
  RunOutcome out;
  out.result = sim->run(instrs * 40 + 1'000'000,
                        instrs == 0 ? ~0ULL : instrs);
  for (int r = 0; r < kNumArchRegs; ++r) {
    out.regs[static_cast<std::size_t>(r)] =
        sim->core().reg(static_cast<RegIndex>(r));
  }
  return out;
}

void expect_identical(const RunOutcome& a, const RunOutcome& b) {
  EXPECT_EQ(a.result.cycles, b.result.cycles);
  EXPECT_EQ(a.result.committed_instrs, b.result.committed_instrs);
  EXPECT_EQ(a.result.stop, b.result.stop);
  EXPECT_EQ(a.result.mispredicts, b.result.mispredicts);
  EXPECT_EQ(a.result.faults, b.result.faults);
  EXPECT_EQ(a.regs, b.regs);
}

/// FuzzProgram -> WorkloadImage without going anywhere near the trace
/// codec — the reference side of the fuzz round-trip tests.
workloads::WorkloadImage image_of(const fuzz::FuzzProgram& fp) {
  workloads::WorkloadImage image;
  image.program = fp.program;
  for (const sim::MemRegion& region : fp.regions) {
    image.regions.push_back({region.base, region.bytes,
                             region.perm == memory::PagePerm::kKernel});
  }
  for (const sim::Poke& poke : fp.pokes) {
    image.init_words.emplace_back(poke.addr, poke.value);
  }
  return image;
}

// ---- codec ------------------------------------------------------------------

TEST(TraceCodec, ImageSurvivesEncodeDecode) {
  const auto workload =
      workloads::generate(workloads::profile_by_name("mcf"), kInstrs);
  const trace::TraceImage image = trace::record_workload(workload);
  ASSERT_FALSE(image.records.empty());
  ASSERT_FALSE(image.regions.empty());
  ASSERT_FALSE(image.init_words.empty());  // mcf has chase links

  const trace::TraceImage back = trace::decode(trace::encode(image));
  EXPECT_EQ(back.entry, image.entry);
  EXPECT_EQ(back.fault_handler, image.fault_handler);
  ASSERT_EQ(back.regions.size(), image.regions.size());
  for (std::size_t i = 0; i < image.regions.size(); ++i) {
    EXPECT_EQ(back.regions[i].base, image.regions[i].base);
    EXPECT_EQ(back.regions[i].bytes, image.regions[i].bytes);
    EXPECT_EQ(back.regions[i].kernel, image.regions[i].kernel);
  }
  ASSERT_EQ(back.init_words.size(), image.init_words.size());
  for (std::size_t i = 0; i < image.init_words.size(); ++i) {
    EXPECT_EQ(back.init_words[i].addr, image.init_words[i].addr);
    EXPECT_EQ(back.init_words[i].value, image.init_words[i].value);
  }
  ASSERT_EQ(back.records.size(), image.records.size());
  for (std::size_t i = 0; i < image.records.size(); ++i) {
    EXPECT_EQ(back.records[i].pc, image.records[i].pc);
    EXPECT_EQ(back.records[i].op, image.records[i].op);
    EXPECT_EQ(back.records[i].imm, image.records[i].imm);
    EXPECT_EQ(back.records[i].target, image.records[i].target);
    EXPECT_EQ(back.records[i].flags, image.records[i].flags);
  }
}

TEST(TraceCodec, StreamingReaderMatchesWholeImageDecode) {
  // xalancbmk's large code footprint spans several chunks, so this
  // exercises the chunk-boundary path, not just one small chunk.
  const auto workload =
      workloads::generate(workloads::profile_by_name("xalancbmk"), kInstrs);
  const trace::TraceImage image = trace::record_workload(workload);
  ASSERT_GT(image.records.size(), trace::kTraceChunkRecords);

  const std::vector<std::uint8_t> bytes = trace::encode(image);
  trace::TraceReader reader(bytes.data(), bytes.size());
  EXPECT_EQ(reader.records_total(), image.records.size());

  trace::TraceRecord rec;
  std::size_t i = 0;
  while (reader.next(rec)) {
    ASSERT_LT(i, image.records.size());
    EXPECT_EQ(rec.pc, image.records[i].pc);
    EXPECT_EQ(rec.op, image.records[i].op);
    EXPECT_EQ(rec.imm, image.records[i].imm);
    ++i;
  }
  EXPECT_EQ(i, image.records.size());
  EXPECT_EQ(reader.records_read(), image.records.size());
}

TEST(TraceCodec, CompressionShrinksTheFile) {
  // exchange2 has no init-word tables (stored raw by design), so the
  // file is essentially records and the codec's ratio shows cleanly.
  const auto workload =
      workloads::generate(workloads::profile_by_name("exchange2"), kInstrs);
  const trace::TraceImage image = trace::record_workload(workload);
  const std::size_t compressed = trace::encode(image, true).size();
  const std::size_t raw = trace::encode(image, false).size();
  EXPECT_LT(compressed, raw / 2);  // XOR-delta + zero-RLE bites hard
  // Both spellings decode to the same image.
  EXPECT_EQ(trace::decode(trace::encode(image, false)).records.size(),
            image.records.size());
}

// ---- corrupt input ----------------------------------------------------------

TEST(TraceCodec, RejectsBadMagic) {
  auto bytes = trace::encode(trace::TraceImage{});
  bytes[0] ^= 0xff;
  EXPECT_THROW(trace::decode(bytes), std::runtime_error);
  try {
    trace::decode(bytes);
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("magic"), std::string::npos);
  }
}

TEST(TraceCodec, RejectsWrongVersion) {
  auto bytes = trace::encode(trace::TraceImage{});
  bytes[4] = 99;
  try {
    trace::decode(bytes);
    FAIL() << "version 99 must be rejected";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("version 99"), std::string::npos);
    EXPECT_NE(what.find("version 1"), std::string::npos);
  }
}

TEST(TraceCodec, RejectsTruncation) {
  const auto workload =
      workloads::generate(workloads::profile_by_name("mcf"), kInstrs);
  auto bytes = trace::encode(trace::record_workload(workload));
  // Mid-header, mid-tables, and mid-chunk truncations all fail loudly.
  for (const std::size_t keep :
       {std::size_t{10}, std::size_t{70}, bytes.size() - 5}) {
    std::vector<std::uint8_t> cut(bytes.begin(),
                                  bytes.begin() + static_cast<long>(keep));
    EXPECT_THROW(trace::decode(cut), std::runtime_error) << keep;
  }
}

TEST(TraceCodec, RejectsCorruptPayload) {
  const auto workload =
      workloads::generate(workloads::profile_by_name("mcf"), kInstrs);
  auto bytes = trace::encode(trace::record_workload(workload));
  bytes.back() ^= 0x5a;  // damage the last chunk's payload
  EXPECT_THROW(trace::decode(bytes), std::runtime_error);
}

// ---- replay bit-identity ----------------------------------------------------

TEST(TraceReplay, InMemoryRoundTripIsBitIdentical) {
  const cpu::CoreConfig config;
  const auto direct = workloads::profile_by_name("mcf");
  const auto traced = workloads::profile_by_name("trace:@mcf");
  ASSERT_EQ(traced.trace_file, "@");
  expect_identical(run_image(workloads::generate(direct, kInstrs), config,
                             kInstrs),
                   run_image(workloads::generate(traced, kInstrs), config,
                             kInstrs));
}

TEST(TraceReplay, FileRoundTripIsBitIdenticalPerFuzzScenarioClass) {
  const struct {
    const char* name;
    double fuzz::ScenarioWeights::*weight;
  } classes[] = {
      {"branch_heavy", &fuzz::ScenarioWeights::branch_heavy},
      {"pointer_chase", &fuzz::ScenarioWeights::pointer_chase},
      {"protected_window", &fuzz::ScenarioWeights::protected_window},
      {"self_confusing", &fuzz::ScenarioWeights::self_confusing},
      {"mixed_compute", &fuzz::ScenarioWeights::mixed_compute},
      {"mem_storm", &fuzz::ScenarioWeights::mem_storm},
  };
  const cpu::CoreConfig config;
  for (const auto& scenario : classes) {
    SCOPED_TRACE(scenario.name);
    fuzz::FuzzSpec spec;
    spec.weights = {};
    spec.weights.branch_heavy = 0.0;
    spec.weights.pointer_chase = 0.0;
    spec.weights.protected_window = 0.0;
    spec.weights.self_confusing = 0.0;
    spec.weights.mixed_compute = 0.0;
    spec.weights.mem_storm = 0.0;
    spec.weights.*scenario.weight = 1.0;

    const auto fp = fuzz::generate_program(7, spec);
    const std::string path =
        ::testing::TempDir() + "trace_test_" + scenario.name + ".trace";
    trace::write_trace_file(path, trace::record_fuzz(fp));

    expect_identical(run_image(image_of(fp), config, 0),
                     run_image(trace::load_workload(path), config, 0));
    std::remove(path.c_str());
  }
}

// ---- decoded-instruction buffer ---------------------------------------------

TEST(Dib, OnVsOffIsCycleIdentical) {
  for (const char* name : {"exchange2", "mcf"}) {
    SCOPED_TRACE(name);
    const auto profile = workloads::profile_by_name(name);
    cpu::CoreConfig on;
    cpu::CoreConfig off;
    off.dib_lines = 0;
    auto sim_on = workloads::make_workload_sim(profile, on, kInstrs);
    auto sim_off = workloads::make_workload_sim(profile, off, kInstrs);
    const auto r_on = sim_on->run(kInstrs * 40 + 1'000'000, kInstrs);
    const auto r_off = sim_off->run(kInstrs * 40 + 1'000'000, kInstrs);
    EXPECT_EQ(r_on.cycles, r_off.cycles);
    EXPECT_EQ(r_on.committed_instrs, r_off.committed_instrs);
    EXPECT_EQ(r_on.mispredicts, r_off.mispredicts);
    for (int r = 0; r < kNumArchRegs; ++r) {
      EXPECT_EQ(sim_on->core().reg(static_cast<RegIndex>(r)),
                sim_off->core().reg(static_cast<RegIndex>(r)));
    }
    // The DIB actually worked (hits) on one side and was truly off on
    // the other.
    EXPECT_GT(sim_on->core().stats().dib_hits, 0u);
    EXPECT_EQ(sim_off->core().stats().dib_hits, 0u);
    EXPECT_EQ(sim_off->core().stats().dib_fills, 0u);
  }
}

TEST(Dib, MidRunInvalidationChangesNothing) {
  const auto profile = workloads::profile_by_name("exchange2");
  const cpu::CoreConfig config;
  // Both sims run split in two segments; one invalidates the DIB at the
  // seam. Identical outcomes isolate invalidation as a pure no-op.
  auto plain = workloads::make_workload_sim(profile, config, kInstrs);
  auto invalidated = workloads::make_workload_sim(profile, config, kInstrs);
  const Cycle budget = kInstrs * 40 + 1'000'000;
  plain->core().run(budget, 5'000);
  invalidated->core().run(budget, 5'000);
  invalidated->core().invalidate_dib();
  plain->core().run(budget, kInstrs);
  invalidated->core().run(budget, kInstrs);
  EXPECT_EQ(plain->core().stats().cycles,
            invalidated->core().stats().cycles);
  EXPECT_EQ(plain->core().stats().committed_instrs,
            invalidated->core().stats().committed_instrs);
  // The invalidated side had to refill, so it recorded strictly more
  // fills.
  EXPECT_GT(invalidated->core().stats().dib_fills,
            plain->core().stats().dib_fills);
}

// ---- cached functional engine -----------------------------------------------

TEST(CachedEngine, SimulatorReturnsOneEngineAndResetRestoresPristine) {
  auto sim = workloads::make_workload_sim(workloads::profile_by_name("mcf"),
                                          cpu::CoreConfig{}, kInstrs);
  sim::FunctionalEngine& engine = sim->functional_engine();
  EXPECT_EQ(&engine, &sim->functional_engine());  // cached, not rebuilt

  engine.run(2'000);
  EXPECT_GT(engine.committed(), 0u);
  engine.reset();
  EXPECT_EQ(engine.committed(), 0u);
  EXPECT_EQ(engine.faults(), 0u);
  for (int r = 0; r < kNumArchRegs; ++r) {
    EXPECT_EQ(engine.reg(static_cast<RegIndex>(r)), 0u);
  }
  // A fresh run starts at the entry again.
  engine.run(1);
  EXPECT_EQ(engine.committed(), 1u);
}

TEST(CachedEngine, SampledRunsStayDeterministicAcrossSimulators) {
  const auto profile = workloads::profile_by_name("gcc");
  const cpu::CoreConfig config;
  sim::SamplingSpec spec;
  spec.fast_forward_interval = 4'000;
  spec.warmup_instrs = 500;
  spec.detail_instrs = 1'000;
  auto a = workloads::make_workload_sim(profile, config, kInstrs);
  auto b = workloads::make_workload_sim(profile, config, kInstrs);
  const auto ra = a->run_sampled(spec, kInstrs * 40 + 1'000'000, kInstrs);
  const auto rb = b->run_sampled(spec, kInstrs * 40 + 1'000'000, kInstrs);
  EXPECT_EQ(ra.cycles, rb.cycles);
  EXPECT_EQ(ra.committed_instrs, rb.committed_instrs);
  EXPECT_EQ(ra.sampling.windows, rb.sampling.windows);
  EXPECT_EQ(ra.sampling.fast_forwarded, rb.sampling.fast_forwarded);
  EXPECT_GT(ra.sampling.windows, 0u);
}

// ---- spec plumbing ----------------------------------------------------------

TEST(TraceSpec, MachineSpecCarriesTraceAndDibFields) {
  sim::MachineSpec spec;
  spec.set("trace=@");
  spec.set("dib_lines=0");
  EXPECT_EQ(spec.trace, "@");
  EXPECT_EQ(spec.core.dib_lines, 0);

  const std::string json = spec.to_json();
  const sim::MachineSpec parsed = sim::MachineSpec::from_json(json);
  EXPECT_EQ(parsed.trace, "@");
  EXPECT_EQ(parsed.core.dib_lines, 0);
  EXPECT_EQ(parsed.to_json(), json);  // stable round trip

  sim::MachineSpec bad;
  bad.core.dib_lines = -1;
  EXPECT_THROW(bad.validate(), std::invalid_argument);
}

TEST(TraceSpec, ExperimentExpandAppliesTheTraceAxis) {
  sim::MachineSpec machine = sim::machine_preset("skylake");
  machine.trace = "@";
  experiment::ExperimentSpec spec;
  spec.profile_names({"mcf", "gcc"})
      .base_machine(machine)
      .policy("baseline")
      .instrs(1'000);
  const auto cells = spec.expand();
  ASSERT_EQ(cells.size(), 2u);
  for (const auto& cell : cells) {
    EXPECT_EQ(cell.profile.trace_file, "@");
  }
  EXPECT_EQ(cells[0].profile.name, "mcf");  // row labels survive
}

TEST(TraceSpec, ProfileByNameTraceSpellings) {
  const auto in_memory = workloads::profile_by_name("trace:@lbm");
  EXPECT_EQ(in_memory.trace_file, "@");
  EXPECT_EQ(in_memory.name, "trace:@lbm");
  EXPECT_EQ(in_memory.stream_frac,
            workloads::profile_by_name("lbm").stream_frac);

  const auto from_file = workloads::profile_by_name("trace:/tmp/x.trace");
  EXPECT_EQ(from_file.trace_file, "/tmp/x.trace");

  EXPECT_THROW(workloads::profile_by_name("trace:"), std::out_of_range);
  EXPECT_THROW(workloads::profile_by_name("trace:@nosuch"),
               std::out_of_range);
  EXPECT_THROW(workloads::generate(from_file, 1'000), std::runtime_error);
}

}  // namespace
