// Unit and property tests for the micro-ISA: ALU/condition evaluation,
// instruction classification, and the ProgramBuilder (labels, fixups,
// layout errors).
#include <gtest/gtest.h>

#include "common/rng.h"
#include "isa/instruction.h"
#include "isa/program.h"

namespace safespec::isa {
namespace {

// ---- eval_alu ----------------------------------------------------------------

TEST(EvalAlu, BasicOps) {
  EXPECT_EQ(eval_alu(AluOp::kAdd, 2, 3), 5u);
  EXPECT_EQ(eval_alu(AluOp::kSub, 2, 3), static_cast<std::uint64_t>(-1));
  EXPECT_EQ(eval_alu(AluOp::kAnd, 0b1100, 0b1010), 0b1000u);
  EXPECT_EQ(eval_alu(AluOp::kOr, 0b1100, 0b1010), 0b1110u);
  EXPECT_EQ(eval_alu(AluOp::kXor, 0b1100, 0b1010), 0b0110u);
  EXPECT_EQ(eval_alu(AluOp::kShl, 1, 10), 1024u);
  EXPECT_EQ(eval_alu(AluOp::kShr, 1024, 10), 1u);
  EXPECT_EQ(eval_alu(AluOp::kMul, 6, 7), 42u);
  EXPECT_EQ(eval_alu(AluOp::kDiv, 42, 6), 7u);
  EXPECT_EQ(eval_alu(AluOp::kMovImm, 99, 7), 7u);
}

TEST(EvalAlu, DivisionByZeroIsTotal) {
  EXPECT_EQ(eval_alu(AluOp::kDiv, 42, 0), ~0ull);
}

TEST(EvalAlu, ShiftAmountsMasked) {
  // Shifts use the low 6 bits of the amount (as on x86-64).
  EXPECT_EQ(eval_alu(AluOp::kShl, 1, 64), 1u);
  EXPECT_EQ(eval_alu(AluOp::kShr, 8, 65), 4u);
}

TEST(EvalAluProperty, XorIsInvolution) {
  Rng rng(11);
  for (int i = 0; i < 200; ++i) {
    const auto a = rng.next();
    const auto b = rng.next();
    EXPECT_EQ(eval_alu(AluOp::kXor, eval_alu(AluOp::kXor, a, b), b), a);
  }
}

TEST(EvalAluProperty, AddSubRoundTrip) {
  Rng rng(12);
  for (int i = 0; i < 200; ++i) {
    const auto a = rng.next();
    const auto b = rng.next();
    EXPECT_EQ(eval_alu(AluOp::kSub, eval_alu(AluOp::kAdd, a, b), b), a);
  }
}

// ---- eval_cond -----------------------------------------------------------------

TEST(EvalCond, SignedVsUnsigned) {
  const std::uint64_t minus_one = ~0ull;
  EXPECT_TRUE(eval_cond(CondOp::kLt, minus_one, 1));   // signed: -1 < 1
  EXPECT_FALSE(eval_cond(CondOp::kLtu, minus_one, 1)); // unsigned: max > 1
  EXPECT_TRUE(eval_cond(CondOp::kGeu, minus_one, 1));
  EXPECT_FALSE(eval_cond(CondOp::kGe, minus_one, 1));
}

TEST(EvalCondProperty, PairsAreComplements) {
  Rng rng(13);
  for (int i = 0; i < 200; ++i) {
    const auto a = rng.next();
    const auto b = rng.next();
    EXPECT_NE(eval_cond(CondOp::kEq, a, b), eval_cond(CondOp::kNe, a, b));
    EXPECT_NE(eval_cond(CondOp::kLt, a, b), eval_cond(CondOp::kGe, a, b));
    EXPECT_NE(eval_cond(CondOp::kLtu, a, b), eval_cond(CondOp::kGeu, a, b));
  }
}

// ---- instruction classification ---------------------------------------------

TEST(Instruction, Classification) {
  Instruction i;
  i.op = OpClass::kBranch;
  EXPECT_TRUE(i.is_branch());
  EXPECT_FALSE(i.is_memory());
  i.op = OpClass::kLoad;
  EXPECT_TRUE(i.is_memory());
  EXPECT_FALSE(i.is_branch());
  i.op = OpClass::kFlush;
  EXPECT_TRUE(i.is_memory());
}

TEST(Instruction, WritesRegisterRules) {
  Instruction i;
  i.op = OpClass::kAlu;
  i.dst = 5;
  EXPECT_TRUE(i.writes_register());
  i.dst = kZeroReg;  // writes to r0 are discarded
  EXPECT_FALSE(i.writes_register());
  i.op = OpClass::kStore;
  i.dst = 5;
  EXPECT_FALSE(i.writes_register());
  i.op = OpClass::kCall;
  i.dst = kLinkReg;
  EXPECT_TRUE(i.writes_register());
}

TEST(Instruction, ToStringMentionsOpcode) {
  Instruction i;
  i.op = OpClass::kLoad;
  EXPECT_NE(to_string(i).find("load"), std::string::npos);
}

// ---- Program / ProgramBuilder --------------------------------------------------

TEST(Program, PlaceAndLookup) {
  Program p;
  Instruction i;
  i.op = OpClass::kNop;
  p.place(0x1000, i);
  EXPECT_NE(p.at(0x1000), nullptr);
  EXPECT_EQ(p.at(0x1004), nullptr);
  EXPECT_TRUE(p.contains(0x1000));
}

TEST(Program, MisalignedPlaceThrows) {
  Program p;
  EXPECT_THROW(p.place(0x1002, Instruction{}), std::invalid_argument);
}

TEST(Program, DoubleOccupancyThrowsUnlessOverwrite) {
  Program p;
  p.place(0x1000, Instruction{});
  EXPECT_THROW(p.place(0x1000, Instruction{}), std::invalid_argument);
  EXPECT_NO_THROW(p.place(0x1000, Instruction{}, /*overwrite=*/true));
}

TEST(ProgramBuilder, SequentialLayout) {
  ProgramBuilder b(0x1000);
  b.nop().nop().nop();
  EXPECT_EQ(b.here(), 0x1000u + 3 * kInstrBytes);
}

TEST(ProgramBuilder, ForwardLabelResolved) {
  ProgramBuilder b(0x1000);
  b.jump("end");
  b.nop();
  b.label("end").halt();
  const auto p = b.build();
  EXPECT_EQ(p.at(0x1000)->target, b.label_addr("end"));
}

TEST(ProgramBuilder, BackwardLabelResolved) {
  ProgramBuilder b(0x1000);
  b.label("top").nop();
  b.jump("top");
  const auto p = b.build();
  EXPECT_EQ(p.at(0x1004)->target, 0x1000u);
}

TEST(ProgramBuilder, UnboundLabelThrowsAtBuild) {
  ProgramBuilder b(0x1000);
  b.jump("nowhere");
  EXPECT_THROW(b.build(), std::runtime_error);
}

TEST(ProgramBuilder, DuplicateLabelThrows) {
  ProgramBuilder b(0x1000);
  b.label("x");
  EXPECT_THROW(b.label("x"), std::invalid_argument);
}

TEST(ProgramBuilder, AtRepositionsCursor) {
  ProgramBuilder b(0x1000);
  b.nop();
  b.at(0x2000).nop();
  const auto p = b.build();
  EXPECT_TRUE(p.contains(0x1000));
  EXPECT_TRUE(p.contains(0x2000));
  EXPECT_THROW(b.at(0x2002), std::invalid_argument);
}

TEST(ProgramBuilder, PcsSortedAscending) {
  ProgramBuilder b(0x2000);
  b.nop();
  b.at(0x1000).nop();
  const auto pcs = b.build().pcs();
  ASSERT_EQ(pcs.size(), 2u);
  EXPECT_LT(pcs[0], pcs[1]);
}

TEST(ProgramBuilder, EmittersEncodeOperands) {
  ProgramBuilder b(0x1000);
  b.movi(3, 42);
  b.load(4, 3, 8);
  b.store(4, 3, 16);
  b.flush(3, 0);
  const auto p = b.build();
  const auto* movi = p.at(0x1000);
  EXPECT_EQ(movi->alu, AluOp::kMovImm);
  EXPECT_EQ(movi->dst, 3);
  EXPECT_EQ(movi->imm, 42);
  const auto* load = p.at(0x1004);
  EXPECT_EQ(load->op, OpClass::kLoad);
  EXPECT_EQ(load->src1, 3);
  EXPECT_EQ(load->imm, 8);
  const auto* store = p.at(0x1008);
  EXPECT_EQ(store->op, OpClass::kStore);
  EXPECT_EQ(store->src2, 4);
}

}  // namespace
}  // namespace safespec::isa
