// Focused behavioural tests of the SafeSpec policies inside the core:
// promotion timing, TLB isolation, store-queue details, and control-flow
// corner cases that the end-to-end attack tests exercise only indirectly.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "isa/program.h"
#include "safespec/policy.h"
#include "sim/sim_config.h"
#include "sim/simulator.h"

namespace safespec {
namespace {

using isa::AluOp;
using isa::CondOp;
using isa::ProgramBuilder;
using shadow::CommitPolicy;

sim::Simulator make_sim(isa::Program program, CommitPolicy policy) {
  sim::Simulator s(sim::skylake_config(policy), std::move(program));
  s.map_text();
  return s;
}

TEST(TlbIsolation, SpeculativeTranslationStaysOutOfPrimaryDtlbUnderWFC) {
  // A committed load must promote its translation; under WFC nothing may
  // appear in the primary dTLB before that commit. After the run the
  // translation must be present (it committed).
  constexpr Addr kData = 0x700000;
  ProgramBuilder b(0x1000);
  b.movi(1, kData).load(2, 1, 0).fence().halt();
  auto prog = b.build();
  prog.set_entry(0x1000);
  auto s = make_sim(std::move(prog), CommitPolicy::kWFC);
  s.map_region(kData, kPageSize);
  EXPECT_FALSE(s.core().dtlb().probe(page_of(kData)));
  s.run();
  EXPECT_TRUE(s.core().dtlb().probe(page_of(kData)));
  EXPECT_EQ(s.core().shadow_dtlb().live_count(), 0);
}

TEST(TlbIsolation, SquashedTranslationNeverReachesPrimaryDtlb) {
  // A load executed only on the wrong path of a mispredicted branch must
  // leave no dTLB entry under WFC (it does leave one on the baseline —
  // that asymmetry IS the dTLB covert channel of Table IV).
  constexpr Addr kWrongPage = 0x710000;
  constexpr Addr kSlow = 0x720000;
  for (auto policy : {CommitPolicy::kBaseline, CommitPolicy::kWFC}) {
    ProgramBuilder b(0x1000);
    b.movi(1, kWrongPage).movi(2, kSlow);
    b.flush(2, 0).fence();
    b.load(3, 2, 0);                              // slow condition source
    b.branch(CondOp::kGeu, 3, kZeroReg, "skip");  // always taken; predicted
                                                  // not-taken (cold counters
                                                  // predict weakly-not-taken)
    b.load(4, 1, 0);                              // wrong-path only
    b.label("skip").fence().halt();
    auto prog = b.build();
    prog.set_entry(0x1000);
    auto s = make_sim(std::move(prog), policy);
    s.map_region(kWrongPage, kPageSize);
    s.map_region(kSlow, kPageSize);
    s.run();
    const bool present = s.core().dtlb().probe(page_of(kWrongPage));
    if (policy == CommitPolicy::kBaseline) {
      EXPECT_TRUE(present) << "baseline should leak the dTLB entry";
    } else {
      EXPECT_FALSE(present) << "WFC must annul the speculative translation";
    }
  }
}

TEST(CacheIsolation, WrongPathLineLeaksOnBaselineOnlyDCache) {
  constexpr Addr kWrongLine = 0x730000;
  constexpr Addr kSlow = 0x740000;
  for (auto policy : {CommitPolicy::kBaseline, CommitPolicy::kWFC}) {
    ProgramBuilder b(0x1000);
    b.movi(1, kWrongLine).movi(2, kSlow);
    b.flush(2, 0).fence();
    b.load(3, 2, 0);
    b.branch(CondOp::kGeu, 3, kZeroReg, "skip");
    b.load(4, 1, 0);  // wrong-path only
    b.label("skip").fence().halt();
    auto prog = b.build();
    prog.set_entry(0x1000);
    auto s = make_sim(std::move(prog), policy);
    s.map_region(kWrongLine, kPageSize);
    s.map_region(kSlow, kPageSize);
    s.run();
    const bool resident =
        s.core().hierarchy().resident_l1(line_of(kWrongLine),
                                         memory::Side::kData) ||
        s.core().hierarchy().resident_l3(line_of(kWrongLine));
    EXPECT_EQ(resident, policy == CommitPolicy::kBaseline);
  }
}

TEST(StoreQueue, YoungestMatchingStoreForwards) {
  constexpr Addr kData = 0x750000;
  ProgramBuilder b(0x1000);
  b.movi(1, kData);
  b.movi(2, 11).store(2, 1, 0);
  b.movi(3, 22).store(3, 1, 0);  // younger store, same word
  b.load(4, 1, 0);               // must see 22
  b.halt();
  auto prog = b.build();
  prog.set_entry(0x1000);
  auto s = make_sim(std::move(prog), CommitPolicy::kWFC);
  s.map_region(kData, kPageSize);
  s.run();
  EXPECT_EQ(s.core().reg(4), 22u);
  EXPECT_EQ(s.peek(kData), 22u);
}

TEST(StoreQueue, DifferentWordsDoNotForward) {
  constexpr Addr kData = 0x760000;
  ProgramBuilder b(0x1000);
  b.movi(1, kData);
  b.movi(2, 11).store(2, 1, 0);
  b.load(4, 1, 8);  // different word: memory value (0), not 11
  b.halt();
  auto prog = b.build();
  prog.set_entry(0x1000);
  auto s = make_sim(std::move(prog), CommitPolicy::kWFC);
  s.map_region(kData, kPageSize);
  s.run();
  EXPECT_EQ(s.core().reg(4), 0u);
}

TEST(ControlFlow, NestedCallsReturnInOrder) {
  // The micro-ISA has one link register, so nested calls save/restore it
  // through a scratch register, as real RISC calling conventions do.
  ProgramBuilder b(0x1000);
  b.call("outer").movi(10, 1).halt();
  b.label("outer");
  b.alu(AluOp::kAdd, 20, isa::kLinkReg, kZeroReg);  // save ra
  b.call("inner");
  b.alu(AluOp::kAdd, isa::kLinkReg, 20, kZeroReg);  // restore ra
  b.alui(AluOp::kAdd, 11, 12, 1).ret();
  b.label("inner").movi(12, 41).ret();
  auto prog = b.build();
  prog.set_entry(0x1000);
  auto s = make_sim(std::move(prog), CommitPolicy::kWFC);
  const auto r = s.run();
  EXPECT_EQ(r.stop, cpu::StopReason::kHalted);
  EXPECT_EQ(s.core().reg(10), 1u);
  EXPECT_EQ(s.core().reg(11), 42u);
  EXPECT_EQ(s.core().reg(12), 41u);
}

TEST(ControlFlow, RepeatedCallsFromManySitesUseRsbCorrectly) {
  // 24 call sites to one function (the micro-ISA has a single link
  // register, so calls don't nest) — exercises RSB push/pop pairing at
  // distinct return addresses well past the 16-entry depth.
  ProgramBuilder b(0x1000);
  for (int i = 0; i < 24; ++i) b.call("fn");
  b.halt();
  b.label("fn").alui(AluOp::kAdd, 5, 5, 1).ret();
  auto prog = b.build();
  prog.set_entry(0x1000);
  auto s = make_sim(std::move(prog), CommitPolicy::kWFC);
  const auto r = s.run(2'000'000);
  EXPECT_EQ(r.stop, cpu::StopReason::kHalted);
  EXPECT_EQ(s.core().reg(5), 24u);
}

TEST(Policies, WfbPromotesAfterBranchResolutionBeforeCommit) {
  // Construct: a branch whose condition is slow, followed by a load. The
  // load's line must appear in the caches under WFB once the branch
  // resolves, even while the branch (and load) cannot yet commit because
  // an even slower *older* load blocks the ROB head.
  constexpr Addr kBlock = 0x770000;   // very slow head-of-ROB load
  constexpr Addr kProbe = 0x780000;   // the line whose promotion we watch
  ProgramBuilder b(0x1000);
  b.movi(1, kBlock).movi(2, kProbe);
  b.flush(1, 0).fence();
  b.load(3, 1, 0);                          // slow: blocks commit
  b.branch(CondOp::kGeu, kZeroReg, kZeroReg, "next");  // resolves fast
  b.label("next");
  b.load(4, 2, 0);                          // promotable under WFB
  b.fence().halt();
  auto prog = b.build();
  prog.set_entry(0x1000);
  auto s = make_sim(std::move(prog), CommitPolicy::kWFB);
  s.map_region(kBlock, kPageSize);
  s.map_region(kProbe, kPageSize);
  // Step manually and look for the probe line becoming resident while
  // instructions are still in flight (committed_instrs small).
  bool promoted_before_halt = false;
  for (int i = 0; i < 20000 && !s.core().halted(); ++i) {
    s.core().step();
    if (!s.core().halted() &&
        s.core().hierarchy().resident_l3(line_of(kProbe))) {
      promoted_before_halt = true;
      break;
    }
  }
  EXPECT_TRUE(promoted_before_halt)
      << "WFB must promote once older branches resolve, pre-commit";
}

TEST(Policies, WfbStillPromotesAtResolutionAfterFaultRecovery) {
  // Regression: a committed fault squashes the (already-swept) wrong
  // path and rewinds instruction numbering; the promotion sweep's
  // progress hint must be clamped with it, or every handler-path
  // instruction reuses a seq the sweep believes it has already promoted
  // — silently degrading WFB to commit-time (WFC) promotion after any
  // fault recovery.
  constexpr Addr kKernel = 0x700000;  // kernel-only: the committed fault
  constexpr Addr kBlock = 0x7B0000;   // slow head-of-handler load
  constexpr Addr kProbe = 0x7C0000;   // handler line whose timing we watch
  ProgramBuilder b(0x1000);
  b.movi(1, kKernel);
  b.load(2, 1, 0);  // faults at commit; speculation continues past it
  // Wrong-path window: enough promotable work to advance the sweep past
  // the faulting load before it commits.
  for (int i = 0; i < 12; ++i) b.alui(AluOp::kAdd, 7, 7, 1);
  b.halt();  // wrong path only
  b.at(0x8000).label("handler");
  // No fences here: the loads must sit in the handler's *first* dispatch
  // group, where their reused seqs land below the stale hint.
  b.movi(3, kBlock).movi(4, kProbe);
  b.load(5, 3, 0);  // cold miss to memory: blocks the commit stream
  b.load(6, 4, 0);  // must promote at resolution, pre-commit
  b.halt();
  auto prog = b.build();
  prog.set_entry(0x1000);
  prog.set_fault_handler(0x8000);
  auto s = make_sim(std::move(prog), CommitPolicy::kWFB);
  s.map_region(kKernel, kPageSize, memory::PagePerm::kKernel);
  s.map_region(kBlock, kPageSize);
  s.map_region(kProbe, kPageSize);
  bool promoted_before_commit = false;
  for (int i = 0; i < 20000 && !s.core().halted(); ++i) {
    s.core().step();
    // Commits before the blocker retires: pre-fault movi + two handler
    // movis = 3. The probe line appearing while the blocker still holds
    // the commit stream proves resolution-time promotion survived the
    // recovery.
    if (s.core().stats().committed_instrs < 4 &&
        s.core().hierarchy().resident_l3(line_of(kProbe))) {
      promoted_before_commit = true;
      break;
    }
  }
  EXPECT_TRUE(promoted_before_commit)
      << "fault recovery must not disable WFB's resolution-time promotion";
}

TEST(Policies, WfcDoesNotPromoteThatEarly) {
  // Same construction under WFC: as long as the slow older load blocks
  // commit, the probe line must NOT be in the primary caches.
  constexpr Addr kBlock = 0x790000;
  constexpr Addr kProbe = 0x7A0000;
  ProgramBuilder b(0x1000);
  b.movi(1, kBlock).movi(2, kProbe);
  b.flush(1, 0).fence();
  b.load(3, 1, 0);
  b.branch(CondOp::kGeu, kZeroReg, kZeroReg, "next");
  b.label("next");
  b.load(4, 2, 0);
  b.fence().halt();
  auto prog = b.build();
  prog.set_entry(0x1000);
  auto s = make_sim(std::move(prog), CommitPolicy::kWFC);
  s.map_region(kBlock, kPageSize);
  s.map_region(kProbe, kPageSize);
  bool promoted_while_blocked = false;
  for (int i = 0; i < 20000 && !s.core().halted(); ++i) {
    s.core().step();
    // While fewer than 6 instructions committed, the slow load hasn't
    // cleared the head; the probe line must still be shadow-only.
    if (s.core().stats().committed_instrs < 6 &&
        s.core().hierarchy().resident_l3(line_of(kProbe))) {
      promoted_while_blocked = true;
      break;
    }
  }
  EXPECT_FALSE(promoted_while_blocked);
}

TEST(Flush, CommittedClflushEvictsEveryLevel) {
  constexpr Addr kData = 0x7B0000;
  ProgramBuilder b(0x1000);
  b.movi(1, kData);
  b.load(2, 1, 0).fence();   // line resident everywhere
  b.flush(1, 0).fence();
  b.halt();
  auto prog = b.build();
  prog.set_entry(0x1000);
  auto s = make_sim(std::move(prog), CommitPolicy::kWFC);
  s.map_region(kData, kPageSize);
  s.run();
  EXPECT_FALSE(s.core().hierarchy().resident_l1(line_of(kData),
                                                memory::Side::kData));
  EXPECT_FALSE(s.core().hierarchy().resident_l2(line_of(kData)));
  EXPECT_FALSE(s.core().hierarchy().resident_l3(line_of(kData)));
}

// ---- commit_xor forwarding semantics --------------------------------------
// The commit_xor mutation hook XORs a constant into every *architectural*
// register writeback — and nothing else. In-flight consumers (operand
// capture at dispatch, wakeup after completion, branch resolution, store
// data) must observe the producer's raw pre-XOR result; only a consumer
// that reads the committed register file sees the XORed value. These
// tests pin that contract across every registered policy so the scheduler
// can be restructured without silently changing forwarding semantics.

/// Runs `program` under `policy_name` with commit_xor armed; returns the
/// simulator after the run for register/memory inspection.
std::unique_ptr<sim::Simulator> run_with_commit_xor(
    const isa::Program& program, const std::string& policy_name,
    std::uint64_t commit_xor) {
  cpu::CoreConfig config = sim::skylake_config();
  config.policy = policy_name;
  config.mutation.commit_xor = commit_xor;
  auto s = std::make_unique<sim::Simulator>(config, program);
  s->map_text();
  return s;
}

constexpr std::uint64_t kXor = 0x5A5AF00D0000FFFFULL;

TEST(CommitXorForwarding, TightAluChainForwardsPreXorResults) {
  // Adjacent dependent ALU ops dispatch together, so every consumer binds
  // its operand from the in-flight producer: the chain computes on raw
  // results (7, 8, 9) and each commit XORs exactly once.
  ProgramBuilder b(0x1000);
  b.movi(1, 7);
  b.alui(AluOp::kAdd, 2, 1, 1);
  b.alui(AluOp::kAdd, 3, 2, 1);
  b.halt();
  auto prog = b.build();
  prog.set_entry(0x1000);
  for (const auto& policy : policy::registered_policy_names()) {
    auto s = run_with_commit_xor(prog, policy, kXor);
    ASSERT_EQ(s->run().stop, cpu::StopReason::kHalted) << policy;
    EXPECT_EQ(s->core().reg(1), 7u ^ kXor) << policy;
    EXPECT_EQ(s->core().reg(2), 8u ^ kXor) << policy;
    EXPECT_EQ(s->core().reg(3), 9u ^ kXor) << policy;
  }
}

TEST(CommitXorForwarding, LoadWakeupForwardsPreXorResult) {
  // The wakeup path proper: a cold load completes long after its
  // dependents dispatched, so they sit in the issue queue and are woken
  // by the completing producer — with the raw loaded value, not the
  // XORed one the register file will hold.
  constexpr Addr kData = 0x7D0000;
  ProgramBuilder b(0x1000);
  b.movi(1, kData);
  b.load(2, 1, 0);               // cold miss: wakes r3/r4 much later
  b.alui(AluOp::kAdd, 3, 2, 1);
  b.alu(AluOp::kAdd, 4, 2, 2);   // both operands from the same producer
  b.halt();
  auto prog = b.build();
  prog.set_entry(0x1000);
  for (const auto& policy : policy::registered_policy_names()) {
    auto s = run_with_commit_xor(prog, policy, kXor);
    s->map_region(kData, kPageSize);
    s->poke(kData, 0x1000u);
    ASSERT_EQ(s->run().stop, cpu::StopReason::kHalted) << policy;
    EXPECT_EQ(s->core().reg(2), 0x1000u ^ kXor) << policy;
    EXPECT_EQ(s->core().reg(3), 0x1001u ^ kXor) << policy;
    EXPECT_EQ(s->core().reg(4), 0x2000u ^ kXor) << policy;
  }
}

TEST(CommitXorForwarding, BranchResolvesOnPreXorOperands) {
  // r1's raw result is kXor (nonzero) while its committed value is 0;
  // the branch must resolve on the raw value and be taken.
  ProgramBuilder b(0x1000);
  b.movi(1, static_cast<std::int64_t>(kXor));
  b.branch(CondOp::kNe, 1, kZeroReg, "taken");
  b.movi(2, 111);  // fall-through: only reached on post-XOR operands
  b.halt();
  b.label("taken").movi(3, 222).halt();
  auto prog = b.build();
  prog.set_entry(0x1000);
  for (const auto& policy : policy::registered_policy_names()) {
    auto s = run_with_commit_xor(prog, policy, kXor);
    ASSERT_EQ(s->run().stop, cpu::StopReason::kHalted) << policy;
    EXPECT_EQ(s->core().reg(1), 0u) << policy;
    EXPECT_EQ(s->core().reg(2), 0u) << policy;
    EXPECT_EQ(s->core().reg(3), 222u ^ kXor) << policy;
  }
}

TEST(CommitXorForwarding, StoreDataAndStoreForwardingUsePreXorValues) {
  // Store data binds from the in-flight producer (pre-XOR), the store
  // writes that raw value to memory at commit (memory is never XORed),
  // and a younger load forwarded from the store queue sees it too.
  constexpr Addr kData = 0x7E0000;
  ProgramBuilder b(0x1000);
  b.movi(1, kData);
  b.movi(2, 0x77);
  b.store(2, 1, 0);
  b.load(3, 1, 0);  // forwarded from the in-flight store
  b.halt();
  auto prog = b.build();
  prog.set_entry(0x1000);
  for (const auto& policy : policy::registered_policy_names()) {
    auto s = run_with_commit_xor(prog, policy, kXor);
    s->map_region(kData, kPageSize);
    ASSERT_EQ(s->run().stop, cpu::StopReason::kHalted) << policy;
    EXPECT_EQ(s->peek(kData), 0x77u) << policy;
    EXPECT_EQ(s->core().reg(3), 0x77u ^ kXor) << policy;
  }
}

TEST(CommitXorForwarding, PostCommitConsumersReadXoredRegisterFile) {
  // A fence drains the pipeline, so the consumer dispatches after the
  // producer committed and its rename entry cleared: it reads the
  // architectural (post-XOR) value — the one place the XOR is visible to
  // a dependent.
  ProgramBuilder b(0x1000);
  b.movi(1, 7);
  b.fence();
  b.alui(AluOp::kAdd, 2, 1, 1);
  b.halt();
  auto prog = b.build();
  prog.set_entry(0x1000);
  for (const auto& policy : policy::registered_policy_names()) {
    auto s = run_with_commit_xor(prog, policy, kXor);
    ASSERT_EQ(s->run().stop, cpu::StopReason::kHalted) << policy;
    EXPECT_EQ(s->core().reg(1), 7u ^ kXor) << policy;
    EXPECT_EQ(s->core().reg(2), ((7u ^ kXor) + 1u) ^ kXor) << policy;
  }
}

TEST(Restart, PreservesMicroarchitecturalState) {
  // restart_at() re-steers control flow but must keep caches warm — the
  // attack harness relies on this for multi-phase attacks.
  constexpr Addr kData = 0x7C0000;
  ProgramBuilder b(0x1000);
  b.movi(1, kData).load(2, 1, 0).fence().halt();
  b.label("phase2").movi(3, 7).halt();
  auto prog = b.build();
  prog.set_entry(0x1000);
  const Addr phase2 = b.label_addr("phase2");
  auto s = make_sim(std::move(prog), CommitPolicy::kWFC);
  s.map_region(kData, kPageSize);
  s.run();
  ASSERT_TRUE(s.core().hierarchy().resident_l1(line_of(kData),
                                               memory::Side::kData));
  s.core().restart_at(phase2);
  const auto r2 = s.core().run(100000);
  EXPECT_EQ(r2, cpu::StopReason::kHalted);
  EXPECT_EQ(s.core().reg(3), 7u);
  EXPECT_TRUE(s.core().hierarchy().resident_l1(line_of(kData),
                                               memory::Side::kData));
}

}  // namespace
}  // namespace safespec
