// Tests for the experiment engine: declarative grid expansion, the
// parallel runner's determinism guarantee (bitwise-identical results
// regardless of thread count), the stats merge helpers the sweeps
// aggregate with, and the ResultTable sinks.
#include <gtest/gtest.h>

#include <cstdio>
#include <iterator>
#include <string>
#include <vector>

#include "common/stats.h"
#include "experiment/experiment.h"
#include "workloads/workload.h"

namespace safespec::experiment {
namespace {

// Field-by-field comparison (memcmp would also compare padding).
void expect_bitwise_equal(const sim::SimResult& a, const sim::SimResult& b,
                          const std::string& what) {
  EXPECT_EQ(static_cast<int>(a.stop), static_cast<int>(b.stop)) << what;
  EXPECT_EQ(a.cycles, b.cycles) << what;
  EXPECT_EQ(a.committed_instrs, b.committed_instrs) << what;
  EXPECT_EQ(a.ipc, b.ipc) << what;
  EXPECT_EQ(a.dcache_accesses, b.dcache_accesses) << what;
  EXPECT_EQ(a.dcache_misses, b.dcache_misses) << what;
  EXPECT_EQ(a.shadow_dcache_hits, b.shadow_dcache_hits) << what;
  EXPECT_EQ(a.icache_accesses, b.icache_accesses) << what;
  EXPECT_EQ(a.icache_misses, b.icache_misses) << what;
  EXPECT_EQ(a.shadow_icache_hits, b.shadow_icache_hits) << what;
  EXPECT_EQ(a.shadow_dcache_commit_rate, b.shadow_dcache_commit_rate) << what;
  EXPECT_EQ(a.shadow_icache_commit_rate, b.shadow_icache_commit_rate) << what;
  EXPECT_EQ(a.shadow_dcache_p9999, b.shadow_dcache_p9999) << what;
  EXPECT_EQ(a.shadow_icache_p9999, b.shadow_icache_p9999) << what;
  EXPECT_EQ(a.shadow_dtlb_p9999, b.shadow_dtlb_p9999) << what;
  EXPECT_EQ(a.shadow_itlb_p9999, b.shadow_itlb_p9999) << what;
  EXPECT_EQ(a.mispredicts, b.mispredicts) << what;
  EXPECT_EQ(a.squashed_instrs, b.squashed_instrs) << what;
  EXPECT_EQ(a.faults, b.faults) << what;
}

TEST(ExperimentSpec, ExpandsProfileMajor) {
  ExperimentSpec spec;
  spec.profile_names({"perlbench", "mcf", "lbm"})
      .policy(shadow::CommitPolicy::kBaseline)
      .policy(shadow::CommitPolicy::kWFC)
      .instrs(1234);

  const auto cells = spec.expand();
  ASSERT_EQ(cells.size(), 6u);
  ASSERT_EQ(spec.variant_axis().size(), 2u);
  EXPECT_EQ(spec.variant_axis()[0].name, "baseline");
  EXPECT_EQ(spec.variant_axis()[1].name, "WFC");

  const char* expected_profiles[] = {"perlbench", "perlbench", "mcf",
                                     "mcf",       "lbm",       "lbm"};
  for (std::size_t i = 0; i < cells.size(); ++i) {
    EXPECT_EQ(cells[i].index, i);
    EXPECT_EQ(cells[i].profile.name, expected_profiles[i]);
    EXPECT_EQ(cells[i].profile_index, i / 2);
    EXPECT_EQ(cells[i].variant_index, i % 2);
    EXPECT_EQ(cells[i].instrs, 1234u);
  }
}

TEST(ExperimentSpec, VariantMutationApplies) {
  ExperimentSpec spec;
  spec.profile_names({"x264"})
      .policy(shadow::CommitPolicy::kWFC,
              [](cpu::CoreConfig& c) { c.shadow_dcache.entries = 8; });
  const auto cells = spec.expand();
  ASSERT_EQ(cells.size(), 1u);
  EXPECT_EQ(cells[0].config.policy, "WFC");
  EXPECT_EQ(cells[0].config.shadow_dcache.entries, 8);
}

TEST(ExperimentSpec, UnknownProfileThrows) {
  ExperimentSpec spec;
  EXPECT_THROW(spec.profile_names({"notabenchmark"}), std::out_of_range);
}

TEST(ParallelRunner, DeterministicAcrossThreadCounts) {
  ExperimentSpec spec;
  spec.profile_names({"exchange2", "x264", "deepsjeng"})
      .policy(shadow::CommitPolicy::kBaseline)
      .policy(shadow::CommitPolicy::kWFC)
      .instrs(4000);

  const auto serial = ParallelRunner(1).run(spec);
  const auto parallel = ParallelRunner(4).run(spec);

  ASSERT_EQ(serial.flat().size(), parallel.flat().size());
  for (std::size_t i = 0; i < serial.flat().size(); ++i) {
    expect_bitwise_equal(serial.flat()[i], parallel.flat()[i],
                         "cell " + std::to_string(i));
  }
  // And the sweep actually ran: every cell committed instructions.
  for (const auto& r : serial.flat()) EXPECT_GT(r.committed_instrs, 0u);
}

TEST(ParallelRunner, ParallelForCoversEveryIndexOnce) {
  std::vector<int> visits(257, 0);
  ParallelRunner(8).parallel_for(visits.size(),
                                 [&](std::size_t i) { visits[i]++; });
  for (std::size_t i = 0; i < visits.size(); ++i)
    EXPECT_EQ(visits[i], 1) << "index " << i;
}

TEST(ParallelRunner, ZeroThreadsPicksHardwareConcurrency) {
  EXPECT_GE(ParallelRunner(0).threads(), 1);
}

TEST(StatsMerge, HistogramMergeMatchesConcatenatedStream) {
  Histogram a, b, merged;
  for (std::uint64_t v : {1, 1, 2, 5}) {
    a.record(v);
    merged.record(v);
  }
  for (std::uint64_t v : {0, 3, 3, 9}) {
    b.record(v);
    merged.record(v);
  }
  Histogram folded = a;
  folded.merge(b);
  EXPECT_EQ(folded.count(), merged.count());
  EXPECT_EQ(folded.max(), merged.max());
  EXPECT_DOUBLE_EQ(folded.mean(), merged.mean());
  for (double f : {0.25, 0.5, 0.9999}) {
    EXPECT_EQ(folded.percentile(f), merged.percentile(f)) << f;
  }
}

TEST(StatsMerge, CounterAndHitMiss) {
  Counter a, b;
  a.add(3);
  b.add(4);
  a.merge(b);
  EXPECT_EQ(a.value(), 7u);

  HitMiss h1, h2;
  h1.hits.add(9);
  h1.misses.add(1);
  h2.hits.add(1);
  h2.misses.add(9);
  h1.merge(h2);
  EXPECT_EQ(h1.accesses(), 20u);
  EXPECT_DOUBLE_EQ(h1.hit_rate(), 0.5);
}

TEST(ResultTable, CsvRoundTripsRawValues) {
  ResultTable table("T, with comma", {"a", "b"});
  table.add_row("row1", {1.5, 2.0});
  table.add_partial_row("summary", {std::nullopt, 3.25});

  std::FILE* tmp = std::tmpfile();
  ASSERT_NE(tmp, nullptr);
  table.append_csv(tmp);
  std::rewind(tmp);
  std::string text(4096, '\0');
  text.resize(std::fread(text.data(), 1, text.size(), tmp));
  std::fclose(tmp);

  EXPECT_NE(text.find("table,benchmark,a,b"), std::string::npos);
  EXPECT_NE(text.find("\"T, with comma\",row1,1.5,2"), std::string::npos);
  EXPECT_NE(text.find("summary,,3.25"), std::string::npos);
}

TEST(ExperimentSpec, NamedPolicyAxisMatchesEnumAxis) {
  // The string axis must build exactly the machines the legacy enum axis
  // built (variant names included) — that is what keeps the bench
  // outputs byte-identical across the API migration.
  ExperimentSpec by_name, by_enum;
  by_name.profile_names({"x264"}).policy("baseline").policy("WFC");
  by_enum.profile_names({"x264"})
      .policy(shadow::CommitPolicy::kBaseline)
      .policy(shadow::CommitPolicy::kWFC);
  ASSERT_EQ(by_name.variant_axis().size(), by_enum.variant_axis().size());
  for (std::size_t v = 0; v < by_name.variant_axis().size(); ++v) {
    EXPECT_EQ(by_name.variant_axis()[v].name, by_enum.variant_axis()[v].name);
    EXPECT_EQ(by_name.variant_axis()[v].config.policy,
              by_enum.variant_axis()[v].config.policy);
  }
}

TEST(ExperimentSpec, BaseMachineReshapesEveryVariant) {
  ExperimentSpec spec;
  spec.base_machine(sim::machine_preset("embedded"));
  spec.profile_names({"x264"}).policy("WFB-stall");
  const auto cells = spec.expand();
  ASSERT_EQ(cells.size(), 1u);
  EXPECT_EQ(cells[0].config.fetch_width, 2);
  EXPECT_EQ(cells[0].config.policy, "WFB-stall");
}

TEST(ExperimentSpec, UnknownPolicyNameThrows) {
  ExperimentSpec spec;
  EXPECT_THROW(spec.policy("not-a-policy"), std::out_of_range);
}

TEST(SweepResult, StopNoteFlagsNonConvergedCells) {
  sim::SimResult ok, budget, wedged;
  ok.stop = cpu::StopReason::kMaxInstrs;
  budget.stop = cpu::StopReason::kMaxCycles;
  wedged.stop = cpu::StopReason::kFaultNoHandler;
  const SweepResult sweep(2, 2, {ok, budget, ok, wedged},
                          {"baseline", "WFC"});
  EXPECT_EQ(sweep.stop_note(0), "WFC:max-cycles");
  EXPECT_EQ(sweep.stop_note(1), "WFC:fault");
}

TEST(ResultTable, StopNotesSurfaceInEverySink) {
  ResultTable table("T", {"a"});
  table.add_row("good", {1.0});
  table.annotate_last_row("");  // no-op
  table.add_row("bad", {2.0});
  table.annotate_last_row("WFC:max-cycles");

  std::FILE* tmp = std::tmpfile();
  ASSERT_NE(tmp, nullptr);
  table.append_csv(tmp);
  std::rewind(tmp);
  std::string text(4096, '\0');
  text.resize(std::fread(text.data(), 1, text.size(), tmp));
  std::fclose(tmp);
  EXPECT_NE(text.find("table,benchmark,a,stop"), std::string::npos);
  EXPECT_NE(text.find("T,good,1,\n"), std::string::npos);
  EXPECT_NE(text.find("T,bad,2,WFC:max-cycles"), std::string::npos);

  std::vector<std::string> items;
  table.append_json(items);
  ASSERT_EQ(items.size(), 2u);
  EXPECT_EQ(items[0].find("stop"), std::string::npos);
  EXPECT_NE(items[1].find("\"stop\":\"WFC:max-cycles\""), std::string::npos);
}

TEST(ResultTable, JsonlSinkWritesAppendJsonObjectsOnePerLine) {
  ResultTable table("T", {"a", "b"});
  table.add_row("good", {1.0, 2.5});
  table.add_row("bad", {3.0, 4.0});
  table.annotate_last_row("WFC:max-cycles");

  std::vector<std::string> items;
  table.append_json(items);
  ASSERT_EQ(items.size(), 2u);

  std::FILE* tmp = std::tmpfile();
  ASSERT_NE(tmp, nullptr);
  JsonlSink sink(tmp);
  table.emit(sink);
  std::rewind(tmp);
  std::string text(4096, '\0');
  text.resize(std::fread(text.data(), 1, text.size(), tmp));
  std::fclose(tmp);

  // One line per row, each byte-identical to the JSON item emitter's
  // object for that row: JSONL is the same objects, newline-delimited.
  EXPECT_EQ(text, items[0] + "\n" + items[1] + "\n");
}

TEST(ResultTable, NoNotesMeansUnchangedCsvShape) {
  ResultTable table("T", {"a"});
  table.add_row("good", {1.0});
  std::FILE* tmp = std::tmpfile();
  ASSERT_NE(tmp, nullptr);
  table.append_csv(tmp);
  std::rewind(tmp);
  std::string text(4096, '\0');
  text.resize(std::fread(text.data(), 1, text.size(), tmp));
  std::fclose(tmp);
  EXPECT_NE(text.find("table,benchmark,a\n"), std::string::npos);
  EXPECT_EQ(text.find("stop"), std::string::npos);
}

TEST(BenchOptions, ConfigAndSetFlagsParse) {
  const char* argv[] = {"bench", "--set=policy=WFB", "--config=m.json",
                        "--set", "rob_entries=64", "--threads=2"};
  const auto opts =
      parse_bench_args(static_cast<int>(std::size(argv)),
                       const_cast<char**>(argv));
  EXPECT_EQ(opts.config_path, "m.json");
  ASSERT_EQ(opts.overrides.size(), 2u);
  EXPECT_EQ(opts.overrides[0], "policy=WFB");
  EXPECT_EQ(opts.overrides[1], "rob_entries=64");
  EXPECT_EQ(opts.threads, 2);
}

TEST(SimResultHardening, RateHelpersClampInsteadOfUnderflowing) {
  sim::SimResult r;
  r.dcache_accesses = 100;
  r.dcache_misses = 5;
  r.shadow_dcache_hits = 9;  // disagreeing counters: hits > misses
  EXPECT_DOUBLE_EQ(r.dcache_miss_rate_incl_shadow(), 0.0);
  EXPECT_GE(r.shadow_dcache_hit_fraction(), 0.0);
  EXPECT_LE(r.shadow_dcache_hit_fraction(), 1.0);

  sim::SimResult i;
  i.icache_accesses = 10;
  i.icache_misses = 15;  // more misses than accesses
  i.shadow_icache_hits = 2;
  EXPECT_DOUBLE_EQ(i.shadow_icache_hit_fraction(), 0.0);
}

}  // namespace
}  // namespace safespec::experiment
