// Unit tests for the memory substrate: backing store with permissions,
// set-associative cache (geometry, replacement, invalidation), inclusive
// hierarchy behaviour, TLB, and the page table / walker.
#include <gtest/gtest.h>

#include "memory/cache.h"
#include "memory/cache_hierarchy.h"
#include "memory/main_memory.h"
#include "memory/page_table.h"
#include "memory/tlb.h"

namespace safespec::memory {
namespace {

// ---- MainMemory -----------------------------------------------------------

TEST(MainMemory, UnwrittenWordsReadZero) {
  MainMemory mem;
  EXPECT_EQ(mem.read64(0x1234560), 0u);
}

TEST(MainMemory, WriteReadRoundTrip) {
  MainMemory mem;
  mem.write64(0x1000, 0xDEADBEEF);
  EXPECT_EQ(mem.read64(0x1000), 0xDEADBEEFu);
}

TEST(MainMemory, SubWordAddressesAliasTheSameWord) {
  MainMemory mem;
  mem.write64(0x1000, 42);
  EXPECT_EQ(mem.read64(0x1003), 42u);  // same 8-byte word
  EXPECT_EQ(mem.read64(0x1008), 0u);   // next word
}

TEST(MainMemory, PermissionChecks) {
  MainMemory mem;
  mem.map_page(1, PagePerm::kUser);
  mem.map_page(2, PagePerm::kKernel);
  EXPECT_TRUE(mem.access_ok(1, PrivLevel::kUser));
  EXPECT_TRUE(mem.access_ok(1, PrivLevel::kKernel));
  EXPECT_FALSE(mem.access_ok(2, PrivLevel::kUser));
  EXPECT_TRUE(mem.access_ok(2, PrivLevel::kKernel));
  EXPECT_FALSE(mem.access_ok(3, PrivLevel::kKernel));  // unmapped
}

// ---- Cache -----------------------------------------------------------------

CacheConfig small_cache(ReplPolicy policy = ReplPolicy::kLru) {
  return {.name = "t",
          .size_bytes = 4096,  // 64 lines
          .ways = 4,           // 16 sets
          .line_bytes = 64,
          .hit_latency = 4,
          .policy = policy};
}

TEST(Cache, GeometryValidation) {
  CacheConfig bad = small_cache();
  bad.size_bytes = 1000;  // not divisible
  EXPECT_THROW(Cache{bad}, std::invalid_argument);
}

TEST(Cache, MissThenFillThenHit) {
  Cache c(small_cache());
  EXPECT_FALSE(c.access(100));
  c.fill(100);
  EXPECT_TRUE(c.access(100));
  EXPECT_EQ(c.stats().hits.value(), 1u);
  EXPECT_EQ(c.stats().misses.value(), 1u);
}

TEST(Cache, ProbeHasNoSideEffects) {
  Cache c(small_cache());
  c.fill(5);
  const auto hits = c.stats().hits.value();
  EXPECT_TRUE(c.probe(5));
  EXPECT_FALSE(c.probe(6));
  EXPECT_EQ(c.stats().hits.value(), hits);
}

TEST(Cache, LruEvictsLeastRecentlyUsed) {
  Cache c(small_cache(ReplPolicy::kLru));
  // Four lines mapping to set 0 (multiples of 16 sets).
  c.fill(0);
  c.fill(16);
  c.fill(32);
  c.fill(48);
  // Touch 0 so 16 becomes LRU.
  EXPECT_TRUE(c.access(0));
  const auto evicted = c.fill(64);
  ASSERT_TRUE(evicted.has_value());
  EXPECT_EQ(*evicted, 16u);
  EXPECT_TRUE(c.probe(0));
  EXPECT_FALSE(c.probe(16));
}

TEST(Cache, FifoIgnoresTouches) {
  Cache c(small_cache(ReplPolicy::kFifo));
  c.fill(0);
  c.fill(16);
  c.fill(32);
  c.fill(48);
  EXPECT_TRUE(c.access(0));  // does not save it under FIFO
  const auto evicted = c.fill(64);
  ASSERT_TRUE(evicted.has_value());
  EXPECT_EQ(*evicted, 0u);
}

TEST(Cache, SpeculativeAccessDoesNotUpdateRecency) {
  Cache c(small_cache(ReplPolicy::kLru));
  c.fill(0);
  c.fill(16);
  c.fill(32);
  c.fill(48);
  // Speculative touch of 0 must NOT rescue it from LRU.
  EXPECT_TRUE(c.access(0, /*update_replacement=*/false));
  const auto evicted = c.fill(64);
  ASSERT_TRUE(evicted.has_value());
  EXPECT_EQ(*evicted, 0u);
}

TEST(Cache, StatsQuietAccessCountsNothing) {
  Cache c(small_cache());
  c.access(7, true, /*count_stats=*/false);
  EXPECT_EQ(c.stats().accesses(), 0u);
}

TEST(Cache, InvalidateRemovesLine) {
  Cache c(small_cache());
  c.fill(9);
  EXPECT_TRUE(c.invalidate(9));
  EXPECT_FALSE(c.probe(9));
  EXPECT_FALSE(c.invalidate(9));  // already gone
}

TEST(Cache, RefillOfResidentLineDoesNotEvict) {
  Cache c(small_cache());
  c.fill(0);
  c.fill(16);
  EXPECT_FALSE(c.fill(0).has_value());
  EXPECT_TRUE(c.probe(16));
}

TEST(Cache, OccupancyTracksFills) {
  Cache c(small_cache());
  EXPECT_EQ(c.occupancy(), 0u);
  for (Addr l = 0; l < 10; ++l) c.fill(l);
  EXPECT_EQ(c.occupancy(), 10u);
  c.flush_all();
  EXPECT_EQ(c.occupancy(), 0u);
}

class ReplacementSweep : public ::testing::TestWithParam<ReplPolicy> {};

TEST_P(ReplacementSweep, CapacityNeverExceeded) {
  Cache c(small_cache(GetParam()));
  for (Addr l = 0; l < 1000; ++l) c.fill(l);
  EXPECT_LE(c.occupancy(), 64u);
  // Working set smaller than one set's ways always ends resident.
  c.flush_all();
  c.fill(0);
  c.fill(16);
  EXPECT_TRUE(c.probe(0));
  EXPECT_TRUE(c.probe(16));
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, ReplacementSweep,
                         ::testing::Values(ReplPolicy::kLru, ReplPolicy::kFifo,
                                           ReplPolicy::kRandom));

// ---- ReplacementState: victim tie-breaks and owner attribution -------------

TEST(Replacement, LruTieBreaksToLowestWay) {
  ReplacementState repl(ReplPolicy::kLru, 4, /*seed=*/1);
  for (int w = 0; w < 4; ++w) repl.fill(w, /*tick=*/10);
  EXPECT_EQ(repl.victim(11), 0);  // equal stamps: lowest way index wins
  repl.touch(0, 12);              // LRU: a hit rescues way 0
  EXPECT_EQ(repl.victim(13), 1);
}

TEST(Replacement, FifoTieBreaksToLowestWayAndIgnoresTouches) {
  ReplacementState repl(ReplPolicy::kFifo, 4, /*seed=*/1);
  for (int w = 0; w < 4; ++w) repl.fill(w, /*tick=*/10);
  EXPECT_EQ(repl.victim(11), 0);
  repl.touch(0, 12);  // FIFO: hits never refresh the insertion stamp
  EXPECT_EQ(repl.victim(13), 0);
  repl.fill(0, 14);  // ...but a refill does
  EXPECT_EQ(repl.victim(15), 1);
}

TEST(Replacement, OwnerRecordedOnFillNotOnTouch) {
  ReplacementState repl(ReplPolicy::kLru, 2, /*seed=*/1);
  repl.fill(0, 1, /*owner=*/3);
  EXPECT_EQ(repl.owner_of(0), 3);
  repl.touch(0, 2, /*owner=*/1);  // a remote hit does not transfer ownership
  EXPECT_EQ(repl.owner_of(0), 3);
  repl.fill(0, 3, /*owner=*/1);
  EXPECT_EQ(repl.owner_of(0), 1);
}

TEST(Replacement, VictimChoiceIsOwnerBlind) {
  // The owner input is attribution only: the policy must pick the same
  // victim no matter which core asks, or cores=1 bit-identity would break
  // the moment a second core shares the level.
  ReplacementState repl(ReplPolicy::kLru, 4, /*seed=*/1);
  repl.fill(0, 10, /*owner=*/0);
  repl.fill(1, 11, /*owner=*/1);
  repl.fill(2, 12, /*owner=*/0);
  repl.fill(3, 13, /*owner=*/1);
  EXPECT_EQ(repl.victim(14, /*owner=*/0), repl.victim(14, /*owner=*/1));
  EXPECT_EQ(repl.victim(14, /*owner=*/1), 0);  // oldest fill, owner ignored
}

TEST(Replacement, ProtectedVictimPrefersRequesterOwnedWays) {
  // SHARP tiers 1/2: never victimize another owner's way while the
  // requester owns one; the base policy (here LRU) picks among the
  // requester's own ways.
  ReplacementState repl(ReplPolicy::kLru, 4, /*seed=*/1);
  repl.fill(0, 10, /*owner=*/0);
  repl.fill(1, 11, /*owner=*/1);
  repl.fill(2, 12, /*owner=*/0);
  repl.fill(3, 13, /*owner=*/1);
  // victim() would take way 0 (globally oldest); owner 1 must not.
  auto choice = repl.protected_victim(14, /*owner=*/1);
  EXPECT_EQ(choice.way, 1);  // owner 1's oldest
  EXPECT_FALSE(choice.forced);
  choice = repl.protected_victim(14, /*owner=*/0);
  EXPECT_EQ(choice.way, 0);
  EXPECT_FALSE(choice.forced);
}

TEST(Replacement, ProtectedVictimForcedWhenSetFullyForeignOwned) {
  // SHARP tier 3: with zero requester-owned ways the choice falls back
  // to random-among-all and is flagged forced (the alarm trigger).
  ReplacementState repl(ReplPolicy::kLru, 4, /*seed=*/1);
  for (int w = 0; w < 4; ++w) repl.fill(w, 10 + w, /*owner=*/0);
  const auto choice = repl.protected_victim(20, /*owner=*/1);
  EXPECT_TRUE(choice.forced);
  EXPECT_GE(choice.way, 0);
  EXPECT_LT(choice.way, 4);
}

TEST(Replacement, ProtectedVictimMatchesVictimWhenSingleOwner) {
  // cores=1 bit-identity: when every way belongs to the requester the
  // protected choice must equal victim()'s — including the random
  // policy's draw (identical rng consumption), or switching the policy
  // to SHARP would change single-core cycle counts.
  for (ReplPolicy policy :
       {ReplPolicy::kLru, ReplPolicy::kFifo, ReplPolicy::kRandom}) {
    ReplacementState a(policy, 4, /*seed=*/7);
    ReplacementState b(policy, 4, /*seed=*/7);
    for (int w = 0; w < 4; ++w) {
      a.fill(w, 10 + w);
      b.fill(w, 10 + w);
    }
    a.touch(1, 20);
    b.touch(1, 20);
    for (std::uint64_t t = 21; t < 29; ++t) {
      const auto choice = a.protected_victim(t, /*owner=*/0);
      EXPECT_FALSE(choice.forced);
      EXPECT_EQ(choice.way, b.victim(t, /*owner=*/0));
    }
  }
}

TEST(Cache, SharpForcedEvictionsAlarmAndCrossThreshold) {
  CacheConfig cfg = small_cache();
  cfg.protection = CacheProtection::kSharp;
  cfg.alarm_threshold = 2;
  Cache c(cfg);
  for (Addr k = 0; k < 4; ++k) c.fill(k * 16, /*owner=*/0);  // set 0: owner 0
  EXPECT_EQ(c.sharp_alarms(), 0u);
  c.fill(4 * 16, /*owner=*/1);  // owner 1 owns nothing here: forced
  EXPECT_EQ(c.sharp_alarms(), 1u);
  EXPECT_EQ(c.sharp_detections(), 0u);  // below threshold
  c.fill(5 * 16, /*owner=*/2);  // owner 2 likewise
  EXPECT_EQ(c.sharp_alarms(), 2u);
  EXPECT_EQ(c.sharp_detections(), 1u);  // epoch count hit the threshold
}

TEST(Cache, SharpEpochRollDiscardsStaleAlarms) {
  // Two alarms separated by more than an epoch must not add up to a
  // detection: the counter restarts with the epoch.
  CacheConfig cfg = small_cache();
  cfg.protection = CacheProtection::kSharp;
  cfg.alarm_threshold = 2;
  cfg.alarm_epoch_ticks = 4;
  Cache c(cfg);
  for (Addr k = 0; k < 4; ++k) c.fill(k * 16, /*owner=*/0);
  c.fill(4 * 16, /*owner=*/1);  // alarm in epoch A
  // Advance the tick clock (fills and touched hits move it) past the
  // epoch length with traffic in another set.
  c.fill(1);
  for (int i = 0; i < 8; ++i) c.access(1);
  c.fill(5 * 16, /*owner=*/2);  // alarm, but epoch A has rolled over
  EXPECT_EQ(c.sharp_alarms(), 2u);
  EXPECT_EQ(c.sharp_detections(), 0u);
}

TEST(Cache, DetectOnlyAlarmsWithoutChangingVictims) {
  // detect-only is pure telemetry: the victim stream is the unprotected
  // one (resident lines match an unprotected twin), but every
  // cross-owner eviction alarms.
  CacheConfig det = small_cache();
  det.protection = CacheProtection::kDetectOnly;
  det.alarm_threshold = 1;
  Cache plain(small_cache());
  Cache c(det);
  for (Addr k = 0; k < 5; ++k) {
    const int owner = k == 4 ? 1 : 0;
    plain.fill(k * 16, owner);
    c.fill(k * 16, owner);
  }
  for (Addr k = 0; k < 5; ++k) {
    EXPECT_EQ(c.probe(k * 16), plain.probe(k * 16)) << "line " << k * 16;
  }
  EXPECT_EQ(plain.sharp_alarms(), 0u);
  EXPECT_EQ(c.sharp_alarms(), 1u);      // owner 1 evicted owner 0's line
  EXPECT_EQ(c.sharp_detections(), 1u);  // threshold 1
}

TEST(Cache, CrossOwnerEvictionAttribution) {
  Cache c(small_cache());  // 4 ways, 16 sets: lines k*16 share set 0
  for (Addr k = 0; k < 4; ++k) c.fill(k * 16, /*owner=*/0);
  EXPECT_EQ(c.owner_of(0), 0);
  EXPECT_EQ(c.cross_owner_evictions(), 0u);
  // Owner 1 overflows the set: the LRU victim (line 0) belonged to owner 0.
  const auto evicted = c.fill(4 * 16, /*owner=*/1);
  ASSERT_TRUE(evicted.has_value());
  EXPECT_EQ(*evicted, 0u);
  EXPECT_EQ(c.owner_of(4 * 16), 1);
  EXPECT_EQ(c.cross_owner_evictions(), 1u);
}

TEST(Cache, SameOwnerEvictionsAreNotCounted) {
  Cache c(small_cache());
  for (Addr k = 0; k < 6; ++k) c.fill(k * 16, /*owner=*/2);
  EXPECT_EQ(c.cross_owner_evictions(), 0u);  // self-evictions don't count
}

// ---- CacheHierarchy ---------------------------------------------------------

HierarchyConfig tiny_hierarchy() {
  HierarchyConfig h;
  h.l1i = {.name = "L1I", .size_bytes = 1024, .ways = 2, .line_bytes = 64,
           .hit_latency = 4};
  h.l1d = {.name = "L1D", .size_bytes = 1024, .ways = 2, .line_bytes = 64,
           .hit_latency = 4};
  h.l2 = {.name = "L2", .size_bytes = 4096, .ways = 4, .line_bytes = 64,
          .hit_latency = 12};
  h.l3 = {.name = "L3", .size_bytes = 16384, .ways = 8, .line_bytes = 64,
          .hit_latency = 44};
  h.memory_latency = 191;
  return h;
}

TEST(Hierarchy, LatenciesPerLevel) {
  CacheHierarchy h(tiny_hierarchy());
  // Cold: memory.
  auto out = h.timed_access(0x10000, Side::kData, CacheHierarchy::Fill::kYes);
  EXPECT_EQ(out.latency, 191u);
  // Now L1.
  out = h.timed_access(0x10000, Side::kData, CacheHierarchy::Fill::kYes);
  EXPECT_EQ(out.latency, 4u);
  EXPECT_EQ(out.level, HitLevel::kL1);
}

TEST(Hierarchy, NonFillingAccessLeavesNoTrace) {
  CacheHierarchy h(tiny_hierarchy());
  h.timed_access(0x20000, Side::kData, CacheHierarchy::Fill::kNo);
  EXPECT_FALSE(h.resident_l1(line_of(0x20000), Side::kData));
  EXPECT_FALSE(h.resident_l2(line_of(0x20000)));
  EXPECT_FALSE(h.resident_l3(line_of(0x20000)));
}

TEST(Hierarchy, InclusiveFillPopulatesAllLevels) {
  CacheHierarchy h(tiny_hierarchy());
  h.fill_all_levels(7, Side::kData);
  EXPECT_TRUE(h.resident_l1(7, Side::kData));
  EXPECT_TRUE(h.resident_l2(7));
  EXPECT_TRUE(h.resident_l3(7));
  EXPECT_FALSE(h.resident_l1(7, Side::kInstr));  // other L1 untouched
}

TEST(Hierarchy, FlushLineRemovesEverywhere) {
  CacheHierarchy h(tiny_hierarchy());
  h.fill_all_levels(7, Side::kData);
  h.flush_line(7);
  EXPECT_FALSE(h.resident_l1(7, Side::kData));
  EXPECT_FALSE(h.resident_l2(7));
  EXPECT_FALSE(h.resident_l3(7));
}

TEST(Hierarchy, L2EvictionBackInvalidatesL1) {
  CacheHierarchy h(tiny_hierarchy());
  // L2: 4096B/4w/64B = 16 sets. Lines k*16 alias to L2 set 0.
  // L1D: 1024/2/64 = 8 sets; k*16 alias to L1 set 0 too (2 ways).
  h.fill_all_levels(0, Side::kData);
  // Fill 4 more lines in the same L2 set to force an L2 eviction of 0.
  for (Addr k = 1; k <= 4; ++k) h.fill_all_levels(k * 16, Side::kData);
  EXPECT_FALSE(h.resident_l2(0));
  // Inclusion: line 0 must have been back-invalidated from L1D as well.
  EXPECT_FALSE(h.resident_l1(0, Side::kData));
}

TEST(Hierarchy, L3HitPromotionSkipsBackInvalidation) {
  // Pins the documented inclusion quirk (cache_hierarchy.h,
  // SharedLevels::access_below_l1): promoting an L3 hit into L2 discards
  // the L2 eviction, so a line pushed out of L2 on that path stays in
  // the L1s — strict L1-vs-L2 inclusion is briefly violated. Golden
  // cycle counts depend on this; a fix must re-bless them.
  CacheHierarchy h(tiny_hierarchy());
  // L2: 16 sets, 4 ways. Fill set 0, then overflow it from memory: the
  // fill_shared path *does* back-invalidate, so line 0 leaves L1/L2 but
  // stays in L3.
  for (Addr k = 0; k <= 4; ++k) h.fill_all_levels(k * 16, Side::kData);
  ASSERT_FALSE(h.resident_l2(0));
  ASSERT_TRUE(h.resident_l3(0));
  ASSERT_FALSE(h.resident_l1(0, Side::kData));
  // L2 set 0 is now {16,32,48,64} with 16 the LRU. Plant line 16 in L1D
  // so we can watch what the promotion's L2 eviction does to it.
  h.l1d().fill(16);
  ASSERT_TRUE(h.resident_l1(16, Side::kData));
  // Touch line 0: L2 miss, L3 hit. The promotion fills L2 and evicts 16.
  const auto out =
      h.timed_access(0, Side::kData, CacheHierarchy::Fill::kYes);
  EXPECT_EQ(out.level, HitLevel::kL3);
  EXPECT_FALSE(h.resident_l2(16));
  // The quirk: line 16 survives in L1D (inclusion says it should not).
  EXPECT_TRUE(h.resident_l1(16, Side::kData));
  // It is still L3-resident, so a later L3 eviction cleans it up.
  EXPECT_TRUE(h.resident_l3(16));
}

// ---- SharedLevels: two private hierarchies over one L2/L3 ------------------

TEST(SharedLevels, SharedFillIsVisibleToEveryAttachedCore) {
  const HierarchyConfig cfg = tiny_hierarchy();
  SharedLevels shared(cfg);
  CacheHierarchy h0(cfg, &shared, /*owner=*/0);
  CacheHierarchy h1(cfg, &shared, /*owner=*/1);
  EXPECT_EQ(shared.num_attached(), 2);

  h0.fill_all_levels(7, Side::kData);
  EXPECT_TRUE(h0.resident_l1(7, Side::kData));
  EXPECT_FALSE(h1.resident_l1(7, Side::kData));  // private level stays private
  EXPECT_TRUE(h1.resident_l2(7));                // shared levels are one array
  EXPECT_TRUE(h1.resident_l3(7));
}

TEST(SharedLevels, RemoteEvictionBackInvalidatesOtherCoresL1) {
  const HierarchyConfig cfg = tiny_hierarchy();
  SharedLevels shared(cfg);
  CacheHierarchy h0(cfg, &shared, /*owner=*/0);
  CacheHierarchy h1(cfg, &shared, /*owner=*/1);

  h0.fill_all_levels(0, Side::kData);
  // Core 1 overflows shared-L2 set 0 (4 ways): core 0's line is evicted
  // from L2 and inclusion must back-invalidate it from core 0's L1 even
  // though core 0 did nothing.
  for (Addr k = 1; k <= 4; ++k) h1.fill_all_levels(k * 16, Side::kData);
  EXPECT_FALSE(h0.resident_l2(0));
  EXPECT_FALSE(h0.resident_l1(0, Side::kData));
  EXPECT_GT(shared.cross_core_evictions(), 0u);
}

TEST(SharedLevels, FlushLineIsCoherenceGlobal) {
  const HierarchyConfig cfg = tiny_hierarchy();
  SharedLevels shared(cfg);
  CacheHierarchy h0(cfg, &shared, /*owner=*/0);
  CacheHierarchy h1(cfg, &shared, /*owner=*/1);

  h0.fill_all_levels(7, Side::kData);
  h1.fill_all_levels(7, Side::kData);
  h1.flush_line(7);  // spy-side flush must reach the victim's L1 too
  EXPECT_FALSE(h0.resident_l1(7, Side::kData));
  EXPECT_FALSE(h1.resident_l1(7, Side::kData));
  EXPECT_FALSE(h0.resident_l2(7));
  EXPECT_FALSE(h0.resident_l3(7));
}

// ---- TLB --------------------------------------------------------------------

TEST(TlbTest, MissFillHit) {
  Tlb tlb({.name = "t", .entries = 8, .ways = 2});
  EXPECT_FALSE(tlb.access(42).has_value());
  tlb.fill({42, 77, false});
  const auto hit = tlb.access(42);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->ppage, 77u);
  EXPECT_FALSE(hit->kernel_only);
}

TEST(TlbTest, EvictionReturnsVictim) {
  Tlb tlb({.name = "t", .entries = 4, .ways = 2});  // 2 sets
  // vpages 0,2,4 all map to set 0.
  tlb.fill({0, 0, false});
  tlb.fill({2, 2, false});
  const auto evicted = tlb.fill({4, 4, false});
  ASSERT_TRUE(evicted.has_value());
  EXPECT_EQ(*evicted, 0u);  // LRU
}

TEST(TlbTest, InvalidateAndFlush) {
  Tlb tlb({.name = "t", .entries = 8, .ways = 2});
  tlb.fill({1, 1, false});
  tlb.fill({2, 2, true});
  EXPECT_TRUE(tlb.invalidate(1));
  EXPECT_FALSE(tlb.probe(1));
  tlb.flush_all();
  EXPECT_EQ(tlb.occupancy(), 0u);
}

TEST(TlbTest, RefillUpdatesInPlace) {
  Tlb tlb({.name = "t", .entries = 8, .ways = 2});
  tlb.fill({1, 10, false});
  tlb.fill({1, 20, true});
  const auto hit = tlb.access(1);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->ppage, 20u);
  EXPECT_TRUE(hit->kernel_only);
  EXPECT_EQ(tlb.occupancy(), 1u);
}

// ---- PageTable ----------------------------------------------------------------

TEST(PageTableTest, TranslateMappedAndUnmapped) {
  PageTable pt;
  pt.map(5, 99, /*kernel_only=*/true);
  const auto t = pt.translate(5);
  EXPECT_TRUE(t.present);
  EXPECT_EQ(t.ppage, 99u);
  EXPECT_TRUE(t.kernel_only);
  EXPECT_FALSE(pt.translate(6).present);
}

TEST(PageTableTest, WalkHasFourLevels) {
  PageTable pt;
  EXPECT_EQ(pt.walk_addresses(0x1234).size(),
            static_cast<std::size_t>(PageTable::kWalkLevels));
}

TEST(PageTableTest, WalkAddressesAreStableAndShareUpperLevels) {
  PageTable pt;
  const auto a1 = pt.walk_addresses(0x1000);
  const auto a2 = pt.walk_addresses(0x1000);
  EXPECT_EQ(a1, a2);  // deterministic
  // Neighbouring pages share the root (level 0) table entry region.
  const auto b = pt.walk_addresses(0x1001);
  EXPECT_EQ(page_of(a1[0]), page_of(b[0]));
}

TEST(PageTableTest, WalkAddressesScatterAcrossCacheSets) {
  // Regression test: a naive power-of-two page-table layout aliases every
  // walk line into one cache set, which distorted timing badly.
  PageTable pt;
  std::set<int> sets;
  // Widely separated pages use distinct table pages at every level; their
  // walk lines must spread over many cache sets, not alias to one.
  for (Addr v = 0; v < 64; ++v) {
    for (const Addr a : pt.walk_addresses(v * 0x40000 + 0x123)) {
      sets.insert(static_cast<int>(line_of(a) % 1024));
    }
  }
  EXPECT_GT(sets.size(), 32u);
}

}  // namespace
}  // namespace safespec::memory
