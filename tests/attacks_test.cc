// End-to-end security validation (Tables III & IV):
//   * every attack succeeds on the insecure baseline,
//   * WFB stops everything except Meltdown,
//   * WFC stops everything,
//   * the TSA channel opens on undersized shadows and closes under
//     worst-case sizing.
#include <gtest/gtest.h>

#include "attacks/attacks.h"

namespace safespec::attacks {
namespace {

using shadow::FullPolicy;

// ---- baseline: everything leaks -------------------------------------------

TEST(Baseline, SpectreV1Leaks) {
  const auto out = run_spectre_v1("baseline", 0x5A);
  EXPECT_TRUE(out.leaked) << out.detail;
  EXPECT_EQ(out.recovered, 0x5A);
}

TEST(Baseline, SpectreV2Leaks) {
  const auto out = run_spectre_v2("baseline", 0xC3);
  EXPECT_TRUE(out.leaked) << out.detail;
  EXPECT_EQ(out.recovered, 0xC3);
}

TEST(Baseline, MeltdownLeaks) {
  const auto out = run_meltdown("baseline", 0x7E);
  EXPECT_TRUE(out.leaked) << out.detail;
  EXPECT_EQ(out.recovered, 0x7E);
}

TEST(Baseline, ICacheVariantLeaks) {
  const auto out = run_icache_attack("baseline", 0x42);
  EXPECT_TRUE(out.leaked) << out.detail;
}

TEST(Baseline, ITlbVariantLeaks) {
  const auto out = run_itlb_attack("baseline", 0x42);
  EXPECT_TRUE(out.leaked) << out.detail;
}

TEST(Baseline, DTlbVariantLeaks) {
  const auto out = run_dtlb_attack("baseline", 0x42);
  EXPECT_TRUE(out.leaked) << out.detail;
}

// ---- WFB: Spectre closed, Meltdown still open (Table III) -----------------

TEST(WFB, SpectreV1Stopped) {
  const auto out = run_spectre_v1("WFB", 0x5A);
  EXPECT_FALSE(out.leaked) << out.detail;
}

TEST(WFB, SpectreV2Stopped) {
  const auto out = run_spectre_v2("WFB", 0xC3);
  EXPECT_FALSE(out.leaked) << out.detail;
}

TEST(WFB, MeltdownStillLeaks) {
  // WFB promotes shadow state once all older *branches* resolve; Meltdown
  // has no branch, so the transmitting line is promoted before the fault
  // commits — exactly the Table III "WFB does not stop Meltdown" row.
  const auto out = run_meltdown("WFB", 0x7E);
  EXPECT_TRUE(out.leaked) << out.detail;
}

TEST(WFB, ICacheVariantStopped) {
  EXPECT_FALSE(run_icache_attack("WFB", 0x42).leaked);
}

TEST(WFB, ITlbVariantStopped) {
  EXPECT_FALSE(run_itlb_attack("WFB", 0x42).leaked);
}

TEST(WFB, DTlbVariantStopped) {
  EXPECT_FALSE(run_dtlb_attack("WFB", 0x42).leaked);
}

// ---- WFC: everything closed (Tables III & IV) ------------------------------

TEST(WFC, SpectreV1Stopped) {
  const auto out = run_spectre_v1("WFC", 0x5A);
  EXPECT_FALSE(out.leaked) << out.detail;
}

TEST(WFC, SpectreV2Stopped) {
  const auto out = run_spectre_v2("WFC", 0xC3);
  EXPECT_FALSE(out.leaked) << out.detail;
}

TEST(WFC, MeltdownStopped) {
  const auto out = run_meltdown("WFC", 0x7E);
  EXPECT_FALSE(out.leaked) << out.detail;
}

TEST(WFC, ICacheVariantStopped) {
  EXPECT_FALSE(run_icache_attack("WFC", 0x42).leaked);
}

TEST(WFC, ITlbVariantStopped) {
  EXPECT_FALSE(run_itlb_attack("WFC", 0x42).leaked);
}

TEST(WFC, DTlbVariantStopped) {
  EXPECT_FALSE(run_dtlb_attack("WFC", 0x42).leaked);
}

// ---- leak robustness across secret values ---------------------------------

class SecretSweep : public ::testing::TestWithParam<int> {};

TEST_P(SecretSweep, SpectreV1RecoversAnyByteOnBaseline) {
  const auto out = run_spectre_v1("baseline", GetParam());
  EXPECT_TRUE(out.leaked) << out.detail;
  EXPECT_EQ(out.recovered, GetParam());
}

TEST_P(SecretSweep, MeltdownRecoversAnyByteOnBaseline) {
  const auto out = run_meltdown("baseline", GetParam());
  EXPECT_TRUE(out.leaked) << out.detail;
  EXPECT_EQ(out.recovered, GetParam());
}

TEST_P(SecretSweep, WfcStopsSpectreV1ForAnyByte) {
  EXPECT_FALSE(run_spectre_v1("WFC", GetParam()).leaked);
}

INSTANTIATE_TEST_SUITE_P(Bytes, SecretSweep,
                         ::testing::Values(1, 7, 63, 128, 200, 255));

// ---- TSA (§V, Fig 10) -------------------------------------------------------

TEST(TSA, DropChannelLeaksOnUndersizedShadow) {
  TsaConfig config;
  config.shadow_entries = 8;
  config.full_policy = FullPolicy::kDrop;
  const auto out = run_tsa_attack(config);
  EXPECT_TRUE(out.leaked) << out.detail;
  EXPECT_EQ(out.recovered_bit, 1);
}

TEST(TSA, StallChannelLeaksOnUndersizedShadow) {
  TsaConfig config;
  config.shadow_entries = 8;
  config.full_policy = FullPolicy::kStall;
  const auto out = run_tsa_attack(config);
  EXPECT_TRUE(out.leaked) << out.detail;
}

TEST(TSA, WorstCaseSizingClosesDropChannel) {
  TsaConfig config;
  config.shadow_entries = 72;  // LDQ-bound "Secure" sizing (§V)
  config.full_policy = FullPolicy::kDrop;
  const auto out = run_tsa_attack(config);
  EXPECT_FALSE(out.leaked) << out.detail;
}

TEST(TSA, WorstCaseSizingClosesStallChannel) {
  TsaConfig config;
  config.shadow_entries = 72;
  config.full_policy = FullPolicy::kStall;
  const auto out = run_tsa_attack(config);
  EXPECT_FALSE(out.leaked) << out.detail;
}

// ---- cross-core variants (spy on core 1, victim on core 0) -----------------

// The acceptance pair for the multi-core model: under the insecure
// baseline the spy recovers the victim's secret through the shared
// L2/L3, and the SafeSpec shadow policies eliminate exactly that channel
// while both programs still run to completion.

TEST(Baseline, CrossCoreFlushReloadLeaks) {
  const auto out = run_cross_core_flush_reload("baseline", 0xAD);
  EXPECT_TRUE(out.leaked) << out.detail;
  EXPECT_EQ(out.recovered, 0xAD) << out.detail;
}

TEST(Baseline, CrossCoreEvictMistrainLeaks) {
  const auto out = run_cross_core_evict("baseline", 0x5C);
  EXPECT_TRUE(out.leaked) << out.detail;
  EXPECT_EQ(out.recovered, 0x5C) << out.detail;
  // The spy's set-priming must show up as cross-core contention at the
  // shared levels — the counter is the attribution the attack rides on.
  EXPECT_GT(out.cross_core_evictions, 0u) << out.detail;
}

TEST(WFB, CrossCoreFlushReloadStopped) {
  const auto out = run_cross_core_flush_reload("WFB", 0xAD);
  EXPECT_FALSE(out.leaked) << out.detail;
}

TEST(WFB, CrossCoreEvictMistrainStopped) {
  const auto out = run_cross_core_evict("WFB", 0x5C);
  EXPECT_FALSE(out.leaked) << out.detail;
}

TEST(WFC, CrossCoreFlushReloadStopped) {
  const auto out = run_cross_core_flush_reload("WFC", 0xAD);
  EXPECT_FALSE(out.leaked) << out.detail;
}

TEST(WFC, CrossCoreEvictMistrainStopped) {
  const auto out = run_cross_core_evict("WFC", 0x5C);
  EXPECT_FALSE(out.leaked) << out.detail;
}

// ---- SHARP family (cache-level protection, no shadows) ---------------------

TEST(SHARP, CrossCoreEvictMistrainStopped) {
  // The spy primes the victim's L3 set with committed fills; under SHARP
  // it can only victimize its own ways, so the victim's bounds word is
  // never pushed out and the speculation window never opens.
  const auto out = run_cross_core_evict("SHARP", 0x5C);
  EXPECT_FALSE(out.leaked) << out.detail;
  EXPECT_EQ(out.cross_core_evictions, 0u) << out.detail;
}

TEST(SHARP, CrossCoreFlushReloadStillLeaks) {
  // clflush is architectural and coherence-global — replacement-level
  // protection cannot stop it. The honest limitation of the family.
  const auto out = run_cross_core_flush_reload("SHARP", 0xAD);
  EXPECT_TRUE(out.leaked) << out.detail;
  EXPECT_EQ(out.recovered, 0xAD) << out.detail;
}

TEST(SHARP, SpectreV1StillLeaksSingleCore) {
  // SHARP does not shadow speculation; the single-core transient channel
  // is untouched (and timing is bit-identical to the baseline).
  const auto out = run_spectre_v1("SHARP", 0x42);
  EXPECT_TRUE(out.leaked) << out.detail;
}

TEST(SHARP, PrimeSweepAlarmsAndDetects) {
  // The full-hierarchy prime sweep forces cross-owner evictions; every
  // forced choice alarms and the scaled-down detector threshold trips.
  const auto out = run_cross_core_prime_detect("SHARP");
  EXPECT_GT(out.sharp_alarms, 0u) << out.detail;
  EXPECT_GT(out.sharp_detections, 0u) << out.detail;
}

TEST(DetectOnly, AttacksLeakButAlarm) {
  // detect-only never changes the victim stream, so the baseline leaks
  // persist — but the cross-owner evictions are now counted as alarms.
  const auto fr = run_cross_core_flush_reload("detect-only", 0xAD);
  EXPECT_TRUE(fr.leaked) << fr.detail;
  EXPECT_GT(fr.sharp_alarms, 0u) << fr.detail;
  const auto sweep = run_cross_core_prime_detect("detect-only");
  EXPECT_GT(sweep.sharp_alarms, 0u) << sweep.detail;
  EXPECT_GT(sweep.sharp_detections, 0u) << sweep.detail;
}

TEST(WFC, PrimeSweepIsSilent) {
  // Shadow policies carry no replacement-level telemetry: the same sweep
  // proceeds without a single alarm.
  const auto out = run_cross_core_prime_detect("WFC");
  EXPECT_EQ(out.sharp_alarms, 0u) << out.detail;
  EXPECT_EQ(out.sharp_detections, 0u) << out.detail;
}

TEST(WFC, ShadowStructuresStayPerCorePrivate) {
  // A speculative storm on core 0 must not perturb core 1's shadow
  // lifecycle at all: shadows are per-core private state, so the only
  // cross-core channels left are the (protected) shared cache levels.
  const auto out = run_cross_core_shadow_contention("WFC");
  EXPECT_TRUE(out.shadows_private) << out.detail;
  EXPECT_GT(out.storm_shadow_fills, 0u) << out.detail;
}

TEST(WFB, ShadowStructuresStayPerCorePrivate) {
  const auto out = run_cross_core_shadow_contention("WFB");
  EXPECT_TRUE(out.shadows_private) << out.detail;
  EXPECT_GT(out.storm_shadow_fills, 0u) << out.detail;
}

}  // namespace
}  // namespace safespec::attacks
