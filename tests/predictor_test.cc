// Unit tests for the branch prediction stack: direction predictors
// (bimodal / gshare / perceptron), BTB, RSB, the combined PredictorUnit,
// and the adversarial poisoning API the threat model grants.
#include <gtest/gtest.h>

#include "predictor/branch_predictor.h"
#include "predictor/btb.h"
#include "predictor/predictor_unit.h"

namespace safespec::predictor {
namespace {

using isa::Instruction;
using isa::OpClass;

// ---- direction predictors ---------------------------------------------------

class DirectionSweep : public ::testing::TestWithParam<DirectionKind> {
 protected:
  std::unique_ptr<DirectionPredictor> make() {
    DirectionConfig config;
    config.kind = GetParam();
    config.table_bits = 10;
    config.history_bits = 8;
    config.perceptron_weights = 8;
    return make_direction_predictor(config);
  }
};

TEST_P(DirectionSweep, LearnsAlwaysTaken) {
  auto p = make();
  for (int i = 0; i < 64; ++i) p->update(0x1000, true);
  EXPECT_TRUE(p->predict(0x1000));
}

TEST_P(DirectionSweep, LearnsAlwaysNotTaken) {
  auto p = make();
  for (int i = 0; i < 64; ++i) p->update(0x1000, false);
  EXPECT_FALSE(p->predict(0x1000));
}

TEST_P(DirectionSweep, RelearnsAfterPhaseChange) {
  auto p = make();
  for (int i = 0; i < 64; ++i) p->update(0x2000, true);
  for (int i = 0; i < 64; ++i) p->update(0x2000, false);
  EXPECT_FALSE(p->predict(0x2000));
}

TEST_P(DirectionSweep, ResetForgets) {
  auto p = make();
  for (int i = 0; i < 64; ++i) p->update(0x3000, true);
  p->reset();
  // After reset the predictor must behave identically to a fresh one.
  DirectionConfig config;
  config.kind = GetParam();
  config.table_bits = 10;
  config.history_bits = 8;
  config.perceptron_weights = 8;
  auto fresh = make_direction_predictor(config);
  EXPECT_EQ(p->predict(0x3000), fresh->predict(0x3000));
}

INSTANTIATE_TEST_SUITE_P(AllKinds, DirectionSweep,
                         ::testing::Values(DirectionKind::kBimodal,
                                           DirectionKind::kGshare,
                                           DirectionKind::kPerceptron));

TEST(Gshare, LearnsAlternatingPatternThroughHistory) {
  auto p = make_direction_predictor({.kind = DirectionKind::kGshare,
                                     .table_bits = 12,
                                     .history_bits = 8});
  // Alternating T/N on one pc: gshare separates by history and converges.
  bool taken = false;
  int correct = 0;
  for (int i = 0; i < 400; ++i) {
    taken = !taken;
    if (i >= 200 && p->predict(0x4000) == taken) ++correct;
    p->update(0x4000, taken);
  }
  EXPECT_GT(correct, 180);  // near-perfect in the second half
}

TEST(Perceptron, LearnsHistoryCorrelation) {
  auto p = make_direction_predictor({.kind = DirectionKind::kPerceptron,
                                     .table_bits = 8,
                                     .perceptron_weights = 8});
  // Branch taken iff the previous outcome was taken (strong correlation
  // with history bit 0) — a pattern a bimodal counter cannot learn.
  bool prev = false;
  int correct = 0;
  for (int i = 0; i < 600; ++i) {
    const bool taken = prev;
    if (i >= 300 && p->predict(0x5000) == taken) ++correct;
    p->update(0x5000, taken);
    prev = taken;
  }
  EXPECT_GT(correct, 270);
}

// ---- BTB ---------------------------------------------------------------------

TEST(BtbTest, MissThenUpdateThenHit) {
  Btb btb({.entries = 64, .ways = 4});
  EXPECT_FALSE(btb.lookup(0x100).has_value());
  btb.update(0x100, 0x2000);
  const auto t = btb.lookup(0x100);
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(*t, 0x2000u);
}

TEST(BtbTest, UpdateOverwritesTarget) {
  Btb btb({.entries = 64, .ways = 4});
  btb.update(0x100, 0x2000);
  btb.update(0x100, 0x3000);  // this is exactly how poisoning works
  EXPECT_EQ(*btb.lookup(0x100), 0x3000u);
}

TEST(BtbTest, SetConflictEvictsLru) {
  Btb btb({.entries = 8, .ways = 2});  // 4 sets; pcs k*16 alias to set 0
  btb.update(0x00, 1);
  btb.update(0x10, 2);
  btb.lookup(0x00);        // refresh
  btb.update(0x20, 3);     // evicts 0x10
  EXPECT_TRUE(btb.lookup(0x00).has_value());
  EXPECT_FALSE(btb.lookup(0x10).has_value());
  EXPECT_TRUE(btb.lookup(0x20).has_value());
}

// ---- RSB ---------------------------------------------------------------------

TEST(RsbTest, LifoOrder) {
  Rsb rsb(4);
  rsb.push(1);
  rsb.push(2);
  rsb.push(3);
  EXPECT_EQ(rsb.pop(), 3u);
  EXPECT_EQ(rsb.pop(), 2u);
  EXPECT_EQ(rsb.pop(), 1u);
  EXPECT_FALSE(rsb.pop().has_value());  // underflow
}

TEST(RsbTest, OverflowWrapsOldestAway) {
  Rsb rsb(2);
  rsb.push(1);
  rsb.push(2);
  rsb.push(3);  // overwrites 1
  EXPECT_EQ(rsb.pop(), 3u);
  EXPECT_EQ(rsb.pop(), 2u);
  EXPECT_FALSE(rsb.pop().has_value());
}

// ---- PredictorUnit ------------------------------------------------------------

PredictorConfig unit_config() {
  PredictorConfig c;
  c.direction.kind = DirectionKind::kBimodal;
  return c;
}

Instruction make_branch(OpClass op, Addr target = 0) {
  Instruction i;
  i.op = op;
  i.target = target;
  return i;
}

TEST(PredictorUnit, ConditionalUsesDirectionAndStaticTarget) {
  PredictorUnit u(unit_config());
  const auto br = make_branch(OpClass::kBranch, 0x9000);
  for (int i = 0; i < 8; ++i) u.train(0x100, br, true, 0x9000);
  const auto p = u.predict(0x100, br);
  EXPECT_TRUE(p.taken);
  EXPECT_EQ(p.target, 0x9000u);
}

TEST(PredictorUnit, IndirectWithoutBtbEntryHasUnknownTarget) {
  PredictorUnit u(unit_config());
  const auto p = u.predict(0x200, make_branch(OpClass::kBranchIndirect));
  EXPECT_FALSE(p.target_known);
}

TEST(PredictorUnit, PoisonBtbRedirectsIndirectPrediction) {
  PredictorUnit u(unit_config());
  u.poison_btb(0x200, 0xBAD0);
  const auto p = u.predict(0x200, make_branch(OpClass::kBranchIndirect));
  EXPECT_TRUE(p.target_known);
  EXPECT_EQ(p.target, 0xBAD0u);
}

TEST(PredictorUnit, CallPushesReturnAddressForRet) {
  PredictorUnit u(unit_config());
  u.predict(0x300, make_branch(OpClass::kCall, 0x8000));
  const auto p = u.predict(0x8000, make_branch(OpClass::kRet));
  EXPECT_TRUE(p.target_known);
  EXPECT_EQ(p.target, 0x300u + isa::kInstrBytes);
}

TEST(PredictorUnit, MistrainDirectionForcesPrediction) {
  PredictorUnit u(unit_config());
  const auto br = make_branch(OpClass::kBranch, 0x9000);
  u.mistrain_direction(0x100, /*taken=*/false, 16);
  EXPECT_FALSE(u.predict(0x100, br).taken);
  u.mistrain_direction(0x100, /*taken=*/true, 16);
  EXPECT_TRUE(u.predict(0x100, br).taken);
}

TEST(PredictorUnit, ResolutionStatsTrackAccuracy) {
  PredictorUnit u(unit_config());
  u.note_resolution(true);
  u.note_resolution(true);
  u.note_resolution(false);
  EXPECT_EQ(u.direction_stats().hits.value(), 2u);
  EXPECT_EQ(u.direction_stats().misses.value(), 1u);
}

}  // namespace
}  // namespace safespec::predictor
