// Tests for the differential fuzzing subsystem: the architectural
// oracle's semantics (hand-computed final states covering every opcode
// class), the random program generator's determinism and termination,
// the differential harness's invariants, and — via the core's mutation
// hooks — the harness's ability to actually *catch* a corrupted core.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "fuzz/differential.h"
#include "fuzz/fuzz_spec.h"
#include "fuzz/generator.h"
#include "fuzz/oracle.h"
#include "isa/program.h"
#include "memory/main_memory.h"
#include "memory/page_table.h"
#include "safespec/policy.h"
#include "sim/machine.h"

namespace safespec::fuzz {
namespace {

using isa::AluOp;
using isa::CondOp;
using isa::ProgramBuilder;

/// All-zero scenario weights ({} would re-apply the 1.0 defaults).
ScenarioWeights zero_weights() {
  ScenarioWeights w;
  w.branch_heavy = 0;
  w.pointer_chase = 0;
  w.protected_window = 0;
  w.self_confusing = 0;
  w.mixed_compute = 0;
  w.mem_storm = 0;
  return w;
}

constexpr Addr kText = 0x1000;
constexpr Addr kData = 0x10000;
constexpr Addr kKernel = 0x20000;

/// One oracle environment: user pages for text and data, one kernel
/// page, identity-translated.
struct OracleEnv {
  memory::MainMemory mem;
  memory::PageTable pt;

  OracleEnv() {
    for (const Addr base : {kText, kData}) {
      mem.map_page(page_of(base), memory::PagePerm::kUser);
      pt.map_identity(page_of(base), /*kernel_only=*/false);
    }
    mem.map_page(page_of(kKernel), memory::PagePerm::kKernel);
    pt.map_identity(page_of(kKernel), /*kernel_only=*/true);
  }

  cpu::StopReason run(const isa::Program& program, OracleInterpreter*& out,
                      std::uint64_t max_instrs = 100000) {
    oracle_storage.emplace_back(
        new OracleInterpreter(&program, &mem, &pt));
    out = oracle_storage.back().get();
    return out->run(max_instrs);
  }

  std::vector<std::unique_ptr<OracleInterpreter>> oracle_storage;
};

// ---- OracleInterpreter: hand-computed states per opcode class -------------

TEST(OracleTest, MoviAndAluChain) {
  ProgramBuilder b(kText);
  b.movi(1, 10);
  b.alui(AluOp::kAdd, 2, 1, 5);        // r2 = 15
  b.alu(AluOp::kSub, 3, 2, 1);         // r3 = 5
  b.alui(AluOp::kShl, 4, 3, 4);        // r4 = 80
  b.alu(AluOp::kXor, 5, 4, 3);         // r5 = 80 ^ 5 = 85
  b.alui(AluOp::kAnd, 6, 5, 0xF);      // r6 = 5
  b.alui(AluOp::kOr, 7, 6, 0x30);      // r7 = 0x35
  b.alui(AluOp::kShr, 8, 7, 4);        // r8 = 3
  b.movi(0, 99);                        // r0 ignores writes
  b.halt();
  auto p = b.build();
  p.set_entry(kText);

  OracleEnv env;
  OracleInterpreter* o = nullptr;
  EXPECT_EQ(env.run(p, o), cpu::StopReason::kHalted);
  EXPECT_EQ(o->reg(2), 15u);
  EXPECT_EQ(o->reg(3), 5u);
  EXPECT_EQ(o->reg(4), 80u);
  EXPECT_EQ(o->reg(5), 85u);
  EXPECT_EQ(o->reg(6), 5u);
  EXPECT_EQ(o->reg(7), 0x35u);
  EXPECT_EQ(o->reg(8), 3u);
  EXPECT_EQ(o->reg(0), 0u);
  EXPECT_EQ(o->committed(), 10u);  // including the halt
}

TEST(OracleTest, MulDivAndDivideByZero) {
  ProgramBuilder b(kText);
  b.movi(1, 7);
  b.alui(AluOp::kMul, 2, 1, 6);   // r2 = 42
  b.alui(AluOp::kDiv, 3, 2, 5);   // r3 = 8
  b.alu(AluOp::kDiv, 4, 2, 0);    // r4 = 42 / r0(=0) = all-ones
  b.halt();
  auto p = b.build();
  p.set_entry(kText);

  OracleEnv env;
  OracleInterpreter* o = nullptr;
  EXPECT_EQ(env.run(p, o), cpu::StopReason::kHalted);
  EXPECT_EQ(o->reg(2), 42u);
  EXPECT_EQ(o->reg(3), 8u);
  EXPECT_EQ(o->reg(4), ~0ULL);
}

TEST(OracleTest, LoadStoreAndMemoryImage) {
  ProgramBuilder b(kText);
  b.movi(1, static_cast<std::int64_t>(kData));
  b.movi(2, 0xABCD);
  b.store(2, 1, 8);     // MEM[kData+8] = 0xABCD
  b.load(3, 1, 8);      // r3 = 0xABCD (just stored)
  b.load(4, 1, 0);      // r4 = 0x1111 (poked below)
  b.alu(AluOp::kAdd, 5, 3, 4);
  b.store(5, 1, 16);    // MEM[kData+16] = 0xABCD + 0x1111
  b.halt();
  auto p = b.build();
  p.set_entry(kText);

  OracleEnv env;
  env.mem.write64(kData, 0x1111);
  OracleInterpreter* o = nullptr;
  EXPECT_EQ(env.run(p, o), cpu::StopReason::kHalted);
  EXPECT_EQ(o->reg(3), 0xABCDu);
  EXPECT_EQ(o->reg(4), 0x1111u);
  const auto words = env.mem.nonzero_words();
  ASSERT_EQ(words.size(), 3u);
  EXPECT_EQ(words[0], (std::pair<Addr, std::uint64_t>{kData, 0x1111}));
  EXPECT_EQ(words[1], (std::pair<Addr, std::uint64_t>{kData + 8, 0xABCD}));
  EXPECT_EQ(words[2],
            (std::pair<Addr, std::uint64_t>{kData + 16, 0xABCD + 0x1111}));
}

TEST(OracleTest, BranchLoopSumsCorrectly) {
  // r2 = sum of 1..5 via a counted backward branch; the not-taken exit
  // covers both directions of kBranch.
  ProgramBuilder b(kText);
  b.movi(1, 5);
  b.movi(2, 0);
  b.label("loop");
  b.alu(AluOp::kAdd, 2, 2, 1);
  b.alui(AluOp::kSub, 1, 1, 1);
  b.branch(CondOp::kNe, 1, 0, "loop");
  b.halt();
  auto p = b.build();
  p.set_entry(kText);

  OracleEnv env;
  OracleInterpreter* o = nullptr;
  EXPECT_EQ(env.run(p, o), cpu::StopReason::kHalted);
  EXPECT_EQ(o->reg(2), 15u);
  EXPECT_EQ(o->committed(), 2u + 3u * 5u + 1u);
}

TEST(OracleTest, JumpAndIndirectBranch) {
  ProgramBuilder b(kText);
  b.movi(1, 0);
  b.jump("over");
  b.movi(1, 111);  // skipped
  b.label("over");
  b.movi(2, static_cast<std::int64_t>(kText + 7 * isa::kInstrBytes));
  b.jump_reg(2);                        // to "landing"
  b.movi(1, 222);                       // skipped
  b.nop();                              // pc = kText + 6*4 — also skipped
  // pc = kText + 7*4:
  b.label("landing");
  b.movi(3, 42);
  b.halt();
  auto p = b.build();
  p.set_entry(kText);
  ASSERT_EQ(b.label_addr("landing"), kText + 7 * isa::kInstrBytes);

  OracleEnv env;
  OracleInterpreter* o = nullptr;
  EXPECT_EQ(env.run(p, o), cpu::StopReason::kHalted);
  EXPECT_EQ(o->reg(1), 0u);
  EXPECT_EQ(o->reg(3), 42u);
}

TEST(OracleTest, CallLinksAndRetReturns) {
  ProgramBuilder b(kText);
  b.movi(1, 1);
  b.call("fn");            // pc = kText+4; link = kText+8
  b.alui(AluOp::kAdd, 1, 1, 100);  // after return: r1 = 1 + 10 + 100
  b.halt();
  b.label("fn");
  b.alui(AluOp::kAdd, 1, 1, 10);
  b.ret();
  auto p = b.build();
  p.set_entry(kText);

  OracleEnv env;
  OracleInterpreter* o = nullptr;
  EXPECT_EQ(env.run(p, o), cpu::StopReason::kHalted);
  EXPECT_EQ(o->reg(1), 111u);
  EXPECT_EQ(o->reg(isa::kLinkReg), kText + 2 * isa::kInstrBytes);
}

TEST(OracleTest, FlushFenceNopHaveNoArchitecturalEffect) {
  ProgramBuilder b(kText);
  b.movi(1, static_cast<std::int64_t>(kData));
  b.movi(2, 5);
  b.store(2, 1, 0);
  b.nop();
  b.fence();
  b.flush(1, 0);
  b.load(3, 1, 0);
  b.halt();
  auto p = b.build();
  p.set_entry(kText);

  OracleEnv env;
  OracleInterpreter* o = nullptr;
  EXPECT_EQ(env.run(p, o), cpu::StopReason::kHalted);
  EXPECT_EQ(o->reg(3), 5u);
  EXPECT_EQ(o->committed(), 8u);
}

TEST(OracleTest, RdCycleReturnsCommittedCount) {
  // Documented oracle-only semantics (the generator never emits
  // kRdCycle precisely because its real value is timing-dependent).
  ProgramBuilder b(kText);
  b.nop();
  b.nop();
  b.rdcycle(1);  // two instructions committed before this one
  b.halt();
  auto p = b.build();
  p.set_entry(kText);

  OracleEnv env;
  OracleInterpreter* o = nullptr;
  EXPECT_EQ(env.run(p, o), cpu::StopReason::kHalted);
  EXPECT_EQ(o->reg(1), 2u);
}

TEST(OracleTest, KernelLoadFaultsIntoHandler) {
  ProgramBuilder b(kText);
  b.movi(1, static_cast<std::int64_t>(kKernel));
  b.movi(2, 7);               // r2 keeps 7: the faulting load never commits
  b.load(2, 1, 0);            // permission fault
  b.movi(3, 111);             // dead: control goes to the handler
  b.halt();
  b.label("handler");
  b.movi(4, 222);
  b.halt();
  auto p = b.build();
  p.set_entry(kText);
  p.set_fault_handler(b.label_addr("handler"));

  OracleEnv env;
  env.mem.write64(kKernel, 0x5EC7E7);  // the secret is there...
  OracleInterpreter* o = nullptr;
  EXPECT_EQ(env.run(p, o), cpu::StopReason::kHalted);
  EXPECT_EQ(o->reg(2), 7u);   // ...but never architecturally visible
  EXPECT_EQ(o->reg(3), 0u);
  EXPECT_EQ(o->reg(4), 222u);
  EXPECT_EQ(o->faults(), 1u);
  EXPECT_EQ(o->committed(), 4u);  // movi, movi, handler movi, halt
}

TEST(OracleTest, KernelStoreFaultsAndWritesNothing) {
  ProgramBuilder b(kText);
  b.movi(1, static_cast<std::int64_t>(kKernel));
  b.movi(2, 0xBAD);
  b.store(2, 1, 0);
  b.halt();
  auto p = b.build();
  p.set_entry(kText);

  OracleEnv env;
  OracleInterpreter* o = nullptr;
  EXPECT_EQ(env.run(p, o), cpu::StopReason::kFaultNoHandler);
  EXPECT_EQ(o->faults(), 1u);
  EXPECT_TRUE(env.mem.nonzero_words().empty());
}

TEST(OracleTest, UnmappedLoadWithoutHandlerStops) {
  ProgramBuilder b(kText);
  b.movi(1, 0x7777000);  // unmapped
  b.load(2, 1, 0);
  b.halt();
  auto p = b.build();
  p.set_entry(kText);

  OracleEnv env;
  OracleInterpreter* o = nullptr;
  EXPECT_EQ(env.run(p, o), cpu::StopReason::kFaultNoHandler);
  EXPECT_EQ(o->committed(), 1u);  // only the movi
  EXPECT_EQ(o->reg(2), 0u);
}

TEST(OracleTest, RunningOffTextStops) {
  ProgramBuilder b(kText);
  b.movi(1, 1);
  b.nop();  // falls off the end: no instruction at the next pc
  auto p = b.build();
  p.set_entry(kText);

  OracleEnv env;
  OracleInterpreter* o = nullptr;
  EXPECT_EQ(env.run(p, o), cpu::StopReason::kFaultNoHandler);
  EXPECT_EQ(o->committed(), 2u);
}

TEST(OracleTest, InstructionBudgetIsResumable) {
  ProgramBuilder b(kText);
  b.label("spin");
  b.alui(AluOp::kAdd, 1, 1, 1);
  b.jump("spin");
  auto p = b.build();
  p.set_entry(kText);

  OracleEnv env;
  OracleInterpreter* o = nullptr;
  EXPECT_EQ(env.run(p, o, /*max_instrs=*/10), cpu::StopReason::kMaxInstrs);
  EXPECT_EQ(o->committed(), 10u);
  EXPECT_EQ(o->run(10), cpu::StopReason::kMaxInstrs);
  EXPECT_EQ(o->committed(), 20u);
}

// ---- generator ------------------------------------------------------------

TEST(GeneratorTest, DeterministicForSameSeed) {
  const FuzzSpec spec;
  const auto a = generate_program(42, spec);
  const auto b = generate_program(42, spec);
  EXPECT_EQ(isa::to_string(a.program), isa::to_string(b.program));
  EXPECT_EQ(a.classes, b.classes);
  ASSERT_EQ(a.pokes.size(), b.pokes.size());
  for (std::size_t i = 0; i < a.pokes.size(); ++i) {
    EXPECT_EQ(a.pokes[i].addr, b.pokes[i].addr);
    EXPECT_EQ(a.pokes[i].value, b.pokes[i].value);
  }
}

TEST(GeneratorTest, DifferentSeedsDiffer) {
  const FuzzSpec spec;
  const auto a = generate_program(1, spec);
  const auto b = generate_program(2, spec);
  EXPECT_NE(isa::to_string(a.program), isa::to_string(b.program));
}

TEST(GeneratorTest, GeneratedProgramsHaltWithinHint) {
  const FuzzSpec spec;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const auto fp = generate_program(seed, spec);
    memory::MainMemory mem;
    memory::PageTable pt;
    apply_address_space(fp, mem, pt);
    OracleInterpreter oracle(&fp.program, &mem, &pt);
    EXPECT_EQ(oracle.run(fp.max_instrs_hint), cpu::StopReason::kHalted)
        << "seed " << seed;
  }
}

TEST(GeneratorTest, WeightsSelectScenarioClasses) {
  FuzzSpec spec;
  spec.weights = zero_weights();
  spec.weights.mem_storm = 1.0;  // ...except one
  const auto fp = generate_program(7, spec);
  ASSERT_FALSE(fp.classes.empty());
  for (const auto& c : fp.classes) EXPECT_EQ(c, "mem-storm");
}

TEST(GeneratorTest, FaultingScenariosActuallyFault) {
  FuzzSpec spec;
  spec.weights = zero_weights();
  spec.weights.protected_window = 1.0;
  spec.fault_frac = 1.0;
  std::uint64_t total_faults = 0;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const auto fp = generate_program(seed, spec);
    memory::MainMemory mem;
    memory::PageTable pt;
    apply_address_space(fp, mem, pt);
    OracleInterpreter oracle(&fp.program, &mem, &pt);
    EXPECT_EQ(oracle.run(fp.max_instrs_hint), cpu::StopReason::kHalted);
    total_faults += oracle.faults();
  }
  EXPECT_GT(total_faults, 0u);
}

TEST(FuzzSpecTest, JsonRoundTrip) {
  FuzzSpec spec;
  spec.weights.branch_heavy = 2.5;
  spec.weights.mem_storm = 0.0;
  spec.min_blocks = 4;
  spec.max_blocks = 9;
  spec.loop_iterations = 5;
  spec.data_bytes = 128 * 1024;
  spec.kernel_bytes = 8192;
  spec.fault_frac = 0.5;
  spec.install_fault_handler = false;

  const auto round = FuzzSpec::from_json(spec.to_json());
  EXPECT_EQ(round.weights.branch_heavy, 2.5);
  EXPECT_EQ(round.weights.mem_storm, 0.0);
  EXPECT_EQ(round.min_blocks, 4);
  EXPECT_EQ(round.max_blocks, 9);
  EXPECT_EQ(round.loop_iterations, 5);
  EXPECT_EQ(round.data_bytes, 128u * 1024u);
  EXPECT_EQ(round.kernel_bytes, 8192u);
  EXPECT_EQ(round.fault_frac, 0.5);
  EXPECT_FALSE(round.install_fault_handler);
}

TEST(FuzzSpecTest, RejectsNonsense) {
  EXPECT_THROW(FuzzSpec::from_json("{\"min_blocks\": 0}"),
               std::invalid_argument);
  EXPECT_THROW(
      FuzzSpec::from_json("{\"weights\": {\"branch_heavy\": -1}}"),
      std::invalid_argument);
  FuzzSpec all_zero;
  all_zero.weights = zero_weights();
  EXPECT_THROW(all_zero.validate(), std::invalid_argument);
}

// ---- differential harness -------------------------------------------------

TEST(DifferentialTest, SeedRangePassesAllInvariants) {
  const FuzzSpec spec;
  const DifferentialConfig config;
  const auto report = run_fuzz(1, 8, spec, config, /*threads=*/2);
  for (const auto& failure : report.failures) {
    ADD_FAILURE() << "seed " << failure.seed << ": "
                  << failure.violations.front();
  }
  EXPECT_TRUE(report.ok());
  // All registered policies x presets ran for every seed.
  EXPECT_EQ(report.total_cells, 8u * sim::machine_preset_names().size() *
                                    policy::registered_policy_names().size());
}

TEST(DifferentialTest, ReportIsThreadCountInvariant) {
  const FuzzSpec spec;
  const DifferentialConfig config;
  const auto serial = run_fuzz(1, 6, spec, config, /*threads=*/1);
  const auto parallel = run_fuzz(1, 6, spec, config, /*threads=*/4);
  EXPECT_EQ(serial.failures.size(), parallel.failures.size());
  EXPECT_EQ(serial.total_cells, parallel.total_cells);
  EXPECT_EQ(serial.total_committed, parallel.total_committed);
}

TEST(DifferentialTest, GeneratedProgramsExerciseSpeculation) {
  // The shadow-drain invariant only has teeth if squashes happen; check
  // a real cell misspeculates.
  const auto fp = generate_program(1, FuzzSpec{});
  auto builder = sim::MachineBuilder::from_preset("skylake").policy("WFC");
  for (const auto& region : fp.regions) {
    builder.map_region(region.base, region.bytes, region.perm);
  }
  for (const auto& poke : fp.pokes) builder.poke(poke.addr, poke.value);
  const auto sim = builder.build(fp.program);
  const auto result = sim->run(4'000'000, 4 * fp.max_instrs_hint);
  EXPECT_EQ(result.stop, cpu::StopReason::kHalted);
  EXPECT_GT(result.mispredicts, 0u);
  EXPECT_GT(result.squashed_instrs, 0u);
}

TEST(DifferentialTest, PolicyAndPresetSubsetsAreHonoured) {
  const FuzzSpec spec;
  DifferentialConfig config;
  config.policies = {"WFC"};
  config.presets = {"skylake"};
  const auto verdict = check_seed(3, spec, config);
  EXPECT_TRUE(verdict.ok);
  EXPECT_EQ(verdict.cells, 1u);
}

// ---- mutation testing: the harness must catch a corrupted core ------------

TEST(MutationTest, CorruptedWritebackIsCaughtByOracle) {
  const FuzzSpec spec;
  DifferentialConfig config;
  config.mutation.commit_xor = 0xDEADBEEF;
  const auto verdict = check_seed(1, spec, config);
  ASSERT_FALSE(verdict.ok);
  bool oracle_divergence = false;
  for (const auto& violation : verdict.violations) {
    if (violation.find("diverges from oracle") != std::string::npos) {
      oracle_divergence = true;
    }
  }
  EXPECT_TRUE(oracle_divergence);
}

TEST(MutationTest, SkippedSquashIsCaughtByShadowDrainInvariant) {
  // The classic SafeSpec implementation bug: a squash that forgets to
  // annul its shadow references. Architectural state is untouched — only
  // the drain invariant can see it.
  const FuzzSpec spec;
  DifferentialConfig config;
  config.mutation.skip_squash_release = true;
  config.policies = {"WFC", "WFB"};
  bool caught = false;
  for (std::uint64_t seed = 1; seed <= 5 && !caught; ++seed) {
    const auto verdict = check_seed(seed, spec, config);
    for (const auto& violation : verdict.violations) {
      if (violation.find("shadow structures not empty") !=
          std::string::npos) {
        caught = true;
      }
    }
  }
  EXPECT_TRUE(caught);
}

TEST(MutationTest, CleanCoreStillPassesWithMutationStructArmedOff) {
  const FuzzSpec spec;
  DifferentialConfig config;
  config.mutation = cpu::MutationHooks{};
  const auto verdict = check_seed(1, spec, config);
  EXPECT_TRUE(verdict.ok) << (verdict.violations.empty()
                                  ? ""
                                  : verdict.violations.front());
}

}  // namespace
}  // namespace safespec::fuzz
