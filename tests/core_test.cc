// Core pipeline unit and integration tests: arithmetic correctness,
// memory ordering, branch speculation, fences, faults, and the SafeSpec
// shadow lifecycle as observed end-to-end through the simulator.
#include <gtest/gtest.h>

#include "isa/program.h"
#include "sim/sim_config.h"
#include "sim/simulator.h"

namespace safespec {
namespace {

using isa::AluOp;
using isa::CondOp;
using isa::ProgramBuilder;
using shadow::CommitPolicy;

sim::Simulator make_sim(isa::Program program,
                        CommitPolicy policy = CommitPolicy::kBaseline) {
  sim::Simulator s(sim::skylake_config(policy), std::move(program));
  s.map_text();
  return s;
}

TEST(CoreExec, MoviAndAluCommitArchitecturally) {
  ProgramBuilder b(0x1000);
  b.movi(1, 40).movi(2, 2).alu(AluOp::kAdd, 3, 1, 2).halt();
  auto prog = b.build();
  prog.set_entry(0x1000);
  auto s = make_sim(std::move(prog));
  const auto r = s.run();
  EXPECT_EQ(r.stop, cpu::StopReason::kHalted);
  EXPECT_EQ(s.core().reg(3), 42u);
  EXPECT_EQ(r.committed_instrs, 4u);
}

TEST(CoreExec, AluImmediateForms) {
  ProgramBuilder b(0x1000);
  b.movi(1, 100)
      .alui(AluOp::kSub, 2, 1, 58)    // 42
      .alui(AluOp::kShl, 3, 1, 2)     // 400
      .alui(AluOp::kAnd, 4, 1, 0x6)   // 4
      .alui(AluOp::kXor, 5, 1, 0xFF)  // 155
      .halt();
  auto prog = b.build();
  prog.set_entry(0x1000);
  auto s = make_sim(std::move(prog));
  s.run();
  EXPECT_EQ(s.core().reg(2), 42u);
  EXPECT_EQ(s.core().reg(3), 400u);
  EXPECT_EQ(s.core().reg(4), 4u);
  EXPECT_EQ(s.core().reg(5), 155u);
}

TEST(CoreExec, MulDivLatenciesProduceCorrectValues) {
  ProgramBuilder b(0x1000);
  b.movi(1, 6).movi(2, 7).alu(AluOp::kMul, 3, 1, 2)
      .movi(4, 100).movi(5, 4).alu(AluOp::kDiv, 6, 4, 5)
      .halt();
  auto prog = b.build();
  prog.set_entry(0x1000);
  auto s = make_sim(std::move(prog));
  s.run();
  EXPECT_EQ(s.core().reg(3), 42u);
  EXPECT_EQ(s.core().reg(6), 25u);
}

TEST(CoreMem, StoreThenLoadRoundTrips) {
  constexpr Addr kData = 0x100000;
  ProgramBuilder b(0x1000);
  b.movi(1, kData).movi(2, 0xDEAD).store(2, 1, 0).load(3, 1, 0).halt();
  auto prog = b.build();
  prog.set_entry(0x1000);
  auto s = make_sim(std::move(prog));
  s.map_region(kData, kPageSize);
  const auto r = s.run();
  EXPECT_EQ(r.stop, cpu::StopReason::kHalted);
  EXPECT_EQ(s.core().reg(3), 0xDEADu);   // forwarded or from memory
  EXPECT_EQ(s.peek(kData), 0xDEADu);     // store committed to memory
}

TEST(CoreMem, LoadSeesPreInitializedMemory) {
  constexpr Addr kData = 0x200000;
  ProgramBuilder b(0x1000);
  b.movi(1, kData).load(2, 1, 8).halt();
  auto prog = b.build();
  prog.set_entry(0x1000);
  auto s = make_sim(std::move(prog));
  s.map_region(kData, kPageSize);
  s.poke(kData + 8, 1234);
  s.run();
  EXPECT_EQ(s.core().reg(2), 1234u);
}

TEST(CoreMem, StoreToLoadForwardingBeatsMemoryLatency) {
  // A load that can forward from an in-flight store completes far sooner
  // than a cold cache miss would allow.
  constexpr Addr kData = 0x300000;
  ProgramBuilder b(0x1000);
  b.movi(1, kData).movi(2, 77).store(2, 1, 0).load(3, 1, 0).halt();
  auto prog = b.build();
  prog.set_entry(0x1000);
  auto s = make_sim(std::move(prog));
  s.map_region(kData, kPageSize);
  const auto r = s.run();
  EXPECT_EQ(s.core().reg(3), 77u);
  // Whole program: well under one memory round trip if forwarding worked
  // (translation of the store itself may still walk the page table).
  EXPECT_LT(r.cycles, 1500u);
}

TEST(CoreBranch, NotTakenFallsThrough) {
  ProgramBuilder b(0x1000);
  b.movi(1, 5).movi(2, 10);
  b.branch(CondOp::kGe, 1, 2, "skip");  // 5 >= 10: not taken
  b.movi(3, 111);
  b.label("skip").halt();
  auto prog = b.build();
  prog.set_entry(0x1000);
  auto s = make_sim(std::move(prog));
  s.run();
  EXPECT_EQ(s.core().reg(3), 111u);
}

TEST(CoreBranch, TakenSkipsBody) {
  ProgramBuilder b(0x1000);
  b.movi(1, 50).movi(2, 10);
  b.branch(CondOp::kGe, 1, 2, "skip");  // taken
  b.movi(3, 111);
  b.label("skip").halt();
  auto prog = b.build();
  prog.set_entry(0x1000);
  auto s = make_sim(std::move(prog));
  s.run();
  EXPECT_EQ(s.core().reg(3), 0u);
}

TEST(CoreBranch, LoopExecutesExactTripCount) {
  ProgramBuilder b(0x1000);
  b.movi(1, 0).movi(2, 100);
  b.label("loop");
  b.alui(AluOp::kAdd, 1, 1, 1);
  b.branch(CondOp::kLt, 1, 2, "loop");
  b.halt();
  auto prog = b.build();
  prog.set_entry(0x1000);
  auto s = make_sim(std::move(prog));
  const auto r = s.run();
  EXPECT_EQ(s.core().reg(1), 100u);
  EXPECT_EQ(r.stop, cpu::StopReason::kHalted);
}

TEST(CoreBranch, IndirectBranchReachesRegisterTarget) {
  ProgramBuilder b(0x1000);
  b.movi(1, 0);  // patched below once the label address is known
  b.jump_reg(1);
  b.movi(2, 1);  // should be skipped
  b.label("target").movi(3, 9).halt();
  auto prog = b.build();
  // Fix up r1 with the real target address.
  ProgramBuilder b2(0x1000);
  b2.movi(1, static_cast<std::int64_t>(b.label_addr("target")));
  auto patch = b2.build();
  prog.place(0x1000, *patch.at(0x1000), /*overwrite=*/true);
  prog.set_entry(0x1000);
  auto s = make_sim(std::move(prog));
  s.run();
  EXPECT_EQ(s.core().reg(2), 0u);
  EXPECT_EQ(s.core().reg(3), 9u);
}

TEST(CoreBranch, CallAndReturn) {
  ProgramBuilder b(0x1000);
  b.movi(1, 1);
  b.call("fn");
  b.movi(3, 3);
  b.halt();
  b.label("fn").movi(2, 2).ret();
  auto prog = b.build();
  prog.set_entry(0x1000);
  auto s = make_sim(std::move(prog));
  const auto r = s.run();
  EXPECT_EQ(r.stop, cpu::StopReason::kHalted);
  EXPECT_EQ(s.core().reg(1), 1u);
  EXPECT_EQ(s.core().reg(2), 2u);
  EXPECT_EQ(s.core().reg(3), 3u);
}

TEST(CoreBranch, MispredictsAreSquashedWithoutArchitecturalEffect) {
  // Alternating branch direction defeats the predictor initially; the
  // wrong-path movi must never commit.
  ProgramBuilder b(0x1000);
  b.movi(1, 0).movi(2, 64).movi(5, 0);
  b.label("loop");
  b.alui(AluOp::kAnd, 3, 1, 1);  // r3 = parity
  b.branch(CondOp::kEq, 3, kZeroReg, "even");
  b.alui(AluOp::kAdd, 5, 5, 1);  // odd path: count odds
  b.label("even");
  b.alui(AluOp::kAdd, 1, 1, 1);
  b.branch(CondOp::kLt, 1, 2, "loop");
  b.halt();
  auto prog = b.build();
  prog.set_entry(0x1000);
  auto s = make_sim(std::move(prog));
  const auto r = s.run();
  EXPECT_EQ(s.core().reg(1), 64u);
  EXPECT_EQ(s.core().reg(5), 32u);  // exactly the odd iterations
  EXPECT_GT(r.mispredicts, 0u);
  EXPECT_GT(r.squashed_instrs, 0u);
}

TEST(CoreFence, RdCycleWithFenceMeasuresLatency) {
  // Timing a cached vs uncached load with rdcycle+fence must show the
  // memory-latency difference — this is the attacker's stopwatch.
  constexpr Addr kData = 0x400000;
  ProgramBuilder b(0x1000);
  b.movi(1, kData);
  b.load(2, 1, 0);  // warm the line
  b.fence();
  b.rdcycle(10);
  b.load(3, 1, 0);  // hot load
  b.fence();
  b.rdcycle(11);
  b.flush(1, 0);
  b.fence();
  b.rdcycle(12);
  b.load(4, 1, 0);  // cold load
  b.fence();
  b.rdcycle(13);
  b.halt();
  auto prog = b.build();
  prog.set_entry(0x1000);
  auto s = make_sim(std::move(prog));
  s.map_region(kData, kPageSize);
  s.run();
  const auto hot = s.core().reg(11) - s.core().reg(10);
  const auto cold = s.core().reg(13) - s.core().reg(12);
  EXPECT_GT(cold, hot + 100) << "hot=" << hot << " cold=" << cold;
}

TEST(CoreFault, KernelLoadFaultsAtCommitWithoutHandler) {
  constexpr Addr kKernel = 0x800000;
  ProgramBuilder b(0x1000);
  b.movi(1, kKernel).load(2, 1, 0).movi(3, 1).halt();
  auto prog = b.build();
  prog.set_entry(0x1000);
  auto s = make_sim(std::move(prog));
  s.map_region(kKernel, kPageSize, memory::PagePerm::kKernel);
  s.poke(kKernel, 0x5EC8E7);
  const auto r = s.run();
  EXPECT_EQ(r.stop, cpu::StopReason::kFaultNoHandler);
  // The faulting load never commits its register write.
  EXPECT_EQ(s.core().reg(2), 0u);
  // Instructions after the fault are squashed.
  EXPECT_EQ(s.core().reg(3), 0u);
  EXPECT_EQ(r.faults, 1u);
}

TEST(CoreFault, FaultHandlerResumesExecution) {
  constexpr Addr kKernel = 0x800000;
  ProgramBuilder b(0x1000);
  b.movi(1, kKernel).load(2, 1, 0).movi(3, 1).halt();
  b.label("handler").movi(4, 0xAB).halt();
  auto prog = b.build();
  prog.set_fault_handler(b.label_addr("handler"));
  prog.set_entry(0x1000);
  auto s = make_sim(std::move(prog));
  s.map_region(kKernel, kPageSize, memory::PagePerm::kKernel);
  const auto r = s.run();
  EXPECT_EQ(r.stop, cpu::StopReason::kHalted);
  EXPECT_EQ(s.core().reg(4), 0xABu);
  EXPECT_EQ(s.core().reg(2), 0u);
  EXPECT_EQ(s.core().reg(3), 0u);
}

TEST(CoreFault, UnmappedLoadFaults) {
  ProgramBuilder b(0x1000);
  b.movi(1, 0x7F000000).load(2, 1, 0).halt();
  auto prog = b.build();
  prog.set_entry(0x1000);
  auto s = make_sim(std::move(prog));
  const auto r = s.run();
  EXPECT_EQ(r.stop, cpu::StopReason::kFaultNoHandler);
}

TEST(CoreFault, KernelModeMayReadKernelPages) {
  constexpr Addr kKernel = 0x800000;
  ProgramBuilder b(0x1000);
  b.movi(1, kKernel).load(2, 1, 0).halt();
  auto prog = b.build();
  prog.set_entry(0x1000);
  auto s = make_sim(std::move(prog));
  s.map_region(kKernel, kPageSize, memory::PagePerm::kKernel);
  s.poke(kKernel, 99);
  s.core().set_priv_level(memory::PrivLevel::kKernel);
  const auto r = s.run();
  EXPECT_EQ(r.stop, cpu::StopReason::kHalted);
  EXPECT_EQ(s.core().reg(2), 99u);
}

// ---- SafeSpec end-to-end behaviour ---------------------------------------

class PolicyTest : public ::testing::TestWithParam<CommitPolicy> {};

TEST_P(PolicyTest, ProgramSemanticsIdenticalUnderAllPolicies) {
  // Functional results must not depend on the protection mode: SafeSpec
  // changes where speculative state lives, never architectural values.
  constexpr Addr kData = 0x500000;
  // Sum 64 sequential words through a loop with a data-dependent address.
  ProgramBuilder p(0x1000);
  p.movi(1, kData).movi(2, 0).movi(3, 64).movi(6, 0);
  p.label("loop");
  p.alui(AluOp::kMul, 4, 2, 8);
  p.alu(AluOp::kAdd, 4, 4, 1);
  p.load(5, 4, 0);
  p.alu(AluOp::kAdd, 6, 6, 5);
  p.alui(AluOp::kAdd, 2, 2, 1);
  p.branch(CondOp::kLt, 2, 3, "loop");
  p.halt();
  auto prog = p.build();
  prog.set_entry(0x1000);
  auto s = make_sim(std::move(prog), GetParam());
  s.map_region(kData, 2 * kPageSize);
  std::uint64_t expected = 0;
  for (int i = 0; i < 64; ++i) {
    s.poke(kData + 8ull * i, static_cast<std::uint64_t>(i * 3));
    expected += static_cast<std::uint64_t>(i * 3);
  }
  const auto r = s.run();
  EXPECT_EQ(r.stop, cpu::StopReason::kHalted);
  EXPECT_EQ(s.core().reg(6), expected);
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, PolicyTest,
                         ::testing::Values(CommitPolicy::kBaseline,
                                           CommitPolicy::kWFB,
                                           CommitPolicy::kWFC),
                         [](const auto& info) {
                           return shadow::to_string(info.param);
                         });

TEST(SafeSpecLifecycle, CommittedLoadPromotesLineToCaches) {
  constexpr Addr kData = 0x600000;
  ProgramBuilder b(0x1000);
  b.movi(1, kData).load(2, 1, 0).fence().halt();
  auto prog = b.build();
  prog.set_entry(0x1000);
  auto s = make_sim(std::move(prog), CommitPolicy::kWFC);
  s.map_region(kData, kPageSize);
  s.run();
  // After commit the line must be architecturally resident.
  EXPECT_TRUE(s.core().hierarchy().resident_l1(line_of(kData),
                                               memory::Side::kData));
  EXPECT_GT(s.core().shadow_dcache().stats().committed.value(), 0u);
  // And the shadow structure must be empty again.
  EXPECT_EQ(s.core().shadow_dcache().live_count(), 0);
}

TEST(SafeSpecLifecycle, SquashedSpeculativeLoadLeavesNoTrace) {
  // A load behind a mispredicted branch must leave the d-cache (and the
  // shadow) untouched after squash — the core SafeSpec property.
  constexpr Addr kData = 0x610000;
  constexpr Addr kWrongPath = 0x620000;
  ProgramBuilder b(0x1000);
  b.movi(1, kData).movi(7, kWrongPath);
  b.movi(2, 0).movi(3, 8);
  // Train the loop branch taken 8 times, then the final not-taken
  // iteration mispredicts and speculatively executes the wrong-path load.
  b.label("loop");
  b.alui(AluOp::kAdd, 2, 2, 1);
  b.flush(1, 0);            // keep the bound check slow? (not needed)
  b.branch(CondOp::kLt, 2, 3, "loop");
  b.load(9, 7, 0);          // fetched speculatively during loop exits
  b.halt();
  auto prog = b.build();
  prog.set_entry(0x1000);
  auto s = make_sim(std::move(prog), CommitPolicy::kWFC);
  s.map_region(kData, kPageSize);
  s.map_region(kWrongPath, kPageSize);
  s.run();
  // The wrong-path load committed eventually (it is on the fall-through
  // path), so this test checks the shadow drained rather than residency.
  EXPECT_EQ(s.core().shadow_dcache().live_count(), 0);
  EXPECT_EQ(s.core().shadow_icache().live_count(), 0);
  EXPECT_EQ(s.core().shadow_dtlb().live_count(), 0);
  EXPECT_EQ(s.core().shadow_itlb().live_count(), 0);
}

TEST(SafeSpecLifecycle, BaselineFillsCachesSpeculatively) {
  constexpr Addr kData = 0x630000;
  ProgramBuilder b(0x1000);
  b.movi(1, kData).load(2, 1, 0).fence().halt();
  auto prog = b.build();
  prog.set_entry(0x1000);
  auto s = make_sim(std::move(prog), CommitPolicy::kBaseline);
  s.map_region(kData, kPageSize);
  s.run();
  EXPECT_TRUE(s.core().hierarchy().resident_l1(line_of(kData),
                                               memory::Side::kData));
  // Baseline never touches the shadow structures.
  EXPECT_EQ(s.core().shadow_dcache().stats().inserts.value(), 0u);
}

}  // namespace
}  // namespace safespec
