// Tests for the CACTI-lite analytical model: scaling-law properties
// (monotonicity in size/ports/technology, CAM > RAM costs) and the
// Table V shape (Secure sizing costs several times WFC sizing; both a
// modest fraction of the baseline hierarchy).
#include <gtest/gtest.h>

#include "model/cacti_lite.h"

namespace safespec::model {
namespace {

SramParams array(std::uint64_t entries, bool cam = false) {
  SramParams p;
  p.entries = entries;
  p.bits_per_entry = 512;
  p.tag_bits = 40;
  p.fully_associative = cam;
  return p;
}

TEST(CactiLite, AreaMonotoneInEntries) {
  EXPECT_LT(estimate(array(64)).area_mm2, estimate(array(128)).area_mm2);
  EXPECT_LT(estimate(array(128)).area_mm2, estimate(array(512)).area_mm2);
}

TEST(CactiLite, CamCostsMoreThanRamAtSameGeometry) {
  const auto ram = estimate(array(128, false));
  const auto cam = estimate(array(128, true));
  EXPECT_GT(cam.area_mm2, ram.area_mm2);
  EXPECT_GT(cam.dynamic_mw, ram.dynamic_mw);
  EXPECT_GT(cam.access_ns, ram.access_ns);
}

TEST(CactiLite, PortsIncreaseAreaAndPower) {
  auto base = array(128);
  auto ported = array(128);
  ported.read_ports = 2;
  EXPECT_GT(estimate(ported).area_mm2, estimate(base).area_mm2);
  EXPECT_GT(estimate(ported).dynamic_mw, estimate(base).dynamic_mw);
}

TEST(CactiLite, SmallerTechnologyShrinksArea) {
  auto at40 = array(128);
  auto at22 = array(128);
  at22.tech_nm = 22;
  EXPECT_LT(estimate(at22).area_mm2, estimate(at40).area_mm2);
}

TEST(CactiLite, LeakageScalesWithBits) {
  const auto small = estimate(array(64));
  const auto big = estimate(array(1024));
  EXPECT_NEAR(big.leakage_mw / small.leakage_mw, 16.0, 0.5);
}

TEST(TableV, SecureCostsSeveralTimesWfc) {
  const ShadowSizing secure{72, 224, 72, 224};
  const ShadowSizing wfc{16, 25, 10, 25};  // 99.99%-style sizing
  const auto s = shadow_overhead(secure);
  const auto w = shadow_overhead(wfc);
  EXPECT_GT(s.total_area_mm2, 2.5 * w.total_area_mm2);
  EXPECT_GT(s.total_power_mw, 2.5 * w.total_power_mw);
}

TEST(TableV, WfcOverheadIsSmallFractionOfHierarchy) {
  const ShadowSizing wfc{16, 25, 10, 25};
  const auto report = shadow_overhead(wfc);
  EXPECT_LT(report.area_percent, 10.0);
  EXPECT_LT(report.power_percent, 15.0);
  EXPECT_GT(report.area_percent, 0.0);
}

TEST(TableV, ReportContainsAllFourStructures) {
  const auto report = shadow_overhead(ShadowSizing{});
  ASSERT_EQ(report.structures.size(), 4u);
  double sum_area = 0;
  for (const auto& s : report.structures) sum_area += s.estimate.area_mm2;
  EXPECT_NEAR(sum_area, report.total_area_mm2, 1e-9);
}

TEST(TableV, BaselineHierarchyDominatedByL3) {
  // The 2 MB L3 has 32x the bits of L2; total must exceed L3 alone being
  // most of it — sanity that the denominator is sensible.
  const auto base = baseline_hierarchy();
  SramParams l3;
  l3.entries = 2 * 1024 * 1024 / 64;
  l3.bits_per_entry = 512;
  l3.tag_bits = 40;
  const auto l3e = estimate(l3);
  EXPECT_GT(l3e.area_mm2 / base.area_mm2, 0.8);
}

}  // namespace
}  // namespace safespec::model
