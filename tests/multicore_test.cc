// Multi-core determinism tests: a cores=2 run is bit-identical when
// repeated (cycles, per-core stats, architectural state, cross-core
// eviction counts), the deterministic interleaving and shared-level
// contention never reach architecture (every core at cores=2 commits the
// same state as the cores=1 run of the same workload), and cores=1 runs
// stay deterministic across every policy x preset after the
// shared-hierarchy refactor (bit-identity against the seed is enforced
// separately by the golden CSVs).
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "cpu/core.h"
#include "fuzz/differential.h"
#include "fuzz/fuzz_spec.h"
#include "safespec/policy.h"
#include "sim/machine.h"
#include "sim/simulator.h"
#include "workloads/runner.h"
#include "workloads/workload.h"

namespace safespec {
namespace {

/// Everything a run observably produces, for bit-identity comparisons.
struct RunFingerprint {
  cpu::StopReason stop = cpu::StopReason::kHalted;
  Cycle cycles = 0;
  std::uint64_t committed_all_cores = 0;
  std::uint64_t cross_core_evictions = 0;
  std::vector<std::uint64_t> committed;  // per core
  std::vector<std::uint64_t> faults;     // per core
  std::vector<std::vector<std::uint64_t>> regs;  // per core, r0..r31
};

RunFingerprint fingerprint(const sim::Simulator& sim,
                           const sim::SimResult& result) {
  RunFingerprint fp;
  fp.stop = result.stop;
  fp.cycles = result.cycles;
  fp.committed_all_cores = result.committed_all_cores;
  fp.cross_core_evictions = result.cross_core_evictions;
  for (int c = 0; c < sim.num_cores(); ++c) {
    fp.committed.push_back(sim.core(c).stats().committed_instrs);
    fp.faults.push_back(sim.core(c).stats().faults);
    std::vector<std::uint64_t> r;
    for (int i = 0; i < kNumArchRegs; ++i) {
      r.push_back(sim.core(c).reg(static_cast<RegIndex>(i)));
    }
    fp.regs.push_back(std::move(r));
  }
  return fp;
}

void expect_identical(const RunFingerprint& a, const RunFingerprint& b,
                      const std::string& what) {
  EXPECT_EQ(a.stop, b.stop) << what;
  EXPECT_EQ(a.cycles, b.cycles) << what;
  EXPECT_EQ(a.committed_all_cores, b.committed_all_cores) << what;
  EXPECT_EQ(a.cross_core_evictions, b.cross_core_evictions) << what;
  EXPECT_EQ(a.committed, b.committed) << what;
  EXPECT_EQ(a.faults, b.faults) << what;
  EXPECT_EQ(a.regs, b.regs) << what;
}

RunFingerprint run_once(const std::string& workload,
                        const std::string& policy, const std::string& preset,
                        int cores, std::uint64_t instrs) {
  const auto profile = workloads::profile_by_name(workload);
  cpu::CoreConfig config = sim::machine_preset(preset).core;
  config.policy = policy;
  config.cores = cores;
  auto sim = workloads::make_workload_sim(profile, config, instrs);
  const auto result = sim->run(instrs * 40 + 1'000'000, instrs);
  return fingerprint(*sim, result);
}

// ---- cores=2 determinism ---------------------------------------------------

TEST(MultiCore, CoresTwoRunTwiceIsBitIdentical) {
  for (const char* policy : {"baseline", "WFC"}) {
    const auto a = run_once("mcf", policy, "skylake", 2, 20'000);
    const auto b = run_once("mcf", policy, "skylake", 2, 20'000);
    ASSERT_EQ(a.committed.size(), 2u) << policy;
    expect_identical(a, b, std::string("cores=2 repeat, ") + policy);
  }
}

TEST(MultiCore, SharedContentionNeverReachesArchitecture) {
  // Both cores run the same halting program on private memory: whatever
  // the interleaving and shared-L2/L3 contention do to timing, every core
  // must independently reproduce the single-core oracle state. The
  // differential checker asserts exactly that per core at cores=2.
  // (Synthetic SPEC workloads can't carry this check — they are
  // budget-bounded infinite loops, so where they stop is timing.)
  const fuzz::FuzzSpec spec;
  fuzz::DifferentialConfig config;
  config.cores = 2;
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    const auto verdict = fuzz::check_seed(seed, spec, config);
    EXPECT_TRUE(verdict.ok)
        << "seed " << seed << ": "
        << (verdict.violations.empty() ? "" : verdict.violations.front());
  }
}

TEST(MultiCore, SharpFamilySingleCoreBitIdenticalToBaseline) {
  // At cores=1 every line is owner 0, so SHARP's protected choice and
  // detect-only's telemetry reduce to the baseline victim stream —
  // including the random draw. The whole fingerprint must match.
  const auto base = run_once("gcc", "baseline", "skylake", 1, 20'000);
  for (const char* policy : {"SHARP", "detect-only"}) {
    const auto p = run_once("gcc", policy, "skylake", 1, 20'000);
    expect_identical(base, p, std::string("cores=1 vs baseline, ") + policy);
  }
}

TEST(MultiCore, DetectOnlyCoresTwoTimingIdenticalToBaseline) {
  // detect-only observes cross-owner evictions without altering any
  // victim choice, so even the cores=2 run (where owners genuinely
  // differ) is cycle-identical to the baseline.
  const auto base = run_once("mcf", "baseline", "skylake", 2, 20'000);
  const auto det = run_once("mcf", "detect-only", "skylake", 2, 20'000);
  expect_identical(base, det, "cores=2 baseline vs detect-only");
}

TEST(MultiCore, SharpCoresTwoRunTwiceIsBitIdentical) {
  const auto a = run_once("mcf", "SHARP", "skylake", 2, 20'000);
  const auto b = run_once("mcf", "SHARP", "skylake", 2, 20'000);
  ASSERT_EQ(a.committed.size(), 2u);
  expect_identical(a, b, "cores=2 repeat, SHARP");
}

// ---- cores=1 stability across the whole configuration space ----------------

TEST(MultiCore, SingleCoreStaysDeterministicAcrossPoliciesAndPresets) {
  for (const auto& preset : sim::machine_preset_names()) {
    for (const auto& policy : policy::registered_policy_names()) {
      const std::string what = policy + "/" + preset;
      const auto a = run_once("xz", policy, preset, 1, 5'000);
      const auto b = run_once("xz", policy, preset, 1, 5'000);
      ASSERT_EQ(a.committed.size(), 1u) << what;
      EXPECT_EQ(a.cross_core_evictions, 0u) << what;
      expect_identical(a, b, what);
    }
  }
}

}  // namespace
}  // namespace safespec
