# Golden-file regression check: rerun a bench binary with pinned flags
# and byte-compare its CSV output against the checked-in reference.
#
# Invoked by ctest (see the golden tests in the top-level CMakeLists):
#   cmake -DBINARY=... -DARGS="--instrs=2000" -DGOLDEN=... -DOUT=... \
#         -P golden_diff.cmake
#
# Regenerating a golden after an intentional behaviour change:
#   ./build/<bench> --instrs=2000 --csv=tests/golden/<bench>.csv
if(NOT BINARY OR NOT GOLDEN OR NOT OUT)
  message(FATAL_ERROR "golden_diff.cmake needs -DBINARY, -DGOLDEN, -DOUT")
endif()

separate_arguments(bench_args NATIVE_COMMAND "${ARGS}")
execute_process(
  COMMAND ${BINARY} ${bench_args} --csv=${OUT}
  RESULT_VARIABLE run_rc
  OUTPUT_QUIET
  ERROR_VARIABLE run_err
)
if(NOT run_rc EQUAL 0)
  message(FATAL_ERROR "${BINARY} ${ARGS} failed (${run_rc}): ${run_err}")
endif()

execute_process(
  COMMAND ${CMAKE_COMMAND} -E compare_files ${GOLDEN} ${OUT}
  RESULT_VARIABLE diff_rc
)
if(NOT diff_rc EQUAL 0)
  message(FATAL_ERROR
          "CSV output differs from golden ${GOLDEN}.\n"
          "If the change is intentional, regenerate with:\n"
          "  ${BINARY} ${ARGS} --csv=${GOLDEN}")
endif()
