// Unit and property tests for the common utilities: deterministic RNG,
// counters, histograms/percentiles, and the geometric mean.
#include <gtest/gtest.h>

#include "common/addr_map.h"
#include "common/paged_addr_map.h"
#include "common/rng.h"
#include "common/stats.h"

namespace safespec {
namespace {

// ---- Rng ----------------------------------------------------------------------

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += a.next() == b.next() ? 1 : 0;
  EXPECT_LT(equal, 5);
}

TEST(RngTest, BelowRespectsBound) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.below(17), 17u);
}

TEST(RngTest, BelowOneAlwaysZero) {
  Rng rng(11);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.below(1), 0u);
}

TEST(RngTest, BelowIsUnbiased) {
  // Lemire rejection: every residue equally likely. The old modulo
  // reduction skewed small values; with bound 3 over 30000 draws each
  // bucket must sit near 10000 (±5 sigma ≈ ±410).
  Rng rng(12);
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < 30000; ++i) counts[rng.below(3)]++;
  for (int c : counts) EXPECT_NEAR(c, 10000, 450);
}

TEST(RngTest, BelowHandlesHugeBounds) {
  // Bounds just above 2^63 are where modulo bias was worst (a factor-2
  // skew); rejection must still respect the bound and terminate.
  Rng rng(13);
  const std::uint64_t bound = (1ULL << 63) + 12345;
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.below(bound), bound);
}

TEST(RngTest, RangeInclusive) {
  Rng rng(8);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.range(3, 6);
    EXPECT_GE(v, 3u);
    EXPECT_LE(v, 6u);
    saw_lo |= v == 3;
    saw_hi |= v == 6;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(9);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(RngTest, ChanceExtremes) {
  Rng rng(10);
  EXPECT_FALSE(rng.chance(0.0));
  EXPECT_TRUE(rng.chance(1.0));
}

TEST(RngTest, ChanceApproximatesProbability) {
  Rng rng(11);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.chance(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
}

TEST(RngTest, ReseedRestartsSequence) {
  Rng rng(5);
  const auto first = rng.next();
  rng.next();
  rng.reseed(5);
  EXPECT_EQ(rng.next(), first);
}

// ---- Counter / HitMiss ----------------------------------------------------------

TEST(CounterTest, AddAndReset) {
  Counter c;
  c.add();
  c.add(4);
  EXPECT_EQ(c.value(), 5u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(HitMissTest, Rates) {
  HitMiss hm;
  hm.hits.add(3);
  hm.misses.add(1);
  EXPECT_DOUBLE_EQ(hm.hit_rate(), 0.75);
  EXPECT_DOUBLE_EQ(hm.miss_rate(), 0.25);
  EXPECT_EQ(hm.accesses(), 4u);
}

TEST(HitMissTest, EmptyIsZeroNotNan) {
  HitMiss hm;
  EXPECT_DOUBLE_EQ(hm.hit_rate(), 0.0);
  EXPECT_DOUBLE_EQ(hm.miss_rate(), 0.0);
}

// ---- Histogram -------------------------------------------------------------------

TEST(HistogramTest, BasicMoments) {
  Histogram h;
  for (std::uint64_t v : {1, 2, 3, 4}) h.record(v);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_EQ(h.max(), 4u);
  EXPECT_DOUBLE_EQ(h.mean(), 2.5);
}

TEST(HistogramTest, PercentileEdges) {
  Histogram h;
  for (int i = 0; i < 99; ++i) h.record(1);
  h.record(50);
  EXPECT_EQ(h.percentile(0.5), 1u);
  EXPECT_EQ(h.percentile(0.99), 1u);
  EXPECT_EQ(h.percentile(1.0), 50u);
}

TEST(HistogramTest, EmptyPercentileIsZero) {
  Histogram h;
  EXPECT_EQ(h.percentile(0.9999), 0u);
}

TEST(HistogramTest, P9999ReachesIntoTheTail) {
  Histogram h;
  // 9998 zeros + 2 sevens: zero covers only 99.98% of samples, so the
  // 99.99th percentile must report the tail value.
  for (int i = 0; i < 9998; ++i) h.record(0);
  h.record(7);
  h.record(7);
  EXPECT_EQ(h.percentile(0.9999), 7u);
  // With 9999 zeros + 1 seven, zero covers exactly 99.99%.
  Histogram h2;
  for (int i = 0; i < 9999; ++i) h2.record(0);
  h2.record(7);
  EXPECT_EQ(h2.percentile(0.9999), 0u);
}

TEST(HistogramTest, ResetClears) {
  Histogram h;
  h.record(3);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.max(), 0u);
}

TEST(HistogramTest, ResetDropsPendingRun) {
  Histogram h;
  h.record_run(5);
  h.record_run(5);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  h.record_run(1);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.max(), 1u);
}

TEST(HistogramProperty, RecordRunMatchesRecord) {
  // record_run is the occupancy-sampling fast path; any interleaving of
  // record/record_run must produce statistics identical to plain record.
  Histogram batched, plain;
  Rng rng(2024);
  std::uint64_t value = 0;
  for (int i = 0; i < 20000; ++i) {
    // Mostly repeat the previous sample (realistic occupancy runs),
    // sometimes jump, sometimes go through the unbatched entry point.
    if (rng.below(8) == 0) value = rng.below(64);
    if (rng.below(50) == 0) {
      batched.record(value);
    } else {
      batched.record_run(value);
    }
    plain.record(value);
    if (i % 1000 == 0) {
      // Mid-stream reads must flush the pending run, not lose it.
      EXPECT_EQ(batched.count(), plain.count());
    }
  }
  EXPECT_EQ(batched.count(), plain.count());
  EXPECT_EQ(batched.max(), plain.max());
  EXPECT_DOUBLE_EQ(batched.mean(), plain.mean());
  for (double f : {0.1, 0.5, 0.9, 0.99, 0.9999, 1.0}) {
    EXPECT_EQ(batched.percentile(f), plain.percentile(f)) << "fraction " << f;
  }
}

TEST(HistogramTest, MergeFlushesPendingRuns) {
  Histogram a, b;
  a.record_run(2);
  a.record_run(2);
  b.record_run(9);
  a.merge(b);
  EXPECT_EQ(a.count(), 3u);
  EXPECT_EQ(a.max(), 9u);
  EXPECT_DOUBLE_EQ(a.mean(), 13.0 / 3.0);
}

TEST(HistogramProperty, PercentileMonotoneInFraction) {
  Histogram h;
  Rng rng(99);
  for (int i = 0; i < 5000; ++i) h.record(rng.below(100));
  std::uint64_t prev = 0;
  for (double f : {0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.9999, 1.0}) {
    const auto p = h.percentile(f);
    EXPECT_GE(p, prev) << "fraction " << f;
    prev = p;
  }
}

// ---- geometric_mean ---------------------------------------------------------------

TEST(GeoMeanTest, KnownValue) {
  EXPECT_NEAR(geometric_mean({2.0, 8.0}), 4.0, 1e-12);
}

TEST(GeoMeanTest, EmptyIsZero) { EXPECT_EQ(geometric_mean({}), 0.0); }

TEST(GeoMeanTest, InvariantUnderPermutation) {
  EXPECT_NEAR(geometric_mean({1.0, 2.0, 3.0}),
              geometric_mean({3.0, 1.0, 2.0}), 1e-12);
}

TEST(GeoMeanTest, BetweenMinAndMax) {
  Rng rng(3);
  std::vector<double> vs;
  for (int i = 0; i < 50; ++i) vs.push_back(0.5 + rng.uniform());
  const double g = geometric_mean(vs);
  EXPECT_GE(g, *std::min_element(vs.begin(), vs.end()));
  EXPECT_LE(g, *std::max_element(vs.begin(), vs.end()));
}

TEST(PagedAddrMapTest, InsertLookupDense) {
  PagedAddrMap<std::uint64_t> m;
  for (Addr k = 0; k < 10000; ++k) m[k] = k * 3;
  EXPECT_EQ(m.size(), 10000u);
  for (Addr k = 0; k < 10000; ++k) {
    const std::uint64_t* v = m.find(k);
    ASSERT_NE(v, nullptr) << k;
    EXPECT_EQ(*v, k * 3);
  }
  EXPECT_EQ(m.find(10000), nullptr);
  EXPECT_FALSE(m.contains(1u << 30));
}

TEST(PagedAddrMapTest, HugeKeysFallBackToOverflow) {
  // Keys past the directory's reach must round-trip through the hash
  // overflow, and coexist with direct-range keys.
  PagedAddrMap<std::uint64_t> m;
  const Addr huge = Addr{1} << 45;
  m[huge] = 42;
  m[huge + 1] = 43;
  m[7] = 1;
  EXPECT_EQ(m.size(), 3u);
  ASSERT_NE(m.find(huge), nullptr);
  EXPECT_EQ(*m.find(huge), 42u);
  EXPECT_EQ(*m.find(huge + 1), 43u);
  EXPECT_EQ(m.find(huge + 2), nullptr);
  EXPECT_EQ(*m.find(7), 1u);
}

TEST(PagedAddrMapProperty, MatchesAddrMapOnRandomStreams) {
  // Differential check against the flat hash map across a mix of dense,
  // page-straddling, and overflow-range keys.
  Rng rng(2026);
  PagedAddrMap<std::uint64_t> paged;
  AddrMap<std::uint64_t> reference;
  for (int i = 0; i < 20000; ++i) {
    Addr key;
    switch (rng.below(3)) {
      case 0: key = rng.below(1 << 14); break;            // dense
      case 1: key = rng.below(1u << 31); break;           // sparse direct
      default: key = (Addr{1} << 40) + rng.below(1000); break;  // overflow
    }
    const std::uint64_t value = rng.next();
    paged[key] = value;
    reference[key] = value;
  }
  EXPECT_EQ(paged.size(), reference.size());
  reference.for_each([&paged](Addr k, std::uint64_t v) {
    const std::uint64_t* got = paged.find(k);
    ASSERT_NE(got, nullptr) << k;
    EXPECT_EQ(*got, v) << k;
  });
  std::uint64_t seen = 0;
  paged.for_each([&](Addr k, std::uint64_t v) {
    ++seen;
    const std::uint64_t* ref = reference.find(k);
    ASSERT_NE(ref, nullptr) << k;
    EXPECT_EQ(*ref, v) << k;
  });
  EXPECT_EQ(seen, reference.size());
}

TEST(PagedAddrMapTest, DeepCopyIsIndependent) {
  PagedAddrMap<int> a;
  a[5] = 50;
  a[Addr{1} << 50] = 51;
  PagedAddrMap<int> b = a;
  b[5] = 99;
  b[6] = 60;
  EXPECT_EQ(*a.find(5), 50);
  EXPECT_EQ(a.find(6), nullptr);
  EXPECT_EQ(*b.find(5), 99);
  EXPECT_EQ(*b.find(Addr{1} << 50), 51);
}

TEST(PagedAddrMapTest, ClearDropsEverything) {
  PagedAddrMap<int> m;
  m[1] = 1;
  m[Addr{1} << 40] = 2;
  EXPECT_EQ(m.size(), 2u);
  m.clear();
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.find(1), nullptr);
  EXPECT_EQ(m.find(Addr{1} << 40), nullptr);
}

}  // namespace
}  // namespace safespec
