// Tests for the campaign layer: manifest round-trip and validation, the
// resume protocol (kill modeled as a unit cap, torn-tail truncation,
// header mismatch refusal), the two byte-identity guarantees (resumed ==
// uninterrupted, S-shard == 1-shard), deduplicated failure triage, and
// the perf-trend report. A real SIGKILL variant of the resume test runs
// as a ctest script (tests/campaign/kill_resume.cmake).
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "campaign/campaign.h"
#include "campaign/perf_artifacts.h"
#include "campaign/report.h"
#include "campaign/triage.h"

namespace safespec::campaign {
namespace {

namespace fs = std::filesystem;

/// Fresh scratch directory per test, under the ctest working directory.
std::string scratch_dir(const std::string& name) {
  const fs::path dir = fs::path("campaign_test_work") / name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir.string();
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void write_file(const std::string& path, const std::string& text) {
  std::ofstream out(path, std::ios::binary);
  out << text;
}

void append_raw(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::app);
  out << bytes;
}

/// A cheap fuzz campaign: one policy x one preset per seed.
Manifest fuzz_manifest(const std::string& name, std::uint64_t count,
                       int shards, const std::string& mutate = "") {
  Manifest m;
  m.name = name;
  m.version = 1;
  m.kind = "fuzz";
  m.shards = shards;
  m.fuzz.first_seed = 1;
  m.fuzz.count = count;
  m.fuzz.policies = {"baseline"};
  m.fuzz.presets = {"skylake"};
  m.fuzz.mutate = mutate;
  return m;
}

Manifest grid_manifest(const std::string& name, int shards) {
  Manifest m;
  m.name = name;
  m.version = 1;
  m.kind = "grid";
  m.shards = shards;
  m.grid.workloads = {"mcf", "exchange2"};
  m.grid.policies = {"baseline", "WFC"};
  m.grid.presets = {"skylake"};
  m.grid.instrs = 2'000;
  return m;
}

TEST(Manifest, RoundTripsThroughJson) {
  Manifest m = fuzz_manifest("round-trip", 10, 3);
  m.fuzz.spec = "spec.json";
  m.fuzz.cores = 2;
  const Manifest parsed = Manifest::from_json(m.to_json());
  EXPECT_EQ(parsed.name, m.name);
  EXPECT_EQ(parsed.version, m.version);
  EXPECT_EQ(parsed.kind, m.kind);
  EXPECT_EQ(parsed.shards, m.shards);
  EXPECT_EQ(parsed.fuzz.first_seed, m.fuzz.first_seed);
  EXPECT_EQ(parsed.fuzz.count, m.fuzz.count);
  EXPECT_EQ(parsed.fuzz.spec, m.fuzz.spec);
  EXPECT_EQ(parsed.fuzz.policies, m.fuzz.policies);
  EXPECT_EQ(parsed.fuzz.presets, m.fuzz.presets);
  EXPECT_EQ(parsed.fuzz.cores, m.fuzz.cores);
  EXPECT_EQ(parsed.fingerprint(), m.fingerprint());

  const Manifest g = grid_manifest("grid-trip", 2);
  EXPECT_EQ(Manifest::from_json(g.to_json()).fingerprint(), g.fingerprint());
  EXPECT_EQ(Manifest::from_json(g.to_json()).grid.workloads,
            g.grid.workloads);
}

TEST(Manifest, FingerprintTracksEveryField) {
  const Manifest m = fuzz_manifest("fingerprint", 10, 1);
  Manifest changed = m;
  changed.version = 2;
  EXPECT_NE(changed.fingerprint(), m.fingerprint());
  changed = m;
  changed.fuzz.count = 11;
  EXPECT_NE(changed.fingerprint(), m.fingerprint());
  changed = m;
  changed.fuzz.mutate = "commit-xor";
  EXPECT_NE(changed.fingerprint(), m.fingerprint());
}

TEST(Manifest, ValidateRejectsNonsense) {
  EXPECT_THROW(fuzz_manifest("", 10, 1).validate(), std::invalid_argument);
  EXPECT_THROW(fuzz_manifest("bad/name", 10, 1).validate(),
               std::invalid_argument);
  EXPECT_THROW(fuzz_manifest("ok", 0, 1).validate(), std::invalid_argument);
  EXPECT_THROW(fuzz_manifest("ok", 10, 0).validate(), std::invalid_argument);
  EXPECT_THROW(fuzz_manifest("ok", 10, 1, "typo").validate(),
               std::invalid_argument);
  Manifest bad_kind = fuzz_manifest("ok", 10, 1);
  bad_kind.kind = "sweep";
  EXPECT_THROW(bad_kind.validate(), std::invalid_argument);
  Manifest bad_policy = fuzz_manifest("ok", 10, 1);
  bad_policy.fuzz.policies = {"no-such-policy"};
  EXPECT_THROW(bad_policy.validate(), std::out_of_range);
  Manifest empty_grid = grid_manifest("ok", 1);
  empty_grid.grid.workloads.clear();
  EXPECT_THROW(empty_grid.validate(), std::invalid_argument);
  EXPECT_NO_THROW(fuzz_manifest("ok", 10, 1).validate());
  EXPECT_NO_THROW(grid_manifest("ok", 2).validate());
}

TEST(Manifest, UnitsAndShardOwnership) {
  const Manifest m = fuzz_manifest("units", 10, 3);
  EXPECT_EQ(m.num_units(), 10u);
  EXPECT_EQ(m.units_of_shard(0), 4u);  // units 0,3,6,9
  EXPECT_EQ(m.units_of_shard(1), 3u);
  EXPECT_EQ(m.units_of_shard(2), 3u);
  const Manifest g = grid_manifest("gunits", 1);
  EXPECT_EQ(g.num_units(), 4u);  // 2 workloads x 2 policies x 1 preset
}

TEST(Campaign, ResumedFuzzRunMergesByteIdentical) {
  const Manifest m = fuzz_manifest("resume", 6, 1);
  const std::string clean = scratch_dir("resume_clean");
  const std::string killed = scratch_dir("resume_killed");

  RunOptions all;
  all.threads = 2;
  RunStats stats = run_shard(m, clean, 0, all);
  EXPECT_EQ(stats.ran, 6u);
  EXPECT_EQ(stats.skipped, 0u);
  merge(m, clean, clean + "/merged.jsonl");

  // "Kill" after two units, then resume: the journal must pick up where
  // it stopped, rerun nothing, and merge to the same bytes.
  RunOptions capped = all;
  capped.max_units = 2;
  stats = run_shard(m, killed, 0, capped);
  EXPECT_EQ(stats.ran, 2u);
  stats = run_shard(m, killed, 0, all);
  EXPECT_EQ(stats.ran, 4u);
  EXPECT_EQ(stats.skipped, 2u);
  merge(m, killed, killed + "/merged.jsonl");

  const std::string clean_bytes = read_file(clean + "/merged.jsonl");
  EXPECT_FALSE(clean_bytes.empty());
  EXPECT_EQ(clean_bytes, read_file(killed + "/merged.jsonl"));
}

TEST(Campaign, GridShardSplitMergesByteIdentical) {
  // Same axes, different shard counts: the merged artifact may not
  // depend on how the campaign was split.
  const Manifest one = grid_manifest("grid", 1);
  const Manifest two = grid_manifest("grid", 2);
  const std::string dir1 = scratch_dir("grid_1shard");
  const std::string dir2 = scratch_dir("grid_2shard");

  RunOptions options;
  options.threads = 2;
  run_shard(one, dir1, 0, options);
  merge(one, dir1, dir1 + "/merged.jsonl");
  run_shard(two, dir2, 1, options);  // shard order must not matter either
  run_shard(two, dir2, 0, options);
  merge(two, dir2, dir2 + "/merged.jsonl");

  const std::string bytes = read_file(dir1 + "/merged.jsonl");
  EXPECT_FALSE(bytes.empty());
  EXPECT_EQ(bytes, read_file(dir2 + "/merged.jsonl"));
  EXPECT_NE(bytes.find("\"workload\":\"mcf\""), std::string::npos);
}

TEST(Campaign, TornTailIsTruncatedAndRerun) {
  const Manifest m = fuzz_manifest("torn", 4, 1);
  const std::string dir = scratch_dir("torn");
  const std::string reference = scratch_dir("torn_reference");

  RunOptions options;
  RunOptions capped;
  capped.max_units = 2;
  run_shard(m, dir, 0, capped);
  // A SIGKILL mid-fprintf leaves a partial line with no newline.
  append_raw(m.shard_path(dir, 0), "{\"unit\":2,\"seed\":3,\"o");

  const RunStats stats = run_shard(m, dir, 0, options);
  EXPECT_EQ(stats.ran, 2u);      // units 2 and 3 — the torn one reruns
  EXPECT_EQ(stats.skipped, 2u);  // units 0 and 1 survive truncation
  merge(m, dir, dir + "/merged.jsonl");

  run_shard(m, reference, 0, options);
  merge(m, reference, reference + "/merged.jsonl");
  EXPECT_EQ(read_file(dir + "/merged.jsonl"),
            read_file(reference + "/merged.jsonl"));
}

TEST(Campaign, JournalFromOtherManifestIsRefused) {
  const Manifest m = fuzz_manifest("refuse", 4, 1);
  const std::string dir = scratch_dir("refuse");
  run_shard(m, dir, 0, RunOptions{});

  Manifest edited = m;
  edited.version = 2;  // new fingerprint: old journal must be refused
  EXPECT_THROW(run_shard(edited, dir, 0, RunOptions{}), std::runtime_error);
  EXPECT_THROW(merge(edited, dir, dir + "/merged.jsonl"),
               std::runtime_error);

  // A random JSON file in the journal's place is refused too.
  const std::string dir2 = scratch_dir("refuse_alien");
  write_file(m.shard_path(dir2, 0), "{\"hello\": 1}\n");
  EXPECT_THROW(run_shard(m, dir2, 0, RunOptions{}), std::runtime_error);
}

TEST(Campaign, MergeRequiresEveryUnit) {
  const Manifest m = fuzz_manifest("partial", 5, 1);
  const std::string dir = scratch_dir("partial");
  RunOptions capped;
  capped.max_units = 3;
  run_shard(m, dir, 0, capped);
  EXPECT_THROW(merge(m, dir, dir + "/merged.jsonl"), std::runtime_error);

  const auto shard_status = status(m, dir);
  ASSERT_EQ(shard_status.size(), 1u);
  EXPECT_TRUE(shard_status[0].exists);
  EXPECT_EQ(shard_status[0].done, 3u);
  EXPECT_EQ(shard_status[0].expected, 5u);
}

TEST(Triage, NormalizesValueRuns) {
  EXPECT_EQ(normalize_violation(
                "baseline/skylake: committed state diverges from oracle: "
                "r3 = 0x2a vs 0x2b"),
            "baseline/skylake: committed state diverges from oracle: "
            "r# = 0x# vs 0x#");
  EXPECT_EQ(normalize_violation("shadow structures not empty after drain "
                                "(dcache=7 icache=12)"),
            "shadow structures not empty after drain (dcache=# icache=#)");
  EXPECT_EQ(normalize_violation("no digits here"), "no digits here");
}

TEST(Triage, ShardSplitReproducesTheSameReport) {
  // commit-xor corrupts every committed writeback, so every seed fails
  // the oracle-equivalence invariant — grouping has real work to do.
  const Manifest one = fuzz_manifest("triage", 8, 1, "commit-xor");
  const Manifest two = fuzz_manifest("triage", 8, 2, "commit-xor");
  const std::string dir1 = scratch_dir("triage_1shard");
  const std::string dir2 = scratch_dir("triage_2shard");

  RunOptions options;
  options.threads = 2;
  const RunStats stats = run_shard(one, dir1, 0, options);
  EXPECT_GT(stats.failures, 0u);
  run_shard(two, dir2, 0, options);
  run_shard(two, dir2, 1, options);

  const TriageReport report1 = triage(one, dir1);
  const TriageReport report2 = triage(two, dir2);
  EXPECT_EQ(report1.units, 8u);
  EXPECT_GT(report1.failures, 0u);
  EXPECT_EQ(render_triage_text(report1, &one),
            render_triage_text(report2, &two));
  EXPECT_EQ(render_triage_json(report1), render_triage_json(report2));

  // The merged artifacts agree byte for byte as well, and triaging the
  // merged file reproduces the journal-level report.
  merge(one, dir1, dir1 + "/merged.jsonl");
  merge(two, dir2, dir2 + "/merged.jsonl");
  EXPECT_EQ(read_file(dir1 + "/merged.jsonl"),
            read_file(dir2 + "/merged.jsonl"));
  const TriageReport from_file = triage_merged_file(dir1 + "/merged.jsonl");
  EXPECT_EQ(render_triage_json(from_file), render_triage_json(report1));

  // Groups carry the smallest failing seed and ascending members.
  ASSERT_FALSE(report1.groups.empty());
  for (const TriageGroup& group : report1.groups) {
    EXPECT_EQ(group.first_seed, group.seeds.front());
    EXPECT_TRUE(std::is_sorted(group.seeds.begin(), group.seeds.end()));
  }
  EXPECT_NE(render_triage_text(report1, &one).find("repro:"),
            std::string::npos);
}

TEST(Triage, CleanCampaignHasNoGroups) {
  const Manifest m = fuzz_manifest("clean", 4, 1);
  const std::string dir = scratch_dir("triage_clean");
  run_shard(m, dir, 0, RunOptions{});
  const TriageReport report = triage(m, dir);
  EXPECT_EQ(report.units, 4u);
  EXPECT_EQ(report.failures, 0u);
  EXPECT_TRUE(report.groups.empty());
}

TEST(PerfTrend, LoadsDirectoryAndRendersReport) {
  const std::string dir = scratch_dir("perf_trend");
  const char* cell_fmt =
      "{\"instrs_per_cell\": 1000, \"repeat\": 1,\n"
      " \"cells\": [{\"workload\": \"mcf\", \"policy\": \"WFC\","
      " \"preset\": \"skylake\", \"committed_instrs\": 1000,"
      " \"cycles\": 2000, \"wall_ms\": %s, \"mips\": %s}],\n"
      " \"aggregate\": {\"total_instrs\": 1000, \"total_wall_ms\": %s,"
      " \"mips\": %s}}\n";
  char doc[512];
  std::snprintf(doc, sizeof doc, cell_fmt, "1.0", "1.00", "1.0", "1.00");
  write_file(dir + "/run_a.json", doc);
  std::snprintf(doc, sizeof doc, cell_fmt, "2.0", "0.50", "2.0", "0.50");
  write_file(dir + "/run_b.json", doc);
  write_file(dir + "/notes.json", "{\"not\": \"a perf artifact\"}\n");
  write_file(dir + "/readme.txt", "ignored\n");

  const std::vector<PerfRun> runs = load_perf_dir(dir);
  ASSERT_EQ(runs.size(), 2u);  // filename-sorted, non-artifacts skipped
  EXPECT_EQ(runs[0].label, "run_a");
  EXPECT_EQ(runs[1].label, "run_b");
  EXPECT_DOUBLE_EQ(runs[0].aggregate_mips, 1.0);
  ASSERT_EQ(runs[0].cells.size(), 1u);
  EXPECT_EQ(runs[0].cells[0].key(), "mcf/WFC/skylake");

  const std::string html = render_trend_html(runs);
  EXPECT_NE(html.find("mcf/WFC/skylake"), std::string::npos);
  EXPECT_NE(html.find("<svg"), std::string::npos);
  EXPECT_NE(html.find("run_b"), std::string::npos);
  EXPECT_EQ(html.find("<script"), std::string::npos);  // self-contained

  const std::string json = render_trend_json(runs);
  EXPECT_NE(json.find("\"aggregate_mips\": [1.00, 0.50]"),
            std::string::npos);
  EXPECT_NE(json.find("\"key\": \"mcf/WFC/skylake\""), std::string::npos);
}

TEST(PerfTrend, CellKeyMatchesPerfCompareGrammar) {
  PerfCell c;
  c.workload = "gcc";
  c.policy = "SHARP";
  c.preset = "skylake";
  EXPECT_EQ(c.key(), "gcc/SHARP/skylake");
  c.mode = "sampled";
  EXPECT_EQ(c.key(), "gcc/SHARP/skylake/sampled");
  c.mode = "detailed";
  c.cores = 2;
  EXPECT_EQ(c.key(), "gcc/SHARP/skylake/cores=2");
}

}  // namespace
}  // namespace safespec::campaign
