// Equivalence tests for the indexed ShadowTable implementation.
//
// The table's hot paths (acquire/contains/insert/release) run on an
// open-addressing key index plus a free list; these tests drive long
// randomized insert/acquire/release/promote/flush sequences — mirroring
// the core's access discipline (acquire_existing before insert, live keys
// unique) — against a deliberately naive reference table that re-states
// the original O(entries) linear-scan semantics, and require every
// observable (lookup outcomes, live counts, full-table handling, all
// lifecycle statistics, occupancy percentiles) to match exactly. Plus
// directed full-table kDrop/kStall edge cases.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "safespec/shadow_structures.h"

namespace safespec::shadow {
namespace {

/// The pre-index semantics, restated as plainly as possible: linear
/// scans over a slab, lowest-free-slot allocation. Deliberately not
/// shared with the production header — this is the oracle.
class NaiveTable {
 public:
  explicit NaiveTable(const ShadowConfig& config)
      : config_(config), entries_(static_cast<std::size_t>(config.entries)) {}

  int acquire_existing(Addr key, bool count_stats = true) {
    for (int id = 0; id < config_.entries; ++id) {
      Entry& e = entries_[static_cast<std::size_t>(id)];
      if (e.live && e.key == key) {
        ++e.refs;
        if (count_stats) stats_.hits.add();
        return id;
      }
    }
    return -1;
  }

  bool contains(Addr key) const {
    for (const Entry& e : entries_) {
      if (e.live && e.key == key) return true;
    }
    return false;
  }

  int insert(Addr key, Addr payload) {
    for (int id = 0; id < config_.entries; ++id) {
      Entry& e = entries_[static_cast<std::size_t>(id)];
      if (!e.live) {
        e.live = true;
        e.key = key;
        e.payload = payload;
        e.refs = 1;
        e.promoted = false;
        stats_.inserts.add();
        ++live_count_;
        return id;
      }
    }
    if (config_.full_policy == FullPolicy::kDrop) {
      stats_.full_drops.add();
    } else {
      stats_.full_stalls.add();
    }
    return -1;
  }

  bool has_room() const { return live_count_ < config_.entries; }

  void mark_promoted(int id) {
    Entry& e = entries_[static_cast<std::size_t>(id)];
    if (!e.promoted) {
      e.promoted = true;
      stats_.committed.add();
    }
  }

  void release(int id) {
    Entry& e = entries_[static_cast<std::size_t>(id)];
    --e.refs;
    if (e.refs == 0) {
      if (!e.promoted) stats_.squashed.add();
      e.live = false;
      --live_count_;
    }
  }

  Addr payload_of(int id) const {
    return entries_[static_cast<std::size_t>(id)].payload;
  }

  void flush_all() {
    for (Entry& e : entries_) {
      if (e.live && !e.promoted) stats_.squashed.add();
      e.live = false;
      e.refs = 0;
    }
    live_count_ = 0;
  }

  void sample_occupancy() {
    stats_.occupancy.record(static_cast<std::uint64_t>(live_count_));
  }

  int live_count() const { return live_count_; }
  const ShadowStats& stats() const { return stats_; }

 private:
  struct Entry {
    Addr key = 0;
    Addr payload = 0;
    int refs = 0;
    bool live = false;
    bool promoted = false;
  };

  ShadowConfig config_;
  std::vector<Entry> entries_;
  int live_count_ = 0;
  ShadowStats stats_;
};

/// One outstanding reference, held by both tables under (usually
/// different) entry ids — ids are handles, not observables.
struct HandlePair {
  Addr key = 0;
  int real_id = 0;
  int naive_id = 0;
};

void expect_stats_equal(const ShadowStats& a, const ShadowStats& b) {
  EXPECT_EQ(a.inserts.value(), b.inserts.value());
  EXPECT_EQ(a.hits.value(), b.hits.value());
  EXPECT_EQ(a.committed.value(), b.committed.value());
  EXPECT_EQ(a.squashed.value(), b.squashed.value());
  EXPECT_EQ(a.full_drops.value(), b.full_drops.value());
  EXPECT_EQ(a.full_stalls.value(), b.full_stalls.value());
  EXPECT_EQ(a.occupancy.count(), b.occupancy.count());
  EXPECT_EQ(a.occupancy.max(), b.occupancy.max());
  EXPECT_EQ(a.occupancy.percentile(0.9999), b.occupancy.percentile(0.9999));
}

/// Drives `ops` random operations against both implementations and
/// checks every observable after each step. Key space is deliberately
/// barely larger than the table so full-table handling is exercised.
void run_equivalence(std::uint64_t seed, int entries, FullPolicy policy,
                     int ops) {
  const ShadowConfig config{"equiv", entries, policy};
  ShadowTlb real(config);
  NaiveTable naive(config);
  Rng rng(seed);
  std::vector<HandlePair> held;

  const std::uint64_t key_space =
      static_cast<std::uint64_t>(entries) * 2 + 3;

  for (int op = 0; op < ops; ++op) {
    switch (rng.below(10)) {
      case 0:
      case 1:
      case 2:
      case 3: {  // touch a key: acquire if live, insert otherwise
        const Addr key = 0x1000 + rng.below(key_space);
        ASSERT_EQ(real.contains(key), naive.contains(key)) << "key " << key;
        if (real.contains(key)) {
          const bool quiet = rng.below(4) == 0;
          const int rid = real.acquire_existing(key, !quiet);
          const int nid = naive.acquire_existing(key, !quiet);
          ASSERT_NE(rid, ShadowTlb::kNone);
          ASSERT_NE(nid, -1);
          EXPECT_EQ(real.payload_of(rid).ppage, naive.payload_of(nid));
          held.push_back({key, rid, nid});
        } else {
          const Addr payload = key ^ 0xABCD;
          ASSERT_EQ(real.has_room(), naive.has_room());
          const int rid = real.insert(key, {payload, false});
          const int nid = naive.insert(key, payload);
          ASSERT_EQ(rid == ShadowTlb::kNone, nid == -1)
              << "insert success must match at op " << op;
          if (rid != ShadowTlb::kNone) held.push_back({key, rid, nid});
        }
        break;
      }
      case 4:
      case 5:
      case 6: {  // release one outstanding reference
        if (held.empty()) break;
        const std::size_t pick = rng.below(held.size());
        real.release(held[pick].real_id);
        naive.release(held[pick].naive_id);
        held.erase(held.begin() + static_cast<std::ptrdiff_t>(pick));
        break;
      }
      case 7: {  // promote (idempotent across shared references)
        if (held.empty()) break;
        const std::size_t pick = rng.below(held.size());
        real.mark_promoted(held[pick].real_id);
        naive.mark_promoted(held[pick].naive_id);
        break;
      }
      case 8: {  // occupancy sample (record_run vs record equivalence)
        real.sample_occupancy();
        naive.sample_occupancy();
        break;
      }
      case 9: {  // rare full drain, as between attack trials
        if (rng.below(50) == 0) {
          real.flush_all();
          naive.flush_all();
          held.clear();
        }
        break;
      }
    }
    ASSERT_EQ(real.live_count(), naive.live_count()) << "op " << op;
    ASSERT_EQ(real.has_room(), naive.has_room()) << "op " << op;
  }

  // Squash-drain: release everything, as the core's end-of-run drain
  // invariant requires, and compare the final lifecycle statistics.
  for (const HandlePair& h : held) {
    real.release(h.real_id);
    naive.release(h.naive_id);
  }
  EXPECT_TRUE(real.empty());
  EXPECT_EQ(naive.live_count(), 0);
  expect_stats_equal(real.stats(), naive.stats());
}

TEST(ShadowIndexEquivalence, RandomizedDropPolicy) {
  run_equivalence(/*seed=*/1, /*entries=*/16, FullPolicy::kDrop, 20000);
}

TEST(ShadowIndexEquivalence, RandomizedStallPolicy) {
  run_equivalence(/*seed=*/2, /*entries=*/16, FullPolicy::kStall, 20000);
}

TEST(ShadowIndexEquivalence, TinyTableChurn) {
  // entries=2 keeps the table pinned at full, maximizing free-list reuse
  // and index deletions.
  run_equivalence(/*seed=*/3, /*entries=*/2, FullPolicy::kDrop, 20000);
}

TEST(ShadowIndexEquivalence, SecureSizedTable) {
  // Paper-sized i-side table (ROB entries) with a key space that churns
  // through many hash-index collisions and backward-shift deletions.
  run_equivalence(/*seed=*/4, /*entries=*/224, FullPolicy::kStall, 40000);
}

TEST(ShadowIndexEquivalence, ManySeeds) {
  for (std::uint64_t seed = 10; seed < 30; ++seed) {
    run_equivalence(seed, /*entries=*/8, FullPolicy::kDrop, 3000);
    run_equivalence(seed, /*entries=*/8, FullPolicy::kStall, 3000);
  }
}

// ---- directed full-table edge cases ---------------------------------------

TEST(ShadowIndexFullTable, DropAtCapacityKeepsResidents) {
  ShadowCache t({"full", 4, FullPolicy::kDrop});
  std::vector<int> ids;
  for (Addr key = 100; key < 104; ++key) ids.push_back(t.insert(key, {}));
  EXPECT_FALSE(t.has_room());
  // Every further insert is dropped; residents stay findable.
  for (Addr key = 200; key < 210; ++key) {
    EXPECT_EQ(t.insert(key, {}), ShadowCache::kNone);
    EXPECT_FALSE(t.contains(key));
  }
  EXPECT_EQ(t.stats().full_drops.value(), 10u);
  EXPECT_EQ(t.stats().full_stalls.value(), 0u);
  for (Addr key = 100; key < 104; ++key) EXPECT_TRUE(t.contains(key));
  for (int id : ids) t.release(id);
  EXPECT_TRUE(t.empty());
}

TEST(ShadowIndexFullTable, StallAtCapacityThenRetrySucceeds) {
  ShadowCache t({"full", 4, FullPolicy::kStall});
  std::vector<int> ids;
  for (Addr key = 100; key < 104; ++key) ids.push_back(t.insert(key, {}));
  EXPECT_EQ(t.insert(777, {}), ShadowCache::kNone);  // caller must stall
  EXPECT_EQ(t.stats().full_stalls.value(), 1u);
  EXPECT_EQ(t.stats().full_drops.value(), 0u);
  // One release frees a slot; the retry lands and is findable.
  t.release(ids[1]);
  EXPECT_TRUE(t.has_room());
  const int id = t.insert(777, {});
  ASSERT_NE(id, ShadowCache::kNone);
  EXPECT_TRUE(t.contains(777));
  EXPECT_FALSE(t.contains(101));
  t.release(ids[0]);
  t.release(ids[2]);
  t.release(ids[3]);
  t.release(id);
  EXPECT_TRUE(t.empty());
}

TEST(ShadowIndexFullTable, RefcountedSharingDoesNotConsumeCapacity) {
  ShadowCache t({"full", 2, FullPolicy::kStall});
  const int a = t.insert(1, {});
  const int b = t.insert(2, {});
  // Many sharers of resident lines never trip the full policy.
  std::vector<int> sharers;
  for (int i = 0; i < 64; ++i) {
    sharers.push_back(t.acquire_existing(i % 2 == 0 ? 1 : 2));
  }
  EXPECT_EQ(t.stats().full_stalls.value(), 0u);
  EXPECT_EQ(t.live_count(), 2);
  for (int id : sharers) t.release(id);
  t.release(a);
  t.release(b);
  EXPECT_TRUE(t.empty());
}

TEST(ShadowIndexFullTable, FlushAllResetsCapacityAndIndex) {
  ShadowCache t({"full", 4, FullPolicy::kDrop});
  for (Addr key = 100; key < 104; ++key) t.insert(key, {});
  t.flush_all();
  EXPECT_TRUE(t.empty());
  EXPECT_TRUE(t.has_room());
  for (Addr key = 100; key < 104; ++key) EXPECT_FALSE(t.contains(key));
  // The whole capacity is usable again and old keys re-insert cleanly.
  for (Addr key = 100; key < 104; ++key) {
    EXPECT_NE(t.insert(key, {}), ShadowCache::kNone);
  }
  EXPECT_FALSE(t.has_room());
  t.flush_all();
}

}  // namespace
}  // namespace safespec::shadow
