// Unit tests for the SafeSpec shadow structures: reference-counted
// lifecycle, promotion vs annulment accounting, full-table policies, and
// the occupancy statistics the sizing figures (6-9) are built from.
#include <gtest/gtest.h>

#include "safespec/shadow_structures.h"

namespace safespec::shadow {
namespace {

ShadowConfig config_of(int entries, FullPolicy policy = FullPolicy::kDrop) {
  return {.name = "t", .entries = entries, .full_policy = policy};
}

TEST(ShadowTable, InsertLookupRelease) {
  ShadowCache t(config_of(4));
  const auto id = t.insert(100, {});
  ASSERT_NE(id, ShadowCache::kNone);
  EXPECT_TRUE(t.contains(100));
  EXPECT_EQ(t.key(id), 100u);
  t.release(id);
  EXPECT_FALSE(t.contains(100));
  EXPECT_EQ(t.stats().squashed.value(), 1u);  // never promoted
}

TEST(ShadowTable, PromotedReleaseCountsAsCommitted) {
  ShadowCache t(config_of(4));
  const auto id = t.insert(100, {});
  t.mark_promoted(id);
  t.release(id);
  EXPECT_EQ(t.stats().committed.value(), 1u);
  EXPECT_EQ(t.stats().squashed.value(), 0u);
}

TEST(ShadowTable, MarkPromotedIsIdempotent) {
  ShadowCache t(config_of(4));
  const auto id = t.insert(100, {});
  t.mark_promoted(id);
  t.mark_promoted(id);
  EXPECT_EQ(t.stats().committed.value(), 1u);
  t.release(id);
}

TEST(ShadowTable, RefcountKeepsEntryAliveAcrossSharers) {
  ShadowCache t(config_of(4));
  const auto a = t.insert(100, {});
  const auto b = t.acquire_existing(100);
  ASSERT_EQ(a, b);  // same entry shared
  t.release(a);
  EXPECT_TRUE(t.contains(100));  // second holder keeps it live
  t.release(b);
  EXPECT_FALSE(t.contains(100));
}

TEST(ShadowTable, AcquireRecordsHitUnlessQuiet) {
  ShadowCache t(config_of(4));
  const auto a = t.insert(100, {});
  const auto b = t.acquire_existing(100);
  const auto c = t.acquire_existing(100, /*count_stats=*/false);
  EXPECT_EQ(t.stats().hits.value(), 1u);
  t.release(a);
  t.release(b);
  t.release(c);
}

TEST(ShadowTable, AcquireMissesReturnNone) {
  ShadowCache t(config_of(4));
  EXPECT_EQ(t.acquire_existing(123), ShadowCache::kNone);
}

TEST(ShadowTable, FullDropCountsDrops) {
  ShadowCache t(config_of(2, FullPolicy::kDrop));
  const auto a = t.insert(1, {});
  const auto b = t.insert(2, {});
  EXPECT_EQ(t.insert(3, {}), ShadowCache::kNone);
  EXPECT_EQ(t.stats().full_drops.value(), 1u);
  EXPECT_EQ(t.stats().full_stalls.value(), 0u);
  t.release(a);
  t.release(b);
}

TEST(ShadowTable, FullStallCountsStalls) {
  ShadowCache t(config_of(2, FullPolicy::kStall));
  const auto a = t.insert(1, {});
  const auto b = t.insert(2, {});
  EXPECT_FALSE(t.has_room());
  EXPECT_EQ(t.insert(3, {}), ShadowCache::kNone);
  EXPECT_EQ(t.stats().full_stalls.value(), 1u);
  t.release(a);
  EXPECT_TRUE(t.has_room());
  EXPECT_NE(t.insert(3, {}), ShadowCache::kNone);
  t.release(b);
}

TEST(ShadowTable, LiveCountTracksEntriesNotRefs) {
  ShadowCache t(config_of(8));
  const auto a = t.insert(1, {});
  const auto b = t.acquire_existing(1);
  EXPECT_EQ(t.live_count(), 1);
  const auto c = t.insert(2, {});
  EXPECT_EQ(t.live_count(), 2);
  t.release(a);
  t.release(b);
  t.release(c);
  EXPECT_EQ(t.live_count(), 0);
}

TEST(ShadowTable, PayloadAliasesPayloadOf) {
  // payload() is the historical accessor name; instantiating it caught a
  // latent call to a nonexistent Entry::key_payload().
  shadow::ShadowTlb t({.name = "t", .entries = 4});
  const auto id = t.insert(0x7, {0x42, /*kernel_only=*/false});
  ASSERT_NE(id, shadow::ShadowTlb::kNone);
  EXPECT_EQ(t.payload(id).ppage, t.payload_of(id).ppage);
  EXPECT_EQ(t.payload(id).ppage, 0x42u);
}

TEST(ShadowTable, TlbPayloadRoundTrips) {
  ShadowTlb t(config_of(4));
  const auto id = t.insert(0x42, {0x99, true});
  ASSERT_NE(id, ShadowTlb::kNone);
  EXPECT_EQ(t.payload_of(id).ppage, 0x99u);
  EXPECT_TRUE(t.payload_of(id).kernel_only);
  t.release(id);
}

TEST(ShadowTable, OccupancySamplesFeedPercentiles) {
  ShadowCache t(config_of(8));
  // Occupancy 0 for 9998 samples, 5 for 2 samples: p99.99 must reach
  // into the tail the figures care about (0 covers only 99.98% here).
  for (int i = 0; i < 9998; ++i) t.sample_occupancy();
  std::vector<int> ids;
  for (int i = 0; i < 5; ++i) ids.push_back(t.insert(100 + i, {}));
  t.sample_occupancy();
  t.sample_occupancy();
  EXPECT_EQ(t.stats().occupancy.percentile(0.9999), 5u);
  EXPECT_EQ(t.stats().occupancy.percentile(0.5), 0u);
  for (int id : ids) t.release(id);
}

TEST(ShadowTable, FlushAllSquashesLiveEntries) {
  ShadowCache t(config_of(4));
  t.insert(1, {});
  t.insert(2, {});
  t.flush_all();
  EXPECT_EQ(t.live_count(), 0);
  EXPECT_EQ(t.stats().squashed.value(), 2u);
}

TEST(ShadowStats, CommitRate) {
  ShadowStats s;
  s.committed.add(3);
  s.squashed.add(1);
  EXPECT_DOUBLE_EQ(s.commit_rate(), 0.75);
}

TEST(ShadowTable, ReusesFreedSlots) {
  ShadowCache t(config_of(2));
  const auto a = t.insert(1, {});
  const auto b = t.insert(2, {});
  t.release(a);
  const auto c = t.insert(3, {});
  EXPECT_NE(c, ShadowCache::kNone);
  EXPECT_TRUE(t.contains(2));
  EXPECT_TRUE(t.contains(3));
  EXPECT_FALSE(t.contains(1));
  t.release(b);
  t.release(c);
}

TEST(PolicyNames, ToString) {
  EXPECT_STREQ(to_string(CommitPolicy::kBaseline), "baseline");
  EXPECT_STREQ(to_string(CommitPolicy::kWFB), "WFB");
  EXPECT_STREQ(to_string(CommitPolicy::kWFC), "WFC");
  EXPECT_STREQ(to_string(FullPolicy::kDrop), "drop");
  EXPECT_STREQ(to_string(FullPolicy::kStall), "stall");
}

}  // namespace
}  // namespace safespec::shadow
