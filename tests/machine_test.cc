// MachineSpec / MachineBuilder / registries: JSON round-trip, builder
// validation errors, preset and policy lookup (unknown names must fail
// with a message listing what *is* registered).
#include <gtest/gtest.h>

#include <stdexcept>

#include "isa/program.h"
#include "safespec/policy.h"
#include "sim/machine.h"
#include "sim/sim_config.h"

namespace safespec {
namespace {

using sim::MachineBuilder;
using sim::MachineSpec;

isa::Program tiny_program() {
  isa::ProgramBuilder b(0x1000);
  b.movi(1, 7).halt();
  auto program = b.build();
  program.set_entry(0x1000);
  return program;
}

// ---- presets ---------------------------------------------------------------

TEST(MachinePreset, SkylakeMatchesLegacySkylakeConfig) {
  const auto preset = sim::machine_preset("skylake");
  const auto legacy = sim::skylake_config();
  EXPECT_EQ(preset.core.rob_entries, legacy.rob_entries);
  EXPECT_EQ(preset.core.ldq_entries, legacy.ldq_entries);
  EXPECT_EQ(preset.core.hierarchy.l3.size_bytes,
            legacy.hierarchy.l3.size_bytes);
  EXPECT_EQ(preset.core.shadow_icache.entries, legacy.shadow_icache.entries);
  EXPECT_EQ(preset.core.policy, "baseline");
}

TEST(MachinePreset, EmbeddedIsRegisteredAndSecurelySized) {
  const auto spec = sim::machine_preset("embedded");
  EXPECT_EQ(spec.preset, "embedded");
  EXPECT_LT(spec.core.rob_entries, 224);
  // Shadows keep the §V worst-case bound for *this* machine.
  EXPECT_NO_THROW(spec.validate());
}

TEST(MachinePreset, UnknownNameListsRegisteredPresets) {
  try {
    sim::machine_preset("cray-1");
    FAIL() << "expected std::out_of_range";
  } catch (const std::out_of_range& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("cray-1"), std::string::npos);
    EXPECT_NE(what.find("skylake"), std::string::npos);
    EXPECT_NE(what.find("embedded"), std::string::npos);
  }
}

// ---- JSON round-trip -------------------------------------------------------

TEST(MachineSpecJson, RoundTripsExactly) {
  MachineSpec spec = sim::machine_preset("skylake");
  spec.core.policy = "WFC";
  spec.core.rob_entries = 128;
  spec.core.shadow_icache.entries = 128;
  spec.core.shadow_itlb.entries = 128;
  spec.core.shadow_dcache.full_policy = shadow::FullPolicy::kStall;
  spec.regions.push_back({0x700000, kPageSize, memory::PagePerm::kUser});
  spec.regions.push_back({0x900000, 2 * kPageSize, memory::PagePerm::kKernel});
  spec.pokes.push_back({0x700008, 42});

  const std::string json = spec.to_json();
  const MachineSpec parsed = MachineSpec::from_json(json);
  EXPECT_EQ(parsed.to_json(), json);
  EXPECT_EQ(parsed.core.policy, "WFC");
  EXPECT_EQ(parsed.core.rob_entries, 128);
  EXPECT_EQ(parsed.core.shadow_dcache.full_policy,
            shadow::FullPolicy::kStall);
  ASSERT_EQ(parsed.regions.size(), 2u);
  EXPECT_EQ(parsed.regions[1].perm, memory::PagePerm::kKernel);
  ASSERT_EQ(parsed.pokes.size(), 1u);
  EXPECT_EQ(parsed.pokes[0].value, 42u);
}

TEST(MachineSpecJson, PartialDocumentKeepsPresetDefaults) {
  const MachineSpec spec = MachineSpec::from_json(
      R"({"preset": "embedded", "policy": "WFB",
          "core": {"rob_entries": 48},
          "shadows": {"icache": {"entries": 48}, "itlb": {"entries": 48}}})");
  EXPECT_EQ(spec.preset, "embedded");
  EXPECT_EQ(spec.core.policy, "WFB");
  EXPECT_EQ(spec.core.rob_entries, 48);
  // Untouched fields come from the embedded preset.
  EXPECT_EQ(spec.core.fetch_width, 2);
  EXPECT_EQ(spec.core.hierarchy.l1d.size_bytes, 8u * 1024u);
}

TEST(MachineSpecJson, HexStringsAcceptedForAddresses) {
  const MachineSpec spec = MachineSpec::from_json(
      R"({"memory_map": [{"base": "0x200000", "bytes": 4096}],
          "pokes": [{"addr": "0x200000", "value": "0xff"}]})");
  ASSERT_EQ(spec.regions.size(), 1u);
  EXPECT_EQ(spec.regions[0].base, 0x200000u);
  EXPECT_EQ(spec.pokes[0].value, 0xffu);
}

TEST(MachineSpecJson, MalformedDocumentThrows) {
  EXPECT_THROW(MachineSpec::from_json("{\"policy\": }"),
               std::invalid_argument);
  EXPECT_THROW(MachineSpec::from_json("[1,2,3]"), std::invalid_argument);
  EXPECT_THROW(MachineSpec::from_json_file("/nonexistent/machine.json"),
               std::invalid_argument);
}

// ---- validation ------------------------------------------------------------

TEST(MachineSpecValidate, RejectsZeroWidths) {
  MachineSpec spec;
  spec.core.issue_width = 0;
  EXPECT_THROW(spec.validate(), std::invalid_argument);
}

TEST(MachineSpecValidate, RejectsDegenerateCacheGeometry) {
  MachineSpec spec;
  spec.core.hierarchy.l1d.size_bytes = 1000;  // not ways*line aligned
  EXPECT_THROW(spec.validate(), std::invalid_argument);
}

TEST(MachineSpecValidate, RejectsUnknownPolicyListingRegistered) {
  MachineSpec spec;
  spec.core.policy = "no-such-policy";
  try {
    spec.validate();
    FAIL() << "expected std::out_of_range";
  } catch (const std::out_of_range& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("no-such-policy"), std::string::npos);
    EXPECT_NE(what.find("baseline"), std::string::npos);
    EXPECT_NE(what.find("WFB"), std::string::npos);
    EXPECT_NE(what.find("WFC"), std::string::npos);
    EXPECT_NE(what.find("WFB-stall"), std::string::npos);
  }
}

TEST(MachineSpecValidate, RejectsOverlappingRegions) {
  MachineSpec spec;
  spec.regions.push_back({0x1000, 0x3000, memory::PagePerm::kUser});
  spec.regions.push_back({0x2000, 0x1000, memory::PagePerm::kUser});
  EXPECT_THROW(spec.validate(), std::invalid_argument);
}

TEST(MachineSpecValidate, RejectsRegionsWrappingTheAddressSpace) {
  // base + bytes overflowing uint64 must not slip past the overlap check.
  MachineSpec spec;
  spec.regions.push_back({0x1000, ~0ull - 0xfff, memory::PagePerm::kUser});
  spec.regions.push_back({0x2000, 0x1000, memory::PagePerm::kUser});
  EXPECT_THROW(spec.validate(), std::invalid_argument);
}

TEST(MachineSpecValidate, UndersizedShadowsNeedExplicitOptIn) {
  MachineSpec spec;  // skylake: secure bound is LDQ=72 / ROB=224
  spec.core.shadow_dcache.entries = 8;
  EXPECT_THROW(spec.validate(), std::invalid_argument);
  spec.allow_undersized_shadows = true;
  EXPECT_NO_THROW(spec.validate());
}

// ---- --set grammar ---------------------------------------------------------

TEST(MachineSpecSet, OverridesNestedFields) {
  MachineSpec spec;
  spec.set("policy=WFB-stall");
  spec.set("rob_entries=64");
  spec.set("l2.size_bytes=524288");
  spec.set("shadow_dcache.entries", "16");
  spec.set("shadow_dcache.full_policy", "stall");
  spec.set("predictor.direction", "perceptron");
  spec.set("allow_undersized_shadows=true");
  EXPECT_EQ(spec.core.policy, "WFB-stall");
  EXPECT_EQ(spec.core.rob_entries, 64);
  EXPECT_EQ(spec.core.hierarchy.l2.size_bytes, 524288u);
  EXPECT_EQ(spec.core.shadow_dcache.entries, 16);
  EXPECT_EQ(spec.core.shadow_dcache.full_policy, shadow::FullPolicy::kStall);
  EXPECT_EQ(spec.core.predictor.direction.kind,
            predictor::DirectionKind::kPerceptron);
}

TEST(MachineSpecSet, PresetReseedsCoreButKeepsPolicy) {
  MachineSpec spec;
  spec.set("policy=WFC");
  spec.set("preset=embedded");
  EXPECT_EQ(spec.preset, "embedded");
  EXPECT_EQ(spec.core.fetch_width, 2);
  EXPECT_EQ(spec.core.policy, "WFC");
}

TEST(MachineSpecJson, SamplingScheduleRoundTrips) {
  MachineSpec spec = sim::machine_preset("skylake");
  spec.sampling.fast_forward_interval = 500'000;
  spec.sampling.warmup_instrs = 3'000;
  spec.sampling.detail_instrs = 7'000;
  const std::string json = spec.to_json();
  const MachineSpec parsed = MachineSpec::from_json(json);
  EXPECT_EQ(parsed.to_json(), json);
  EXPECT_EQ(parsed.sampling.fast_forward_interval, 500'000u);
  EXPECT_EQ(parsed.sampling.warmup_instrs, 3'000u);
  EXPECT_EQ(parsed.sampling.detail_instrs, 7'000u);
  EXPECT_TRUE(parsed.sampling.enabled());
  // A document without a "sampling" object keeps sampling disabled.
  EXPECT_FALSE(
      MachineSpec::from_json(R"({"preset": "skylake"})").sampling.enabled());
}

TEST(MachineSpecSet, SamplingKeysOverrideSchedule) {
  MachineSpec spec;
  spec.set("sampling.fast_forward_interval=100000");
  spec.set("sampling.warmup_instrs=4000");
  spec.set("sampling.detail_instrs", "8000");
  EXPECT_EQ(spec.sampling.fast_forward_interval, 100'000u);
  EXPECT_EQ(spec.sampling.warmup_instrs, 4'000u);
  EXPECT_EQ(spec.sampling.detail_instrs, 8'000u);
}

TEST(MachineSpecValidate, RejectsEnabledSamplingWithZeroDetailWindow) {
  MachineSpec spec = sim::machine_preset("skylake");
  spec.sampling.fast_forward_interval = 1'000;
  spec.sampling.detail_instrs = 0;
  EXPECT_THROW(spec.validate(), std::invalid_argument);
  spec.sampling.fast_forward_interval = 0;  // disabled: anything goes
  EXPECT_NO_THROW(spec.validate());
}

// ---- cores axis ------------------------------------------------------------

TEST(MachineSpecJson, CoresRoundTripsAndDefaultsToOne) {
  MachineSpec spec = sim::machine_preset("skylake");
  spec.core.cores = 4;
  const std::string json = spec.to_json();
  const MachineSpec parsed = MachineSpec::from_json(json);
  EXPECT_EQ(parsed.to_json(), json);
  EXPECT_EQ(parsed.core.cores, 4);
  // A document without the field stays single-core.
  EXPECT_EQ(MachineSpec::from_json(R"({"preset": "skylake"})").core.cores, 1);
}

TEST(MachineSpecSet, CoresOverrideAndPresetReseedKeepsCores) {
  MachineSpec spec;
  spec.set("cores=2");
  EXPECT_EQ(spec.core.cores, 2);
  // preset= re-seeds the micro-architecture but cores is a machine-level
  // choice and must survive, like policy does.
  spec.set("preset=embedded");
  EXPECT_EQ(spec.core.fetch_width, 2);
  EXPECT_EQ(spec.core.cores, 2);
  EXPECT_THROW(spec.set("cores=banana"), std::invalid_argument);
}

TEST(MachineSpecValidate, RejectsOutOfRangeCoresAndSampledMulticore) {
  MachineSpec spec = sim::machine_preset("skylake");
  spec.core.cores = 0;
  EXPECT_THROW(spec.validate(), std::invalid_argument);
  spec.core.cores = 65;
  EXPECT_THROW(spec.validate(), std::invalid_argument);
  spec.core.cores = 2;
  EXPECT_NO_THROW(spec.validate());
  // Sampling fast-forwards one architectural thread; it is single-core
  // only and the combination must be rejected up front.
  spec.sampling.fast_forward_interval = 10'000;
  spec.sampling.detail_instrs = 1'000;
  EXPECT_THROW(spec.validate(), std::invalid_argument);
  spec.core.cores = 1;
  EXPECT_NO_THROW(spec.validate());
}

TEST(MachineSpecJson, SharpDetectorFieldsRoundTrip) {
  MachineSpec spec = sim::machine_preset("skylake");
  spec.core.policy = "SHARP";
  spec.core.sharp_alarm_threshold = 50;
  spec.core.sharp_alarm_epoch = 100'000;
  EXPECT_NO_THROW(spec.validate());
  const std::string json = spec.to_json();
  const MachineSpec parsed = MachineSpec::from_json(json);
  EXPECT_EQ(parsed.to_json(), json);
  EXPECT_EQ(parsed.core.policy, "SHARP");
  EXPECT_EQ(parsed.core.sharp_alarm_threshold, 50u);
  EXPECT_EQ(parsed.core.sharp_alarm_epoch, 100'000u);
  // A document without the fields keeps the exemplar defaults.
  const MachineSpec bare = MachineSpec::from_json(R"({"preset": "skylake"})");
  EXPECT_EQ(bare.core.sharp_alarm_threshold, 2000u);
  EXPECT_EQ(bare.core.sharp_alarm_epoch, 1'000'000'000u);
}

TEST(MachineSpecSet, SharpDetectorKeysAndPolicyNames) {
  MachineSpec spec;
  spec.set("policy=SHARP");
  spec.set("sharp_alarm_threshold=7");
  spec.set("sharp_alarm_epoch=500");
  EXPECT_EQ(spec.core.policy, "SHARP");
  EXPECT_EQ(spec.core.sharp_alarm_threshold, 7u);
  EXPECT_EQ(spec.core.sharp_alarm_epoch, 500u);
  EXPECT_NO_THROW(spec.validate());
  spec.set("policy=detect-only");
  EXPECT_NO_THROW(spec.validate());
  // A zero threshold or epoch would make the detector fire on nothing /
  // divide the run into empty epochs; both are rejected.
  spec.set("sharp_alarm_threshold=0");
  EXPECT_THROW(spec.validate(), std::invalid_argument);
  spec.set("sharp_alarm_threshold=2000");
  spec.set("sharp_alarm_epoch=0");
  EXPECT_THROW(spec.validate(), std::invalid_argument);
}

TEST(MachineSpecSet, RejectsUnknownKeysAndBadValues) {
  MachineSpec spec;
  EXPECT_THROW(spec.set("no_such_field=1"), std::invalid_argument);
  EXPECT_THROW(spec.set("not-an-override"), std::invalid_argument);
  EXPECT_THROW(spec.set("rob_entries=many"), std::invalid_argument);
  // strtoull would silently wrap negatives to huge values.
  EXPECT_THROW(spec.set("memory_latency=-5"), std::invalid_argument);
  EXPECT_THROW(spec.set("l1d.size_bytes=-1"), std::invalid_argument);
  EXPECT_THROW(spec.set("shadow_dcache.full_policy=explode"),
               std::invalid_argument);
  EXPECT_THROW(spec.set("policy=no-such-policy"), std::out_of_range);
}

// ---- builder ---------------------------------------------------------------

TEST(MachineBuilderTest, BuildsReadyToRunSimulator) {
  constexpr Addr kData = 0x200000;
  auto sim = MachineBuilder::from_preset("skylake")
                 .policy("WFC")
                 .map_region(kData, kPageSize)
                 .poke(kData, 123)
                 .build(tiny_program());
  EXPECT_EQ(sim->peek(kData), 123u);
  const auto result = sim->run();
  EXPECT_EQ(result.stop, cpu::StopReason::kHalted);
  EXPECT_EQ(sim->core().reg(1), 7u);
  EXPECT_EQ(sim->core().config().policy, "WFC");
}

TEST(MachineBuilderTest, ValidationFailuresSurfaceAtBuild) {
  EXPECT_THROW(
      MachineBuilder().shadow_entries(4, 4).build(tiny_program()),
      std::invalid_argument);
  // Same sizing is fine once explicitly allowed.
  EXPECT_NO_THROW(MachineBuilder()
                      .policy("WFC")
                      .shadow_entries(4, 4)
                      .allow_undersized_shadows()
                      .build(tiny_program()));
}

TEST(MachineBuilderTest, WfbStallSelectableByNameForcesStallShadows) {
  auto sim = MachineBuilder()
                 .policy("WFB-stall")
                 .build(tiny_program());
  // The policy's full-table override reaches the constructed core.
  EXPECT_EQ(sim->core().shadow_dcache().config().full_policy,
            shadow::FullPolicy::kStall);
  EXPECT_EQ(sim->core().shadow_itlb().config().full_policy,
            shadow::FullPolicy::kStall);
  EXPECT_TRUE(
      sim->core().protection_policy().promote_at_branch_resolution());
}

// ---- policy registry -------------------------------------------------------

TEST(PolicyRegistry, ShipsThePaperFamilyPlusWfbStall) {
  const auto names = policy::registered_policy_names();
  for (const char* expected : {"baseline", "WFB", "WFC", "WFB-stall"}) {
    EXPECT_NE(std::find(names.begin(), names.end(), expected), names.end())
        << expected;
  }
  EXPECT_FALSE(policy::named_policy("baseline").shadows_speculation());
  EXPECT_TRUE(policy::named_policy("WFC").shadows_speculation());
  EXPECT_FALSE(policy::named_policy("WFC").promote_at_branch_resolution());
  EXPECT_TRUE(policy::named_policy("WFB").promote_at_branch_resolution());
  EXPECT_EQ(policy::named_policy("WFB").commit_policy(),
            shadow::CommitPolicy::kWFB);
}

TEST(PolicyRegistry, UnknownNameListsRegisteredPolicies) {
  try {
    policy::named_policy("wfz");
    FAIL() << "expected std::out_of_range";
  } catch (const std::out_of_range& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("wfz"), std::string::npos);
    EXPECT_NE(what.find("baseline"), std::string::npos);
    EXPECT_NE(what.find("WFB-stall"), std::string::npos);
  }
}

}  // namespace
}  // namespace safespec
