// Tests for the functional engine and sampled simulation: the engine's
// equivalence with the detailed core across every fuzz scenario class,
// checkpoint equivalence at arbitrary window boundaries, checkpoint
// save/restore round-trips (including mid-fault-handler state and the
// memory-delta rollback path), the ff=0 bit-identity guarantee, sampled
// IPC-estimate sanity, and translation-cache invalidation.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "fuzz/fuzz_spec.h"
#include "fuzz/generator.h"
#include "isa/program.h"
#include "memory/main_memory.h"
#include "memory/page_table.h"
#include "sim/functional.h"
#include "sim/machine.h"
#include "sim/simulator.h"
#include "workloads/runner.h"
#include "workloads/workload.h"

namespace safespec {
namespace {

using fuzz::FuzzProgram;
using fuzz::FuzzSpec;
using fuzz::ScenarioWeights;
using sim::ArchCheckpoint;
using sim::FunctionalEngine;
using sim::SamplingSpec;

/// All-zero scenario weights ({} would re-apply the 1.0 defaults).
ScenarioWeights zero_weights() {
  ScenarioWeights w;
  w.branch_heavy = 0;
  w.pointer_chase = 0;
  w.protected_window = 0;
  w.self_confusing = 0;
  w.mixed_compute = 0;
  w.mem_storm = 0;
  return w;
}

/// Everything two executions must agree on.
struct FinalState {
  cpu::StopReason stop = cpu::StopReason::kMaxCycles;
  std::uint64_t committed = 0;
  std::uint64_t faults = 0;
  std::array<std::uint64_t, kNumArchRegs> regs{};
  std::vector<std::pair<Addr, std::uint64_t>> memory;
};

void expect_equal(const FinalState& a, const FinalState& b,
                  const std::string& what) {
  EXPECT_EQ(a.stop, b.stop) << what;
  EXPECT_EQ(a.committed, b.committed) << what;
  EXPECT_EQ(a.faults, b.faults) << what;
  EXPECT_EQ(a.regs, b.regs) << what;
  EXPECT_EQ(a.memory, b.memory) << what;
}

FinalState engine_final_state(const FuzzProgram& fp) {
  memory::MainMemory mem;
  memory::PageTable pt;
  fuzz::apply_address_space(fp, mem, pt);
  FunctionalEngine engine(&fp.program, &mem, &pt);
  FinalState state;
  state.stop = engine.run(fp.max_instrs_hint);
  state.committed = engine.committed();
  state.faults = engine.faults();
  for (int r = 0; r < kNumArchRegs; ++r) {
    state.regs[static_cast<std::size_t>(r)] =
        engine.reg(static_cast<RegIndex>(r));
  }
  state.memory = mem.nonzero_words();
  return state;
}

std::unique_ptr<sim::Simulator> detailed_sim(const FuzzProgram& fp) {
  sim::MachineBuilder builder = sim::MachineBuilder::from_preset("skylake");
  builder.policy("baseline");
  for (const auto& region : fp.regions) {
    builder.map_region(region.base, region.bytes, region.perm);
  }
  for (const auto& poke : fp.pokes) builder.poke(poke.addr, poke.value);
  return builder.build(fp.program);
}

FinalState detailed_final_state(const FuzzProgram& fp) {
  const auto sim = detailed_sim(fp);
  const auto result = sim->run(50'000'000, 4 * fp.max_instrs_hint);
  FinalState state;
  state.stop = result.stop;
  state.committed = result.committed_instrs;
  state.faults = result.faults;
  for (int r = 0; r < kNumArchRegs; ++r) {
    state.regs[static_cast<std::size_t>(r)] =
        sim->core().reg(static_cast<RegIndex>(r));
  }
  state.memory = sim->memory().nonzero_words();
  return state;
}

// ---- functional vs detailed, per scenario class ---------------------------

/// The engine must reproduce the detailed core's committed state for
/// every scenario class in isolation (the nightly fuzzer covers the
/// mixtures; a per-class failure here names the broken class directly).
TEST(FunctionalEquivalenceTest, MatchesDetailedCorePerScenarioClass) {
  struct Class {
    const char* name;
    void (*select)(ScenarioWeights&);
  };
  const Class classes[] = {
      {"branch_heavy", [](ScenarioWeights& w) { w.branch_heavy = 1; }},
      {"pointer_chase", [](ScenarioWeights& w) { w.pointer_chase = 1; }},
      {"protected_window",
       [](ScenarioWeights& w) { w.protected_window = 1; }},
      {"self_confusing", [](ScenarioWeights& w) { w.self_confusing = 1; }},
      {"mixed_compute", [](ScenarioWeights& w) { w.mixed_compute = 1; }},
      {"mem_storm", [](ScenarioWeights& w) { w.mem_storm = 1; }},
  };
  for (const Class& c : classes) {
    FuzzSpec spec;
    spec.weights = zero_weights();
    c.select(spec.weights);
    for (std::uint64_t seed = 1; seed <= 3; ++seed) {
      const FuzzProgram fp = fuzz::generate_program(seed, spec);
      const FinalState oracle = engine_final_state(fp);
      const FinalState core = detailed_final_state(fp);
      expect_equal(oracle, core,
                   std::string(c.name) + " seed " + std::to_string(seed));
    }
  }
}

// ---- checkpoint-boundary equivalence --------------------------------------

/// Drives the detailed core in small committed-instruction chunks with
/// the engine following by the same deltas: at every boundary (an
/// arbitrary sample-window edge) the architectural state must agree —
/// registers, resume pc, fault count, and committed memory.
TEST(FunctionalEquivalenceTest, AgreesAtEveryChunkBoundary) {
  FuzzSpec spec;
  spec.loop_iterations = 12;  // a long program: many boundaries to check
  const FuzzProgram fp = fuzz::generate_program(7, spec);

  memory::MainMemory mem;
  memory::PageTable pt;
  fuzz::apply_address_space(fp, mem, pt);
  FunctionalEngine engine(&fp.program, &mem, &pt);

  const auto sim = detailed_sim(fp);
  cpu::Core& core = sim->core();

  int boundaries = 0;
  for (int chunk = 0; chunk < 400; ++chunk) {
    const std::uint64_t c0 = core.stats().committed_instrs;
    const auto core_stop = core.run(1'000'000, 137);
    const std::uint64_t delta = core.stats().committed_instrs - c0;

    const auto engine_stop = engine.run(delta);
    ASSERT_EQ(engine.committed(), core.stats().committed_instrs);
    ASSERT_EQ(engine.faults(), core.stats().faults)
        << "boundary " << chunk;
    for (int r = 0; r < kNumArchRegs; ++r) {
      ASSERT_EQ(engine.reg(static_cast<RegIndex>(r)),
                core.reg(static_cast<RegIndex>(r)))
          << "boundary " << chunk << " r" << r;
    }
    ASSERT_EQ(mem.nonzero_words(), sim->memory().nonzero_words())
        << "boundary " << chunk;

    if (core_stop != cpu::StopReason::kMaxInstrs) {
      // Program over (halt or unhandled fault): both sides agree on why.
      ASSERT_EQ(engine_stop, core_stop);
      break;
    }
    // The resume pc the sampled loop would restart the core at.
    ASSERT_EQ(engine.pc(), core.next_commit_pc()) << "boundary " << chunk;
    ++boundaries;
  }
  ASSERT_GT(boundaries, 10) << "program too short to exercise boundaries";
}

// ---- checkpoint round-trips -----------------------------------------------

/// Checkpoints taken mid-run — including with pending fault-handler
/// state — must restore onto a *fresh* engine and memory image (via the
/// recorded memory delta) and replay to the identical final state.
TEST(CheckpointTest, RoundTripsThroughMidFaultHandlerState) {
  // All scenario classes (mem_storm supplies stores for the delta) with
  // every protected_window block committing a recoverable fault.
  FuzzSpec spec;
  spec.fault_frac = 1.0;
  spec.install_fault_handler = true;
  spec.loop_iterations = 10;  // leave plenty of program past the fault
  // Seed 3 (under this spec): faults early, writes memory before the
  // checkpoint, and keeps running well past it.
  const FuzzProgram fp = fuzz::generate_program(3, spec);

  // Reference run: record the delta, checkpoint once the fault handler
  // has fired (plus a little headroom so stores land in the delta), then
  // run to completion.
  memory::MainMemory mem_a;
  memory::PageTable pt_a;
  fuzz::apply_address_space(fp, mem_a, pt_a);
  FunctionalEngine a(&fp.program, &mem_a, &pt_a);
  a.record_memory_delta(true);
  auto stop = cpu::StopReason::kMaxInstrs;
  while (a.faults() == 0 && stop == cpu::StopReason::kMaxInstrs) {
    stop = a.run(25);
  }
  ASSERT_GT(a.faults(), 0u) << "seed produced no architectural fault";
  ASSERT_EQ(stop, cpu::StopReason::kMaxInstrs)
      << "program ended before a checkpoint could be taken";
  ASSERT_EQ(a.run(500), cpu::StopReason::kMaxInstrs)
      << "program ended before a checkpoint could be taken";
  ArchCheckpoint cp = a.checkpoint();
  EXPECT_TRUE(cp.started);
  EXPECT_GT(cp.faults, 0u);
  EXPECT_FALSE(cp.mem_delta.empty());

  FinalState final_a;
  final_a.stop = a.run(fp.max_instrs_hint);
  final_a.committed = a.committed();
  final_a.faults = a.faults();
  for (int r = 0; r < kNumArchRegs; ++r) {
    final_a.regs[static_cast<std::size_t>(r)] =
        a.reg(static_cast<RegIndex>(r));
  }
  final_a.memory = mem_a.nonzero_words();

  // Cold restore: fresh engine + memory, delta applied forward.
  memory::MainMemory mem_b;
  memory::PageTable pt_b;
  fuzz::apply_address_space(fp, mem_b, pt_b);
  FunctionalEngine b(&fp.program, &mem_b, &pt_b);
  for (const auto& w : cp.mem_delta) mem_b.write64(w.addr, w.new_value);
  b.restore(cp);
  ASSERT_EQ(b.committed(), cp.committed);
  ASSERT_EQ(b.pc(), cp.pc);

  FinalState final_b;
  final_b.stop = b.run(fp.max_instrs_hint);
  final_b.committed = b.committed();
  final_b.faults = b.faults();
  for (int r = 0; r < kNumArchRegs; ++r) {
    final_b.regs[static_cast<std::size_t>(r)] =
        b.reg(static_cast<RegIndex>(r));
  }
  final_b.memory = mem_b.nonzero_words();
  expect_equal(final_a, final_b, "cold restore replay");

  // Warm rewind: roll the reference engine's memory back to the
  // checkpoint, restore, and replay — determinism on the same instance.
  a.rollback_memory();
  a.restore(cp);
  FinalState final_c;
  final_c.stop = a.run(fp.max_instrs_hint);
  final_c.committed = a.committed();
  final_c.faults = a.faults();
  for (int r = 0; r < kNumArchRegs; ++r) {
    final_c.regs[static_cast<std::size_t>(r)] =
        a.reg(static_cast<RegIndex>(r));
  }
  final_c.memory = mem_a.nonzero_words();
  expect_equal(final_a, final_c, "rollback + restore replay");
}

// ---- ff=0 bit-identity ----------------------------------------------------

/// run_sampled with a disabled spec must be the plain detailed run,
/// bit for bit — the guarantee that lets every existing figure/golden
/// path route through the sampled entry point unchanged.
TEST(SampledSimulationTest, DisabledSamplingIsBitIdenticalToDetailedRun) {
  const struct {
    const char* workload;
    const char* policy;
  } cases[] = {{"mcf", "baseline"}, {"gcc", "WFC"}};
  for (const auto& c : cases) {
    const auto profile = workloads::profile_by_name(c.workload);
    cpu::CoreConfig config = sim::machine_preset("skylake").core;
    config.policy = c.policy;

    const std::uint64_t instrs = 20'000;
    auto plain = workloads::make_workload_sim(profile, config, instrs);
    const auto r1 = plain->run(instrs * 40 + 1'000'000, instrs);

    auto sampled = workloads::make_workload_sim(profile, config, instrs);
    const auto r2 =
        sampled->run_sampled(SamplingSpec{}, instrs * 40 + 1'000'000, instrs);

    EXPECT_EQ(r1.stop, r2.stop) << c.workload;
    EXPECT_EQ(r1.cycles, r2.cycles) << c.workload;
    EXPECT_EQ(r1.committed_instrs, r2.committed_instrs) << c.workload;
    EXPECT_EQ(r1.faults, r2.faults) << c.workload;
    EXPECT_FALSE(r2.sampling.enabled);
  }
}

// ---- sampled estimates ----------------------------------------------------

TEST(SampledSimulationTest, SampledRunProducesIpcEstimateWithInterval) {
  const auto profile = workloads::profile_by_name("mcf");
  const cpu::CoreConfig config = sim::machine_preset("skylake").core;
  const std::uint64_t instrs = 100'000;

  SamplingSpec spec;
  spec.fast_forward_interval = 10'000;
  spec.warmup_instrs = 1'000;
  spec.detail_instrs = 2'000;

  auto sim = workloads::make_workload_sim(profile, config, instrs);
  const auto r = sim->run_sampled(spec, 50'000'000, instrs);

  EXPECT_EQ(r.stop, cpu::StopReason::kMaxInstrs);
  EXPECT_TRUE(r.sampling.enabled);
  EXPECT_GE(r.sampling.windows, 2u);
  // Every architectural instruction is accounted: fast-forwarded +
  // detailed cover the whole budget (modulo commit-width overshoot).
  EXPECT_GE(r.committed_instrs, instrs);
  EXPECT_LT(r.committed_instrs, instrs + 64);
  EXPECT_EQ(r.committed_instrs, r.sampling.fast_forwarded +
                                    r.sampling.warmup_commits +
                                    r.sampling.measured_commits);
  EXPECT_GT(r.sampling.fast_forwarded, r.sampling.measured_commits);
  // The IPC estimate is physical and carries a finite interval.
  EXPECT_GT(r.ipc, 0.0);
  EXPECT_LE(r.ipc, 8.0);
  EXPECT_EQ(r.ipc, r.sampling.ipc_mean);
  EXPECT_GE(r.sampling.ipc_ci95, 0.0);
  // Cycles count the detailed windows only (warmup + measured).
  EXPECT_GT(r.cycles, 0u);
  EXPECT_GE(r.cycles, r.sampling.measured_cycles);
}

/// The experiment engine honors MachineSpec::sampling: a cell run under
/// an enabled spec reports sampled accounting.
TEST(SampledSimulationTest, RunWorkloadHonorsSamplingSpec) {
  const auto profile = workloads::profile_by_name("lbm");
  const cpu::CoreConfig config = sim::machine_preset("skylake").core;
  SamplingSpec spec;
  spec.fast_forward_interval = 5'000;
  spec.warmup_instrs = 500;
  spec.detail_instrs = 1'000;
  const auto r = workloads::run_workload(profile, config, 50'000, spec);
  EXPECT_TRUE(r.sampling.enabled);
  EXPECT_GE(r.sampling.windows, 1u);
  EXPECT_GE(r.committed_instrs, 50'000u);
}

/// Regression: a schedule that yields exactly one measured window used to
/// be a divide-by-zero hazard in the sample-stddev path. One sample has
/// no dispersion — stddev and ci95 must be exactly zero, never NaN.
TEST(SampledSimulationTest, SingleWindowRunReportsZeroDispersion) {
  const auto profile = workloads::profile_by_name("mcf");
  const cpu::CoreConfig config = sim::machine_preset("skylake").core;
  const std::uint64_t instrs = 10'000;

  SamplingSpec spec;
  spec.fast_forward_interval = 8'000;
  spec.warmup_instrs = 500;
  spec.detail_instrs = 1'000;

  auto sim = workloads::make_workload_sim(profile, config, instrs);
  const auto r = sim->run_sampled(spec, 50'000'000, instrs);

  EXPECT_TRUE(r.sampling.enabled);
  ASSERT_EQ(r.sampling.windows, 1u);
  EXPECT_GT(r.sampling.ipc_mean, 0.0);
  EXPECT_EQ(r.ipc, r.sampling.ipc_mean);
  EXPECT_EQ(r.sampling.ipc_stddev, 0.0);
  EXPECT_EQ(r.sampling.ipc_ci95, 0.0);
  // NaN would poison both == comparisons above, but be explicit: the
  // estimate itself must be a real number too.
  EXPECT_EQ(r.ipc, r.ipc);
}

TEST(SampledSimulationTest, EnabledSpecWithZeroDetailWindowIsRejected) {
  SamplingSpec spec;
  spec.fast_forward_interval = 1'000;
  spec.detail_instrs = 0;
  EXPECT_THROW(spec.validate(), std::invalid_argument);
  SamplingSpec disabled;
  disabled.detail_instrs = 0;  // fine while sampling is off
  EXPECT_NO_THROW(disabled.validate());
}

// ---- translation cache ----------------------------------------------------

TEST(FunctionalEngineTest, InvalidateTranslationsSeesRemappedPages) {
  constexpr Addr kText = 0x1000;
  constexpr Addr kData = 0x10000;
  constexpr Addr kAlt = 0x12000;

  isa::ProgramBuilder b(kText);
  b.movi(1, static_cast<std::int64_t>(kData));
  b.load(2, 1);
  b.halt();
  isa::Program program = b.build();
  program.set_entry(kText);

  memory::MainMemory mem;
  memory::PageTable pt;
  for (const Addr base : {kText, kData, kAlt}) {
    mem.map_page(page_of(base), memory::PagePerm::kUser);
  }
  pt.map_identity(page_of(kText), /*kernel_only=*/false);
  pt.map_identity(page_of(kData), /*kernel_only=*/false);
  mem.write64(kData, 0xAAAA);
  mem.write64(kAlt, 0xBBBB);

  FunctionalEngine engine(&program, &mem, &pt);
  ASSERT_EQ(engine.run(100), cpu::StopReason::kHalted);
  EXPECT_EQ(engine.reg(static_cast<RegIndex>(2)), 0xAAAAu);

  // Remap the data vpage onto the alternate frame and rerun from a
  // pristine state: the cached translation must not survive the
  // documented invalidation point.
  pt.map(page_of(kData), page_of(kAlt), /*kernel_only=*/false);
  engine.invalidate_translations();
  engine.restore(ArchCheckpoint{});
  ASSERT_EQ(engine.run(100), cpu::StopReason::kHalted);
  EXPECT_EQ(engine.reg(static_cast<RegIndex>(2)), 0xBBBBu);
}

}  // namespace
}  // namespace safespec
