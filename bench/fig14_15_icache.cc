// Figure 14: i-cache miss rate including the shadow i-cache, WFC vs
// baseline. Figure 15: percentage of fetch hits served by the shadow
// i-cache under WFC (paper shape: high — strong spatial locality means
// several instructions execute from a line while it is still shadowed).
#include <vector>

#include "common/stats.h"
#include "experiment/experiment.h"

int main(int argc, char** argv) {
  using namespace safespec;
  const auto opts = experiment::parse_bench_args(argc, argv);

  experiment::ExperimentSpec spec;
  spec.base_machine(experiment::resolve_machine(opts));
  spec.all_spec_profiles()
      .policy("baseline")
      .policy("WFC")
      .instrs(opts.instrs);
  const auto sweep = experiment::ParallelRunner(opts.threads).run(spec);
  const auto& profiles = spec.profile_axis();

  experiment::ResultTable fig14(
      "Fig 14: i-cache miss rate (including shadow i-cache)",
      {"WFC", "baseline"});
  std::vector<double> wfc_rates, base_rates;
  for (std::size_t p = 0; p < profiles.size(); ++p) {
    const double wfc = sweep.at(p, 1).icache_miss_rate_incl_shadow();
    const double base = sweep.at(p, 0).icache_miss_rate_incl_shadow();
    fig14.add_row(profiles[p].name, {wfc, base});
    fig14.annotate_last_row(sweep.stop_note(p));
    wfc_rates.push_back(wfc);
    base_rates.push_back(base);
  }
  fig14.add_row("Average",
                {arithmetic_mean(wfc_rates), arithmetic_mean(base_rates)});

  experiment::ResultTable fig15(
      "Fig 15: percentage of hits on shadow i-cache (WFC)", {"% of hits"});
  std::vector<double> pcts;
  for (std::size_t p = 0; p < profiles.size(); ++p) {
    const double pct = 100.0 * sweep.at(p, 1).shadow_icache_hit_fraction();
    fig15.add_row(profiles[p].name, {pct}, "%12.2f");
    fig15.annotate_last_row(sweep.stop_note(p));
    pcts.push_back(pct);
  }
  fig15.add_row("Average", {arithmetic_mean(pcts)}, "%12.2f");

  experiment::emit_tables({&fig14, &fig15}, opts);
  return 0;
}
