// Shared helpers for the figure/table reproduction benches: every bench
// prints the paper's rows/series as an aligned text table plus the
// geometric-mean / average summary column the figures carry.
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "common/stats.h"

namespace safespec::benchutil {

/// Committed-instruction budget per benchmark run. Large enough that the
/// occupancy/miss-rate distributions stabilise, small enough that the
/// whole 21-benchmark sweep stays interactive.
inline constexpr std::uint64_t kInstrsPerRun = 60'000;

inline void print_header(const std::string& title,
                         const std::vector<std::string>& columns) {
  std::printf("\n%s\n", title.c_str());
  std::printf("%-12s", "benchmark");
  for (const auto& c : columns) std::printf(" %12s", c.c_str());
  std::printf("\n");
  for (std::size_t i = 0; i < 12 + columns.size() * 13; ++i)
    std::printf("-");
  std::printf("\n");
}

inline void print_row(const std::string& name,
                      const std::vector<double>& values,
                      const char* format = "%12.4f") {
  std::printf("%-12s", name.c_str());
  for (double v : values) {
    std::printf(" ");
    std::printf(format, v);
  }
  std::printf("\n");
}

}  // namespace safespec::benchutil
