// Figure 16: commit rate of shadow state — the fraction of shadow
// entries that end up promoted to the primary structures rather than
// annulled. Paper shape: d-cache commit rate substantially higher than
// i-cache (loads issue later in the pipeline, so a shadowed d-line is
// more likely to belong to an instruction that commits), and both well
// below 1 (the shadow filters plenty of wrong-path state).
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "sim/sim_config.h"
#include "workloads/runner.h"

int main() {
  using namespace safespec;
  using benchutil::kInstrsPerRun;

  benchutil::print_header("Fig 16: commit rate of shadow state (WFC)",
                          {"i-cache", "d-cache"});
  double sum_i = 0, sum_d = 0;
  int n = 0;
  for (const auto& profile : workloads::spec2017_profiles()) {
    const auto wfc = workloads::run_workload(
        profile, sim::skylake_config(shadow::CommitPolicy::kWFC),
        kInstrsPerRun);
    benchutil::print_row(profile.name, {wfc.shadow_icache_commit_rate,
                                        wfc.shadow_dcache_commit_rate});
    sum_i += wfc.shadow_icache_commit_rate;
    sum_d += wfc.shadow_dcache_commit_rate;
    ++n;
  }
  benchutil::print_row("Average", {sum_i / n, sum_d / n});
  return 0;
}
