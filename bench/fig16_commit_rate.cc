// Figure 16: commit rate of shadow state — the fraction of shadow
// entries that end up promoted to the primary structures rather than
// annulled. Paper shape: d-cache commit rate substantially higher than
// i-cache (loads issue later in the pipeline, so a shadowed d-line is
// more likely to belong to an instruction that commits), and both well
// below 1 (the shadow filters plenty of wrong-path state).
#include <vector>

#include "common/stats.h"
#include "experiment/experiment.h"

int main(int argc, char** argv) {
  using namespace safespec;
  const auto opts = experiment::parse_bench_args(argc, argv);

  experiment::ExperimentSpec spec;
  spec.base_machine(experiment::resolve_machine(opts));
  spec.all_spec_profiles()
      .policy("WFC")
      .instrs(opts.instrs);
  const auto sweep = experiment::ParallelRunner(opts.threads).run(spec);
  const auto& profiles = spec.profile_axis();

  experiment::ResultTable table("Fig 16: commit rate of shadow state (WFC)",
                                {"i-cache", "d-cache"});
  std::vector<double> i_rates, d_rates;
  for (std::size_t p = 0; p < profiles.size(); ++p) {
    const auto& wfc = sweep.at(p, 0);
    table.add_row(profiles[p].name, {wfc.shadow_icache_commit_rate,
                                     wfc.shadow_dcache_commit_rate});
    table.annotate_last_row(sweep.stop_note(p));
    i_rates.push_back(wfc.shadow_icache_commit_rate);
    d_rates.push_back(wfc.shadow_dcache_commit_rate);
  }
  table.add_row("Average",
                {arithmetic_mean(i_rates), arithmetic_mean(d_rates)});
  experiment::emit_tables({&table}, opts);
  return 0;
}
