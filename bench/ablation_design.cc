// Ablation bench for the design decisions DESIGN.md marks ✦:
//   1. commit policy: WFB vs WFC occupancy and IPC on representative
//      profiles (the "benefit from doing WFB is small" claim, §IV-B);
//   2. direction predictor flavour: bimodal / gshare / perceptron effect
//      on normalized IPC (the defense must be predictor-agnostic);
//   3. retirement latency (commit_delay): Meltdown's race window — the
//      attack succeeds on the baseline only when the writeback-to-retire
//      gap exceeds the transmit chain's depth.
#include <cstdio>
#include <vector>

#include "attacks/attacks.h"
#include "bench_util.h"
#include "sim/sim_config.h"
#include "workloads/runner.h"

int main() {
  using namespace safespec;
  using benchutil::kInstrsPerRun;

  const std::vector<std::string> reps = {"mcf", "deepsjeng", "lbm", "gcc"};

  // ---- 1: WFB vs WFC ------------------------------------------------------
  benchutil::print_header(
      "Ablation 1: commit policy (IPC normalized to baseline)",
      {"WFB", "WFC"});
  for (const auto& name : reps) {
    const auto profile = workloads::profile_by_name(name);
    const auto base = workloads::run_workload(
        profile, sim::skylake_config(shadow::CommitPolicy::kBaseline),
        kInstrsPerRun);
    const auto wfb = workloads::run_workload(
        profile, sim::skylake_config(shadow::CommitPolicy::kWFB),
        kInstrsPerRun);
    const auto wfc = workloads::run_workload(
        profile, sim::skylake_config(shadow::CommitPolicy::kWFC),
        kInstrsPerRun);
    benchutil::print_row(name, {wfb.ipc / base.ipc, wfc.ipc / base.ipc});
  }
  std::printf("(paper §IV-B: the WFB performance benefit is small, so WFC's\n"
              " extra coverage — Meltdown — is worth it)\n");

  // ---- 2: predictor flavour -------------------------------------------------
  benchutil::print_header(
      "Ablation 2: direction predictor (WFC IPC normalized to baseline)",
      {"bimodal", "gshare", "perceptron"});
  for (const auto& name : reps) {
    const auto profile = workloads::profile_by_name(name);
    std::vector<double> row;
    for (auto kind : {predictor::DirectionKind::kBimodal,
                      predictor::DirectionKind::kGshare,
                      predictor::DirectionKind::kPerceptron}) {
      auto base_config = sim::skylake_config(shadow::CommitPolicy::kBaseline);
      auto wfc_config = sim::skylake_config(shadow::CommitPolicy::kWFC);
      base_config.predictor.direction.kind = kind;
      wfc_config.predictor.direction.kind = kind;
      const auto base =
          workloads::run_workload(profile, base_config, kInstrsPerRun);
      const auto wfc =
          workloads::run_workload(profile, wfc_config, kInstrsPerRun);
      row.push_back(base.ipc == 0 ? 0 : wfc.ipc / base.ipc);
    }
    benchutil::print_row(name, row);
  }
  std::printf("(SafeSpec's relative cost is stable across predictor\n"
              " flavours — the defense makes no predictor assumptions)\n");

  // ---- 3: Meltdown vs retirement latency -------------------------------------
  std::printf("\nAblation 3: Meltdown on the *baseline* vs commit_delay\n");
  std::printf("%-14s %8s\n", "commit_delay", "leaks?");
  for (int delay : {0, 1, 2, 3, 4, 8}) {
    const auto out = attacks::run_meltdown_with_delay(
        shadow::CommitPolicy::kBaseline, 0x7E, delay);
    std::printf("%-14d %8s\n", delay, out.leaked ? "LEAK" : "no");
  }
  std::printf("(the transmit chain is ~3 cycles deep; once the\n"
              " writeback-to-retire gap covers it, the race is won —\n"
              " this is the P1 window real retirement pipelines expose)\n");
  return 0;
}
