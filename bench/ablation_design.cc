// Ablation bench for the design decisions DESIGN.md marks ✦:
//   1. commit policy: WFB vs WFC occupancy and IPC on representative
//      profiles (the "benefit from doing WFB is small" claim, §IV-B);
//   2. direction predictor flavour: bimodal / gshare / perceptron effect
//      on normalized IPC (the defense must be predictor-agnostic);
//   3. retirement latency (commit_delay): Meltdown's race window — the
//      attack succeeds on the baseline only when the writeback-to-retire
//      gap exceeds the transmit chain's depth.
#include <cstdio>
#include <string>
#include <vector>

#include "attacks/attacks.h"
#include "experiment/experiment.h"

int main(int argc, char** argv) {
  using namespace safespec;
  const auto opts = experiment::parse_bench_args(argc, argv);
  const experiment::ParallelRunner runner(opts.threads);
  const auto machine = experiment::resolve_machine(opts);

  const std::vector<std::string> reps = {"mcf", "deepsjeng", "lbm", "gcc"};

  // ---- 1: WFB vs WFC ------------------------------------------------------
  experiment::ExperimentSpec policy_spec;
  policy_spec.base_machine(machine);
  policy_spec.profile_names(reps)
      .policy("baseline")
      .policy("WFB")
      .policy("WFC")
      .instrs(opts.instrs);
  const auto policy_sweep = runner.run(policy_spec);

  experiment::ResultTable ablation1(
      "Ablation 1: commit policy (IPC normalized to baseline)",
      {"WFB", "WFC"});
  for (std::size_t p = 0; p < reps.size(); ++p) {
    const double base_ipc = policy_sweep.at(p, 0).ipc;
    ablation1.add_row(
        reps[p],
        {base_ipc == 0 ? 0 : policy_sweep.at(p, 1).ipc / base_ipc,
         base_ipc == 0 ? 0 : policy_sweep.at(p, 2).ipc / base_ipc});
  }
  ablation1.print(stdout);
  std::printf("(paper §IV-B: the WFB performance benefit is small, so WFC's\n"
              " extra coverage — Meltdown — is worth it)\n");

  // ---- 2: predictor flavour -------------------------------------------------
  // One variant per (predictor kind, policy) pair: baseline and WFC must
  // share the predictor flavour for the normalization to be meaningful.
  const struct {
    const char* name;
    predictor::DirectionKind kind;
  } kinds[] = {
      {"bimodal", predictor::DirectionKind::kBimodal},
      {"gshare", predictor::DirectionKind::kGshare},
      {"perceptron", predictor::DirectionKind::kPerceptron},
  };
  experiment::ExperimentSpec predictor_spec;
  predictor_spec.base_machine(machine);
  predictor_spec.profile_names(reps).instrs(opts.instrs);
  for (const auto& k : kinds) {
    const auto kind = k.kind;
    const auto set_kind = [kind](cpu::CoreConfig& c) {
      c.predictor.direction.kind = kind;
    };
    predictor_spec.policy("baseline", set_kind);
    predictor_spec.policy("WFC", set_kind);
  }
  const auto predictor_sweep = runner.run(predictor_spec);

  experiment::ResultTable ablation2(
      "Ablation 2: direction predictor (WFC IPC normalized to baseline)",
      {"bimodal", "gshare", "perceptron"});
  for (std::size_t p = 0; p < reps.size(); ++p) {
    std::vector<double> row;
    for (std::size_t k = 0; k < 3; ++k) {
      const double base_ipc = predictor_sweep.at(p, 2 * k).ipc;
      const double wfc_ipc = predictor_sweep.at(p, 2 * k + 1).ipc;
      row.push_back(base_ipc == 0 ? 0 : wfc_ipc / base_ipc);
    }
    ablation2.add_row(reps[p], row);
  }
  ablation2.print(stdout);
  std::printf("(SafeSpec's relative cost is stable across predictor\n"
              " flavours — the defense makes no predictor assumptions)\n");

  // ---- 3: Meltdown vs retirement latency -------------------------------------
  const std::vector<int> delays = {0, 1, 2, 3, 4, 8};
  std::vector<attacks::AttackOutcome> outcomes(delays.size());
  runner.parallel_for(delays.size(), [&](std::size_t i) {
    outcomes[i] = attacks::run_meltdown_with_delay("baseline", 0x7E,
                                                   delays[i]);
  });
  std::printf("\nAblation 3: Meltdown on the *baseline* vs commit_delay\n");
  std::printf("%-14s %8s\n", "commit_delay", "leaks?");
  for (std::size_t i = 0; i < delays.size(); ++i) {
    std::printf("%-14d %8s\n", delays[i],
                outcomes[i].leaked ? "LEAK" : "no");
  }
  std::printf("(the transmit chain is ~3 cycles deep; once the\n"
              " writeback-to-retire gap covers it, the race is won —\n"
              " this is the P1 window real retirement pipelines expose)\n");

  experiment::write_files({&ablation1, &ablation2}, opts);
  return 0;
}
