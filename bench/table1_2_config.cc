// Tables I & II: echoes the simulated CPU and memory-system
// configuration exactly as the evaluation uses it.
#include <cstdio>

#include "experiment/experiment.h"

int main(int argc, char** argv) {
  using namespace safespec;
  const auto opts = experiment::parse_bench_args(argc, argv);

  std::printf("=== Tables I & II: simulated CPU configuration ===\n\n");
  const auto variant =
      experiment::named_variant(experiment::resolve_machine(opts), "WFC");
  const auto& c = variant.config;
  std::printf("%s\n", sim::describe_config(c).c_str());

  if (!opts.csv_path.empty() || !opts.json_path.empty()) {
    experiment::ResultTable table("Tables I & II: simulated configuration",
                                  {"value"});
    const struct {
      const char* name;
      double value;
    } params[] = {
        {"issue_width", static_cast<double>(c.issue_width)},
        {"iq_entries", static_cast<double>(c.iq_entries)},
        {"rob_entries", static_cast<double>(c.rob_entries)},
        {"ldq_entries", static_cast<double>(c.ldq_entries)},
        {"stq_entries", static_cast<double>(c.stq_entries)},
        {"itlb_entries", static_cast<double>(c.itlb.entries)},
        {"dtlb_entries", static_cast<double>(c.dtlb.entries)},
        {"l1i_kb", c.hierarchy.l1i.size_bytes / 1024.0},
        {"l1d_kb", c.hierarchy.l1d.size_bytes / 1024.0},
        {"l2_kb", c.hierarchy.l2.size_bytes / 1024.0},
        {"l3_kb", c.hierarchy.l3.size_bytes / 1024.0},
        {"memory_latency", static_cast<double>(c.hierarchy.memory_latency)},
        {"shadow_dcache", static_cast<double>(c.shadow_dcache.entries)},
        {"shadow_icache", static_cast<double>(c.shadow_icache.entries)},
        {"shadow_dtlb", static_cast<double>(c.shadow_dtlb.entries)},
        {"shadow_itlb", static_cast<double>(c.shadow_itlb.entries)},
    };
    for (const auto& p : params) table.add_row(p.name, {p.value}, "%12.0f");
    experiment::write_files({&table}, opts);
  }
  return 0;
}
