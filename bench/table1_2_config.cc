// Tables I & II: echoes the simulated CPU and memory-system
// configuration exactly as the evaluation uses it.
#include <cstdio>

#include "sim/sim_config.h"

int main() {
  using namespace safespec;
  std::printf("=== Tables I & II: simulated CPU configuration ===\n\n");
  const auto config = sim::skylake_config(shadow::CommitPolicy::kWFC);
  std::printf("%s\n", sim::describe_config(config).c_str());
  return 0;
}
