// Figure 11: IPC of SafeSpec (WFC, worst-case-sized shadow structures)
// normalised to the insecure baseline, per benchmark, plus the geometric
// mean. Paper shape: near 1.0 everywhere with a small geomean gain.
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "common/stats.h"
#include "sim/sim_config.h"
#include "workloads/runner.h"

int main() {
  using namespace safespec;
  using benchutil::kInstrsPerRun;

  benchutil::print_header(
      "Fig 11: IPC relative to non-secure OoO execution (WFC / baseline)",
      {"base IPC", "WFC IPC", "normalized"});

  std::vector<double> normalized;
  for (const auto& profile : workloads::spec2017_profiles()) {
    const auto base = workloads::run_workload(
        profile, sim::skylake_config(shadow::CommitPolicy::kBaseline),
        kInstrsPerRun);
    const auto wfc = workloads::run_workload(
        profile, sim::skylake_config(shadow::CommitPolicy::kWFC),
        kInstrsPerRun);
    const double norm = base.ipc == 0 ? 0 : wfc.ipc / base.ipc;
    normalized.push_back(norm);
    benchutil::print_row(profile.name, {base.ipc, wfc.ipc, norm});
  }
  std::printf("%-12s %12s %12s %12.4f\n", "GeoMean", "", "",
              geometric_mean(normalized));
  return 0;
}
