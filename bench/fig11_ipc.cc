// Figure 11: IPC of SafeSpec (WFC, worst-case-sized shadow structures)
// normalised to the insecure baseline, per benchmark, plus the geometric
// mean. Paper shape: near 1.0 everywhere with a small geomean gain.
#include <optional>
#include <vector>

#include "common/stats.h"
#include "experiment/experiment.h"

int main(int argc, char** argv) {
  using namespace safespec;
  const auto opts = experiment::parse_bench_args(argc, argv);

  experiment::ExperimentSpec spec;
  spec.base_machine(experiment::resolve_machine(opts));
  spec.all_spec_profiles()
      .policy("baseline")
      .policy("WFC")
      .instrs(opts.instrs);
  const auto sweep = experiment::ParallelRunner(opts.threads).run(spec);

  experiment::ResultTable table(
      "Fig 11: IPC relative to non-secure OoO execution (WFC / baseline)",
      {"base IPC", "WFC IPC", "normalized"});
  std::vector<double> normalized;
  const auto& profiles = spec.profile_axis();
  for (std::size_t p = 0; p < profiles.size(); ++p) {
    const auto& base = sweep.at(p, 0);
    const auto& wfc = sweep.at(p, 1);
    const double norm = base.ipc == 0 ? 0 : wfc.ipc / base.ipc;
    normalized.push_back(norm);
    table.add_row(profiles[p].name, {base.ipc, wfc.ipc, norm});
    table.annotate_last_row(sweep.stop_note(p));
  }
  table.add_partial_row("GeoMean", {std::nullopt, std::nullopt,
                                    geometric_mean(normalized)});
  experiment::emit_tables({&table}, opts);
  return 0;
}
