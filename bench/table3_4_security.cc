// Tables III & IV: end-to-end security evaluation.
//
// Runs every attack PoC under baseline / WFB / WFC and prints the paper's
// check-mark tables (plus the baseline column, which the paper leaves
// implicit: everything leaks on an unprotected core). The Transient row
// (Table IV) additionally demonstrates the §V sizing argument: the TSA
// channel opens on an undersized shadow and closes under worst-case
// ("Secure") sizing for both full-handling policies.
//
// Each attack suite and TSA configuration is an independent cell (own
// simulator), so the whole evaluation fans out across the experiment
// engine's thread pool; printing stays serial and deterministic.
#include <cstdio>
#include <vector>

#include "attacks/attacks.h"
#include "experiment/experiment.h"

namespace {

const char* mark(bool stopped) { return stopped ? "YES" : "no "; }

}  // namespace

int main(int argc, char** argv) {
  using namespace safespec;
  using attacks::AttackOutcome;

  const auto opts = experiment::parse_bench_args(argc, argv);
  const experiment::ParallelRunner runner(opts.threads);

  std::printf("Running attack suite under baseline / WFB / WFC...\n");
  const std::string policies[] = {"baseline", "WFB", "WFC"};
  std::vector<std::vector<AttackOutcome>> suites(3);
  runner.parallel_for(
      3, [&](std::size_t i) { suites[i] = attacks::run_all_attacks(policies[i]); });
  const auto& base = suites[0];
  const auto& wfb = suites[1];
  const auto& wfc = suites[2];

  // TSA cells: the §V sizing ablation grid, run concurrently. The
  // worst-case-sized "Secure" rows (72 entries, drop/stall) are the
  // grid's last two cells — no need to run them twice.
  std::vector<attacks::TsaConfig> tsa_configs;
  for (int entries : {4, 8, 16, 32, 72}) {
    for (auto fp : {shadow::FullPolicy::kDrop, shadow::FullPolicy::kStall}) {
      tsa_configs.push_back({"WFC", entries, fp});
    }
  }
  std::vector<attacks::TsaOutcome> tsa_outcomes(tsa_configs.size());
  runner.parallel_for(tsa_configs.size(), [&](std::size_t i) {
    tsa_outcomes[i] = attacks::run_tsa_attack(tsa_configs[i]);
  });

  std::printf("\n=== Attack outcomes (leaked secret vs planted) ===\n");
  std::printf("%-12s %-9s %-8s %-10s %s\n", "attack", "policy", "leaked",
              "recovered", "detail");
  for (const auto* suite : {&base, &wfb, &wfc}) {
    for (const AttackOutcome& a : *suite) {
      std::printf("%-12s %-9s %-8s %-10d %s\n", a.name.c_str(),
                  a.policy.c_str(), a.leaked ? "LEAKED" : "-",
                  a.recovered, a.detail.c_str());
    }
  }

  // Table III layout: is the attack *stopped*?
  std::printf("\n=== Table III: security analysis of Meltdown/Spectre ===\n");
  std::printf("%-14s %8s %8s\n", "", "WFC", "WFB");
  std::printf("%-14s %8s %8s\n", "Meltdown", mark(!wfc[2].leaked),
              mark(!wfb[2].leaked));
  std::printf("%-14s %8s %8s\n", "Spectre 1/2",
              mark(!wfc[0].leaked && !wfc[1].leaked),
              mark(!wfb[0].leaked && !wfb[1].leaked));

  // Table IV: coverage of Spectre-style attacks on other structures.
  std::printf("\n=== Table IV: coverage on other structures ===\n");
  std::printf("%-14s %8s %8s\n", "", "WFC", "WFB");
  std::printf("%-14s %8s %8s\n", "I-cache", mark(!wfc[3].leaked),
              mark(!wfb[3].leaked));
  std::printf("%-14s %8s %8s\n", "I-TLB", mark(!wfc[4].leaked),
              mark(!wfb[4].leaked));
  std::printf("%-14s %8s %8s\n", "D-TLB", mark(!wfc[5].leaked),
              mark(!wfb[5].leaked));

  // Transient row: secure sizing closes the channel (both full policies).
  const auto& tsa_drop = tsa_outcomes[tsa_outcomes.size() - 2];
  const auto& tsa_stall = tsa_outcomes[tsa_outcomes.size() - 1];
  std::printf("%-14s %8s %8s   (worst-case sizing; drop/stall)\n",
              "Transient", mark(!tsa_drop.leaked), mark(!tsa_stall.leaked));

  // §V ablation: the same channel on an undersized shadow structure.
  std::printf(
      "\n=== TSA sizing ablation (WFC, shadow d-cache entries swept) ===\n");
  std::printf("%-8s %-7s %10s %14s %14s %8s\n", "entries", "policy",
              "bit leaked", "probe(bit0)", "probe(bit1)", "leaks?");
  for (std::size_t i = 0; i < tsa_configs.size(); ++i) {
    const auto& config = tsa_configs[i];
    const auto& out = tsa_outcomes[i];
    std::printf("%-8d %-7s %10d %14llu %14llu %8s\n", config.shadow_entries,
                shadow::to_string(config.full_policy), out.recovered_bit,
                static_cast<unsigned long long>(out.probe_latency_bit0),
                static_cast<unsigned long long>(out.probe_latency_bit1),
                out.leaked ? "LEAK" : "closed");
  }

  if (!opts.csv_path.empty() || !opts.json_path.empty()) {
    experiment::ResultTable stopped(
        "Tables III/IV: attack stopped (1=stopped)", {"WFC", "WFB"});
    const struct {
      const char* name;
      bool wfc_stopped;
      bool wfb_stopped;
    } rows[] = {
        {"Meltdown", !wfc[2].leaked, !wfb[2].leaked},
        {"Spectre 1/2", !wfc[0].leaked && !wfc[1].leaked,
         !wfb[0].leaked && !wfb[1].leaked},
        {"I-cache", !wfc[3].leaked, !wfb[3].leaked},
        {"I-TLB", !wfc[4].leaked, !wfb[4].leaked},
        {"D-TLB", !wfc[5].leaked, !wfb[5].leaked},
    };
    for (const auto& row : rows) {
      stopped.add_row(row.name, {row.wfc_stopped ? 1.0 : 0.0,
                                 row.wfb_stopped ? 1.0 : 0.0},
                      "%12.0f");
    }
    // Both Transient cells are WFC under worst-case sizing (they differ
    // only in full policy), so they get their own labelled table rather
    // than being squeezed into the WFC/WFB columns.
    experiment::ResultTable transient(
        "Transient attack stopped under worst-case sizing (1=stopped)",
        {"drop", "stall"});
    transient.add_row("Transient", {tsa_drop.leaked ? 0.0 : 1.0,
                                    tsa_stall.leaked ? 0.0 : 1.0},
                      "%12.0f");

    experiment::ResultTable ablation(
        "TSA sizing ablation (WFC, shadow d-cache entries swept)",
        {"entries", "bit leaked", "probe(bit0)", "probe(bit1)", "leaks"});
    for (std::size_t i = 0; i < tsa_configs.size(); ++i) {
      const auto& config = tsa_configs[i];
      const auto& out = tsa_outcomes[i];
      ablation.add_row(
          std::string(shadow::to_string(config.full_policy)) + "-" +
              std::to_string(config.shadow_entries),
          {static_cast<double>(config.shadow_entries),
           static_cast<double>(out.recovered_bit),
           static_cast<double>(out.probe_latency_bit0),
           static_cast<double>(out.probe_latency_bit1),
           out.leaked ? 1.0 : 0.0},
          "%12.0f");
    }
    experiment::write_files({&stopped, &transient, &ablation}, opts);
  }
  return 0;
}
