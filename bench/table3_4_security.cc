// Tables III & IV: end-to-end security evaluation, across every
// registered mitigation family.
//
// Runs every attack PoC under baseline / WFB / WFC / SHARP / detect-only
// and prints the paper's check-mark tables (plus the baseline column,
// which the paper leaves implicit: everything leaks on an unprotected
// core). The Transient row (Table IV) additionally demonstrates the §V
// sizing argument: the TSA channel opens on an undersized shadow and
// closes under worst-case ("Secure") sizing for both full-handling
// policies.
//
// The SHARP-family extension (beyond the paper): the cross-core suite is
// run under all five policies, showing which *family* stops which
// channel. The shadow policies stop the transient transmission itself
// (nothing speculative ever reaches the shared levels), SHARP stops the
// eviction-based attack at the replacement level (the spy cannot push
// the victim's bounds word out of the shared cache) but not flush+reload
// (clflush is architectural and coherence-global), and detect-only stops
// nothing but counts alarms — the telemetry columns make the trade
// visible. See docs/mitigations.md for the full comparison.
//
// Each attack suite and TSA configuration is an independent cell (own
// simulator), so the whole evaluation fans out across the experiment
// engine's thread pool; printing stays serial and deterministic.
#include <cstdio>
#include <string>
#include <vector>

#include "attacks/attacks.h"
#include "experiment/experiment.h"

namespace {

const char* mark(bool stopped) { return stopped ? "YES" : "no "; }

}  // namespace

int main(int argc, char** argv) {
  using namespace safespec;
  using attacks::AttackOutcome;

  const auto opts = experiment::parse_bench_args(argc, argv);
  const experiment::ParallelRunner runner(opts.threads);

  const std::vector<std::string> policies = {"baseline", "WFB", "WFC",
                                             "SHARP", "detect-only"};
  std::printf("Running attack suites under");
  for (const auto& p : policies) std::printf(" %s", p.c_str());
  std::printf("...\n");

  // One cell per (policy, suite): single-core Table III/IV PoCs and the
  // cross-core suite, all fanned out together.
  const std::size_t n = policies.size();
  std::vector<std::vector<AttackOutcome>> suites(n);
  std::vector<std::vector<AttackOutcome>> cross(n);
  runner.parallel_for(2 * n, [&](std::size_t i) {
    if (i < n) {
      suites[i] = attacks::run_all_attacks(policies[i]);
    } else {
      cross[i - n] = attacks::run_cross_core_attacks(policies[i - n]);
    }
  });
  const auto& wfb = suites[1];
  const auto& wfc = suites[2];
  const auto& sharp = suites[3];
  const auto& detect = suites[4];

  // TSA cells: the §V sizing ablation grid, run concurrently. The
  // worst-case-sized "Secure" rows (72 entries, drop/stall) are the
  // grid's last two cells — no need to run them twice.
  std::vector<attacks::TsaConfig> tsa_configs;
  for (int entries : {4, 8, 16, 32, 72}) {
    for (auto fp : {shadow::FullPolicy::kDrop, shadow::FullPolicy::kStall}) {
      tsa_configs.push_back({"WFC", entries, fp});
    }
  }
  std::vector<attacks::TsaOutcome> tsa_outcomes(tsa_configs.size());
  runner.parallel_for(tsa_configs.size(), [&](std::size_t i) {
    tsa_outcomes[i] = attacks::run_tsa_attack(tsa_configs[i]);
  });

  std::printf("\n=== Attack outcomes (leaked secret vs planted) ===\n");
  std::printf("%-24s %-12s %-8s %-10s %s\n", "attack", "policy", "leaked",
              "recovered", "detail");
  for (std::size_t i = 0; i < n; ++i) {
    for (const auto* suite : {&suites[i], &cross[i]}) {
      for (const AttackOutcome& a : *suite) {
        std::printf("%-24s %-12s %-8s %-10d %s\n", a.name.c_str(),
                    a.policy.c_str(), a.leaked ? "LEAKED" : "-",
                    a.recovered, a.detail.c_str());
      }
    }
  }

  // Table III layout: is the attack *stopped*? SHARP and detect-only do
  // not shadow speculation, so the single-core transient attacks go
  // through exactly as on the baseline — the honest result for a
  // replacement-level defense (its target is the cross-core columns
  // below).
  std::printf("\n=== Table III: security analysis of Meltdown/Spectre ===\n");
  std::printf("%-14s %8s %8s %8s %8s\n", "", "WFC", "WFB", "SHARP", "detect");
  std::printf("%-14s %8s %8s %8s %8s\n", "Meltdown", mark(!wfc[2].leaked),
              mark(!wfb[2].leaked), mark(!sharp[2].leaked),
              mark(!detect[2].leaked));
  std::printf("%-14s %8s %8s %8s %8s\n", "Spectre 1/2",
              mark(!wfc[0].leaked && !wfc[1].leaked),
              mark(!wfb[0].leaked && !wfb[1].leaked),
              mark(!sharp[0].leaked && !sharp[1].leaked),
              mark(!detect[0].leaked && !detect[1].leaked));

  // Table IV: coverage of Spectre-style attacks on other structures.
  std::printf("\n=== Table IV: coverage on other structures ===\n");
  std::printf("%-14s %8s %8s %8s %8s\n", "", "WFC", "WFB", "SHARP", "detect");
  const struct {
    const char* name;
    std::size_t index;
  } structures[] = {{"I-cache", 3}, {"I-TLB", 4}, {"D-TLB", 5}};
  for (const auto& s : structures) {
    std::printf("%-14s %8s %8s %8s %8s\n", s.name,
                mark(!wfc[s.index].leaked), mark(!wfb[s.index].leaked),
                mark(!sharp[s.index].leaked), mark(!detect[s.index].leaked));
  }

  // Transient row: secure sizing closes the channel (both full policies).
  const auto& tsa_drop = tsa_outcomes[tsa_outcomes.size() - 2];
  const auto& tsa_stall = tsa_outcomes[tsa_outcomes.size() - 1];
  std::printf("%-14s %8s %8s   (worst-case sizing; drop/stall)\n",
              "Transient", mark(!tsa_drop.leaked), mark(!tsa_stall.leaked));

  // Cross-core family comparison (cores=2, shared L2/L3): which family
  // stops which channel, and who raises alarms while it happens.
  std::printf("\n=== Cross-core attacks by mitigation family ===\n");
  std::printf("%-24s %-12s %8s %8s %10s %10s\n", "attack", "policy",
              "stopped", "xevict", "alarms", "detections");
  for (std::size_t i = 0; i < n; ++i) {
    for (const AttackOutcome& a : cross[i]) {
      const bool telemetry_only = a.secret < 0;  // prime-detect has no secret
      std::printf("%-24s %-12s %8s %8llu %10llu %10llu\n", a.name.c_str(),
                  a.policy.c_str(), telemetry_only ? "n/a" : mark(!a.leaked),
                  static_cast<unsigned long long>(a.cross_core_evictions),
                  static_cast<unsigned long long>(a.sharp_alarms),
                  static_cast<unsigned long long>(a.sharp_detections));
    }
  }

  // §V ablation: the same channel on an undersized shadow structure.
  std::printf(
      "\n=== TSA sizing ablation (WFC, shadow d-cache entries swept) ===\n");
  std::printf("%-8s %-7s %10s %14s %14s %8s\n", "entries", "policy",
              "bit leaked", "probe(bit0)", "probe(bit1)", "leaks?");
  for (std::size_t i = 0; i < tsa_configs.size(); ++i) {
    const auto& config = tsa_configs[i];
    const auto& out = tsa_outcomes[i];
    std::printf("%-8d %-7s %10d %14llu %14llu %8s\n", config.shadow_entries,
                shadow::to_string(config.full_policy), out.recovered_bit,
                static_cast<unsigned long long>(out.probe_latency_bit0),
                static_cast<unsigned long long>(out.probe_latency_bit1),
                out.leaked ? "LEAK" : "closed");
  }

  if (!opts.csv_path.empty() || !opts.json_path.empty()) {
    experiment::ResultTable stopped(
        "Tables III/IV: attack stopped (1=stopped)",
        {"WFC", "WFB", "SHARP", "detect-only"});
    const struct {
      const char* name;
      std::size_t index;  // run_all_attacks order; Spectre handled below
    } rows[] = {
        {"Meltdown", 2}, {"I-cache", 3}, {"I-TLB", 4}, {"D-TLB", 5},
    };
    const auto stopped_at = [](const std::vector<AttackOutcome>& suite,
                               std::size_t index) {
      return suite[index].leaked ? 0.0 : 1.0;
    };
    stopped.add_row("Spectre 1/2",
                    {!wfc[0].leaked && !wfc[1].leaked ? 1.0 : 0.0,
                     !wfb[0].leaked && !wfb[1].leaked ? 1.0 : 0.0,
                     !sharp[0].leaked && !sharp[1].leaked ? 1.0 : 0.0,
                     !detect[0].leaked && !detect[1].leaked ? 1.0 : 0.0},
                    "%12.0f");
    for (const auto& row : rows) {
      stopped.add_row(row.name,
                      {stopped_at(wfc, row.index), stopped_at(wfb, row.index),
                       stopped_at(sharp, row.index),
                       stopped_at(detect, row.index)},
                      "%12.0f");
    }

    // Both Transient cells are WFC under worst-case sizing (they differ
    // only in full policy), so they get their own labelled table rather
    // than being squeezed into the policy columns.
    experiment::ResultTable transient(
        "Transient attack stopped under worst-case sizing (1=stopped)",
        {"drop", "stall"});
    transient.add_row("Transient", {tsa_drop.leaked ? 0.0 : 1.0,
                                    tsa_stall.leaked ? 0.0 : 1.0},
                      "%12.0f");

    // Cross-core rows: one per (attack, policy), with the telemetry the
    // SHARP family adds. "stopped" is blank (-1) for the prime-detect
    // sweep, which plants no secret.
    experiment::ResultTable xcore(
        "Cross-core attacks by mitigation family",
        {"stopped", "xevict", "alarms", "detections"});
    for (std::size_t i = 0; i < n; ++i) {
      for (const AttackOutcome& a : cross[i]) {
        xcore.add_row(a.name + "/" + a.policy,
                      {a.secret < 0 ? -1.0 : (a.leaked ? 0.0 : 1.0),
                       static_cast<double>(a.cross_core_evictions),
                       static_cast<double>(a.sharp_alarms),
                       static_cast<double>(a.sharp_detections)},
                      "%12.0f");
      }
    }

    experiment::ResultTable ablation(
        "TSA sizing ablation (WFC, shadow d-cache entries swept)",
        {"entries", "bit leaked", "probe(bit0)", "probe(bit1)", "leaks"});
    for (std::size_t i = 0; i < tsa_configs.size(); ++i) {
      const auto& config = tsa_configs[i];
      const auto& out = tsa_outcomes[i];
      ablation.add_row(
          std::string(shadow::to_string(config.full_policy)) + "-" +
              std::to_string(config.shadow_entries),
          {static_cast<double>(config.shadow_entries),
           static_cast<double>(out.recovered_bit),
           static_cast<double>(out.probe_latency_bit0),
           static_cast<double>(out.probe_latency_bit1),
           out.leaked ? 1.0 : 0.0},
          "%12.0f");
    }
    experiment::write_files({&stopped, &transient, &xcore, &ablation}, opts);
  }
  return 0;
}
