// Tables III & IV: end-to-end security evaluation.
//
// Runs every attack PoC under baseline / WFB / WFC and prints the paper's
// check-mark tables (plus the baseline column, which the paper leaves
// implicit: everything leaks on an unprotected core). The Transient row
// (Table IV) additionally demonstrates the §V sizing argument: the TSA
// channel opens on an undersized shadow and closes under worst-case
// ("Secure") sizing for both full-handling policies.
#include <cstdio>

#include "attacks/attacks.h"

namespace {

const char* mark(bool stopped) { return stopped ? "YES" : "no "; }

}  // namespace

int main() {
  using namespace safespec;
  using attacks::AttackOutcome;
  using shadow::CommitPolicy;

  std::printf("Running attack suite under baseline / WFB / WFC...\n");
  const auto base = attacks::run_all_attacks(CommitPolicy::kBaseline);
  const auto wfb = attacks::run_all_attacks(CommitPolicy::kWFB);
  const auto wfc = attacks::run_all_attacks(CommitPolicy::kWFC);

  std::printf("\n=== Attack outcomes (leaked secret vs planted) ===\n");
  std::printf("%-12s %-9s %-8s %-10s %s\n", "attack", "policy", "leaked",
              "recovered", "detail");
  for (const auto* suite : {&base, &wfb, &wfc}) {
    for (const AttackOutcome& a : *suite) {
      std::printf("%-12s %-9s %-8s %-10d %s\n", a.name.c_str(),
                  shadow::to_string(a.policy), a.leaked ? "LEAKED" : "-",
                  a.recovered, a.detail.c_str());
    }
  }

  // Table III layout: is the attack *stopped*?
  std::printf("\n=== Table III: security analysis of Meltdown/Spectre ===\n");
  std::printf("%-14s %8s %8s\n", "", "WFC", "WFB");
  std::printf("%-14s %8s %8s\n", "Meltdown", mark(!wfc[2].leaked),
              mark(!wfb[2].leaked));
  std::printf("%-14s %8s %8s\n", "Spectre 1/2",
              mark(!wfc[0].leaked && !wfc[1].leaked),
              mark(!wfb[0].leaked && !wfb[1].leaked));

  // Table IV: coverage of Spectre-style attacks on other structures.
  std::printf("\n=== Table IV: coverage on other structures ===\n");
  std::printf("%-14s %8s %8s\n", "", "WFC", "WFB");
  std::printf("%-14s %8s %8s\n", "I-cache", mark(!wfc[3].leaked),
              mark(!wfb[3].leaked));
  std::printf("%-14s %8s %8s\n", "I-TLB", mark(!wfc[4].leaked),
              mark(!wfb[4].leaked));
  std::printf("%-14s %8s %8s\n", "D-TLB", mark(!wfc[5].leaked),
              mark(!wfb[5].leaked));

  // Transient row: secure sizing closes the channel (both full policies).
  attacks::TsaConfig secure_drop{CommitPolicy::kWFC, 72,
                                 shadow::FullPolicy::kDrop};
  attacks::TsaConfig secure_stall{CommitPolicy::kWFC, 72,
                                  shadow::FullPolicy::kStall};
  const auto tsa_drop = attacks::run_tsa_attack(secure_drop);
  const auto tsa_stall = attacks::run_tsa_attack(secure_stall);
  std::printf("%-14s %8s %8s   (worst-case sizing; drop/stall)\n",
              "Transient", mark(!tsa_drop.leaked), mark(!tsa_stall.leaked));

  // §V ablation: the same channel on an undersized shadow structure.
  std::printf(
      "\n=== TSA sizing ablation (WFC, shadow d-cache entries swept) ===\n");
  std::printf("%-8s %-7s %10s %14s %14s %8s\n", "entries", "policy",
              "bit leaked", "probe(bit0)", "probe(bit1)", "leaks?");
  for (int entries : {4, 8, 16, 32, 72}) {
    for (auto fp : {shadow::FullPolicy::kDrop, shadow::FullPolicy::kStall}) {
      attacks::TsaConfig config{CommitPolicy::kWFC, entries, fp};
      const auto out = attacks::run_tsa_attack(config);
      std::printf("%-8d %-7s %10d %14llu %14llu %8s\n", entries,
                  shadow::to_string(fp), out.recovered_bit,
                  static_cast<unsigned long long>(out.probe_latency_bit0),
                  static_cast<unsigned long long>(out.probe_latency_bit1),
                  out.leaked ? "LEAK" : "closed");
    }
  }
  return 0;
}
