// Figures 6-9: shadow structure size needed to hold 99.99% of the
// speculative state, per SPEC2017-like benchmark, under WFC and WFB.
//
// Method (as in §IV-B): run each benchmark with worst-case-sized shadow
// structures, sample their occupancy every cycle, and report the 99.99th
// percentile of the occupancy distribution. Expected shape: small
// requirements everywhere (tens of entries), WFB <= WFC, shadow d-cache
// occasionally approaching the LDQ bound.
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "sim/sim_config.h"
#include "workloads/runner.h"

int main() {
  using namespace safespec;
  using benchutil::kInstrsPerRun;

  struct Row {
    std::string name;
    sim::SimResult wfc;
    sim::SimResult wfb;
  };
  std::vector<Row> rows;
  for (const auto& profile : workloads::spec2017_profiles()) {
    Row row;
    row.name = profile.name;
    row.wfc = workloads::run_workload(
        profile, sim::skylake_config(shadow::CommitPolicy::kWFC),
        kInstrsPerRun);
    row.wfb = workloads::run_workload(
        profile, sim::skylake_config(shadow::CommitPolicy::kWFB),
        kInstrsPerRun);
    rows.push_back(row);
  }

  const struct {
    const char* title;
    std::uint64_t sim::SimResult::*field;
  } figures[] = {
      {"Fig 6: shadow i-cache entries for 99.99% of accesses",
       &sim::SimResult::shadow_icache_p9999},
      {"Fig 7: shadow d-cache entries for 99.99% of accesses",
       &sim::SimResult::shadow_dcache_p9999},
      {"Fig 8: shadow iTLB entries for 99.99% of accesses",
       &sim::SimResult::shadow_itlb_p9999},
      {"Fig 9: shadow dTLB entries for 99.99% of accesses",
       &sim::SimResult::shadow_dtlb_p9999},
  };

  for (const auto& fig : figures) {
    benchutil::print_header(fig.title, {"WFC", "WFB"});
    double sum_wfc = 0, sum_wfb = 0;
    for (const auto& row : rows) {
      const double wfc = static_cast<double>(row.wfc.*(fig.field));
      const double wfb = static_cast<double>(row.wfb.*(fig.field));
      benchutil::print_row(row.name, {wfc, wfb}, "%12.0f");
      sum_wfc += wfc;
      sum_wfb += wfb;
    }
    benchutil::print_row("Average",
                         {sum_wfc / rows.size(), sum_wfb / rows.size()},
                         "%12.1f");
  }
  return 0;
}
