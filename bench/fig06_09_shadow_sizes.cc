// Figures 6-9: shadow structure size needed to hold 99.99% of the
// speculative state, per SPEC2017-like benchmark, under WFC and WFB.
//
// Method (as in §IV-B): run each benchmark with worst-case-sized shadow
// structures, sample their occupancy every cycle, and report the 99.99th
// percentile of the occupancy distribution. Expected shape: small
// requirements everywhere (tens of entries), WFB <= WFC, shadow d-cache
// occasionally approaching the LDQ bound.
#include <vector>

#include "common/stats.h"
#include "experiment/experiment.h"

int main(int argc, char** argv) {
  using namespace safespec;
  const auto opts = experiment::parse_bench_args(argc, argv);

  experiment::ExperimentSpec spec;
  spec.base_machine(experiment::resolve_machine(opts));
  spec.all_spec_profiles()
      .policy("WFC")
      .policy("WFB")
      .instrs(opts.instrs);
  const auto sweep = experiment::ParallelRunner(opts.threads).run(spec);

  const struct {
    const char* title;
    std::uint64_t sim::SimResult::*field;
  } figures[] = {
      {"Fig 6: shadow i-cache entries for 99.99% of accesses",
       &sim::SimResult::shadow_icache_p9999},
      {"Fig 7: shadow d-cache entries for 99.99% of accesses",
       &sim::SimResult::shadow_dcache_p9999},
      {"Fig 8: shadow iTLB entries for 99.99% of accesses",
       &sim::SimResult::shadow_itlb_p9999},
      {"Fig 9: shadow dTLB entries for 99.99% of accesses",
       &sim::SimResult::shadow_dtlb_p9999},
  };

  const auto& profiles = spec.profile_axis();
  std::vector<experiment::ResultTable> tables;
  for (const auto& fig : figures) {
    experiment::ResultTable table(fig.title, {"WFC", "WFB"});
    std::vector<double> wfc_values, wfb_values;
    for (std::size_t p = 0; p < profiles.size(); ++p) {
      const double wfc = static_cast<double>(sweep.at(p, 0).*(fig.field));
      const double wfb = static_cast<double>(sweep.at(p, 1).*(fig.field));
      table.add_row(profiles[p].name, {wfc, wfb}, "%12.0f");
      table.annotate_last_row(sweep.stop_note(p));
      wfc_values.push_back(wfc);
      wfb_values.push_back(wfb);
    }
    table.add_row("Average",
                  {arithmetic_mean(wfc_values), arithmetic_mean(wfb_values)},
                  "%12.1f");
    tables.push_back(std::move(table));
  }

  std::vector<const experiment::ResultTable*> refs;
  for (const auto& t : tables) refs.push_back(&t);
  experiment::emit_tables(refs, opts);
  return 0;
}
