// Table V: hardware overhead of the shadow structures at 40 nm,
// estimated with the CACTI-lite analytical model.
//
// Two rows, as in the paper:
//  * Secure — worst-case sizing (d-side = LDQ = 72, i-side = ROB = 224),
//    the configuration that provably closes TSAs (§V);
//  * WFC    — 99.99%-percentile sizing measured on the SPEC2017-like
//    suite (Figs 6-9), the performance-sufficient configuration.
// Expected shape: Secure costs several times WFC; both are a modest
// fraction of the baseline cache hierarchy.
// The SHARP family's cost is estimated alongside for the same-harness
// comparison (docs/mitigations.md): SHARP stores one owner id per cache
// way (a tag extension read and written on the existing fill path) plus
// an alarm counter per cache — no shadow structures at all. Owner ids
// are sized for the MachineSpec maximum of 64 cores (6 bits).
#include <algorithm>
#include <cstdio>
#include <vector>

#include "experiment/experiment.h"
#include "memory/cache_hierarchy.h"
#include "model/cacti_lite.h"

int main(int argc, char** argv) {
  using namespace safespec;
  const auto opts = experiment::parse_bench_args(argc, argv);

  // Measure the 99.99% sizing across the suite (max over benchmarks), as
  // §VI-C derives the WFC row from the Fig 6-9 data.
  std::printf("Measuring 99.99%% shadow occupancies across SPEC2017-like "
              "suite...\n");
  experiment::ExperimentSpec spec;
  spec.base_machine(experiment::resolve_machine(opts));
  spec.all_spec_profiles()
      .policy("WFC")
      .instrs(opts.instrs);
  const auto sweep = experiment::ParallelRunner(opts.threads).run(spec);

  model::ShadowSizing wfc_sizing{1, 1, 1, 1};
  for (const auto& r : sweep.flat()) {
    wfc_sizing.dcache_entries = std::max<int>(
        wfc_sizing.dcache_entries, static_cast<int>(r.shadow_dcache_p9999));
    wfc_sizing.icache_entries = std::max<int>(
        wfc_sizing.icache_entries, static_cast<int>(r.shadow_icache_p9999));
    wfc_sizing.dtlb_entries = std::max<int>(
        wfc_sizing.dtlb_entries, static_cast<int>(r.shadow_dtlb_p9999));
    wfc_sizing.itlb_entries = std::max<int>(
        wfc_sizing.itlb_entries, static_cast<int>(r.shadow_itlb_p9999));
  }
  std::printf("WFC sizing (entries): d-cache=%d i-cache=%d dTLB=%d iTLB=%d\n",
              wfc_sizing.dcache_entries, wfc_sizing.icache_entries,
              wfc_sizing.dtlb_entries, wfc_sizing.itlb_entries);

  const model::ShadowSizing secure{72, 224, 72, 224};
  const auto secure_report = model::shadow_overhead(secure, 40);
  const auto wfc_report = model::shadow_overhead(wfc_sizing, 40);
  const auto base = model::baseline_hierarchy(40);

  std::printf("\n=== Table V: SafeSpec hardware overhead at 40nm ===\n");
  std::printf("%-10s %12s %10s %12s %10s\n", "", "Power (mW)", "Power (%)",
              "Area (mm2)", "Area (%)");
  std::printf("%-10s %12.2f %10.1f %12.3f %10.1f\n", "Secure",
              secure_report.total_power_mw, secure_report.power_percent,
              secure_report.total_area_mm2, secure_report.area_percent);
  std::printf("%-10s %12.2f %10.1f %12.3f %10.1f\n", "WFC",
              wfc_report.total_power_mw, wfc_report.power_percent,
              wfc_report.total_area_mm2, wfc_report.area_percent);
  std::printf("\n(baseline L1I+L1D+L2+L3: %.2f mW, %.3f mm2)\n",
              base.dynamic_mw + base.leakage_mw, base.area_mm2);

  std::printf("\nPer-structure breakdown (Secure sizing):\n");
  for (const auto& s : secure_report.structures) {
    std::printf("  %-14s %8.2f mW %8.4f mm2 %6.2f ns\n", s.name.c_str(),
                s.estimate.total_mw(), s.estimate.area_mm2,
                s.estimate.access_ns);
  }

  // SHARP owner metadata: one owner id per way of every cache level
  // (Table II geometry), direct-addressed by set/way — no CAM, no extra
  // ports (it rides the existing fill/victim access).
  constexpr int kOwnerBits = 6;  // MachineSpec caps cores at 64
  const memory::HierarchyConfig h;
  const struct {
    const char* name;
    const memory::CacheConfig* cache;
  } levels[] = {{"L1I owner", &h.l1i},
                {"L1D owner", &h.l1d},
                {"L2 owner", &h.l2},
                {"L3 owner", &h.l3}};
  model::SramEstimate sharp_total;
  std::vector<model::StructureReport> sharp_levels;
  for (const auto& level : levels) {
    model::SramParams params;
    params.name = level.name;
    params.entries = level.cache->size_bytes /
                     static_cast<std::uint64_t>(level.cache->line_bytes);
    params.bits_per_entry = kOwnerBits;
    params.tag_bits = 0;
    params.fully_associative = false;
    const auto est = model::estimate(params);
    sharp_levels.push_back({level.name, est});
    sharp_total.area_mm2 += est.area_mm2;
    sharp_total.dynamic_mw += est.dynamic_mw;
    sharp_total.leakage_mw += est.leakage_mw;
  }
  const double base_power = base.dynamic_mw + base.leakage_mw;
  std::printf("\n=== SHARP owner-metadata overhead at 40nm ===\n");
  std::printf("%-10s %12s %10s %12s %10s\n", "", "Power (mW)", "Power (%)",
              "Area (mm2)", "Area (%)");
  std::printf("%-10s %12.2f %10.2f %12.4f %10.2f\n", "SHARP",
              sharp_total.total_mw(), 100.0 * sharp_total.total_mw() / base_power,
              sharp_total.area_mm2, 100.0 * sharp_total.area_mm2 / base.area_mm2);
  for (const auto& s : sharp_levels) {
    std::printf("  %-14s %8.2f mW %8.4f mm2\n", s.name.c_str(),
                s.estimate.total_mw(), s.estimate.area_mm2);
  }

  // CSV/JSON trajectory: the overhead tables. The SHARP table is
  // appended after the historical Table V so earlier golden content
  // stays a byte-identical prefix.
  if (!opts.csv_path.empty() || !opts.json_path.empty()) {
    experiment::ResultTable table(
        "Table V: SafeSpec hardware overhead at 40nm",
        {"power_mw", "power_pct", "area_mm2", "area_pct"});
    table.add_row("Secure",
                  {secure_report.total_power_mw, secure_report.power_percent,
                   secure_report.total_area_mm2, secure_report.area_percent});
    table.add_row("WFC",
                  {wfc_report.total_power_mw, wfc_report.power_percent,
                   wfc_report.total_area_mm2, wfc_report.area_percent});
    experiment::ResultTable sharp_table(
        "SHARP owner-metadata overhead at 40nm",
        {"power_mw", "power_pct", "area_mm2", "area_pct"});
    for (const auto& s : sharp_levels) {
      sharp_table.add_row(s.name,
                          {s.estimate.total_mw(),
                           100.0 * s.estimate.total_mw() / base_power,
                           s.estimate.area_mm2,
                           100.0 * s.estimate.area_mm2 / base.area_mm2});
    }
    sharp_table.add_row("SHARP total",
                        {sharp_total.total_mw(),
                         100.0 * sharp_total.total_mw() / base_power,
                         sharp_total.area_mm2,
                         100.0 * sharp_total.area_mm2 / base.area_mm2});
    experiment::write_files({&table, &sharp_table}, opts);
  }
  return 0;
}
