// google-benchmark microbenchmarks of the simulator's building blocks:
// cache/TLB lookup throughput, shadow-table operations, predictor
// throughput, and whole-core simulation rate. These are *simulator
// engineering* numbers (host-side), not architecture results — useful to
// keep the sweep benches fast and to catch performance regressions.
#include <benchmark/benchmark.h>

#include "experiment/experiment.h"
#include "isa/program.h"
#include "memory/cache.h"
#include "memory/tlb.h"
#include "predictor/branch_predictor.h"
#include "safespec/shadow_structures.h"
#include "sim/machine.h"
#include "workloads/runner.h"

namespace {

using namespace safespec;

void BM_CacheAccess(benchmark::State& state) {
  memory::Cache cache({.name = "L1D",
                       .size_bytes = 32 * 1024,
                       .ways = 8,
                       .line_bytes = 64,
                       .hit_latency = 4});
  Rng rng(42);
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.access(rng.below(4096)));
  }
}
BENCHMARK(BM_CacheAccess);

void BM_CacheFillEvict(benchmark::State& state) {
  memory::Cache cache({.name = "L1D",
                       .size_bytes = 32 * 1024,
                       .ways = 8,
                       .line_bytes = 64,
                       .hit_latency = 4});
  Addr line = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.fill(line++));
  }
}
BENCHMARK(BM_CacheFillEvict);

void BM_TlbAccess(benchmark::State& state) {
  memory::Tlb tlb({.name = "dTLB", .entries = 64, .ways = 4});
  for (Addr p = 0; p < 64; ++p) tlb.fill({p, p, false});
  Rng rng(7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tlb.access(rng.below(96)));
  }
}
BENCHMARK(BM_TlbAccess);

void BM_ShadowAcquireRelease(benchmark::State& state) {
  shadow::ShadowCache table({.name = "sdc", .entries =
                             static_cast<int>(state.range(0))});
  Addr line = 0;
  for (auto _ : state) {
    const auto id = table.insert(line++, {});
    if (id != shadow::ShadowCache::kNone) table.release(id);
  }
}
BENCHMARK(BM_ShadowAcquireRelease)->Arg(8)->Arg(72)->Arg(224);

void BM_PredictorGshare(benchmark::State& state) {
  auto pred = predictor::make_direction_predictor(
      {.kind = predictor::DirectionKind::kGshare,
       .table_bits = 12,
       .history_bits = 12});
  Addr pc = 0x1000;
  bool taken = false;
  for (auto _ : state) {
    benchmark::DoNotOptimize(pred->predict(pc));
    pred->update(pc, taken);
    pc += 4;
    taken = !taken;
  }
}
BENCHMARK(BM_PredictorGshare);

void BM_PredictorPerceptron(benchmark::State& state) {
  auto pred = predictor::make_direction_predictor(
      {.kind = predictor::DirectionKind::kPerceptron,
       .table_bits = 10,
       .perceptron_weights = 16});
  Addr pc = 0x1000;
  bool taken = false;
  for (auto _ : state) {
    benchmark::DoNotOptimize(pred->predict(pc));
    pred->update(pc, taken);
    pc += 4;
    taken = !taken;
  }
}
BENCHMARK(BM_PredictorPerceptron);

/// Whole-core simulation rate (committed instructions per host second),
/// reported as items/s.
void BM_CoreSimulationRate(benchmark::State& state) {
  const auto profile = workloads::profile_by_name("x264");
  auto config = sim::machine_preset("skylake").core;
  config.policy = state.range(0) != 0 ? "WFC" : "baseline";
  for (auto _ : state) {
    const auto result = workloads::run_workload(profile, config, 10'000);
    state.SetItemsProcessed(state.items_processed() +
                            static_cast<std::int64_t>(
                                result.committed_instrs));
  }
}
BENCHMARK(BM_CoreSimulationRate)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

/// Whole-sweep wall clock through the experiment engine: an 8-cell grid
/// (4 profiles x {baseline, WFC}) run with the given thread count. The
/// arg sweep shows the parallel runner's scaling on the host (items/s is
/// cells per second); results are bitwise identical across thread counts.
void BM_ParallelSweep(benchmark::State& state) {
  experiment::ExperimentSpec spec;
  spec.profile_names({"exchange2", "x264", "deepsjeng", "namd"})
      .policy("baseline")
      .policy("WFC")
      .instrs(10'000);
  const experiment::ParallelRunner runner(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    const auto sweep = runner.run(spec);
    benchmark::DoNotOptimize(sweep.flat().data());
    state.SetItemsProcessed(state.items_processed() +
                            static_cast<std::int64_t>(sweep.flat().size()));
  }
}
BENCHMARK(BM_ParallelSweep)->Arg(1)->Arg(2)->Arg(4)->Arg(0)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
