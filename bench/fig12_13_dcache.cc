// Figure 12: d-cache read miss rate including the shadow d-cache, WFC vs
// baseline (paper shape: nearly identical bars).
// Figure 13: percentage of read hits served by the shadow d-cache under
// WFC (paper shape: small — the d-cache has limited spatial locality).
#include <vector>

#include "common/stats.h"
#include "experiment/experiment.h"

int main(int argc, char** argv) {
  using namespace safespec;
  const auto opts = experiment::parse_bench_args(argc, argv);

  experiment::ExperimentSpec spec;
  spec.base_machine(experiment::resolve_machine(opts));
  spec.all_spec_profiles()
      .policy("baseline")
      .policy("WFC")
      .instrs(opts.instrs);
  const auto sweep = experiment::ParallelRunner(opts.threads).run(spec);
  const auto& profiles = spec.profile_axis();

  experiment::ResultTable fig12(
      "Fig 12: d-cache read miss rate (including shadow d-cache)",
      {"WFC", "baseline"});
  std::vector<double> wfc_rates, base_rates;
  for (std::size_t p = 0; p < profiles.size(); ++p) {
    const double wfc = sweep.at(p, 1).dcache_miss_rate_incl_shadow();
    const double base = sweep.at(p, 0).dcache_miss_rate_incl_shadow();
    fig12.add_row(profiles[p].name, {wfc, base});
    fig12.annotate_last_row(sweep.stop_note(p));
    wfc_rates.push_back(wfc);
    base_rates.push_back(base);
  }
  fig12.add_row("Average",
                {arithmetic_mean(wfc_rates), arithmetic_mean(base_rates)});

  experiment::ResultTable fig13(
      "Fig 13: percentage of hits on shadow d-cache (WFC)", {"% of hits"});
  std::vector<double> pcts;
  for (std::size_t p = 0; p < profiles.size(); ++p) {
    const double pct = 100.0 * sweep.at(p, 1).shadow_dcache_hit_fraction();
    fig13.add_row(profiles[p].name, {pct}, "%12.2f");
    fig13.annotate_last_row(sweep.stop_note(p));
    pcts.push_back(pct);
  }
  fig13.add_row("Average", {arithmetic_mean(pcts)}, "%12.2f");

  experiment::emit_tables({&fig12, &fig13}, opts);
  return 0;
}
