// Figure 12: d-cache read miss rate including the shadow d-cache, WFC vs
// baseline (paper shape: nearly identical bars).
// Figure 13: percentage of read hits served by the shadow d-cache under
// WFC (paper shape: small — the d-cache has limited spatial locality).
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "sim/sim_config.h"
#include "workloads/runner.h"

int main() {
  using namespace safespec;
  using benchutil::kInstrsPerRun;

  struct Row {
    std::string name;
    sim::SimResult base;
    sim::SimResult wfc;
  };
  std::vector<Row> rows;
  for (const auto& profile : workloads::spec2017_profiles()) {
    Row row;
    row.name = profile.name;
    row.base = workloads::run_workload(
        profile, sim::skylake_config(shadow::CommitPolicy::kBaseline),
        kInstrsPerRun);
    row.wfc = workloads::run_workload(
        profile, sim::skylake_config(shadow::CommitPolicy::kWFC),
        kInstrsPerRun);
    rows.push_back(row);
  }

  benchutil::print_header(
      "Fig 12: d-cache read miss rate (including shadow d-cache)",
      {"WFC", "baseline"});
  double sum_wfc = 0, sum_base = 0;
  for (const auto& row : rows) {
    const double wfc = row.wfc.dcache_miss_rate_incl_shadow();
    const double base = row.base.dcache_miss_rate_incl_shadow();
    benchutil::print_row(row.name, {wfc, base});
    sum_wfc += wfc;
    sum_base += base;
  }
  benchutil::print_row("Average",
                       {sum_wfc / rows.size(), sum_base / rows.size()});

  benchutil::print_header("Fig 13: percentage of hits on shadow d-cache (WFC)",
                          {"% of hits"});
  double sum = 0;
  for (const auto& row : rows) {
    const double pct = 100.0 * row.wfc.shadow_dcache_hit_fraction();
    benchutil::print_row(row.name, {pct}, "%12.2f");
    sum += pct;
  }
  benchutil::print_row("Average", {sum / rows.size()}, "%12.2f");
  return 0;
}
