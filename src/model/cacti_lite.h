// CACTI-lite: an analytical SRAM/CAM area, power and access-time model.
//
// The paper evaluates hardware overhead (Table V) with CACTI v5.3 at
// 40 nm. CACTI itself is a large external tool; this module implements an
// analytical model with the same functional form — bits x cell area with
// technology scaling, associativity/CAM overheads, dynamic + leakage
// power — calibrated so the *relative* conclusions (worst-case "Secure"
// sizing costs several times the 99.99%-sized WFC configuration, and the
// WFC configuration is a small fraction of the cache area) reproduce.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace safespec::model {

/// One SRAM/CAM array.
struct SramParams {
  std::string name;
  std::uint64_t entries = 64;
  int bits_per_entry = 512;  ///< payload width
  int tag_bits = 40;         ///< tag/CAM match width
  bool fully_associative = false;  ///< CAM tags (shadow structures are FA)
  int read_ports = 1;
  int write_ports = 1;
  int tech_nm = 40;
};

/// Model outputs for one array.
struct SramEstimate {
  double area_mm2 = 0;
  double dynamic_mw = 0;   ///< at the nominal access rate
  double leakage_mw = 0;
  double access_ns = 0;
  double total_mw() const { return dynamic_mw + leakage_mw; }
};

/// Analytical estimate for one array (deterministic, closed-form).
SramEstimate estimate(const SramParams& params);

/// A named group of arrays with roll-up totals.
struct StructureReport {
  std::string name;
  SramEstimate estimate;
};

struct OverheadReport {
  std::vector<StructureReport> structures;
  double total_area_mm2 = 0;
  double total_power_mw = 0;
  /// Percentages relative to the baseline cache hierarchy (Table II).
  double area_percent = 0;
  double power_percent = 0;
};

/// SafeSpec shadow-structure sizings for Table V.
struct ShadowSizing {
  int dcache_entries = 72;   ///< "Secure": LDQ-bound
  int icache_entries = 224;  ///< "Secure": ROB-bound
  int dtlb_entries = 72;
  int itlb_entries = 224;
};

/// Computes the Table V row for one sizing: the four shadow structures
/// (fully associative, 64 B lines / TLB entries), compared against the
/// baseline cache hierarchy of Table II at `tech_nm`.
OverheadReport shadow_overhead(const ShadowSizing& sizing, int tech_nm = 40);

/// Area/power of the baseline hierarchy (L1I+L1D+L2+L3 of Table II), the
/// denominator of the percentage columns.
SramEstimate baseline_hierarchy(int tech_nm = 40);

}  // namespace safespec::model
