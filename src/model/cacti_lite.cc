#include "model/cacti_lite.h"

#include <cmath>

namespace safespec::model {

namespace {

// Technology-scaled cell sizes (conventional planning numbers): a 6T SRAM
// bit cell occupies ~146 F^2, a CAM match cell ~2.4x that. Peripheral
// overhead (decoders, sense amps, comparators) is folded into a
// multiplicative factor that grows for multi-ported and fully
// associative arrays.
constexpr double kSramCellF2 = 146.0;
constexpr double kCamCellF2 = 350.0;

double f2_to_mm2(double f2, int tech_nm) {
  const double f_mm = tech_nm * 1e-6;  // nm -> mm
  return f2 * f_mm * f_mm;
}

}  // namespace

SramEstimate estimate(const SramParams& p) {
  SramEstimate e;
  const double data_bits =
      static_cast<double>(p.entries) * p.bits_per_entry;
  const double tag_bits = static_cast<double>(p.entries) * p.tag_bits;

  const double port_factor =
      1.0 + 0.45 * (p.read_ports + p.write_ports - 2);
  const double periphery = p.fully_associative ? 1.65 : 1.30;

  const double data_area = f2_to_mm2(data_bits * kSramCellF2, p.tech_nm);
  const double tag_area = f2_to_mm2(
      tag_bits * (p.fully_associative ? kCamCellF2 : kSramCellF2), p.tech_nm);
  e.area_mm2 = (data_area + tag_area) * periphery * port_factor;

  // Dynamic power: proportional to the bits switched per access. A RAM
  // activates one row (word line) per access; a CAM broadcasts the key
  // across every entry's match line — that broadcast is what makes large
  // fully associative structures power-hungry.
  // CAM match cells burn roughly twice the energy of an SRAM read per
  // bit (pre-charged match lines toggling on every search).
  const double activated_bits =
      p.fully_associative
          ? 2.0 * tag_bits + p.bits_per_entry  // all match lines + one row
          : (p.bits_per_entry + p.tag_bits) * std::sqrt(
                static_cast<double>(p.entries));
  // Energy/bit scales with feature size; normalised to ~1 GHz access.
  const double energy_per_bit_pj = 0.00045 * p.tech_nm;
  e.dynamic_mw = activated_bits * energy_per_bit_pj * port_factor;

  // Leakage: proportional to total bits (uW per kbit, converted to mW).
  const double leakage_uw_per_kbit = 0.55 * (p.tech_nm / 40.0);
  e.leakage_mw = (data_bits + tag_bits) / 1024.0 * leakage_uw_per_kbit / 1000.0;

  // Access time: logarithmic in entries plus match/broadcast penalty for
  // CAMs (ns; only used for sanity reporting).
  e.access_ns = 0.15 + 0.04 * std::log2(static_cast<double>(p.entries) + 1) +
                (p.fully_associative ? 0.10 : 0.0);
  e.access_ns *= p.tech_nm / 40.0;
  return e;
}

SramEstimate baseline_hierarchy(int tech_nm) {
  // Table II geometry. Line = 64 B = 512 bits; tags ~40 bits.
  const struct {
    std::uint64_t bytes;
  } levels[] = {{32 * 1024}, {32 * 1024}, {256 * 1024}, {2 * 1024 * 1024}};
  SramEstimate total;
  for (const auto& level : levels) {
    SramParams p;
    p.entries = level.bytes / 64;
    p.bits_per_entry = 512;
    p.tag_bits = 40;
    p.fully_associative = false;
    p.tech_nm = tech_nm;
    const auto e = estimate(p);
    total.area_mm2 += e.area_mm2;
    total.dynamic_mw += e.dynamic_mw;
    total.leakage_mw += e.leakage_mw;
  }
  return total;
}

OverheadReport shadow_overhead(const ShadowSizing& sizing, int tech_nm) {
  OverheadReport report;
  const struct {
    const char* name;
    int entries;
    int bits;   // payload: cache line or TLB translation
    int tag;
  } arrays[] = {
      {"shadow-dcache", sizing.dcache_entries, 512, 46},
      {"shadow-icache", sizing.icache_entries, 512, 46},
      {"shadow-dTLB", sizing.dtlb_entries, 64, 52},
      {"shadow-iTLB", sizing.itlb_entries, 64, 52},
  };
  for (const auto& a : arrays) {
    SramParams p;
    p.name = a.name;
    p.entries = static_cast<std::uint64_t>(a.entries);
    p.bits_per_entry = a.bits;
    p.tag_bits = a.tag;
    p.fully_associative = true;  // associatively filled lookup tables
    // The shadow d-cache is read by every dependent load and written by
    // every miss: model an extra port relative to a plain array.
    p.read_ports = 2;
    p.write_ports = 1;
    p.tech_nm = tech_nm;
    report.structures.push_back({a.name, estimate(p)});
  }
  for (const auto& s : report.structures) {
    report.total_area_mm2 += s.estimate.area_mm2;
    report.total_power_mw += s.estimate.total_mw();
  }
  const auto base = baseline_hierarchy(tech_nm);
  report.area_percent = 100.0 * report.total_area_mm2 / base.area_mm2;
  report.power_percent =
      100.0 * report.total_power_mw / (base.dynamic_mw + base.leakage_mw);
  return report;
}

}  // namespace safespec::model
