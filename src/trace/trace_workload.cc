#include "trace/trace_workload.h"

#include "fuzz/generator.h"
#include "sim/machine.h"

namespace safespec::trace {

TraceImage record_workload(const workloads::WorkloadImage& image) {
  TraceImage out = TraceImage::from_program(image.program);
  if (image.data_bytes != 0) {
    out.regions.push_back({image.data_base, image.data_bytes, false});
  }
  for (const workloads::WorkloadRegion& region : image.regions) {
    out.regions.push_back({region.base, region.bytes, region.kernel});
  }
  out.init_words.reserve(image.init_words.size());
  for (const auto& [addr, value] : image.init_words) {
    out.init_words.push_back({addr, value});
  }
  return out;
}

TraceImage record_fuzz(const fuzz::FuzzProgram& fp) {
  TraceImage out = TraceImage::from_program(fp.program);
  out.regions.reserve(fp.regions.size());
  for (const sim::MemRegion& region : fp.regions) {
    out.regions.push_back({region.base, region.bytes,
                           region.perm == memory::PagePerm::kKernel});
  }
  out.init_words.reserve(fp.pokes.size());
  for (const sim::Poke& poke : fp.pokes) {
    out.init_words.push_back({poke.addr, poke.value});
  }
  return out;
}

workloads::WorkloadImage to_workload_image(const TraceImage& image) {
  workloads::WorkloadImage out;
  out.program = image.to_program();
  out.regions.reserve(image.regions.size());
  for (const TraceRegion& region : image.regions) {
    out.regions.push_back({region.base, region.bytes, region.kernel});
  }
  out.init_words.reserve(image.init_words.size());
  for (const TraceWord& word : image.init_words) {
    out.init_words.emplace_back(word.addr, word.value);
  }
  return out;
}

workloads::WorkloadImage load_workload(const std::string& path) {
  return to_workload_image(read_trace_file(path));
}

}  // namespace safespec::trace
