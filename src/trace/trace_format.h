// The SafeSpec trace file format ("SSTR"), version 1.
//
// A trace is a complete, replayable workload: the static program image
// (one fixed-width record per instruction) plus the address-space setup
// the program assumes (mapped regions with their permission, initial
// memory words). Because the simulator is execute-driven — speculative
// data flow must be real, see src/isa/instruction.h — a trace carries
// the decoded static stream rather than a dynamic instruction log:
// replaying it reconstructs the exact isa::Program and address space,
// so a recorded synthetic workload replays with bit-identical cycle
// counts and architectural state (enforced by tests/trace_test.cc and
// the `trace_record --verify` self-check).
//
// On-disk layout (all integers little-endian):
//
//   offset size  field
//   ------ ----  -----------------------------------------------------
//        0    4  magic "SSTR"
//        4    4  version (u32, currently 1)
//        8    4  flags (u32; bit 0: chunk payloads may be compressed)
//       12    4  reserved (0)
//       16    8  entry pc
//       24    8  fault handler + 1 (0 = program has no fault handler)
//       32    8  record count (static instructions)
//       40    8  region count
//       48    8  init-word count
//       56    8  FNV-1a-64 checksum of the entire payload (everything
//                after this 64-byte header)
//   ------ ----  ----------------------------------------------------
//   regions      region_count x 24 bytes: {base u64, bytes u64,
//                flags u64 (bit 0: kernel-only mapping)}
//   init words   init_word_count x 16 bytes: {addr u64, value u64}
//   chunks       until record_count records have been produced:
//                {raw_bytes u32, encoded_bytes u32, encoded payload}
//
// Records are fixed-width (kTraceRecordBytes = 32):
//
//   offset size  field
//   ------ ----  -----------------------------------------------------
//        0    8  pc
//        8    1  op      (isa::OpClass)
//        9    1  alu     (isa::AluOp)
//       10    1  cond    (isa::CondOp)
//       11    1  dst     (register index)
//       12    1  src1
//       13    1  src2
//       14    1  flags   (bit 0: use_imm; bit 1: statically taken —
//                set for unconditional transfers; conditional branch
//                direction is data-dependent and resolved at execute,
//                so it is a replay *output*, not a trace input)
//       15    1  reserved (0)
//       16    8  imm     (i64: ALU immediate / memory displacement)
//       24    8  target  (branch/jump/call target pc)
//
// Chunking + compression: records are grouped into chunks of
// kTraceChunkRecords. Each chunk is independently encoded — the first
// record deltas against an all-zero record — so a reader streams and
// decompresses one chunk at a time (TraceReader) without loading the
// whole trace. The codec is dependency-free: each 32-byte record is
// XOR-delta'd byte-wise against the previous record (consecutive
// records share pc high bytes, opcode mixes and zero operand fields,
// so deltas are mostly zero), then the delta stream is zero-run-length
// encoded (0x00 followed by run-length-minus-1; other bytes literal).
// A chunk whose encoding would not shrink is stored raw, signalled by
// encoded_bytes == raw_bytes.
//
// Versioning: readers reject any version other than kTraceVersion with
// an error naming both versions. Additions that keep the record width
// and header layout (new flag bits) stay in version 1; anything else
// bumps the version.
#pragma once

#include <cstddef>
#include <cstdint>

#include "common/types.h"

namespace safespec::trace {

/// "SSTR" in byte order (read as a little-endian u32).
inline constexpr std::uint32_t kTraceMagic = 0x52545353u;
inline constexpr std::uint32_t kTraceVersion = 1;

/// Header flag: chunk payloads may be delta+RLE compressed.
inline constexpr std::uint32_t kTraceFlagCompressed = 1u << 0;

/// Record flag bits (byte 14 of each record).
inline constexpr std::uint8_t kTraceRecUseImm = 1u << 0;
inline constexpr std::uint8_t kTraceRecStaticTaken = 1u << 1;

inline constexpr std::size_t kTraceHeaderBytes = 64;
inline constexpr std::size_t kTraceRecordBytes = 32;
inline constexpr std::size_t kTraceRegionBytes = 24;
inline constexpr std::size_t kTraceInitWordBytes = 16;

/// Records per chunk (64 KiB raw) — the streaming/decompression unit.
inline constexpr std::size_t kTraceChunkRecords = 2048;

/// One fixed-width instruction record, in memory. Field meanings match
/// isa::Instruction; conversion (with enum-range validation on decode)
/// lives in trace.cc.
struct TraceRecord {
  Addr pc = 0;
  std::uint8_t op = 0;
  std::uint8_t alu = 0;
  std::uint8_t cond = 0;
  std::uint8_t dst = 0;
  std::uint8_t src1 = 0;
  std::uint8_t src2 = 0;
  std::uint8_t flags = 0;
  std::int64_t imm = 0;
  Addr target = 0;
};

/// FNV-1a 64-bit, the payload checksum. Incremental form so the
/// streaming reader can fold in chunk bytes as they arrive.
inline constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ull;
inline constexpr std::uint64_t kFnvPrime = 0x100000001b3ull;

inline std::uint64_t fnv1a64(const std::uint8_t* data, std::size_t size,
                             std::uint64_t hash = kFnvOffset) {
  for (std::size_t i = 0; i < size; ++i) {
    hash ^= data[i];
    hash *= kFnvPrime;
  }
  return hash;
}

}  // namespace safespec::trace
