#include "trace/trace.h"

#include <cstring>
#include <stdexcept>

namespace safespec::trace {

namespace {

// ---- little-endian primitives ----------------------------------------------

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

std::uint32_t get_u32(const std::uint8_t* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= std::uint32_t{p[i]} << (8 * i);
  return v;
}

std::uint64_t get_u64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= std::uint64_t{p[i]} << (8 * i);
  return v;
}

void serialize_record(std::vector<std::uint8_t>& out, const TraceRecord& r) {
  put_u64(out, r.pc);
  out.push_back(r.op);
  out.push_back(r.alu);
  out.push_back(r.cond);
  out.push_back(r.dst);
  out.push_back(r.src1);
  out.push_back(r.src2);
  out.push_back(r.flags);
  out.push_back(0);  // reserved
  put_u64(out, static_cast<std::uint64_t>(r.imm));
  put_u64(out, r.target);
}

TraceRecord deserialize_record(const std::uint8_t* p) {
  TraceRecord r;
  r.pc = get_u64(p);
  r.op = p[8];
  r.alu = p[9];
  r.cond = p[10];
  r.dst = p[11];
  r.src1 = p[12];
  r.src2 = p[13];
  r.flags = p[14];
  r.imm = static_cast<std::int64_t>(get_u64(p + 16));
  r.target = get_u64(p + 24);
  return r;
}

// ---- chunk codec: XOR-delta against the previous record, then zero-RLE ----

/// In place: raw[i] ^= raw[i - kTraceRecordBytes] (first record deltas
/// against zero). Self-inverse, so the same pass undoes it after the
/// prefix has been restored — see undelta().
void delta(std::vector<std::uint8_t>& raw) {
  for (std::size_t i = raw.size(); i-- > kTraceRecordBytes;) {
    raw[i] ^= raw[i - kTraceRecordBytes];
  }
}

void undelta(std::vector<std::uint8_t>& raw) {
  for (std::size_t i = kTraceRecordBytes; i < raw.size(); ++i) {
    raw[i] ^= raw[i - kTraceRecordBytes];
  }
}

/// Zero-RLE: literal non-zero bytes; a zero run becomes {0x00, len-1},
/// split over runs longer than 256.
std::vector<std::uint8_t> rle_encode(const std::vector<std::uint8_t>& in) {
  std::vector<std::uint8_t> out;
  out.reserve(in.size() / 4);
  std::size_t i = 0;
  while (i < in.size()) {
    if (in[i] != 0) {
      out.push_back(in[i++]);
      continue;
    }
    std::size_t run = 1;
    while (i + run < in.size() && in[i + run] == 0 && run < 256) ++run;
    out.push_back(0);
    out.push_back(static_cast<std::uint8_t>(run - 1));
    i += run;
  }
  return out;
}

void rle_decode(const std::uint8_t* in, std::size_t in_size,
                std::vector<std::uint8_t>& out, std::size_t expected,
                const std::string& name) {
  out.clear();
  out.reserve(expected);
  std::size_t i = 0;
  while (i < in_size) {
    const std::uint8_t b = in[i++];
    if (b != 0) {
      out.push_back(b);
      continue;
    }
    if (i >= in_size) {
      throw std::runtime_error(name + ": truncated trace (zero-run length "
                                      "missing in chunk payload)");
    }
    const std::size_t run = std::size_t{in[i++]} + 1;
    out.insert(out.end(), run, 0);
    if (out.size() > expected) break;  // corrupt; reported below
  }
  if (out.size() != expected) {
    throw std::runtime_error(name +
                             ": corrupt trace (chunk decompressed to " +
                             std::to_string(out.size()) + " bytes, header "
                             "promised " + std::to_string(expected) + ")");
  }
}

}  // namespace

// ---- record <-> instruction -------------------------------------------------

isa::Instruction to_instruction(const TraceRecord& rec) {
  if (rec.op > static_cast<std::uint8_t>(isa::OpClass::kHalt) ||
      rec.alu > static_cast<std::uint8_t>(isa::AluOp::kMovImm) ||
      rec.cond > static_cast<std::uint8_t>(isa::CondOp::kGeu) ||
      rec.dst >= kNumArchRegs || rec.src1 >= kNumArchRegs ||
      rec.src2 >= kNumArchRegs) {
    throw std::runtime_error(
        "corrupt trace record at pc 0x" +
        std::to_string(rec.pc) +
        ": opcode/operand field out of range");
  }
  isa::Instruction inst;
  inst.op = static_cast<isa::OpClass>(rec.op);
  inst.alu = static_cast<isa::AluOp>(rec.alu);
  inst.cond = static_cast<isa::CondOp>(rec.cond);
  inst.dst = rec.dst;
  inst.src1 = rec.src1;
  inst.src2 = rec.src2;
  inst.imm = rec.imm;
  inst.target = rec.target;
  inst.use_imm = (rec.flags & kTraceRecUseImm) != 0;
  return inst;
}

TraceRecord to_record(Addr pc, const isa::Instruction& inst) {
  TraceRecord r;
  r.pc = pc;
  r.op = static_cast<std::uint8_t>(inst.op);
  r.alu = static_cast<std::uint8_t>(inst.alu);
  r.cond = static_cast<std::uint8_t>(inst.cond);
  r.dst = inst.dst;
  r.src1 = inst.src1;
  r.src2 = inst.src2;
  if (inst.use_imm) r.flags |= kTraceRecUseImm;
  // Unconditional transfers are statically taken; a conditional branch's
  // direction is data-dependent (resolved at execute on replay).
  if (inst.op == isa::OpClass::kJump || inst.op == isa::OpClass::kCall ||
      inst.op == isa::OpClass::kRet ||
      inst.op == isa::OpClass::kBranchIndirect) {
    r.flags |= kTraceRecStaticTaken;
  }
  r.imm = inst.imm;
  r.target = inst.target;
  return r;
}

// ---- TraceImage -------------------------------------------------------------

isa::Program TraceImage::to_program() const {
  isa::Program program;
  for (const TraceRecord& rec : records) {
    if (rec.pc % isa::kInstrBytes != 0) {
      throw std::runtime_error("corrupt trace record: misaligned pc 0x" +
                               std::to_string(rec.pc));
    }
    program.place(rec.pc, to_instruction(rec), /*overwrite=*/true);
  }
  program.set_entry(entry);
  if (fault_handler.has_value()) program.set_fault_handler(*fault_handler);
  return program;
}

TraceImage TraceImage::from_program(const isa::Program& program) {
  TraceImage image;
  image.entry = program.entry();
  image.fault_handler = program.fault_handler();
  const std::vector<Addr> pcs = program.pcs();
  image.records.reserve(pcs.size());
  for (const Addr pc : pcs) {
    image.records.push_back(to_record(pc, *program.at(pc)));
  }
  return image;
}

// ---- encode -----------------------------------------------------------------

std::vector<std::uint8_t> encode(const TraceImage& image, bool compress) {
  std::vector<std::uint8_t> payload;
  payload.reserve(image.regions.size() * kTraceRegionBytes +
                  image.init_words.size() * kTraceInitWordBytes +
                  image.records.size() * kTraceRecordBytes / 4 + 64);

  for (const TraceRegion& region : image.regions) {
    put_u64(payload, region.base);
    put_u64(payload, region.bytes);
    put_u64(payload, region.kernel ? 1 : 0);
  }
  for (const TraceWord& word : image.init_words) {
    put_u64(payload, word.addr);
    put_u64(payload, word.value);
  }

  std::vector<std::uint8_t> raw;
  for (std::size_t first = 0; first < image.records.size();
       first += kTraceChunkRecords) {
    const std::size_t count =
        std::min(kTraceChunkRecords, image.records.size() - first);
    raw.clear();
    raw.reserve(count * kTraceRecordBytes);
    for (std::size_t i = 0; i < count; ++i) {
      serialize_record(raw, image.records[first + i]);
    }
    const std::uint32_t raw_bytes = static_cast<std::uint32_t>(raw.size());
    if (compress) {
      delta(raw);
      const std::vector<std::uint8_t> enc = rle_encode(raw);
      if (enc.size() < raw.size()) {
        put_u32(payload, raw_bytes);
        put_u32(payload, static_cast<std::uint32_t>(enc.size()));
        payload.insert(payload.end(), enc.begin(), enc.end());
        continue;
      }
      undelta(raw);  // store raw: restore the original bytes
    }
    put_u32(payload, raw_bytes);
    put_u32(payload, raw_bytes);  // encoded == raw signals a stored chunk
    payload.insert(payload.end(), raw.begin(), raw.end());
  }

  std::vector<std::uint8_t> out;
  out.reserve(kTraceHeaderBytes + payload.size());
  put_u32(out, kTraceMagic);
  put_u32(out, kTraceVersion);
  put_u32(out, compress ? kTraceFlagCompressed : 0);
  put_u32(out, 0);  // reserved
  put_u64(out, image.entry);
  put_u64(out, image.fault_handler.has_value() ? *image.fault_handler + 1
                                               : 0);
  put_u64(out, image.records.size());
  put_u64(out, image.regions.size());
  put_u64(out, image.init_words.size());
  put_u64(out, fnv1a64(payload.data(), payload.size()));
  out.insert(out.end(), payload.begin(), payload.end());
  return out;
}

void write_trace_file(const std::string& path, const TraceImage& image,
                      bool compress) {
  const std::vector<std::uint8_t> bytes = encode(image, compress);
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    throw std::runtime_error("cannot write trace file " + path);
  }
  const std::size_t written = std::fwrite(bytes.data(), 1, bytes.size(), f);
  const bool ok = written == bytes.size() && std::fclose(f) == 0;
  if (!ok) {
    throw std::runtime_error("short write to trace file " + path);
  }
}

// ---- TraceReader ------------------------------------------------------------

TraceReader::TraceReader(const std::string& path) : name_(path) {
  file_ = std::fopen(path.c_str(), "rb");
  if (file_ == nullptr) {
    throw std::runtime_error("cannot open trace file " + path);
  }
  try {
    parse_front();
  } catch (...) {
    std::fclose(file_);
    file_ = nullptr;
    throw;
  }
}

TraceReader::TraceReader(const std::uint8_t* data, std::size_t size)
    : buffer_(data), buffer_size_(size), name_("<memory>") {
  parse_front();
}

TraceReader::~TraceReader() {
  if (file_ != nullptr) std::fclose(file_);
}

void TraceReader::read_exact(std::uint8_t* out, std::size_t n,
                             const char* what) {
  if (file_ != nullptr) {
    if (std::fread(out, 1, n, file_) != n) {
      throw std::runtime_error(name_ + ": truncated trace (" +
                               std::string(what) + ")");
    }
  } else {
    if (buffer_size_ - buffer_pos_ < n) {
      throw std::runtime_error(name_ + ": truncated trace (" +
                               std::string(what) + ")");
    }
    std::memcpy(out, buffer_ + buffer_pos_, n);
    buffer_pos_ += n;
  }
}

void TraceReader::parse_front() {
  std::uint8_t header[kTraceHeaderBytes];
  read_exact(header, sizeof header, "header");
  if (get_u32(header) != kTraceMagic) {
    throw std::runtime_error(name_ +
                             ": not a SafeSpec trace (bad magic; expected "
                             "\"SSTR\")");
  }
  const std::uint32_t version = get_u32(header + 4);
  if (version != kTraceVersion) {
    throw std::runtime_error(
        name_ + ": unsupported trace version " + std::to_string(version) +
        " (this reader understands version " +
        std::to_string(kTraceVersion) + ")");
  }
  entry_ = get_u64(header + 16);
  const std::uint64_t handler_plus1 = get_u64(header + 24);
  if (handler_plus1 != 0) fault_handler_ = handler_plus1 - 1;
  records_total_ = get_u64(header + 32);
  const std::uint64_t region_count = get_u64(header + 40);
  const std::uint64_t word_count = get_u64(header + 48);
  checksum_expected_ = get_u64(header + 56);
  // Implausible counts are rejected before any allocation so a corrupt
  // header cannot request terabytes.
  if (region_count > (1u << 20) || word_count > (1ull << 32)) {
    throw std::runtime_error(name_ + ": corrupt trace (implausible region/"
                                     "init-word count)");
  }

  std::uint8_t buf[kTraceRegionBytes];
  regions_.reserve(static_cast<std::size_t>(region_count));
  for (std::uint64_t i = 0; i < region_count; ++i) {
    read_exact(buf, kTraceRegionBytes, "region table");
    checksum_running_ = fnv1a64(buf, kTraceRegionBytes, checksum_running_);
    regions_.push_back(
        {get_u64(buf), get_u64(buf + 8), (get_u64(buf + 16) & 1) != 0});
  }
  init_words_.reserve(static_cast<std::size_t>(word_count));
  for (std::uint64_t i = 0; i < word_count; ++i) {
    read_exact(buf, kTraceInitWordBytes, "init-word table");
    checksum_running_ = fnv1a64(buf, kTraceInitWordBytes, checksum_running_);
    init_words_.push_back({get_u64(buf), get_u64(buf + 8)});
  }
}

void TraceReader::load_chunk() {
  std::uint8_t head[8];
  read_exact(head, sizeof head, "chunk header");
  checksum_running_ = fnv1a64(head, sizeof head, checksum_running_);
  const std::uint32_t raw_bytes = get_u32(head);
  const std::uint32_t enc_bytes = get_u32(head + 4);
  const std::uint64_t remaining = records_total_ - records_read_;
  if (raw_bytes == 0 || raw_bytes % kTraceRecordBytes != 0 ||
      raw_bytes / kTraceRecordBytes > kTraceChunkRecords ||
      raw_bytes / kTraceRecordBytes > remaining ||
      enc_bytes > raw_bytes) {
    throw std::runtime_error(name_ + ": corrupt trace (bad chunk header: "
                                     "raw=" + std::to_string(raw_bytes) +
                             " encoded=" + std::to_string(enc_bytes) + ")");
  }
  std::vector<std::uint8_t> enc(enc_bytes);
  read_exact(enc.data(), enc_bytes, "chunk payload");
  checksum_running_ = fnv1a64(enc.data(), enc_bytes, checksum_running_);
  if (enc_bytes == raw_bytes) {
    chunk_ = std::move(enc);  // stored chunk
  } else {
    rle_decode(enc.data(), enc.size(), chunk_, raw_bytes, name_);
    undelta(chunk_);
  }
  chunk_pos_ = 0;
}

bool TraceReader::next(TraceRecord& out) {
  if (records_read_ >= records_total_) {
    if (!checksum_verified_) {
      checksum_verified_ = true;
      if (checksum_running_ != checksum_expected_) {
        throw std::runtime_error(name_ + ": trace checksum mismatch (file "
                                         "corrupt or truncated rewrite)");
      }
    }
    return false;
  }
  if (chunk_pos_ >= chunk_.size()) load_chunk();
  out = deserialize_record(chunk_.data() + chunk_pos_);
  chunk_pos_ += kTraceRecordBytes;
  ++records_read_;
  return true;
}

// ---- whole-image decode -----------------------------------------------------

namespace {
TraceImage collect(TraceReader& reader) {
  TraceImage image;
  image.entry = reader.entry();
  image.fault_handler = reader.fault_handler();
  image.regions = reader.regions();
  image.init_words = reader.init_words();
  image.records.reserve(static_cast<std::size_t>(reader.records_total()));
  TraceRecord rec;
  while (reader.next(rec)) image.records.push_back(rec);
  // Drives the end-of-stream checksum verification.
  while (reader.next(rec)) {}
  return image;
}
}  // namespace

TraceImage decode(const std::uint8_t* data, std::size_t size) {
  TraceReader reader(data, size);
  return collect(reader);
}

TraceImage decode(const std::vector<std::uint8_t>& buffer) {
  return decode(buffer.data(), buffer.size());
}

TraceImage read_trace_file(const std::string& path) {
  TraceReader reader(path);
  return collect(reader);
}

}  // namespace safespec::trace
