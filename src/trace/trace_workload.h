// Workload-facing glue for the trace subsystem.
//
// Everything here converts between TraceImage and the two program
// producers the repo already has — the synthetic SPEC generator
// (workloads::WorkloadImage) and the differential fuzzer's
// RandomProgramGenerator (fuzz::FuzzProgram) — plus the loader the
// workload frontend calls when WorkloadProfile::trace_file names a
// trace on disk. Keeping this out of trace.h keeps the codec free of
// workloads/fuzz dependencies.
#pragma once

#include <string>

#include "trace/trace.h"
#include "workloads/workload.h"

namespace safespec::fuzz {
struct FuzzProgram;
}  // namespace safespec::fuzz

namespace safespec::trace {

/// Records a generated synthetic workload: program + its user data
/// region + chase-link init words.
TraceImage record_workload(const workloads::WorkloadImage& image);

/// Records a fuzz program: program + its user/kernel regions + pokes
/// (chase links, kernel secrets, seeded data).
TraceImage record_fuzz(const fuzz::FuzzProgram& fp);

/// Rebuilds a replayable workload image from a trace. The result
/// carries its address-space setup in WorkloadImage::regions /
/// init_words (data_base/data_bytes stay zero — traces may map
/// several regions with distinct permissions).
workloads::WorkloadImage to_workload_image(const TraceImage& image);

/// read_trace_file + to_workload_image. The workload generator calls
/// this when a profile's trace_file names a path; errors propagate as
/// std::runtime_error naming the file and the problem.
workloads::WorkloadImage load_workload(const std::string& path);

}  // namespace safespec::trace
