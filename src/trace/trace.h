// Trace images, the codec, and the chunked streaming reader.
//
// See src/trace/trace_format.h for the on-disk layout. The API here is
// deliberately small:
//
//   * TraceImage — the in-memory form of a trace: entry / fault handler
//     / regions / init words / fixed-width records, convertible to and
//     from isa::Program;
//   * encode()/decode() and write_trace_file()/read_trace_file() — the
//     whole-image codec (decode validates magic, version, structure and
//     the payload checksum, throwing std::runtime_error with a message
//     naming the problem);
//   * TraceReader — the chunked decompressing loader: header, regions
//     and init words parsed up front, records streamed one chunk at a
//     time so a multi-gigabyte trace never needs to be resident.
//
// The workload-facing glue (WorkloadImage/FuzzProgram conversions, the
// "trace:" profile syntax) lives in src/trace/trace_workload.h.
#pragma once

#include <cstdint>
#include <cstdio>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/types.h"
#include "isa/program.h"
#include "trace/trace_format.h"

namespace safespec::trace {

/// One mapped address-space region a trace assumes.
struct TraceRegion {
  Addr base = 0;
  std::uint64_t bytes = 0;
  bool kernel = false;  ///< kernel-only mapping (secret regions)
};

/// One pre-run architectural memory word.
struct TraceWord {
  Addr addr = 0;
  std::uint64_t value = 0;
};

/// A complete trace in memory.
struct TraceImage {
  Addr entry = 0;
  std::optional<Addr> fault_handler;
  std::vector<TraceRegion> regions;
  std::vector<TraceWord> init_words;
  std::vector<TraceRecord> records;  ///< pc-ascending static stream

  /// Rebuilds the exact static program (entry, fault handler, every
  /// instruction). Throws std::runtime_error on out-of-range enum
  /// fields (a corrupt or hand-forged trace).
  isa::Program to_program() const;

  /// Records + entry + fault handler from a program (regions and init
  /// words are the caller's to fill; see trace_workload.h).
  static TraceImage from_program(const isa::Program& program);
};

/// Converts one record to an instruction, validating enum ranges.
isa::Instruction to_instruction(const TraceRecord& rec);
/// Converts one placed instruction to a record.
TraceRecord to_record(Addr pc, const isa::Instruction& inst);

/// Serializes a trace (compressed by default; `compress = false` stores
/// every chunk raw, for debugging).
std::vector<std::uint8_t> encode(const TraceImage& image,
                                 bool compress = true);
/// Parses and fully validates a serialized trace (checksum included).
TraceImage decode(const std::uint8_t* data, std::size_t size);
TraceImage decode(const std::vector<std::uint8_t>& buffer);

void write_trace_file(const std::string& path, const TraceImage& image,
                      bool compress = true);
/// Streams the file through a TraceReader (so validation behaviour is
/// identical to the streaming path) and collects the full image.
TraceImage read_trace_file(const std::string& path);

/// Chunked decompressing loader. Construction parses and validates the
/// header, regions and init words; next() serves records in order,
/// decompressing one chunk at a time, and verifies the payload checksum
/// when the last record has been read.
///
/// All failures — short file, bad magic, unsupported version, truncated
/// or oversized chunks, checksum mismatch — throw std::runtime_error.
class TraceReader {
 public:
  /// Streams from a file (fails with std::runtime_error if unopenable).
  explicit TraceReader(const std::string& path);
  /// Streams from an in-memory buffer (borrowed; must outlive the
  /// reader).
  TraceReader(const std::uint8_t* data, std::size_t size);
  ~TraceReader();

  TraceReader(const TraceReader&) = delete;
  TraceReader& operator=(const TraceReader&) = delete;

  Addr entry() const { return entry_; }
  const std::optional<Addr>& fault_handler() const { return fault_handler_; }
  const std::vector<TraceRegion>& regions() const { return regions_; }
  const std::vector<TraceWord>& init_words() const { return init_words_; }

  std::uint64_t records_total() const { return records_total_; }
  std::uint64_t records_read() const { return records_read_; }

  /// Produces the next record; false once all records were served (the
  /// checksum is verified at that point).
  bool next(TraceRecord& out);

 private:
  void parse_front();              ///< header + regions + init words
  void load_chunk();               ///< refills chunk_ from the source
  void read_exact(std::uint8_t* out, std::size_t n, const char* what);

  // Source: exactly one of file_ / buffer_ is active.
  std::FILE* file_ = nullptr;
  const std::uint8_t* buffer_ = nullptr;
  std::size_t buffer_size_ = 0;
  std::size_t buffer_pos_ = 0;
  std::string name_;  ///< for error messages

  Addr entry_ = 0;
  std::optional<Addr> fault_handler_;
  std::vector<TraceRegion> regions_;
  std::vector<TraceWord> init_words_;
  std::uint64_t records_total_ = 0;
  std::uint64_t records_read_ = 0;
  std::uint64_t checksum_expected_ = 0;
  std::uint64_t checksum_running_ = kFnvOffset;
  bool checksum_verified_ = false;

  std::vector<std::uint8_t> chunk_;  ///< decoded records of current chunk
  std::size_t chunk_pos_ = 0;        ///< byte cursor into chunk_
};

}  // namespace safespec::trace
