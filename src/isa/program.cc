#include "isa/program.h"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace safespec::isa {

void Program::place(Addr pc, const Instruction& inst, bool overwrite) {
  if (pc % kInstrBytes != 0) {
    throw std::invalid_argument("Program::place: misaligned pc");
  }
  if (!overwrite && contains(pc)) {
    throw std::invalid_argument("Program::place: pc already occupied");
  }
  text_[pc / kInstrBytes] = inst;
}

std::vector<Addr> Program::pcs() const {
  std::vector<Addr> out;
  out.reserve(text_.size());
  text_.for_each([&out](Addr slot, const Instruction&) {
    out.push_back(slot * kInstrBytes);
  });
  std::sort(out.begin(), out.end());
  return out;
}

std::string to_string(const Program& program) {
  std::ostringstream oss;
  for (const Addr pc : program.pcs()) {
    oss << "0x" << std::hex << pc << std::dec;
    if (pc == program.entry()) oss << " <entry>";
    if (program.fault_handler() && *program.fault_handler() == pc) {
      oss << " <fault-handler>";
    }
    oss << ": " << to_string(*program.at(pc)) << "\n";
  }
  return oss.str();
}

ProgramBuilder& ProgramBuilder::emit(const Instruction& inst) {
  program_.place(cursor_, inst);
  cursor_ += kInstrBytes;
  return *this;
}

ProgramBuilder& ProgramBuilder::nop() { return emit({}); }

ProgramBuilder& ProgramBuilder::movi(RegIndex dst, std::int64_t imm) {
  Instruction i;
  i.op = OpClass::kAlu;
  i.alu = AluOp::kMovImm;
  i.dst = dst;
  i.imm = imm;
  i.use_imm = true;
  return emit(i);
}

ProgramBuilder& ProgramBuilder::alu(AluOp op, RegIndex dst, RegIndex a,
                                    RegIndex b) {
  Instruction i;
  i.op = (op == AluOp::kMul)   ? OpClass::kMul
         : (op == AluOp::kDiv) ? OpClass::kDiv
                               : OpClass::kAlu;
  i.alu = op;
  i.dst = dst;
  i.src1 = a;
  i.src2 = b;
  return emit(i);
}

ProgramBuilder& ProgramBuilder::alui(AluOp op, RegIndex dst, RegIndex a,
                                     std::int64_t imm) {
  Instruction i;
  i.op = (op == AluOp::kMul)   ? OpClass::kMul
         : (op == AluOp::kDiv) ? OpClass::kDiv
                               : OpClass::kAlu;
  i.alu = op;
  i.dst = dst;
  i.src1 = a;
  i.imm = imm;
  i.use_imm = true;
  return emit(i);
}

ProgramBuilder& ProgramBuilder::load(RegIndex dst, RegIndex base,
                                     std::int64_t imm) {
  Instruction i;
  i.op = OpClass::kLoad;
  i.dst = dst;
  i.src1 = base;
  i.imm = imm;
  return emit(i);
}

ProgramBuilder& ProgramBuilder::store(RegIndex src, RegIndex base,
                                      std::int64_t imm) {
  Instruction i;
  i.op = OpClass::kStore;
  i.src1 = base;
  i.src2 = src;
  i.imm = imm;
  return emit(i);
}

ProgramBuilder& ProgramBuilder::branch(CondOp cond, RegIndex a, RegIndex b,
                                       const std::string& label) {
  Instruction i;
  i.op = OpClass::kBranch;
  i.cond = cond;
  i.src1 = a;
  i.src2 = b;
  fixups_.push_back({cursor_, label});
  return emit(i);
}

ProgramBuilder& ProgramBuilder::jump(const std::string& label) {
  Instruction i;
  i.op = OpClass::kJump;
  fixups_.push_back({cursor_, label});
  return emit(i);
}

ProgramBuilder& ProgramBuilder::jump_reg(RegIndex base, std::int64_t imm) {
  Instruction i;
  i.op = OpClass::kBranchIndirect;
  i.src1 = base;
  i.imm = imm;
  return emit(i);
}

ProgramBuilder& ProgramBuilder::call(const std::string& label) {
  Instruction i;
  i.op = OpClass::kCall;
  i.dst = kLinkReg;
  fixups_.push_back({cursor_, label});
  return emit(i);
}

ProgramBuilder& ProgramBuilder::ret() {
  Instruction i;
  i.op = OpClass::kRet;
  i.src1 = kLinkReg;
  return emit(i);
}

ProgramBuilder& ProgramBuilder::flush(RegIndex base, std::int64_t imm) {
  Instruction i;
  i.op = OpClass::kFlush;
  i.src1 = base;
  i.imm = imm;
  return emit(i);
}

ProgramBuilder& ProgramBuilder::fence() {
  Instruction i;
  i.op = OpClass::kFence;
  return emit(i);
}

ProgramBuilder& ProgramBuilder::rdcycle(RegIndex dst) {
  Instruction i;
  i.op = OpClass::kRdCycle;
  i.dst = dst;
  return emit(i);
}

ProgramBuilder& ProgramBuilder::halt() {
  Instruction i;
  i.op = OpClass::kHalt;
  return emit(i);
}

ProgramBuilder& ProgramBuilder::label(const std::string& name) {
  if (labels_.count(name) != 0) {
    throw std::invalid_argument("ProgramBuilder: duplicate label " + name);
  }
  labels_[name] = cursor_;
  return *this;
}

Addr ProgramBuilder::label_addr(const std::string& name) const {
  auto it = labels_.find(name);
  if (it == labels_.end()) {
    throw std::runtime_error("ProgramBuilder: unknown label " + name);
  }
  return it->second;
}

ProgramBuilder& ProgramBuilder::at(Addr pc) {
  if (pc % kInstrBytes != 0) {
    throw std::invalid_argument("ProgramBuilder::at: misaligned pc");
  }
  cursor_ = pc;
  return *this;
}

Program ProgramBuilder::build() {
  for (const auto& fixup : fixups_) {
    auto it = labels_.find(fixup.label);
    if (it == labels_.end()) {
      throw std::runtime_error("ProgramBuilder: unbound label " + fixup.label);
    }
    const Instruction* existing = program_.at(fixup.pc);
    Instruction patched = *existing;
    patched.target = it->second;
    program_.place(fixup.pc, patched, /*overwrite=*/true);
  }
  fixups_.clear();
  return program_;
}

}  // namespace safespec::isa
