// A `Program` maps instruction addresses to static instructions, plus the
// entry point and an optional fault-handler address (the micro-ISA's
// analogue of a SIGSEGV handler, which Meltdown-style PoCs need to recover
// from the delayed permission fault).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/paged_addr_map.h"
#include "common/types.h"
#include "isa/instruction.h"

namespace safespec::isa {

/// A complete static program image. Instructions live at 4-byte-aligned
/// virtual addresses; fetch walks this map.
class Program {
 public:
  /// Places `inst` at `pc` (must be kInstrBytes-aligned and unoccupied
  /// unless `overwrite`).
  void place(Addr pc, const Instruction& inst, bool overwrite = false);

  /// Fetch lookup; nullptr when no instruction exists at `pc` (the core
  /// treats that as a halt with an error flag so runaway speculation on
  /// garbage targets terminates cleanly). Misaligned pcs — reachable only
  /// through speculated indirect targets — are never occupied.
  const Instruction* at(Addr pc) const {
    if (pc % kInstrBytes != 0) return nullptr;
    return text_.find(pc / kInstrBytes);
  }

  bool contains(Addr pc) const { return at(pc) != nullptr; }
  std::size_t size() const { return text_.size(); }

  Addr entry() const { return entry_; }
  void set_entry(Addr pc) { entry_ = pc; }

  /// Commit-time permission faults redirect here when set (user-level
  /// fault recovery, as Meltdown PoCs rely on). Unset => fault halts.
  std::optional<Addr> fault_handler() const { return fault_handler_; }
  void set_fault_handler(Addr pc) { fault_handler_ = pc; }

  /// All occupied PCs in ascending order (used by tests/tools).
  std::vector<Addr> pcs() const;

 private:
  /// Fetch looks this up every instruction. Keyed by pc / kInstrBytes so
  /// consecutive instructions pack densely into the backing pages.
  PagedAddrMap<Instruction> text_;
  Addr entry_ = 0;
  std::optional<Addr> fault_handler_;
};

/// Full disassembly listing, one "0xPC: <instruction>" line per occupied
/// address in ascending order. The fuzz driver prints this for failing
/// seeds so a repro comes with the program that triggered it.
std::string to_string(const Program& program);

/// Fluent builder that lays instructions out sequentially and resolves
/// forward label references. All attack PoCs and workload generators
/// construct programs through this.
class ProgramBuilder {
 public:
  /// Starts emitting at `base` (kInstrBytes aligned).
  explicit ProgramBuilder(Addr base = 0x1000) : cursor_(base) {}

  /// Current emission address.
  Addr here() const { return cursor_; }

  /// Appends an instruction at the cursor and advances it.
  ProgramBuilder& emit(const Instruction& inst);

  // ---- convenience emitters -------------------------------------------
  ProgramBuilder& nop();
  /// dst = imm
  ProgramBuilder& movi(RegIndex dst, std::int64_t imm);
  /// dst = a OP b
  ProgramBuilder& alu(AluOp op, RegIndex dst, RegIndex a, RegIndex b);
  /// dst = a OP imm
  ProgramBuilder& alui(AluOp op, RegIndex dst, RegIndex a, std::int64_t imm);
  /// dst = MEM64[base + imm]
  ProgramBuilder& load(RegIndex dst, RegIndex base, std::int64_t imm = 0);
  /// MEM64[base + imm] = src
  ProgramBuilder& store(RegIndex src, RegIndex base, std::int64_t imm = 0);
  /// conditional branch to `label` (resolved later) when cond(a, b)
  ProgramBuilder& branch(CondOp cond, RegIndex a, RegIndex b,
                         const std::string& label);
  ProgramBuilder& jump(const std::string& label);
  /// indirect jump to R[base] + imm
  ProgramBuilder& jump_reg(RegIndex base, std::int64_t imm = 0);
  ProgramBuilder& call(const std::string& label);
  ProgramBuilder& ret();
  /// clflush line containing R[base] + imm
  ProgramBuilder& flush(RegIndex base, std::int64_t imm = 0);
  ProgramBuilder& fence();
  ProgramBuilder& rdcycle(RegIndex dst);
  ProgramBuilder& halt();

  /// Binds `label` to the cursor. Labels may be referenced before or
  /// after binding; build() patches everything.
  ProgramBuilder& label(const std::string& name);

  /// Address a label resolved to (label must already be bound).
  Addr label_addr(const std::string& name) const;

  /// Moves the cursor to an arbitrary aligned address (e.g. to lay out a
  /// far-away gadget for BTB-collision experiments).
  ProgramBuilder& at(Addr pc);

  /// Resolves all label references and returns the finished program.
  /// Throws std::runtime_error on unbound labels.
  Program build();

 private:
  struct Fixup {
    Addr pc;
    std::string label;
  };

  Addr cursor_;
  Program program_;
  std::unordered_map<std::string, Addr> labels_;
  std::vector<Fixup> fixups_;
};

}  // namespace safespec::isa
