#include "isa/instruction.h"

#include <sstream>

namespace safespec::isa {

std::uint64_t eval_alu(AluOp op, std::uint64_t a, std::uint64_t b) {
  switch (op) {
    case AluOp::kAdd:
      return a + b;
    case AluOp::kSub:
      return a - b;
    case AluOp::kAnd:
      return a & b;
    case AluOp::kOr:
      return a | b;
    case AluOp::kXor:
      return a ^ b;
    case AluOp::kShl:
      return a << (b & 63);
    case AluOp::kShr:
      return a >> (b & 63);
    case AluOp::kMul:
      return a * b;
    case AluOp::kDiv:
      return b == 0 ? ~0ULL : a / b;
    case AluOp::kMovImm:
      return b;
  }
  return 0;
}

bool eval_cond(CondOp op, std::uint64_t a, std::uint64_t b) {
  switch (op) {
    case CondOp::kEq:
      return a == b;
    case CondOp::kNe:
      return a != b;
    case CondOp::kLt:
      return static_cast<std::int64_t>(a) < static_cast<std::int64_t>(b);
    case CondOp::kGe:
      return static_cast<std::int64_t>(a) >= static_cast<std::int64_t>(b);
    case CondOp::kLtu:
      return a < b;
    case CondOp::kGeu:
      return a >= b;
  }
  return false;
}

namespace {
const char* op_name(OpClass op) {
  switch (op) {
    case OpClass::kNop:
      return "nop";
    case OpClass::kAlu:
      return "alu";
    case OpClass::kMul:
      return "mul";
    case OpClass::kDiv:
      return "div";
    case OpClass::kLoad:
      return "load";
    case OpClass::kStore:
      return "store";
    case OpClass::kBranch:
      return "br";
    case OpClass::kJump:
      return "jmp";
    case OpClass::kBranchIndirect:
      return "br.ind";
    case OpClass::kCall:
      return "call";
    case OpClass::kRet:
      return "ret";
    case OpClass::kFlush:
      return "clflush";
    case OpClass::kFence:
      return "fence";
    case OpClass::kRdCycle:
      return "rdcycle";
    case OpClass::kHalt:
      return "halt";
  }
  return "?";
}
}  // namespace

std::string to_string(const Instruction& inst) {
  std::ostringstream oss;
  oss << op_name(inst.op) << " d=r" << static_cast<int>(inst.dst) << " s1=r"
      << static_cast<int>(inst.src1) << " s2=r" << static_cast<int>(inst.src2)
      << " imm=" << inst.imm;
  if (inst.is_branch()) oss << " tgt=0x" << std::hex << inst.target;
  return oss.str();
}

}  // namespace safespec::isa
