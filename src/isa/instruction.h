// The SafeSpec micro-ISA.
//
// The simulator is execute-driven: instructions carry real semantics
// (register values, memory contents, permission faults) because the
// speculation attacks fundamentally depend on data flow — a speculatively
// loaded secret steering the address of a dependent load. A trace-driven
// model cannot express that.
//
// The ISA is deliberately small (RISC-flavoured, 32 integer registers,
// 4-byte fixed encoding for i-cache footprint purposes) but sufficient to
// express every PoC in the paper: bounds-checked gadgets (Spectre v1),
// indirect-branch hijack (Spectre v2), kernel reads with delayed faults
// (Meltdown), data-dependent branch fans (the Fig 5 i-cache variant),
// page-granular probes (TLB variants) and in-program timing (rdtscp).
#pragma once

#include <cstdint>
#include <string>

#include "common/types.h"

namespace safespec::isa {

/// Architected size of one instruction in bytes; a 64 B i-cache line holds
/// 16 instructions.
inline constexpr Addr kInstrBytes = 4;

/// Major operation class. Determines which pipeline resources an
/// instruction uses and how the core executes it.
enum class OpClass : std::uint8_t {
  kNop,             ///< no effect, 1-cycle ALU slot
  kAlu,             ///< integer ALU op, 1 cycle
  kMul,             ///< integer multiply, 3 cycles
  kDiv,             ///< integer divide, 20 cycles
  kLoad,            ///< memory read:  dst = MEM64[R[src1] + imm]
  kStore,           ///< memory write: MEM64[R[src1] + imm] = R[src2]
  kBranch,          ///< conditional direct branch on cond(R[src1], R[src2])
  kJump,            ///< unconditional direct branch
  kBranchIndirect,  ///< indirect branch: target = R[src1] + imm
  kCall,            ///< direct call: link reg <- pc+4, jump to target
  kRet,             ///< return: target = R[link]
  kFlush,           ///< clflush: evict line at R[src1] + imm from all caches
  kFence,           ///< serializing fence: dispatch stalls until ROB drains
  kRdCycle,         ///< dst = current core cycle (rdtscp analogue)
  kHalt,            ///< stop simulation
};

/// ALU operation selector for kAlu / kMul / kDiv.
enum class AluOp : std::uint8_t {
  kAdd,
  kSub,
  kAnd,
  kOr,
  kXor,
  kShl,
  kShr,
  kMul,
  kDiv,
  kMovImm,  ///< dst = imm (src operands ignored)
};

/// Comparison predicate for conditional branches.
enum class CondOp : std::uint8_t {
  kEq,   ///< R[src1] == R[src2]
  kNe,
  kLt,   ///< signed less-than
  kGe,
  kLtu,  ///< unsigned less-than
  kGeu,
};

/// Link register used by kCall / kRet (like RISC ra).
inline constexpr RegIndex kLinkReg = 31;

/// One static instruction. Plain value type; `Program` owns the stream.
struct Instruction {
  OpClass op = OpClass::kNop;
  AluOp alu = AluOp::kAdd;
  CondOp cond = CondOp::kEq;
  RegIndex dst = kZeroReg;
  RegIndex src1 = kZeroReg;
  RegIndex src2 = kZeroReg;
  /// Immediate operand: ALU operand-2 when use_imm, load/store/indirect
  /// displacement, or kMovImm payload.
  std::int64_t imm = 0;
  /// Static target of kBranch (taken direction), kJump, kCall.
  Addr target = 0;
  /// ALU operand 2 comes from imm instead of R[src2].
  bool use_imm = false;

  bool is_branch() const {
    return op == OpClass::kBranch || op == OpClass::kJump ||
           op == OpClass::kBranchIndirect || op == OpClass::kCall ||
           op == OpClass::kRet;
  }
  bool is_memory() const {
    return op == OpClass::kLoad || op == OpClass::kStore ||
           op == OpClass::kFlush;
  }
  bool writes_register() const {
    return (op == OpClass::kAlu || op == OpClass::kMul ||
            op == OpClass::kDiv || op == OpClass::kLoad ||
            op == OpClass::kRdCycle || op == OpClass::kCall) &&
           dst != kZeroReg;
  }
};

/// Evaluates an ALU/MUL/DIV operation. Division by zero yields all-ones
/// (matching x86's #DE being out of scope — workloads never divide by 0;
/// the total function keeps the simulator exception-free here).
std::uint64_t eval_alu(AluOp op, std::uint64_t a, std::uint64_t b);

/// Evaluates a branch predicate.
bool eval_cond(CondOp op, std::uint64_t a, std::uint64_t b);

/// Human-readable disassembly (for logs and test failure messages).
std::string to_string(const Instruction& inst);

}  // namespace safespec::isa
