// Combined branch-prediction unit: direction predictor + BTB + RSB, plus
// the explicit adversarial API the threat model grants the attacker
// (arbitrary mistraining and direct pollution).
#pragma once

#include <memory>

#include "common/stats.h"
#include "common/types.h"
#include "isa/instruction.h"
#include "predictor/branch_predictor.h"
#include "predictor/btb.h"

namespace safespec::predictor {

struct PredictorConfig {
  DirectionConfig direction;
  BtbConfig btb;
  int rsb_depth = 16;
};

/// What fetch should do after a (possible) branch.
struct Prediction {
  bool taken = false;     ///< for conditional branches
  Addr target = 0;        ///< predicted next pc when taken/indirect
  bool target_known = true;
};

/// Front-end prediction for every branch flavour in the micro-ISA.
class PredictorUnit {
 public:
  explicit PredictorUnit(const PredictorConfig& config);

  /// Predicts the outcome of branch `inst` at `pc`. For conditional
  /// branches the static target is encoded in the instruction; for
  /// indirect branches the BTB supplies it (target_known=false on BTB
  /// miss — fetch then stalls until resolution, like a real front end
  /// with no target).
  Prediction predict(Addr pc, const isa::Instruction& inst);

  /// Resolution-time training: direction tables and BTB learn the actual
  /// outcome/target.
  void train(Addr pc, const isa::Instruction& inst, bool taken, Addr target);

  // ---- adversarial API (threat model P3) ------------------------------
  /// Installs an arbitrary BTB target for `pc` — Spectre v2 poisoning, as
  /// an attacker achieves with a colliding branch on the same core.
  void poison_btb(Addr pc, Addr target) { btb_.update(pc, target); }

  /// Forces the direction predictor toward `taken` for `pc` by repeated
  /// training — Spectre v1 mistraining without running the victim.
  void mistrain_direction(Addr pc, bool taken, int repetitions = 8);

  void reset();

  Rsb& rsb() { return rsb_; }
  Btb& btb() { return btb_; }
  HitMiss& direction_stats() { return direction_stats_; }
  const HitMiss& direction_stats() const { return direction_stats_; }

  /// Records whether the last prediction for a resolved conditional
  /// branch was correct (bookkeeping for mispredict-rate stats).
  void note_resolution(bool correct);

 private:
  PredictorConfig config_;
  std::unique_ptr<DirectionPredictor> direction_;
  Btb btb_;
  Rsb rsb_;
  HitMiss direction_stats_;  ///< hits = correct predictions
};

}  // namespace safespec::predictor
