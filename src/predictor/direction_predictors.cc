#include "predictor/branch_predictor.h"

#include <algorithm>
#include <cstdlib>
#include <vector>

namespace safespec::predictor {

namespace {

/// Classic 2-bit saturating counter table indexed by pc.
class BimodalPredictor final : public DirectionPredictor {
 public:
  explicit BimodalPredictor(int table_bits)
      : mask_((1u << table_bits) - 1), table_(1u << table_bits, 1) {}

  bool predict(Addr pc) override { return table_[index(pc)] >= 2; }

  void update(Addr pc, bool taken) override {
    std::uint8_t& ctr = table_[index(pc)];
    if (taken) {
      ctr = static_cast<std::uint8_t>(std::min<int>(3, ctr + 1));
    } else {
      ctr = static_cast<std::uint8_t>(std::max<int>(0, ctr - 1));
    }
  }

  void reset() override { std::fill(table_.begin(), table_.end(), 1); }

 private:
  std::size_t index(Addr pc) const { return (pc >> 2) & mask_; }

  std::uint32_t mask_;
  std::vector<std::uint8_t> table_;
};

/// gshare: global history XOR pc indexes a 2-bit counter table.
class GsharePredictor final : public DirectionPredictor {
 public:
  GsharePredictor(int table_bits, int history_bits)
      : mask_((1u << table_bits) - 1),
        history_mask_((1ull << history_bits) - 1),
        table_(1u << table_bits, 1) {}

  bool predict(Addr pc) override { return table_[index(pc)] >= 2; }

  void update(Addr pc, bool taken) override {
    std::uint8_t& ctr = table_[index(pc)];
    if (taken) {
      ctr = static_cast<std::uint8_t>(std::min<int>(3, ctr + 1));
    } else {
      ctr = static_cast<std::uint8_t>(std::max<int>(0, ctr - 1));
    }
    history_ = ((history_ << 1) | (taken ? 1 : 0)) & history_mask_;
  }

  void reset() override {
    std::fill(table_.begin(), table_.end(), 1);
    history_ = 0;
  }

 private:
  std::size_t index(Addr pc) const {
    return ((pc >> 2) ^ history_) & mask_;
  }

  std::uint32_t mask_;
  std::uint64_t history_mask_;
  std::uint64_t history_ = 0;
  std::vector<std::uint8_t> table_;
};

/// Perceptron predictor (Jimenez & Lin, HPCA'01): a row of signed weights
/// dotted with the global history decides the direction; trained when
/// wrong or under-confident.
class PerceptronPredictor final : public DirectionPredictor {
 public:
  PerceptronPredictor(int table_bits, int num_weights)
      : mask_((1u << table_bits) - 1),
        num_weights_(num_weights),
        threshold_(static_cast<int>(1.93 * num_weights + 14)),
        weights_(static_cast<std::size_t>(1u << table_bits) * (num_weights + 1),
                 0) {}

  bool predict(Addr pc) override { return output(pc) >= 0; }

  void update(Addr pc, bool taken) override {
    const int y = output(pc);
    const bool predicted = y >= 0;
    if (predicted != taken || std::abs(y) <= threshold_) {
      std::int16_t* w = row(pc);
      const int t = taken ? 1 : -1;
      w[0] = clamp_weight(w[0] + t);  // bias
      for (int i = 0; i < num_weights_; ++i) {
        const int h = ((history_ >> i) & 1) ? 1 : -1;
        w[i + 1] = clamp_weight(w[i + 1] + t * h);
      }
    }
    history_ = (history_ << 1) | (taken ? 1 : 0);
  }

  void reset() override {
    std::fill(weights_.begin(), weights_.end(), 0);
    history_ = 0;
  }

 private:
  static std::int16_t clamp_weight(int v) {
    return static_cast<std::int16_t>(std::clamp(v, -128, 127));
  }

  std::int16_t* row(Addr pc) {
    return &weights_[((pc >> 2) & mask_) *
                     static_cast<std::size_t>(num_weights_ + 1)];
  }

  int output(Addr pc) {
    const std::int16_t* w = row(pc);
    int y = w[0];
    for (int i = 0; i < num_weights_; ++i) {
      const int h = ((history_ >> i) & 1) ? 1 : -1;
      y += w[i + 1] * h;
    }
    return y;
  }

  std::uint32_t mask_;
  int num_weights_;
  int threshold_;
  std::uint64_t history_ = 0;
  std::vector<std::int16_t> weights_;
};

}  // namespace

std::unique_ptr<DirectionPredictor> make_direction_predictor(
    const DirectionConfig& config) {
  switch (config.kind) {
    case DirectionKind::kBimodal:
      return std::make_unique<BimodalPredictor>(config.table_bits);
    case DirectionKind::kGshare:
      return std::make_unique<GsharePredictor>(config.table_bits,
                                               config.history_bits);
    case DirectionKind::kPerceptron:
      return std::make_unique<PerceptronPredictor>(config.table_bits,
                                                   config.perceptron_weights);
  }
  return nullptr;
}

}  // namespace safespec::predictor
