// Branch target buffer and return stack buffer.
//
// The BTB is the structure Spectre v2 poisons: any code sharing the core
// can install a target for a victim's indirect branch (threat model P3).
// We model a direct-mapped-by-set, set-associative BTB tagged by pc with
// no privilege separation — faithfully insecure, as on pre-mitigation
// hardware.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/types.h"

namespace safespec::predictor {

struct BtbConfig {
  int entries = 1024;
  int ways = 4;
  int num_sets() const { return entries / ways; }
};

/// Branch target buffer. Lookup by branch pc; returns predicted target.
class Btb {
 public:
  explicit Btb(const BtbConfig& config);

  std::optional<Addr> lookup(Addr pc);

  /// Installs / updates the target for `pc`. This is both the legitimate
  /// training path and the Spectre-v2 poisoning path — the hardware
  /// cannot tell them apart, which is the point.
  void update(Addr pc, Addr target);

  void reset();
  const BtbConfig& config() const { return config_; }

 private:
  struct Entry {
    Addr pc = 0;
    Addr target = 0;
    bool valid = false;
    std::uint64_t stamp = 0;
  };

  int set_of(Addr pc) const {
    return static_cast<int>((pc >> 2) % static_cast<Addr>(num_sets_));
  }

  BtbConfig config_;
  int num_sets_;
  std::vector<Entry> entries_;
  std::uint64_t tick_ = 0;
};

/// Return stack buffer: a small circular stack of return addresses used
/// to predict kRet targets (the structure retpoline deliberately
/// repurposes; modelled so the related-work behaviours are expressible).
class Rsb {
 public:
  explicit Rsb(int depth = 16) : stack_(depth) {}

  void push(Addr return_addr);
  /// Predicted return target; nullopt when empty (underflow).
  std::optional<Addr> pop();
  void reset();

  int depth() const { return static_cast<int>(stack_.size()); }
  int occupancy() const { return occupancy_; }

 private:
  std::vector<Addr> stack_;
  int top_ = 0;
  int occupancy_ = 0;
};

}  // namespace safespec::predictor
