#include "predictor/btb.h"

#include <stdexcept>

namespace safespec::predictor {

Btb::Btb(const BtbConfig& config)
    : config_(config), num_sets_(config.num_sets()) {
  if (config_.entries <= 0 || config_.ways <= 0 ||
      config_.entries % config_.ways != 0) {
    throw std::invalid_argument("Btb: entries must divide evenly into ways");
  }
  entries_.resize(static_cast<std::size_t>(config_.entries));
}

std::optional<Addr> Btb::lookup(Addr pc) {
  ++tick_;
  const std::size_t base =
      static_cast<std::size_t>(set_of(pc)) * config_.ways;
  for (int w = 0; w < config_.ways; ++w) {
    Entry& e = entries_[base + w];
    if (e.valid && e.pc == pc) {
      e.stamp = tick_;
      return e.target;
    }
  }
  return std::nullopt;
}

void Btb::update(Addr pc, Addr target) {
  ++tick_;
  const std::size_t base =
      static_cast<std::size_t>(set_of(pc)) * config_.ways;
  // Update in place if tagged.
  for (int w = 0; w < config_.ways; ++w) {
    Entry& e = entries_[base + w];
    if (e.valid && e.pc == pc) {
      e.target = target;
      e.stamp = tick_;
      return;
    }
  }
  // Free way, else LRU victim.
  Entry* victim = nullptr;
  for (int w = 0; w < config_.ways; ++w) {
    Entry& e = entries_[base + w];
    if (!e.valid) {
      victim = &e;
      break;
    }
    if (victim == nullptr || e.stamp < victim->stamp) victim = &e;
  }
  victim->valid = true;
  victim->pc = pc;
  victim->target = target;
  victim->stamp = tick_;
}

void Btb::reset() {
  for (Entry& e : entries_) e.valid = false;
  tick_ = 0;
}

void Rsb::push(Addr return_addr) {
  stack_[top_] = return_addr;
  top_ = (top_ + 1) % static_cast<int>(stack_.size());
  if (occupancy_ < static_cast<int>(stack_.size())) ++occupancy_;
}

std::optional<Addr> Rsb::pop() {
  if (occupancy_ == 0) return std::nullopt;
  top_ = (top_ - 1 + static_cast<int>(stack_.size())) %
         static_cast<int>(stack_.size());
  --occupancy_;
  return stack_[top_];
}

void Rsb::reset() {
  top_ = 0;
  occupancy_ = 0;
}

}  // namespace safespec::predictor
