// Direction-predictor interface.
//
// The SafeSpec threat model (§II-C) assumes the *strongest possible*
// adversary against the predictor: its state is effectively attacker-
// programmable. The defense therefore never relies on predictor hygiene —
// but the simulator still needs realistic predictors so that (a) Spectre
// mistraining works the way the paper describes and (b) the performance
// study sees representative speculation depth.
#pragma once

#include <cstdint>
#include <memory>

#include "common/types.h"

namespace safespec::predictor {

/// Predicts taken/not-taken for conditional branches and learns from
/// resolved outcomes. Implementations are deterministic.
class DirectionPredictor {
 public:
  virtual ~DirectionPredictor() = default;

  /// Predicted direction for the branch at `pc`.
  virtual bool predict(Addr pc) = 0;

  /// Trains on a resolved branch. Called for every conditional branch at
  /// resolution time (the attacker-visible training path).
  virtual void update(Addr pc, bool taken) = 0;

  /// Resets all tables to the power-on state.
  virtual void reset() = 0;
};

enum class DirectionKind : std::uint8_t { kBimodal, kGshare, kPerceptron };

struct DirectionConfig {
  DirectionKind kind = DirectionKind::kGshare;
  int table_bits = 12;       ///< log2 of table entries
  int history_bits = 12;     ///< gshare/perceptron global history length
  int perceptron_weights = 16;
};

/// Factory for the configured predictor flavour.
std::unique_ptr<DirectionPredictor> make_direction_predictor(
    const DirectionConfig& config);

}  // namespace safespec::predictor
