#include "predictor/predictor_unit.h"

namespace safespec::predictor {

PredictorUnit::PredictorUnit(const PredictorConfig& config)
    : config_(config),
      direction_(make_direction_predictor(config.direction)),
      btb_(config.btb),
      rsb_(config.rsb_depth) {}

Prediction PredictorUnit::predict(Addr pc, const isa::Instruction& inst) {
  using isa::OpClass;
  Prediction p;
  switch (inst.op) {
    case OpClass::kJump:
      p.taken = true;
      p.target = inst.target;
      return p;
    case OpClass::kCall:
      p.taken = true;
      p.target = inst.target;
      rsb_.push(pc + isa::kInstrBytes);
      return p;
    case OpClass::kRet: {
      p.taken = true;
      const auto top = rsb_.pop();
      if (top.has_value()) {
        p.target = *top;
      } else if (const auto btb_target = btb_.lookup(pc);
                 btb_target.has_value()) {
        p.target = *btb_target;  // RSB underflow falls back to BTB
      } else {
        p.target_known = false;
      }
      return p;
    }
    case OpClass::kBranchIndirect: {
      p.taken = true;
      const auto target = btb_.lookup(pc);
      if (target.has_value()) {
        p.target = *target;
      } else {
        p.target_known = false;
      }
      return p;
    }
    case OpClass::kBranch:
      p.taken = direction_->predict(pc);
      p.target = inst.target;  // static taken-target; fall-through otherwise
      return p;
    default:
      return p;  // not a branch: never taken
  }
}

void PredictorUnit::train(Addr pc, const isa::Instruction& inst, bool taken,
                          Addr target) {
  using isa::OpClass;
  switch (inst.op) {
    case OpClass::kBranch:
      direction_->update(pc, taken);
      break;
    case OpClass::kBranchIndirect:
    case OpClass::kRet:
      btb_.update(pc, target);
      break;
    case OpClass::kJump:
    case OpClass::kCall:
      // Static targets; nothing to learn.
      break;
    default:
      break;
  }
}

void PredictorUnit::mistrain_direction(Addr pc, bool taken, int repetitions) {
  for (int i = 0; i < repetitions; ++i) direction_->update(pc, taken);
}

void PredictorUnit::note_resolution(bool correct) {
  if (correct) {
    direction_stats_.hits.add();
  } else {
    direction_stats_.misses.add();
  }
}

void PredictorUnit::reset() {
  direction_->reset();
  btb_.reset();
  rsb_.reset();
  direction_stats_.reset();
}

}  // namespace safespec::predictor
