#include "sim/simulator.h"

namespace safespec::sim {

Simulator::Simulator(const cpu::CoreConfig& config, isa::Program program)
    : program_(std::move(program)) {
  core_ = std::make_unique<cpu::Core>(config, &program_, &mem_, &page_table_);
}

void Simulator::map_region(Addr base, std::uint64_t bytes,
                           memory::PagePerm perm) {
  const Addr first = page_of(base);
  const Addr last = page_of(base + (bytes == 0 ? 0 : bytes - 1));
  for (Addr page = first; page <= last; ++page) {
    mem_.map_page(page, perm);
    page_table_.map_identity(page,
                             perm == memory::PagePerm::kKernel);
  }
}

void Simulator::map_text() {
  for (const Addr pc : program_.pcs()) {
    const Addr page = page_of(pc);
    if (!mem_.is_mapped(page)) {
      mem_.map_page(page, memory::PagePerm::kUser);
      page_table_.map_identity(page, /*kernel_only=*/false);
    }
  }
}

SimResult Simulator::run(Cycle max_cycles, std::uint64_t max_instrs) {
  const auto stop = core_->run(max_cycles, max_instrs);
  return snapshot(stop);
}

SimResult Simulator::snapshot(cpu::StopReason stop) const {
  const cpu::Core& core = *core_;
  SimResult r;
  r.stop = stop;
  r.cycles = core.stats().cycles;
  r.committed_instrs = core.stats().committed_instrs;
  r.ipc = core.stats().ipc();

  r.dcache_accesses = core.hierarchy().l1d().stats().accesses();
  r.dcache_misses = core.hierarchy().l1d().stats().misses.value();
  r.shadow_dcache_hits = core.shadow_dcache().stats().hits.value();

  // i-side figures use the per-instruction fetch accounting (each fetch
  // is served by exactly one of L1I / shadow / below).
  r.icache_accesses = core.stats().fetch_accesses;
  r.icache_misses = core.stats().fetch_misses;
  r.shadow_icache_hits = core.stats().fetch_shadow_hits;

  r.shadow_dcache_commit_rate = core.shadow_dcache().stats().commit_rate();
  r.shadow_icache_commit_rate = core.shadow_icache().stats().commit_rate();
  r.shadow_dcache_p9999 =
      core.shadow_dcache().stats().occupancy.percentile(0.9999);
  r.shadow_icache_p9999 =
      core.shadow_icache().stats().occupancy.percentile(0.9999);
  r.shadow_dtlb_p9999 =
      core.shadow_dtlb().stats().occupancy.percentile(0.9999);
  r.shadow_itlb_p9999 =
      core.shadow_itlb().stats().occupancy.percentile(0.9999);

  r.mispredicts = core.stats().mispredicts;
  r.squashed_instrs = core.stats().squashed_instrs;
  r.faults = core.stats().faults;
  return r;
}

}  // namespace safespec::sim
