#include "sim/simulator.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>
#include <vector>

#include "sim/functional.h"

namespace safespec::sim {

void SamplingSpec::validate() const {
  if (enabled() && detail_instrs == 0) {
    throw std::invalid_argument(
        "sampling.detail_instrs must be positive when sampling is enabled "
        "(fast_forward_interval > 0), or nothing is ever measured");
  }
}

Simulator::Simulator(const cpu::CoreConfig& config, isa::Program program) {
  const int n = std::max(1, config.cores);
  std::vector<isa::Program> programs;
  programs.reserve(static_cast<std::size_t>(n));
  for (int c = 1; c < n; ++c) programs.push_back(program);  // copies
  programs.insert(programs.begin(), std::move(program));
  build_cores(config, std::move(programs));
}

Simulator::Simulator(const cpu::CoreConfig& config,
                     std::vector<isa::Program> programs) {
  if (programs.empty()) {
    throw std::invalid_argument("Simulator: at least one program required");
  }
  build_cores(config, std::move(programs));
}

void Simulator::build_cores(const cpu::CoreConfig& config,
                            std::vector<isa::Program> programs) {
  // The shared L2/L3 get the same policy tuning (SHARP cache protection,
  // detector thresholds) the cores apply to their private levels.
  memory::HierarchyConfig shared_config = config.hierarchy;
  policy::named_policy(config.policy)
      .tune(shared_config, config.sharp_alarm_threshold,
            config.sharp_alarm_epoch);
  shared_levels_ = std::make_unique<memory::SharedLevels>(shared_config);
  ctx_.reserve(programs.size());
  for (std::size_t c = 0; c < programs.size(); ++c) {
    auto ctx = std::make_unique<CoreContext>(std::move(programs[c]));
    ctx->core = std::make_unique<cpu::Core>(
        config, &ctx->program, &ctx->mem, &ctx->page_table,
        shared_levels_.get(), static_cast<int>(c));
    ctx_.push_back(std::move(ctx));
  }
}

Simulator::~Simulator() = default;
Simulator::Simulator(Simulator&&) noexcept = default;
Simulator& Simulator::operator=(Simulator&&) noexcept = default;

FunctionalEngine& Simulator::functional_engine() {
  if (!engine_) {
    engine_ = std::make_unique<FunctionalEngine>(
        &ctx_[0]->program, &ctx_[0]->mem, &ctx_[0]->page_table);
  }
  return *engine_;
}

void Simulator::map_region(Addr base, std::uint64_t bytes,
                           memory::PagePerm perm) {
  for (int c = 0; c < num_cores(); ++c) map_region_on(c, base, bytes, perm);
}

void Simulator::map_region_on(int c, Addr base, std::uint64_t bytes,
                              memory::PagePerm perm) {
  const Addr first = page_of(base);
  const Addr last = page_of(base + (bytes == 0 ? 0 : bytes - 1));
  for (Addr page = first; page <= last; ++page) {
    mem(c).map_page(page, perm);
    ctx_[c]->page_table.map_identity(page,
                                     perm == memory::PagePerm::kKernel);
  }
}

void Simulator::map_text() {
  for (const auto& ctx : ctx_) {
    for (const Addr pc : ctx->program.pcs()) {
      const Addr page = page_of(pc);
      if (!ctx->mem.is_mapped(page)) {
        ctx->mem.map_page(page, memory::PagePerm::kUser);
        ctx->page_table.map_identity(page, /*kernel_only=*/false);
      }
    }
  }
}

void Simulator::poke(Addr addr, std::uint64_t value) {
  for (const auto& ctx : ctx_) ctx->mem.write64(addr, value);
}

SimResult Simulator::run(Cycle max_cycles, std::uint64_t max_instrs) {
  // cores=1 delegates to the historical single-core loop — the
  // bit-identity guarantee for every golden CSV and perf cell.
  const auto stop = ctx_.size() == 1
                        ? ctx_[0]->core->run(max_cycles, max_instrs)
                        : run_multi(max_cycles, max_instrs);
  return snapshot(stop);
}

cpu::StopReason Simulator::run_multi(Cycle max_cycles,
                                     std::uint64_t max_instrs) {
  cpu::Core& primary = *ctx_[0]->core;
  const std::uint64_t committed_at_start = primary.stats().committed_instrs;

  // Per-core scheduler state; the wedge backstop mirrors Core::run's
  // (nothing committed for a long time => malformed program).
  struct Sched {
    bool done = false;
    Cycle last_progress = 0;
    std::uint64_t last_committed = 0;
  };
  std::vector<Sched> sched(ctx_.size());
  for (std::size_t i = 0; i < ctx_.size(); ++i) {
    sched[i].done = ctx_[i]->core->finished();
    sched[i].last_committed = ctx_[i]->core->stats().committed_instrs;
  }
  const auto all_done = [&] {
    for (const Sched& s : sched) {
      if (!s.done) return false;
    }
    return true;
  };

  // One global schedule cycle steps every live core once, core 0 first —
  // fully deterministic. The cycle budget bounds *schedule* cycles, so a
  // spinning secondary core cannot outlive it after core 0 finishes.
  Cycle t = 0;
  while (!all_done()) {
    if (t >= max_cycles) return cpu::StopReason::kMaxCycles;
    if (primary.stats().committed_instrs - committed_at_start >= max_instrs) {
      return cpu::StopReason::kMaxInstrs;
    }
    for (std::size_t i = 0; i < ctx_.size(); ++i) {
      if (sched[i].done) continue;
      cpu::Core& core = *ctx_[i]->core;
      core.step();
      const std::uint64_t committed = core.stats().committed_instrs;
      if (committed != sched[i].last_committed) {
        sched[i].last_committed = committed;
        sched[i].last_progress = t;
      } else if (t - sched[i].last_progress > 100'000) {
        sched[i].done = true;  // wedged
      }
      if (core.finished()) sched[i].done = true;
    }
    ++t;
  }
  // Every core ran to rest: report the primary core's fate. A halted
  // core carries its own reason (set at the halt/fault commit site); a
  // finished-or-wedged one never reached a halt.
  return primary.halted() ? primary.stop_reason()
                          : cpu::StopReason::kFaultNoHandler;
}

void Simulator::restore(const ArchCheckpoint& cp) {
  // The fast path records no delta (functional engine and core share
  // core 0's memory, so stores are already applied); re-applying new
  // values is idempotent either way.
  for (const auto& w : cp.mem_delta) ctx_[0]->mem.write64(w.addr, w.new_value);
  ctx_[0]->core->restore_arch(cp.regs, cp.pc);
}

SimResult Simulator::run_sampled(const SamplingSpec& spec, Cycle max_cycles,
                                 std::uint64_t max_instrs) {
  spec.validate();
  // Disabled sampling is *exactly* the detailed run — the golden/ff=0
  // guarantee: bit-identical cycle counts.
  if (!spec.enabled()) return run(max_cycles, max_instrs);
  if (ctx_.size() > 1) {
    throw std::invalid_argument(
        "sampled simulation (fast_forward_interval > 0) supports a single "
        "core only; run cores>1 machines in detailed mode");
  }
  cpu::Core& core0 = *ctx_[0]->core;

  // Cached engine: predecode is paid once per simulator; reset() makes
  // this call's behaviour bit-identical to a freshly built engine.
  FunctionalEngine& engine = functional_engine();
  engine.reset();
  SamplingStats s;
  s.enabled = true;
  std::vector<double> ipc_samples;
  std::uint64_t remaining = max_instrs;
  Cycle cycles_left = max_cycles;  // detailed cycles only
  std::uint64_t ff_commits = 0;
  std::uint64_t ff_faults = 0;
  auto stop = cpu::StopReason::kMaxInstrs;
  bool done = false;

  // One detailed segment of up to `n` committed instructions (the core
  // may overshoot by up to commit_width - 1; the actual count is what we
  // account). Decrements the shared cycle/instruction budgets.
  const auto detail_segment = [&](std::uint64_t n, std::uint64_t& commits,
                                  Cycle& cycles) {
    const std::uint64_t c0 = core0.stats().committed_instrs;
    const Cycle y0 = core0.stats().cycles;
    const auto seg_stop = core0.run(cycles_left, n);
    commits = core0.stats().committed_instrs - c0;
    cycles = core0.stats().cycles - y0;
    cycles_left = cycles >= cycles_left ? 0 : cycles_left - cycles;
    remaining -= std::min(commits, remaining);
    return seg_stop;
  };

  while (remaining > 0 && !done) {
    // ---- fast-forward (functional, no cycles) --------------------------
    const std::uint64_t c0 = engine.committed();
    const std::uint64_t f0 = engine.faults();
    const auto ff_stop =
        engine.run(std::min(spec.fast_forward_interval, remaining));
    ff_commits += engine.committed() - c0;
    ff_faults += engine.faults() - f0;
    remaining -= std::min(engine.committed() - c0, remaining);
    if (ff_stop != cpu::StopReason::kMaxInstrs) {
      stop = ff_stop;  // program finished (halt / unhandled fault)
      break;
    }
    if (remaining == 0) break;

    // ---- detailed window: restore, warm up, measure --------------------
    restore(engine.checkpoint());
    if (spec.warmup_instrs > 0) {
      std::uint64_t commits = 0;
      Cycle cycles = 0;
      const auto st = detail_segment(std::min(spec.warmup_instrs, remaining),
                                     commits, cycles);
      s.warmup_commits += commits;
      if (st != cpu::StopReason::kMaxInstrs) {
        stop = st;
        done = true;
      }
    }
    if (!done && remaining > 0) {
      std::uint64_t commits = 0;
      Cycle cycles = 0;
      const auto st = detail_segment(std::min(spec.detail_instrs, remaining),
                                     commits, cycles);
      s.measured_commits += commits;
      s.measured_cycles += cycles;
      if (commits > 0 && cycles > 0) {
        ++s.windows;
        ipc_samples.push_back(static_cast<double>(commits) /
                              static_cast<double>(cycles));
      }
      if (st != cpu::StopReason::kMaxInstrs) {
        stop = st;
        done = true;
      }
    }
    if (done || remaining == 0) break;

    // ---- hand the detailed state back to the engine --------------------
    ArchCheckpoint cp;
    for (int r = 0; r < kNumArchRegs; ++r) {
      cp.regs[static_cast<std::size_t>(r)] =
          core0.reg(static_cast<RegIndex>(r));
    }
    cp.pc = core0.next_commit_pc();
    // Keep the engine's counters global (fast-forwarded + detailed) so
    // checkpoints and kRdCycle stay monotone across windows.
    cp.committed = ff_commits + core0.stats().committed_instrs;
    cp.faults = ff_faults + core0.stats().faults;
    cp.started = true;
    engine.restore(cp);
  }

  // The documented SamplingStats contract, keyed explicitly on the
  // window count (ipc_samples grows in lockstep with s.windows): the
  // mean needs one window; stddev/ci95 need at least two — with a single
  // window the n-1 Bessel divisor would be a division by zero, and the
  // contract says both stay exactly 0.0.
  if (s.windows > 0) {
    double sum = 0.0;
    for (const double x : ipc_samples) sum += x;
    s.ipc_mean = sum / static_cast<double>(s.windows);
  }
  if (s.windows >= 2) {
    double sq = 0.0;
    for (const double x : ipc_samples) {
      sq += (x - s.ipc_mean) * (x - s.ipc_mean);
    }
    s.ipc_stddev = std::sqrt(sq / static_cast<double>(s.windows - 1));
    s.ipc_ci95 =
        1.96 * s.ipc_stddev / std::sqrt(static_cast<double>(s.windows));
  }
  s.fast_forwarded = ff_commits;

  SimResult r = snapshot(stop);
  // Core stats cover only the detailed windows; fold in the
  // fast-forwarded instructions and the faults the engine handled.
  r.committed_instrs += ff_commits;
  r.committed_all_cores += ff_commits;
  r.faults += ff_faults;
  if (s.windows > 0) r.ipc = s.ipc_mean;  // sampled point estimate
  r.sampling = s;
  return r;
}

SimResult Simulator::snapshot(cpu::StopReason stop) const {
  const cpu::Core& core = *ctx_[0]->core;
  SimResult r;
  r.stop = stop;
  r.cycles = core.stats().cycles;
  r.committed_instrs = core.stats().committed_instrs;
  r.ipc = core.stats().ipc();

  for (const auto& ctx : ctx_) {
    r.committed_all_cores += ctx->core->stats().committed_instrs;
  }
  r.cross_core_evictions = shared_levels_->cross_core_evictions();
  r.sharp_alarms = shared_levels_->sharp_alarms();
  r.sharp_detections = shared_levels_->sharp_detections();
  for (const auto& ctx : ctx_) {
    const memory::CacheHierarchy& h = ctx->core->hierarchy();
    r.sharp_alarms += h.l1i().sharp_alarms() + h.l1d().sharp_alarms();
    r.sharp_detections +=
        h.l1i().sharp_detections() + h.l1d().sharp_detections();
  }

  r.dcache_accesses = core.hierarchy().l1d().stats().accesses();
  r.dcache_misses = core.hierarchy().l1d().stats().misses.value();
  r.shadow_dcache_hits = core.shadow_dcache().stats().hits.value();

  // i-side figures use the per-instruction fetch accounting (each fetch
  // is served by exactly one of L1I / shadow / below).
  r.icache_accesses = core.stats().fetch_accesses;
  r.icache_misses = core.stats().fetch_misses;
  r.shadow_icache_hits = core.stats().fetch_shadow_hits;

  r.shadow_dcache_commit_rate = core.shadow_dcache().stats().commit_rate();
  r.shadow_icache_commit_rate = core.shadow_icache().stats().commit_rate();
  r.shadow_dcache_p9999 =
      core.shadow_dcache().stats().occupancy.percentile(0.9999);
  r.shadow_icache_p9999 =
      core.shadow_icache().stats().occupancy.percentile(0.9999);
  r.shadow_dtlb_p9999 =
      core.shadow_dtlb().stats().occupancy.percentile(0.9999);
  r.shadow_itlb_p9999 =
      core.shadow_itlb().stats().occupancy.percentile(0.9999);

  r.mispredicts = core.stats().mispredicts;
  r.squashed_instrs = core.stats().squashed_instrs;
  r.faults = core.stats().faults;
  return r;
}

}  // namespace safespec::sim
