#include "sim/simulator.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "sim/functional.h"

namespace safespec::sim {

void SamplingSpec::validate() const {
  if (enabled() && detail_instrs == 0) {
    throw std::invalid_argument(
        "sampling.detail_instrs must be positive when sampling is enabled "
        "(fast_forward_interval > 0), or nothing is ever measured");
  }
}

Simulator::Simulator(const cpu::CoreConfig& config, isa::Program program)
    : program_(std::move(program)) {
  core_ = std::make_unique<cpu::Core>(config, &program_, &mem_, &page_table_);
}

Simulator::~Simulator() = default;
Simulator::Simulator(Simulator&&) noexcept = default;
Simulator& Simulator::operator=(Simulator&&) noexcept = default;

FunctionalEngine& Simulator::functional_engine() {
  if (!engine_) {
    engine_ =
        std::make_unique<FunctionalEngine>(&program_, &mem_, &page_table_);
  }
  return *engine_;
}

void Simulator::map_region(Addr base, std::uint64_t bytes,
                           memory::PagePerm perm) {
  const Addr first = page_of(base);
  const Addr last = page_of(base + (bytes == 0 ? 0 : bytes - 1));
  for (Addr page = first; page <= last; ++page) {
    mem_.map_page(page, perm);
    page_table_.map_identity(page,
                             perm == memory::PagePerm::kKernel);
  }
}

void Simulator::map_text() {
  for (const Addr pc : program_.pcs()) {
    const Addr page = page_of(pc);
    if (!mem_.is_mapped(page)) {
      mem_.map_page(page, memory::PagePerm::kUser);
      page_table_.map_identity(page, /*kernel_only=*/false);
    }
  }
}

SimResult Simulator::run(Cycle max_cycles, std::uint64_t max_instrs) {
  const auto stop = core_->run(max_cycles, max_instrs);
  return snapshot(stop);
}

void Simulator::restore(const ArchCheckpoint& cp) {
  // The fast path records no delta (functional engine and core share
  // mem_, so stores are already applied); re-applying new values is
  // idempotent either way.
  for (const auto& w : cp.mem_delta) mem_.write64(w.addr, w.new_value);
  core_->restore_arch(cp.regs, cp.pc);
}

SimResult Simulator::run_sampled(const SamplingSpec& spec, Cycle max_cycles,
                                 std::uint64_t max_instrs) {
  spec.validate();
  // Disabled sampling is *exactly* the detailed run — the golden/ff=0
  // guarantee: bit-identical cycle counts.
  if (!spec.enabled()) return run(max_cycles, max_instrs);

  // Cached engine: predecode is paid once per simulator; reset() makes
  // this call's behaviour bit-identical to a freshly built engine.
  FunctionalEngine& engine = functional_engine();
  engine.reset();
  SamplingStats s;
  s.enabled = true;
  std::vector<double> ipc_samples;
  std::uint64_t remaining = max_instrs;
  Cycle cycles_left = max_cycles;  // detailed cycles only
  std::uint64_t ff_commits = 0;
  std::uint64_t ff_faults = 0;
  auto stop = cpu::StopReason::kMaxInstrs;
  bool done = false;

  // One detailed segment of up to `n` committed instructions (the core
  // may overshoot by up to commit_width - 1; the actual count is what we
  // account). Decrements the shared cycle/instruction budgets.
  const auto detail_segment = [&](std::uint64_t n, std::uint64_t& commits,
                                  Cycle& cycles) {
    const std::uint64_t c0 = core_->stats().committed_instrs;
    const Cycle y0 = core_->stats().cycles;
    const auto seg_stop = core_->run(cycles_left, n);
    commits = core_->stats().committed_instrs - c0;
    cycles = core_->stats().cycles - y0;
    cycles_left = cycles >= cycles_left ? 0 : cycles_left - cycles;
    remaining -= std::min(commits, remaining);
    return seg_stop;
  };

  while (remaining > 0 && !done) {
    // ---- fast-forward (functional, no cycles) --------------------------
    const std::uint64_t c0 = engine.committed();
    const std::uint64_t f0 = engine.faults();
    const auto ff_stop =
        engine.run(std::min(spec.fast_forward_interval, remaining));
    ff_commits += engine.committed() - c0;
    ff_faults += engine.faults() - f0;
    remaining -= std::min(engine.committed() - c0, remaining);
    if (ff_stop != cpu::StopReason::kMaxInstrs) {
      stop = ff_stop;  // program finished (halt / unhandled fault)
      break;
    }
    if (remaining == 0) break;

    // ---- detailed window: restore, warm up, measure --------------------
    restore(engine.checkpoint());
    if (spec.warmup_instrs > 0) {
      std::uint64_t commits = 0;
      Cycle cycles = 0;
      const auto st = detail_segment(std::min(spec.warmup_instrs, remaining),
                                     commits, cycles);
      s.warmup_commits += commits;
      if (st != cpu::StopReason::kMaxInstrs) {
        stop = st;
        done = true;
      }
    }
    if (!done && remaining > 0) {
      std::uint64_t commits = 0;
      Cycle cycles = 0;
      const auto st = detail_segment(std::min(spec.detail_instrs, remaining),
                                     commits, cycles);
      s.measured_commits += commits;
      s.measured_cycles += cycles;
      if (commits > 0 && cycles > 0) {
        ++s.windows;
        ipc_samples.push_back(static_cast<double>(commits) /
                              static_cast<double>(cycles));
      }
      if (st != cpu::StopReason::kMaxInstrs) {
        stop = st;
        done = true;
      }
    }
    if (done || remaining == 0) break;

    // ---- hand the detailed state back to the engine --------------------
    ArchCheckpoint cp;
    for (int r = 0; r < kNumArchRegs; ++r) {
      cp.regs[static_cast<std::size_t>(r)] =
          core_->reg(static_cast<RegIndex>(r));
    }
    cp.pc = core_->next_commit_pc();
    // Keep the engine's counters global (fast-forwarded + detailed) so
    // checkpoints and kRdCycle stay monotone across windows.
    cp.committed = ff_commits + core_->stats().committed_instrs;
    cp.faults = ff_faults + core_->stats().faults;
    cp.started = true;
    engine.restore(cp);
  }

  if (!ipc_samples.empty()) {
    double sum = 0.0;
    for (const double x : ipc_samples) sum += x;
    s.ipc_mean = sum / static_cast<double>(ipc_samples.size());
    if (ipc_samples.size() >= 2) {
      double sq = 0.0;
      for (const double x : ipc_samples) {
        sq += (x - s.ipc_mean) * (x - s.ipc_mean);
      }
      s.ipc_stddev =
          std::sqrt(sq / static_cast<double>(ipc_samples.size() - 1));
      s.ipc_ci95 = 1.96 * s.ipc_stddev /
                   std::sqrt(static_cast<double>(ipc_samples.size()));
    }
  }
  s.fast_forwarded = ff_commits;

  SimResult r = snapshot(stop);
  // Core stats cover only the detailed windows; fold in the
  // fast-forwarded instructions and the faults the engine handled.
  r.committed_instrs += ff_commits;
  r.faults += ff_faults;
  if (s.windows > 0) r.ipc = s.ipc_mean;  // sampled point estimate
  r.sampling = s;
  return r;
}

SimResult Simulator::snapshot(cpu::StopReason stop) const {
  const cpu::Core& core = *core_;
  SimResult r;
  r.stop = stop;
  r.cycles = core.stats().cycles;
  r.committed_instrs = core.stats().committed_instrs;
  r.ipc = core.stats().ipc();

  r.dcache_accesses = core.hierarchy().l1d().stats().accesses();
  r.dcache_misses = core.hierarchy().l1d().stats().misses.value();
  r.shadow_dcache_hits = core.shadow_dcache().stats().hits.value();

  // i-side figures use the per-instruction fetch accounting (each fetch
  // is served by exactly one of L1I / shadow / below).
  r.icache_accesses = core.stats().fetch_accesses;
  r.icache_misses = core.stats().fetch_misses;
  r.shadow_icache_hits = core.stats().fetch_shadow_hits;

  r.shadow_dcache_commit_rate = core.shadow_dcache().stats().commit_rate();
  r.shadow_icache_commit_rate = core.shadow_icache().stats().commit_rate();
  r.shadow_dcache_p9999 =
      core.shadow_dcache().stats().occupancy.percentile(0.9999);
  r.shadow_icache_p9999 =
      core.shadow_icache().stats().occupancy.percentile(0.9999);
  r.shadow_dtlb_p9999 =
      core.shadow_dtlb().stats().occupancy.percentile(0.9999);
  r.shadow_itlb_p9999 =
      core.shadow_itlb().stats().occupancy.percentile(0.9999);

  r.mispredicts = core.stats().mispredicts;
  r.squashed_instrs = core.stats().squashed_instrs;
  r.faults = core.stats().faults;
  return r;
}

}  // namespace safespec::sim
