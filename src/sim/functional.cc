#include "sim/functional.h"

#include <algorithm>

#include "isa/instruction.h"

namespace safespec::sim {

using cpu::StopReason;
using isa::OpClass;

namespace {
/// Ceiling on the dense predecode table (slots, i.e. instructions).
/// Every real program here — workload text, fuzz programs, attack PoCs —
/// spans a few KiB to a few hundred KiB of pc range; 1M slots (4 MiB of
/// pc range, ~40 MB of table) is far above all of them while bounding
/// the cost of a pathological far-flung gadget. Programs that exceed it
/// keep a partial table over the densest prefix and fall back to the
/// Program map past it.
constexpr Addr kMaxDenseSlots = Addr{1} << 20;
}  // namespace

FunctionalEngine::FunctionalEngine(const isa::Program* program,
                                   memory::MainMemory* mem,
                                   const memory::PageTable* page_table)
    : program_(program), mem_(mem), page_table_(page_table) {
  predecode();
}

void FunctionalEngine::predecode() {
  const std::vector<Addr> pcs = program_->pcs();
  text_.clear();
  dense_covers_all_ = false;
  if (pcs.empty()) return;

  text_base_ = pcs.front();
  const Addr span = (pcs.back() - pcs.front()) / isa::kInstrBytes + 1;
  const Addr slots = std::min(span, kMaxDenseSlots);
  text_.resize(static_cast<std::size_t>(slots));
  std::size_t covered = 0;
  for (const Addr pc : pcs) {
    const Addr slot = (pc - text_base_) / isa::kInstrBytes;
    if (slot >= slots) break;  // pcs ascend; the rest overflow too
    text_[static_cast<std::size_t>(slot)] = {*program_->at(pc), true};
    ++covered;
  }
  dense_covers_all_ = covered == pcs.size();
}

bool FunctionalEngine::translate(Addr vaddr, Addr& paddr) {
  const Addr vpage = page_of(vaddr);
  const std::size_t way = static_cast<std::size_t>(vpage) % kXlatEntries;
  if (xlat_tag_[way] == vpage + 1) {
    paddr = (xlat_ppage_[way] << kPageShift) + page_offset(vaddr);
    return true;
  }
  const auto xlat = page_table_->translate(vpage);
  // The engine always runs at user level, like the harness's cores, so a
  // kernel-only page faults and is never worth caching.
  if (!xlat.present || xlat.kernel_only) return false;
  xlat_tag_[way] = vpage + 1;
  xlat_ppage_[way] = xlat.ppage;
  paddr = (xlat.ppage << kPageShift) + page_offset(vaddr);
  return true;
}

void FunctionalEngine::invalidate_translations() {
  xlat_tag_.fill(0);
}

bool FunctionalEngine::handle_fault() {
  ++faults_;
  const auto handler = program_->fault_handler();
  if (!handler.has_value()) return false;
  pc_ = *handler;
  return true;
}

void FunctionalEngine::log_word(Addr addr) {
  const Addr word = addr & ~Addr{7};
  if (delta_seen_.contains(word)) return;
  delta_seen_[word] = 1;
  delta_.push_back({word, mem_->read64(word), 0});
}

ArchCheckpoint FunctionalEngine::checkpoint() {
  ArchCheckpoint cp;
  std::copy(std::begin(regs_), std::end(regs_), cp.regs.begin());
  cp.pc = pc_;
  cp.committed = committed_;
  cp.faults = faults_;
  cp.started = started_;
  for (auto& w : delta_) w.new_value = mem_->read64(w.addr);
  cp.mem_delta = std::move(delta_);
  delta_.clear();
  delta_seen_.clear();
  return cp;
}

void FunctionalEngine::restore(const ArchCheckpoint& cp) {
  std::copy(cp.regs.begin(), cp.regs.end(), std::begin(regs_));
  regs_[kZeroReg] = 0;
  pc_ = cp.pc;
  committed_ = cp.committed;
  faults_ = cp.faults;
  started_ = cp.started;
  delta_.clear();
  delta_seen_.clear();
}

void FunctionalEngine::reset() {
  std::fill(std::begin(regs_), std::end(regs_), 0);
  pc_ = 0;
  committed_ = 0;
  faults_ = 0;
  started_ = false;
  invalidate_translations();
  delta_.clear();
  delta_seen_.clear();
}

void FunctionalEngine::record_memory_delta(bool on) {
  record_delta_ = on;
  delta_.clear();
  delta_seen_.clear();
}

void FunctionalEngine::rollback_memory() {
  for (auto it = delta_.rbegin(); it != delta_.rend(); ++it) {
    mem_->write64(it->addr, it->old_value);
  }
  delta_.clear();
  delta_seen_.clear();
}

StopReason FunctionalEngine::run(std::uint64_t max_instrs) {
  if (!started_) {
    pc_ = program_->entry();
    started_ = true;
  }
  // Budget on *committed* instructions, like Core::run: a faulting
  // instruction never commits and does not consume budget.
  const std::uint64_t headroom = ~std::uint64_t{0} - committed_;
  const std::uint64_t budget_end =
      committed_ + std::min(max_instrs, headroom);

  while (committed_ < budget_end) {
    const isa::Instruction* inst = fetch(pc_);
    if (inst == nullptr) {
      // Committed control flow reached a pc with no instruction — the
      // core's front end stalls with an empty pipeline and its run loop
      // reports an unhandled fault.
      return StopReason::kFaultNoHandler;
    }

    Addr next_pc = pc_ + isa::kInstrBytes;
    switch (inst->op) {
      case OpClass::kNop:
      case OpClass::kFence:
        break;
      case OpClass::kAlu:
      case OpClass::kMul:
      case OpClass::kDiv: {
        const std::uint64_t b =
            inst->use_imm ? static_cast<std::uint64_t>(inst->imm)
                          : regs_[inst->src2];
        set_reg(inst->dst, isa::eval_alu(inst->alu, regs_[inst->src1], b));
        break;
      }
      case OpClass::kRdCycle:
        // Documented divergence: no cycle exists here. See header.
        set_reg(inst->dst, committed_);
        break;
      case OpClass::kLoad: {
        const Addr vaddr =
            regs_[inst->src1] + static_cast<std::uint64_t>(inst->imm);
        Addr paddr = 0;
        if (!translate(vaddr, paddr)) {
          if (!handle_fault()) return StopReason::kFaultNoHandler;
          continue;  // faulting instruction never commits
        }
        set_reg(inst->dst, mem_->read64(paddr));
        break;
      }
      case OpClass::kStore: {
        const Addr vaddr =
            regs_[inst->src1] + static_cast<std::uint64_t>(inst->imm);
        Addr paddr = 0;
        if (!translate(vaddr, paddr)) {
          if (!handle_fault()) return StopReason::kFaultNoHandler;
          continue;
        }
        if (record_delta_) log_word(paddr);
        mem_->write64(paddr, regs_[inst->src2]);
        break;
      }
      case OpClass::kFlush: {
        // No architectural effect, but the address still translates and
        // can fault — exactly as the core's commit path behaves.
        const Addr vaddr =
            regs_[inst->src1] + static_cast<std::uint64_t>(inst->imm);
        Addr paddr = 0;
        if (!translate(vaddr, paddr)) {
          if (!handle_fault()) return StopReason::kFaultNoHandler;
          continue;
        }
        break;
      }
      case OpClass::kBranch:
        if (isa::eval_cond(inst->cond, regs_[inst->src1],
                           regs_[inst->src2])) {
          next_pc = inst->target;
        }
        break;
      case OpClass::kJump:
        next_pc = inst->target;
        break;
      case OpClass::kCall:
        set_reg(inst->dst, pc_ + isa::kInstrBytes);  // link value
        next_pc = inst->target;
        break;
      case OpClass::kBranchIndirect:
        next_pc = regs_[inst->src1] + static_cast<Addr>(inst->imm);
        break;
      case OpClass::kRet:
        next_pc = regs_[inst->src1];
        break;
      case OpClass::kHalt:
        ++committed_;
        return StopReason::kHalted;
    }

    ++committed_;
    pc_ = next_pc;
  }
  return StopReason::kMaxInstrs;
}

}  // namespace safespec::sim
