#include "sim/machine.h"

#include <algorithm>
#include <cstring>
#include <iterator>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "common/json.h"
#include "common/registry.h"
#include "safespec/policy.h"
#include "sim/sim_config.h"

namespace safespec::sim {

namespace {

// The JSON machinery (value type, parser, typed readers, writer) lives in
// common/json.h, shared with the fuzzing subsystem's FuzzSpec documents.
using Json = json::Value;
using JsonWriter = json::Writer;
using json::parse_u64;
using json::read_bool;
using json::read_int;
using json::read_string;
using json::read_u64;

/// Cycle is an alias of std::uint64_t; named reader kept for the call
/// sites that document the field as a latency.
void read_cycle(const Json& obj, const char* key, Cycle& out) {
  read_u64(obj, key, out);
}

shadow::FullPolicy parse_full_policy(const std::string& text) {
  if (text == "drop") return shadow::FullPolicy::kDrop;
  if (text == "stall") return shadow::FullPolicy::kStall;
  throw std::invalid_argument("unknown full_policy \"" + text +
                              "\" (expected drop or stall)");
}

predictor::DirectionKind parse_direction_kind(const std::string& text) {
  if (text == "bimodal") return predictor::DirectionKind::kBimodal;
  if (text == "gshare") return predictor::DirectionKind::kGshare;
  if (text == "perceptron") return predictor::DirectionKind::kPerceptron;
  throw std::invalid_argument("unknown predictor direction \"" + text +
                              "\" (expected bimodal, gshare or perceptron)");
}

const char* direction_kind_name(predictor::DirectionKind kind) {
  switch (kind) {
    case predictor::DirectionKind::kBimodal: return "bimodal";
    case predictor::DirectionKind::kGshare: return "gshare";
    case predictor::DirectionKind::kPerceptron: return "perceptron";
  }
  return "?";
}

void read_cache(const Json& parent, const char* key,
                memory::CacheConfig& cache) {
  if (const Json* v = parent.find(key)) {
    read_u64(*v, "size_bytes", cache.size_bytes);
    read_int(*v, "ways", cache.ways);
    read_int(*v, "line_bytes", cache.line_bytes);
    read_cycle(*v, "hit_latency", cache.hit_latency);
  }
}

void read_tlb(const Json& parent, const char* key, memory::TlbConfig& tlb) {
  if (const Json* v = parent.find(key)) {
    read_int(*v, "entries", tlb.entries);
    read_int(*v, "ways", tlb.ways);
  }
}

void read_shadow(const Json& parent, const char* key,
                 shadow::ShadowConfig& config) {
  if (const Json* v = parent.find(key)) {
    read_int(*v, "entries", config.entries);
    std::string full;
    read_string(*v, "full_policy", full);
    if (!full.empty()) config.full_policy = parse_full_policy(full);
  }
}

// ---- preset registry -------------------------------------------------------

/// Tables I and II: the 6-wide SkyLake-like core the paper evaluates
/// (formerly the body of skylake_config(), which now wraps this preset).
MachineSpec skylake_preset() {
  MachineSpec spec;
  spec.preset = "skylake";
  cpu::CoreConfig& c = spec.core;
  // Table I.
  c.issue_width = 6;
  c.fetch_width = 6;
  c.commit_width = 6;
  c.iq_entries = 96;
  c.rob_entries = 224;
  c.ldq_entries = 72;
  c.stq_entries = 56;
  c.itlb = {.name = "iTLB", .entries = 64, .ways = 4};
  c.dtlb = {.name = "dTLB", .entries = 64, .ways = 4};
  // Table II (line size 64 B everywhere).
  c.hierarchy.l1i = {.name = "L1I", .size_bytes = 32 * 1024, .ways = 8,
                     .line_bytes = 64, .hit_latency = 4};
  c.hierarchy.l1d = {.name = "L1D", .size_bytes = 32 * 1024, .ways = 8,
                     .line_bytes = 64, .hit_latency = 4};
  c.hierarchy.l2 = {.name = "L2", .size_bytes = 256 * 1024, .ways = 4,
                    .line_bytes = 64, .hit_latency = 12};
  c.hierarchy.l3 = {.name = "L3", .size_bytes = 2 * 1024 * 1024, .ways = 16,
                    .line_bytes = 64, .hit_latency = 44};
  c.hierarchy.memory_latency = 191;
  // SafeSpec: worst-case ("Secure") sizing, LDQ-/ROB-bound (§V).
  c.shadow_dcache = {.name = "shadow-dcache", .entries = c.ldq_entries};
  c.shadow_icache = {.name = "shadow-icache", .entries = c.rob_entries};
  c.shadow_dtlb = {.name = "shadow-dtlb", .entries = c.ldq_entries};
  c.shadow_itlb = {.name = "shadow-itlb", .entries = c.rob_entries};
  return spec;
}

/// A little 2-wide embedded-class core: shallow queues, small caches, a
/// bimodal predictor — the second preset the sweep axes can name. Shadow
/// structures keep the §V worst-case bound for *this* machine (d-side =
/// LDQ = 12, i-side = ROB = 32).
MachineSpec embedded_preset() {
  MachineSpec spec;
  spec.preset = "embedded";
  cpu::CoreConfig& c = spec.core;
  c.fetch_width = 2;
  c.issue_width = 2;
  c.commit_width = 2;
  c.iq_entries = 16;
  c.rob_entries = 32;
  c.ldq_entries = 12;
  c.stq_entries = 8;
  c.fetch_to_dispatch_delay = 3;
  c.commit_delay = 2;
  c.itlb = {.name = "iTLB", .entries = 16, .ways = 4};
  c.dtlb = {.name = "dTLB", .entries = 16, .ways = 4};
  c.hierarchy.l1i = {.name = "L1I", .size_bytes = 8 * 1024, .ways = 2,
                     .line_bytes = 32, .hit_latency = 2};
  c.hierarchy.l1d = {.name = "L1D", .size_bytes = 8 * 1024, .ways = 2,
                     .line_bytes = 32, .hit_latency = 2};
  c.hierarchy.l2 = {.name = "L2", .size_bytes = 64 * 1024, .ways = 4,
                    .line_bytes = 32, .hit_latency = 8};
  c.hierarchy.l3 = {.name = "L3", .size_bytes = 512 * 1024, .ways = 8,
                    .line_bytes = 32, .hit_latency = 24};
  c.hierarchy.memory_latency = 100;
  c.predictor.direction = {.kind = predictor::DirectionKind::kBimodal,
                           .table_bits = 10};
  c.predictor.btb = {.entries = 256, .ways = 4};
  c.predictor.rsb_depth = 8;
  c.shadow_dcache = {.name = "shadow-dcache", .entries = c.ldq_entries};
  c.shadow_icache = {.name = "shadow-icache", .entries = c.rob_entries};
  c.shadow_dtlb = {.name = "shadow-dtlb", .entries = c.ldq_entries};
  c.shadow_itlb = {.name = "shadow-itlb", .entries = c.rob_entries};
  return spec;
}

NamedRegistry<std::function<MachineSpec()>>& preset_registry() {
  static auto* r = [] {
    auto* reg =
        new NamedRegistry<std::function<MachineSpec()>>("machine preset");
    reg->add("skylake", skylake_preset);
    reg->add("embedded", embedded_preset);
    return reg;
  }();
  return *r;
}

void validate_cache(const memory::CacheConfig& c) {
  if (c.size_bytes == 0 || c.ways <= 0 || c.line_bytes <= 0) {
    throw std::invalid_argument(c.name + ": size, ways and line_bytes must "
                                         "be positive");
  }
  if (c.num_sets() <= 0 ||
      c.size_bytes % (static_cast<std::uint64_t>(c.ways) *
                      static_cast<std::uint64_t>(c.line_bytes)) != 0) {
    throw std::invalid_argument(
        c.name + ": size_bytes must be a positive multiple of "
                 "ways * line_bytes");
  }
}

void validate_tlb(const memory::TlbConfig& t) {
  if (t.entries <= 0 || t.ways <= 0 || t.entries % t.ways != 0) {
    throw std::invalid_argument(t.name + ": entries must be a positive "
                                         "multiple of ways");
  }
}

}  // namespace

// ---- MachineSpec -----------------------------------------------------------

void MachineSpec::validate() const {
  const cpu::CoreConfig& c = core;
  const struct {
    const char* name;
    int value;
  } positives[] = {
      {"fetch_width", c.fetch_width},   {"issue_width", c.issue_width},
      {"commit_width", c.commit_width}, {"iq_entries", c.iq_entries},
      {"rob_entries", c.rob_entries},   {"ldq_entries", c.ldq_entries},
      {"stq_entries", c.stq_entries},
  };
  for (const auto& p : positives) {
    if (p.value <= 0) {
      throw std::invalid_argument(std::string(p.name) +
                                  " must be positive, got " +
                                  std::to_string(p.value));
    }
  }
  if (c.fetch_to_dispatch_delay < 0 || c.commit_delay < 0) {
    throw std::invalid_argument("pipeline delays must be non-negative");
  }
  if (c.dib_lines < 0) {
    throw std::invalid_argument("dib_lines must be non-negative (0 "
                                "disables the decoded-instruction buffer)");
  }
  if (c.sharp_alarm_threshold == 0 || c.sharp_alarm_epoch == 0) {
    throw std::invalid_argument(
        "sharp_alarm_threshold and sharp_alarm_epoch must be positive");
  }
  if (c.cores < 1 || c.cores > 64) {
    throw std::invalid_argument("cores must be in [1, 64], got " +
                                std::to_string(c.cores));
  }
  if (c.cores > 1 && sampling.enabled()) {
    throw std::invalid_argument(
        "sampled simulation (sampling.fast_forward_interval > 0) supports "
        "a single core only; set cores=1 or disable sampling");
  }

  validate_cache(c.hierarchy.l1i);
  validate_cache(c.hierarchy.l1d);
  validate_cache(c.hierarchy.l2);
  validate_cache(c.hierarchy.l3);
  validate_tlb(c.itlb);
  validate_tlb(c.dtlb);

  if (!policy::is_registered_policy(c.policy)) {
    // Re-throwing through named_policy produces the message that lists
    // every registered policy.
    policy::named_policy(c.policy);
  }

  const struct {
    const shadow::ShadowConfig* config;
    int secure_bound;
    const char* bound_name;
  } shadows[] = {
      {&c.shadow_dcache, c.ldq_entries, "LDQ"},
      {&c.shadow_dtlb, c.ldq_entries, "LDQ"},
      {&c.shadow_icache, c.rob_entries, "ROB"},
      {&c.shadow_itlb, c.rob_entries, "ROB"},
  };
  for (const auto& s : shadows) {
    if (s.config->entries <= 0) {
      throw std::invalid_argument(s.config->name +
                                  ": entries must be positive");
    }
    if (s.config->entries < s.secure_bound && !allow_undersized_shadows) {
      throw std::invalid_argument(
          s.config->name + ": " + std::to_string(s.config->entries) +
          " entries is below the secure bound (" + s.bound_name + " = " +
          std::to_string(s.secure_bound) +
          ", §V) — set allow_undersized_shadows to study TSA sizing");
    }
  }

  sampling.validate();

  std::vector<MemRegion> sorted = regions;
  std::sort(sorted.begin(), sorted.end(),
            [](const MemRegion& a, const MemRegion& b) {
              return a.base < b.base;
            });
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    if (sorted[i].bytes == 0) {
      throw std::invalid_argument("memory-map region at base " +
                                  std::to_string(sorted[i].base) +
                                  " has zero bytes");
    }
    // base + bytes must not wrap, or the overlap comparison below (and
    // map_region's page loop) would silently misbehave.
    if (sorted[i].base + sorted[i].bytes < sorted[i].base) {
      std::ostringstream oss;
      oss << "memory-map region [0x" << std::hex << sorted[i].base
          << ", +0x" << sorted[i].bytes << ") wraps the address space";
      throw std::invalid_argument(oss.str());
    }
    if (i > 0 &&
        sorted[i - 1].base + sorted[i - 1].bytes > sorted[i].base) {
      std::ostringstream oss;
      oss << "memory-map regions overlap: [0x" << std::hex
          << sorted[i - 1].base << ", +0x" << sorted[i - 1].bytes
          << ") and [0x" << sorted[i].base << ", +0x" << sorted[i].bytes
          << ")";
      throw std::invalid_argument(oss.str());
    }
  }
}

std::string MachineSpec::to_json() const {
  const cpu::CoreConfig& c = core;
  JsonWriter w;
  w.open();
  w.field("preset", preset);
  w.field("policy", c.policy);
  w.field("allow_undersized_shadows", allow_undersized_shadows);
  w.field("map_text", map_text);
  w.field("trace", trace);
  w.field("cores", c.cores);

  w.open("core");
  w.field("fetch_width", c.fetch_width);
  w.field("issue_width", c.issue_width);
  w.field("commit_width", c.commit_width);
  w.field("iq_entries", c.iq_entries);
  w.field("rob_entries", c.rob_entries);
  w.field("ldq_entries", c.ldq_entries);
  w.field("stq_entries", c.stq_entries);
  w.field("fetch_to_dispatch_delay", c.fetch_to_dispatch_delay);
  w.field("commit_delay", c.commit_delay);
  w.field("dib_lines", c.dib_lines);
  w.field("alu_latency", c.alu_latency);
  w.field("mul_latency", c.mul_latency);
  w.field("div_latency", c.div_latency);
  w.field("shadow_hit_latency", c.shadow_hit_latency);
  w.field("sharp_alarm_threshold", c.sharp_alarm_threshold);
  w.field("sharp_alarm_epoch", c.sharp_alarm_epoch);
  w.close();

  w.open("caches");
  const struct {
    const char* key;
    const memory::CacheConfig* cache;
  } caches[] = {{"l1i", &c.hierarchy.l1i},
                {"l1d", &c.hierarchy.l1d},
                {"l2", &c.hierarchy.l2},
                {"l3", &c.hierarchy.l3}};
  for (const auto& entry : caches) {
    w.open(entry.key);
    w.field("size_bytes", entry.cache->size_bytes);
    w.field("ways", entry.cache->ways);
    w.field("line_bytes", entry.cache->line_bytes);
    w.field("hit_latency", entry.cache->hit_latency);
    w.close();
  }
  w.field("memory_latency", c.hierarchy.memory_latency);
  w.close();

  w.open("tlbs");
  const struct {
    const char* key;
    const memory::TlbConfig* tlb;
  } tlbs[] = {{"itlb", &c.itlb}, {"dtlb", &c.dtlb}};
  for (const auto& entry : tlbs) {
    w.open(entry.key);
    w.field("entries", entry.tlb->entries);
    w.field("ways", entry.tlb->ways);
    w.close();
  }
  w.close();

  w.open("shadows");
  const struct {
    const char* key;
    const shadow::ShadowConfig* config;
  } shadows[] = {{"dcache", &c.shadow_dcache},
                 {"icache", &c.shadow_icache},
                 {"dtlb", &c.shadow_dtlb},
                 {"itlb", &c.shadow_itlb}};
  for (const auto& entry : shadows) {
    w.open(entry.key);
    w.field("entries", entry.config->entries);
    w.field("full_policy", shadow::to_string(entry.config->full_policy));
    w.close();
  }
  w.close();

  w.open("predictor");
  w.field("direction", direction_kind_name(c.predictor.direction.kind));
  w.field("table_bits", c.predictor.direction.table_bits);
  w.field("history_bits", c.predictor.direction.history_bits);
  w.field("perceptron_weights", c.predictor.direction.perceptron_weights);
  w.field("btb_entries", c.predictor.btb.entries);
  w.field("btb_ways", c.predictor.btb.ways);
  w.field("rsb_depth", c.predictor.rsb_depth);
  w.close();

  w.open("sampling");
  w.field("fast_forward_interval", sampling.fast_forward_interval);
  w.field("warmup_instrs", sampling.warmup_instrs);
  w.field("detail_instrs", sampling.detail_instrs);
  w.close();

  w.open_array("memory_map");
  for (const MemRegion& region : regions) {
    w.open();
    w.field("base", region.base);
    w.field("bytes", region.bytes);
    w.field("kernel", region.perm == memory::PagePerm::kKernel);
    w.close();
  }
  w.close_array();

  w.open_array("pokes");
  for (const Poke& poke : pokes) {
    w.open();
    w.field("addr", poke.addr);
    w.field("value", poke.value);
    w.close();
  }
  w.close_array();

  w.close();
  std::string out = w.take();
  out += '\n';
  return out;
}

MachineSpec MachineSpec::from_json(const std::string& text) {
  const Json doc = json::parse(text);
  if (doc.kind != Json::Kind::kObject) {
    throw std::invalid_argument("machine spec must be a JSON object");
  }

  // Unlisted fields keep the preset's values, so a config file only
  // needs the deltas it cares about.
  std::string preset_name = "skylake";
  read_string(doc, "preset", preset_name);
  MachineSpec spec = machine_preset(preset_name);
  cpu::CoreConfig& c = spec.core;

  read_string(doc, "policy", c.policy);
  read_bool(doc, "allow_undersized_shadows", spec.allow_undersized_shadows);
  read_bool(doc, "map_text", spec.map_text);
  read_string(doc, "trace", spec.trace);
  read_int(doc, "cores", c.cores);

  if (const Json* core = doc.find("core")) {
    read_int(*core, "fetch_width", c.fetch_width);
    read_int(*core, "issue_width", c.issue_width);
    read_int(*core, "commit_width", c.commit_width);
    read_int(*core, "iq_entries", c.iq_entries);
    read_int(*core, "rob_entries", c.rob_entries);
    read_int(*core, "ldq_entries", c.ldq_entries);
    read_int(*core, "stq_entries", c.stq_entries);
    read_int(*core, "fetch_to_dispatch_delay", c.fetch_to_dispatch_delay);
    read_int(*core, "commit_delay", c.commit_delay);
    read_int(*core, "dib_lines", c.dib_lines);
    read_cycle(*core, "alu_latency", c.alu_latency);
    read_cycle(*core, "mul_latency", c.mul_latency);
    read_cycle(*core, "div_latency", c.div_latency);
    read_cycle(*core, "shadow_hit_latency", c.shadow_hit_latency);
    read_u64(*core, "sharp_alarm_threshold", c.sharp_alarm_threshold);
    read_u64(*core, "sharp_alarm_epoch", c.sharp_alarm_epoch);
  }

  if (const Json* caches = doc.find("caches")) {
    read_cache(*caches, "l1i", c.hierarchy.l1i);
    read_cache(*caches, "l1d", c.hierarchy.l1d);
    read_cache(*caches, "l2", c.hierarchy.l2);
    read_cache(*caches, "l3", c.hierarchy.l3);
    read_cycle(*caches, "memory_latency", c.hierarchy.memory_latency);
  }

  if (const Json* tlbs = doc.find("tlbs")) {
    read_tlb(*tlbs, "itlb", c.itlb);
    read_tlb(*tlbs, "dtlb", c.dtlb);
  }

  if (const Json* shadows = doc.find("shadows")) {
    read_shadow(*shadows, "dcache", c.shadow_dcache);
    read_shadow(*shadows, "icache", c.shadow_icache);
    read_shadow(*shadows, "dtlb", c.shadow_dtlb);
    read_shadow(*shadows, "itlb", c.shadow_itlb);
  }

  if (const Json* pred = doc.find("predictor")) {
    std::string direction;
    read_string(*pred, "direction", direction);
    if (!direction.empty()) {
      c.predictor.direction.kind = parse_direction_kind(direction);
    }
    read_int(*pred, "table_bits", c.predictor.direction.table_bits);
    read_int(*pred, "history_bits", c.predictor.direction.history_bits);
    read_int(*pred, "perceptron_weights",
             c.predictor.direction.perceptron_weights);
    read_int(*pred, "btb_entries", c.predictor.btb.entries);
    read_int(*pred, "btb_ways", c.predictor.btb.ways);
    read_int(*pred, "rsb_depth", c.predictor.rsb_depth);
  }

  if (const Json* sampling = doc.find("sampling")) {
    read_u64(*sampling, "fast_forward_interval",
             spec.sampling.fast_forward_interval);
    read_u64(*sampling, "warmup_instrs", spec.sampling.warmup_instrs);
    read_u64(*sampling, "detail_instrs", spec.sampling.detail_instrs);
  }

  if (const Json* map = doc.find("memory_map")) {
    for (const Json& entry : map->array) {
      MemRegion region;
      read_u64(entry, "base", region.base);
      read_u64(entry, "bytes", region.bytes);
      bool kernel = false;
      read_bool(entry, "kernel", kernel);
      region.perm =
          kernel ? memory::PagePerm::kKernel : memory::PagePerm::kUser;
      spec.regions.push_back(region);
    }
  }

  if (const Json* pokes = doc.find("pokes")) {
    for (const Json& entry : pokes->array) {
      Poke poke;
      read_u64(entry, "addr", poke.addr);
      read_u64(entry, "value", poke.value);
      spec.pokes.push_back(poke);
    }
  }

  return spec;
}

MachineSpec MachineSpec::from_json_file(const std::string& path) {
  return from_json(json::read_file(path, "machine config"));
}

void MachineSpec::set(const std::string& key_equals_value) {
  const std::size_t eq = key_equals_value.find('=');
  if (eq == std::string::npos) {
    throw std::invalid_argument("override \"" + key_equals_value +
                                "\" is not of the form key=value");
  }
  set(key_equals_value.substr(0, eq), key_equals_value.substr(eq + 1));
}

void MachineSpec::set(const std::string& key, const std::string& value) {
  cpu::CoreConfig& c = core;
  const auto u64 = [&] { return parse_u64(value, key); };
  const auto to_int = [&] { return static_cast<int>(parse_u64(value, key)); };
  const auto to_bool = [&] {
    if (value == "true" || value == "1") return true;
    if (value == "false" || value == "0") return false;
    throw std::invalid_argument("expected true/false for \"" + key + "\"");
  };

  if (key == "preset") {
    // Re-seed the whole micro-architecture from the named preset; the
    // machine-level choices (policy, core count) and address-space setup
    // survive. Apply before other overrides so they edit the new preset.
    const std::string keep_policy = c.policy;
    const int keep_cores = c.cores;
    const MachineSpec fresh = machine_preset(value);
    preset = fresh.preset;
    core = fresh.core;
    core.policy = keep_policy;
    core.cores = keep_cores;
    return;
  }
  if (key == "cores") {
    c.cores = to_int();
    return;
  }
  if (key == "policy") {
    policy::named_policy(value);  // throws with the registered list
    c.policy = value;
    return;
  }
  if (key == "sharp_alarm_threshold") {
    c.sharp_alarm_threshold = u64();
    return;
  }
  if (key == "sharp_alarm_epoch") {
    c.sharp_alarm_epoch = u64();
    return;
  }
  if (key == "allow_undersized_shadows") {
    allow_undersized_shadows = to_bool();
    return;
  }
  if (key == "map_text") {
    map_text = to_bool();
    return;
  }
  if (key == "trace") {
    trace = value;
    return;
  }

  int* const int_fields[]{&c.fetch_width,
                          &c.issue_width,
                          &c.commit_width,
                          &c.iq_entries,
                          &c.rob_entries,
                          &c.ldq_entries,
                          &c.stq_entries,
                          &c.fetch_to_dispatch_delay,
                          &c.commit_delay,
                          &c.dib_lines};
  const char* const int_names[]{
      "fetch_width", "issue_width",  "commit_width",
      "iq_entries",  "rob_entries",  "ldq_entries",
      "stq_entries", "fetch_to_dispatch_delay", "commit_delay",
      "dib_lines"};
  for (std::size_t i = 0; i < std::size(int_fields); ++i) {
    if (key == int_names[i]) {
      *int_fields[i] = to_int();
      return;
    }
  }

  Cycle* const cycle_fields[]{&c.alu_latency, &c.mul_latency, &c.div_latency,
                              &c.shadow_hit_latency,
                              &c.hierarchy.memory_latency};
  const char* const cycle_names[]{"alu_latency", "mul_latency", "div_latency",
                                  "shadow_hit_latency", "memory_latency"};
  for (std::size_t i = 0; i < std::size(cycle_fields); ++i) {
    if (key == cycle_names[i]) {
      *cycle_fields[i] = u64();
      return;
    }
  }

  const struct {
    const char* prefix;
    memory::CacheConfig* cache;
  } caches[] = {{"l1i.", &c.hierarchy.l1i},
                {"l1d.", &c.hierarchy.l1d},
                {"l2.", &c.hierarchy.l2},
                {"l3.", &c.hierarchy.l3}};
  for (const auto& entry : caches) {
    if (key.compare(0, std::strlen(entry.prefix), entry.prefix) != 0) {
      continue;
    }
    const std::string field = key.substr(std::strlen(entry.prefix));
    if (field == "size_bytes") {
      entry.cache->size_bytes = u64();
    } else if (field == "ways") {
      entry.cache->ways = to_int();
    } else if (field == "line_bytes") {
      entry.cache->line_bytes = to_int();
    } else if (field == "hit_latency") {
      entry.cache->hit_latency = u64();
    } else {
      throw std::invalid_argument("unknown cache field in \"" + key + "\"");
    }
    return;
  }

  const struct {
    const char* prefix;
    memory::TlbConfig* tlb;
  } tlbs[] = {{"itlb.", &c.itlb}, {"dtlb.", &c.dtlb}};
  for (const auto& entry : tlbs) {
    if (key.compare(0, std::strlen(entry.prefix), entry.prefix) != 0) {
      continue;
    }
    const std::string field = key.substr(std::strlen(entry.prefix));
    if (field == "entries") {
      entry.tlb->entries = to_int();
    } else if (field == "ways") {
      entry.tlb->ways = to_int();
    } else {
      throw std::invalid_argument("unknown TLB field in \"" + key + "\"");
    }
    return;
  }

  const struct {
    const char* prefix;
    shadow::ShadowConfig* config;
  } shadows[] = {{"shadow_dcache.", &c.shadow_dcache},
                 {"shadow_icache.", &c.shadow_icache},
                 {"shadow_dtlb.", &c.shadow_dtlb},
                 {"shadow_itlb.", &c.shadow_itlb}};
  for (const auto& entry : shadows) {
    if (key.compare(0, std::strlen(entry.prefix), entry.prefix) != 0) {
      continue;
    }
    const std::string field = key.substr(std::strlen(entry.prefix));
    if (field == "entries") {
      entry.config->entries = to_int();
    } else if (field == "full_policy") {
      entry.config->full_policy = parse_full_policy(value);
    } else {
      throw std::invalid_argument("unknown shadow field in \"" + key + "\"");
    }
    return;
  }

  if (key == "sampling.fast_forward_interval") {
    sampling.fast_forward_interval = u64();
    return;
  }
  if (key == "sampling.warmup_instrs") {
    sampling.warmup_instrs = u64();
    return;
  }
  if (key == "sampling.detail_instrs") {
    sampling.detail_instrs = u64();
    return;
  }

  if (key == "predictor.direction") {
    c.predictor.direction.kind = parse_direction_kind(value);
    return;
  }
  if (key == "predictor.table_bits") {
    c.predictor.direction.table_bits = to_int();
    return;
  }
  if (key == "predictor.history_bits") {
    c.predictor.direction.history_bits = to_int();
    return;
  }
  if (key == "predictor.perceptron_weights") {
    c.predictor.direction.perceptron_weights = to_int();
    return;
  }
  if (key == "predictor.btb_entries") {
    c.predictor.btb.entries = to_int();
    return;
  }
  if (key == "predictor.btb_ways") {
    c.predictor.btb.ways = to_int();
    return;
  }
  if (key == "predictor.rsb_depth") {
    c.predictor.rsb_depth = to_int();
    return;
  }

  throw std::invalid_argument(
      "unknown machine-spec key \"" + key +
      "\" (see MachineSpec::set in src/sim/machine.h for the grammar)");
}

// ---- preset registry -------------------------------------------------------

MachineSpec machine_preset(const std::string& name) {
  return preset_registry().at(name)();
}

std::vector<std::string> machine_preset_names() {
  return preset_registry().names();
}

bool is_registered_machine_preset(const std::string& name) {
  return preset_registry().contains(name);
}

void register_machine_preset(const std::string& name,
                             std::function<MachineSpec()> factory) {
  preset_registry().add(name, std::move(factory));
}

// ---- builder ----------------------------------------------------------------

MachineBuilder::MachineBuilder() : spec_(machine_preset("skylake")) {}

MachineBuilder::MachineBuilder(MachineSpec spec) : spec_(std::move(spec)) {}

MachineBuilder MachineBuilder::from_preset(const std::string& name) {
  return MachineBuilder(machine_preset(name));
}

MachineBuilder& MachineBuilder::policy(const std::string& name) {
  policy::named_policy(name);  // throws with the registered list
  spec_.core.policy = name;
  return *this;
}

MachineBuilder& MachineBuilder::cores(int n) {
  spec_.core.cores = n;
  return *this;
}

MachineBuilder& MachineBuilder::shadow_entries(int dside, int iside) {
  spec_.core.shadow_dcache.entries = dside;
  spec_.core.shadow_dtlb.entries = dside;
  spec_.core.shadow_icache.entries = iside;
  spec_.core.shadow_itlb.entries = iside;
  return *this;
}

MachineBuilder& MachineBuilder::shadow_full_policy(
    shadow::FullPolicy full_policy) {
  spec_.core.shadow_dcache.full_policy = full_policy;
  spec_.core.shadow_icache.full_policy = full_policy;
  spec_.core.shadow_dtlb.full_policy = full_policy;
  spec_.core.shadow_itlb.full_policy = full_policy;
  return *this;
}

MachineBuilder& MachineBuilder::allow_undersized_shadows(bool allow) {
  spec_.allow_undersized_shadows = allow;
  return *this;
}

MachineBuilder& MachineBuilder::map_region(Addr base, std::uint64_t bytes,
                                           memory::PagePerm perm) {
  spec_.regions.push_back({base, bytes, perm});
  return *this;
}

MachineBuilder& MachineBuilder::poke(Addr addr, std::uint64_t value) {
  spec_.pokes.push_back({addr, value});
  return *this;
}

MachineBuilder& MachineBuilder::set(const std::string& key_equals_value) {
  spec_.set(key_equals_value);
  return *this;
}

MachineBuilder& MachineBuilder::configure(
    const std::function<void(cpu::CoreConfig&)>& fn) {
  fn(spec_.core);
  return *this;
}

std::unique_ptr<Simulator> MachineBuilder::build(isa::Program program) const {
  spec_.validate();
  auto sim = std::make_unique<Simulator>(spec_.core, std::move(program));
  sim->set_sampling(spec_.sampling);
  if (spec_.map_text) sim->map_text();
  for (const MemRegion& region : spec_.regions) {
    sim->map_region(region.base, region.bytes, region.perm);
  }
  for (const Poke& poke : spec_.pokes) sim->poke(poke.addr, poke.value);
  return sim;
}

}  // namespace safespec::sim
