// Declarative machine descriptions (the construction API).
//
// A MachineSpec is everything needed to stand up one simulated machine:
// the resolved micro-architecture (cpu::CoreConfig, including shadow
// sizing and the protection policy *name*), the address-space layout
// (memory map regions), and pre-run pokes. Specs serialize to/from JSON,
// so a sweep point is data — shippable in a config file, overridable
// with --set key=value — instead of a hand-written construction site.
//
// Three pieces:
//   * the preset registry: named starting points ("skylake" — Tables
//     I/II; "embedded" — a 2-wide in-order-ish little core) that
//     replace bare skylake_config() calls;
//   * MachineSpec::validate(): rejects nonsense (zero widths,
//     overlapping regions, unknown policy names) and — §V's security
//     argument — shadow sizing below the secure bound (d-side ≥ LDQ,
//     i-side ≥ ROB) unless allow_undersized_shadows is set explicitly;
//   * MachineBuilder: a fluent layer that yields a ready-to-run
//     Simulator (text + regions mapped, pokes applied).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "cpu/core.h"
#include "isa/program.h"
#include "memory/main_memory.h"
#include "sim/simulator.h"

namespace safespec::sim {

/// One mapped address-space region.
struct MemRegion {
  Addr base = 0;
  std::uint64_t bytes = 0;
  memory::PagePerm perm = memory::PagePerm::kUser;
};

/// One pre-run architectural memory write.
struct Poke {
  Addr addr = 0;
  std::uint64_t value = 0;
};

/// Declarative description of one simulated machine.
struct MachineSpec {
  std::string preset = "skylake";  ///< preset this spec derives from
  cpu::CoreConfig core;            ///< resolved micro-architecture
  /// §V: d-side shadows below the LDQ bound / i-side below the ROB bound
  /// open the TSA channel; validate() rejects such sizing unless this is
  /// set explicitly (sizing studies and attack PoCs set it).
  bool allow_undersized_shadows = false;
  bool map_text = true;  ///< map the program's code pages at build time
  /// Trace workload axis: empty runs the synthetic generator; "@"
  /// round-trips each cell's synthetic image through the trace codec in
  /// memory; any other value is a trace file path. The experiment
  /// engine copies this onto every cell's WorkloadProfile::trace_file
  /// (see src/trace/). Set grammar: --set trace=PATH.
  std::string trace;
  /// Sampled-simulation schedule (disabled by default). Carried onto the
  /// built Simulator; run_sampled_auto() and the experiment engine honor
  /// it. See sim::SamplingSpec.
  SamplingSpec sampling;
  std::vector<MemRegion> regions;
  std::vector<Poke> pokes;

  /// Throws std::invalid_argument on the first problem found: zero or
  /// negative widths/queue sizes, degenerate cache or TLB geometry,
  /// overlapping or wrapping memory-map regions, or shadow sizing below
  /// the secure bound without allow_undersized_shadows. An unknown
  /// policy name throws std::out_of_range listing the registered
  /// policies (the registries' lookup error).
  void validate() const;

  /// Pretty-printed JSON document (stable key order — round-trips).
  std::string to_json() const;
  static MachineSpec from_json(const std::string& text);
  static MachineSpec from_json_file(const std::string& path);

  /// Applies one "key=value" override (the --set grammar). Dotted keys
  /// address nested fields: policy=WFB-stall, cores=2, rob_entries=64,
  /// l2.size_bytes=524288, shadow_dcache.entries=16,
  /// shadow_dcache.full_policy=stall, predictor.direction=perceptron,
  /// preset=embedded (re-seeds the core from that preset; apply first).
  /// Throws std::invalid_argument on unknown keys or malformed values;
  /// unknown policy=/preset= names throw std::out_of_range listing the
  /// registered names.
  void set(const std::string& key_equals_value);
  void set(const std::string& key, const std::string& value);
};

// ---- preset registry --------------------------------------------------------

/// Looks up a registered preset. Throws std::out_of_range with a message
/// listing every registered name when `name` is unknown.
MachineSpec machine_preset(const std::string& name);
std::vector<std::string> machine_preset_names();
bool is_registered_machine_preset(const std::string& name);
/// Registers a preset factory; throws std::invalid_argument if taken.
void register_machine_preset(const std::string& name,
                             std::function<MachineSpec()> factory);

// ---- builder ----------------------------------------------------------------

/// Fluent construction: preset (or explicit spec) -> tweaks -> a
/// validated, ready-to-run Simulator.
///
///   auto sim = MachineBuilder::from_preset("skylake")
///                  .policy("WFC")
///                  .map_region(kData, kPageSize)
///                  .poke(kData, 42)
///                  .build(std::move(program));
class MachineBuilder {
 public:
  MachineBuilder();  ///< starts from the "skylake" preset
  explicit MachineBuilder(MachineSpec spec);
  static MachineBuilder from_preset(const std::string& name);

  /// Selects the protection policy by registry name.
  MachineBuilder& policy(const std::string& name);
  /// Number of cores sharing the L2/L3 (see cpu::CoreConfig::cores).
  MachineBuilder& cores(int n);
  /// Sizes all four shadow structures (d-side pair, i-side pair).
  MachineBuilder& shadow_entries(int dside, int iside);
  /// Full-table handling for all four shadow structures.
  MachineBuilder& shadow_full_policy(shadow::FullPolicy full_policy);
  MachineBuilder& allow_undersized_shadows(bool allow = true);
  MachineBuilder& map_region(Addr base, std::uint64_t bytes,
                             memory::PagePerm perm = memory::PagePerm::kUser);
  MachineBuilder& poke(Addr addr, std::uint64_t value);
  /// Applies one "key=value" override (MachineSpec::set grammar).
  MachineBuilder& set(const std::string& key_equals_value);
  /// Escape hatch for fields without a dedicated fluent method.
  MachineBuilder& configure(const std::function<void(cpu::CoreConfig&)>& fn);

  const MachineSpec& spec() const { return spec_; }

  /// Validates the spec and yields a ready-to-run simulator: program
  /// text mapped (unless map_text=false), regions mapped, pokes applied.
  /// Propagates MachineSpec::validate()'s exceptions
  /// (std::invalid_argument, or std::out_of_range for unknown names).
  std::unique_ptr<Simulator> build(isa::Program program) const;

 private:
  MachineSpec spec_;
};

}  // namespace safespec::sim
