// Fast functional (architecture-only) execution engine.
//
// The promoted form of the fuzz harness's in-order oracle
// (src/fuzz/oracle.h wraps this class): one instruction per step, no
// microarchitecture, producing exactly the committed architectural state
// the out-of-order core produces. Promotion earned it the hot-path
// treatment the detailed core got in PRs 4-5:
//
//   * the program text is predecoded into a dense slot table indexed by
//     (pc - base) / kInstrBytes, so the per-instruction fetch is a
//     bounds check + load instead of a PagedAddrMap probe;
//   * data translations go through a small direct-mapped cache in front
//     of PageTable::translate, so the per-access cost is one tag
//     compare in the (overwhelmingly common) re-touched-page case;
//   * the step loop allocates nothing.
//
// Two consumers: the differential fuzzer's reference state (nightly 10k
// seeds), and sampled simulation (Simulator::run_sampled) where this
// engine fast-forwards between detailed sample windows and hands the
// architectural state across via ArchCheckpoint.
//
// Semantics are the oracle's, bit for bit (see oracle.h for the
// rationale): faults bite at the faulting instruction's commit point and
// redirect to the program's fault handler (or end the run with
// kFaultNoHandler); committed control flow reaching a pc with no
// instruction ends the run; division by zero yields all-ones; the zero
// register never writes; execution is always user-level. The one
// deliberate divergence stands: kRdCycle reads the committed-instruction
// count, as no cycle exists here.
//
// The engine caches translations: if the page table is remapped between
// runs (attack-harness style), call invalidate_translations().
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "common/addr_map.h"
#include "common/types.h"
#include "cpu/core.h"
#include "isa/program.h"
#include "memory/main_memory.h"
#include "memory/page_table.h"

namespace safespec::sim {

/// Committed architectural state at a sample-window boundary, as emitted
/// by FunctionalEngine::checkpoint() and consumed by
/// Simulator::restore() / FunctionalEngine::restore().
///
/// Memory is carried as a *delta*: the words written since the previous
/// checkpoint (recorded only while record_memory_delta(true) is active —
/// the shared-memory fast path leaves it empty because both engines
/// mutate the same MainMemory). Microarchitectural warming state
/// (caches, TLBs, predictors, shadows) is deliberately not captured: in
/// sampled simulation it lives in the persistent detailed Core across
/// windows, and each window's warmup interval re-warms whatever the
/// fast-forwarded gap staled.
struct ArchCheckpoint {
  std::array<std::uint64_t, kNumArchRegs> regs{};
  Addr pc = 0;                  ///< next instruction to execute
  std::uint64_t committed = 0;  ///< instructions committed so far
  std::uint64_t faults = 0;     ///< architectural faults raised so far
  bool started = false;         ///< false = pristine (pc not yet valid)

  /// One recorded memory word: enough to apply the delta forward onto a
  /// cold memory image (new_value) or roll it back (old_value).
  struct MemWrite {
    Addr addr = 0;  ///< byte address of the 64-bit word
    std::uint64_t old_value = 0;
    std::uint64_t new_value = 0;
  };
  /// First-write-per-word since the previous checkpoint, in write order.
  std::vector<MemWrite> mem_delta;
};

class FunctionalEngine {
 public:
  /// Borrows everything; `mem` is mutated by stores.
  FunctionalEngine(const isa::Program* program, memory::MainMemory* mem,
                   const memory::PageTable* page_table);

  /// Runs from the program entry (or wherever the previous run/restore
  /// left off) until halt, unrecoverable fault, or `max_instrs` further
  /// committed instructions. Resumable, like Core::run.
  cpu::StopReason run(std::uint64_t max_instrs);

  std::uint64_t reg(RegIndex r) const { return regs_[r]; }
  void set_reg(RegIndex r, std::uint64_t v) {
    if (r != kZeroReg) regs_[r] = v;
  }

  /// Committed instruction count (faulting instructions never commit,
  /// matching CoreStats::committed_instrs).
  std::uint64_t committed() const { return committed_; }
  /// Architecturally raised faults (matching CoreStats::faults).
  std::uint64_t faults() const { return faults_; }
  Addr pc() const { return pc_; }

  // ---- checkpoints ------------------------------------------------------
  /// Snapshots the architectural state. When delta recording is on, the
  /// checkpoint carries every word written since the previous
  /// checkpoint() (or since recording started) and a new delta epoch
  /// begins.
  ArchCheckpoint checkpoint();

  /// Restores registers, pc and counters from `cp` (memory is not
  /// touched — apply cp.mem_delta to the target memory separately, or
  /// use Simulator::restore which does both). Starts a new delta epoch.
  void restore(const ArchCheckpoint& cp);

  /// Enables/disables memory-delta recording (default off: the sampled
  /// fast path shares one MainMemory with the detailed core and needs no
  /// delta). Turning it on starts a fresh epoch.
  void record_memory_delta(bool on);

  /// Rolls back every memory word written in the current epoch to its
  /// value at the last checkpoint()/restore()/record start, and clears
  /// the epoch. Requires recording to be on; registers/pc are untouched
  /// (pair with restore()).
  void rollback_memory();

  /// Drops cached translations. Call after remapping the page table
  /// between runs.
  void invalidate_translations();

  /// Back to the pristine post-construction state — zero registers and
  /// counters, next run() starts at the program entry, translations
  /// dropped, delta epoch cleared. The predecoded text is kept (the
  /// program is borrowed and immutable), which is the point: a cached
  /// engine reset() + run() behaves bit-identically to a freshly
  /// constructed one without re-paying the predecode pass.
  void reset();

 private:
  /// Predecoded instruction slot. `present` distinguishes real
  /// instructions from holes in the dense table.
  struct Slot {
    isa::Instruction inst;
    bool present = false;
  };

  /// Dense-table fetch when the program's text span fits, PagedAddrMap
  /// fallback otherwise. Returns nullptr on a hole / out-of-range /
  /// misaligned pc — the kFaultNoHandler path.
  const isa::Instruction* fetch(Addr pc) const {
    const Addr offset = pc - text_base_;
    if (offset % isa::kInstrBytes == 0) {
      const Addr slot = offset / isa::kInstrBytes;
      if (slot < text_.size()) {
        const Slot& s = text_[slot];
        return s.present ? &s.inst : nullptr;
      }
    }
    if (dense_covers_all_) return nullptr;
    return program_->at(pc);
  }

  /// Translates a data address through the translation cache; returns
  /// false when the access must fault (unmapped, or kernel-only at the
  /// engine's fixed user level).
  bool translate(Addr vaddr, Addr& paddr);

  /// Fault dispatch: redirect to the handler, or end the run.
  bool handle_fault();

  /// Records the word containing `addr` into the current delta epoch
  /// (first write per word only). Called before the store mutates it.
  void log_word(Addr addr);

  void predecode();

  const isa::Program* program_;
  memory::MainMemory* mem_;
  const memory::PageTable* page_table_;

  // Predecoded text. `dense_covers_all_` means every instruction of the
  // program landed in text_, so a miss is authoritative.
  std::vector<Slot> text_;
  Addr text_base_ = 0;
  bool dense_covers_all_ = false;

  // Direct-mapped translation cache: tag = vpage + 1 (0 = empty), value
  // = ppage. Only successful user-level translations are cached, so the
  // hit path needs no permission re-check.
  static constexpr std::size_t kXlatEntries = 256;  // power of two
  std::array<Addr, kXlatEntries> xlat_tag_{};
  std::array<Addr, kXlatEntries> xlat_ppage_{};

  std::uint64_t regs_[kNumArchRegs] = {};
  Addr pc_ = 0;
  std::uint64_t committed_ = 0;
  std::uint64_t faults_ = 0;
  bool started_ = false;

  // Memory-delta epoch (off by default; see record_memory_delta).
  bool record_delta_ = false;
  std::vector<ArchCheckpoint::MemWrite> delta_;  ///< old_value filled
  AddrMap<char> delta_seen_;                     ///< word addr -> logged
};

}  // namespace safespec::sim
