// Canonical simulation configurations.
//
// skylake_config() reproduces Tables I and II of the paper: a 6-wide
// SkyLake-like out-of-order core (96-entry IQ, 224-entry ROB, 72/56-entry
// LDQ/STQ, 64-entry TLBs) over a 32K/32K/256K/2M inclusive hierarchy with
// 4/12/44-cycle hits and 191-cycle memory.
//
// This header is the legacy entry point: the configuration itself now
// lives in the "skylake" machine preset (sim/machine.h), and
// skylake_config() is a thin wrapper kept for the attack PoCs and older
// tests that still construct cores by hand.
#pragma once

#include <string>

#include "cpu/core.h"
#include "safespec/shadow_structures.h"

namespace safespec::sim {

/// Table I + Table II configuration with the given protection policy —
/// machine_preset("skylake").core with the policy name filled in.
/// Shadow structures default to the worst-case "Secure" sizing (§V):
/// d-side bounded by the LDQ (72), i-side bounded by the ROB (224).
cpu::CoreConfig skylake_config(
    shadow::CommitPolicy policy = shadow::CommitPolicy::kBaseline);

/// Pretty-printer used by bench/table1_2_config to echo the simulated
/// configuration the way the paper tabulates it.
std::string describe_config(const cpu::CoreConfig& config);

}  // namespace safespec::sim
