// High-level run harness: wires a Program, MainMemory, PageTable and Core
// together, provides address-space setup helpers, and extracts the result
// summary the benchmarks and examples consume.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "common/types.h"
#include "cpu/core.h"
#include "isa/program.h"
#include "memory/main_memory.h"
#include "memory/page_table.h"

namespace safespec::sim {

/// a - b clamped at zero: counter pairs sampled from different structures
/// can disagree transiently (e.g. a shadow hit recorded for a load whose
/// L1 miss was annulled), and the rate helpers must not underflow.
constexpr std::uint64_t saturating_sub(std::uint64_t a, std::uint64_t b) {
  return a > b ? a - b : 0;
}

/// Everything the figures need from one run, flattened out of the core's
/// structures.
struct SimResult {
  cpu::StopReason stop = cpu::StopReason::kMaxCycles;
  Cycle cycles = 0;
  std::uint64_t committed_instrs = 0;
  double ipc = 0.0;

  // d-cache (Fig 12/13): reads only; miss rate "including the shadow".
  std::uint64_t dcache_accesses = 0;
  std::uint64_t dcache_misses = 0;       ///< L1D misses
  std::uint64_t shadow_dcache_hits = 0;  ///< of which served by shadow
  double dcache_miss_rate_incl_shadow() const {
    return dcache_accesses == 0
               ? 0.0
               : static_cast<double>(
                     saturating_sub(dcache_misses, shadow_dcache_hits)) /
                     dcache_accesses;
  }
  double shadow_dcache_hit_fraction() const {
    const auto hits =
        saturating_sub(dcache_accesses, dcache_misses) + shadow_dcache_hits;
    return hits == 0 ? 0.0
                     : static_cast<double>(shadow_dcache_hits) / hits;
  }

  // i-cache (Fig 14/15): per-instruction fetch accounting — each fetched
  // instruction is served by exactly one of L1I, shadow i-cache, or a
  // lower level; `icache_misses` already excludes shadow hits.
  std::uint64_t icache_accesses = 0;
  std::uint64_t icache_misses = 0;
  std::uint64_t shadow_icache_hits = 0;
  double icache_miss_rate_incl_shadow() const {
    return icache_accesses == 0
               ? 0.0
               : static_cast<double>(icache_misses) / icache_accesses;
  }
  double shadow_icache_hit_fraction() const {
    const auto hits = saturating_sub(icache_accesses, icache_misses);
    return hits == 0 ? 0.0
                     : static_cast<double>(shadow_icache_hits) / hits;
  }

  // Shadow lifecycle (Fig 16) and occupancy percentiles (Figs 6-9).
  double shadow_dcache_commit_rate = 0.0;
  double shadow_icache_commit_rate = 0.0;
  std::uint64_t shadow_dcache_p9999 = 0;
  std::uint64_t shadow_icache_p9999 = 0;
  std::uint64_t shadow_dtlb_p9999 = 0;
  std::uint64_t shadow_itlb_p9999 = 0;

  std::uint64_t mispredicts = 0;
  std::uint64_t squashed_instrs = 0;
  std::uint64_t faults = 0;
};

/// Owns the full simulated machine for one experiment.
class Simulator {
 public:
  Simulator(const cpu::CoreConfig& config, isa::Program program);

  /// Maps [base, base+bytes) as user or kernel pages, identity-translated.
  void map_region(Addr base, std::uint64_t bytes,
                  memory::PagePerm perm = memory::PagePerm::kUser);

  /// Convenience: map the pages every instruction of the program sits on.
  void map_text();

  /// Writes a 64-bit value into architectural memory (pre-run setup).
  void poke(Addr addr, std::uint64_t value) { mem_.write64(addr, value); }
  std::uint64_t peek(Addr addr) const { return mem_.read64(addr); }

  /// Runs to completion (halt/fault/budget) and snapshots the result.
  SimResult run(Cycle max_cycles = 50'000'000,
                std::uint64_t max_instrs = ~0ULL);

  cpu::Core& core() { return *core_; }
  const cpu::Core& core() const { return *core_; }
  memory::MainMemory& memory() { return mem_; }
  const memory::MainMemory& memory() const { return mem_; }
  memory::PageTable& page_table() { return page_table_; }
  const isa::Program& program() const { return program_; }

  /// Snapshot of the current statistics without running (used after
  /// driving core().step() manually in tests).
  SimResult snapshot(cpu::StopReason stop) const;

 private:
  isa::Program program_;
  memory::MainMemory mem_;
  memory::PageTable page_table_;
  std::unique_ptr<cpu::Core> core_;
};

}  // namespace safespec::sim
