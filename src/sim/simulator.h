// High-level run harness: wires a Program, MainMemory, PageTable and Core
// together, provides address-space setup helpers, and extracts the result
// summary the benchmarks and examples consume.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "common/types.h"
#include "cpu/core.h"
#include "isa/program.h"
#include "memory/main_memory.h"
#include "memory/page_table.h"

namespace safespec::sim {

struct ArchCheckpoint;   // sim/functional.h
class FunctionalEngine;  // sim/functional.h

/// a - b clamped at zero: counter pairs sampled from different structures
/// can disagree transiently (e.g. a shadow hit recorded for a load whose
/// L1 miss was annulled), and the rate helpers must not underflow.
constexpr std::uint64_t saturating_sub(std::uint64_t a, std::uint64_t b) {
  return a > b ? a - b : 0;
}

/// SMARTS-style sampled-simulation schedule: repeat [fast-forward
/// `fast_forward_interval` instructions functionally -> run
/// `warmup_instrs` in full detail unmeasured (re-warming caches,
/// predictors and shadows staled by the gap) -> run `detail_instrs` in
/// full detail, measured]. One IPC sample per measured window; the run
/// reports their mean with a confidence interval (SimResult::sampling).
///
/// fast_forward_interval == 0 disables sampling entirely:
/// Simulator::run_sampled degenerates to the plain detailed run and
/// reproduces its cycle counts bit-identically.
struct SamplingSpec {
  std::uint64_t fast_forward_interval = 0;  ///< functional instrs per gap
  std::uint64_t warmup_instrs = 2'000;      ///< detailed, unmeasured
  std::uint64_t detail_instrs = 10'000;     ///< detailed, measured

  bool enabled() const { return fast_forward_interval > 0; }

  /// Throws std::invalid_argument when sampling is enabled with a zero
  /// measured window (nothing would ever be measured).
  void validate() const;
};

/// Sampled-run accounting attached to SimResult. The IPC estimate is the
/// mean of per-window IPC samples; ipc_ci95 is the +/- half-width of the
/// 95% confidence interval on that mean (normal approximation,
/// 1.96 * stddev / sqrt(windows); zero when fewer than two windows).
struct SamplingStats {
  bool enabled = false;
  std::uint64_t windows = 0;             ///< measured detail windows
  std::uint64_t fast_forwarded = 0;      ///< functional-engine commits
  std::uint64_t warmup_commits = 0;      ///< detailed, unmeasured commits
  std::uint64_t measured_commits = 0;    ///< detailed, measured commits
  Cycle measured_cycles = 0;             ///< cycles in measured windows
  double ipc_mean = 0.0;
  double ipc_stddev = 0.0;               ///< sample stddev across windows
  double ipc_ci95 = 0.0;
};

/// Everything the figures need from one run, flattened out of the core's
/// structures.
struct SimResult {
  cpu::StopReason stop = cpu::StopReason::kMaxCycles;
  Cycle cycles = 0;
  std::uint64_t committed_instrs = 0;
  double ipc = 0.0;

  // d-cache (Fig 12/13): reads only; miss rate "including the shadow".
  std::uint64_t dcache_accesses = 0;
  std::uint64_t dcache_misses = 0;       ///< L1D misses
  std::uint64_t shadow_dcache_hits = 0;  ///< of which served by shadow
  double dcache_miss_rate_incl_shadow() const {
    return dcache_accesses == 0
               ? 0.0
               : static_cast<double>(
                     saturating_sub(dcache_misses, shadow_dcache_hits)) /
                     dcache_accesses;
  }
  double shadow_dcache_hit_fraction() const {
    const auto hits =
        saturating_sub(dcache_accesses, dcache_misses) + shadow_dcache_hits;
    return hits == 0 ? 0.0
                     : static_cast<double>(shadow_dcache_hits) / hits;
  }

  // i-cache (Fig 14/15): per-instruction fetch accounting — each fetched
  // instruction is served by exactly one of L1I, shadow i-cache, or a
  // lower level; `icache_misses` already excludes shadow hits.
  std::uint64_t icache_accesses = 0;
  std::uint64_t icache_misses = 0;
  std::uint64_t shadow_icache_hits = 0;
  double icache_miss_rate_incl_shadow() const {
    return icache_accesses == 0
               ? 0.0
               : static_cast<double>(icache_misses) / icache_accesses;
  }
  double shadow_icache_hit_fraction() const {
    const auto hits = saturating_sub(icache_accesses, icache_misses);
    return hits == 0 ? 0.0
                     : static_cast<double>(shadow_icache_hits) / hits;
  }

  // Shadow lifecycle (Fig 16) and occupancy percentiles (Figs 6-9).
  double shadow_dcache_commit_rate = 0.0;
  double shadow_icache_commit_rate = 0.0;
  std::uint64_t shadow_dcache_p9999 = 0;
  std::uint64_t shadow_icache_p9999 = 0;
  std::uint64_t shadow_dtlb_p9999 = 0;
  std::uint64_t shadow_itlb_p9999 = 0;

  std::uint64_t mispredicts = 0;
  std::uint64_t squashed_instrs = 0;
  std::uint64_t faults = 0;

  /// Sampled-run accounting; `sampling.enabled` is false for plain
  /// detailed runs. When enabled, `committed_instrs` counts every
  /// architectural instruction (fast-forwarded + detailed), `cycles`
  /// counts only detailed cycles, and `ipc` is the sampled point
  /// estimate (sampling.ipc_mean).
  SamplingStats sampling;
};

/// Owns the full simulated machine for one experiment.
class Simulator {
 public:
  Simulator(const cpu::CoreConfig& config, isa::Program program);
  // Out of line: FunctionalEngine is incomplete here. The explicit
  // destructor would otherwise suppress the moves tests rely on.
  ~Simulator();
  Simulator(Simulator&&) noexcept;
  Simulator& operator=(Simulator&&) noexcept;

  /// Maps [base, base+bytes) as user or kernel pages, identity-translated.
  void map_region(Addr base, std::uint64_t bytes,
                  memory::PagePerm perm = memory::PagePerm::kUser);

  /// Convenience: map the pages every instruction of the program sits on.
  void map_text();

  /// Writes a 64-bit value into architectural memory (pre-run setup).
  void poke(Addr addr, std::uint64_t value) { mem_.write64(addr, value); }
  std::uint64_t peek(Addr addr) const { return mem_.read64(addr); }

  /// Runs to completion (halt/fault/budget) and snapshots the result.
  SimResult run(Cycle max_cycles = 50'000'000,
                std::uint64_t max_instrs = ~0ULL);

  /// Sampled run (see SamplingSpec): alternates functional fast-forward
  /// with checkpoint-restored detailed windows on the same memory image
  /// and core. With `spec` disabled (fast_forward_interval == 0) this is
  /// exactly run() — bit-identical cycle counts. `max_cycles` bounds the
  /// *detailed* cycles only (the functional engine has no clock);
  /// `max_instrs` bounds total architectural instructions.
  SimResult run_sampled(const SamplingSpec& spec,
                        Cycle max_cycles = 50'000'000,
                        std::uint64_t max_instrs = ~0ULL);

  /// Sampled run under the simulator's own stored SamplingSpec (set at
  /// build time from MachineSpec::sampling; disabled by default).
  SimResult run_sampled_auto(Cycle max_cycles = 50'000'000,
                             std::uint64_t max_instrs = ~0ULL) {
    return run_sampled(sampling_, max_cycles, max_instrs);
  }

  const SamplingSpec& sampling() const { return sampling_; }
  void set_sampling(const SamplingSpec& spec) { sampling_ = spec; }

  /// Restores a functional-engine checkpoint into the detailed machine:
  /// applies the memory delta (if any), installs the register file, and
  /// restarts the core at cp.pc. Microarchitectural warming state
  /// survives, as in Core::restart_at.
  void restore(const ArchCheckpoint& cp);

  cpu::Core& core() { return *core_; }
  const cpu::Core& core() const { return *core_; }
  memory::MainMemory& memory() { return mem_; }
  const memory::MainMemory& memory() const { return mem_; }
  memory::PageTable& page_table() { return page_table_; }
  const isa::Program& program() const { return program_; }

  /// Snapshot of the current statistics without running (used after
  /// driving core().step() manually in tests).
  SimResult snapshot(cpu::StopReason stop) const;

  /// The simulator's functional engine, built (and its predecode pass
  /// paid) on first use, then cached for the simulator's lifetime.
  /// run_sampled resets it at the start of every call, so repeated
  /// sampled runs behave exactly like the historical engine-per-call
  /// code without re-predecoding. Harnesses that remap the page table
  /// mid-experiment call invalidate_translations() on it, as ever.
  FunctionalEngine& functional_engine();

 private:
  isa::Program program_;
  memory::MainMemory mem_;
  memory::PageTable page_table_;
  std::unique_ptr<cpu::Core> core_;
  std::unique_ptr<FunctionalEngine> engine_;  ///< lazy; see functional_engine()
  SamplingSpec sampling_;  ///< disabled unless set_sampling() enables it
};

}  // namespace safespec::sim
