// High-level run harness: wires Programs, MainMemories, PageTables and
// cpu::Cores together, provides address-space setup helpers, and extracts
// the result summary the benchmarks and examples consume.
//
// Multi-core model: the simulator owns one context (program copy, private
// memory image, page table, core with private L1s/TLBs/shadows) per core,
// plus one memory::SharedLevels holding the L2/L3 every core attaches to.
// Cores advance under a deterministic round-robin interleaving: one cycle
// per live core per global cycle, core 0 first. Each core runs its own
// program against its own architectural memory — a private "process" — so
// per-core architectural state is independent of the interleaving and
// only *timing* couples cores (through the shared levels). cores=1 keeps
// the exact historical single-core run loop.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/types.h"
#include "cpu/core.h"
#include "isa/program.h"
#include "memory/main_memory.h"
#include "memory/page_table.h"

namespace safespec::sim {

struct ArchCheckpoint;   // sim/functional.h
class FunctionalEngine;  // sim/functional.h

/// a - b clamped at zero: counter pairs sampled from different structures
/// can disagree transiently (e.g. a shadow hit recorded for a load whose
/// L1 miss was annulled), and the rate helpers must not underflow.
constexpr std::uint64_t saturating_sub(std::uint64_t a, std::uint64_t b) {
  return a > b ? a - b : 0;
}

/// SMARTS-style sampled-simulation schedule: repeat [fast-forward
/// `fast_forward_interval` instructions functionally -> run
/// `warmup_instrs` in full detail unmeasured (re-warming caches,
/// predictors and shadows staled by the gap) -> run `detail_instrs` in
/// full detail, measured]. One IPC sample per measured window; the run
/// reports their mean with a confidence interval (SimResult::sampling).
///
/// fast_forward_interval == 0 disables sampling entirely:
/// Simulator::run_sampled degenerates to the plain detailed run and
/// reproduces its cycle counts bit-identically.
struct SamplingSpec {
  std::uint64_t fast_forward_interval = 0;  ///< functional instrs per gap
  std::uint64_t warmup_instrs = 2'000;      ///< detailed, unmeasured
  std::uint64_t detail_instrs = 10'000;     ///< detailed, measured

  bool enabled() const { return fast_forward_interval > 0; }

  /// Throws std::invalid_argument when sampling is enabled with a zero
  /// measured window (nothing would ever be measured).
  void validate() const;
};

/// Sampled-run accounting attached to SimResult. The IPC estimate is the
/// mean of per-window IPC samples; ipc_ci95 is the +/- half-width of the
/// 95% confidence interval on that mean (normal approximation,
/// 1.96 * stddev / sqrt(windows); stddev and ci95 are exactly zero when
/// fewer than two windows were measured — one sample has no dispersion).
struct SamplingStats {
  bool enabled = false;
  std::uint64_t windows = 0;             ///< measured detail windows
  std::uint64_t fast_forwarded = 0;      ///< functional-engine commits
  std::uint64_t warmup_commits = 0;      ///< detailed, unmeasured commits
  std::uint64_t measured_commits = 0;    ///< detailed, measured commits
  Cycle measured_cycles = 0;             ///< cycles in measured windows
  double ipc_mean = 0.0;
  double ipc_stddev = 0.0;               ///< sample stddev across windows
  double ipc_ci95 = 0.0;
};

/// Everything the figures need from one run, flattened out of the core's
/// structures. Per-core counters describe core 0 (the primary core);
/// `committed_all_cores` and `cross_core_evictions` aggregate over the
/// whole machine (equal to committed_instrs / 0 at cores=1).
struct SimResult {
  cpu::StopReason stop = cpu::StopReason::kMaxCycles;
  Cycle cycles = 0;
  std::uint64_t committed_instrs = 0;
  double ipc = 0.0;

  /// Sum of committed instructions over every core (machine throughput).
  std::uint64_t committed_all_cores = 0;
  /// Shared-level (L2+L3) fills that evicted another core's line.
  std::uint64_t cross_core_evictions = 0;

  /// SHARP telemetry, summed over the shared L2/L3 and every core's L1s:
  /// alarms (forced cross-owner evictions under "SHARP"; every observed
  /// cross-owner eviction under "detect-only") and detections (epochs
  /// whose alarm count crossed CoreConfig::sharp_alarm_threshold). Zero
  /// under every non-SHARP-family policy.
  std::uint64_t sharp_alarms = 0;
  std::uint64_t sharp_detections = 0;

  // d-cache (Fig 12/13): reads only; miss rate "including the shadow".
  std::uint64_t dcache_accesses = 0;
  std::uint64_t dcache_misses = 0;       ///< L1D misses
  std::uint64_t shadow_dcache_hits = 0;  ///< of which served by shadow
  double dcache_miss_rate_incl_shadow() const {
    return dcache_accesses == 0
               ? 0.0
               : static_cast<double>(
                     saturating_sub(dcache_misses, shadow_dcache_hits)) /
                     dcache_accesses;
  }
  double shadow_dcache_hit_fraction() const {
    const auto hits =
        saturating_sub(dcache_accesses, dcache_misses) + shadow_dcache_hits;
    return hits == 0 ? 0.0
                     : static_cast<double>(shadow_dcache_hits) / hits;
  }

  // i-cache (Fig 14/15): per-instruction fetch accounting — each fetched
  // instruction is served by exactly one of L1I, shadow i-cache, or a
  // lower level; `icache_misses` already excludes shadow hits.
  std::uint64_t icache_accesses = 0;
  std::uint64_t icache_misses = 0;
  std::uint64_t shadow_icache_hits = 0;
  double icache_miss_rate_incl_shadow() const {
    return icache_accesses == 0
               ? 0.0
               : static_cast<double>(icache_misses) / icache_accesses;
  }
  double shadow_icache_hit_fraction() const {
    const auto hits = saturating_sub(icache_accesses, icache_misses);
    return hits == 0 ? 0.0
                     : static_cast<double>(shadow_icache_hits) / hits;
  }

  // Shadow lifecycle (Fig 16) and occupancy percentiles (Figs 6-9).
  double shadow_dcache_commit_rate = 0.0;
  double shadow_icache_commit_rate = 0.0;
  std::uint64_t shadow_dcache_p9999 = 0;
  std::uint64_t shadow_icache_p9999 = 0;
  std::uint64_t shadow_dtlb_p9999 = 0;
  std::uint64_t shadow_itlb_p9999 = 0;

  std::uint64_t mispredicts = 0;
  std::uint64_t squashed_instrs = 0;
  std::uint64_t faults = 0;

  /// Sampled-run accounting; `sampling.enabled` is false for plain
  /// detailed runs. When enabled, `committed_instrs` counts every
  /// architectural instruction (fast-forwarded + detailed), `cycles`
  /// counts only detailed cycles, and `ipc` is the sampled point
  /// estimate (sampling.ipc_mean).
  SamplingStats sampling;
};

/// Owns the full simulated machine for one experiment.
class Simulator {
 public:
  /// Homogeneous machine: config.cores cores (≥1), each running its own
  /// copy of `program` against a private memory image, sharing the L2/L3.
  Simulator(const cpu::CoreConfig& config, isa::Program program);
  /// Heterogeneous machine (cross-core attack harnesses): one core per
  /// program in `programs` (must be non-empty); config.cores is ignored.
  Simulator(const cpu::CoreConfig& config,
            std::vector<isa::Program> programs);
  // Out of line: FunctionalEngine is incomplete here. The explicit
  // destructor would otherwise suppress the moves tests rely on.
  ~Simulator();
  Simulator(Simulator&&) noexcept;
  Simulator& operator=(Simulator&&) noexcept;

  int num_cores() const { return static_cast<int>(ctx_.size()); }

  /// Maps [base, base+bytes) as user or kernel pages, identity-translated
  /// — in every core's address space (the homogeneous setup path).
  void map_region(Addr base, std::uint64_t bytes,
                  memory::PagePerm perm = memory::PagePerm::kUser);
  /// Same, in core `c`'s address space only.
  void map_region_on(int c, Addr base, std::uint64_t bytes,
                     memory::PagePerm perm = memory::PagePerm::kUser);

  /// Convenience: in each core's address space, map the pages every
  /// instruction of that core's program sits on.
  void map_text();

  /// Writes a 64-bit value into every core's architectural memory
  /// (pre-run setup; the images are private per core).
  void poke(Addr addr, std::uint64_t value);
  /// Core-targeted variants (cross-core attack setup / inspection).
  void poke_on(int c, Addr addr, std::uint64_t value) {
    mem(c).write64(addr, value);
  }
  std::uint64_t peek(Addr addr) const { return mem(0).read64(addr); }
  std::uint64_t peek_on(int c, Addr addr) const { return mem(c).read64(addr); }

  /// Runs to completion (halt/fault/budget) and snapshots the result.
  /// Multi-core: cores step round-robin (core 0 first) until every core
  /// is finished or a budget trips; `max_cycles` bounds global schedule
  /// cycles and `max_instrs` bounds core 0's committed instructions; the
  /// stop reason reports core 0's fate.
  SimResult run(Cycle max_cycles = 50'000'000,
                std::uint64_t max_instrs = ~0ULL);

  /// Sampled run (see SamplingSpec): alternates functional fast-forward
  /// with checkpoint-restored detailed windows on the same memory image
  /// and core. With `spec` disabled (fast_forward_interval == 0) this is
  /// exactly run() — bit-identical cycle counts. `max_cycles` bounds the
  /// *detailed* cycles only (the functional engine has no clock);
  /// `max_instrs` bounds total architectural instructions. Single-core
  /// only: throws std::invalid_argument when enabled at cores>1.
  SimResult run_sampled(const SamplingSpec& spec,
                        Cycle max_cycles = 50'000'000,
                        std::uint64_t max_instrs = ~0ULL);

  /// Sampled run under the simulator's own stored SamplingSpec (set at
  /// build time from MachineSpec::sampling; disabled by default).
  SimResult run_sampled_auto(Cycle max_cycles = 50'000'000,
                             std::uint64_t max_instrs = ~0ULL) {
    return run_sampled(sampling_, max_cycles, max_instrs);
  }

  const SamplingSpec& sampling() const { return sampling_; }
  void set_sampling(const SamplingSpec& spec) { sampling_ = spec; }

  /// Restores a functional-engine checkpoint into the detailed machine
  /// (core 0): applies the memory delta (if any), installs the register
  /// file, and restarts the core at cp.pc. Microarchitectural warming
  /// state survives, as in Core::restart_at.
  void restore(const ArchCheckpoint& cp);

  cpu::Core& core() { return *ctx_[0]->core; }
  const cpu::Core& core() const { return *ctx_[0]->core; }
  cpu::Core& core(int c) { return *ctx_[c]->core; }
  const cpu::Core& core(int c) const { return *ctx_[c]->core; }
  memory::MainMemory& memory() { return mem(0); }
  const memory::MainMemory& memory() const { return mem(0); }
  memory::MainMemory& memory(int c) { return mem(c); }
  const memory::MainMemory& memory(int c) const { return mem(c); }
  memory::PageTable& page_table() { return ctx_[0]->page_table; }
  memory::PageTable& page_table(int c) { return ctx_[c]->page_table; }
  const isa::Program& program() const { return ctx_[0]->program; }
  const isa::Program& program(int c) const { return ctx_[c]->program; }

  /// The L2/L3 every core's hierarchy attaches to.
  memory::SharedLevels& shared_levels() { return *shared_levels_; }
  const memory::SharedLevels& shared_levels() const {
    return *shared_levels_;
  }

  /// Snapshot of the current statistics without running (used after
  /// driving core().step() manually in tests).
  SimResult snapshot(cpu::StopReason stop) const;

  /// The simulator's functional engine over core 0's context, built (and
  /// its predecode pass paid) on first use, then cached for the
  /// simulator's lifetime. run_sampled resets it at the start of every
  /// call, so repeated sampled runs behave exactly like the historical
  /// engine-per-call code without re-predecoding. Harnesses that remap
  /// the page table mid-experiment call invalidate_translations() on it,
  /// as ever.
  FunctionalEngine& functional_engine();

 private:
  /// One core's private world: program copy, architectural memory, page
  /// table, and the core itself. Held by pointer so the core's borrowed
  /// program/memory/page-table addresses survive Simulator moves.
  struct CoreContext {
    explicit CoreContext(isa::Program p) : program(std::move(p)) {}
    isa::Program program;
    memory::MainMemory mem;
    memory::PageTable page_table;
    std::unique_ptr<cpu::Core> core;
  };

  void build_cores(const cpu::CoreConfig& config,
                   std::vector<isa::Program> programs);

  /// The cores>1 run loop: deterministic round-robin, one cycle per live
  /// core per global cycle, core 0 first.
  cpu::StopReason run_multi(Cycle max_cycles, std::uint64_t max_instrs);

  memory::MainMemory& mem(int c) { return ctx_[c]->mem; }
  const memory::MainMemory& mem(int c) const { return ctx_[c]->mem; }

  std::unique_ptr<memory::SharedLevels> shared_levels_;
  std::vector<std::unique_ptr<CoreContext>> ctx_;
  std::unique_ptr<FunctionalEngine> engine_;  ///< lazy; see functional_engine()
  SamplingSpec sampling_;  ///< disabled unless set_sampling() enables it
};

}  // namespace safespec::sim
