#include "sim/sim_config.h"

#include <sstream>

#include "sim/machine.h"

namespace safespec::sim {

cpu::CoreConfig skylake_config(shadow::CommitPolicy policy) {
  cpu::CoreConfig c = machine_preset("skylake").core;
  c.policy = shadow::to_string(policy);
  return c;
}

std::string describe_config(const cpu::CoreConfig& c) {
  std::ostringstream oss;
  oss << "CPU (Table I)\n"
      << "  Issue               " << c.issue_width << "-way issue\n"
      << "  IQ                  " << c.iq_entries << "-entry Issue Queue\n"
      << "  Commit              up to " << c.commit_width
      << " micro-ops/cycle\n"
      << "  ROB                 " << c.rob_entries
      << "-entry Reorder Buffer\n"
      << "  iTLB                " << c.itlb.entries << "-entry\n"
      << "  dTLB                " << c.dtlb.entries << "-entry\n"
      << "  LDQ                 " << c.ldq_entries << "-entry\n"
      << "  STQ                 " << c.stq_entries << "-entry\n"
      << "Memory system (Table II)\n"
      << "  L1I-Cache           " << c.hierarchy.l1i.size_bytes / 1024
      << " KB, " << c.hierarchy.l1i.ways << "-way, "
      << c.hierarchy.l1i.line_bytes << "B line, "
      << c.hierarchy.l1i.hit_latency << " cycle hit\n"
      << "  L1D-Cache           " << c.hierarchy.l1d.size_bytes / 1024
      << " KB, " << c.hierarchy.l1d.ways << "-way, "
      << c.hierarchy.l1d.line_bytes << "B line, "
      << c.hierarchy.l1d.hit_latency << " cycle hit\n"
      << "  L2 Shared Cache     " << c.hierarchy.l2.size_bytes / 1024
      << " KB, " << c.hierarchy.l2.ways << "-way, "
      << c.hierarchy.l2.line_bytes << "B line, "
      << c.hierarchy.l2.hit_latency << " cycle hit\n"
      << "  L3 Shared Cache     " << c.hierarchy.l3.size_bytes / (1024 * 1024)
      << " MB, " << c.hierarchy.l3.ways << "-way, "
      << c.hierarchy.l3.line_bytes << "B line, "
      << c.hierarchy.l3.hit_latency << " cycle hit\n"
      << "  Memory              " << c.hierarchy.memory_latency
      << " cycles\n"
      << "SafeSpec\n"
      << "  Policy              " << c.policy << "\n"
      << "  shadow d-cache      " << c.shadow_dcache.entries << " entries ("
      << shadow::to_string(c.shadow_dcache.full_policy) << ")\n"
      << "  shadow i-cache      " << c.shadow_icache.entries << " entries ("
      << shadow::to_string(c.shadow_icache.full_policy) << ")\n"
      << "  shadow dTLB         " << c.shadow_dtlb.entries << " entries ("
      << shadow::to_string(c.shadow_dtlb.full_policy) << ")\n"
      << "  shadow iTLB         " << c.shadow_itlb.entries << " entries ("
      << shadow::to_string(c.shadow_itlb.full_policy) << ")\n";
  return oss.str();
}

}  // namespace safespec::sim
