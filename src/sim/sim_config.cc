#include "sim/sim_config.h"

#include <sstream>

namespace safespec::sim {

cpu::CoreConfig skylake_config(shadow::CommitPolicy policy) {
  cpu::CoreConfig c;
  // Table I.
  c.issue_width = 6;
  c.fetch_width = 6;
  c.commit_width = 6;
  c.iq_entries = 96;
  c.rob_entries = 224;
  c.ldq_entries = 72;
  c.stq_entries = 56;
  c.itlb = {.name = "iTLB", .entries = 64, .ways = 4};
  c.dtlb = {.name = "dTLB", .entries = 64, .ways = 4};
  // Table II (line size 64 B everywhere).
  c.hierarchy.l1i = {.name = "L1I", .size_bytes = 32 * 1024, .ways = 8,
                     .line_bytes = 64, .hit_latency = 4};
  c.hierarchy.l1d = {.name = "L1D", .size_bytes = 32 * 1024, .ways = 8,
                     .line_bytes = 64, .hit_latency = 4};
  c.hierarchy.l2 = {.name = "L2", .size_bytes = 256 * 1024, .ways = 4,
                    .line_bytes = 64, .hit_latency = 12};
  c.hierarchy.l3 = {.name = "L3", .size_bytes = 2 * 1024 * 1024, .ways = 16,
                    .line_bytes = 64, .hit_latency = 44};
  c.hierarchy.memory_latency = 191;
  // SafeSpec.
  c.policy = policy;
  c.shadow_dcache = {.name = "shadow-dcache", .entries = c.ldq_entries};
  c.shadow_icache = {.name = "shadow-icache", .entries = c.rob_entries};
  c.shadow_dtlb = {.name = "shadow-dtlb", .entries = c.ldq_entries};
  c.shadow_itlb = {.name = "shadow-itlb", .entries = c.rob_entries};
  return c;
}

std::string describe_config(const cpu::CoreConfig& c) {
  std::ostringstream oss;
  oss << "CPU (Table I)\n"
      << "  Issue               " << c.issue_width << "-way issue\n"
      << "  IQ                  " << c.iq_entries << "-entry Issue Queue\n"
      << "  Commit              up to " << c.commit_width
      << " micro-ops/cycle\n"
      << "  ROB                 " << c.rob_entries
      << "-entry Reorder Buffer\n"
      << "  iTLB                " << c.itlb.entries << "-entry\n"
      << "  dTLB                " << c.dtlb.entries << "-entry\n"
      << "  LDQ                 " << c.ldq_entries << "-entry\n"
      << "  STQ                 " << c.stq_entries << "-entry\n"
      << "Memory system (Table II)\n"
      << "  L1I-Cache           " << c.hierarchy.l1i.size_bytes / 1024
      << " KB, " << c.hierarchy.l1i.ways << "-way, "
      << c.hierarchy.l1i.line_bytes << "B line, "
      << c.hierarchy.l1i.hit_latency << " cycle hit\n"
      << "  L1D-Cache           " << c.hierarchy.l1d.size_bytes / 1024
      << " KB, " << c.hierarchy.l1d.ways << "-way, "
      << c.hierarchy.l1d.line_bytes << "B line, "
      << c.hierarchy.l1d.hit_latency << " cycle hit\n"
      << "  L2 Shared Cache     " << c.hierarchy.l2.size_bytes / 1024
      << " KB, " << c.hierarchy.l2.ways << "-way, "
      << c.hierarchy.l2.line_bytes << "B line, "
      << c.hierarchy.l2.hit_latency << " cycle hit\n"
      << "  L3 Shared Cache     " << c.hierarchy.l3.size_bytes / (1024 * 1024)
      << " MB, " << c.hierarchy.l3.ways << "-way, "
      << c.hierarchy.l3.line_bytes << "B line, "
      << c.hierarchy.l3.hit_latency << " cycle hit\n"
      << "  Memory              " << c.hierarchy.memory_latency
      << " cycles\n"
      << "SafeSpec\n"
      << "  Policy              " << shadow::to_string(c.policy) << "\n"
      << "  shadow d-cache      " << c.shadow_dcache.entries << " entries ("
      << shadow::to_string(c.shadow_dcache.full_policy) << ")\n"
      << "  shadow i-cache      " << c.shadow_icache.entries << " entries ("
      << shadow::to_string(c.shadow_icache.full_policy) << ")\n"
      << "  shadow dTLB         " << c.shadow_dtlb.entries << " entries ("
      << shadow::to_string(c.shadow_dtlb.full_policy) << ")\n"
      << "  shadow iTLB         " << c.shadow_itlb.entries << " entries ("
      << shadow::to_string(c.shadow_itlb.full_policy) << ")\n";
  return oss.str();
}

}  // namespace safespec::sim
