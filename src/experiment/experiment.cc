#include "experiment/experiment.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <mutex>
#include <thread>

#include "workloads/runner.h"

namespace safespec::experiment {

// ---- spec -------------------------------------------------------------------

ConfigVariant named_variant(
    const sim::MachineSpec& base, const std::string& policy_name,
    const std::function<void(cpu::CoreConfig&)>& mutate) {
  policy::named_policy(policy_name);  // throws with the registered list
  ConfigVariant v{policy_name, base.core};
  v.config.policy = policy_name;
  if (mutate) mutate(v.config);
  return v;
}

ConfigVariant policy_variant(
    shadow::CommitPolicy policy,
    const std::function<void(cpu::CoreConfig&)>& mutate) {
  return named_variant(sim::machine_preset("skylake"),
                       shadow::to_string(policy), mutate);
}

ExperimentSpec& ExperimentSpec::profiles(
    std::vector<workloads::WorkloadProfile> p) {
  profiles_ = std::move(p);
  return *this;
}

ExperimentSpec& ExperimentSpec::all_spec_profiles() {
  return profiles(workloads::spec2017_profiles());
}

ExperimentSpec& ExperimentSpec::profile_names(
    const std::vector<std::string>& names) {
  std::vector<workloads::WorkloadProfile> selected;
  selected.reserve(names.size());
  for (const auto& name : names) {
    selected.push_back(workloads::profile_by_name(name));
  }
  return profiles(std::move(selected));
}

ExperimentSpec& ExperimentSpec::base_machine(sim::MachineSpec machine) {
  base_ = std::move(machine);
  return *this;
}

ExperimentSpec& ExperimentSpec::variant(ConfigVariant v) {
  variants_.push_back(std::move(v));
  return *this;
}

ExperimentSpec& ExperimentSpec::policy(
    const std::string& name,
    const std::function<void(cpu::CoreConfig&)>& mutate) {
  return variant(named_variant(base_, name, mutate));
}

ExperimentSpec& ExperimentSpec::policy(
    shadow::CommitPolicy p,
    const std::function<void(cpu::CoreConfig&)>& mutate) {
  return policy(std::string(shadow::to_string(p)), mutate);
}

ExperimentSpec& ExperimentSpec::instrs(std::uint64_t n) {
  instrs_ = n;
  return *this;
}

std::vector<Cell> ExperimentSpec::expand() const {
  std::vector<Cell> cells;
  cells.reserve(profiles_.size() * variants_.size());
  for (std::size_t p = 0; p < profiles_.size(); ++p) {
    for (std::size_t v = 0; v < variants_.size(); ++v) {
      Cell cell;
      cell.index = cells.size();
      cell.profile_index = p;
      cell.variant_index = v;
      cell.profile = profiles_[p];
      cell.config = variants_[v].config;
      cell.instrs = instrs_;
      cell.sampling = base_.sampling;
      // The machine's trace axis rides on every cell's profile (profile
      // names stay the row labels; "@" round-trips each cell's own
      // synthetic image through the trace codec).
      if (!base_.trace.empty()) cell.profile.trace_file = base_.trace;
      cells.push_back(std::move(cell));
    }
  }
  return cells;
}

// ---- runner -----------------------------------------------------------------

sim::SimResult run_cell(const Cell& cell) {
  return workloads::run_workload(cell.profile, cell.config, cell.instrs,
                                 cell.sampling);
}

ParallelRunner::ParallelRunner(int threads) : threads_(threads) {
  if (threads_ <= 0) {
    threads_ = static_cast<int>(std::thread::hardware_concurrency());
    if (threads_ <= 0) threads_ = 1;
  }
}

void ParallelRunner::parallel_for(
    std::size_t n, const std::function<void(std::size_t)>& fn) const {
  const std::size_t workers =
      std::min<std::size_t>(static_cast<std::size_t>(threads_), n);
  if (workers <= 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }

  std::atomic<std::size_t> next{0};
  std::exception_ptr first_error;
  std::mutex error_mutex;
  auto worker = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1);
      if (i >= n) return;
      try {
        fn(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (std::size_t t = 0; t < workers; ++t) pool.emplace_back(worker);
  for (auto& thread : pool) thread.join();
  if (first_error) std::rethrow_exception(first_error);
}

std::vector<sim::SimResult> ParallelRunner::run_cells(
    const std::vector<Cell>& cells) const {
  std::vector<sim::SimResult> results(cells.size());
  parallel_for(cells.size(),
               [&](std::size_t i) { results[i] = run_cell(cells[i]); });
  return results;
}

SweepResult ParallelRunner::run(const ExperimentSpec& spec) const {
  std::vector<std::string> variant_names;
  variant_names.reserve(spec.variant_axis().size());
  for (const auto& v : spec.variant_axis()) variant_names.push_back(v.name);
  return SweepResult(spec.profile_axis().size(), spec.variant_axis().size(),
                     run_cells(spec.expand()), std::move(variant_names));
}

std::string SweepResult::stop_note(std::size_t profile) const {
  std::string note;
  for (std::size_t v = 0; v < num_variants_; ++v) {
    const auto stop = at(profile, v).stop;
    if (stop == cpu::StopReason::kHalted ||
        stop == cpu::StopReason::kMaxInstrs) {
      continue;  // converged
    }
    if (!note.empty()) note += ' ';
    note += v < variant_names_.size() ? variant_names_[v]
                                      : "v" + std::to_string(v);
    note += ':';
    note += cpu::to_string(stop);
  }
  return note;
}

// ---- result table -----------------------------------------------------------

namespace {

std::string format_value(double value, const char* format) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), format, value);
  return buf;
}

}  // namespace

ResultTable::ResultTable(std::string title, std::vector<std::string> columns)
    : title_(std::move(title)), columns_(std::move(columns)) {}

void ResultTable::add_row(const std::string& name,
                          const std::vector<double>& values,
                          const char* format) {
  Row row;
  row.name = name;
  for (double v : values) row.cells.push_back({format_value(v, format), v});
  rows_.push_back(std::move(row));
}

void ResultTable::add_partial_row(
    const std::string& name, const std::vector<std::optional<double>>& values,
    const char* format) {
  Row row;
  row.name = name;
  for (const auto& v : values) {
    if (v) {
      row.cells.push_back({format_value(*v, format), v});
    } else {
      row.cells.push_back({std::string(12, ' '), std::nullopt});
    }
  }
  rows_.push_back(std::move(row));
}

void ResultTable::annotate_last_row(const std::string& note) {
  if (note.empty() || rows_.empty()) return;
  rows_.back().note = note;
}

bool ResultTable::any_note() const {
  for (const auto& row : rows_) {
    if (!row.note.empty()) return true;
  }
  return false;
}

void ResultTable::emit(RowSink& sink) const {
  sink.begin_table(title_, columns_, any_note());
  for (const auto& row : rows_) {
    TableRow out;
    out.name = row.name;
    out.texts.reserve(row.cells.size());
    out.values.reserve(row.cells.size());
    for (const auto& cell : row.cells) {
      out.texts.push_back(cell.text);
      out.values.push_back(cell.value);
    }
    out.note = row.note;
    sink.row(out);
  }
  sink.end_table();
}

void ResultTable::print(std::FILE* out) const {
  TextTableSink sink(out);
  emit(sink);
}

void ResultTable::append_csv(std::FILE* out) const {
  CsvSink sink(out);
  emit(sink);
}

void ResultTable::append_json(std::vector<std::string>& items) const {
  JsonItemsSink sink(items);
  emit(sink);
}

// ---- CLI --------------------------------------------------------------------
// Flag parsing moved to common/cli.{h,cc}; what remains here is the
// experiment-specific half: resolving the machine and emitting tables.

sim::MachineSpec resolve_machine(const BenchOptions& options) {
  try {
    sim::MachineSpec spec =
        options.config_path.empty()
            ? sim::machine_preset("skylake")
            : sim::MachineSpec::from_json_file(options.config_path);
    for (const auto& kv : options.overrides) spec.set(kv);
    spec.validate();
    if (!spec.regions.empty() || !spec.pokes.empty()) {
      // Workload sweeps generate their own address space per cell; only
      // MachineBuilder-driven runs honour a spec's memory map.
      std::fprintf(stderr,
                   "note: memory_map/pokes in the machine config are "
                   "ignored by workload sweeps\n");
    }
    return spec;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bad machine configuration: %s\n", e.what());
    std::exit(2);
  }
}

void emit_tables(const std::vector<const ResultTable*>& tables,
                 const BenchOptions& options) {
  for (const ResultTable* table : tables) table->print(stdout);
  write_files(tables, options);
}

void write_files(const std::vector<const ResultTable*>& tables,
                 const BenchOptions& options) {
  if (!options.csv_path.empty()) {
    std::FILE* out = std::fopen(options.csv_path.c_str(), "w");
    if (!out) {
      std::fprintf(stderr, "cannot open %s for writing\n",
                   options.csv_path.c_str());
    } else {
      for (const ResultTable* table : tables) table->append_csv(out);
      std::fclose(out);
      std::fprintf(stderr, "wrote CSV to %s\n", options.csv_path.c_str());
    }
  }
  if (!options.json_path.empty()) {
    std::FILE* out = std::fopen(options.json_path.c_str(), "w");
    if (!out) {
      std::fprintf(stderr, "cannot open %s for writing\n",
                   options.json_path.c_str());
    } else {
      std::vector<std::string> items;
      for (const ResultTable* table : tables) table->append_json(items);
      std::fprintf(out, "[\n");
      for (std::size_t i = 0; i < items.size(); ++i) {
        std::fprintf(out, "  %s%s\n", items[i].c_str(),
                     i + 1 < items.size() ? "," : "");
      }
      std::fprintf(out, "]\n");
      std::fclose(out);
      std::fprintf(stderr, "wrote JSON to %s\n", options.json_path.c_str());
    }
  }
}

}  // namespace safespec::experiment
