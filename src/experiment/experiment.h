// Declarative experiment engine: every figure/table bench is a sweep of
// workload profiles across named core-configuration variants. The bench
// declares the grid (ExperimentSpec), the engine expands it into
// independent cells, runs them on a thread pool (ParallelRunner — one
// Simulator per cell, nothing shared, results in stable cell order so
// output is bitwise identical regardless of thread count), and the bench
// renders rows through ResultTable (aligned text, CSV, JSON).
#pragma once

#include <cstdint>
#include <cstdio>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "common/cli.h"
#include "cpu/core.h"
#include "experiment/row_sink.h"
#include "safespec/shadow_structures.h"
#include "sim/machine.h"
#include "sim/sim_config.h"
#include "sim/simulator.h"
#include "workloads/workload.h"

namespace safespec::experiment {

/// Committed-instruction budget per cell (formerly bench_util.h). Large
/// enough that the occupancy/miss-rate distributions stabilise, small
/// enough that the whole 22-benchmark sweep stays interactive.
inline constexpr std::uint64_t kInstrsPerRun = 60'000;

// ---- spec -------------------------------------------------------------------

/// One point on the configuration axis: a display name plus the fully
/// built CoreConfig it stands for.
struct ConfigVariant {
  std::string name;
  cpu::CoreConfig config;
};

/// `base` with the named protection policy selected, under the policy
/// name as display name; `mutate` applies any further CoreConfig edits.
/// Throws std::out_of_range (listing the registered policies) on an
/// unknown name.
ConfigVariant named_variant(
    const sim::MachineSpec& base, const std::string& policy_name,
    const std::function<void(cpu::CoreConfig&)>& mutate = nullptr);

/// Legacy shorthand: the "skylake" preset under the enum's canonical
/// short name ("baseline" / "WFB" / "WFC").
ConfigVariant policy_variant(
    shadow::CommitPolicy policy,
    const std::function<void(cpu::CoreConfig&)>& mutate = nullptr);

/// A fully-resolved grid cell: one workload under one variant. Each
/// cell is deterministic in isolation — workload generation seeds from
/// `profile.seed` — so results are independent of which thread runs
/// which cell.
struct Cell {
  std::size_t index = 0;        ///< position in expansion order
  std::size_t profile_index = 0;
  std::size_t variant_index = 0;
  workloads::WorkloadProfile profile;
  cpu::CoreConfig config;
  std::uint64_t instrs = kInstrsPerRun;
  /// Sampled-simulation schedule, copied from the spec's base machine
  /// (disabled by default — cells then run fully detailed, bit-identical
  /// to the pre-sampling engine).
  sim::SamplingSpec sampling;
};

/// Declarative sweep grid: profiles x variants. Expansion is
/// profile-major (all variants of one benchmark adjacent), the row order
/// every figure prints.
class ExperimentSpec {
 public:
  ExperimentSpec& profiles(std::vector<workloads::WorkloadProfile> p);
  /// All 22 SPEC2017-like profiles in paper order.
  ExperimentSpec& all_spec_profiles();
  /// Subset by name (throws std::out_of_range on an unknown name).
  ExperimentSpec& profile_names(const std::vector<std::string>& names);

  /// Base machine every subsequent policy() variant derives from
  /// (default: the "skylake" preset). Benches pass resolve_machine(opts)
  /// here so --config / --set reshape the whole sweep.
  ExperimentSpec& base_machine(sim::MachineSpec machine);
  const sim::MachineSpec& machine() const { return base_; }

  ExperimentSpec& variant(ConfigVariant v);
  /// Shorthand for variant(named_variant(machine(), name, mutate)):
  /// one point on the configuration axis, selected by registry name.
  ExperimentSpec& policy(
      const std::string& name,
      const std::function<void(cpu::CoreConfig&)>& mutate = nullptr);
  /// Legacy enum shorthand (same variant names as the string form).
  ExperimentSpec& policy(
      shadow::CommitPolicy p,
      const std::function<void(cpu::CoreConfig&)>& mutate = nullptr);

  ExperimentSpec& instrs(std::uint64_t n);

  const std::vector<workloads::WorkloadProfile>& profile_axis() const {
    return profiles_;
  }
  const std::vector<ConfigVariant>& variant_axis() const { return variants_; }
  std::uint64_t instrs_per_cell() const { return instrs_; }

  /// Expands the grid into cells in stable order: profile-major, variant
  /// within profile, `index` dense from 0.
  std::vector<Cell> expand() const;

 private:
  sim::MachineSpec base_ = sim::machine_preset("skylake");
  std::vector<workloads::WorkloadProfile> profiles_;
  std::vector<ConfigVariant> variants_;
  std::uint64_t instrs_ = kInstrsPerRun;
};

// ---- runner -----------------------------------------------------------------

/// Results of a grid sweep, indexed by the spec's two axes.
class SweepResult {
 public:
  SweepResult(std::size_t num_profiles, std::size_t num_variants,
              std::vector<sim::SimResult> results,
              std::vector<std::string> variant_names = {})
      : num_profiles_(num_profiles),
        num_variants_(num_variants),
        results_(std::move(results)),
        variant_names_(std::move(variant_names)) {}

  const sim::SimResult& at(std::size_t profile, std::size_t variant) const {
    return results_[profile * num_variants_ + variant];
  }
  const std::vector<sim::SimResult>& flat() const { return results_; }
  std::size_t num_profiles() const { return num_profiles_; }
  std::size_t num_variants() const { return num_variants_; }

  /// "" when every cell of the profile's row converged (halted or
  /// reached its instruction budget); otherwise space-joined
  /// "variant:stop-reason" fragments for the cells that did not — row
  /// annotations making non-converged cells visible in every sink.
  std::string stop_note(std::size_t profile) const;

 private:
  std::size_t num_profiles_;
  std::size_t num_variants_;
  std::vector<sim::SimResult> results_;
  std::vector<std::string> variant_names_;
};

/// Thread-pool sweep executor. Each cell constructs its own Simulator
/// (own Program / MainMemory / PageTable — cells share nothing), so runs
/// are embarrassingly parallel; results land in a pre-sized vector at the
/// cell's index, making output order (and content — generation is seeded
/// per cell) independent of thread count.
class ParallelRunner {
 public:
  /// threads == 0 picks std::thread::hardware_concurrency().
  explicit ParallelRunner(int threads = 0);

  int threads() const { return threads_; }

  /// Runs every cell of the spec; results in expansion order.
  SweepResult run(const ExperimentSpec& spec) const;

  /// Runs explicit cells (spec-free callers); results in input order.
  std::vector<sim::SimResult> run_cells(const std::vector<Cell>& cells) const;

  /// Generic stable-order parallel map: invokes fn(i) for i in [0, n)
  /// across the pool. Used by benches whose work items are not simulator
  /// cells (attack suites, model sweeps).
  void parallel_for(std::size_t n,
                    const std::function<void(std::size_t)>& fn) const;

 private:
  int threads_;
};

/// Runs one cell synchronously (the unit of work a pool thread executes).
sim::SimResult run_cell(const Cell& cell);

// ---- result table -----------------------------------------------------------

/// Row/column sink for one figure or table. Renders the paper's aligned
/// text layout (12-wide name column, 12-wide right-aligned cells — the
/// format every bench printed by hand before) and can re-emit the same
/// rows as CSV or JSON for the bench trajectory.
class ResultTable {
 public:
  ResultTable(std::string title, std::vector<std::string> columns);

  /// Appends one row; each value is formatted with `format` (a printf
  /// conversion for one double, default "%12.4f").
  void add_row(const std::string& name, const std::vector<double>& values,
               const char* format = "%12.4f");
  /// Appends a row with some cells blank (e.g. Fig 11's GeoMean row shows
  /// only the last column). std::nullopt renders as an empty cell.
  void add_partial_row(const std::string& name,
                       const std::vector<std::optional<double>>& values,
                       const char* format = "%12.4f");

  /// Attaches a note to the most recently added row (no-op on "").
  /// Benches feed SweepResult::stop_note() here so a cell that hit the
  /// cycle budget or faulted is flagged in text, CSV and JSON output.
  void annotate_last_row(const std::string& note);

  const std::string& title() const { return title_; }
  std::size_t num_rows() const { return rows_.size(); }

  /// Streams the table through any RowSink (begin_table, rows,
  /// end_table) — the one emission path all the sinks below share.
  void emit(RowSink& sink) const;

  /// Aligned text, exactly the layout bench_util.h used to print.
  /// (emit through a TextTableSink.)
  void print(std::FILE* out = stdout) const;
  /// CSV section: `table,benchmark,<columns...>` header then one line per
  /// row (full-precision values, blanks for missing cells). (CsvSink.)
  void append_csv(std::FILE* out) const;
  /// JSON objects {"table":..., "row":..., "<column>": value, ...}
  /// appended to `items` (the CLI helper wraps them in one array).
  /// (JsonItemsSink.)
  void append_json(std::vector<std::string>& items) const;

 private:
  struct Cell {
    std::string text;             ///< formatted, right-aligned when printed
    std::optional<double> value;  ///< raw value for CSV/JSON
  };
  struct Row {
    std::string name;
    std::vector<Cell> cells;
    std::string note;  ///< e.g. "WFC:max-cycles"; "" on converged rows
  };
  bool any_note() const;

  std::string title_;
  std::vector<std::string> columns_;
  std::vector<Row> rows_;
};

// ---- CLI --------------------------------------------------------------------

/// The shared flag family lives in common/cli.h now (every tool sits on
/// cli::FlagSet); these aliases keep bench call sites unchanged.
using BenchOptions = cli::BenchOptions;

/// Parses the shared flags; prints usage and exits on --help or an
/// unknown --flag. Positional arguments pass through untouched.
inline BenchOptions parse_bench_args(int argc, char** argv,
                                     const char* extra_usage = nullptr) {
  return cli::parse_bench_args(argc, argv, extra_usage, kInstrsPerRun);
}

/// The machine the options describe: --config's JSON file (default: the
/// "skylake" preset) with every --set override applied in order, then
/// validated. Prints the problem and exits(2) on bad input — benches
/// call this once, right after parse_bench_args.
sim::MachineSpec resolve_machine(const BenchOptions& options);

/// Writes every table once to each requested sink: aligned text to
/// stdout, plus CSV/JSON files when the options ask for them.
void emit_tables(const std::vector<const ResultTable*>& tables,
                 const BenchOptions& options);

/// File sinks only (benches that interleave tables with prose print the
/// text themselves and call this at the end).
void write_files(const std::vector<const ResultTable*>& tables,
                 const BenchOptions& options);

}  // namespace safespec::experiment
