// Row sinks: where experiment tables and campaign journals put rows.
//
// ResultTable used to own three hard-coded emitters (aligned text, CSV,
// a JSON item list). Those are now RowSink implementations fed by
// ResultTable::emit, plus a fourth — JsonlSink — that appends one JSON
// object per line and flushes after every row. JSONL is the campaign
// layer's checkpoint format: a shard process that is SIGKILLed mid-sweep
// loses at most the line it was writing, and every fully written line is
// a durable, independently parseable record a resumed process (or the
// merge step) picks up as-is.
//
// The Text/CSV/JSON sinks reproduce the historical emitters byte for
// byte — the golden CSV tests pin this.
#pragma once

#include <cstdint>
#include <cstdio>
#include <optional>
#include <string>
#include <vector>

namespace safespec::experiment {

/// Escapes text for embedding inside a JSON string literal. Quotes and
/// backslashes are escaped (as the historical JSON emitter did), plus
/// \n/\t/\r so multi-line payloads (e.g. joined violation lists) survive
/// the round trip through common/json's parser; other control bytes are
/// replaced with '?' (the parser has no \u escape).
std::string json_escape(const std::string& text);

/// One table row: the row label, a preformatted text per cell (already
/// padded/formatted by the table's per-row printf format), the raw value
/// per cell (nullopt = blank cell), and the stop-note annotation.
struct TableRow {
  std::string name;
  std::vector<std::string> texts;
  std::vector<std::optional<double>> values;
  std::string note;  ///< e.g. "WFC:max-cycles"; "" on converged rows
};

/// Receives a table a row at a time. begin_table always precedes the
/// table's rows (and is called even for an empty table, so header-only
/// output renders); any_note says whether any row of the table carries a
/// stop note, which column-oriented sinks need before the first row.
class RowSink {
 public:
  virtual ~RowSink() = default;
  virtual void begin_table(const std::string& title,
                           const std::vector<std::string>& columns,
                           bool any_note) = 0;
  virtual void row(const TableRow& row) = 0;
  virtual void end_table() {}
};

/// The paper's aligned text layout (12-wide name column, 12-wide
/// right-aligned cells), exactly what ResultTable::print always wrote.
class TextTableSink : public RowSink {
 public:
  explicit TextTableSink(std::FILE* out) : out_(out) {}
  void begin_table(const std::string& title,
                   const std::vector<std::string>& columns,
                   bool any_note) override;
  void row(const TableRow& row) override;

 private:
  std::FILE* out_;
};

/// CSV section per table: `table,benchmark,<columns...>[,stop]` header
/// then one full-precision line per row.
class CsvSink : public RowSink {
 public:
  explicit CsvSink(std::FILE* out) : out_(out) {}
  void begin_table(const std::string& title,
                   const std::vector<std::string>& columns,
                   bool any_note) override;
  void row(const TableRow& row) override;

 private:
  std::FILE* out_;
  std::string title_;
  bool notes_ = false;
};

/// JSON objects {"table":..., "row":..., "<column>": value, ...}
/// appended to an item list (the CLI helper wraps them in one array).
class JsonItemsSink : public RowSink {
 public:
  explicit JsonItemsSink(std::vector<std::string>& items) : items_(&items) {}
  void begin_table(const std::string& title,
                   const std::vector<std::string>& columns,
                   bool any_note) override;
  void row(const TableRow& row) override;

 private:
  std::vector<std::string>* items_;
  std::string title_;
  std::vector<std::string> columns_;
};

/// Incrementally builds one JSON object for a JSONL line. Fields keep
/// insertion order; number rendering matches the JSON sinks (%.17g,
/// non-finite -> null) so the same value always serializes identically.
class JsonlObject {
 public:
  JsonlObject& u64(const char* key, std::uint64_t value);
  JsonlObject& number(const char* key, double value);
  JsonlObject& text(const char* key, const std::string& value);
  JsonlObject& boolean(const char* key, bool value);
  JsonlObject& strings(const char* key, const std::vector<std::string>& value);

  /// The closed "{...}" object (no trailing newline).
  std::string str() const { return body_ + "}"; }

 private:
  void begin_field(const char* key);
  std::string body_ = "{";
};

/// Append-mode JSONL. As a RowSink it writes table rows in the same
/// object shape as JsonItemsSink, one per line; line() appends an
/// arbitrary pre-built object (what campaign shard journals write).
/// Every line is fflushed immediately by default — the checkpoint
/// durability the campaign resume protocol depends on.
class JsonlSink : public RowSink {
 public:
  explicit JsonlSink(std::FILE* out, bool flush_each_line = true)
      : out_(out), flush_(flush_each_line) {}

  void begin_table(const std::string& title,
                   const std::vector<std::string>& columns,
                   bool any_note) override;
  void row(const TableRow& row) override;

  /// Writes one complete object line ("{...}" + newline) and flushes.
  void line(const std::string& object_text);

 private:
  std::FILE* out_;
  bool flush_;
  std::string title_;
  std::vector<std::string> columns_;
};

}  // namespace safespec::experiment
