#include "experiment/row_sink.h"

#include <cmath>

namespace safespec::experiment {

std::string json_escape(const std::string& text) {
  std::string out;
  for (char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        out += static_cast<unsigned char>(c) < 0x20 ? '?' : c;
    }
  }
  return out;
}

namespace {

std::string csv_escape(const std::string& field) {
  if (field.find_first_of(",\"\n") == std::string::npos) return field;
  std::string quoted = "\"";
  for (char c : field) {
    if (c == '"') quoted += '"';
    quoted += c;
  }
  quoted += '"';
  return quoted;
}

std::string full_precision(double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  return buf;
}

/// The {"table":...,"row":...,cols...} object both JSON sinks emit.
std::string table_row_object(const std::string& title,
                             const std::vector<std::string>& columns,
                             const TableRow& row) {
  std::string obj =
      "{\"table\":\"" + json_escape(title) + "\",\"row\":\"" +
      json_escape(row.name) + "\"";
  for (std::size_t c = 0; c < row.values.size(); ++c) {
    const std::string key =
        c < columns.size() ? columns[c] : "col" + std::to_string(c);
    obj += ",\"" + json_escape(key) + "\":";
    // nan/inf are not valid JSON tokens — emit null instead.
    if (row.values[c] && std::isfinite(*row.values[c])) {
      obj += full_precision(*row.values[c]);
    } else {
      obj += "null";
    }
  }
  if (!row.note.empty()) {
    obj += ",\"stop\":\"" + json_escape(row.note) + "\"";
  }
  obj += "}";
  return obj;
}

}  // namespace

// ---- TextTableSink ----------------------------------------------------------

void TextTableSink::begin_table(const std::string& title,
                                const std::vector<std::string>& columns,
                                bool /*any_note*/) {
  std::fprintf(out_, "\n%s\n", title.c_str());
  std::fprintf(out_, "%-12s", "benchmark");
  for (const auto& c : columns) std::fprintf(out_, " %12s", c.c_str());
  std::fprintf(out_, "\n");
  for (std::size_t i = 0; i < 12 + columns.size() * 13; ++i)
    std::fprintf(out_, "-");
  std::fprintf(out_, "\n");
}

void TextTableSink::row(const TableRow& row) {
  std::fprintf(out_, "%-12s", row.name.c_str());
  for (const auto& text : row.texts) std::fprintf(out_, " %s", text.c_str());
  // Converged rows print exactly as they always did; a non-converged
  // cell (cycle budget / fault) is flagged at the end of its row.
  if (!row.note.empty()) std::fprintf(out_, "  !%s", row.note.c_str());
  std::fprintf(out_, "\n");
}

// ---- CsvSink ----------------------------------------------------------------

void CsvSink::begin_table(const std::string& title,
                          const std::vector<std::string>& columns,
                          bool any_note) {
  title_ = title;
  notes_ = any_note;
  std::fprintf(out_, "table,benchmark");
  for (const auto& c : columns)
    std::fprintf(out_, ",%s", csv_escape(c).c_str());
  if (notes_) std::fprintf(out_, ",stop");
  std::fprintf(out_, "\n");
}

void CsvSink::row(const TableRow& row) {
  std::fprintf(out_, "%s,%s", csv_escape(title_).c_str(),
               csv_escape(row.name).c_str());
  for (const auto& value : row.values) {
    if (value) {
      std::fprintf(out_, ",%.17g", *value);
    } else {
      std::fprintf(out_, ",");
    }
  }
  if (notes_) std::fprintf(out_, ",%s", csv_escape(row.note).c_str());
  std::fprintf(out_, "\n");
}

// ---- JsonItemsSink ----------------------------------------------------------

void JsonItemsSink::begin_table(const std::string& title,
                                const std::vector<std::string>& columns,
                                bool /*any_note*/) {
  title_ = title;
  columns_ = columns;
}

void JsonItemsSink::row(const TableRow& row) {
  items_->push_back(table_row_object(title_, columns_, row));
}

// ---- JsonlObject ------------------------------------------------------------

void JsonlObject::begin_field(const char* key) {
  if (body_.size() > 1) body_ += ',';
  body_ += '"';
  body_ += json_escape(key);
  body_ += "\":";
}

JsonlObject& JsonlObject::u64(const char* key, std::uint64_t value) {
  begin_field(key);
  body_ += std::to_string(value);
  return *this;
}

JsonlObject& JsonlObject::number(const char* key, double value) {
  begin_field(key);
  body_ += std::isfinite(value) ? full_precision(value) : "null";
  return *this;
}

JsonlObject& JsonlObject::text(const char* key, const std::string& value) {
  begin_field(key);
  body_ += '"';
  body_ += json_escape(value);
  body_ += '"';
  return *this;
}

JsonlObject& JsonlObject::boolean(const char* key, bool value) {
  begin_field(key);
  body_ += value ? "true" : "false";
  return *this;
}

JsonlObject& JsonlObject::strings(const char* key,
                                  const std::vector<std::string>& value) {
  begin_field(key);
  body_ += '[';
  for (std::size_t i = 0; i < value.size(); ++i) {
    if (i > 0) body_ += ',';
    body_ += '"';
    body_ += json_escape(value[i]);
    body_ += '"';
  }
  body_ += ']';
  return *this;
}

// ---- JsonlSink --------------------------------------------------------------

void JsonlSink::begin_table(const std::string& title,
                            const std::vector<std::string>& columns,
                            bool /*any_note*/) {
  title_ = title;
  columns_ = columns;
}

void JsonlSink::row(const TableRow& row) {
  line(table_row_object(title_, columns_, row));
}

void JsonlSink::line(const std::string& object_text) {
  std::fprintf(out_, "%s\n", object_text.c_str());
  if (flush_) std::fflush(out_);
}

}  // namespace safespec::experiment
