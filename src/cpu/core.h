// Cycle-level out-of-order core with optional SafeSpec protection.
//
// The pipeline models the structures from Table I (6-wide issue/commit,
// 96-entry IQ, 224-entry ROB, 72/56-entry LDQ/STQ, 64-entry TLBs) over the
// Table II memory hierarchy, with an execute-driven micro-ISA so that
// speculative data flow — the substrate of every speculation attack — is
// real. Three protection modes share one datapath:
//
//   * Baseline:  speculative memory accesses fill caches/TLBs directly
//                (classic insecure behaviour; the paper's baseline).
//   * WFB/WFC:   speculative fills land in shadow structures and are only
//                promoted to the primary hierarchy once the producing
//                instruction is past its last unresolved older branch
//                (WFB) or commits (WFC). Squashes annul shadow state in
//                place (§III, Fig 3).
//
// Timing-model simplifications (documented per DESIGN.md):
//   * Memory side effects apply at issue time; there are therefore no
//     delayed responses needing the §III "filter" — squash of an issued
//     load simply releases its shadow reference.
//   * Store data is written (and the line installed) at commit — the TSO
//     behaviour the paper relies on to leave stores unshadowed (§IV-B).
//   * The shadow lookup costs the same as an L1 hit (4 cycles), matching
//     the paper's conservative assumption.
#pragma once

#include <array>
#include <memory>
#include <optional>
#include <vector>

#include "common/ring_buffer.h"
#include "common/stats.h"
#include "common/types.h"
#include "cpu/dyn_inst.h"
#include "isa/program.h"
#include "memory/cache_hierarchy.h"
#include "memory/main_memory.h"
#include "memory/page_table.h"
#include "memory/tlb.h"
#include "predictor/predictor_unit.h"
#include "safespec/policy.h"
#include "safespec/shadow_structures.h"

namespace safespec::cpu {

/// Deliberate defect injection for mutation-testing the differential
/// fuzzing harness (src/fuzz/): each flag corrupts exactly one thing a
/// harness invariant must catch, so the harness's detection power is
/// itself testable. All off in normal operation; never serialized into
/// MachineSpec documents.
struct MutationHooks {
  /// Squashes leak their shadow references instead of annulling them —
  /// caught by the empty-shadows-after-drain invariant.
  bool skip_squash_release = false;
  /// XORed into every committed register writeback — caught by the
  /// oracle-equivalence invariant (and invisible to the cross-policy
  /// comparison, since every policy corrupts identically: the reason the
  /// harness needs an architectural oracle at all).
  std::uint64_t commit_xor = 0;
};

/// Core pipeline configuration (Table I defaults).
struct CoreConfig {
  /// Machine-level: number of cores sharing the L2/L3. Each core gets
  /// this same per-core configuration (private L1s/TLBs/shadows). Lives
  /// on CoreConfig — not beside it — so every harness that carries one
  /// (experiment cells, the workload runner, fuzz cells, attack configs)
  /// inherits the axis without plumbing; MachineSpec serializes it as the
  /// top-level "cores" field and validates the range. The Core itself
  /// ignores it.
  int cores = 1;
  int fetch_width = 6;
  int issue_width = 6;
  int commit_width = 6;
  int iq_entries = 96;
  int rob_entries = 224;
  int ldq_entries = 72;
  int stq_entries = 56;
  int fetch_to_dispatch_delay = 5;  ///< front-end depth (mispredict penalty)
  /// Cycles between an instruction's completion (writeback) and its
  /// earliest retirement. Real retirement logic is pipelined; this gap is
  /// precisely the race window Meltdown exploits — dependent transmitting
  /// uops issue while the faulting load awaits retirement (P1, §II-B4).
  int commit_delay = 4;
  /// Decoded-instruction buffer (DIB) lines in fetch: a direct-mapped
  /// host-side cache of decoded-instruction lookups keyed by virtual
  /// 64-byte fetch line, so loop iterations stop re-walking the program
  /// map every cycle. Purely a simulator optimisation — it models no
  /// hardware and never changes a cycle count (proven by test). 0
  /// disables it; other values round up to a power of two. The default
  /// covers the largest synthetic code footprint (gcc, ~263 lines)
  /// without direct-map aliasing; a line is 136 host bytes, so this is
  /// ~140 KB per core.
  int dib_lines = 1024;

  Cycle alu_latency = 1;
  Cycle mul_latency = 3;
  Cycle div_latency = 20;
  Cycle shadow_hit_latency = 4;  ///< conservative: same as an L1 hit

  predictor::PredictorConfig predictor;
  memory::HierarchyConfig hierarchy;
  memory::TlbConfig itlb{.name = "iTLB", .entries = 64, .ways = 4};
  memory::TlbConfig dtlb{.name = "dTLB", .entries = 64, .ways = 4};

  // ---- SafeSpec --------------------------------------------------------
  /// Registry key of the protection policy ("baseline", "WFB", "WFC",
  /// "WFB-stall", or any policy::register_policy() addition). Resolved
  /// through policy::named_policy() when the core is built.
  std::string policy = "baseline";
  /// Worst-case ("Secure") sizing by default: LDQ-bound for the d-side,
  /// ROB-bound for the i-side (§V / §VII). Benchmarks shrink these to
  /// study 99.99%-sizing and TSAs.
  shadow::ShadowConfig shadow_dcache{.name = "shadow-dcache", .entries = 72};
  shadow::ShadowConfig shadow_icache{.name = "shadow-icache", .entries = 224};
  shadow::ShadowConfig shadow_dtlb{.name = "shadow-dtlb", .entries = 72};
  shadow::ShadowConfig shadow_itlb{.name = "shadow-itlb", .entries = 224};

  // ---- SHARP detector --------------------------------------------------
  /// Alarms within one epoch before the SHARP detector flags a detection
  /// (the exemplar's 2,000-alarms-per-epoch recommendation), and the
  /// epoch length in replacement stamps. Applied to every cache level by
  /// the policy's hierarchy tune(); inert unless the policy selects a
  /// CacheProtection (SHARP / detect-only).
  std::uint64_t sharp_alarm_threshold = 2000;
  std::uint64_t sharp_alarm_epoch = 1'000'000'000;

  /// Mutation-testing defect injection (see MutationHooks).
  MutationHooks mutation;
};

/// Why a run ended.
enum class StopReason : std::uint8_t {
  kHalted,        ///< committed a kHalt
  kFaultNoHandler,///< unhandled fault committed
  kMaxCycles,     ///< hit the cycle budget
  kMaxInstrs,     ///< hit the instruction budget
};

/// Short stable label ("halted", "fault", "max-cycles", "max-instrs") —
/// result sinks use it to flag non-converged cells.
const char* to_string(StopReason reason);

/// Aggregate statistics of one run.
struct CoreStats {
  Cycle cycles = 0;
  std::uint64_t committed_instrs = 0;
  std::uint64_t committed_loads = 0;
  std::uint64_t committed_stores = 0;
  std::uint64_t committed_branches = 0;
  std::uint64_t fetched_instrs = 0;
  std::uint64_t squashed_instrs = 0;
  std::uint64_t squashes = 0;
  std::uint64_t mispredicts = 0;
  std::uint64_t faults = 0;
  std::uint64_t shadow_stall_cycles = 0;  ///< issue stalls from kStall

  // Per-instruction fetch accounting (Figs 14/15): each fetched
  // instruction is served by exactly one of L1I / shadow i-cache / below.
  std::uint64_t fetch_accesses = 0;
  std::uint64_t fetch_l1i_hits = 0;
  std::uint64_t fetch_shadow_hits = 0;
  std::uint64_t fetch_misses = 0;  ///< went to L2/L3/memory

  // Host-side decoded-instruction buffer effectiveness (no timing role).
  std::uint64_t dib_hits = 0;
  std::uint64_t dib_fills = 0;

  double ipc() const {
    return cycles == 0 ? 0.0
                       : static_cast<double>(committed_instrs) / cycles;
  }
};

/// The core. Owns all microarchitectural state; borrows the program,
/// architectural memory and page table (which the attack harnesses also
/// manipulate directly, playing the role of the OS / other processes).
class Core {
 public:
  /// `shared_levels == nullptr` gives the core a private L2/L3 (the
  /// historical single-core shape); otherwise its hierarchy attaches to
  /// the external shared levels and stamps requests with `core_id`.
  Core(const CoreConfig& config, const isa::Program* program,
       memory::MainMemory* mem, memory::PageTable* page_table,
       memory::SharedLevels* shared_levels = nullptr, int core_id = 0);

  /// Runs until halt/fault/budget. Returns the stop reason.
  StopReason run(Cycle max_cycles = 10'000'000,
                 std::uint64_t max_instrs = ~0ULL);

  /// Single-steps one cycle (tests drive this directly).
  void step();

  bool halted() const { return halted_; }
  Cycle now() const { return cycle_; }
  int core_id() const { return core_id_; }

  /// Why the last run() ended. Set at the halt/fault commit sites, so it
  /// is accurate for any halted() core even when driven by step() — the
  /// multi-core scheduler relies on that; budget stops are reported by
  /// whichever loop enforced the budget.
  StopReason stop_reason() const { return stop_reason_; }

  /// True when the core can make no further progress by stepping:
  /// halted, or committed control flow reached a pc with no instruction
  /// (the front end is stalled with an empty pipeline and can never
  /// refill). Mirrors the termination conditions of run() for external
  /// cycle-by-cycle schedulers.
  bool finished() const {
    return halted_ || (fetch_stalled_ && rob_.empty() && fetch_queue_.empty());
  }

  /// Architectural register read (post-run inspection by harnesses).
  std::uint64_t reg(RegIndex r) const { return regs_[r]; }
  void set_reg(RegIndex r, std::uint64_t v) {
    if (r != kZeroReg) regs_[r] = v;
  }

  memory::PrivLevel priv_level() const { return priv_; }
  void set_priv_level(memory::PrivLevel p) { priv_ = p; }

  const CoreStats& stats() const { return stats_; }
  CoreStats& stats() { return stats_; }

  // ---- structures exposed for attacks / tests / benches ----------------
  memory::CacheHierarchy& hierarchy() { return hierarchy_; }
  const memory::CacheHierarchy& hierarchy() const { return hierarchy_; }
  memory::Tlb& itlb() { return itlb_; }
  memory::Tlb& dtlb() { return dtlb_; }
  predictor::PredictorUnit& predictor() { return predictor_; }
  shadow::ShadowCache& shadow_dcache() { return shadow_dcache_; }
  shadow::ShadowCache& shadow_icache() { return shadow_icache_; }
  shadow::ShadowTlb& shadow_dtlb() { return shadow_dtlb_; }
  shadow::ShadowTlb& shadow_itlb() { return shadow_itlb_; }
  const shadow::ShadowCache& shadow_dcache() const { return shadow_dcache_; }
  const shadow::ShadowCache& shadow_icache() const { return shadow_icache_; }
  const shadow::ShadowTlb& shadow_dtlb() const { return shadow_dtlb_; }
  const shadow::ShadowTlb& shadow_itlb() const { return shadow_itlb_; }

  const CoreConfig& config() const { return config_; }
  const policy::ProtectionPolicy& protection_policy() const {
    return *policy_;
  }

  /// Restarts control flow at `pc` with empty pipeline (between attack
  /// phases). Microarchitectural state (caches, predictors, shadows) is
  /// deliberately preserved — that persistence is what attacks exploit.
  void restart_at(Addr pc);

  /// The next architecturally-correct pc: the oldest in-flight
  /// instruction's pc (in-order commit means everything older has
  /// committed, so the ROB head is always on the committed path), the
  /// oldest fetched-but-undispatched instruction's pc when the ROB is
  /// empty, or the fetch pc when the whole pipeline is. At a kMaxInstrs
  /// stop, (reg state, next_commit_pc) is therefore exactly the
  /// committed architectural state — the hand-off point sampled
  /// simulation resumes the functional engine from.
  Addr next_commit_pc() const;

  /// Checkpoint restore (sampled simulation): installs the committed
  /// register file and restarts control flow at `pc`. Equivalent to 32x
  /// set_reg + restart_at — microarchitectural warming state survives,
  /// exactly like a phase restart.
  void restore_arch(const std::array<std::uint64_t, kNumArchRegs>& regs,
                    Addr pc);

  /// Drops every decoded-instruction-buffer line. Call after mutating
  /// the program text under a live core (the DIB caches Instruction
  /// pointers into it, like the functional engine's translation cache
  /// caches page-table entries).
  void invalidate_dib();

 private:
  struct FetchedInst {
    Addr pc = 0;
    isa::Instruction inst;
    bool predicted_taken = false;
    Addr predicted_next = 0;
    Cycle ready_at = 0;
    int shadow_iline = DynInst::kNoShadow;
    int shadow_itlb = DynInst::kNoShadow;
  };

  // ---- pipeline stages (called newest-to-oldest each cycle) -----------
  void stage_commit();
  void stage_complete();
  void stage_issue();
  void stage_dispatch();
  void stage_fetch();

  // ---- helpers ---------------------------------------------------------
  bool rob_full() const {
    return static_cast<int>(rob_.size()) >= config_.rob_entries;
  }
  /// O(1): ROB sequence numbers are contiguous (dispatch appends
  /// next_seq_++; squash/commit only pop the ends), so an in-flight seq's
  /// slot is seq - rob_.front().seq.
  DynInst* find_by_seq(SeqNum seq);
  void wake_dependents(const DynInst& producer);
  bool older_unresolved_branch_exists(SeqNum seq) const;

  /// Issues one instruction (computes result / performs memory access
  /// side effects). Returns false when the instruction cannot issue this
  /// cycle (memory ordering or shadow-stall) and must retry.
  bool execute(DynInst& di);

  /// Load/store address translation through dTLB (+walk). Returns the
  /// added latency; sets di.physical_addr / di.fault / shadow_dtlb.
  /// `stall` is set when the shadow dTLB is full under kStall.
  Cycle translate_data(DynInst& di, bool& stall);

  /// Page-walk timing: kWalkLevels accesses through the d-side hierarchy.
  /// Speculative walks under SafeSpec use non-filling accesses whose
  /// lines land in the shadow d-cache *unreferenced by any instruction* —
  /// conservatively freed on squash via the walker ref held by `di`.
  Cycle walk_page_table(DynInst* di, Addr vpage);

  /// The d-side cache access for an issued load. Returns latency.
  /// `stall` set when the shadow d-cache is full under kStall.
  Cycle access_dcache(DynInst& di, bool& stall);

  /// Promotes every shadow entry the instruction references into the
  /// primary structures (commit or WFB-resolution path).
  void promote_shadow(DynInst& di);
  /// Releases shadow references without promotion (squash path).
  void release_shadow(DynInst& di);

  /// DIB-accelerated program_->at(): identical results, one map walk
  /// per 64-byte line instead of per instruction.
  const isa::Instruction* fetch_decode(Addr pc);

  void resolve_branch(DynInst& di);
  void release_pending_fetch_refs();
  void squash_younger_than(SeqNum seq, Addr redirect_pc);
  void rebuild_rename_map();
  void raise_fault(DynInst& head);
  void commit_one(DynInst& head);

  /// Reads an operand at dispatch: value or producer seq. In-flight
  /// producers additionally record `consumer` on their wakeup list.
  void bind_operand(SeqNum consumer, RegIndex reg, std::uint64_t& value,
                    bool& ready, SeqNum& producer);

  bool protection_on() const { return protection_on_; }

  /// Removes `seq` from a sorted seq vector (no-op when absent).
  static void erase_seq(std::vector<SeqNum>& seqs, SeqNum seq);

  // ---- configuration / substrate ---------------------------------------
  CoreConfig config_;
  const policy::ProtectionPolicy* policy_;  ///< registry singleton
  // Policy decision points cached out of the virtual calls — consulted
  // several times per simulated cycle, fixed for the core's lifetime.
  bool protection_on_ = false;
  bool promote_at_resolution_ = false;
  bool annul_on_squash_ = true;
  const isa::Program* program_;
  memory::MainMemory* mem_;
  memory::PageTable* page_table_;
  int core_id_ = 0;

  // ---- microarchitectural structures ------------------------------------
  memory::CacheHierarchy hierarchy_;
  memory::Tlb itlb_;
  memory::Tlb dtlb_;
  predictor::PredictorUnit predictor_;
  shadow::ShadowCache shadow_dcache_;
  shadow::ShadowCache shadow_icache_;
  shadow::ShadowTlb shadow_dtlb_;
  shadow::ShadowTlb shadow_itlb_;

  // ---- architectural state ----------------------------------------------
  std::uint64_t regs_[kNumArchRegs] = {};
  memory::PrivLevel priv_ = memory::PrivLevel::kUser;

  // ---- pipeline state -----------------------------------------------------
  Cycle cycle_ = 0;
  SeqNum next_seq_ = 1;
  // Pre-sized rings: the ROB and fetch buffer have hard architectural
  // bounds, so their storage is one contiguous slab each (the per-cycle
  // walks below iterate these).
  RingBuffer<DynInst> rob_;
  RingBuffer<FetchedInst> fetch_queue_;
  /// Seqs of unresolved kBranch/kBranchIndirect/kRet entries, ascending
  /// (dispatch appends monotonically; front() is the WFB frontier).
  std::vector<SeqNum> unresolved_branches_;
  /// Seqs of kWaiting (dispatched, not yet issued) entries, ascending —
  /// stage_issue walks these instead of the whole ROB. Its size is the
  /// issue-queue occupancy.
  std::vector<SeqNum> waiting_;
  /// Earliest done_cycle over kIssued entries (lower bound; may be stale
  /// low after a squash). stage_complete is a no-op until then.
  Cycle next_complete_cycle_ = kNeverCycle;
  /// WFB sweep hint: every live entry with seq below this is already
  /// shadow_promoted, so the promotion sweep starts here.
  SeqNum promoted_below_seq_ = 0;

  static constexpr Cycle kNeverCycle = ~Cycle{0};

  // Rename: arch reg -> producing seq (0 = value lives in regs_).
  SeqNum rename_[kNumArchRegs] = {};

  /// One decoded-instruction-buffer line: the program-map lookup result
  /// for every instruction slot of one 64-byte virtual line. The tag
  /// sentinel ~0 can never match a real line index.
  struct DibLine {
    Addr tag = ~Addr{0};
    std::array<const isa::Instruction*, kLineSize / isa::kInstrBytes>
        slots{};
  };
  std::vector<DibLine> dib_;  ///< direct-mapped; empty when disabled
  Addr dib_mask_ = 0;
  /// L0 over the DIB: the line the previous fetch_decode hit.
  /// Sequential fetches within a 64-byte line — the common case at any
  /// fetch width — resolve with one compare and one load. The pointer
  /// stays valid because dib_ never resizes after construction.
  const DibLine* dib_last_ = nullptr;
  Addr dib_last_line_ = ~Addr{0};

  Addr fetch_pc_ = 0;
  bool fetch_stalled_ = false;      ///< barrier (halt / unknown target)
  Cycle fetch_busy_until_ = 0;      ///< i-cache/iTLB miss in progress
  /// Shadow references acquired by an in-progress fetch (miss pending);
  /// handed to the next FetchedInst, or released on squash/restart.
  int pending_iline_ = -1;
  int pending_itlb_ = -1;
  int loads_in_flight_ = 0;         ///< LDQ occupancy
  int stores_in_flight_ = 0;        ///< STQ occupancy
  bool fence_active_ = false;       ///< a kFence is in the ROB
  bool halted_ = false;
  StopReason stop_reason_ = StopReason::kMaxCycles;

  CoreStats stats_;
};

}  // namespace safespec::cpu
