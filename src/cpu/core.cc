#include "cpu/core.h"

#include <algorithm>
#include <cassert>

#include "common/log.h"

namespace safespec::cpu {

using isa::OpClass;
using memory::CacheHierarchy;
using memory::Side;
using shadow::FullPolicy;

// One page walk acquires at most one shadow ref per radix level; only
// kStall retry re-walks spill past the inline storage.
static_assert(DynInst::WalkerRefs::kInline >=
                  memory::PageTable::kWalkLevels,
              "walker ref inline storage must cover one full walk");

namespace {
/// Maximum decoded-but-undispatched instructions buffered by the front
/// end. Sized to cover the fetch-to-dispatch delay at full width.
constexpr int kFetchBufferCap = 48;

/// Resolves the configured policy name and applies its full-table
/// handling override to every shadow structure — and its cache-level
/// protection (SHARP family) to every hierarchy level — before anything
/// is built. The Simulator applies the same hierarchy tune when it
/// constructs the shared L2/L3, so private and shared levels agree.
CoreConfig tuned_config(CoreConfig c) {
  const auto& p = policy::named_policy(c.policy);
  p.tune(c.shadow_dcache);
  p.tune(c.shadow_icache);
  p.tune(c.shadow_dtlb);
  p.tune(c.shadow_itlb);
  p.tune(c.hierarchy, c.sharp_alarm_threshold, c.sharp_alarm_epoch);
  return c;
}
}  // namespace

const char* to_string(StopReason reason) {
  switch (reason) {
    case StopReason::kHalted:
      return "halted";
    case StopReason::kFaultNoHandler:
      return "fault";
    case StopReason::kMaxCycles:
      return "max-cycles";
    case StopReason::kMaxInstrs:
      return "max-instrs";
  }
  return "?";
}

Core::Core(const CoreConfig& config, const isa::Program* program,
           memory::MainMemory* mem, memory::PageTable* page_table,
           memory::SharedLevels* shared_levels, int core_id)
    : config_(tuned_config(config)),
      policy_(&policy::named_policy(config_.policy)),
      protection_on_(policy_->shadows_speculation()),
      promote_at_resolution_(policy_->promote_at_branch_resolution()),
      annul_on_squash_(policy_->annul_on_squash()),
      program_(program),
      mem_(mem),
      page_table_(page_table),
      core_id_(core_id),
      hierarchy_(config_.hierarchy, shared_levels, core_id),
      itlb_(config_.itlb),
      dtlb_(config_.dtlb),
      predictor_(config_.predictor),
      shadow_dcache_(config_.shadow_dcache),
      shadow_icache_(config_.shadow_icache),
      shadow_dtlb_(config_.shadow_dtlb),
      shadow_itlb_(config_.shadow_itlb),
      rob_(static_cast<std::size_t>(config_.rob_entries)),
      fetch_queue_(
          static_cast<std::size_t>(kFetchBufferCap + config_.fetch_width)) {
  fetch_pc_ = program_->entry();
  unresolved_branches_.reserve(static_cast<std::size_t>(config_.rob_entries));
  waiting_.reserve(static_cast<std::size_t>(config_.iq_entries));
  if (config_.dib_lines > 0) {
    std::size_t lines = 1;
    while (lines < static_cast<std::size_t>(config_.dib_lines)) lines *= 2;
    dib_.resize(lines);
    dib_mask_ = static_cast<Addr>(lines - 1);
  }
}

const isa::Instruction* Core::fetch_decode(Addr pc) {
  // Misaligned pcs (speculated indirect targets) are never occupied and
  // never cached — same answer program_->at() gives.
  if (dib_.empty() || pc % isa::kInstrBytes != 0) return program_->at(pc);
  const Addr line = pc >> kLineShift;
  const std::size_t slot = (pc & (kLineSize - 1)) / isa::kInstrBytes;
  // L0: sequential fetches stay on one line; skip even the indexed
  // lookup and tag compare then.
  if (line == dib_last_line_) {
    ++stats_.dib_hits;
    return dib_last_->slots[slot];
  }
  DibLine& entry = dib_[static_cast<std::size_t>(line & dib_mask_)];
  if (entry.tag == line) {
    ++stats_.dib_hits;
  } else {
    const Addr base = line << kLineShift;
    for (std::size_t i = 0; i < entry.slots.size(); ++i) {
      entry.slots[i] = program_->at(base + i * isa::kInstrBytes);
    }
    entry.tag = line;
    ++stats_.dib_fills;
  }
  dib_last_line_ = line;
  dib_last_ = &entry;
  return entry.slots[slot];
}

void Core::invalidate_dib() {
  for (DibLine& entry : dib_) entry.tag = ~Addr{0};
  dib_last_ = nullptr;
  dib_last_line_ = ~Addr{0};
}

StopReason Core::run(Cycle max_cycles, std::uint64_t max_instrs) {
  const Cycle deadline = cycle_ + max_cycles;
  std::uint64_t committed_at_start = stats_.committed_instrs;
  Cycle last_progress = cycle_;
  std::uint64_t last_committed = stats_.committed_instrs;

  while (!halted_) {
    if (cycle_ >= deadline) {
      stop_reason_ = StopReason::kMaxCycles;
      break;
    }
    if (stats_.committed_instrs - committed_at_start >= max_instrs) {
      stop_reason_ = StopReason::kMaxInstrs;
      break;
    }
    step();
    if (stats_.committed_instrs != last_committed) {
      last_committed = stats_.committed_instrs;
      last_progress = cycle_;
    } else if (cycle_ - last_progress > 100'000) {
      // Deadlock backstop: nothing committed for a long time. This only
      // fires on malformed programs (e.g. committed control flow ran off
      // the end of the text without a halt).
      stop_reason_ = StopReason::kFaultNoHandler;
      LOG_WARN("core wedged at pc=0x" << std::hex << fetch_pc_);
      break;
    }
    // Committed control flow reached a pc with no instruction: the front
    // end is stalled with an empty pipeline and can never refill.
    if (fetch_stalled_ && rob_.empty() && fetch_queue_.empty() && !halted_) {
      stop_reason_ = StopReason::kFaultNoHandler;
      break;
    }
  }
  return stop_reason_;
}

void Core::step() {
  stage_complete();
  stage_commit();
  stage_issue();
  stage_dispatch();
  stage_fetch();

  if (protection_on()) {
    shadow_dcache_.sample_occupancy();
    shadow_icache_.sample_occupancy();
    shadow_dtlb_.sample_occupancy();
    shadow_itlb_.sample_occupancy();
  }
  ++cycle_;
  ++stats_.cycles;
}

// --------------------------------------------------------------------------
// Complete: retire execution results, resolve branches (possibly squashing).
// --------------------------------------------------------------------------

void Core::stage_complete() {
  // Nothing in flight can have finished yet: skip the walk entirely.
  // next_complete_cycle_ is a lower bound on the earliest completion
  // (kept at issue time), so this gate never delays a writeback — it
  // only removes the empty full-ROB scans that dominate memory-bound
  // phases, where the window sits blocked behind a long-latency load.
  if (cycle_ < next_complete_cycle_) return;
  Cycle next = kNeverCycle;
  for (std::size_t i = 0; i < rob_.size(); ++i) {
    DynInst& di = rob_[i];
    if (di.state != InstState::kIssued) continue;
    if (di.done_cycle > cycle_) {
      next = std::min(next, di.done_cycle);
      continue;
    }
    di.state = InstState::kDone;
    if (di.inst.writes_register()) wake_dependents(di);
    if (di.is_branch()) {
      resolve_branch(di);
      if (di.mispredicted) {
        // Everything younger is gone; nothing further to complete. The
        // older in-flight entries were already folded into `next`.
        break;
      }
    }
  }
  next_complete_cycle_ = next;
}

void Core::resolve_branch(DynInst& di) {
  switch (di.inst.op) {
    case OpClass::kBranch:
      di.actual_taken = isa::eval_cond(di.inst.cond, di.src1_value,
                                       di.src2_value);
      di.actual_next =
          di.actual_taken ? di.inst.target : di.pc + isa::kInstrBytes;
      break;
    case OpClass::kJump:
    case OpClass::kCall:
      di.actual_taken = true;
      di.actual_next = di.inst.target;
      break;
    case OpClass::kBranchIndirect:
      di.actual_taken = true;
      di.actual_next = di.src1_value + static_cast<Addr>(di.inst.imm);
      break;
    case OpClass::kRet:
      di.actual_taken = true;
      di.actual_next = di.src1_value;
      break;
    default:
      return;
  }
  di.branch_resolved = true;
  erase_seq(unresolved_branches_, di.seq);

  // Resolution-time training — the path an attacker mistrains through.
  predictor_.train(di.pc, di.inst, di.actual_taken, di.actual_next);

  const bool correct = di.target_known && di.predicted_next == di.actual_next;
  if (di.inst.op == OpClass::kBranch) predictor_.note_resolution(correct);

  if (!correct) {
    di.mispredicted = true;
    ++stats_.mispredicts;
    ++stats_.squashes;
    squash_younger_than(di.seq, di.actual_next);
  }
}

void Core::squash_younger_than(SeqNum seq, Addr redirect_pc) {
  while (!rob_.empty() && rob_.back().seq > seq) {
    DynInst& victim = rob_.back();
    release_shadow(victim);
    if (victim.is_branch()) erase_seq(unresolved_branches_, victim.seq);
    if (victim.is_load()) --loads_in_flight_;
    if (victim.is_store()) --stores_in_flight_;
    if (victim.state == InstState::kWaiting) erase_seq(waiting_, victim.seq);
    if (victim.inst.op == OpClass::kFence) fence_active_ = false;
    ++stats_.squashed_instrs;
    rob_.pop_back();
  }
  // Rewind numbering over the squashed suffix so ROB seqs stay contiguous
  // (the invariant find_by_seq's O(1) slot math relies on). Safe — every
  // reference to a squashed seq was erased above, and relabeling future
  // instructions preserves all age comparisons.
  next_seq_ = seq + 1;
  // The WFB sweep hint may have advanced past `seq` (the squashed suffix
  // was promotable); instructions dispatched after the rewind reuse those
  // seqs, so clamp the hint or the sweep would skip them — promoting
  // their shadow state only at commit and silently shifting WFB timing
  // and occupancy on every fault-handler recovery.
  promoted_below_seq_ = std::min(promoted_below_seq_, next_seq_);
  // Wrong-path decoded instructions also hold shadow references.
  for (FetchedInst& fi : fetch_queue_) {
    if (fi.shadow_iline != DynInst::kNoShadow) {
      shadow_icache_.release(fi.shadow_iline);
    }
    if (fi.shadow_itlb != DynInst::kNoShadow) {
      shadow_itlb_.release(fi.shadow_itlb);
    }
    stats_.squashed_instrs++;
  }
  fetch_queue_.clear();
  release_pending_fetch_refs();
  fetch_pc_ = redirect_pc;
  fetch_stalled_ = false;
  fetch_busy_until_ = cycle_ + 1;
  rebuild_rename_map();
}

void Core::release_pending_fetch_refs() {
  if (pending_iline_ != DynInst::kNoShadow) {
    shadow_icache_.release(pending_iline_);
    pending_iline_ = DynInst::kNoShadow;
  }
  if (pending_itlb_ != DynInst::kNoShadow) {
    shadow_itlb_.release(pending_itlb_);
    pending_itlb_ = DynInst::kNoShadow;
  }
}

void Core::rebuild_rename_map() {
  std::fill(std::begin(rename_), std::end(rename_), SeqNum{0});
  for (const DynInst& di : rob_) {
    if (di.inst.writes_register()) rename_[di.inst.dst] = di.seq;
  }
}

// --------------------------------------------------------------------------
// Commit.
// --------------------------------------------------------------------------

void Core::stage_commit() {
  // WFB promotion sweep: an instruction's shadow state becomes commitable
  // once no older branch remains unresolved (§III "wait-for-branch").
  // Promotable entries are exactly those older than the oldest unresolved
  // branch (the frontier — non-decreasing over a run), so the sweep only
  // walks [promoted_below_seq_, frontier): everything before the hint was
  // promoted by an earlier sweep, everything at or past the frontier has
  // an older unresolved branch (or is the unresolved branch itself).
  if (promote_at_resolution_ && !rob_.empty()) {
    const SeqNum front_seq = rob_.front().seq;
    const SeqNum frontier = unresolved_branches_.empty()
                                ? rob_.back().seq + 1
                                : unresolved_branches_.front();
    SeqNum new_hint = frontier;
    for (SeqNum seq = std::max(promoted_below_seq_, front_seq);
         seq < frontier; ++seq) {
      DynInst& di = rob_[static_cast<std::size_t>(seq - front_seq)];
      // Not yet promotable: still waiting to issue, or a jump/call whose
      // own resolution (hence squash-or-survive fate) is not in. The
      // sweep must revisit it, so the hint stops short of it.
      if (di.state == InstState::kWaiting ||
          (di.is_branch() && !di.branch_resolved)) {
        new_hint = std::min(new_hint, seq);
        continue;
      }
      if (!di.shadow_promoted) promote_shadow(di);
    }
    promoted_below_seq_ = new_hint;
  }

  for (int n = 0; n < config_.commit_width && !rob_.empty(); ++n) {
    DynInst& head = rob_.front();
    if (head.state != InstState::kDone) break;
    // Retirement pipeline: completion-to-retire takes commit_delay cycles.
    if (cycle_ < head.done_cycle + static_cast<Cycle>(config_.commit_delay)) {
      break;
    }

    if (head.fault != Fault::kNone) {
      raise_fault(head);
      return;  // pipeline redirected; stop committing this cycle
    }
    commit_one(head);
    rob_.pop_front();
    if (halted_) return;
  }
}

void Core::commit_one(DynInst& head) {
  // Architectural register update (commit_xor is 0 outside mutation
  // testing, where it simulates a corrupted writeback datapath).
  if (head.inst.writes_register()) {
    regs_[head.inst.dst] = head.result ^ config_.mutation.commit_xor;
    if (rename_[head.inst.dst] == head.seq) rename_[head.inst.dst] = 0;
  }

  switch (head.inst.op) {
    case OpClass::kStore:
      // TSO: the store's memory and cache side effects happen at commit,
      // which is why stores need no shadow structure (§IV-B).
      mem_->write64(head.physical_addr, head.src2_value);
      hierarchy_.fill_all_levels(line_of(head.physical_addr), Side::kData);
      --stores_in_flight_;
      ++stats_.committed_stores;
      break;
    case OpClass::kLoad:
      --loads_in_flight_;
      ++stats_.committed_loads;
      break;
    case OpClass::kFlush:
      hierarchy_.flush_line(line_of(head.physical_addr));
      break;
    case OpClass::kFence:
      fence_active_ = false;
      break;
    case OpClass::kHalt:
      halted_ = true;
      stop_reason_ = StopReason::kHalted;
      // Drain: anything younger can never commit; annul its shadow state
      // so end-of-run invariants (empty shadow tables) hold.
      squash_younger_than(head.seq, head.pc);
      fetch_stalled_ = true;
      break;
    default:
      break;
  }
  if (head.is_branch()) ++stats_.committed_branches;

  // WFC: shadow state is promoted only now, when the producing
  // instruction is guaranteed architectural (§III "wait-for-commit").
  // Under WFB the sweep above already promoted; promote_shadow is
  // idempotent via shadow_promoted. Baseline holds no references.
  promote_shadow(head);

  ++stats_.committed_instrs;
}

void Core::raise_fault(DynInst& head) {
  ++stats_.faults;
  ++stats_.squashes;
  // The faulting instruction never commits: its own shadow state is
  // annulled (under WFC this is exactly what stops Meltdown — the
  // dependent gadget load's line dies here too, with the rest of the
  // younger window).
  release_shadow(head);
  if (head.is_branch()) erase_seq(unresolved_branches_, head.seq);
  if (head.is_load()) --loads_in_flight_;
  if (head.is_store()) --stores_in_flight_;
  const SeqNum seq = head.seq;
  const auto handler = program_->fault_handler();
  squash_younger_than(seq, handler.value_or(0));
  // Remove the faulting head itself.
  rob_.pop_front();
  rebuild_rename_map();
  if (!handler.has_value()) {
    halted_ = true;
    stop_reason_ = StopReason::kFaultNoHandler;
  }
}

bool Core::older_unresolved_branch_exists(SeqNum seq) const {
  return !unresolved_branches_.empty() && unresolved_branches_.front() < seq;
}

void Core::erase_seq(std::vector<SeqNum>& seqs, SeqNum seq) {
  const auto it = std::lower_bound(seqs.begin(), seqs.end(), seq);
  if (it != seqs.end() && *it == seq) seqs.erase(it);
}

// --------------------------------------------------------------------------
// Shadow promotion / annulment.
// --------------------------------------------------------------------------

void Core::promote_shadow(DynInst& di) {
  if (di.shadow_promoted) {
    // WFB already moved the state; nothing left to do at commit.
    di.shadow_dline = DynInst::kNoShadow;
    di.shadow_iline = DynInst::kNoShadow;
    di.shadow_dtlb = DynInst::kNoShadow;
    di.shadow_itlb = DynInst::kNoShadow;
    di.walker_refs.clear();
    return;
  }
  di.shadow_promoted = true;
  if (di.shadow_dline != DynInst::kNoShadow || !di.walker_refs.empty()) {
    LOG_DEBUG("promote pc=0x" << std::hex << di.pc << std::dec << " @"
                              << cycle_ << " dline=" << di.shadow_dline
                              << " walkers=" << di.walker_refs.size());
  }
  if (di.shadow_dline != DynInst::kNoShadow) {
    const Addr line = shadow_dcache_.key(di.shadow_dline);
    shadow_dcache_.mark_promoted(di.shadow_dline);
    hierarchy_.fill_all_levels(line, Side::kData);
    shadow_dcache_.release(di.shadow_dline);
    di.shadow_dline = DynInst::kNoShadow;
  }
  di.walker_refs.for_each([this](int ref) {
    const Addr line = shadow_dcache_.key(ref);
    shadow_dcache_.mark_promoted(ref);
    hierarchy_.fill_all_levels(line, Side::kData);
    shadow_dcache_.release(ref);
  });
  di.walker_refs.clear();
  if (di.shadow_iline != DynInst::kNoShadow) {
    const Addr line = shadow_icache_.key(di.shadow_iline);
    shadow_icache_.mark_promoted(di.shadow_iline);
    hierarchy_.fill_all_levels(line, Side::kInstr);
    shadow_icache_.release(di.shadow_iline);
    di.shadow_iline = DynInst::kNoShadow;
  }
  if (di.shadow_dtlb != DynInst::kNoShadow) {
    const auto& payload = shadow_dtlb_.payload_of(di.shadow_dtlb);
    shadow_dtlb_.mark_promoted(di.shadow_dtlb);
    dtlb_.fill({shadow_dtlb_.key(di.shadow_dtlb), payload.ppage,
                payload.kernel_only});
    shadow_dtlb_.release(di.shadow_dtlb);
    di.shadow_dtlb = DynInst::kNoShadow;
  }
  if (di.shadow_itlb != DynInst::kNoShadow) {
    const auto& payload = shadow_itlb_.payload_of(di.shadow_itlb);
    shadow_itlb_.mark_promoted(di.shadow_itlb);
    itlb_.fill({shadow_itlb_.key(di.shadow_itlb), payload.ppage,
                payload.kernel_only});
    shadow_itlb_.release(di.shadow_itlb);
    di.shadow_itlb = DynInst::kNoShadow;
  }
}

void Core::release_shadow(DynInst& di) {
  if (config_.mutation.skip_squash_release) {
    // Injected defect (mutation testing): drop the references without
    // releasing them. The shadow entries stay live forever, so the
    // empty-shadows-after-drain invariant must trip.
    di.shadow_dline = DynInst::kNoShadow;
    di.shadow_iline = DynInst::kNoShadow;
    di.shadow_dtlb = DynInst::kNoShadow;
    di.shadow_itlb = DynInst::kNoShadow;
    di.walker_refs.clear();
    return;
  }
  // Squash handling is a policy decision point: every shipped policy
  // annuls in place (Fig 3); a policy answering false promotes squashed
  // state anyway — the insecure strawman for annulment-cost ablations.
  if (!annul_on_squash_) {
    promote_shadow(di);
    return;
  }
  if (di.shadow_dline != DynInst::kNoShadow || !di.walker_refs.empty()) {
    LOG_DEBUG("release pc=0x" << std::hex << di.pc << std::dec << " @"
                              << cycle_ << " dline=" << di.shadow_dline
                              << " walkers=" << di.walker_refs.size());
  }
  if (di.shadow_dline != DynInst::kNoShadow) {
    shadow_dcache_.release(di.shadow_dline);
    di.shadow_dline = DynInst::kNoShadow;
  }
  di.walker_refs.for_each([this](int ref) { shadow_dcache_.release(ref); });
  di.walker_refs.clear();
  if (di.shadow_iline != DynInst::kNoShadow) {
    shadow_icache_.release(di.shadow_iline);
    di.shadow_iline = DynInst::kNoShadow;
  }
  if (di.shadow_dtlb != DynInst::kNoShadow) {
    shadow_dtlb_.release(di.shadow_dtlb);
    di.shadow_dtlb = DynInst::kNoShadow;
  }
  if (di.shadow_itlb != DynInst::kNoShadow) {
    shadow_itlb_.release(di.shadow_itlb);
    di.shadow_itlb = DynInst::kNoShadow;
  }
}

// --------------------------------------------------------------------------
// Issue / execute.
// --------------------------------------------------------------------------

void Core::stage_issue() {
  // Walk only the waiting (dispatched, unissued) entries — waiting_ is
  // seq-ordered, so candidates are visited oldest-first exactly as a full
  // ROB scan would.
  int issued = 0;
  for (std::size_t w = 0;
       w < waiting_.size() && issued < config_.issue_width;) {
    DynInst* di = find_by_seq(waiting_[w]);
    assert(di != nullptr && di->state == InstState::kWaiting);
    if (!di->src1_ready || !di->src2_ready) {
      ++w;
      continue;
    }
    // A fence executes only once it is the oldest instruction (its whole
    // ordering purpose).
    if (di->inst.op == OpClass::kFence && rob_.front().seq != di->seq) {
      ++w;
      continue;
    }
    if (execute(*di)) {
      di->state = InstState::kIssued;
      next_complete_cycle_ = std::min(next_complete_cycle_, di->done_cycle);
      waiting_.erase(waiting_.begin() + static_cast<std::ptrdiff_t>(w));
      ++issued;
    } else {
      ++w;
    }
  }
}

bool Core::execute(DynInst& di) {
  using isa::AluOp;
  Cycle latency = config_.alu_latency;

  switch (di.inst.op) {
    case OpClass::kNop:
    case OpClass::kFence:
    case OpClass::kHalt:
      break;
    case OpClass::kAlu: {
      const std::uint64_t b = di.inst.use_imm
                                  ? static_cast<std::uint64_t>(di.inst.imm)
                                  : di.src2_value;
      di.result = isa::eval_alu(di.inst.alu, di.src1_value, b);
      break;
    }
    case OpClass::kMul: {
      const std::uint64_t b = di.inst.use_imm
                                  ? static_cast<std::uint64_t>(di.inst.imm)
                                  : di.src2_value;
      di.result = isa::eval_alu(di.inst.alu, di.src1_value, b);
      latency = config_.mul_latency;
      break;
    }
    case OpClass::kDiv: {
      const std::uint64_t b = di.inst.use_imm
                                  ? static_cast<std::uint64_t>(di.inst.imm)
                                  : di.src2_value;
      di.result = isa::eval_alu(di.inst.alu, di.src1_value, b);
      latency = config_.div_latency;
      break;
    }
    case OpClass::kRdCycle:
      di.result = cycle_;
      break;
    case OpClass::kBranch:
    case OpClass::kJump:
    case OpClass::kBranchIndirect:
    case OpClass::kRet:
      break;
    case OpClass::kCall:
      di.result = di.pc + isa::kInstrBytes;  // link value
      break;
    case OpClass::kLoad: {
      di.effective_addr = di.src1_value + static_cast<std::uint64_t>(di.inst.imm);

      // Memory ordering: scan older stores. Any older store with an
      // unknown address blocks us (conservative disambiguation); the
      // youngest older store to the same word forwards its data. The scan
      // is skipped outright when no store is in flight anywhere.
      const Addr word = di.effective_addr >> 3;
      const DynInst* forwarding_store = nullptr;
      if (stores_in_flight_ > 0) {
        const std::size_t older =
            static_cast<std::size_t>(di.seq - rob_.front().seq);
        for (std::size_t i = 0; i < older; ++i) {
          const DynInst& other = rob_[i];
          if (!other.is_store()) continue;
          if (other.state == InstState::kWaiting) {
            return false;  // addr unknown
          }
          if ((other.effective_addr >> 3) == word) forwarding_store = &other;
        }
      }
      if (forwarding_store != nullptr) {
        di.result = forwarding_store->src2_value;
        di.store_forwarded = true;
        latency = config_.alu_latency;  // forwarded from the store queue
        break;
      }

      bool stall = false;
      Cycle mem_latency = translate_data(di, stall);
      if (stall) {
        ++stats_.shadow_stall_cycles;
        return false;
      }
      if (di.fault == Fault::kUnmapped) {
        di.result = 0;
        latency = config_.hierarchy.memory_latency;
        break;
      }
      mem_latency += access_dcache(di, stall);
      if (stall) {
        // The cache access could not take a shadow entry (kStall): undo
        // nothing (translate_data's shadow-TLB ref stays; retry reuses it
        // via the acquire path) and retry next cycle.
        ++stats_.shadow_stall_cycles;
        return false;
      }
      // P1: the speculative load observes the real data even when the
      // permission check failed — the check only bites at commit.
      di.result = mem_->read64(di.physical_addr);
      latency = mem_latency;
      LOG_DEBUG("load pc=0x" << std::hex << di.pc << std::dec << " issue@"
                             << cycle_ << " lat=" << latency << " addr=0x"
                             << std::hex << di.effective_addr);
      break;
    }
    case OpClass::kStore: {
      di.effective_addr =
          di.src1_value + static_cast<std::uint64_t>(di.inst.imm);
      bool stall = false;
      const Cycle translation = translate_data(di, stall);
      if (stall) {
        ++stats_.shadow_stall_cycles;
        return false;
      }
      latency = config_.alu_latency + translation;
      break;
    }
    case OpClass::kFlush: {
      di.effective_addr =
          di.src1_value + static_cast<std::uint64_t>(di.inst.imm);
      bool stall = false;
      const Cycle translation = translate_data(di, stall);
      if (stall) {
        ++stats_.shadow_stall_cycles;
        return false;
      }
      latency = config_.alu_latency + translation;
      break;
    }
  }

  di.done_cycle = cycle_ + std::max<Cycle>(1, latency);
  return true;
}

Cycle Core::translate_data(DynInst& di, bool& stall) {
  if (di.translated || di.fault != Fault::kNone) return 0;  // retry path
  const Addr vpage = page_of(di.effective_addr);

  memory::TlbEntry entry;
  bool have_translation = false;
  Cycle latency = 0;

  if (const auto hit = dtlb_.access(vpage); hit.has_value()) {
    entry = *hit;
    have_translation = true;
  } else if (protection_on()) {
    if (const auto id = shadow_dtlb_.acquire_existing(vpage);
        id != shadow::ShadowTlb::kNone) {
      const auto& payload = shadow_dtlb_.payload_of(id);
      entry = {vpage, payload.ppage, payload.kernel_only};
      have_translation = true;
      latency += 1;  // shadow TLB lookup
      if (di.shadow_dtlb == DynInst::kNoShadow) {
        di.shadow_dtlb = id;
      } else {
        shadow_dtlb_.release(id);  // already hold a ref from a prior retry
      }
    }
  }

  if (!have_translation) {
    latency += walk_page_table(&di, vpage);
    const auto xlat = page_table_->translate(vpage);
    if (!xlat.present) {
      di.fault = Fault::kUnmapped;
      return latency;
    }
    entry = {vpage, xlat.ppage, xlat.kernel_only};
    if (protection_on()) {
      const auto id = shadow_dtlb_.insert(vpage, {xlat.ppage,
                                                  xlat.kernel_only});
      if (id == shadow::ShadowTlb::kNone &&
          shadow_dtlb_.config().full_policy == FullPolicy::kStall) {
        stall = true;
        return latency;
      }
      di.shadow_dtlb = id;  // kNone under kDrop: translation simply unshadowed
    } else {
      dtlb_.fill(entry);
    }
  }

  di.physical_addr = (entry.ppage << kPageShift) + page_offset(di.effective_addr);
  di.translated = true;
  // Deferred permission check (P1): record the fault, keep executing.
  if (entry.kernel_only && priv_ == memory::PrivLevel::kUser) {
    di.fault = Fault::kPermission;
  }
  return latency;
}

Cycle Core::walk_page_table(DynInst* di, Addr vpage) {
  Cycle latency = 0;
  Addr walk_lines[memory::PageTable::kWalkLevels];
  page_table_->walk_addresses(vpage, walk_lines);
  for (const Addr entry_addr : walk_lines) {
    if (!protection_on()) {
      latency += hierarchy_
                     .timed_access(entry_addr, Side::kData,
                                   CacheHierarchy::Fill::kYes,
                                   /*count_stats=*/false)
                     .latency;
      continue;
    }
    // SafeSpec: walker lines ride the d-cache shadow like any speculative
    // load (§IV-A). Full table => drop (walks never stall the pipeline).
    const Addr line = line_of(entry_addr);
    if (const auto id = shadow_dcache_.acquire_existing(line, false);
        id != shadow::ShadowCache::kNone) {
      latency += config_.shadow_hit_latency;
      if (di != nullptr) {
        di->walker_refs.push_back(id);
      } else {
        shadow_dcache_.release(id);
      }
      continue;
    }
    const auto outcome = hierarchy_.timed_access(
        entry_addr, Side::kData, CacheHierarchy::Fill::kNo,
        /*count_stats=*/false);
    latency += outcome.latency;
    if (outcome.level != memory::HitLevel::kL1) {
      const auto id = shadow_dcache_.insert(line, {});
      if (id != shadow::ShadowCache::kNone) {
        if (di != nullptr) {
          di->walker_refs.push_back(id);
        } else {
          shadow_dcache_.release(id);
        }
      }
    }
  }
  return latency;
}

Cycle Core::access_dcache(DynInst& di, bool& stall) {
  const Addr paddr = di.physical_addr;
  if (!protection_on()) {
    return hierarchy_
        .timed_access(paddr, Side::kData, CacheHierarchy::Fill::kYes)
        .latency;
  }
  const Addr line = line_of(paddr);
  if (di.shadow_dline != DynInst::kNoShadow) {
    // Retry after a stall elsewhere: we already hold the line.
    return config_.shadow_hit_latency;
  }
  // Primary-first lookup order, as in the design: the L1 is checked, then
  // the shadow structure, then the lower levels — with no fills and no
  // replacement-state updates anywhere on this speculative path.
  if (hierarchy_.l1d().access(line, /*update_replacement=*/false)) {
    return hierarchy_.l1d().config().hit_latency;
  }
  if (const auto id = shadow_dcache_.acquire_existing(line);
      id != shadow::ShadowCache::kNone) {
    di.shadow_dline = id;
    return config_.shadow_hit_latency;
  }
  Cycle latency;
  if (hierarchy_.l2().access(line, false)) {
    latency = hierarchy_.l2().config().hit_latency;
  } else if (hierarchy_.l3().access(line, false)) {
    latency = hierarchy_.l3().config().hit_latency;
  } else {
    latency = config_.hierarchy.memory_latency;
  }
  const auto id = shadow_dcache_.insert(line, {});
  if (id == shadow::ShadowCache::kNone) {
    // Forward-progress guarantee for kStall: if this instruction's own
    // page-walker lines are (part of) what fills the table, stalling
    // would deadlock — it waits on entries only its own commit releases.
    // Degrade to drop in that case.
    if (shadow_dcache_.config().full_policy == FullPolicy::kStall &&
        di.walker_refs.empty()) {
      stall = true;
      return 0;
    }
    // kDrop: the update to the committed state is lost (§V) — the load
    // still gets its value, but nothing will be promoted at commit.
    return latency;
  }
  di.shadow_dline = id;
  return latency;
}

// --------------------------------------------------------------------------
// Dispatch.
// --------------------------------------------------------------------------

void Core::bind_operand(SeqNum consumer, RegIndex reg, std::uint64_t& value,
                        bool& ready, SeqNum& producer) {
  const SeqNum prod = rename_[reg];
  if (prod == 0) {
    value = regs_[reg];
    ready = true;
    return;
  }
  DynInst* p = find_by_seq(prod);
  if (p != nullptr && p->state == InstState::kDone) {
    value = p->result;
    ready = true;
    return;
  }
  ready = false;
  producer = prod;
  // Register on the producer's wakeup list so completion wakes exactly
  // its consumers instead of scanning the younger ROB suffix.
  if (p != nullptr) p->note_dependent(consumer);
}

DynInst* Core::find_by_seq(SeqNum seq) {
  if (rob_.empty()) return nullptr;
  const SeqNum front_seq = rob_.front().seq;
  if (seq < front_seq || seq - front_seq >= rob_.size()) return nullptr;
  DynInst& di = rob_[static_cast<std::size_t>(seq - front_seq)];
  assert(di.seq == seq && "ROB seqs must be contiguous");
  return &di;
}

void Core::wake_dependents(const DynInst& producer) {
  // Common case: visit exactly the consumers that bound an operand to
  // this producer at dispatch. A recorded seq can be stale (its consumer
  // squashed and the seq reused after the rewind), so each entry is
  // re-validated against the consumer's recorded producer — the same
  // predicate the suffix scan applies, which makes a stale entry either
  // inert or a genuine dependent that re-bound under the reused seq.
  if (!producer.dep_overflow) {
    for (int i = 0; i < producer.dep_count; ++i) {
      DynInst* di = find_by_seq(producer.deps[i]);
      if (di == nullptr) continue;
      if (!di->src1_ready && di->src1_producer == producer.seq) {
        di->src1_value = producer.result;
        di->src1_ready = true;
      }
      if (!di->src2_ready && di->src2_producer == producer.seq) {
        di->src2_value = producer.result;
        di->src2_ready = true;
      }
    }
    return;
  }
  // Overflow (more dependents than the inline list holds): walk the
  // younger ROB suffix, starting one past the producer's slot.
  const SeqNum front_seq = rob_.front().seq;
  for (std::size_t i =
           static_cast<std::size_t>(producer.seq - front_seq) + 1;
       i < rob_.size(); ++i) {
    DynInst& di = rob_[i];
    if (!di.src1_ready && di.src1_producer == producer.seq) {
      di.src1_value = producer.result;
      di.src1_ready = true;
    }
    if (!di.src2_ready && di.src2_producer == producer.seq) {
      di.src2_value = producer.result;
      di.src2_ready = true;
    }
  }
}

void Core::stage_dispatch() {
  for (int n = 0; n < config_.issue_width; ++n) {
    if (fetch_queue_.empty()) return;
    FetchedInst& fi = fetch_queue_.front();
    if (fi.ready_at > cycle_) return;
    if (fence_active_) return;
    if (rob_full() ||
        static_cast<int>(waiting_.size()) >= config_.iq_entries) {
      return;
    }
    if (fi.inst.op == OpClass::kLoad &&
        loads_in_flight_ >= config_.ldq_entries) {
      return;
    }
    if (fi.inst.op == OpClass::kStore &&
        stores_in_flight_ >= config_.stq_entries) {
      return;
    }

    DynInst di;
    di.seq = next_seq_++;
    di.pc = fi.pc;
    di.inst = fi.inst;
    di.predicted_taken = fi.predicted_taken;
    di.predicted_next = fi.predicted_next;
    di.target_known = fi.predicted_next != 0 || !fi.inst.is_branch();
    di.shadow_iline = fi.shadow_iline;
    di.shadow_itlb = fi.shadow_itlb;

    // Operand binding. Which sources an op reads:
    const bool reads_src1 =
        fi.inst.op == OpClass::kAlu || fi.inst.op == OpClass::kMul ||
        fi.inst.op == OpClass::kDiv || fi.inst.op == OpClass::kLoad ||
        fi.inst.op == OpClass::kStore || fi.inst.op == OpClass::kBranch ||
        fi.inst.op == OpClass::kBranchIndirect || fi.inst.op == OpClass::kRet ||
        fi.inst.op == OpClass::kFlush;
    const bool reads_src2 =
        (fi.inst.op == OpClass::kAlu || fi.inst.op == OpClass::kMul ||
         fi.inst.op == OpClass::kDiv) && !fi.inst.use_imm;
    const bool reads_src2_always =
        fi.inst.op == OpClass::kStore || fi.inst.op == OpClass::kBranch;

    if (reads_src1) {
      bind_operand(di.seq, fi.inst.src1, di.src1_value, di.src1_ready,
                   di.src1_producer);
    }
    if (reads_src2 || reads_src2_always) {
      bind_operand(di.seq, fi.inst.src2, di.src2_value, di.src2_ready,
                   di.src2_producer);
    }

    if (di.inst.writes_register()) rename_[di.inst.dst] = di.seq;
    if (di.inst.op == OpClass::kBranch ||
        di.inst.op == OpClass::kBranchIndirect ||
        di.inst.op == OpClass::kRet) {
      unresolved_branches_.push_back(di.seq);  // seqs ascend: stays sorted
    }
    if (di.is_load()) ++loads_in_flight_;
    if (di.is_store()) ++stores_in_flight_;
    if (di.inst.op == OpClass::kFence) fence_active_ = true;
    waiting_.push_back(di.seq);  // seqs ascend: stays sorted

    rob_.push_back(std::move(di));
    fetch_queue_.pop_front();
  }
}

// --------------------------------------------------------------------------
// Fetch.
// --------------------------------------------------------------------------

void Core::stage_fetch() {
  if (halted_ || fetch_stalled_) return;
  if (cycle_ < fetch_busy_until_) return;
  if (static_cast<int>(fetch_queue_.size()) >= kFetchBufferCap) return;

  Addr last_line_touched = ~Addr{0};

  for (int n = 0; n < config_.fetch_width; ++n) {
    const isa::Instruction* inst = fetch_decode(fetch_pc_);
    if (inst == nullptr) {
      // Speculated (or fell) into unmapped text: stall until redirected.
      fetch_stalled_ = true;
      break;
    }

    // ---- iTLB ----------------------------------------------------------
    const Addr vpage = page_of(fetch_pc_);
    Addr ppage = vpage;
    bool have_xlat = false;
    if (const auto hit = itlb_.access(vpage); hit.has_value()) {
      ppage = hit->ppage;
      have_xlat = true;
    } else if (protection_on()) {
      if (pending_itlb_ != DynInst::kNoShadow &&
          shadow_itlb_.key(pending_itlb_) == vpage) {
        // Resuming after the walk that created this entry.
        ppage = shadow_itlb_.payload_of(pending_itlb_).ppage;
        have_xlat = true;
      } else if (const auto id = shadow_itlb_.acquire_existing(vpage);
                 id != shadow::ShadowTlb::kNone) {
        ppage = shadow_itlb_.payload_of(id).ppage;
        have_xlat = true;
        if (pending_itlb_ != DynInst::kNoShadow) {
          shadow_itlb_.release(pending_itlb_);
        }
        pending_itlb_ = id;
      }
    }
    if (!have_xlat) {
      // i-side page walk. Walker lines use non-filling accesses (see
      // header note); timing is charged as a fetch bubble.
      const Cycle walk = walk_page_table(nullptr, vpage);
      const auto xlat = page_table_->translate(vpage);
      if (!xlat.present) {
        fetch_stalled_ = true;
        break;
      }
      ppage = xlat.ppage;
      if (protection_on()) {
        const auto id = shadow_itlb_.insert(vpage, {xlat.ppage,
                                                    xlat.kernel_only});
        if (id == shadow::ShadowTlb::kNone &&
            shadow_itlb_.config().full_policy == FullPolicy::kStall) {
          fetch_busy_until_ = cycle_ + 1;  // retry next cycle
          break;
        }
        pending_itlb_ = id;
      } else {
        itlb_.fill({vpage, xlat.ppage, xlat.kernel_only});
      }
      fetch_busy_until_ = cycle_ + std::max<Cycle>(1, walk);
      break;  // resume after the walk
    }

    // ---- i-cache ---------------------------------------------------------
    const Addr fetch_paddr = (ppage << kPageShift) + page_offset(fetch_pc_);
    const Addr line = line_of(fetch_paddr);
    // Per-instruction accounting (Figs 14/15): every fetched instruction
    // is served by exactly one of L1I, the shadow i-cache, or a lower
    // level. Several instructions usually share one line — the spatial
    // locality that makes the shadow i-cache's share of hits high while
    // a line is still speculative.
    ++stats_.fetch_accesses;
    if (line != last_line_touched) {
      last_line_touched = line;
      if (!protection_on()) {
        const auto outcome = hierarchy_.timed_access(
            fetch_paddr, Side::kInstr, CacheHierarchy::Fill::kYes);
        if (outcome.level != memory::HitLevel::kL1) {
          ++stats_.fetch_misses;
          fetch_busy_until_ = cycle_ + outcome.latency;
          break;  // line now resident; resume after the miss
        }
        ++stats_.fetch_l1i_hits;
      } else if (pending_iline_ != DynInst::kNoShadow &&
                 shadow_icache_.key(pending_iline_) == line) {
        // Resuming after the miss that inserted this line: already held.
        ++stats_.fetch_shadow_hits;
      } else if (hierarchy_.l1i().access(line, /*update_replacement=*/false)) {
        ++stats_.fetch_l1i_hits;
      } else {
        if (const auto id = shadow_icache_.acquire_existing(line);
            id != shadow::ShadowCache::kNone) {
          if (pending_iline_ != DynInst::kNoShadow) {
            shadow_icache_.release(pending_iline_);
          }
          pending_iline_ = id;  // shadow hit: no bubble (lookup-table read)
          ++stats_.fetch_shadow_hits;
        } else {
          Cycle latency;
          if (hierarchy_.l2().access(line, false)) {
            latency = hierarchy_.l2().config().hit_latency;
          } else if (hierarchy_.l3().access(line, false)) {
            latency = hierarchy_.l3().config().hit_latency;
          } else {
            latency = config_.hierarchy.memory_latency;
          }
          const auto id2 = shadow_icache_.insert(line, {});
          if (id2 == shadow::ShadowCache::kNone &&
              shadow_icache_.config().full_policy == FullPolicy::kStall) {
            --stats_.fetch_accesses;  // retried next cycle
            fetch_busy_until_ = cycle_ + 1;
            break;
          }
          ++stats_.fetch_misses;
          pending_iline_ = id2;
          fetch_busy_until_ = cycle_ + latency;
          break;  // resume once the line is in the shadow i-cache
        }
      }
    } else {
      // Subsequent instruction from the same fetch line.
      if (protection_on() && pending_iline_ != DynInst::kNoShadow &&
          shadow_icache_.key(pending_iline_) == line) {
        shadow_icache_.stats().hits.add();
        ++stats_.fetch_shadow_hits;
      } else if (protection_on() && pending_iline_ == DynInst::kNoShadow &&
                 shadow_icache_.contains(line)) {
        pending_iline_ = shadow_icache_.acquire_existing(line);  // counts hit
        ++stats_.fetch_shadow_hits;
      } else {
        hierarchy_.l1i().access(line, /*update_replacement=*/!protection_on());
        ++stats_.fetch_l1i_hits;
      }
    }

    // ---- decode + predict -----------------------------------------------
    FetchedInst fi;
    fi.pc = fetch_pc_;
    fi.inst = *inst;
    fi.ready_at = cycle_ + static_cast<Cycle>(config_.fetch_to_dispatch_delay);
    fi.shadow_iline = pending_iline_;
    fi.shadow_itlb = pending_itlb_;
    pending_iline_ = DynInst::kNoShadow;
    pending_itlb_ = DynInst::kNoShadow;
    ++stats_.fetched_instrs;

    if (inst->op == OpClass::kHalt) {
      fetch_queue_.push_back(fi);
      fetch_stalled_ = true;  // nothing sensible follows a halt
      break;
    }
    if (inst->is_branch()) {
      const auto pred = predictor_.predict(fetch_pc_, *inst);
      fi.predicted_taken = pred.taken;
      if (!pred.target_known) {
        fi.predicted_next = 0;  // no target: stall until resolution
        fetch_queue_.push_back(fi);
        fetch_stalled_ = true;
        break;
      }
      fi.predicted_next =
          pred.taken ? pred.target : fetch_pc_ + isa::kInstrBytes;
      fetch_queue_.push_back(fi);
      fetch_pc_ = fi.predicted_next;
      if (pred.taken) break;  // taken-branch fetch break
      continue;
    }

    fi.predicted_next = fetch_pc_ + isa::kInstrBytes;
    fetch_queue_.push_back(fi);
    fetch_pc_ += isa::kInstrBytes;
  }
}

// --------------------------------------------------------------------------
// Phase control.
// --------------------------------------------------------------------------

void Core::restart_at(Addr pc) {
  for (DynInst& di : rob_) release_shadow(di);
  for (FetchedInst& fi : fetch_queue_) {
    if (fi.shadow_iline != DynInst::kNoShadow) {
      shadow_icache_.release(fi.shadow_iline);
    }
    if (fi.shadow_itlb != DynInst::kNoShadow) {
      shadow_itlb_.release(fi.shadow_itlb);
    }
  }
  rob_.clear();
  fetch_queue_.clear();
  release_pending_fetch_refs();
  unresolved_branches_.clear();
  waiting_.clear();
  next_complete_cycle_ = kNeverCycle;
  promoted_below_seq_ = 0;
  std::fill(std::begin(rename_), std::end(rename_), SeqNum{0});
  loads_in_flight_ = 0;
  stores_in_flight_ = 0;
  fence_active_ = false;
  fetch_stalled_ = false;
  fetch_busy_until_ = cycle_ + 1;
  fetch_pc_ = pc;
  halted_ = false;
}

Addr Core::next_commit_pc() const {
  if (!rob_.empty()) return rob_.front().pc;
  if (!fetch_queue_.empty()) return fetch_queue_.front().pc;
  return fetch_pc_;
}

void Core::restore_arch(const std::array<std::uint64_t, kNumArchRegs>& regs,
                        Addr pc) {
  for (int r = 0; r < kNumArchRegs; ++r) {
    set_reg(static_cast<RegIndex>(r), regs[static_cast<std::size_t>(r)]);
  }
  restart_at(pc);
}

}  // namespace safespec::cpu
