// Dynamic (in-flight) instruction record — one per ROB entry.
//
// Carries everything the paper's design attaches to pipeline entries: the
// usual OoO bookkeeping (operands, result, completion time) plus the
// SafeSpec shadow pointers — the paper augments the load/store queue with
// a pointer to the shadow d-cache line and the ROB with pointers to the
// shadow i-cache / TLB entries (§IV-A/B). Here all four live on the
// DynInst, whose position in the ROB plays both roles.
#pragma once

#include <cassert>
#include <cstdint>
#include <vector>

#include "common/types.h"
#include "isa/instruction.h"
#include "safespec/shadow_structures.h"

namespace safespec::cpu {

/// Why an instruction will raise an exception at commit.
enum class Fault : std::uint8_t {
  kNone,
  kPermission,  ///< user access to a kernel page (deferred — P1)
  kUnmapped,    ///< access to an unmapped page
  kBadFetch,    ///< committed control flow reached a pc with no instruction
};

/// Execution status of a DynInst.
enum class InstState : std::uint8_t {
  kWaiting,    ///< in the issue queue, operands not all ready
  kIssued,     ///< executing; completes at done_cycle
  kDone,       ///< result available; waiting to commit
};

/// One in-flight instruction.
struct DynInst {
  SeqNum seq = 0;
  Addr pc = 0;
  isa::Instruction inst;

  InstState state = InstState::kWaiting;
  Cycle done_cycle = 0;

  // ---- operands / result ---------------------------------------------
  // Each source is either a value (ready) or a pending producer seq.
  std::uint64_t src1_value = 0;
  std::uint64_t src2_value = 0;
  bool src1_ready = true;
  bool src2_ready = true;
  SeqNum src1_producer = 0;
  SeqNum src2_producer = 0;
  std::uint64_t result = 0;

  // ---- memory ----------------------------------------------------------
  Addr effective_addr = 0;   ///< virtual address (valid once issued)
  Addr physical_addr = 0;    ///< after translation
  bool translated = false;
  Fault fault = Fault::kNone;
  bool store_forwarded = false;  ///< load satisfied from the store queue

  // ---- control flow ----------------------------------------------------
  bool predicted_taken = false;
  Addr predicted_next = 0;
  bool target_known = true;  ///< false: BTB missed; fetch stalled on us
  bool branch_resolved = false;
  bool actual_taken = false;
  Addr actual_next = 0;
  bool mispredicted = false;

  // ---- SafeSpec shadow pointers (§IV-A) --------------------------------
  static constexpr int kNoShadow = -1;
  int shadow_dline = kNoShadow;   ///< shadow d-cache entry (loads)
  int shadow_iline = kNoShadow;   ///< shadow i-cache entry (fetch)
  int shadow_dtlb = kNoShadow;    ///< shadow dTLB entry
  int shadow_itlb = kNoShadow;    ///< shadow iTLB entry
  /// Shadow d-cache entries for page-walker lines (the walker issues its
  /// accesses through the load/store path, §IV-A, so its side effects are
  /// shadowed like any other speculative load). One walk acquires at most
  /// kInline (= PageTable::kWalkLevels) refs, so the common case is the
  /// allocation-free inline array; only a kStall retry storm — which
  /// re-walks and re-acquires the same lines every retry cycle — spills
  /// into the overflow vector (empty vectors hold no heap storage).
  struct WalkerRefs {
    static constexpr int kInline = 4;
    int inline_ids[kInline];
    std::uint8_t inline_count = 0;
    std::vector<int> overflow;

    void push_back(int id) {
      if (inline_count < kInline) {
        inline_ids[inline_count++] = id;
      } else {
        overflow.push_back(id);
      }
    }
    void clear() {
      inline_count = 0;
      overflow.clear();
    }
    bool empty() const { return inline_count == 0; }
    std::size_t size() const { return inline_count + overflow.size(); }
    /// Calls fn(id) for every held ref, in acquisition order.
    template <typename Fn>
    void for_each(Fn&& fn) const {
      for (int i = 0; i < inline_count; ++i) fn(inline_ids[i]);
      for (const int id : overflow) fn(id);
    }
  };
  WalkerRefs walker_refs;
  bool shadow_promoted = false;   ///< WFB: promotion already performed

  // ---- scheduler bookkeeping (wakeup lists) ----------------------------
  /// Seqs of consumers that bound an operand to this instruction while it
  /// was in flight. wake_dependents visits exactly these instead of
  /// walking the younger ROB suffix. Entries can go stale after a
  /// squash-rewind reuses seqs — wakeup re-validates against the
  /// consumer's recorded producer, which makes stale entries inert. On
  /// overflow the producer falls back to the full suffix scan.
  static constexpr int kMaxDeps = 8;
  SeqNum deps[kMaxDeps];
  std::uint8_t dep_count = 0;
  bool dep_overflow = false;

  void note_dependent(SeqNum consumer) {
    for (int i = 0; i < dep_count; ++i) {
      if (deps[i] == consumer) return;  // re-bind of the other operand
    }
    if (dep_count < kMaxDeps) {
      deps[dep_count++] = consumer;
    } else {
      dep_overflow = true;
    }
  }

  bool is_load() const { return inst.op == isa::OpClass::kLoad; }
  bool is_store() const { return inst.op == isa::OpClass::kStore; }
  bool is_branch() const { return inst.is_branch(); }
};

}  // namespace safespec::cpu
