// Fixed-capacity circular deque used for the core's pre-sized pipeline
// queues (ROB, fetch buffer). std::deque allocates in chunks, touches the
// allocator on growth, and scatters elements across pages; the pipeline
// queues have hard architectural capacity bounds, so a power-of-two ring
// over one contiguous slab gives O(1) push/pop at both ends, O(1) random
// access, and cache-friendly iteration — the properties the per-cycle ROB
// walks live on.
#pragma once

#include <cassert>
#include <cstddef>
#include <iterator>
#include <utility>
#include <vector>

namespace safespec {

/// Bounded double-ended queue over a power-of-two slab. The caller never
/// pushes past `capacity()` (the pipeline checks occupancy first; push
/// asserts in debug builds). T must be default-constructible (slots are
/// value-initialized up front) and move-assignable.
template <typename T>
class RingBuffer {
 public:
  /// Rounds `min_capacity` up to a power of two (masked index math).
  explicit RingBuffer(std::size_t min_capacity) {
    std::size_t cap = 1;
    while (cap < min_capacity) cap *= 2;
    slab_.resize(cap);
    mask_ = cap - 1;
  }

  std::size_t capacity() const { return slab_.size(); }
  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  T& operator[](std::size_t i) {
    assert(i < size_);
    return slab_[(head_ + i) & mask_];
  }
  const T& operator[](std::size_t i) const {
    assert(i < size_);
    return slab_[(head_ + i) & mask_];
  }

  T& front() { return (*this)[0]; }
  const T& front() const { return (*this)[0]; }
  T& back() { return (*this)[size_ - 1]; }
  const T& back() const { return (*this)[size_ - 1]; }

  void push_back(T value) {
    assert(size_ < slab_.size());
    slab_[(head_ + size_) & mask_] = std::move(value);
    ++size_;
  }

  void pop_front() {
    assert(size_ > 0);
    head_ = (head_ + 1) & mask_;
    --size_;
  }

  void pop_back() {
    assert(size_ > 0);
    --size_;
  }

  void clear() {
    head_ = 0;
    size_ = 0;
  }

  /// Random-access iterator (enough for range-for and <algorithm>).
  template <typename Ring, typename Value>
  class Iter {
   public:
    using iterator_category = std::random_access_iterator_tag;
    using value_type = Value;
    using difference_type = std::ptrdiff_t;
    using pointer = Value*;
    using reference = Value&;

    Iter() = default;
    Iter(Ring* ring, std::size_t pos) : ring_(ring), pos_(pos) {}

    reference operator*() const { return (*ring_)[pos_]; }
    pointer operator->() const { return &(*ring_)[pos_]; }
    reference operator[](difference_type n) const {
      return (*ring_)[pos_ + static_cast<std::size_t>(n)];
    }

    Iter& operator++() { ++pos_; return *this; }
    Iter operator++(int) { Iter t = *this; ++pos_; return t; }
    Iter& operator--() { --pos_; return *this; }
    Iter operator--(int) { Iter t = *this; --pos_; return t; }
    Iter& operator+=(difference_type n) { pos_ += n; return *this; }
    Iter& operator-=(difference_type n) { pos_ -= n; return *this; }
    friend Iter operator+(Iter it, difference_type n) { return it += n; }
    friend Iter operator+(difference_type n, Iter it) { return it += n; }
    friend Iter operator-(Iter it, difference_type n) { return it -= n; }
    friend difference_type operator-(const Iter& a, const Iter& b) {
      return static_cast<difference_type>(a.pos_) -
             static_cast<difference_type>(b.pos_);
    }
    friend bool operator==(const Iter& a, const Iter& b) {
      return a.pos_ == b.pos_;
    }
    friend bool operator!=(const Iter& a, const Iter& b) {
      return a.pos_ != b.pos_;
    }
    friend bool operator<(const Iter& a, const Iter& b) {
      return a.pos_ < b.pos_;
    }
    friend bool operator>(const Iter& a, const Iter& b) { return b < a; }
    friend bool operator<=(const Iter& a, const Iter& b) { return !(b < a); }
    friend bool operator>=(const Iter& a, const Iter& b) { return !(a < b); }

   private:
    Ring* ring_ = nullptr;
    std::size_t pos_ = 0;  ///< logical index from the front
  };

  using iterator = Iter<RingBuffer, T>;
  using const_iterator = Iter<const RingBuffer, const T>;

  iterator begin() { return {this, 0}; }
  iterator end() { return {this, size_}; }
  const_iterator begin() const { return {this, 0}; }
  const_iterator end() const { return {this, size_}; }

 private:
  std::vector<T> slab_;
  std::size_t mask_ = 0;
  std::size_t head_ = 0;
  std::size_t size_ = 0;
};

}  // namespace safespec
