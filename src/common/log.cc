#include "common/log.h"

namespace safespec {

namespace {
LogLevel g_level = LogLevel::kNone;

const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kNone:
      break;
  }
  return "?";
}
}  // namespace

LogLevel log_level() { return g_level; }
void set_log_level(LogLevel level) { g_level = level; }

namespace detail {
void emit(LogLevel level, const std::string& message) {
  std::cerr << "[" << level_tag(level) << "] " << message << "\n";
}
}  // namespace detail

}  // namespace safespec
