// Shared string-keyed registry used by the protection-policy and
// machine-preset registries: mutex-guarded name -> value map whose
// lookup failures list every registered name (so a typo in a config
// file or --set flag is self-diagnosing).
#pragma once

#include <map>
#include <mutex>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace safespec {

template <typename Value>
class NamedRegistry {
 public:
  /// `kind` names the registered thing in error messages
  /// ("protection policy", "machine preset").
  explicit NamedRegistry(std::string kind) : kind_(std::move(kind)) {}

  /// Looks up `name`. Throws std::out_of_range listing every registered
  /// name when unknown. The returned reference stays valid for the
  /// registry's lifetime (entries are never removed).
  const Value& at(const std::string& name) const {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = map_.find(name);
    if (it == map_.end()) {
      std::string known;
      for (const auto& [key, unused] : map_) {
        if (!known.empty()) known += ", ";
        known += key;
      }
      throw std::out_of_range("unknown " + kind_ + " \"" + name +
                              "\" (registered: " + known + ")");
    }
    return it->second;
  }

  bool contains(const std::string& name) const {
    std::lock_guard<std::mutex> lock(mutex_);
    return map_.count(name) != 0;
  }

  /// All registered names, sorted.
  std::vector<std::string> names() const {
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<std::string> out;
    out.reserve(map_.size());
    for (const auto& [key, unused] : map_) out.push_back(key);
    return out;
  }

  /// Registers `value` under `name`; throws std::invalid_argument if
  /// the name is already taken.
  void add(const std::string& name, Value value) {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!map_.emplace(name, std::move(value)).second) {
      throw std::invalid_argument(kind_ + " \"" + name +
                                  "\" is already registered");
    }
  }

 private:
  mutable std::mutex mutex_;
  std::string kind_;
  std::map<std::string, Value> map_;
};

}  // namespace safespec
