// Minimal JSON reading/writing shared by every config surface.
//
// A self-contained value type + recursive-descent parser covering the
// subset the project's config documents use (objects, arrays, strings,
// numbers, booleans, null), plus an indenting writer with stable key
// order so emitted documents round-trip. Numbers keep their raw token so
// 64-bit addresses survive exactly; quoted "0x..." strings are accepted
// wherever an integer is expected, so memory maps can be written in hex.
//
// Grown out of sim/machine.cc (MachineSpec JSON) when the fuzzing
// subsystem needed the same machinery for FuzzSpec documents.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace safespec::json {

/// One parsed JSON value.
struct Value {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  std::string text;  ///< raw number token or string contents
  std::vector<Value> array;
  std::vector<std::pair<std::string, Value>> object;

  /// First member with the given key; nullptr when absent (or not an
  /// object).
  const Value* find(const std::string& key) const {
    for (const auto& [k, v] : object) {
      if (k == key) return &v;
    }
    return nullptr;
  }
};

/// Parses one complete document. Throws std::invalid_argument with the
/// byte offset on malformed input.
Value parse(const std::string& text);

/// Reads a whole file into a string ("<what> file" names it in the
/// error). Throws std::invalid_argument when the file cannot be read —
/// the shared front half of every from_json_file.
std::string read_file(const std::string& path, const char* what = "JSON");

/// Reads and parses a whole file. Throws std::invalid_argument when the
/// file cannot be read or does not parse.
Value parse_file(const std::string& path);

// ---- typed field readers ----------------------------------------------------
// The read_* helpers are tolerant of absent keys (the out-param keeps its
// value), so a config document only needs the deltas it cares about;
// present-but-mistyped values throw.

/// "123" or "0x7b" -> 123. Rejects signs, garbage and overflow; `where`
/// names the field in the error message.
std::uint64_t parse_u64(const std::string& token, const std::string& where);

std::uint64_t as_u64(const Value& v, const std::string& where);
double as_double(const Value& v, const std::string& where);

void read_u64(const Value& obj, const char* key, std::uint64_t& out);
void read_int(const Value& obj, const char* key, int& out);
void read_double(const Value& obj, const char* key, double& out);
void read_bool(const Value& obj, const char* key, bool& out);
void read_string(const Value& obj, const char* key, std::string& out);

// ---- writing ----------------------------------------------------------------

/// Streaming writer producing the pretty-printed two-space-indented
/// layout every to_json() in the project emits.
class Writer {
 public:
  std::string take() { return std::move(out_); }

  void open(const char* key = nullptr) { open_scope(key, '{'); }
  void open_array(const char* key) { open_scope(key, '['); }
  void close() { close_scope('}'); }
  void close_array() { close_scope(']'); }

  void field(const char* key, std::uint64_t value);
  void field(const char* key, int value);
  void field(const char* key, double value);
  void field(const char* key, bool value);
  void field(const char* key, const std::string& value);
  void field(const char* key, const char* value) {
    field(key, std::string(value));
  }

 private:
  void open_scope(const char* key, char bracket);
  void close_scope(char bracket);
  void item(const char* key, const std::string& rendered);
  void begin_item();
  void indent() { out_.append(static_cast<std::size_t>(depth_) * 2, ' '); }

  std::string out_;
  int depth_ = 0;
  bool fresh_scope_ = false;
};

}  // namespace safespec::json
