// Open-addressing hash map keyed by Addr, for the simulator's per-access
// lookups (memory words, page permissions, translations, program text).
// std::unordered_map costs a modulo, a chain dereference, and an
// allocation per node; these tables are looked up on every simulated
// load/store/fetch, never erased from, and iterated only by cold paths —
// exactly the profile linear probing over one flat slab is built for.
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/hash.h"
#include "common/types.h"

namespace safespec {

/// Insert/lookup-only flat hash map (no per-key erase; clear() drops
/// everything). Values must be default-constructible. Iteration order is
/// unspecified — callers that expose contents sort first.
template <typename V>
class AddrMap {
 public:
  AddrMap() : slots_(kMinCapacity), mask_(kMinCapacity - 1) {}

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  bool contains(Addr key) const { return find(key) != nullptr; }

  const V* find(Addr key) const {
    const Slot& s = slots_[probe(key)];
    return s.used ? &s.value : nullptr;
  }
  V* find(Addr key) {
    Slot& s = slots_[probe(key)];
    return s.used ? &s.value : nullptr;
  }

  /// Value for `key`, default-constructed and inserted when absent.
  V& operator[](Addr key) {
    std::size_t i = probe(key);
    if (!slots_[i].used) {
      if ((size_ + 1) * 2 > slots_.size()) {  // keep load factor <= 50%
        grow();
        i = probe(key);
      }
      slots_[i].used = true;
      slots_[i].key = key;
      ++size_;
    }
    return slots_[i].value;
  }

  void clear() {
    slots_.assign(kMinCapacity, Slot{});
    mask_ = kMinCapacity - 1;
    size_ = 0;
  }

  /// Calls fn(key, const V&) for every element, in unspecified order.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (const Slot& s : slots_) {
      if (s.used) fn(s.key, s.value);
    }
  }

 private:
  struct Slot {
    Addr key = 0;
    V value{};
    bool used = false;
  };

  static constexpr std::size_t kMinCapacity = 16;

  /// Index of `key`'s slot: the one holding it, or the first empty slot
  /// of its probe chain. Always terminates at <= 50% load.
  std::size_t probe(Addr key) const {
    std::size_t i = mix64(key) & mask_;
    while (slots_[i].used && slots_[i].key != key) i = (i + 1) & mask_;
    return i;
  }

  void grow() {
    std::vector<Slot> old = std::move(slots_);
    slots_.assign(old.size() * 2, Slot{});
    mask_ = slots_.size() - 1;
    for (Slot& s : old) {
      if (!s.used) continue;
      std::size_t i = probe(s.key);
      assert(!slots_[i].used);
      slots_[i] = std::move(s);
    }
  }

  std::vector<Slot> slots_;
  std::size_t mask_;
  std::size_t size_ = 0;
};

}  // namespace safespec
