// Paged backing array with a hash-map overflow, for the simulator's
// hottest per-access lookups (memory words, page permissions, program
// text). AddrMap already beats std::unordered_map, but it still pays a
// hash mix and a probe per lookup. The address streams these tables serve
// are overwhelmingly *dense* — a workload's data region, a program's
// text — so a page directory indexed directly by the key's high bits
// turns the common lookup into shift / bounds-check / load. Keys past the
// directory's reach (sparse, huge — e.g. synthetic high addresses) fall
// back to an AddrMap so correctness never depends on density.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/addr_map.h"
#include "common/types.h"

namespace safespec {

/// Insert/lookup-only map keyed by Addr (no per-key erase; clear() drops
/// everything — the same contract as AddrMap). Values must be
/// default-constructible. Iteration order is unspecified.
template <typename V>
class PagedAddrMap {
 public:
  PagedAddrMap() = default;
  PagedAddrMap(PagedAddrMap&&) = default;
  PagedAddrMap& operator=(PagedAddrMap&&) = default;
  // Deep copies: Program and MainMemory are value types the harnesses
  // copy freely (one machine per cell), so the backing pages must clone.
  PagedAddrMap(const PagedAddrMap& other) { *this = other; }
  PagedAddrMap& operator=(const PagedAddrMap& other) {
    if (this == &other) return *this;
    dir_.clear();
    dir_.reserve(other.dir_.size());
    for (const auto& page : other.dir_) {
      dir_.push_back(page ? std::make_unique<Page>(*page) : nullptr);
    }
    overflow_ = other.overflow_;
    direct_size_ = other.direct_size_;
    return *this;
  }

  std::size_t size() const { return direct_size_ + overflow_.size(); }
  bool empty() const { return size() == 0; }

  bool contains(Addr key) const { return find(key) != nullptr; }

  const V* find(Addr key) const {
    const Addr page = key >> kPageBits;
    if (page < dir_.size()) {
      const Page* p = dir_[page].get();
      if (p == nullptr) return nullptr;
      const std::size_t off = key & kPageMask;
      return p->is_present(off) ? &p->values[off] : nullptr;
    }
    if (page < kMaxDirectPages) return nullptr;  // direct range, never set
    return overflow_.find(key);
  }
  V* find(Addr key) {
    return const_cast<V*>(static_cast<const PagedAddrMap*>(this)->find(key));
  }

  /// Value for `key`, default-constructed and inserted when absent.
  V& operator[](Addr key) {
    const Addr page = key >> kPageBits;
    if (page >= kMaxDirectPages) return overflow_[key];
    if (page >= dir_.size()) dir_.resize(page + 1);
    if (dir_[page] == nullptr) dir_[page] = std::make_unique<Page>();
    Page& p = *dir_[page];
    const std::size_t off = key & kPageMask;
    if (!p.is_present(off)) {
      p.present[off >> 6] |= 1ULL << (off & 63);
      ++direct_size_;
    }
    return p.values[off];
  }

  void clear() {
    dir_.clear();
    overflow_.clear();
    direct_size_ = 0;
  }

  /// Calls fn(key, const V&) for every element, in unspecified order.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (std::size_t page = 0; page < dir_.size(); ++page) {
      const Page* p = dir_[page].get();
      if (p == nullptr) continue;
      for (std::size_t off = 0; off < kPageEntries; ++off) {
        if (p->is_present(off)) {
          fn((static_cast<Addr>(page) << kPageBits) | off, p->values[off]);
        }
      }
    }
    overflow_.for_each(fn);
  }

 private:
  /// 4096 entries per page: one 64-bit-word page spans 32 KiB of data, a
  /// text page spans 16 KiB of instructions — a handful of slabs covers
  /// any workload region while a stray far-away key costs one slab.
  static constexpr int kPageBits = 12;
  static constexpr std::size_t kPageEntries = std::size_t{1} << kPageBits;
  static constexpr Addr kPageMask = kPageEntries - 1;
  /// Directory reach: 2^20 pages (an 8 MiB pointer directory at worst)
  /// covers keys below 2^32; anything higher goes to the overflow map.
  static constexpr Addr kMaxDirectPages = Addr{1} << 20;

  struct Page {
    V values[kPageEntries]{};
    std::uint64_t present[kPageEntries / 64]{};
    bool is_present(std::size_t off) const {
      return (present[off >> 6] >> (off & 63)) & 1;
    }
  };

  std::vector<std::unique_ptr<Page>> dir_;
  AddrMap<V> overflow_;
  std::size_t direct_size_ = 0;
};

}  // namespace safespec
