// Shared integer hashing for the simulator's flat hash structures.
#pragma once

#include <cstddef>
#include <string_view>

#include "common/types.h"

namespace safespec {

/// splitmix64 finalizer. The hot-path tables (shadow-structure index,
/// AddrMap) key on line/page/word numbers with strong sequential
/// structure; a masked identity hash would pile those into one probe
/// chain, so every open-addressing user routes keys through this mixer.
inline std::size_t mix64(Addr key) {
  key = (key ^ (key >> 30)) * 0xbf58476d1ce4e5b9ULL;
  key = (key ^ (key >> 27)) * 0x94d049bb133111ebULL;
  return static_cast<std::size_t>(key ^ (key >> 31));
}

/// FNV-1a over bytes. Not for hot-path tables — this is the stable
/// content fingerprint (campaign manifests stamp it into every shard
/// journal header so a resumed run refuses a journal written under a
/// different manifest revision).
inline std::uint64_t fnv1a64(std::string_view bytes) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : bytes) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace safespec
