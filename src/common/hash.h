// Shared integer hashing for the simulator's flat hash structures.
#pragma once

#include <cstddef>

#include "common/types.h"

namespace safespec {

/// splitmix64 finalizer. The hot-path tables (shadow-structure index,
/// AddrMap) key on line/page/word numbers with strong sequential
/// structure; a masked identity hash would pile those into one probe
/// chain, so every open-addressing user routes keys through this mixer.
inline std::size_t mix64(Addr key) {
  key = (key ^ (key >> 30)) * 0xbf58476d1ce4e5b9ULL;
  key = (key ^ (key >> 27)) * 0x94d049bb133111ebULL;
  return static_cast<std::size_t>(key ^ (key >> 31));
}

}  // namespace safespec
