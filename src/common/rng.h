// Deterministic pseudo-random number generation for reproducible
// simulations. Wraps xoshiro256** (public-domain algorithm by Blackman &
// Vigna) plus the convenience draws the workload generators need.
#pragma once

#include <cstdint>

#include "common/types.h"

namespace safespec {

/// Deterministic, seedable RNG. Every simulator component that needs
/// randomness owns (or is lent) one of these so runs are bit-reproducible
/// regardless of evaluation order.
class Rng {
 public:
  /// Seeds the generator; a splitmix64 scramble expands the single seed
  /// into the four 64-bit words of xoshiro state.
  explicit Rng(std::uint64_t seed = 0x5afe5afeULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    std::uint64_t x = seed;
    for (auto& word : state_) {
      // splitmix64 step.
      x += 0x9e3779b97f4a7c15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      word = z ^ (z >> 31);
    }
  }

  /// Uniform 64-bit draw (xoshiro256** core step).
  std::uint64_t next() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). bound must be > 0.
  ///
  /// Lemire's multiply-shift with rejection (Lemire 2019, "Fast Random
  /// Integer Generation in an Interval"): the old `next() % bound` was
  /// biased toward small values whenever bound did not divide 2^64 —
  /// negligible for tiny bounds but up to a factor-2 skew as bound
  /// approaches 2^63, which distorted generator distributions away from
  /// their configured weights. Rejection makes every value exactly
  /// equally likely; the draw sequence differs from the modulo era, so
  /// seed-dependent expectations were re-blessed when this landed.
  std::uint64_t below(std::uint64_t bound) {
    unsigned __int128 m =
        static_cast<unsigned __int128>(next()) * bound;
    auto low = static_cast<std::uint64_t>(m);
    if (low < bound) {
      // 2^64 mod bound, computed without 128-bit division.
      const std::uint64_t threshold = (0 - bound) % bound;
      while (low < threshold) {
        m = static_cast<unsigned __int128>(next()) * bound;
        low = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::uint64_t range(std::uint64_t lo, std::uint64_t hi) {
    return lo + below(hi - lo + 1);
  }

  /// Bernoulli draw with probability p (clamped to [0,1]).
  bool chance(double p) {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return uniform() < p;
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4] = {};
};

}  // namespace safespec
