#include "common/cli.h"

#include <cstdlib>
#include <cstring>

#include "common/json.h"

namespace safespec::cli {

std::vector<std::string> split_csv(const std::string& text) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t comma = text.find(',', start);
    const std::size_t end = comma == std::string::npos ? text.size() : comma;
    if (end > start) out.push_back(text.substr(start, end - start));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return out;
}

std::uint64_t parse_u64_or_exit(const char* value, const char* flag) {
  try {
    return json::parse_u64(value, flag);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n", e.what());
    std::exit(2);
  }
}

int parse_int_or_exit(const char* value, const char* flag,
                      std::uint64_t max) {
  const std::uint64_t v = parse_u64_or_exit(value, flag);
  if (v > max) {
    std::fprintf(stderr, "%s=%s is out of range\n", flag, value);
    std::exit(2);
  }
  return static_cast<int>(v);
}

FlagSet& FlagSet::value(const char* name, ValueHandler handler,
                        bool separated) {
  Flag f;
  f.name = name;
  f.takes_value = true;
  f.separated = separated;
  f.on_value = std::move(handler);
  flags_.push_back(std::move(f));
  return *this;
}

FlagSet& FlagSet::boolean(const char* name, std::function<void()> handler) {
  Flag f;
  f.name = name;
  f.on_bare = std::move(handler);
  flags_.push_back(std::move(f));
  return *this;
}

FlagSet& FlagSet::u64(const char* name, std::uint64_t* out, bool separated) {
  const std::string flag = name;
  return value(
      name,
      [out, flag](const char* v) {
        *out = parse_u64_or_exit(v, flag.c_str());
      },
      separated);
}

FlagSet& FlagSet::bounded_int(const char* name, int* out, bool separated) {
  const std::string flag = name;
  return value(
      name,
      [out, flag](const char* v) {
        *out = parse_int_or_exit(v, flag.c_str());
      },
      separated);
}

FlagSet& FlagSet::string(const char* name, std::string* out, bool separated) {
  return value(
      name, [out](const char* v) { *out = v; }, separated);
}

FlagSet& FlagSet::csv_list(const char* name, std::vector<std::string>* out,
                           bool separated) {
  return value(
      name, [out](const char* v) { *out = split_csv(v); }, separated);
}

FlagSet& FlagSet::repeated(const char* name, std::vector<std::string>* out,
                           bool separated) {
  return value(
      name, [out](const char* v) { out->emplace_back(v); }, separated);
}

FlagSet& FlagSet::set_true(const char* name, bool* out) {
  return boolean(name, [out] { *out = true; });
}

FlagSet& FlagSet::allow_positional() {
  allow_positional_ = true;
  return *this;
}

FlagSet& FlagSet::unknown_label(const char* label) {
  unknown_label_ = label;
  return *this;
}

std::vector<std::string> FlagSet::parse(int argc, char** argv) {
  std::vector<std::string> positional;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--help") == 0 || std::strcmp(arg, "-h") == 0) {
      usage_(argv[0], stdout);
      std::exit(0);
    }
    bool matched = false;
    for (const Flag& flag : flags_) {
      if (flag.takes_value) {
        const std::size_t len = flag.name.size();
        if (std::strncmp(arg, flag.name.c_str(), len) == 0 &&
            arg[len] == '=') {
          flag.on_value(arg + len + 1);
          matched = true;
          break;
        }
        if (flag.separated && flag.name == arg && i + 1 < argc) {
          flag.on_value(argv[++i]);
          matched = true;
          break;
        }
      } else if (flag.name == arg) {
        flag.on_bare();
        matched = true;
        break;
      }
    }
    if (matched) continue;
    if (allow_positional_ && std::strncmp(arg, "--", 2) != 0) {
      positional.emplace_back(arg);
      continue;
    }
    std::fprintf(stderr, "unknown %s: %s\n", unknown_label_.c_str(), arg);
    usage_(argv[0], stderr);
    std::exit(2);
  }
  return positional;
}

// ---- the bench flag family --------------------------------------------------

namespace {

void print_bench_usage(const char* prog, const char* extra_usage,
                       std::uint64_t default_instrs, std::FILE* out) {
  std::fprintf(out,
               "usage: %s [--threads=N] [--csv=PATH] [--json=PATH] "
               "[--instrs=N] [--config=FILE] [--set=key=value]%s%s\n"
               "  --threads=N      worker threads for the sweep "
               "(default: hardware concurrency)\n"
               "  --csv=PATH       also write every table as CSV\n"
               "  --json=PATH      also write every table as JSON\n"
               "  --instrs=N       committed instructions per cell "
               "(default %llu)\n"
               "  --config=FILE    base machine as a MachineSpec JSON file\n"
               "                   (default: the \"skylake\" preset)\n"
               "  --set=key=value  override one machine field (repeatable):\n"
               "                   preset=embedded, policy=WFB-stall,\n"
               "                   rob_entries=64, shadow_dcache.entries=16,\n"
               "                   ... (see MachineSpec::set); a bench whose\n"
               "                   variant axis *is* the policy overrides\n"
               "                   policy= per variant\n",
               prog, extra_usage ? " " : "", extra_usage ? extra_usage : "",
               static_cast<unsigned long long>(default_instrs));
}

}  // namespace

BenchOptions parse_bench_args(int argc, char** argv, const char* extra_usage,
                              std::uint64_t default_instrs) {
  BenchOptions opts;
  opts.instrs = default_instrs;
  const std::string extra = extra_usage ? extra_usage : "";
  const bool have_extra = extra_usage != nullptr;
  FlagSet flags([extra, have_extra, default_instrs](const char* prog,
                                                    std::FILE* out) {
    print_bench_usage(prog, have_extra ? extra.c_str() : nullptr,
                      default_instrs, out);
  });
  // The historical bench loop parsed --threads with atoi and --instrs
  // with strtoull — tolerant of trailing garbage. Kept bit-for-bit.
  flags.value("--threads",
              [&opts](const char* v) { opts.threads = std::atoi(v); });
  flags.string("--csv", &opts.csv_path);
  flags.string("--json", &opts.json_path);
  flags.value("--instrs", [&opts](const char* v) {
    opts.instrs = std::strtoull(v, nullptr, 10);
  });
  flags.string("--config", &opts.config_path, /*separated=*/true);
  flags.repeated("--set", &opts.overrides, /*separated=*/true);
  flags.allow_positional().unknown_label("flag");
  opts.positional = flags.parse(argc, argv);
  return opts;
}

}  // namespace safespec::cli
