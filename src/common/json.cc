#include "common/json.h"

#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace safespec::json {

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Value parse() {
    Value value = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after document");
    return value;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw std::invalid_argument("JSON error at offset " +
                                std::to_string(pos_) + ": " + what);
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  char peek() {
    skip_ws();
    if (pos_ >= text_.size()) fail("unexpected end of document");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(const char* literal) {
    const std::size_t len = std::strlen(literal);
    if (text_.compare(pos_, len, literal) == 0) {
      pos_ += len;
      return true;
    }
    return false;
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c == '\\') {
        if (pos_ >= text_.size()) fail("unterminated escape");
        const char esc = text_[pos_++];
        switch (esc) {
          case '"': c = '"'; break;
          case '\\': c = '\\'; break;
          case '/': c = '/'; break;
          case 'n': c = '\n'; break;
          case 't': c = '\t'; break;
          case 'r': c = '\r'; break;
          default: fail("unsupported escape sequence");
        }
      }
      out += c;
    }
    if (pos_ >= text_.size()) fail("unterminated string");
    ++pos_;  // closing quote
    return out;
  }

  Value parse_value() {
    const char c = peek();
    Value value;
    if (c == '{') {
      value.kind = Value::Kind::kObject;
      ++pos_;
      if (peek() == '}') {
        ++pos_;
        return value;
      }
      for (;;) {
        std::string key = parse_string();
        expect(':');
        value.object.emplace_back(std::move(key), parse_value());
        if (peek() == ',') {
          ++pos_;
          continue;
        }
        expect('}');
        return value;
      }
    }
    if (c == '[') {
      value.kind = Value::Kind::kArray;
      ++pos_;
      if (peek() == ']') {
        ++pos_;
        return value;
      }
      for (;;) {
        value.array.push_back(parse_value());
        if (peek() == ',') {
          ++pos_;
          continue;
        }
        expect(']');
        return value;
      }
    }
    if (c == '"') {
      value.kind = Value::Kind::kString;
      value.text = parse_string();
      return value;
    }
    if (consume_literal("true")) {
      value.kind = Value::Kind::kBool;
      value.boolean = true;
      return value;
    }
    if (consume_literal("false")) {
      value.kind = Value::Kind::kBool;
      value.boolean = false;
      return value;
    }
    if (consume_literal("null")) return value;
    if (c == '-' || std::isdigit(static_cast<unsigned char>(c))) {
      value.kind = Value::Kind::kNumber;
      const std::size_t start = pos_;
      if (text_[pos_] == '-') ++pos_;
      while (pos_ < text_.size() &&
             (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
              text_[pos_] == '.' || text_[pos_] == 'e' ||
              text_[pos_] == 'E' || text_[pos_] == '+' ||
              text_[pos_] == '-')) {
        ++pos_;
      }
      value.text = text_.substr(start, pos_ - start);
      return value;
    }
    fail("unexpected character");
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

Value parse(const std::string& text) { return Parser(text).parse(); }

std::string read_file(const std::string& path, const char* what) {
  std::ifstream in(path);
  if (!in) {
    throw std::invalid_argument(std::string("cannot read ") + what +
                                " file: " + path);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

Value parse_file(const std::string& path) {
  return parse(read_file(path));
}

// ---- typed field readers ----------------------------------------------------

std::uint64_t parse_u64(const std::string& token, const std::string& where) {
  char* end = nullptr;
  const int base = token.compare(0, 2, "0x") == 0 ? 16 : 10;
  errno = 0;
  const std::uint64_t value = std::strtoull(token.c_str(), &end, base);
  // strtoull silently wraps "-5" to 2^64-5; every field here is a size,
  // count or latency, so a sign is always a mistake worth diagnosing.
  if (end == token.c_str() || *end != '\0' || token[0] == '-' ||
      errno == ERANGE) {
    throw std::invalid_argument("expected a non-negative integer for \"" +
                                where + "\", got \"" + token + "\"");
  }
  return value;
}

std::uint64_t as_u64(const Value& v, const std::string& where) {
  if (v.kind != Value::Kind::kNumber && v.kind != Value::Kind::kString) {
    throw std::invalid_argument("expected a number for \"" + where + "\"");
  }
  return parse_u64(v.text, where);
}

double as_double(const Value& v, const std::string& where) {
  if (v.kind != Value::Kind::kNumber) {
    throw std::invalid_argument("expected a number for \"" + where + "\"");
  }
  char* end = nullptr;
  const double value = std::strtod(v.text.c_str(), &end);
  if (end == v.text.c_str() || *end != '\0') {
    throw std::invalid_argument("malformed number for \"" + where +
                                "\": \"" + v.text + "\"");
  }
  return value;
}

void read_u64(const Value& obj, const char* key, std::uint64_t& out) {
  if (const Value* v = obj.find(key)) out = as_u64(*v, key);
}

void read_int(const Value& obj, const char* key, int& out) {
  if (const Value* v = obj.find(key)) {
    out = static_cast<int>(as_u64(*v, key));
  }
}

void read_double(const Value& obj, const char* key, double& out) {
  if (const Value* v = obj.find(key)) out = as_double(*v, key);
}

void read_bool(const Value& obj, const char* key, bool& out) {
  if (const Value* v = obj.find(key)) {
    if (v->kind != Value::Kind::kBool) {
      throw std::invalid_argument(std::string("expected true/false for \"") +
                                  key + "\"");
    }
    out = v->boolean;
  }
}

void read_string(const Value& obj, const char* key, std::string& out) {
  if (const Value* v = obj.find(key)) {
    if (v->kind != Value::Kind::kString) {
      throw std::invalid_argument(std::string("expected a string for \"") +
                                  key + "\"");
    }
    out = v->text;
  }
}

// ---- writing ----------------------------------------------------------------

void Writer::field(const char* key, std::uint64_t value) {
  item(key, std::to_string(value));
}

void Writer::field(const char* key, int value) {
  item(key, std::to_string(value));
}

void Writer::field(const char* key, double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  // %.17g prints integral doubles without a decimal point; keep the token
  // unambiguously a number either way (JSON accepts both forms).
  item(key, buf);
}

void Writer::field(const char* key, bool value) {
  item(key, value ? "true" : "false");
}

void Writer::field(const char* key, const std::string& value) {
  std::string escaped = "\"";
  for (char c : value) {
    if (c == '"' || c == '\\') escaped += '\\';
    escaped += c;
  }
  escaped += '"';
  item(key, escaped);
}

void Writer::open_scope(const char* key, char bracket) {
  begin_item();
  if (key != nullptr) out_ += std::string("\"") + key + "\": ";
  out_ += bracket;
  ++depth_;
  fresh_scope_ = true;
}

void Writer::close_scope(char bracket) {
  --depth_;
  if (!fresh_scope_) {
    out_ += '\n';
    indent();
  }
  out_ += bracket;
  fresh_scope_ = false;
}

void Writer::item(const char* key, const std::string& rendered) {
  begin_item();
  if (key != nullptr) out_ += std::string("\"") + key + "\": ";
  out_ += rendered;
}

void Writer::begin_item() {
  if (depth_ > 0) {
    if (!fresh_scope_) out_ += ',';
    out_ += '\n';
    indent();
  }
  fresh_scope_ = false;
}

}  // namespace safespec::json
