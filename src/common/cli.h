// Shared command-line layer for every driver, bench and tool.
//
// Before this header existed, perf_driver, fuzz_driver, trace_record and
// the bench binaries each carried their own copy of the same
// flag_value() / parse-loop / usage boilerplate. FlagSet is the one
// implementation they all sit on now: a tool registers its flags with
// handlers (so each tool keeps its exact historical parse semantics —
// strict json::parse_u64 where it was strict, tolerant atoi where it was
// tolerant), hands over its verbatim usage printer, and gets the shared
// loop: --help/-h to stdout + exit 0, "--flag=value" everywhere,
// optional "--flag value", unknown-flag error + usage to stderr +
// exit 2, optional positional passthrough. Migrating a tool onto FlagSet
// must not change a single byte of its --help output or its
// accepted/rejected argv behavior.
#pragma once

#include <cstdint>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

namespace safespec::cli {

/// "a,b,c" -> {"a","b","c"}; empty segments are dropped (",a,," -> {"a"}).
std::vector<std::string> split_csv(const std::string& text);

/// Strict numeric flag parsing: a typo'd "--count=abc" must fail loudly,
/// not silently run zero work and exit green. Prints the parse error and
/// exits(2); `flag` names the flag in the message.
std::uint64_t parse_u64_or_exit(const char* value, const char* flag);

/// parse_u64_or_exit bounded to a sane int range (exit 2 past `max`).
int parse_int_or_exit(const char* value, const char* flag,
                      std::uint64_t max = 10'000'000);

/// Declarative flag table + the parse loop shared by every tool.
class FlagSet {
 public:
  /// Usage printer, called with (argv[0], stream) on --help (stdout,
  /// exit 0) and after a bad flag (stderr, before exit 2).
  using Usage = std::function<void(const char* prog, std::FILE* out)>;
  /// Receives the flag's value ("--name=value" payload, or the following
  /// argv word when the flag was registered with `separated`).
  using ValueHandler = std::function<void(const char* value)>;

  explicit FlagSet(Usage usage) : usage_(std::move(usage)) {}

  /// --name=VALUE; with separated=true, "--name VALUE" is accepted too.
  /// A separated flag at the end of argv (no value word) is NOT matched —
  /// it falls through to the unknown-flag error, exactly as the
  /// hand-rolled loops behaved.
  FlagSet& value(const char* name, ValueHandler handler,
                 bool separated = false);
  /// Bare --name (no value).
  FlagSet& boolean(const char* name, std::function<void()> handler);

  // Typed conveniences over value(): all use the strict parsers above.
  FlagSet& u64(const char* name, std::uint64_t* out, bool separated = false);
  FlagSet& bounded_int(const char* name, int* out, bool separated = false);
  FlagSet& string(const char* name, std::string* out, bool separated = false);
  FlagSet& csv_list(const char* name, std::vector<std::string>* out,
                    bool separated = false);
  /// Repeatable: each occurrence appends.
  FlagSet& repeated(const char* name, std::vector<std::string>* out,
                    bool separated = false);
  /// Bare flag that just sets *out = true.
  FlagSet& set_true(const char* name, bool* out);

  /// Arguments that match no flag and do not start with "--" collect as
  /// positionals instead of erroring (the bench convention). Without
  /// this, ANY unmatched argument is an error (the driver convention).
  FlagSet& allow_positional();

  /// The word used in the unmatched-argument error: benches print
  /// "unknown flag: ...", drivers print "unknown argument: ...".
  FlagSet& unknown_label(const char* label);

  /// Runs the loop over argv[1..); returns collected positionals.
  /// --help/-h prints usage to stdout and exits 0; an unmatched argument
  /// prints "unknown <label>: ARG", the usage to stderr, and exits 2.
  std::vector<std::string> parse(int argc, char** argv);

 private:
  struct Flag {
    std::string name;
    bool takes_value = false;
    bool separated = false;
    ValueHandler on_value;
    std::function<void()> on_bare;
  };

  Usage usage_;
  std::vector<Flag> flags_;
  bool allow_positional_ = false;
  std::string unknown_label_ = "argument";
};

// ---- the bench flag family --------------------------------------------------

/// Options every bench accepts: --threads=N, --csv=PATH, --json=PATH,
/// --instrs=N, --config=FILE, --set=key=value (repeatable), --help.
/// (Formerly experiment::BenchOptions; experiment.h aliases it back so
/// bench call sites are unchanged.)
struct BenchOptions {
  int threads = 0;               ///< 0 = hardware concurrency
  std::string csv_path;          ///< empty = no CSV emission
  std::string json_path;         ///< empty = no JSON emission
  std::uint64_t instrs = 0;      ///< default supplied by the caller
  std::string config_path;       ///< --config: MachineSpec JSON file
  std::vector<std::string> overrides;  ///< --set key=value, in order
  std::vector<std::string> positional;
};

/// Parses the shared bench flags; prints usage and exits on --help or an
/// unknown --flag. Positional arguments pass through untouched.
/// `default_instrs` seeds --instrs and appears in the usage text.
BenchOptions parse_bench_args(int argc, char** argv, const char* extra_usage,
                              std::uint64_t default_instrs);

}  // namespace safespec::cli
