#include "common/stats.h"

#include <cmath>

namespace safespec {

double geometric_mean(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double log_sum = 0.0;
  for (double v : values) log_sum += std::log(v);
  return std::exp(log_sum / static_cast<double>(values.size()));
}

double arithmetic_mean(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double sum = 0.0;
  for (double v : values) sum += v;
  return sum / static_cast<double>(values.size());
}

}  // namespace safespec
