// Minimal leveled logging. Off by default so simulations stay quiet and
// fast; tests and debugging sessions can raise the level per-run.
#pragma once

#include <iostream>
#include <sstream>
#include <string>

namespace safespec {

enum class LogLevel { kNone = 0, kWarn = 1, kInfo = 2, kDebug = 3 };

/// Process-wide log level (simulations are single-threaded).
LogLevel log_level();
void set_log_level(LogLevel level);

namespace detail {
void emit(LogLevel level, const std::string& message);
}  // namespace detail

/// Logs `expr` (streamed) when the global level admits `lvl`.
#define SAFESPEC_LOG(lvl, expr)                                     \
  do {                                                              \
    if (static_cast<int>(::safespec::log_level()) >=                \
        static_cast<int>(lvl)) {                                    \
      std::ostringstream oss_;                                      \
      oss_ << expr;                                                 \
      ::safespec::detail::emit(lvl, oss_.str());                    \
    }                                                               \
  } while (false)

#define LOG_WARN(expr) SAFESPEC_LOG(::safespec::LogLevel::kWarn, expr)
#define LOG_INFO(expr) SAFESPEC_LOG(::safespec::LogLevel::kInfo, expr)
#define LOG_DEBUG(expr) SAFESPEC_LOG(::safespec::LogLevel::kDebug, expr)

}  // namespace safespec
