// Fundamental type aliases shared by every SafeSpec subsystem.
#pragma once

#include <cstdint>

namespace safespec {

/// Virtual or physical byte address. The micro-ISA is 64-bit.
using Addr = std::uint64_t;

/// Simulation time in core clock cycles.
using Cycle = std::uint64_t;

/// Architectural register index (the micro-ISA has 32 integer registers).
using RegIndex = std::uint8_t;

/// Monotonic per-core dynamic-instruction sequence number. Age comparisons
/// between in-flight instructions use this (smaller == older).
using SeqNum = std::uint64_t;

/// Number of architectural registers in the micro-ISA.
inline constexpr int kNumArchRegs = 32;

/// Register that always reads as zero and ignores writes (like RISC x0).
inline constexpr RegIndex kZeroReg = 0;

/// Page size used by the memory system (4 KiB, as on x86-64).
inline constexpr Addr kPageSize = 4096;
inline constexpr int kPageShift = 12;

/// Cache line size (64 B, Table II).
inline constexpr Addr kLineSize = 64;
inline constexpr int kLineShift = 6;

/// Byte address -> cache line address (aligned).
constexpr Addr line_of(Addr a) { return a >> kLineShift; }

/// Byte address -> virtual/physical page number.
constexpr Addr page_of(Addr a) { return a >> kPageShift; }

/// Offset of a byte address within its page.
constexpr Addr page_offset(Addr a) { return a & (kPageSize - 1); }

}  // namespace safespec
