// Lightweight statistics primitives: named counters, ratio helpers, and
// integer histograms with percentile queries. These back every figure in
// the evaluation (occupancy percentiles for Figs 6-9, miss rates for
// Figs 12-15, commit rates for Fig 16).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace safespec {

/// Monotonic event counter.
class Counter {
 public:
  void add(std::uint64_t n = 1) { value_ += n; }
  std::uint64_t value() const { return value_; }
  void reset() { value_ = 0; }

  /// Folds another counter in (aggregating per-cell statistics after a
  /// parallel sweep).
  void merge(const Counter& other) { value_ += other.value_; }

 private:
  std::uint64_t value_ = 0;
};

/// hits / (hits + misses) convenience pair.
struct HitMiss {
  Counter hits;
  Counter misses;

  std::uint64_t accesses() const { return hits.value() + misses.value(); }
  double hit_rate() const {
    const auto total = accesses();
    return total == 0 ? 0.0 : static_cast<double>(hits.value()) / total;
  }
  double miss_rate() const {
    const auto total = accesses();
    return total == 0 ? 0.0 : static_cast<double>(misses.value()) / total;
  }
  void reset() {
    hits.reset();
    misses.reset();
  }
  void merge(const HitMiss& other) {
    hits.merge(other.hits);
    misses.merge(other.misses);
  }
};

/// Histogram over non-negative integer samples (e.g. shadow-structure
/// occupancy sampled every cycle). Supports the percentile query used to
/// size shadow structures "for 99.99% of the accesses" (Figs 6-9).
class Histogram {
 public:
  void record(std::uint64_t sample) {
    flush_run();
    bucket_add(sample, 1);
  }

  /// Equivalent to record(), but run-length batched for per-cycle
  /// sampling loops: consecutive equal samples cost one increment and are
  /// folded into the buckets lazily (every reader flushes first), so the
  /// resulting statistics are bit-identical to per-sample record() calls.
  void record_run(std::uint64_t sample) {
    if (run_len_ != 0 && sample == run_value_) {
      ++run_len_;
      return;
    }
    flush_run();
    run_value_ = sample;
    run_len_ = 1;
  }

  std::uint64_t count() const {
    flush_run();
    return count_;
  }
  std::uint64_t max() const {
    flush_run();
    return max_;
  }
  double mean() const {
    flush_run();
    return count_ == 0 ? 0.0 : static_cast<double>(sum_) / count_;
  }

  /// Smallest value v such that at least `fraction` of all samples are
  /// <= v. fraction in (0, 1]; returns 0 on an empty histogram.
  std::uint64_t percentile(double fraction) const {
    flush_run();
    if (count_ == 0) return 0;
    const double target = fraction * static_cast<double>(count_);
    std::uint64_t cumulative = 0;
    for (std::uint64_t v = 0; v < buckets_.size(); ++v) {
      cumulative += buckets_[v];
      if (static_cast<double>(cumulative) >= target) return v;
    }
    return max_;
  }

  void reset() {
    buckets_.clear();
    count_ = 0;
    sum_ = 0;
    max_ = 0;
    run_len_ = 0;
  }

  /// Folds another histogram in bucket-wise; percentiles of the merged
  /// histogram equal those of the concatenated sample streams.
  void merge(const Histogram& other) {
    flush_run();
    other.flush_run();
    if (other.buckets_.size() > buckets_.size())
      buckets_.resize(other.buckets_.size(), 0);
    for (std::size_t v = 0; v < other.buckets_.size(); ++v)
      buckets_[v] += other.buckets_[v];
    count_ += other.count_;
    sum_ += other.sum_;
    if (other.max_ > max_) max_ = other.max_;
  }

 private:
  void bucket_add(std::uint64_t sample, std::uint64_t n) const {
    if (sample >= buckets_.size()) buckets_.resize(sample + 1, 0);
    buckets_[sample] += n;
    count_ += n;
    sum_ += sample * n;
    if (sample > max_) max_ = sample;
  }

  void flush_run() const {
    if (run_len_ == 0) return;
    const std::uint64_t len = run_len_;
    run_len_ = 0;
    bucket_add(run_value_, len);
  }

  // All mutable: a pending run is an encoding detail that const readers
  // (percentile queries on a const core) must be able to fold in.
  mutable std::vector<std::uint64_t> buckets_;
  mutable std::uint64_t count_ = 0;
  mutable std::uint64_t sum_ = 0;
  mutable std::uint64_t max_ = 0;
  mutable std::uint64_t run_value_ = 0;
  mutable std::uint64_t run_len_ = 0;
};

/// A registry of named counters for ad-hoc instrumentation; mainly used
/// by tests and the examples to dump whatever a component recorded.
class StatSet {
 public:
  Counter& counter(const std::string& name) { return counters_[name]; }
  const std::map<std::string, Counter>& counters() const { return counters_; }

 private:
  std::map<std::string, Counter> counters_;
};

/// Geometric mean of a vector of positive values (used for Fig 11's
/// normalized-IPC summary). Returns 0 for an empty input.
double geometric_mean(const std::vector<double>& values);

/// Arithmetic mean (the figures' "Average" summary row). Returns 0 for an
/// empty input.
double arithmetic_mean(const std::vector<double>& values);

}  // namespace safespec
