#include "fuzz/fuzz_spec.h"

#include <stdexcept>

#include "common/json.h"
#include "common/types.h"

namespace safespec::fuzz {

void FuzzSpec::validate() const {
  const struct {
    const char* name;
    double value;
  } nonnegative[] = {
      {"weights.branch_heavy", weights.branch_heavy},
      {"weights.pointer_chase", weights.pointer_chase},
      {"weights.protected_window", weights.protected_window},
      {"weights.self_confusing", weights.self_confusing},
      {"weights.mixed_compute", weights.mixed_compute},
      {"weights.mem_storm", weights.mem_storm},
      {"fault_frac", fault_frac},
  };
  for (const auto& field : nonnegative) {
    // Negated form so NaN (for which every comparison is false) is
    // rejected rather than slipping through.
    if (!(field.value >= 0.0)) {
      throw std::invalid_argument(std::string(field.name) +
                                  " must be non-negative");
    }
  }
  if (weights.total() <= 0.0) {
    throw std::invalid_argument("all scenario weights are zero");
  }
  if (fault_frac > 1.0) {
    throw std::invalid_argument("fault_frac is a probability (at most 1.0)");
  }
  if (min_blocks <= 0 || max_blocks < min_blocks) {
    throw std::invalid_argument("block range must satisfy 0 < min <= max");
  }
  if (loop_iterations <= 0) {
    throw std::invalid_argument("loop_iterations must be positive");
  }
  if (data_bytes < 2 * kPageSize) {
    throw std::invalid_argument("data_bytes must be at least two pages");
  }
  // The generator lays data+chase and kernel regions out at fixed bases
  // 256 MiB apart; keep the data region comfortably inside that gap.
  if (data_bytes > 64 * 1024 * 1024) {
    throw std::invalid_argument("data_bytes must be at most 64 MiB");
  }
  if (kernel_bytes == 0 || kernel_bytes % kPageSize != 0 ||
      kernel_bytes > 64 * 1024 * 1024) {
    throw std::invalid_argument(
        "kernel_bytes must be a positive page multiple of at most 64 MiB");
  }
}

std::string FuzzSpec::to_json() const {
  json::Writer w;
  w.open();
  w.open("weights");
  w.field("branch_heavy", weights.branch_heavy);
  w.field("pointer_chase", weights.pointer_chase);
  w.field("protected_window", weights.protected_window);
  w.field("self_confusing", weights.self_confusing);
  w.field("mixed_compute", weights.mixed_compute);
  w.field("mem_storm", weights.mem_storm);
  w.close();
  w.field("min_blocks", min_blocks);
  w.field("max_blocks", max_blocks);
  w.field("loop_iterations", loop_iterations);
  w.field("data_bytes", data_bytes);
  w.field("kernel_bytes", kernel_bytes);
  w.field("fault_frac", fault_frac);
  w.field("install_fault_handler", install_fault_handler);
  w.close();
  std::string out = w.take();
  out += '\n';
  return out;
}

FuzzSpec FuzzSpec::from_json(const std::string& text) {
  const json::Value doc = json::parse(text);
  if (doc.kind != json::Value::Kind::kObject) {
    throw std::invalid_argument("fuzz spec must be a JSON object");
  }
  // Unlisted fields keep their defaults, so a spec file only needs the
  // deltas it cares about.
  FuzzSpec spec;
  if (const json::Value* w = doc.find("weights")) {
    json::read_double(*w, "branch_heavy", spec.weights.branch_heavy);
    json::read_double(*w, "pointer_chase", spec.weights.pointer_chase);
    json::read_double(*w, "protected_window", spec.weights.protected_window);
    json::read_double(*w, "self_confusing", spec.weights.self_confusing);
    json::read_double(*w, "mixed_compute", spec.weights.mixed_compute);
    json::read_double(*w, "mem_storm", spec.weights.mem_storm);
  }
  json::read_int(doc, "min_blocks", spec.min_blocks);
  json::read_int(doc, "max_blocks", spec.max_blocks);
  json::read_int(doc, "loop_iterations", spec.loop_iterations);
  json::read_u64(doc, "data_bytes", spec.data_bytes);
  json::read_u64(doc, "kernel_bytes", spec.kernel_bytes);
  json::read_double(doc, "fault_frac", spec.fault_frac);
  json::read_bool(doc, "install_fault_handler", spec.install_fault_handler);
  spec.validate();
  return spec;
}

FuzzSpec FuzzSpec::from_json_file(const std::string& path) {
  return from_json(json::read_file(path, "fuzz spec"));
}

}  // namespace safespec::fuzz
