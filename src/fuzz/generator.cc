#include "fuzz/generator.h"

#include <algorithm>
#include <utility>

#include "common/rng.h"
#include "common/types.h"
#include "isa/instruction.h"

namespace safespec::fuzz {

using isa::AluOp;
using isa::CondOp;
using isa::ProgramBuilder;

namespace {

constexpr Addr kTextBase = 0x100000;
constexpr Addr kDataBase = 0x10000000;
constexpr Addr kKernelBase = 0x20000000;
/// Speculative-only gadgets sometimes poke here: never mapped, so a
/// wrong-path load down this address must leave no architectural trace.
constexpr Addr kUnmappedBase = 0x40000000;

// Register allocation for generated code. The invariant registers
// (counter, region bases, guard) are never picked as destinations of
// random compute, so every architectural path stays bounded and mapped.
constexpr RegIndex kLoopCounter = 1;  ///< outer-loop countdown
constexpr RegIndex kDataPtr = 2;      ///< user data region base
constexpr RegIndex kChasePtr = 3;     ///< chase region base
constexpr RegIndex kChaseCur = 4;     ///< chase cursor (absolute address)
constexpr RegIndex kLcg = 5;          ///< in-program LCG state
constexpr RegIndex kScratchA = 6;
constexpr RegIndex kScratchB = 7;
constexpr RegIndex kScratchC = 8;
constexpr RegIndex kSink = 9;         ///< results accumulate here
constexpr RegIndex kStoreVal = 10;
constexpr RegIndex kStreamOff = 11;   ///< streaming cursor (offset)
constexpr RegIndex kKernelPtr = 12;   ///< kernel region base
constexpr RegIndex kGuard = 13;       ///< always zero (speculation guards)
constexpr RegIndex kLinkSave = 30;    ///< saved link for nested calls

/// Destinations random compute may clobber (scratch + a wide band to
/// stress renaming). Excludes the invariant registers, kChaseCur (the
/// chase step re-derives it from kChasePtr, but a clobbered cursor would
/// still be one load away from an unmapped page) and the link registers.
constexpr RegIndex kWritable[] = {6,  7,  8,  9,  10, 11, 14, 15, 16, 17,
                                  18, 19, 20, 21, 22, 23, 24, 25};
/// Sources random compute may read (anything with a defined value).
constexpr RegIndex kReadable[] = {1,  2,  3,  4,  5,  6,  7,  8,  9,
                                  10, 11, 13, 14, 15, 16, 17, 18, 19,
                                  20, 21, 22, 23, 24, 25};

std::uint64_t floor_pow2(std::uint64_t v) {
  std::uint64_t p = 1;
  while (p * 2 <= v) p *= 2;
  return p;
}

template <std::size_t N>
RegIndex pick(Rng& rng, const RegIndex (&set)[N]) {
  return set[rng.below(N)];
}

/// Shared state of one generation run.
struct Gen {
  Rng rng;
  const FuzzSpec& spec;
  ProgramBuilder b{kTextBase};
  int label_seq = 0;

  std::uint64_t data_bytes = 0;    ///< power of two
  std::uint64_t chase_bytes = 0;   ///< power of two
  Addr chase_base = 0;

  Gen(std::uint64_t seed, const FuzzSpec& s) : rng(seed), spec(s) {}

  std::string uid(const char* prefix) {
    return std::string(prefix) + "_" + std::to_string(label_seq++);
  }

  std::uint64_t word_mask() const { return data_bytes / 8 - 1; }

  /// dst = kDataBase + ((src >> shift) & word_mask) * 8 — a data-region
  /// address derived from whatever junk `src` holds; total by masking.
  void masked_data_addr(RegIndex dst, RegIndex src) {
    b.alui(AluOp::kShr, dst, src, static_cast<std::int64_t>(rng.below(24)));
    b.alui(AluOp::kAnd, dst, dst, static_cast<std::int64_t>(word_mask()));
    b.alui(AluOp::kShl, dst, dst, 3);
    b.alu(AluOp::kAdd, dst, dst, kDataPtr);
  }

  /// Advances the in-program LCG once (branches and addresses key off it
  /// so outcomes are data-dependent, not static).
  void advance_lcg() {
    b.alui(AluOp::kMul, kLcg, kLcg, 0x5851F42D);
    b.alui(AluOp::kAdd, kLcg, kLcg, 0x14057B7F);
  }

  // ---- scenario blocks --------------------------------------------------

  void emit_branch_heavy() {
    const int branches = static_cast<int>(rng.range(3, 6));
    for (int i = 0; i < branches; ++i) {
      if (rng.chance(0.3)) {
        // Small counted inner loop: a well-predicted backward branch
        // with real dynamic execution counts.
        const std::string loop = uid("bh_loop");
        b.movi(kScratchB, static_cast<std::int64_t>(rng.range(2, 4)));
        b.label(loop);
        b.alui(AluOp::kAdd, kSink, kSink, 1);
        b.alui(AluOp::kXor, kSink, kSink, 0x2D);
        b.alui(AluOp::kSub, kScratchB, kScratchB, 1);
        b.branch(CondOp::kNe, kScratchB, kZeroReg, loop);
        continue;
      }
      // Forward skip on a data-dependent condition. bits=0 makes the
      // condition constant (fully predictable); more bits add noise. The
      // condition mixes in the sink so resolution waits on in-flight
      // loads — the dependence that opens deep speculation windows.
      const std::string skip = uid("bh_skip");
      const int bits = static_cast<int>(rng.below(4));
      b.alu(AluOp::kXor, kScratchA, kLcg, kSink);
      b.alui(AluOp::kShr, kScratchA, kScratchA,
             static_cast<std::int64_t>(rng.below(16)));
      b.alui(AluOp::kAnd, kScratchA, kScratchA, (1LL << bits) - 1);
      b.branch(CondOp::kEq, kScratchA, kZeroReg, skip);
      b.alui(AluOp::kAdd, kSink, kSink, 3);
      if (rng.chance(0.5)) b.alui(AluOp::kXor, kSink, kSink, 0x55);
      b.label(skip);
    }
  }

  void emit_pointer_chase() {
    const int steps = static_cast<int>(rng.range(3, 8));
    for (int i = 0; i < steps; ++i) {
      // The chase region stores *offsets*, and each step re-masks the
      // loaded value, so the walk stays in-region even if stores have
      // scribbled over the links.
      b.load(kScratchA, kChaseCur, 0);
      b.alui(AluOp::kAnd, kScratchA, kScratchA,
             static_cast<std::int64_t>(chase_bytes - 8));
      b.alu(AluOp::kAdd, kChaseCur, kChasePtr, kScratchA);
      if (rng.chance(0.4)) b.alu(AluOp::kXor, kSink, kSink, kScratchA);
    }
    if (rng.chance(0.5)) {
      // Chase-dependent store into the data region.
      masked_data_addr(kScratchB, kScratchA);
      b.store(kScratchA, kScratchB, 0);
    }
  }

  void emit_protected_window() {
    const std::uint64_t kernel_words = spec.kernel_bytes / 8;
    const std::int64_t secret_off =
        static_cast<std::int64_t>(8 * rng.below(kernel_words));
    if (spec.install_fault_handler && rng.chance(spec.fault_frac)) {
      // Meltdown-shaped: on 1/8 of iterations the kernel load is
      // architecturally reached, commits a permission fault and recovers
      // through the fault handler (which jumps to the loop tail).
      const std::string nofault = uid("pw_nofault");
      b.alui(AluOp::kShr, kScratchA, kLcg,
             static_cast<std::int64_t>(rng.below(16)));
      b.alui(AluOp::kAnd, kScratchA, kScratchA, 7);
      b.branch(CondOp::kNe, kScratchA, kZeroReg, nofault);
      b.load(kScratchB, kKernelPtr, secret_off);  // always faults at commit
      b.label(nofault);
      return;
    }
    // Spectre-shaped: the guard is architecturally always taken, so the
    // fall-through gadget — kernel secret steering a dependent user load,
    // or a touch of an unmapped page — only ever runs speculatively.
    // Under any SafeSpec policy its side effects must die with the
    // squash; the harness checks the committed state never sees them.
    const std::string safe = uid("pw_safe");
    b.branch(CondOp::kEq, kGuard, kZeroReg, safe);
    if (rng.chance(0.25)) {
      b.movi(kScratchB, static_cast<std::int64_t>(
                            kUnmappedBase + 8 * rng.below(512)));
      b.load(kScratchC, kScratchB, 0);
    } else {
      b.load(kScratchA, kKernelPtr, secret_off);
      b.alui(AluOp::kAnd, kScratchB, kScratchA,
             static_cast<std::int64_t>(word_mask()));
      b.alui(AluOp::kShl, kScratchB, kScratchB, 3);
      b.alu(AluOp::kAdd, kScratchB, kScratchB, kDataPtr);
      b.load(kScratchC, kScratchB, 0);  // transmit
    }
    b.label(safe);
  }

  void emit_self_confusing() {
    if (rng.chance(0.35)) {
      // Call/ret nest: the RSB's stack discipline, including a nested
      // call that must save and restore the single link register.
      b.call(rng.chance(0.5) ? "func_a" : "func_b");
      if (rng.chance(0.5)) b.call("func_a");
      return;
    }
    // LCG-driven 4-way jump table: the indirect branch's target changes
    // from iteration to iteration, mistraining the BTB against itself.
    const std::string dispatch = uid("sc_dispatch");
    const std::string join = uid("sc_join");
    constexpr int kSlotInstrs = 8;  // fixed stride: 32 bytes per slot
    b.jump(dispatch);
    const Addr slot0 = b.here();
    for (int k = 0; k < 4; ++k) {
      b.alui(AluOp::kAdd, kSink, kSink, 7 * (k + 1));
      b.alui(AluOp::kXor, kSink, kSink, 0x11 << k);
      b.alui(AluOp::kMul, kScratchC, kLcg, 3 + k);
      b.alu(AluOp::kXor, kSink, kSink, kScratchC);
      for (int pad = 4; pad < kSlotInstrs - 1; ++pad) b.nop();
      b.jump(join);
    }
    b.label(dispatch);
    b.alui(AluOp::kShr, kScratchA, kLcg,
           static_cast<std::int64_t>(rng.below(16)));
    b.alui(AluOp::kAnd, kScratchA, kScratchA, 3);
    b.alui(AluOp::kShl, kScratchA, kScratchA, 5);  // * 32-byte stride
    b.movi(kScratchB, static_cast<std::int64_t>(slot0));
    b.alu(AluOp::kAdd, kScratchA, kScratchA, kScratchB);
    b.jump_reg(kScratchA);
    b.label(join);
  }

  void emit_mixed_compute() {
    const int ops = static_cast<int>(rng.range(6, 14));
    for (int i = 0; i < ops; ++i) {
      static constexpr AluOp kOps[] = {
          AluOp::kAdd, AluOp::kSub, AluOp::kAnd, AluOp::kOr,  AluOp::kXor,
          AluOp::kShl, AluOp::kShr, AluOp::kAdd, AluOp::kXor, AluOp::kMul,
          AluOp::kDiv};
      const AluOp op = kOps[rng.below(std::size(kOps))];
      const RegIndex dst = pick(rng, kWritable);
      const RegIndex src1 = pick(rng, kReadable);
      if (rng.chance(0.5)) {
        // Immediate operand; divides keep a register divisor below so a
        // zero divisor (e.g. the guard register) stays reachable.
        const std::int64_t imm =
            static_cast<std::int64_t>(rng.below(1 << 16)) - (1 << 15);
        b.alui(op, dst, src1, op == AluOp::kDiv && imm == 0 ? 3 : imm);
      } else {
        b.alu(op, dst, src1, pick(rng, kReadable));
      }
    }
  }

  void emit_mem_storm() {
    const int ops = static_cast<int>(rng.range(5, 10));
    for (int i = 0; i < ops; ++i) {
      const double roll = rng.uniform();
      if (roll < 0.30) {
        masked_data_addr(kScratchA, pick(rng, kReadable));
        b.load(kScratchB, kScratchA, 0);
        b.alu(AluOp::kXor, kSink, kSink, kScratchB);
      } else if (roll < 0.45) {
        // Streaming load: word-granular walk wrapping in the footprint.
        b.alui(AluOp::kAdd, kStreamOff, kStreamOff, 8);
        b.alui(AluOp::kAnd, kStreamOff, kStreamOff,
               static_cast<std::int64_t>(data_bytes - 1));
        b.alu(AluOp::kAdd, kScratchA, kStreamOff, kDataPtr);
        b.load(kScratchB, kScratchA, 0);
      } else if (roll < 0.70) {
        b.alui(AluOp::kAdd, kStoreVal, kStoreVal,
               static_cast<std::int64_t>(rng.range(1, 255)));
        masked_data_addr(kScratchA, kLcg);
        b.store(kStoreVal, kScratchA, 0);
      } else if (roll < 0.85) {
        // Store-to-load forwarding pair on the same word.
        masked_data_addr(kScratchA, pick(rng, kReadable));
        b.store(kStoreVal, kScratchA, 0);
        b.load(kScratchB, kScratchA, 0);
        b.alu(AluOp::kXor, kSink, kSink, kScratchB);
      } else if (roll < 0.95) {
        masked_data_addr(kScratchA, kLcg);
        b.flush(kScratchA, 0);
      } else {
        b.fence();
      }
    }
  }
};

}  // namespace

void apply_address_space(const FuzzProgram& fp, memory::MainMemory& mem,
                         memory::PageTable& page_table) {
  for (const auto& region : fp.regions) {
    const Addr first = page_of(region.base);
    const Addr last = page_of(region.base + region.bytes - 1);
    for (Addr page = first; page <= last; ++page) {
      mem.map_page(page, region.perm);
      page_table.map_identity(page,
                              region.perm == memory::PagePerm::kKernel);
    }
  }
  for (const auto& poke : fp.pokes) mem.write64(poke.addr, poke.value);
}

FuzzProgram generate_program(std::uint64_t seed, const FuzzSpec& spec) {
  spec.validate();
  Gen g(seed, spec);
  FuzzProgram out;

  g.data_bytes = floor_pow2(std::max<std::uint64_t>(spec.data_bytes,
                                                    2 * kPageSize));
  g.chase_bytes = floor_pow2(std::clamp<std::uint64_t>(
      g.data_bytes / 4, kPageSize, 8 * 1024));
  g.chase_base = kDataBase + g.data_bytes;

  out.regions.push_back(
      {kDataBase, g.data_bytes + g.chase_bytes, memory::PagePerm::kUser});
  out.regions.push_back(
      {kKernelBase, spec.kernel_bytes, memory::PagePerm::kKernel});

  // ---- initial memory image --------------------------------------------
  // Chase region: a random cycle of word offsets, so chased loads are
  // serially dependent with no locality.
  {
    const std::uint64_t words = g.chase_bytes / 8;
    std::vector<std::uint32_t> perm(words);
    for (std::uint64_t i = 0; i < words; ++i) {
      perm[i] = static_cast<std::uint32_t>(i);
    }
    for (std::uint64_t i = words - 1; i > 0; --i) {
      std::swap(perm[i], perm[g.rng.below(i + 1)]);
    }
    out.pokes.reserve(words + 48);
    for (std::uint64_t i = 0; i < words; ++i) {
      out.pokes.push_back({g.chase_base + 8 * perm[i],
                           8 * perm[(i + 1) % words]});
    }
  }
  // Seed data so random loads see nonzero values, and kernel secrets so
  // speculative gadgets have something to leak.
  for (int i = 0; i < 32; ++i) {
    out.pokes.push_back(
        {kDataBase + 8 * g.rng.below(g.data_bytes / 8), g.rng.next()});
  }
  for (int i = 0; i < 16; ++i) {
    out.pokes.push_back(
        {kKernelBase + 8 * g.rng.below(spec.kernel_bytes / 8), g.rng.next()});
  }

  // ---- prologue ---------------------------------------------------------
  ProgramBuilder& b = g.b;
  b.jump("main");  // skip the helper bodies laid out next

  b.label("fault_handler");
  b.jump("recover");

  b.label("func_a");
  b.alui(AluOp::kAdd, kSink, kSink, 0x101);
  b.alui(AluOp::kXor, kSink, kSink, 0x33);
  b.ret();

  // func_b nests a call, saving/restoring the single link register.
  b.label("func_b");
  b.alu(AluOp::kAdd, kLinkSave, isa::kLinkReg, kZeroReg);
  b.call("func_a");
  b.alui(AluOp::kAdd, kSink, kSink, 0x202);
  b.alu(AluOp::kAdd, isa::kLinkReg, kLinkSave, kZeroReg);
  b.ret();

  b.label("main");
  b.movi(kDataPtr, static_cast<std::int64_t>(kDataBase));
  b.movi(kChasePtr, static_cast<std::int64_t>(g.chase_base));
  b.movi(kChaseCur, static_cast<std::int64_t>(g.chase_base));
  b.movi(kKernelPtr, static_cast<std::int64_t>(kKernelBase));
  b.movi(kLcg, static_cast<std::int64_t>(seed | 1));
  b.movi(kGuard, 0);
  b.movi(kSink, 0);
  b.movi(kStoreVal, 0x1234);
  b.movi(kStreamOff, 0);
  b.movi(kLoopCounter, spec.loop_iterations);

  // ---- body: weighted scenario blocks inside the outer loop -------------
  const int blocks = static_cast<int>(
      g.rng.range(static_cast<std::uint64_t>(spec.min_blocks),
                  static_cast<std::uint64_t>(spec.max_blocks)));
  struct Class {
    const char* name;
    double weight;
    void (Gen::*emit)();
  };
  const Class classes[] = {
      {"branch-heavy", spec.weights.branch_heavy, &Gen::emit_branch_heavy},
      {"pointer-chase", spec.weights.pointer_chase, &Gen::emit_pointer_chase},
      {"protected-window", spec.weights.protected_window,
       &Gen::emit_protected_window},
      {"self-confusing", spec.weights.self_confusing,
       &Gen::emit_self_confusing},
      {"mixed-compute", spec.weights.mixed_compute, &Gen::emit_mixed_compute},
      {"mem-storm", spec.weights.mem_storm, &Gen::emit_mem_storm},
  };

  b.label("outer");
  for (int i = 0; i < blocks; ++i) {
    g.advance_lcg();
    double roll = g.rng.uniform() * spec.weights.total();
    const Class* chosen = &classes[0];
    for (const Class& c : classes) {
      if (roll < c.weight) {
        chosen = &c;
        break;
      }
      roll -= c.weight;
    }
    out.classes.emplace_back(chosen->name);
    (g.*(chosen->emit))();
  }

  b.label("recover");  // fault handler resumes the loop here
  b.alui(AluOp::kSub, kLoopCounter, kLoopCounter, 1);
  b.branch(CondOp::kNe, kLoopCounter, kZeroReg, "outer");
  b.halt();

  out.program = b.build();
  out.program.set_entry(kTextBase);
  if (spec.install_fault_handler) {
    out.program.set_fault_handler(b.label_addr("fault_handler"));
  }

  // Worst case per iteration: every block at its longest (inner loops
  // included) stays well under 160 instructions.
  out.max_instrs_hint =
      static_cast<std::uint64_t>(spec.loop_iterations) *
          (static_cast<std::uint64_t>(blocks) * 160 + 32) +
      64;
  return out;
}

}  // namespace safespec::fuzz
