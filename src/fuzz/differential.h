// Differential policy-invariance harness.
//
// For each seed: generate a program, compute its reference final
// architectural state with the OracleInterpreter, then run the *same*
// program through every protection policy x machine preset cell (via the
// experiment engine's thread pool) and check three invariants per cell:
//
//   1. ORACLE EQUIVALENCE — the committed state (stop reason, committed
//      instruction and fault counts, registers, memory image) equals the
//      oracle's. Catches any microarchitectural mechanism that leaks
//      into architecture (e.g. a corrupted writeback datapath).
//   2. POLICY INVARIANCE — the committed state is bit-identical across
//      all cells. Implied by (1) when (1) holds everywhere, but checked
//      independently so a systematic oracle-and-cores divergence still
//      names the offending pair.
//   3. SHADOW DRAIN — after the final commit/squash drain, all four
//      shadow structures are empty. Squashed speculation must leave no
//      live shadow state behind (Fig 3's annulment, §III).
//
// check_seed is pure: same (seed, spec, config) in, same verdict out, on
// any thread — which makes every failure a one-line repro command.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/types.h"
#include "cpu/core.h"
#include "fuzz/fuzz_spec.h"

namespace safespec::fuzz {

/// Everything architecturally observable at the end of one run.
struct ArchState {
  cpu::StopReason stop = cpu::StopReason::kMaxCycles;
  std::uint64_t committed = 0;
  std::uint64_t faults = 0;
  std::array<std::uint64_t, kNumArchRegs> regs{};
  /// Sorted nonzero memory words (MainMemory::nonzero_words).
  std::vector<std::pair<Addr, std::uint64_t>> memory;
};

bool operator==(const ArchState& a, const ArchState& b);
inline bool operator!=(const ArchState& a, const ArchState& b) {
  return !(a == b);
}

/// "" when equal; otherwise a one-line description of the first
/// difference found (stop, counts, first diverging register, first
/// diverging memory word).
std::string first_difference(const ArchState& expected,
                             const ArchState& actual);

/// What to sweep and how hard to drive each cell.
struct DifferentialConfig {
  /// Protection policies to cross (empty: every registered policy).
  std::vector<std::string> policies;
  /// Machine presets to cross (empty: every registered preset).
  std::vector<std::string> presets;
  /// Cores per cell. At cores > 1 every core runs the seed's program on
  /// its own private memory under the shared L2/L3, and the oracle
  /// invariants are checked against *each* core's architectural state —
  /// the interleaving and shared-level contention must never reach
  /// architecture.
  int cores = 1;
  /// Per-cell cycle budget; exceeding it is a convergence violation.
  Cycle max_cycles = 4'000'000;
  /// Defect injection for mutation-testing the harness itself (all off
  /// in normal fuzzing).
  cpu::MutationHooks mutation;
};

/// Outcome of one seed across every cell.
struct SeedVerdict {
  std::uint64_t seed = 0;
  bool ok = true;
  /// One line per violated invariant, named by "policy/preset".
  std::vector<std::string> violations;
  std::uint64_t committed = 0;  ///< oracle committed-instruction count
  std::size_t cells = 0;
};

/// Generates, runs and checks one seed. Throws only on harness misuse
/// (unknown policy/preset names propagate std::out_of_range).
SeedVerdict check_seed(std::uint64_t seed, const FuzzSpec& spec,
                       const DifferentialConfig& config);

/// Aggregate over a seed range.
struct FuzzReport {
  std::uint64_t first_seed = 0;
  int count = 0;
  std::size_t total_cells = 0;
  std::uint64_t total_committed = 0;  ///< oracle instructions, all seeds
  std::vector<SeedVerdict> failures;  ///< failing seeds, ascending
  bool ok() const { return failures.empty(); }
};

/// Checks seeds [first_seed, first_seed + count) on the experiment
/// engine's thread pool. The report is identical for any thread count.
FuzzReport run_fuzz(std::uint64_t first_seed, int count,
                    const FuzzSpec& spec, const DifferentialConfig& config,
                    int threads = 0);

}  // namespace safespec::fuzz
