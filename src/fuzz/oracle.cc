#include "fuzz/oracle.h"

#include "isa/instruction.h"

namespace safespec::fuzz {

using cpu::Fault;
using cpu::StopReason;
using isa::OpClass;

OracleInterpreter::OracleInterpreter(const isa::Program* program,
                                     memory::MainMemory* mem,
                                     const memory::PageTable* page_table)
    : program_(program), mem_(mem), page_table_(page_table) {}

bool OracleInterpreter::translate(Addr vaddr, Addr& paddr,
                                  cpu::Fault& fault) const {
  const auto xlat = page_table_->translate(page_of(vaddr));
  if (!xlat.present) {
    fault = Fault::kUnmapped;
    return false;
  }
  // The oracle always runs at user level, like the harness's cores.
  if (xlat.kernel_only) {
    fault = Fault::kPermission;
    return false;
  }
  paddr = (xlat.ppage << kPageShift) + page_offset(vaddr);
  return true;
}

bool OracleInterpreter::handle_fault() {
  ++faults_;
  const auto handler = program_->fault_handler();
  if (!handler.has_value()) return false;
  pc_ = *handler;
  return true;
}

StopReason OracleInterpreter::run(std::uint64_t max_instrs) {
  if (!started_) {
    pc_ = program_->entry();
    started_ = true;
  }
  const std::uint64_t budget_end = committed_ + max_instrs;

  while (committed_ < budget_end) {
    const isa::Instruction* inst = program_->at(pc_);
    if (inst == nullptr) {
      // Committed control flow reached a pc with no instruction — the
      // core's front end stalls with an empty pipeline and its run loop
      // reports an unhandled fault.
      return StopReason::kFaultNoHandler;
    }

    Addr next_pc = pc_ + isa::kInstrBytes;
    switch (inst->op) {
      case OpClass::kNop:
      case OpClass::kFence:
        break;
      case OpClass::kAlu:
      case OpClass::kMul:
      case OpClass::kDiv: {
        const std::uint64_t b =
            inst->use_imm ? static_cast<std::uint64_t>(inst->imm)
                          : regs_[inst->src2];
        set_reg(inst->dst, isa::eval_alu(inst->alu, regs_[inst->src1], b));
        break;
      }
      case OpClass::kRdCycle:
        // Documented divergence: no cycle exists here. See header.
        set_reg(inst->dst, committed_);
        break;
      case OpClass::kLoad: {
        const Addr vaddr =
            regs_[inst->src1] + static_cast<std::uint64_t>(inst->imm);
        Addr paddr = 0;
        Fault fault = Fault::kNone;
        if (!translate(vaddr, paddr, fault)) {
          if (!handle_fault()) return StopReason::kFaultNoHandler;
          continue;  // faulting instruction never commits
        }
        set_reg(inst->dst, mem_->read64(paddr));
        break;
      }
      case OpClass::kStore: {
        const Addr vaddr =
            regs_[inst->src1] + static_cast<std::uint64_t>(inst->imm);
        Addr paddr = 0;
        Fault fault = Fault::kNone;
        if (!translate(vaddr, paddr, fault)) {
          if (!handle_fault()) return StopReason::kFaultNoHandler;
          continue;
        }
        mem_->write64(paddr, regs_[inst->src2]);
        break;
      }
      case OpClass::kFlush: {
        // No architectural effect, but the address still translates and
        // can fault — exactly as the core's commit path behaves.
        const Addr vaddr =
            regs_[inst->src1] + static_cast<std::uint64_t>(inst->imm);
        Addr paddr = 0;
        Fault fault = Fault::kNone;
        if (!translate(vaddr, paddr, fault)) {
          if (!handle_fault()) return StopReason::kFaultNoHandler;
          continue;
        }
        break;
      }
      case OpClass::kBranch:
        if (isa::eval_cond(inst->cond, regs_[inst->src1],
                           regs_[inst->src2])) {
          next_pc = inst->target;
        }
        break;
      case OpClass::kJump:
        next_pc = inst->target;
        break;
      case OpClass::kCall:
        set_reg(inst->dst, pc_ + isa::kInstrBytes);  // link value
        next_pc = inst->target;
        break;
      case OpClass::kBranchIndirect:
        next_pc = regs_[inst->src1] + static_cast<Addr>(inst->imm);
        break;
      case OpClass::kRet:
        next_pc = regs_[inst->src1];
        break;
      case OpClass::kHalt:
        ++committed_;
        return StopReason::kHalted;
    }

    ++committed_;
    pc_ = next_pc;
  }
  return StopReason::kMaxInstrs;
}

}  // namespace safespec::fuzz
