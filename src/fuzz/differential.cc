#include "fuzz/differential.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "experiment/experiment.h"
#include "fuzz/generator.h"
#include "memory/main_memory.h"
#include "memory/page_table.h"
#include "safespec/policy.h"
#include "sim/functional.h"
#include "sim/machine.h"
#include "sim/simulator.h"

namespace safespec::fuzz {

bool operator==(const ArchState& a, const ArchState& b) {
  return a.stop == b.stop && a.committed == b.committed &&
         a.faults == b.faults && a.regs == b.regs && a.memory == b.memory;
}

std::string first_difference(const ArchState& expected,
                             const ArchState& actual) {
  std::ostringstream oss;
  if (expected.stop != actual.stop) {
    oss << "stop reason " << cpu::to_string(expected.stop) << " vs "
        << cpu::to_string(actual.stop);
    return oss.str();
  }
  if (expected.committed != actual.committed) {
    oss << "committed instructions " << expected.committed << " vs "
        << actual.committed;
    return oss.str();
  }
  if (expected.faults != actual.faults) {
    oss << "fault count " << expected.faults << " vs " << actual.faults;
    return oss.str();
  }
  for (int r = 0; r < kNumArchRegs; ++r) {
    if (expected.regs[static_cast<std::size_t>(r)] !=
        actual.regs[static_cast<std::size_t>(r)]) {
      oss << "r" << r << " = 0x" << std::hex
          << expected.regs[static_cast<std::size_t>(r)] << " vs 0x"
          << actual.regs[static_cast<std::size_t>(r)];
      return oss.str();
    }
  }
  const std::size_t common =
      std::min(expected.memory.size(), actual.memory.size());
  for (std::size_t i = 0; i < common; ++i) {
    if (expected.memory[i] != actual.memory[i]) {
      oss << "memory word @0x" << std::hex << expected.memory[i].first
          << " = 0x" << expected.memory[i].second << " vs @0x"
          << actual.memory[i].first << " = 0x" << actual.memory[i].second;
      return oss.str();
    }
  }
  if (expected.memory.size() != actual.memory.size()) {
    oss << "memory image has " << expected.memory.size() << " vs "
        << actual.memory.size() << " nonzero words";
    return oss.str();
  }
  return "";
}

namespace {

ArchState oracle_state(const FuzzProgram& fp) {
  memory::MainMemory mem;
  memory::PageTable pt;
  apply_address_space(fp, mem, pt);

  // The reference state comes straight from the promoted functional
  // engine (the optimized form of the old in-order oracle).
  sim::FunctionalEngine oracle(&fp.program, &mem, &pt);
  ArchState state;
  state.stop = oracle.run(fp.max_instrs_hint);
  state.committed = oracle.committed();
  state.faults = oracle.faults();
  for (int r = 0; r < kNumArchRegs; ++r) {
    state.regs[static_cast<std::size_t>(r)] =
        oracle.reg(static_cast<RegIndex>(r));
  }
  state.memory = mem.nonzero_words();
  return state;
}

/// Stop reason for core `c`. The SimResult carries the primary's; a
/// secondary reports its own (accurate for halted cores), maps a clean
/// front-end drain to kFaultNoHandler like the single-core run loop, and
/// otherwise inherits the run-level budget stop.
cpu::StopReason core_stop(const sim::Simulator& sim,
                          const sim::SimResult& res, int c) {
  if (c == 0) return res.stop;
  const cpu::Core& core = sim.core(c);
  if (core.halted()) return core.stop_reason();
  if (core.finished()) return cpu::StopReason::kFaultNoHandler;
  return res.stop;
}

ArchState core_state(const sim::Simulator& sim, const sim::SimResult& res,
                     int c) {
  ArchState state;
  state.stop = core_stop(sim, res, c);
  state.committed = sim.core(c).stats().committed_instrs;
  state.faults = sim.core(c).stats().faults;
  for (int r = 0; r < kNumArchRegs; ++r) {
    state.regs[static_cast<std::size_t>(r)] =
        sim.core(c).reg(static_cast<RegIndex>(r));
  }
  state.memory = sim.memory(c).nonzero_words();
  return state;
}

bool converged(cpu::StopReason stop) {
  return stop == cpu::StopReason::kHalted ||
         stop == cpu::StopReason::kFaultNoHandler;
}

}  // namespace

SeedVerdict check_seed(std::uint64_t seed, const FuzzSpec& spec,
                       const DifferentialConfig& config) {
  SeedVerdict verdict;
  verdict.seed = seed;
  const auto fail = [&verdict](const std::string& what) {
    verdict.ok = false;
    verdict.violations.push_back(what);
  };

  const FuzzProgram fp = generate_program(seed, spec);
  const ArchState oracle = oracle_state(fp);
  verdict.committed = oracle.committed;
  if (!converged(oracle.stop)) {
    // The generator guarantees termination; tripping this means the
    // generator (not a core) is broken.
    fail(std::string("oracle did not halt: ") + cpu::to_string(oracle.stop));
    return verdict;
  }

  const std::vector<std::string> policies =
      config.policies.empty() ? policy::registered_policy_names()
                              : config.policies;
  const std::vector<std::string> presets =
      config.presets.empty() ? sim::machine_preset_names() : config.presets;

  struct CellState {
    std::string name;
    ArchState state;
  };
  std::vector<CellState> cells;
  cells.reserve(policies.size() * presets.size());

  for (const auto& preset : presets) {
    for (const auto& policy : policies) {
      const std::string name = policy + "/" + preset;
      sim::MachineBuilder builder =
          sim::MachineBuilder::from_preset(preset);
      builder.policy(policy).configure([&config](cpu::CoreConfig& c) {
        c.mutation = config.mutation;
        c.cores = config.cores;
      });
      for (const auto& region : fp.regions) {
        builder.map_region(region.base, region.bytes, region.perm);
      }
      for (const auto& poke : fp.pokes) builder.poke(poke.addr, poke.value);

      const auto sim = builder.build(fp.program);
      const auto result =
          sim->run(config.max_cycles, 4 * fp.max_instrs_hint);

      // Every core ran the same program on private memory, so each one
      // must independently reproduce the oracle state — regardless of
      // the interleaving and shared-level contention between them.
      for (int c = 0; c < sim->num_cores(); ++c) {
        const std::string where =
            sim->num_cores() == 1 ? name
                                  : name + "[core " + std::to_string(c) + "]";
        ArchState state = core_state(*sim, result, c);
        if (!converged(state.stop)) {
          fail(where + ": did not converge: " + cpu::to_string(state.stop));
        }
        if (const std::string diff = first_difference(oracle, state);
            !diff.empty()) {
          fail(where + ": committed state diverges from oracle: " + diff);
        }
        const cpu::Core& core = sim->core(c);
        if (!core.shadow_dcache().empty() || !core.shadow_icache().empty() ||
            !core.shadow_dtlb().empty() || !core.shadow_itlb().empty()) {
          std::ostringstream oss;
          oss << where << ": shadow structures not empty after drain"
              << " (dcache=" << core.shadow_dcache().live_count()
              << " icache=" << core.shadow_icache().live_count()
              << " dtlb=" << core.shadow_dtlb().live_count()
              << " itlb=" << core.shadow_itlb().live_count() << ")";
          fail(oss.str());
        }
        if (c == 0) cells.push_back({name, std::move(state)});
      }
    }
  }
  verdict.cells = cells.size();

  // Policy invariance: every cell against the first.
  for (std::size_t i = 1; i < cells.size(); ++i) {
    if (const std::string diff =
            first_difference(cells[0].state, cells[i].state);
        !diff.empty()) {
      fail(cells[i].name + " vs " + cells[0].name +
           ": committed state differs across cells: " + diff);
    }
  }
  return verdict;
}

FuzzReport run_fuzz(std::uint64_t first_seed, int count,
                    const FuzzSpec& spec, const DifferentialConfig& config,
                    int threads) {
  FuzzReport report;
  report.first_seed = first_seed;
  report.count = count;
  if (count <= 0) return report;

  std::vector<SeedVerdict> verdicts(static_cast<std::size_t>(count));
  const experiment::ParallelRunner runner(threads);
  runner.parallel_for(static_cast<std::size_t>(count), [&](std::size_t i) {
    verdicts[i] =
        check_seed(first_seed + static_cast<std::uint64_t>(i), spec, config);
  });

  for (auto& verdict : verdicts) {
    report.total_cells += verdict.cells;
    report.total_committed += verdict.committed;
    if (!verdict.ok) report.failures.push_back(std::move(verdict));
  }
  return report;
}

}  // namespace safespec::fuzz
