// In-order architectural reference interpreter (compatibility wrapper).
//
// The interpreter that used to live here was promoted into the
// first-class, optimized sim::FunctionalEngine (src/sim/functional.h) —
// predecoded text, translation cache, allocation-free step loop — so the
// differential harness's reference state and the sampled-simulation
// fast-forward path are one and the same engine. OracleInterpreter
// remains as a thin alias so harness code and tests keep reading as
// "the oracle"; it adds nothing beyond the engine.
//
// Semantics (now documented on FunctionalEngine, unchanged): no
// microarchitecture at all, faults bite at commit and redirect to the
// program's fault handler (or end the run with kFaultNoHandler),
// committed control flow reaching an empty pc ends the run, division by
// zero yields all-ones, the zero register never writes, and kRdCycle
// deliberately diverges by reading the committed-instruction count.
#pragma once

#include <cstdint>

#include "common/types.h"
#include "cpu/core.h"
#include "isa/program.h"
#include "memory/main_memory.h"
#include "memory/page_table.h"
#include "sim/functional.h"

namespace safespec::fuzz {

class OracleInterpreter {
 public:
  /// Borrows everything; `mem` is mutated by stores.
  OracleInterpreter(const isa::Program* program, memory::MainMemory* mem,
                    const memory::PageTable* page_table)
      : engine_(program, mem, page_table) {}

  /// Runs from the program entry until halt, unrecoverable fault, or the
  /// instruction budget. Resumable: a second call continues where the
  /// first stopped (after kMaxInstrs).
  cpu::StopReason run(std::uint64_t max_instrs) {
    return engine_.run(max_instrs);
  }

  std::uint64_t reg(RegIndex r) const { return engine_.reg(r); }
  void set_reg(RegIndex r, std::uint64_t v) { engine_.set_reg(r, v); }

  /// Committed instruction count (faulting instructions never commit,
  /// matching CoreStats::committed_instrs).
  std::uint64_t committed() const { return engine_.committed(); }
  /// Architecturally raised faults (matching CoreStats::faults).
  std::uint64_t faults() const { return engine_.faults(); }
  Addr pc() const { return engine_.pc(); }

  /// The promoted engine itself, for callers needing checkpoints.
  sim::FunctionalEngine& engine() { return engine_; }

 private:
  sim::FunctionalEngine engine_;
};

}  // namespace safespec::fuzz
