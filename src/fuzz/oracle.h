// In-order architectural reference interpreter.
//
// Executes a micro-ISA program with *no* microarchitecture at all — no
// pipeline, no caches, no predictor, no speculation — producing the
// reference final architectural state (registers + memory image) the
// out-of-order core must match regardless of protection policy. This is
// the ground truth of the differential harness: SafeSpec's whole claim
// is that shadow structures change *when* microarchitectural state
// becomes visible without ever changing *what* the program computes.
//
// Semantics mirror cpu::Core's committed behaviour exactly:
//   * permission faults bite at the faulting instruction's commit point:
//     it performs no architectural write, the fault counter bumps, and
//     control transfers to the program's fault handler (or the run ends
//     with kFaultNoHandler);
//   * committed control flow reaching a pc with no instruction ends the
//     run with kFaultNoHandler (the core's wedge/stall detection);
//   * division by zero yields all-ones; the zero register never writes.
//
// The one deliberate divergence: kRdCycle has no cycle to read here, so
// it returns the number of instructions committed so far. Programs
// containing kRdCycle are therefore *not* differential-fuzzable (its
// value is timing-dependent by design) and the generator never emits it.
#pragma once

#include <cstdint>

#include "common/types.h"
#include "cpu/core.h"
#include "isa/program.h"
#include "memory/main_memory.h"
#include "memory/page_table.h"

namespace safespec::fuzz {

class OracleInterpreter {
 public:
  /// Borrows everything; `mem` is mutated by stores.
  OracleInterpreter(const isa::Program* program, memory::MainMemory* mem,
                    const memory::PageTable* page_table);

  /// Runs from the program entry until halt, unrecoverable fault, or the
  /// instruction budget. Resumable: a second call continues where the
  /// first stopped (after kMaxInstrs).
  cpu::StopReason run(std::uint64_t max_instrs);

  std::uint64_t reg(RegIndex r) const { return regs_[r]; }
  void set_reg(RegIndex r, std::uint64_t v) {
    if (r != kZeroReg) regs_[r] = v;
  }

  /// Committed instruction count (faulting instructions never commit,
  /// matching CoreStats::committed_instrs).
  std::uint64_t committed() const { return committed_; }
  /// Architecturally raised faults (matching CoreStats::faults).
  std::uint64_t faults() const { return faults_; }
  Addr pc() const { return pc_; }

 private:
  /// Translates a data address; returns false and sets `fault` when the
  /// access must fault (unmapped page, or kernel page at user level).
  bool translate(Addr vaddr, Addr& paddr, cpu::Fault& fault) const;

  /// Fault dispatch: redirect to the handler, or end the run.
  bool handle_fault();

  const isa::Program* program_;
  memory::MainMemory* mem_;
  const memory::PageTable* page_table_;

  std::uint64_t regs_[kNumArchRegs] = {};
  Addr pc_ = 0;
  std::uint64_t committed_ = 0;
  std::uint64_t faults_ = 0;
  bool started_ = false;
};

}  // namespace safespec::fuzz
