// Knobs of the random program generator, as data.
//
// A FuzzSpec describes the *distribution* of programs the differential
// fuzzer draws from: how much of each scenario class, how big the
// programs, how big the address space. Like MachineSpec it serializes
// to/from JSON so a fuzzing campaign is shippable as a config file
// (fuzz_driver --spec=FILE) and a failing seed's repro names both the
// seed and the spec that shaped it.
#pragma once

#include <cstdint>
#include <string>

namespace safespec::fuzz {

/// Relative weight of each scenario class when the generator picks what
/// the next block of a program is. Weights need not sum to anything; a
/// zero disables the class.
struct ScenarioWeights {
  /// Dense data-dependent branching: short forward skips with mixed
  /// predictability plus small counted inner loops.
  double branch_heavy = 1.0;
  /// Serially dependent loads walking a randomized pointer cycle — the
  /// deep speculation windows that keep many instructions in flight.
  double pointer_chase = 1.0;
  /// Speculation straddling a kernel-mapped region: always-taken guards
  /// whose architecturally-dead fall-through reads a kernel secret and
  /// transmits it through a dependent user load (Spectre-shaped), plus —
  /// with probability fault_frac — loads that architecturally *commit* a
  /// permission fault and recover through the fault handler
  /// (Meltdown-shaped).
  double protected_window = 1.0;
  /// Predictor self-confusion: indirect jumps through an LCG-driven
  /// 4-way jump table (BTB mistraining) and call/ret nests (RSB).
  double self_confusing = 1.0;
  /// Random ALU/MUL/DIV dependency chains over a wide register set,
  /// including divides whose divisor can be zero.
  double mixed_compute = 1.0;
  /// Back-to-back masked loads/stores with store-to-load forwarding
  /// pairs, clflushes and the occasional fence.
  double mem_storm = 1.0;

  double total() const {
    return branch_heavy + pointer_chase + protected_window +
           self_confusing + mixed_compute + mem_storm;
  }
};

/// Everything the generator needs besides the seed. Defaults produce
/// small programs (~1-2k committed instructions) so one seed stays
/// cheap enough to run across every policy x preset cell.
struct FuzzSpec {
  ScenarioWeights weights;

  int min_blocks = 6;        ///< scenario blocks per program, inclusive
  int max_blocks = 12;
  int loop_iterations = 3;   ///< outer-loop repetitions of the block list

  /// User data region size in bytes (rounded down to a power of two, at
  /// least two pages). The pointer-chase cycle gets a quarter of it,
  /// capped at 8 KiB, in an adjacent region.
  std::uint64_t data_bytes = 64 * 1024;
  /// Kernel-mapped secret region size in bytes (page multiple).
  std::uint64_t kernel_bytes = 4096;

  /// Of protected_window blocks: probability the block contains an
  /// architecturally *reachable* kernel load (commit-time permission
  /// fault, recovered through the fault handler) rather than a
  /// speculative-only gadget. Ignored when install_fault_handler is off.
  double fault_frac = 0.35;
  /// Installs the program's fault handler (a jump back to the outer
  /// loop's tail). Without it any committed fault ends the run.
  bool install_fault_handler = true;

  /// Throws std::invalid_argument on nonsense (negative weights or
  /// sizes, empty block range, all-zero weights).
  void validate() const;

  /// Pretty-printed JSON (stable key order — round-trips).
  std::string to_json() const;
  static FuzzSpec from_json(const std::string& text);
  static FuzzSpec from_json_file(const std::string& path);
};

}  // namespace safespec::fuzz
