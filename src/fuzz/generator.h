// Seeded random program generator for the differential fuzzer.
//
// generate_program(seed, spec) deterministically emits one valid
// micro-ISA program — a bounded outer loop over a weighted mix of
// scenario blocks — together with the address-space setup (regions,
// initial memory pokes) the program assumes. Programs are *total*: every
// architectural path re-masks its addresses into mapped regions and the
// loop counter is never clobbered, so each program halts on its own well
// inside any sane budget. Speculative paths, by contrast, are free to
// wander: guarded gadgets read kernel secrets, indirect jumps mistrain
// the BTB, and branch fans squash deep windows — the scenario diversity
// the differential invariants are checked under.
//
// Generation depends on nothing but (seed, spec): the same pair yields a
// bit-identical FuzzProgram on any thread, which is what makes a failing
// seed a one-line repro.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "fuzz/fuzz_spec.h"
#include "isa/program.h"
#include "memory/main_memory.h"
#include "memory/page_table.h"
#include "sim/machine.h"

namespace safespec::fuzz {

/// One generated program plus the address space it assumes.
struct FuzzProgram {
  isa::Program program;
  std::vector<sim::MemRegion> regions;  ///< user data/chase + kernel secrets
  std::vector<sim::Poke> pokes;         ///< chase links, secrets, seed data
  /// Scenario class of each emitted block, in program order (diagnostics
  /// for failing-seed reports).
  std::vector<std::string> classes;
  /// Generous upper bound on committed instructions (the harness treats
  /// exceeding it as non-convergence).
  std::uint64_t max_instrs_hint = 0;
};

/// Deterministically generates the program for `seed` under `spec`
/// (validates the spec first).
FuzzProgram generate_program(std::uint64_t seed, const FuzzSpec& spec);

/// Sets up a bare memory system the way MachineBuilder sets up a
/// simulator's: maps the program's regions (identity-translated) and
/// applies its pokes. The oracle side of every differential run; tests
/// use it to run generated programs standalone.
void apply_address_space(const FuzzProgram& fp, memory::MainMemory& mem,
                         memory::PageTable& page_table);

}  // namespace safespec::fuzz
