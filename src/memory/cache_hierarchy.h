// Three-level inclusive cache hierarchy with the Table II latency model.
//
// Two access styles exist deliberately:
//   * timed_access(..., Fill::kYes)  — classic behaviour: a miss allocates
//     into every level on the way in (inclusive). This is the *baseline*
//     (insecure) datapath, and also the commit-time promotion path.
//   * timed_access(..., Fill::kNo)   — lookup + latency only, no state
//     change below the hit level. SafeSpec uses this for speculative
//     accesses: the line's residence is provided by the shadow structure
//     instead, so the primary hierarchy stays untouched (§III, §IV-A).
//
// Multi-core split: the L1s are per-core (one CacheHierarchy per core),
// while L2/L3 live in a SharedLevels object that several hierarchies can
// attach to. Every shared-level request carries the owning core id into
// Cache/ReplacementState, and an inclusive eviction at L2/L3
// back-invalidates the L1s of *every* attached core — which is exactly
// the remote-eviction channel the cross-core attacks probe. A hierarchy
// constructed without an external SharedLevels owns a private one
// (single-core: bit-identical to the historical monolithic hierarchy).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/types.h"
#include "memory/cache.h"

namespace safespec::memory {

class CacheHierarchy;

/// Which structure ultimately supplied the data.
enum class HitLevel : std::uint8_t { kL1, kL2, kL3, kMemory };

/// Configuration of the whole hierarchy (Table II defaults are in
/// sim/sim_config.h).
struct HierarchyConfig {
  CacheConfig l1i{.name = "L1I", .size_bytes = 32 * 1024, .ways = 8,
                  .line_bytes = 64, .hit_latency = 4};
  CacheConfig l1d{.name = "L1D", .size_bytes = 32 * 1024, .ways = 8,
                  .line_bytes = 64, .hit_latency = 4};
  CacheConfig l2{.name = "L2", .size_bytes = 256 * 1024, .ways = 4,
                 .line_bytes = 64, .hit_latency = 12};
  CacheConfig l3{.name = "L3", .size_bytes = 2 * 1024 * 1024, .ways = 16,
                 .line_bytes = 64, .hit_latency = 44};
  Cycle memory_latency = 191;
};

/// Instruction- vs data-side L1 selection.
enum class Side : std::uint8_t { kInstr, kData };

struct AccessOutcome {
  Cycle latency = 0;
  HitLevel level = HitLevel::kMemory;
  bool l1_hit() const { return level == HitLevel::kL1; }
};

/// The shared portion of the hierarchy: the L2 and L3 tag arrays plus the
/// memory latency, with a registry of attached per-core hierarchies so
/// inclusive evictions back-invalidate every core's L1s. One instance per
/// machine; each core's CacheHierarchy either borrows it or (single-core
/// construction) owns a private one.
class SharedLevels {
 public:
  explicit SharedLevels(const HierarchyConfig& config);

  // Attached hierarchies hold a pointer to this object.
  SharedLevels(const SharedLevels&) = delete;
  SharedLevels& operator=(const SharedLevels&) = delete;

  /// The below-L1 part of a timed lookup: L2, then L3, then memory, with
  /// the historical inclusive fill behaviour on each path. The caller
  /// (CacheHierarchy::timed_access) fills its own L1 afterwards. `owner`
  /// is the requesting core id.
  ///
  /// Known inclusion quirk (deliberately preserved): on the *L3-hit*
  /// path the promotion fill into L2 discards its eviction — the line
  /// pushed out of L2 is not back-invalidated from the attached L1s, so
  /// an L1 can briefly hold a line that no longer sits in L2 (strict
  /// inclusion is violated L1-vs-L2, never L1/L2-vs-L3; the line is
  /// still in L3, so a later L3 eviction cleans it up). The from-memory
  /// path (fill_shared) *does* back-invalidate both levels' evictions.
  /// Every golden cycle count and attack trace pins this behaviour —
  /// see memory_test's L3-hit-path inclusion test and ROADMAP "known
  /// modelling quirks" before changing it.
  AccessOutcome access_below_l1(Addr line, bool touch, bool fill,
                                bool count_stats, int owner);

  /// Inclusive fill of L3 then L2 (the from-memory / promotion path).
  /// Evictions back-invalidate the L1s of every attached core.
  void fill_shared(Addr line, int owner);

  /// clflush at the shared levels: removes the line from L2, L3 and every
  /// attached core's L1s (coherence-global, as on real hardware).
  void flush_line(Addr line);

  /// Empties L2 and L3 only (attached L1s are flushed by their owners).
  void flush_all();

  Cache& l2() { return l2_; }
  Cache& l3() { return l3_; }
  const Cache& l2() const { return l2_; }
  const Cache& l3() const { return l3_; }
  Cycle memory_latency() const { return memory_latency_; }

  /// Sum over L2+L3 of fills that evicted another core's line — the
  /// machine-wide remote-eviction (contention) signal.
  std::uint64_t cross_core_evictions() const {
    return l2_.cross_owner_evictions() + l3_.cross_owner_evictions();
  }

  /// Sum over L2+L3 of SHARP alarms / detections. Always zero unless the
  /// protection policy selected a CacheProtection (SHARP / detect-only).
  std::uint64_t sharp_alarms() const {
    return l2_.sharp_alarms() + l3_.sharp_alarms();
  }
  std::uint64_t sharp_detections() const {
    return l2_.sharp_detections() + l3_.sharp_detections();
  }

  int num_attached() const { return static_cast<int>(attached_.size()); }

 private:
  friend class CacheHierarchy;  // attach/detach from its ctor/dtor only
  void attach(CacheHierarchy* h) { attached_.push_back(h); }
  void detach(CacheHierarchy* h);

  /// Inclusive back-invalidation of `line` in every attached core's L1s.
  void back_invalidate_l1s(Addr line);

  Cache l2_;
  Cache l3_;
  Cycle memory_latency_;
  std::vector<CacheHierarchy*> attached_;
};

/// One core's view of the hierarchy: owns the two L1 tag arrays, borrows
/// (or privately owns) the shared L2/L3, and implements lookup / fill /
/// invalidate across them with inclusive semantics.
class CacheHierarchy {
 public:
  /// With `shared == nullptr` the hierarchy owns a private SharedLevels —
  /// the historical single-core shape. Otherwise it attaches to `shared`
  /// (which must outlive it) and stamps every L2/L3 request with
  /// `owner` (its core id).
  explicit CacheHierarchy(const HierarchyConfig& config,
                          SharedLevels* shared = nullptr, int owner = 0);
  ~CacheHierarchy();

  // The SharedLevels attach registry holds `this`.
  CacheHierarchy(const CacheHierarchy&) = delete;
  CacheHierarchy& operator=(const CacheHierarchy&) = delete;

  enum class Fill : std::uint8_t { kNo, kYes };

  /// Performs a timed lookup of the line containing byte address `paddr`
  /// on `side`. With Fill::kYes, misses allocate into all levels from the
  /// hit level up (inclusive fill). With Fill::kNo the hierarchy is left
  /// exactly as found apart from replacement-recency updates at the hit
  /// level. `count_stats=false` keeps the lookup out of hit/miss
  /// statistics (page-walker traffic).
  AccessOutcome timed_access(Addr paddr, Side side, Fill fill,
                             bool count_stats = true);

  /// Commits a line into the hierarchy at every level (inclusive), as
  /// when a SafeSpec shadow entry is promoted on instruction commit. The
  /// `side` chooses which L1 the line lands in.
  void fill_all_levels(Addr line, Side side);

  /// clflush: removes the line from every level (and, at the shared
  /// levels, from every other attached core's L1s).
  void flush_line(Addr line);

  /// Empties this core's L1s and the shared L2/L3 (between attack
  /// trials). Other attached cores' L1s are left alone.
  void flush_all();

  /// True when the line is resident in the L1 of `side` (tests and the
  /// timing-free assertions in the attack harness).
  bool resident_l1(Addr line, Side side) const;
  bool resident_l2(Addr line) const { return shared_->l2().probe(line); }
  bool resident_l3(Addr line) const { return shared_->l3().probe(line); }

  Cache& l1i() { return l1i_; }
  Cache& l1d() { return l1d_; }
  Cache& l2() { return shared_->l2(); }
  Cache& l3() { return shared_->l3(); }
  const Cache& l1i() const { return l1i_; }
  const Cache& l1d() const { return l1d_; }
  const Cache& l2() const { return shared_->l2(); }
  const Cache& l3() const { return shared_->l3(); }

  SharedLevels& shared() { return *shared_; }
  const SharedLevels& shared() const { return *shared_; }

  /// The core id stamped on this hierarchy's shared-level requests.
  int owner() const { return owner_; }

  const HierarchyConfig& config() const { return config_; }

 private:
  friend class SharedLevels;  // back_invalidate_l1s touches l1i_/l1d_

  Cache& l1_for(Side side) { return side == Side::kInstr ? l1i_ : l1d_; }

  HierarchyConfig config_;
  Cache l1i_;
  Cache l1d_;
  std::unique_ptr<SharedLevels> owned_shared_;  ///< single-core shape only
  SharedLevels* shared_;  ///< owned_shared_.get() or the external object
  int owner_;
};

}  // namespace safespec::memory
