// Three-level inclusive cache hierarchy with the Table II latency model.
//
// Two access styles exist deliberately:
//   * timed_access(..., Fill::kYes)  — classic behaviour: a miss allocates
//     into every level on the way in (inclusive). This is the *baseline*
//     (insecure) datapath, and also the commit-time promotion path.
//   * timed_access(..., Fill::kNo)   — lookup + latency only, no state
//     change below the hit level. SafeSpec uses this for speculative
//     accesses: the line's residence is provided by the shadow structure
//     instead, so the primary hierarchy stays untouched (§III, §IV-A).
#pragma once

#include <cstdint>
#include <memory>

#include "common/types.h"
#include "memory/cache.h"

namespace safespec::memory {

/// Which structure ultimately supplied the data.
enum class HitLevel : std::uint8_t { kL1, kL2, kL3, kMemory };

/// Configuration of the whole hierarchy (Table II defaults are in
/// sim/sim_config.h).
struct HierarchyConfig {
  CacheConfig l1i{.name = "L1I", .size_bytes = 32 * 1024, .ways = 8,
                  .line_bytes = 64, .hit_latency = 4};
  CacheConfig l1d{.name = "L1D", .size_bytes = 32 * 1024, .ways = 8,
                  .line_bytes = 64, .hit_latency = 4};
  CacheConfig l2{.name = "L2", .size_bytes = 256 * 1024, .ways = 4,
                 .line_bytes = 64, .hit_latency = 12};
  CacheConfig l3{.name = "L3", .size_bytes = 2 * 1024 * 1024, .ways = 16,
                 .line_bytes = 64, .hit_latency = 44};
  Cycle memory_latency = 191;
};

/// Instruction- vs data-side L1 selection.
enum class Side : std::uint8_t { kInstr, kData };

struct AccessOutcome {
  Cycle latency = 0;
  HitLevel level = HitLevel::kMemory;
  bool l1_hit() const { return level == HitLevel::kL1; }
};

/// Owns the four cache tag arrays and implements lookup / fill /
/// invalidate across them with inclusive semantics (an L3 eviction
/// back-invalidates L2 and both L1s).
class CacheHierarchy {
 public:
  explicit CacheHierarchy(const HierarchyConfig& config);

  enum class Fill : std::uint8_t { kNo, kYes };

  /// Performs a timed lookup of the line containing byte address `paddr`
  /// on `side`. With Fill::kYes, misses allocate into all levels from the
  /// hit level up (inclusive fill). With Fill::kNo the hierarchy is left
  /// exactly as found apart from replacement-recency updates at the hit
  /// level. `count_stats=false` keeps the lookup out of hit/miss
  /// statistics (page-walker traffic).
  AccessOutcome timed_access(Addr paddr, Side side, Fill fill,
                             bool count_stats = true);

  /// Commits a line into the hierarchy at every level (inclusive), as
  /// when a SafeSpec shadow entry is promoted on instruction commit. The
  /// `side` chooses which L1 the line lands in.
  void fill_all_levels(Addr line, Side side);

  /// clflush: removes the line from every level.
  void flush_line(Addr line);

  /// Empties every cache (between attack trials).
  void flush_all();

  /// True when the line is resident in the L1 of `side` (tests and the
  /// timing-free assertions in the attack harness).
  bool resident_l1(Addr line, Side side) const;
  bool resident_l2(Addr line) const { return l2_.probe(line); }
  bool resident_l3(Addr line) const { return l3_.probe(line); }

  Cache& l1i() { return l1i_; }
  Cache& l1d() { return l1d_; }
  Cache& l2() { return l2_; }
  Cache& l3() { return l3_; }
  const Cache& l1i() const { return l1i_; }
  const Cache& l1d() const { return l1d_; }
  const Cache& l2() const { return l2_; }
  const Cache& l3() const { return l3_; }

  const HierarchyConfig& config() const { return config_; }

 private:
  Cache& l1_for(Side side) { return side == Side::kInstr ? l1i_ : l1d_; }

  HierarchyConfig config_;
  Cache l1i_;
  Cache l1d_;
  Cache l2_;
  Cache l3_;
};

}  // namespace safespec::memory
