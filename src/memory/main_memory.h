// Architectural backing store: memory contents plus per-page permissions.
//
// This is the substrate the paper gets "for free" from QEMU inside
// MARSSx86. We model exactly what the attacks require:
//   * real data at addresses (a speculatively loaded secret has a value),
//   * per-page user/kernel permission bits whose check is *deferred* to
//     commit (property P1 exploited by Meltdown),
//   * unmapped pages (speculation down garbage paths must not crash the
//     simulator).
#pragma once

#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "common/paged_addr_map.h"
#include "common/types.h"

namespace safespec::memory {

/// Access privilege required to *architecturally* read/write a page.
enum class PagePerm : std::uint8_t {
  kUser,    ///< accessible from user and kernel mode
  kKernel,  ///< kernel-only; user access faults at commit time
};

/// Privilege level the core currently runs at.
enum class PrivLevel : std::uint8_t { kUser, kKernel };

/// Sparse 64-bit-word-granular physical memory with page permissions.
///
/// Addresses given to read/write are byte addresses; storage is at 8-byte
/// granularity with unaligned accesses rounded down (the micro-ISA only
/// performs aligned 64-bit accesses, which the workload generators and
/// attack PoCs respect).
class MainMemory {
 public:
  /// Marks a page readable/writable with permission `perm`. Pages default
  /// to unmapped; mapping is idempotent (re-mapping updates permission).
  void map_page(Addr page, PagePerm perm);

  bool is_mapped(Addr page) const { return perms_.contains(page); }

  /// Permission of a mapped page; nullopt when unmapped.
  std::optional<PagePerm> page_perm(Addr page) const;

  /// True when `level` may architecturally access `page`. Unmapped pages
  /// are never accessible.
  bool access_ok(Addr page, PrivLevel level) const;

  /// Reads the 64-bit word containing byte address `addr`. Unwritten
  /// words read as zero (like zero-fill-on-demand).
  std::uint64_t read64(Addr addr) const;

  /// Writes the 64-bit word containing byte address `addr`.
  void write64(Addr addr, std::uint64_t value);

  /// Canonical architectural snapshot: every word holding a nonzero
  /// value, as (byte address, value) pairs sorted by address. Zero-valued
  /// words are skipped because an explicitly written zero is
  /// indistinguishable from untouched zero-fill memory — exactly the
  /// equivalence the differential harness needs when comparing final
  /// memory images across machines.
  std::vector<std::pair<Addr, std::uint64_t>> nonzero_words() const;

 private:
  static Addr word_of(Addr addr) { return addr >> 3; }

  // Paged backing arrays: workload data and page maps are dense, so the
  // per-load/store lookup is a direct index in the common case.
  PagedAddrMap<std::uint64_t> words_;   // keyed by word index
  PagedAddrMap<PagePerm> perms_;        // keyed by page number
};

}  // namespace safespec::memory
