// Page table and hardware page-table walker.
//
// Translation is identity-mapped by default (vpage == ppage) but fully
// programmable, with per-page permissions mirrored from MainMemory. The
// walker models the x86-64 4-level radix walk: each level is one memory
// access *through the data-cache hierarchy* at a synthetic page-table
// address. That detail matters for SafeSpec: the paper notes (§IV-A) that
// because the page walker uses the load/store path, the d-cache shadow
// protection also covers the walker's side effects — which our core
// reproduces by routing walker accesses through the same speculative-fill
// policy as ordinary loads.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/paged_addr_map.h"
#include "common/types.h"
#include "memory/main_memory.h"

namespace safespec::memory {

/// A translation result: where the page lives and whether user-mode code
/// may architecturally touch it. `present == false` means unmapped.
struct Translation {
  Addr ppage = 0;
  bool kernel_only = false;
  bool present = false;
};

/// Software-visible page table plus a timing model for walks.
class PageTable {
 public:
  /// Number of radix levels in a walk (x86-64 style).
  static constexpr int kWalkLevels = 4;

  /// Maps `vpage` -> `ppage` with the given privilege requirement.
  void map(Addr vpage, Addr ppage, bool kernel_only);

  /// Identity-maps `vpage` (ppage == vpage).
  void map_identity(Addr vpage, bool kernel_only) {
    map(vpage, vpage, kernel_only);
  }

  /// Translates a virtual page. present=false when unmapped.
  Translation translate(Addr vpage) const;

  /// The four synthetic physical line addresses a walk of `vpage`
  /// touches, one per radix level. The walker issues these through the
  /// d-cache path; tests use them to assert walker side effects land (or
  /// don't) in the caches.
  std::vector<Addr> walk_addresses(Addr vpage) const;

  /// Allocation-free variant for the core's per-walk hot path: fills
  /// `out[kWalkLevels]` with the same addresses, in the same order.
  void walk_addresses(Addr vpage, Addr out[kWalkLevels]) const;

  std::size_t mapped_pages() const { return table_.size(); }

 private:
  // PagedAddrMap, not the hash-based AddrMap: translate() sits on the
  // TLB-miss path of both the detailed walker and the functional engine,
  // and vpages are small dense keys — the direct page directory turns
  // each lookup into two array indexings.
  PagedAddrMap<Translation> table_;
};

}  // namespace safespec::memory
