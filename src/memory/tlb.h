// Translation lookaside buffer (tag-only, like the caches). The paper's
// Skylake-like configuration uses 64-entry iTLB and dTLB (Table I); we
// model them as set-associative structures over virtual page numbers.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/stats.h"
#include "common/types.h"
#include "memory/replacement.h"

namespace safespec::memory {

struct TlbConfig {
  std::string name = "TLB";
  int entries = 64;
  int ways = 4;  ///< set-associative; entries/ways sets
  ReplPolicy policy = ReplPolicy::kLru;
  std::uint64_t seed = 7;

  int num_sets() const { return entries / ways; }
};

/// Cached translation.
struct TlbEntry {
  Addr vpage = 0;
  Addr ppage = 0;
  bool kernel_only = false;
};

/// Set-associative TLB keyed by virtual page number.
class Tlb {
 public:
  explicit Tlb(const TlbConfig& config);

  /// Lookup with replacement update and stats. nullopt on miss.
  std::optional<TlbEntry> access(Addr vpage);

  /// Side-effect-free lookup (tests / attack assertions).
  bool probe(Addr vpage) const;

  /// Installs a translation, evicting if the set is full. Returns the
  /// evicted entry's vpage when an eviction happened.
  std::optional<Addr> fill(const TlbEntry& entry);

  bool invalidate(Addr vpage);
  void flush_all();

  std::size_t occupancy() const;
  const TlbConfig& config() const { return config_; }
  HitMiss& stats() {
    flush_stats();
    return stats_;
  }
  const HitMiss& stats() const {
    flush_stats();
    return stats_;
  }

 private:
  struct Way {
    TlbEntry entry;
    bool valid = false;
  };

  int set_of(Addr vpage) const {
    return static_cast<int>(vpage % static_cast<Addr>(num_sets_));
  }
  int find_way(int set, Addr vpage) const;

  /// Folds batched access tallies into the named counters (see
  /// Cache::flush_stats — same contract: readers flush, observable
  /// statistics are bit-identical to per-access bumps).
  void flush_stats() const {
    if (pending_hits_ != 0) {
      stats_.hits.add(pending_hits_);
      pending_hits_ = 0;
    }
    if (pending_misses_ != 0) {
      stats_.misses.add(pending_misses_);
      pending_misses_ = 0;
    }
  }

  TlbConfig config_;
  int num_sets_;
  std::vector<Way> ways_;
  std::vector<ReplacementState> repl_;
  /// Stamp clock, advanced only at stamp-writing events (see Cache).
  std::uint64_t tick_ = 0;
  mutable HitMiss stats_;
  mutable std::uint64_t pending_hits_ = 0;
  mutable std::uint64_t pending_misses_ = 0;
};

}  // namespace safespec::memory
