#include "memory/cache.h"

#include <stdexcept>

namespace safespec::memory {

Cache::Cache(const CacheConfig& config)
    : config_(config), num_sets_(config.num_sets()) {
  if (num_sets_ <= 0 || config_.ways <= 0) {
    throw std::invalid_argument("Cache: size/ways/line geometry invalid");
  }
  if (config_.size_bytes % (static_cast<std::uint64_t>(config_.ways) *
                            config_.line_bytes) !=
      0) {
    throw std::invalid_argument("Cache: size not divisible by way size");
  }
  ways_.resize(static_cast<std::size_t>(num_sets_) * config_.ways);
  repl_.reserve(num_sets_);
  for (int s = 0; s < num_sets_; ++s) {
    repl_.emplace_back(config_.policy, config_.ways,
                       config_.seed + static_cast<std::uint64_t>(s));
  }
}

int Cache::find_way(int set, Addr line) const {
  const std::size_t base = static_cast<std::size_t>(set) * config_.ways;
  for (int w = 0; w < config_.ways; ++w) {
    const Way& way = ways_[base + w];
    if (way.valid && way.tag == line) return w;
  }
  return -1;
}

bool Cache::access(Addr line, bool update_replacement, bool count_stats,
                   int owner) {
  const int set = set_of(line);
  const int way = find_way(set, line);
  if (way >= 0) {
    if (update_replacement) repl_[set].touch(way, ++tick_, owner);
    if (count_stats) ++pending_hits_;
    return true;
  }
  if (count_stats) ++pending_misses_;
  return false;
}

bool Cache::probe(Addr line) const { return find_way(set_of(line), line) >= 0; }

int Cache::owner_of(Addr line) const {
  const int set = set_of(line);
  const int way = find_way(set, line);
  return way < 0 ? -1 : repl_[set].owner_of(way);
}

std::optional<Addr> Cache::fill(Addr line, int owner) {
  ++tick_;
  const int set = set_of(line);
  const std::size_t base = static_cast<std::size_t>(set) * config_.ways;

  // Already present: refresh recency, no eviction.
  if (const int existing = find_way(set, line); existing >= 0) {
    repl_[set].fill(existing, tick_, owner);
    return std::nullopt;
  }
  // Free way available.
  for (int w = 0; w < config_.ways; ++w) {
    Way& way = ways_[base + w];
    if (!way.valid) {
      way.valid = true;
      way.tag = line;
      repl_[set].fill(w, tick_, owner);
      return std::nullopt;
    }
  }
  // Evict. Under kSharp the victim prefers requester-owned ways and a
  // forced cross-owner eviction raises an alarm; kDetectOnly keeps the
  // owner-blind choice (timing identical to kNone) but alarms on every
  // cross-owner eviction it observes.
  int victim;
  bool forced = false;
  if (config_.protection == CacheProtection::kSharp) {
    const VictimChoice choice = repl_[set].protected_victim(tick_, owner);
    victim = choice.way;
    forced = choice.forced;
  } else {
    victim = repl_[set].victim(tick_, owner);
  }
  if (repl_[set].owner_of(victim) != owner) {
    ++cross_owner_evictions_;
    if (config_.protection == CacheProtection::kDetectOnly) record_alarm();
  }
  if (forced) record_alarm();
  Way& way = ways_[base + victim];
  const Addr evicted = way.tag;
  way.tag = line;
  repl_[set].fill(victim, tick_, owner);
  return evicted;
}

void Cache::record_alarm() {
  ++sharp_alarms_;
  if (tick_ - epoch_start_tick_ >= config_.alarm_epoch_ticks) {
    epoch_start_tick_ = tick_;
    epoch_alarms_ = 0;
  }
  if (++epoch_alarms_ == config_.alarm_threshold) ++sharp_detections_;
}

bool Cache::invalidate(Addr line) {
  const int set = set_of(line);
  const int way = find_way(set, line);
  if (way < 0) return false;
  ways_[static_cast<std::size_t>(set) * config_.ways + way].valid = false;
  return true;
}

void Cache::flush_all() {
  for (Way& way : ways_) way.valid = false;
}

std::size_t Cache::occupancy() const {
  std::size_t n = 0;
  for (const Way& way : ways_) n += way.valid ? 1 : 0;
  return n;
}

}  // namespace safespec::memory
