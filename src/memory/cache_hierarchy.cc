#include "memory/cache_hierarchy.h"

namespace safespec::memory {

CacheHierarchy::CacheHierarchy(const HierarchyConfig& config)
    : config_(config),
      l1i_(config.l1i),
      l1d_(config.l1d),
      l2_(config.l2),
      l3_(config.l3) {}

AccessOutcome CacheHierarchy::timed_access(Addr paddr, Side side, Fill fill,
                                           bool count_stats) {
  const Addr line = line_of(paddr);
  Cache& l1 = l1_for(side);
  // Fill::kNo is the speculative path: leakage-freedom forbids even
  // replacement-recency updates (§IV-A).
  const bool touch = fill == Fill::kYes;

  if (l1.access(line, touch, count_stats)) {
    return {l1.config().hit_latency, HitLevel::kL1};
  }
  if (l2_.access(line, touch, count_stats)) {
    if (fill == Fill::kYes) l1.fill(line);
    return {l2_.config().hit_latency, HitLevel::kL2};
  }
  if (l3_.access(line, touch, count_stats)) {
    if (fill == Fill::kYes) {
      l2_.fill(line);
      l1.fill(line);
    }
    return {l3_.config().hit_latency, HitLevel::kL3};
  }
  if (fill == Fill::kYes) fill_all_levels(line, side);
  return {config_.memory_latency, HitLevel::kMemory};
}

void CacheHierarchy::fill_all_levels(Addr line, Side side) {
  // Inclusive hierarchy: insert bottom-up; an L3/L2 eviction
  // back-invalidates the levels above it.
  if (const auto evicted = l3_.fill(line); evicted.has_value()) {
    l2_.invalidate(*evicted);
    l1i_.invalidate(*evicted);
    l1d_.invalidate(*evicted);
  }
  if (const auto evicted = l2_.fill(line); evicted.has_value()) {
    l1i_.invalidate(*evicted);
    l1d_.invalidate(*evicted);
  }
  l1_for(side).fill(line);
}

void CacheHierarchy::flush_line(Addr line) {
  l1i_.invalidate(line);
  l1d_.invalidate(line);
  l2_.invalidate(line);
  l3_.invalidate(line);
}

void CacheHierarchy::flush_all() {
  l1i_.flush_all();
  l1d_.flush_all();
  l2_.flush_all();
  l3_.flush_all();
}

bool CacheHierarchy::resident_l1(Addr line, Side side) const {
  return (side == Side::kInstr ? l1i_ : l1d_).probe(line);
}

}  // namespace safespec::memory
