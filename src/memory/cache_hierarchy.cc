#include "memory/cache_hierarchy.h"

#include <algorithm>

namespace safespec::memory {

// ---- SharedLevels ----------------------------------------------------------

SharedLevels::SharedLevels(const HierarchyConfig& config)
    : l2_(config.l2), l3_(config.l3),
      memory_latency_(config.memory_latency) {}

void SharedLevels::detach(CacheHierarchy* h) {
  attached_.erase(std::remove(attached_.begin(), attached_.end(), h),
                  attached_.end());
}

void SharedLevels::back_invalidate_l1s(Addr line) {
  for (CacheHierarchy* h : attached_) {
    h->l1i_.invalidate(line);
    h->l1d_.invalidate(line);
  }
}

AccessOutcome SharedLevels::access_below_l1(Addr line, bool touch, bool fill,
                                            bool count_stats, int owner) {
  if (l2_.access(line, touch, count_stats, owner)) {
    return {l2_.config().hit_latency, HitLevel::kL2};
  }
  if (l3_.access(line, touch, count_stats, owner)) {
    // Historical L3-hit path: the L2 fill's eviction is not
    // back-invalidated (the line stays in whatever L1s hold it).
    if (fill) l2_.fill(line, owner);
    return {l3_.config().hit_latency, HitLevel::kL3};
  }
  if (fill) fill_shared(line, owner);
  return {memory_latency_, HitLevel::kMemory};
}

void SharedLevels::fill_shared(Addr line, int owner) {
  // Inclusive hierarchy: insert bottom-up; an L3/L2 eviction
  // back-invalidates the levels above it — in *every* attached core.
  if (const auto evicted = l3_.fill(line, owner); evicted.has_value()) {
    l2_.invalidate(*evicted);
    back_invalidate_l1s(*evicted);
  }
  if (const auto evicted = l2_.fill(line, owner); evicted.has_value()) {
    back_invalidate_l1s(*evicted);
  }
}

void SharedLevels::flush_line(Addr line) {
  back_invalidate_l1s(line);
  l2_.invalidate(line);
  l3_.invalidate(line);
}

void SharedLevels::flush_all() {
  l2_.flush_all();
  l3_.flush_all();
}

// ---- CacheHierarchy --------------------------------------------------------

CacheHierarchy::CacheHierarchy(const HierarchyConfig& config,
                               SharedLevels* shared, int owner)
    : config_(config),
      l1i_(config.l1i),
      l1d_(config.l1d),
      owned_shared_(shared == nullptr
                        ? std::make_unique<SharedLevels>(config)
                        : nullptr),
      shared_(shared == nullptr ? owned_shared_.get() : shared),
      owner_(owner) {
  shared_->attach(this);
}

CacheHierarchy::~CacheHierarchy() { shared_->detach(this); }

AccessOutcome CacheHierarchy::timed_access(Addr paddr, Side side, Fill fill,
                                           bool count_stats) {
  const Addr line = line_of(paddr);
  Cache& l1 = l1_for(side);
  // Fill::kNo is the speculative path: leakage-freedom forbids even
  // replacement-recency updates (§IV-A).
  const bool touch = fill == Fill::kYes;

  if (l1.access(line, touch, count_stats, owner_)) {
    return {l1.config().hit_latency, HitLevel::kL1};
  }
  const AccessOutcome below = shared_->access_below_l1(
      line, touch, fill == Fill::kYes, count_stats, owner_);
  if (fill == Fill::kYes) l1.fill(line, owner_);
  return below;
}

void CacheHierarchy::fill_all_levels(Addr line, Side side) {
  shared_->fill_shared(line, owner_);
  l1_for(side).fill(line, owner_);
}

void CacheHierarchy::flush_line(Addr line) {
  // flush_line at the shared levels already back-invalidates every
  // attached core's L1s, including ours.
  shared_->flush_line(line);
}

void CacheHierarchy::flush_all() {
  l1i_.flush_all();
  l1d_.flush_all();
  shared_->flush_all();
}

bool CacheHierarchy::resident_l1(Addr line, Side side) const {
  return (side == Side::kInstr ? l1i_ : l1d_).probe(line);
}

}  // namespace safespec::memory
