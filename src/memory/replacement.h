// Replacement-policy strategy for set-associative structures (caches and
// TLBs). Kept as a tiny per-set state machine so the cache stays a plain
// array of ways; policies are selected by enum rather than virtual
// dispatch — the simulator calls these on every access.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "common/types.h"

namespace safespec::memory {

enum class ReplPolicy : std::uint8_t {
  kLru,     ///< least-recently-used (default; what the paper's model uses)
  kFifo,    ///< insertion-order eviction
  kRandom,  ///< uniform random victim (deterministic via seeded Rng)
};

/// Cache-level protection applied at victim selection, orthogonal to the
/// base ReplPolicy (set via CacheConfig::protection, chosen by the
/// ProtectionPolicy in the registry).
enum class CacheProtection : std::uint8_t {
  kNone,        ///< historical behaviour: owner-blind victim choice
  kSharp,       ///< SHARP: prefer requester-owned ways, alarm when forced
  kDetectOnly,  ///< victim choice unchanged; cross-owner evictions alarm
};

/// Outcome of a protected victim choice (see protected_victim()).
struct VictimChoice {
  int way = 0;
  bool forced = false;  ///< no requester-owned way existed (SHARP alarm)
};

/// Per-set replacement metadata: one 64-bit stamp and one owner id per
/// way. For LRU the stamp is last-touch time, for FIFO it is fill time,
/// for Random it is unused. The owner supplies a monotonically increasing
/// `tick`.
///
/// The `owner` parameter is the requesting context (core id in the
/// multi-core simulator, 0 for single-core structures such as TLBs).
/// victim() never lets it influence the choice — that is what keeps
/// cores=1 bit-identical to the historical behaviour — but it is recorded
/// per way so protected_victim() (SHARP's "never evict another context's
/// line") and the shared-level attribution counters can see who owns each
/// line.
class ReplacementState {
 public:
  ReplacementState(ReplPolicy policy, int num_ways, std::uint64_t seed)
      : policy_(policy), stamps_(num_ways, 0), owners_(num_ways, 0),
        rng_(seed) {}

  /// Notes that `way` was touched (hit) at time `tick` by `owner`. A hit
  /// refreshes recency but does not transfer ownership: the line belongs
  /// to the context that filled it.
  void touch(int way, std::uint64_t tick, int owner = 0) {
    (void)owner;
    if (policy_ == ReplPolicy::kLru) stamps_[way] = tick;
  }

  /// Notes that `way` was (re)filled at time `tick` by `owner`.
  void fill(int way, std::uint64_t tick, int owner = 0) {
    stamps_[way] = tick;
    owners_[way] = owner;
  }

  /// Chooses a victim way for a fill by `owner`. Only called when every
  /// way of the set is occupied — the caller prefers invalid ways itself.
  /// Ties on equal stamps resolve to the lowest way index (LRU/FIFO);
  /// kRandom draws from the per-set seeded Rng and ignores stamps.
  int victim(std::uint64_t /*tick*/, int owner = 0) {
    (void)owner;
    if (policy_ == ReplPolicy::kRandom) {
      return static_cast<int>(rng_.below(stamps_.size()));
    }
    // LRU and FIFO both evict the smallest stamp.
    int best = 0;
    for (int w = 1; w < static_cast<int>(stamps_.size()); ++w) {
      if (stamps_[w] < stamps_[best]) best = w;
    }
    return best;
  }

  /// SHARP-style victim choice for a fill by `owner`: ways owned by other
  /// contexts are skipped and the base policy picks among the requester's
  /// own lines (SHARP's tier-1 "unowned" and tier-2 "requester-owned"
  /// preferences collapse to one rule here because the model has no
  /// unowned state — every resident way records the context that filled
  /// it). When the requester owns nothing in the set the choice is
  /// *forced*: a uniformly random way is evicted and the caller raises an
  /// alarm (tier 3). When every way belongs to the requester — always the
  /// case at cores=1 — the result is bit-identical to victim(), including
  /// the kRandom draw sequence (one rng_.below() of the same bound).
  VictimChoice protected_victim(std::uint64_t /*tick*/, int owner) {
    const int num_ways = static_cast<int>(owners_.size());
    int candidates = 0;
    for (int w = 0; w < num_ways; ++w) {
      if (owners_[w] == owner) ++candidates;
    }
    if (candidates == 0) {
      return {static_cast<int>(rng_.below(stamps_.size())), true};
    }
    if (policy_ == ReplPolicy::kRandom) {
      int nth = static_cast<int>(
          rng_.below(static_cast<std::uint64_t>(candidates)));
      for (int w = 0; w < num_ways; ++w) {
        if (owners_[w] == owner && nth-- == 0) return {w, false};
      }
    }
    // LRU and FIFO both evict the smallest stamp among the candidates,
    // lowest way on ties — the same rule victim() applies to all ways.
    int best = -1;
    for (int w = 0; w < num_ways; ++w) {
      if (owners_[w] != owner) continue;
      if (best < 0 || stamps_[w] < stamps_[best]) best = w;
    }
    return {best, false};
  }

  /// The context that filled `way` (see fill()).
  int owner_of(int way) const { return owners_[way]; }

  ReplPolicy policy() const { return policy_; }

 private:
  ReplPolicy policy_;
  std::vector<std::uint64_t> stamps_;
  std::vector<int> owners_;  ///< filling context per way
  Rng rng_;
};

}  // namespace safespec::memory
