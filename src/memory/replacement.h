// Replacement-policy strategy for set-associative structures (caches and
// TLBs). Kept as a tiny per-set state machine so the cache stays a plain
// array of ways; policies are selected by enum rather than virtual
// dispatch — the simulator calls these on every access.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "common/types.h"

namespace safespec::memory {

enum class ReplPolicy : std::uint8_t {
  kLru,     ///< least-recently-used (default; what the paper's model uses)
  kFifo,    ///< insertion-order eviction
  kRandom,  ///< uniform random victim (deterministic via seeded Rng)
};

/// Per-set replacement metadata: one 64-bit stamp per way. For LRU the
/// stamp is last-touch time, for FIFO it is fill time, for Random it is
/// unused. The owner supplies a monotonically increasing `tick`.
class ReplacementState {
 public:
  ReplacementState(ReplPolicy policy, int num_ways, std::uint64_t seed)
      : policy_(policy), stamps_(num_ways, 0), rng_(seed) {}

  /// Notes that `way` was touched (hit) at time `tick`.
  void touch(int way, std::uint64_t tick) {
    if (policy_ == ReplPolicy::kLru) stamps_[way] = tick;
  }

  /// Notes that `way` was (re)filled at time `tick`.
  void fill(int way, std::uint64_t tick) { stamps_[way] = tick; }

  /// Chooses a victim way among `valid_ways` (bitmask of occupied ways;
  /// the caller prefers invalid ways itself). All ways occupied here.
  int victim(std::uint64_t /*tick*/) {
    if (policy_ == ReplPolicy::kRandom) {
      return static_cast<int>(rng_.below(stamps_.size()));
    }
    // LRU and FIFO both evict the smallest stamp.
    int best = 0;
    for (int w = 1; w < static_cast<int>(stamps_.size()); ++w) {
      if (stamps_[w] < stamps_[best]) best = w;
    }
    return best;
  }

  ReplPolicy policy() const { return policy_; }

 private:
  ReplPolicy policy_;
  std::vector<std::uint64_t> stamps_;
  Rng rng_;
};

}  // namespace safespec::memory
