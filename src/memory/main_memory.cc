#include "memory/main_memory.h"

#include <algorithm>

namespace safespec::memory {

void MainMemory::map_page(Addr page, PagePerm perm) { perms_[page] = perm; }

std::optional<PagePerm> MainMemory::page_perm(Addr page) const {
  const PagePerm* perm = perms_.find(page);
  if (perm == nullptr) return std::nullopt;
  return *perm;
}

bool MainMemory::access_ok(Addr page, PrivLevel level) const {
  const auto perm = page_perm(page);
  if (!perm.has_value()) return false;
  if (*perm == PagePerm::kKernel && level == PrivLevel::kUser) return false;
  return true;
}

std::uint64_t MainMemory::read64(Addr addr) const {
  const std::uint64_t* word = words_.find(word_of(addr));
  return word == nullptr ? 0 : *word;
}

void MainMemory::write64(Addr addr, std::uint64_t value) {
  words_[word_of(addr)] = value;
}

std::vector<std::pair<Addr, std::uint64_t>> MainMemory::nonzero_words()
    const {
  std::vector<std::pair<Addr, std::uint64_t>> out;
  out.reserve(words_.size());
  words_.for_each([&out](Addr word, std::uint64_t value) {
    if (value != 0) out.emplace_back(word << 3, value);
  });
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace safespec::memory
