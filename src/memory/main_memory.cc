#include "memory/main_memory.h"

namespace safespec::memory {

void MainMemory::map_page(Addr page, PagePerm perm) { perms_[page] = perm; }

std::optional<PagePerm> MainMemory::page_perm(Addr page) const {
  auto it = perms_.find(page);
  if (it == perms_.end()) return std::nullopt;
  return it->second;
}

bool MainMemory::access_ok(Addr page, PrivLevel level) const {
  const auto perm = page_perm(page);
  if (!perm.has_value()) return false;
  if (*perm == PagePerm::kKernel && level == PrivLevel::kUser) return false;
  return true;
}

std::uint64_t MainMemory::read64(Addr addr) const {
  auto it = words_.find(word_of(addr));
  return it == words_.end() ? 0 : it->second;
}

void MainMemory::write64(Addr addr, std::uint64_t value) {
  words_[word_of(addr)] = value;
}

}  // namespace safespec::memory
