#include "memory/page_table.h"

namespace safespec::memory {

void PageTable::map(Addr vpage, Addr ppage, bool kernel_only) {
  table_[vpage] = Translation{ppage, kernel_only, /*present=*/true};
}

Translation PageTable::translate(Addr vpage) const {
  const Translation* xlat = table_.find(vpage);
  return xlat == nullptr ? Translation{} : *xlat;
}

namespace {
// splitmix64 finalizer: scatters synthetic page-table pages across the
// reserved region the way real table pages scatter across physical
// memory (a naive power-of-two layout would alias every walk line into
// one cache set, which both wrecks timing and is unphysical).
Addr mix(Addr x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}
}  // namespace

void PageTable::walk_addresses(Addr vpage, Addr out[kWalkLevels]) const {
  // x86-64-style radix walk: level L's table is selected by the vpage
  // bits above level L (so all pages share the root table, nearby pages
  // share lower tables — real walker locality), and the entry within the
  // table by the next 9 bits. Table pages live in a reserved "page-table
  // heap" region disjoint from workload data.
  constexpr Addr kPageTableBase = 0xFFFF'0000'0000ULL;
  constexpr Addr kHeapPages = 1ULL << 20;
  for (int level = 0; level < kWalkLevels; ++level) {
    const int shift = 9 * (kWalkLevels - level);
    const Addr table_path = shift >= 64 ? 0 : (vpage >> shift);
    const Addr index = (vpage >> (9 * (kWalkLevels - 1 - level))) & 0x1FF;
    const Addr table_page =
        mix(table_path * kWalkLevels + static_cast<Addr>(level)) % kHeapPages;
    out[level] = kPageTableBase + table_page * kPageSize + index * 8;
  }
}

std::vector<Addr> PageTable::walk_addresses(Addr vpage) const {
  Addr lines[kWalkLevels];
  walk_addresses(vpage, lines);
  return std::vector<Addr>(lines, lines + kWalkLevels);
}

}  // namespace safespec::memory
