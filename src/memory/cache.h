// Set-associative cache tag array with pluggable replacement.
//
// The simulator models tags only — data values live in MainMemory (the
// architectural store) because timing, not payload, is what caches decide.
// That is also exactly the granularity at which the Spectre/Meltdown covert
// channel operates: presence or absence of a line.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/stats.h"
#include "common/types.h"
#include "memory/replacement.h"

namespace safespec::memory {

/// Geometry + behaviour knobs for one cache level.
struct CacheConfig {
  std::string name = "cache";
  std::uint64_t size_bytes = 32 * 1024;
  int ways = 8;
  int line_bytes = 64;
  Cycle hit_latency = 4;
  ReplPolicy policy = ReplPolicy::kLru;
  std::uint64_t seed = 1;  ///< for kRandom replacement

  /// Victim-selection protection (SHARP / detect-only). kNone for every
  /// pre-existing policy; the ProtectionPolicy's tune() sets it.
  CacheProtection protection = CacheProtection::kNone;
  /// SHARP detector: alarms within one epoch before a detection fires.
  /// The exemplar recommends 2,000 alarms per epoch.
  std::uint64_t alarm_threshold = 2000;
  /// Epoch length in replacement stamps (tick_ advances once per stamping
  /// access — an access-count proxy for the exemplar's cycle epoch).
  std::uint64_t alarm_epoch_ticks = 1'000'000'000;

  int num_sets() const {
    return static_cast<int>(size_bytes / (static_cast<std::uint64_t>(ways) *
                                          line_bytes));
  }
};

/// One level of cache. Addresses passed in are *line* numbers (byte
/// address >> line shift) — the hierarchy does the conversion once.
class Cache {
 public:
  explicit Cache(const CacheConfig& config);

  /// Looks a line up and records hit/miss stats. Returns hit.
  ///
  /// `update_replacement=false` is the SafeSpec speculative path: not even
  /// the replacement state may observe a speculative access (§IV-A notes
  /// that the cache replacement algorithm state must stay unaffected by
  /// speculative data that does not commit).
  ///
  /// `count_stats=false` excludes the access from hit/miss statistics —
  /// used for page-walker traffic so that the reported "read miss rate"
  /// counts program accesses identically under every protection mode.
  ///
  /// `owner` attributes the access to a requesting context (core id at
  /// the shared L2/L3, always 0 for private levels); it feeds the
  /// replacement hooks and the cross-owner eviction counter and never
  /// changes hit/miss behaviour.
  bool access(Addr line, bool update_replacement = true,
              bool count_stats = true, int owner = 0);

  /// Lookup with no side effects (no LRU update, no stats). The attack
  /// receivers use the *timed* path instead; probe() is for tests.
  bool probe(Addr line) const;

  /// Inserts a line, evicting if needed. Returns the evicted line (for
  /// inclusive back-invalidation) or nullopt if a free/duplicate way was
  /// used. Filling a line already present just refreshes it. `owner` is
  /// recorded as the line's owning context.
  std::optional<Addr> fill(Addr line, int owner = 0);

  /// Removes a line if present (clflush / back-invalidate). Returns
  /// whether it was present.
  bool invalidate(Addr line);

  /// Drops every line (used between attack trials).
  void flush_all();

  const CacheConfig& config() const { return config_; }
  HitMiss& stats() {
    flush_stats();
    return stats_;
  }
  const HitMiss& stats() const {
    flush_stats();
    return stats_;
  }

  /// Number of valid lines currently resident (tests / occupancy checks).
  std::size_t occupancy() const;

  /// Set index a line maps to (exposed for eviction-set construction in
  /// the Prime+Probe receiver and tests).
  int set_of(Addr line) const {
    return static_cast<int>(line % static_cast<Addr>(num_sets_));
  }

  /// The context that filled a resident line, or -1 when absent (shared-
  /// level attribution; tests and the cross-core attack harness).
  int owner_of(Addr line) const;

  /// Fills whose victim belonged to a different context — the remote-
  /// eviction signal a spy observes at a shared level. Always 0 when
  /// every requester passes owner 0 (single-core).
  std::uint64_t cross_owner_evictions() const {
    return cross_owner_evictions_;
  }

  /// SHARP alarms: under kSharp, fills forced to evict across owners
  /// (no requester-owned way in the set); under kDetectOnly, every
  /// cross-owner eviction. Always 0 under kNone.
  std::uint64_t sharp_alarms() const { return sharp_alarms_; }

  /// Epochs in which the alarm count crossed config().alarm_threshold —
  /// the detector's "an attack is likely in progress" signal.
  std::uint64_t sharp_detections() const { return sharp_detections_; }

 private:
  struct Way {
    Addr tag = 0;
    bool valid = false;
  };

  int find_way(int set, Addr line) const;

  /// Bumps the alarm counter and rolls the detector epoch lazily: when
  /// the stamp clock has moved past the current epoch the window restarts
  /// before the alarm is recorded, and a detection fires the moment an
  /// epoch's alarm count reaches the threshold (counted once per epoch).
  void record_alarm();

  /// Folds the batched access tallies into the named counters. Like the
  /// occupancy histogram's run-length batching, the pending counts are an
  /// encoding detail every reader flushes first — the observable
  /// statistics are bit-identical to per-access Counter bumps.
  void flush_stats() const {
    if (pending_hits_ != 0) {
      stats_.hits.add(pending_hits_);
      pending_hits_ = 0;
    }
    if (pending_misses_ != 0) {
      stats_.misses.add(pending_misses_);
      pending_misses_ = 0;
    }
  }

  CacheConfig config_;
  int num_sets_;
  std::vector<Way> ways_;                       // num_sets_ * config_.ways
  std::vector<ReplacementState> repl_;          // one per set
  /// Replacement stamp clock: advanced only when a stamp is written
  /// (touch/fill). LRU/FIFO compare stamp order, not values, so skipping
  /// the bump on non-stamping accesses changes no eviction decision.
  std::uint64_t tick_ = 0;
  mutable HitMiss stats_;
  mutable std::uint64_t pending_hits_ = 0;
  mutable std::uint64_t pending_misses_ = 0;
  std::uint64_t cross_owner_evictions_ = 0;
  std::uint64_t sharp_alarms_ = 0;
  std::uint64_t sharp_detections_ = 0;
  std::uint64_t epoch_start_tick_ = 0;
  std::uint64_t epoch_alarms_ = 0;
};

}  // namespace safespec::memory
