#include "memory/tlb.h"

#include <stdexcept>

namespace safespec::memory {

Tlb::Tlb(const TlbConfig& config)
    : config_(config), num_sets_(config.num_sets()) {
  if (config_.entries <= 0 || config_.ways <= 0 ||
      config_.entries % config_.ways != 0) {
    throw std::invalid_argument("Tlb: entries must divide evenly into ways");
  }
  ways_.resize(static_cast<std::size_t>(config_.entries));
  repl_.reserve(num_sets_);
  for (int s = 0; s < num_sets_; ++s) {
    repl_.emplace_back(config_.policy, config_.ways,
                       config_.seed + static_cast<std::uint64_t>(s));
  }
}

int Tlb::find_way(int set, Addr vpage) const {
  const std::size_t base = static_cast<std::size_t>(set) * config_.ways;
  for (int w = 0; w < config_.ways; ++w) {
    const Way& way = ways_[base + w];
    if (way.valid && way.entry.vpage == vpage) return w;
  }
  return -1;
}

std::optional<TlbEntry> Tlb::access(Addr vpage) {
  const int set = set_of(vpage);
  const int way = find_way(set, vpage);
  if (way >= 0) {
    repl_[set].touch(way, ++tick_);
    ++pending_hits_;
    return ways_[static_cast<std::size_t>(set) * config_.ways + way].entry;
  }
  ++pending_misses_;
  return std::nullopt;
}

bool Tlb::probe(Addr vpage) const {
  return find_way(set_of(vpage), vpage) >= 0;
}

std::optional<Addr> Tlb::fill(const TlbEntry& entry) {
  ++tick_;
  const int set = set_of(entry.vpage);
  const std::size_t base = static_cast<std::size_t>(set) * config_.ways;

  if (const int existing = find_way(set, entry.vpage); existing >= 0) {
    ways_[base + existing].entry = entry;
    repl_[set].fill(existing, tick_);
    return std::nullopt;
  }
  for (int w = 0; w < config_.ways; ++w) {
    Way& way = ways_[base + w];
    if (!way.valid) {
      way.valid = true;
      way.entry = entry;
      repl_[set].fill(w, tick_);
      return std::nullopt;
    }
  }
  const int victim = repl_[set].victim(tick_);
  Way& way = ways_[base + victim];
  const Addr evicted = way.entry.vpage;
  way.entry = entry;
  repl_[set].fill(victim, tick_);
  return evicted;
}

bool Tlb::invalidate(Addr vpage) {
  const int set = set_of(vpage);
  const int way = find_way(set, vpage);
  if (way < 0) return false;
  ways_[static_cast<std::size_t>(set) * config_.ways + way].valid = false;
  return true;
}

void Tlb::flush_all() {
  for (Way& way : ways_) way.valid = false;
}

std::size_t Tlb::occupancy() const {
  std::size_t n = 0;
  for (const Way& way : ways_) n += way.valid ? 1 : 0;
  return n;
}

}  // namespace safespec::memory
