#include "campaign/triage.h"

#include <algorithm>
#include <cctype>
#include <map>
#include <stdexcept>

#include "common/json.h"
#include "experiment/row_sink.h"

namespace safespec::campaign {

namespace {

bool is_hex_digit(char c) {
  return std::isxdigit(static_cast<unsigned char>(c)) != 0;
}

}  // namespace

std::string normalize_violation(const std::string& violation) {
  std::string out;
  std::size_t i = 0;
  while (i < violation.size()) {
    const char c = violation[i];
    if (c == '0' && i + 1 < violation.size() && violation[i + 1] == 'x' &&
        i + 2 < violation.size() && is_hex_digit(violation[i + 2])) {
      out += "0x#";
      i += 2;
      while (i < violation.size() && is_hex_digit(violation[i])) ++i;
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) != 0) {
      out += '#';
      while (i < violation.size() &&
             std::isdigit(static_cast<unsigned char>(violation[i])) != 0) {
        ++i;
      }
      continue;
    }
    out += c;
    ++i;
  }
  return out;
}

TriageReport triage_records(const std::vector<UnitRecord>& records) {
  TriageReport report;
  report.units = records.size();
  // fingerprint -> group, filled in unit order so `example` and
  // `first_seed` come from the smallest failing seed (units ascend with
  // seeds in a fuzz campaign).
  std::map<std::string, TriageGroup> groups;
  for (const UnitRecord& rec : records) {
    const json::Value v = json::parse(rec.line);
    const json::Value* ok = v.find("ok");
    const json::Value* seed = v.find("seed");
    if (ok == nullptr || seed == nullptr) {
      throw std::invalid_argument(
          "unit line is not a fuzz campaign record (triage needs "
          "kind=fuzz journals): " +
          rec.line);
    }
    if (ok->boolean) continue;
    ++report.failures;
    const std::uint64_t seed_value = json::as_u64(*seed, "seed");
    std::string first_violation = "(no violation recorded)";
    if (const json::Value* violations = v.find("violations")) {
      if (!violations->array.empty()) {
        first_violation = violations->array.front().text;
      }
    }
    const std::string fingerprint = normalize_violation(first_violation);
    auto [it, inserted] = groups.emplace(fingerprint, TriageGroup{});
    TriageGroup& group = it->second;
    if (inserted) {
      group.fingerprint = fingerprint;
      group.example = first_violation;
      group.first_seed = seed_value;
    }
    group.seeds.push_back(seed_value);
  }
  for (auto& [fingerprint, group] : groups) {
    std::sort(group.seeds.begin(), group.seeds.end());
    group.first_seed = group.seeds.front();
    report.groups.push_back(std::move(group));
  }
  std::sort(report.groups.begin(), report.groups.end(),
            [](const TriageGroup& a, const TriageGroup& b) {
              return a.first_seed < b.first_seed;
            });
  return report;
}

TriageReport triage(const Manifest& manifest, const std::string& dir) {
  if (manifest.kind != "fuzz") {
    throw std::invalid_argument("triage needs a fuzz campaign, not kind=\"" +
                                manifest.kind + "\"");
  }
  return triage_records(
      collect_units(manifest, dir, /*require_complete=*/false));
}

TriageReport triage_merged_file(const std::string& merged_path) {
  const std::string data = json::read_file(merged_path, "merged campaign");
  std::vector<UnitRecord> records;
  std::size_t pos = 0;
  std::uint64_t index = 0;
  while (pos < data.size()) {
    std::size_t nl = data.find('\n', pos);
    if (nl == std::string::npos) nl = data.size();
    if (nl > pos) records.push_back({index++, data.substr(pos, nl - pos)});
    pos = nl + 1;
  }
  return triage_records(records);
}

std::string render_triage_text(const TriageReport& report,
                               const Manifest* manifest) {
  std::string out;
  char line[256];
  std::snprintf(line, sizeof line,
                "triage: %llu units, %llu failing seeds, %zu distinct "
                "failure groups\n",
                static_cast<unsigned long long>(report.units),
                static_cast<unsigned long long>(report.failures),
                report.groups.size());
  out += line;
  const std::string spec_suffix =
      manifest != nullptr && !manifest->fuzz.spec.empty()
          ? " --spec=" + manifest->fuzz.spec
          : "";
  for (std::size_t g = 0; g < report.groups.size(); ++g) {
    const TriageGroup& group = report.groups[g];
    std::snprintf(line, sizeof line,
                  "group %zu: %zu seeds, first %llu\n", g + 1,
                  group.seeds.size(),
                  static_cast<unsigned long long>(group.first_seed));
    out += line;
    out += "  fingerprint: " + group.fingerprint + "\n";
    out += "  example:     " + group.example + "\n";
    out += "  seeds:      ";
    const std::size_t shown = std::min<std::size_t>(group.seeds.size(), 16);
    for (std::size_t i = 0; i < shown; ++i) {
      out += " " + std::to_string(group.seeds[i]);
    }
    if (shown < group.seeds.size()) {
      out += " ... (" + std::to_string(group.seeds.size() - shown) + " more)";
    }
    out += "\n";
    out += "  repro:       fuzz_driver --seed=" +
           std::to_string(group.first_seed) + " --count=1 --dump" +
           spec_suffix + "\n";
  }
  return out;
}

std::string render_triage_json(const TriageReport& report) {
  std::string out = "{\n";
  out += "  \"units\": " + std::to_string(report.units) + ",\n";
  out += "  \"failures\": " + std::to_string(report.failures) + ",\n";
  out += "  \"groups\": [";
  for (std::size_t g = 0; g < report.groups.size(); ++g) {
    const TriageGroup& group = report.groups[g];
    out += g == 0 ? "\n" : ",\n";
    out += "    {\"fingerprint\": \"" +
           experiment::json_escape(group.fingerprint) + "\",\n";
    out += "     \"example\": \"" + experiment::json_escape(group.example) +
           "\",\n";
    out += "     \"first_seed\": " + std::to_string(group.first_seed) +
           ",\n";
    out += "     \"count\": " + std::to_string(group.seeds.size()) + ",\n";
    out += "     \"seeds\": [";
    for (std::size_t i = 0; i < group.seeds.size(); ++i) {
      if (i > 0) out += ", ";
      out += std::to_string(group.seeds[i]);
    }
    out += "]}";
  }
  out += report.groups.empty() ? "]\n" : "\n  ]\n";
  out += "}\n";
  return out;
}

}  // namespace safespec::campaign
