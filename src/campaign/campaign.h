// Campaigns: named, versioned, resumable sweeps checkpointed to disk.
//
// A campaign is a manifest (JSON) naming a sweep — a fuzz seed range or
// a workload x policy x preset grid — and how it is split into shards.
// The manifest expands deterministically into work units (unit ids dense
// from 0); unit u belongs to shard u % shards, so N processes given the
// same manifest and disjoint --shard values never touch the same unit or
// the same file. Each shard streams one JSONL journal: a header line
// stamping the manifest identity (name, version, fingerprint), then one
// self-contained result line per completed unit, fflushed as written. A
// SIGKILLed shard therefore loses at most the line it was mid-write;
// reopening the journal truncates that torn tail and the resumed run
// skips every completed unit, so kill + resume converges on exactly the
// unit set an uninterrupted run produces.
//
// Unit lines carry only *simulated* data (no wall times, no hostnames),
// and merge() writes them header-less, sorted by unit id, deduplicated.
// Both byte-identity guarantees follow: a killed-and-resumed campaign
// merges identical to an uninterrupted one, and an S-shard split merges
// identical to a 1-shard run — pinned by tests/campaign_test.cc and the
// SIGKILL ctest script.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_set>
#include <vector>

namespace safespec::campaign {

/// The fuzz axis: one unit = one differential-fuzzer seed
/// (seed = first_seed + unit), checked across policies x presets.
struct FuzzAxis {
  std::uint64_t first_seed = 1;
  std::uint64_t count = 0;
  std::string spec;  ///< FuzzSpec JSON path ("" = built-in defaults)
  std::vector<std::string> policies;  ///< empty = every registered policy
  std::vector<std::string> presets;   ///< empty = every registered preset
  int cores = 1;
  /// Harness self-test defect injection: "" (off), "commit-xor"
  /// (corrupt committed writebacks) or "skip-squash-release" (leak
  /// shadow refs on squash). The triage tests run mutated campaigns so
  /// failure grouping is exercised without a real simulator bug.
  std::string mutate;
};

/// The grid axis: one unit = one workload/policy/preset cell run for a
/// fixed committed-instruction budget (workload-major expansion:
/// unit = (w * |policies| + p) * |presets| + r).
struct GridAxis {
  std::vector<std::string> workloads;
  std::vector<std::string> policies;
  std::vector<std::string> presets;
  std::vector<std::string> overrides;  ///< MachineSpec::set key=value
  std::uint64_t instrs = 60'000;
};

/// The parsed campaign manifest. Everything that shapes the work — the
/// axis, the shard count, even the name and version — feeds the
/// fingerprint, so a journal written under any other manifest revision
/// is refused rather than silently merged.
struct Manifest {
  std::string name;            ///< filesystem-safe ([A-Za-z0-9._-])
  std::uint64_t version = 1;
  std::string kind;            ///< "fuzz" | "grid"
  int shards = 1;
  FuzzAxis fuzz;
  GridAxis grid;

  static Manifest from_json(const std::string& text);
  static Manifest from_json_file(const std::string& path);
  /// Stable-key-order JSON (the fingerprint input; round-trips).
  std::string to_json() const;

  /// Structural checks plus eager name resolution (policies, presets,
  /// workloads, overrides, the FuzzSpec file) so a typo'd manifest
  /// fails before any shard starts. Throws std::invalid_argument.
  void validate() const;

  std::uint64_t num_units() const;
  int shard_of(std::uint64_t unit) const {
    return static_cast<int>(unit % static_cast<std::uint64_t>(shards));
  }
  /// Units owned by one shard.
  std::uint64_t units_of_shard(int shard) const;

  /// FNV-1a-64 of to_json(), as 16 hex digits.
  std::string fingerprint() const;

  /// DIR/NAME.shard<K>.jsonl — the shard's journal.
  std::string shard_path(const std::string& dir, int shard) const;
  /// DIR/NAME.merged.jsonl — merge()'s default output.
  std::string merged_path(const std::string& dir) const;
};

/// One completed unit as stored in a journal: the id and the verbatim
/// JSONL line (no trailing newline).
struct UnitRecord {
  std::uint64_t unit = 0;
  std::string line;
};

/// An open shard journal. Construction recovers: an existing file has
/// its header validated against the manifest (mismatch throws — never
/// resume into another campaign's journal), a torn tail from a killed
/// writer is truncated away (valid prefix rewritten atomically), and
/// every surviving unit line is indexed so run_shard can skip it. A
/// fresh file gets the header written immediately. append() is
/// thread-safe and fflushes per line (the durability the resume
/// protocol depends on).
class ShardJournal {
 public:
  ShardJournal(const Manifest& manifest, const std::string& dir, int shard);
  ~ShardJournal();
  ShardJournal(const ShardJournal&) = delete;
  ShardJournal& operator=(const ShardJournal&) = delete;

  bool has(std::uint64_t unit) const {
    return completed_.count(unit) != 0;
  }
  std::size_t num_completed() const { return completed_.size(); }
  /// Whether construction found (and truncated) a torn tail.
  bool recovered_torn_tail() const { return recovered_torn_tail_; }
  const std::string& path() const { return path_; }

  /// Appends one unit line (no newline) and flushes. Thread-safe.
  void append(std::uint64_t unit, const std::string& line);

 private:
  std::string path_;
  std::FILE* out_ = nullptr;
  std::mutex mutex_;
  std::unordered_set<std::uint64_t> completed_;
  bool recovered_torn_tail_ = false;
};

struct RunOptions {
  int threads = 0;  ///< 0 = hardware concurrency
  /// Stop after completing this many new units (0 = no limit). The
  /// deterministic stand-in for a kill: tests run a prefix, then resume.
  std::uint64_t max_units = 0;
};

struct RunStats {
  std::uint64_t ran = 0;      ///< units executed by this call
  std::uint64_t skipped = 0;  ///< units already in the journal
  std::uint64_t failures = 0; ///< fuzz units with a failing verdict
};

/// Runs (or resumes) one shard: every unit of the shard not already in
/// its journal, on the experiment engine's thread pool. Unit results are
/// deterministic functions of the manifest alone, so journal content is
/// independent of thread count and of how many times the shard was
/// killed and resumed. Throws on journal/manifest mismatch or bad config.
RunStats run_shard(const Manifest& manifest, const std::string& dir,
                   int shard, const RunOptions& options);

struct MergeStats {
  std::uint64_t units = 0;
  int shards_read = 0;
};

/// Collects every shard journal's unit records (headers validated,
/// unparseable tails skipped, identical duplicates collapsed,
/// conflicting duplicates fatal), sorted by unit id. With
/// `require_complete`, throws unless every unit of the manifest is
/// present — merge()'s precondition.
std::vector<UnitRecord> collect_units(const Manifest& manifest,
                                      const std::string& dir,
                                      bool require_complete);

/// Writes the merged artifact: every unit line, sorted by unit id, no
/// header — byte-identical however the campaign was sharded, killed or
/// resumed. Atomic (tmp + rename). Throws if any unit is missing.
MergeStats merge(const Manifest& manifest, const std::string& dir,
                 const std::string& out_path);

struct ShardStatus {
  int shard = 0;
  bool exists = false;
  std::uint64_t done = 0;
  std::uint64_t expected = 0;
  bool torn_tail = false;  ///< journal currently ends mid-line
};

/// Per-shard progress, read-only (does not repair torn tails).
std::vector<ShardStatus> status(const Manifest& manifest,
                                const std::string& dir);

}  // namespace safespec::campaign
