#include "campaign/report.h"

#include <cmath>
#include <cstdio>
#include <limits>
#include <map>

#include "experiment/row_sink.h"

namespace safespec::campaign {

namespace {

std::string html_escape(const std::string& text) {
  std::string out;
  for (char c : text) {
    switch (c) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '"': out += "&quot;"; break;
      default: out += c;
    }
  }
  return out;
}

std::string fmt(const char* format, double value) {
  char buf[64];
  std::snprintf(buf, sizeof buf, format, value);
  return buf;
}

/// One MIPS series per cell key, aligned to the run axis (NaN = the key
/// is absent from that run). Keys in first-appearance order.
struct Series {
  std::vector<std::string> keys;
  std::map<std::string, std::vector<double>> by_key;
};

Series collect_series(const std::vector<PerfRun>& runs) {
  Series s;
  for (std::size_t r = 0; r < runs.size(); ++r) {
    for (const PerfCell& cell : runs[r].cells) {
      const std::string key = cell.key();
      auto [it, inserted] = s.by_key.emplace(
          key, std::vector<double>(runs.size(),
                                   std::numeric_limits<double>::quiet_NaN()));
      if (inserted) s.keys.push_back(key);
      it->second[r] = cell.mips;
    }
  }
  return s;
}

/// Inline SVG line chart of one series; gaps (NaN) break the line.
std::string svg_line(const std::vector<double>& values, int width,
                     int height) {
  double lo = 0.0, hi = 0.0;
  bool any = false;
  for (double v : values) {
    if (std::isnan(v)) continue;
    if (!any || v < lo) lo = v;
    if (!any || v > hi) hi = v;
    any = true;
  }
  if (!any) return "";
  if (hi <= lo) hi = lo + 1.0;  // flat series still renders mid-height

  std::string svg = "<svg width=\"" + std::to_string(width) +
                    "\" height=\"" + std::to_string(height) +
                    "\" viewBox=\"0 0 " + std::to_string(width) + " " +
                    std::to_string(height) + "\">";
  const double x_span = values.size() > 1
                            ? static_cast<double>(width - 8) /
                                  static_cast<double>(values.size() - 1)
                            : 0.0;
  std::string points;
  auto flush_segment = [&] {
    if (points.empty()) return;
    svg += "<polyline fill=\"none\" stroke=\"#2b6cb0\" stroke-width=\"1.5\" "
           "points=\"" + points + "\"/>";
    points.clear();
  };
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (std::isnan(values[i])) {
      flush_segment();
      continue;
    }
    const double x = 4.0 + x_span * static_cast<double>(i);
    const double y = height - 4.0 -
                     (values[i] - lo) / (hi - lo) *
                         static_cast<double>(height - 8);
    if (!points.empty()) points += " ";
    points += fmt("%.1f", x) + "," + fmt("%.1f", y);
    svg += "<circle cx=\"" + fmt("%.1f", x) + "\" cy=\"" + fmt("%.1f", y) +
           "\" r=\"2\" fill=\"#2b6cb0\"/>";
  }
  flush_segment();
  svg += "</svg>";
  return svg;
}

double last_defined(const std::vector<double>& values) {
  for (std::size_t i = values.size(); i > 0; --i) {
    if (!std::isnan(values[i - 1])) return values[i - 1];
  }
  return std::numeric_limits<double>::quiet_NaN();
}

double first_defined(const std::vector<double>& values) {
  for (double v : values) {
    if (!std::isnan(v)) return v;
  }
  return std::numeric_limits<double>::quiet_NaN();
}

}  // namespace

std::string render_trend_html(const std::vector<PerfRun>& runs) {
  const Series series = collect_series(runs);
  std::vector<double> aggregate;
  for (const PerfRun& run : runs) aggregate.push_back(run.aggregate_mips);

  std::string html =
      "<!DOCTYPE html>\n<html>\n<head>\n<meta charset=\"utf-8\">\n"
      "<title>SafeSpec simulation-throughput trend</title>\n"
      "<style>\n"
      "body { font: 14px/1.4 sans-serif; margin: 2em; color: #1a202c; }\n"
      "table { border-collapse: collapse; }\n"
      "th, td { padding: 4px 10px; border-bottom: 1px solid #e2e8f0;"
      " text-align: left; }\n"
      "td.num { text-align: right; font-variant-numeric: tabular-nums; }\n"
      ".down { color: #c53030; } .up { color: #2f855a; }\n"
      "</style>\n</head>\n<body>\n"
      "<h1>SafeSpec simulation-throughput trend</h1>\n";
  html += "<p>" + std::to_string(runs.size()) + " runs, " +
          std::to_string(series.keys.size()) +
          " cell keys. MIPS = millions of simulated committed instructions "
          "per host second (higher is better).</p>\n";

  html += "<h2>Aggregate MIPS</h2>\n";
  html += svg_line(aggregate, 720, 160) + "\n";
  html += "<table>\n<tr><th>run</th><th>aggregate MIPS</th>"
          "<th>instrs/cell</th><th>cells</th></tr>\n";
  for (const PerfRun& run : runs) {
    html += "<tr><td>" + html_escape(run.label) + "</td><td class=\"num\">" +
            fmt("%.2f", run.aggregate_mips) + "</td><td class=\"num\">" +
            std::to_string(run.instrs_per_cell) + "</td><td class=\"num\">" +
            std::to_string(run.cells.size()) + "</td></tr>\n";
  }
  html += "</table>\n";

  html += "<h2>Per-cell MIPS</h2>\n";
  html += "<table>\n<tr><th>cell</th><th>trend</th><th>first</th>"
          "<th>last</th><th>delta</th></tr>\n";
  for (const std::string& key : series.keys) {
    const std::vector<double>& values = series.by_key.at(key);
    const double first = first_defined(values);
    const double last = last_defined(values);
    const double delta =
        first > 0.0 && !std::isnan(last) ? (last - first) / first * 100.0
                                         : 0.0;
    const char* cls = delta < -2.0 ? "down" : (delta > 2.0 ? "up" : "");
    html += "<tr><td>" + html_escape(key) + "</td><td>" +
            svg_line(values, 180, 36) + "</td><td class=\"num\">" +
            fmt("%.2f", first) + "</td><td class=\"num\">" +
            fmt("%.2f", last) + "</td><td class=\"num " + cls + "\">" +
            fmt("%+.1f", delta) + "%</td></tr>\n";
  }
  html += "</table>\n</body>\n</html>\n";
  return html;
}

std::string render_trend_json(const std::vector<PerfRun>& runs) {
  const Series series = collect_series(runs);
  std::string out = "{\n  \"runs\": [";
  for (std::size_t r = 0; r < runs.size(); ++r) {
    if (r > 0) out += ", ";
    out += "\"" + experiment::json_escape(runs[r].label) + "\"";
  }
  out += "],\n  \"aggregate_mips\": [";
  for (std::size_t r = 0; r < runs.size(); ++r) {
    if (r > 0) out += ", ";
    out += fmt("%.2f", runs[r].aggregate_mips);
  }
  out += "],\n  \"cells\": [";
  for (std::size_t k = 0; k < series.keys.size(); ++k) {
    out += k == 0 ? "\n" : ",\n";
    const std::vector<double>& values = series.by_key.at(series.keys[k]);
    out += "    {\"key\": \"" + experiment::json_escape(series.keys[k]) +
           "\", \"mips\": [";
    for (std::size_t r = 0; r < values.size(); ++r) {
      if (r > 0) out += ", ";
      out += std::isnan(values[r]) ? "null" : fmt("%.2f", values[r]);
    }
    out += "]}";
  }
  out += series.keys.empty() ? "]\n" : "\n  ]\n";
  out += "}\n";
  return out;
}

}  // namespace safespec::campaign
