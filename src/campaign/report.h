// Perf-trend report: MIPS across a directory of perf artifacts.
//
// Input is what CI archives anyway — one BENCH_sim_throughput.json per
// nightly run. The HTML report is a single self-contained file (inline
// SVG, no scripts, no external assets): an aggregate-MIPS trend line
// plus one sparkline row per cell key, so a simulator slowdown shows up
// as a visible dip in the nightly artifact without any tooling beyond a
// browser. The JSON twin carries the same series for machines.
#pragma once

#include <string>
#include <vector>

#include "campaign/perf_artifacts.h"

namespace safespec::campaign {

/// Self-contained HTML document plotting aggregate and per-cell MIPS
/// across `runs` (in input order; load_perf_dir sorts by filename).
std::string render_trend_html(const std::vector<PerfRun>& runs);

/// {"runs":[...labels...],"aggregate_mips":[...],"cells":[{key,series}]}
std::string render_trend_json(const std::vector<PerfRun>& runs);

}  // namespace safespec::campaign
