#include "campaign/campaign.h"

#include <algorithm>
#include <atomic>
#include <cctype>
#include <cstdio>
#include <stdexcept>
#include <unordered_map>

#include "common/hash.h"
#include "common/json.h"
#include "cpu/core.h"
#include "experiment/experiment.h"
#include "experiment/row_sink.h"
#include "fuzz/differential.h"
#include "fuzz/fuzz_spec.h"
#include "safespec/policy.h"
#include "sim/machine.h"
#include "workloads/workload.h"

namespace safespec::campaign {

namespace {

std::string quoted(const std::string& text) {
  return "\"" + experiment::json_escape(text) + "\"";
}

std::string string_array(const std::vector<std::string>& items) {
  std::string out = "[";
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (i > 0) out += ", ";
    out += quoted(items[i]);
  }
  out += "]";
  return out;
}

void read_string_list(const json::Value& obj, const char* key,
                      std::vector<std::string>& out) {
  const json::Value* v = obj.find(key);
  if (v == nullptr) return;
  if (v->kind != json::Value::Kind::kArray) {
    throw std::invalid_argument(std::string(key) +
                                " must be an array of strings");
  }
  out.clear();
  for (const json::Value& item : v->array) {
    if (item.kind != json::Value::Kind::kString) {
      throw std::invalid_argument(std::string(key) +
                                  " must be an array of strings");
    }
    out.push_back(item.text);
  }
}

cpu::MutationHooks mutation_hooks(const std::string& mutate) {
  cpu::MutationHooks hooks;
  if (mutate == "commit-xor") {
    hooks.commit_xor = 1;
  } else if (mutate == "skip-squash-release") {
    hooks.skip_squash_release = true;
  }
  return hooks;
}

/// One journal file, scanned read-only: header checked against the
/// manifest, unit lines indexed, everything after the first unparseable
/// byte treated as a torn tail (the suffix a killed writer left behind).
struct ScanResult {
  bool exists = false;
  bool have_header = false;
  bool torn = false;
  std::size_t valid_bytes = 0;  ///< prefix of intact, in-protocol lines
  std::vector<UnitRecord> records;
};

std::string header_line(const Manifest& m, int shard) {
  return experiment::JsonlObject()
      .text("campaign", m.name)
      .u64("version", m.version)
      .text("kind", m.kind)
      .u64("shard", static_cast<std::uint64_t>(shard))
      .u64("shards", static_cast<std::uint64_t>(m.shards))
      .u64("units", m.num_units())
      .text("fingerprint", m.fingerprint())
      .str();
}

/// Throws std::runtime_error when the journal's header identifies a
/// different campaign — resuming into it would interleave incompatible
/// results, so refusal is the only safe answer.
void check_header(const json::Value& header, const Manifest& m, int shard,
                  const std::string& path) {
  const json::Value* name = header.find("campaign");
  const json::Value* fingerprint = header.find("fingerprint");
  const json::Value* shard_v = header.find("shard");
  if (name == nullptr || fingerprint == nullptr || shard_v == nullptr) {
    throw std::runtime_error(path + ": not a campaign shard journal");
  }
  if (name->text != m.name || fingerprint->text != m.fingerprint()) {
    throw std::runtime_error(
        path + ": journal belongs to campaign \"" + name->text +
        "\" fingerprint " + fingerprint->text + ", manifest is \"" + m.name +
        "\" fingerprint " + m.fingerprint() +
        " (edit the manifest version/name or use a fresh --dir)");
  }
  if (json::as_u64(*shard_v, "shard") != static_cast<std::uint64_t>(shard)) {
    throw std::runtime_error(path + ": journal is for shard " +
                             shard_v->text + ", expected " +
                             std::to_string(shard));
  }
}

ScanResult scan_journal(const std::string& path, const Manifest& m,
                        int shard) {
  ScanResult scan;
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return scan;
  scan.exists = true;
  std::string data;
  char buf[1 << 16];
  std::size_t got;
  while ((got = std::fread(buf, 1, sizeof buf, f)) > 0) data.append(buf, got);
  std::fclose(f);

  std::size_t pos = 0;
  bool first = true;
  while (pos < data.size()) {
    const std::size_t nl = data.find('\n', pos);
    if (nl == std::string::npos) break;  // partial line: torn tail
    const std::string line = data.substr(pos, nl - pos);
    try {
      const json::Value v = json::parse(line);
      if (first) {
        check_header(v, m, shard, path);  // mismatch propagates
        scan.have_header = true;
      } else {
        const json::Value* unit = v.find("unit");
        if (unit == nullptr) break;  // out-of-protocol line: torn
        UnitRecord rec;
        rec.unit = json::as_u64(*unit, "unit");
        if (rec.unit >= m.num_units()) break;
        rec.line = line;
        scan.records.push_back(std::move(rec));
      }
    } catch (const std::runtime_error&) {
      throw;  // header mismatch — not recoverable by truncation
    } catch (const std::exception&) {
      break;  // malformed JSON: torn tail starts here
    }
    pos = nl + 1;
    scan.valid_bytes = pos;
    first = false;
  }
  scan.torn = scan.valid_bytes != data.size();
  return scan;
}

/// Rewrites `path` to its first `valid_bytes` bytes, atomically.
void truncate_to(const std::string& path, std::size_t valid_bytes) {
  std::string data;
  {
    std::FILE* in = std::fopen(path.c_str(), "rb");
    if (in == nullptr) {
      throw std::runtime_error("cannot reopen " + path + " for recovery");
    }
    data.resize(valid_bytes);
    const std::size_t got = std::fread(data.data(), 1, valid_bytes, in);
    std::fclose(in);
    data.resize(got);
  }
  const std::string tmp = path + ".tmp";
  std::FILE* out = std::fopen(tmp.c_str(), "wb");
  if (out == nullptr) {
    throw std::runtime_error("cannot write " + tmp);
  }
  if (!data.empty()) std::fwrite(data.data(), 1, data.size(), out);
  std::fflush(out);
  std::fclose(out);
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    throw std::runtime_error("cannot replace " + path);
  }
}

}  // namespace

// ---- manifest ---------------------------------------------------------------

Manifest Manifest::from_json(const std::string& text) {
  const json::Value doc = json::parse(text);
  if (doc.kind != json::Value::Kind::kObject) {
    throw std::invalid_argument("campaign manifest must be a JSON object");
  }
  Manifest m;
  json::read_string(doc, "campaign", m.name);
  json::read_u64(doc, "version", m.version);
  json::read_string(doc, "kind", m.kind);
  json::read_int(doc, "shards", m.shards);
  if (const json::Value* f = doc.find("fuzz")) {
    json::read_u64(*f, "first_seed", m.fuzz.first_seed);
    json::read_u64(*f, "count", m.fuzz.count);
    json::read_string(*f, "spec", m.fuzz.spec);
    read_string_list(*f, "policies", m.fuzz.policies);
    read_string_list(*f, "presets", m.fuzz.presets);
    json::read_int(*f, "cores", m.fuzz.cores);
    json::read_string(*f, "mutate", m.fuzz.mutate);
  }
  if (const json::Value* g = doc.find("grid")) {
    read_string_list(*g, "workloads", m.grid.workloads);
    read_string_list(*g, "policies", m.grid.policies);
    read_string_list(*g, "presets", m.grid.presets);
    read_string_list(*g, "overrides", m.grid.overrides);
    json::read_u64(*g, "instrs", m.grid.instrs);
  }
  return m;
}

Manifest Manifest::from_json_file(const std::string& path) {
  return from_json(json::read_file(path, "campaign manifest"));
}

std::string Manifest::to_json() const {
  std::string out = "{\n";
  out += "  \"campaign\": " + quoted(name) + ",\n";
  out += "  \"version\": " + std::to_string(version) + ",\n";
  out += "  \"kind\": " + quoted(kind) + ",\n";
  out += "  \"shards\": " + std::to_string(shards);
  if (kind == "fuzz") {
    out += ",\n  \"fuzz\": {\n";
    out += "    \"first_seed\": " + std::to_string(fuzz.first_seed) + ",\n";
    out += "    \"count\": " + std::to_string(fuzz.count) + ",\n";
    out += "    \"spec\": " + quoted(fuzz.spec) + ",\n";
    out += "    \"policies\": " + string_array(fuzz.policies) + ",\n";
    out += "    \"presets\": " + string_array(fuzz.presets) + ",\n";
    out += "    \"cores\": " + std::to_string(fuzz.cores) + ",\n";
    out += "    \"mutate\": " + quoted(fuzz.mutate) + "\n  }";
  }
  if (kind == "grid") {
    out += ",\n  \"grid\": {\n";
    out += "    \"workloads\": " + string_array(grid.workloads) + ",\n";
    out += "    \"policies\": " + string_array(grid.policies) + ",\n";
    out += "    \"presets\": " + string_array(grid.presets) + ",\n";
    out += "    \"overrides\": " + string_array(grid.overrides) + ",\n";
    out += "    \"instrs\": " + std::to_string(grid.instrs) + "\n  }";
  }
  out += "\n}\n";
  return out;
}

void Manifest::validate() const {
  if (name.empty()) {
    throw std::invalid_argument("campaign name must not be empty");
  }
  for (char c : name) {
    if (std::isalnum(static_cast<unsigned char>(c)) == 0 && c != '.' &&
        c != '_' && c != '-') {
      throw std::invalid_argument(
          "campaign name \"" + name +
          "\" must use only [A-Za-z0-9._-] (it names journal files)");
    }
  }
  if (version == 0) {
    throw std::invalid_argument("campaign version must be >= 1");
  }
  if (shards < 1 || shards > 4096) {
    throw std::invalid_argument("shards must be in [1, 4096]");
  }
  if (kind == "fuzz") {
    if (fuzz.count < 1 || fuzz.count > 10'000'000) {
      throw std::invalid_argument("fuzz.count must be in [1, 10000000]");
    }
    if (fuzz.cores < 1 || fuzz.cores > 64) {
      throw std::invalid_argument("fuzz.cores must be in [1, 64]");
    }
    if (!fuzz.mutate.empty() && fuzz.mutate != "commit-xor" &&
        fuzz.mutate != "skip-squash-release") {
      throw std::invalid_argument(
          "fuzz.mutate must be \"\", \"commit-xor\" or "
          "\"skip-squash-release\"");
    }
    // Resolve every name eagerly so a typo fails before any shard runs.
    for (const std::string& p : fuzz.policies) policy::named_policy(p);
    for (const std::string& p : fuzz.presets) sim::machine_preset(p);
    if (!fuzz.spec.empty()) {
      fuzz::FuzzSpec::from_json_file(fuzz.spec).validate();
    }
  } else if (kind == "grid") {
    if (grid.workloads.empty() || grid.policies.empty() ||
        grid.presets.empty()) {
      throw std::invalid_argument(
          "grid.workloads/policies/presets must all be non-empty");
    }
    if (grid.instrs < 1 || grid.instrs > 1'000'000'000) {
      throw std::invalid_argument("grid.instrs must be in [1, 1000000000]");
    }
    for (const std::string& w : grid.workloads) workloads::profile_by_name(w);
    for (const std::string& p : grid.policies) policy::named_policy(p);
    for (const std::string& p : grid.presets) {
      sim::MachineSpec machine = sim::machine_preset(p);
      for (const std::string& kv : grid.overrides) machine.set(kv);
      machine.validate();
    }
  } else {
    throw std::invalid_argument("kind must be \"fuzz\" or \"grid\", not \"" +
                                kind + "\"");
  }
}

std::uint64_t Manifest::num_units() const {
  if (kind == "fuzz") return fuzz.count;
  return static_cast<std::uint64_t>(grid.workloads.size()) *
         grid.policies.size() * grid.presets.size();
}

std::uint64_t Manifest::units_of_shard(int shard) const {
  const std::uint64_t n = num_units();
  const std::uint64_t s = static_cast<std::uint64_t>(shards);
  const std::uint64_t k = static_cast<std::uint64_t>(shard);
  if (k >= s) return 0;
  return n / s + (n % s > k ? 1 : 0);
}

std::string Manifest::fingerprint() const {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(fnv1a64(to_json())));
  return buf;
}

std::string Manifest::shard_path(const std::string& dir, int shard) const {
  return dir + "/" + name + ".shard" + std::to_string(shard) + ".jsonl";
}

std::string Manifest::merged_path(const std::string& dir) const {
  return dir + "/" + name + ".merged.jsonl";
}

// ---- journal ----------------------------------------------------------------

ShardJournal::ShardJournal(const Manifest& manifest, const std::string& dir,
                           int shard)
    : path_(manifest.shard_path(dir, shard)) {
  if (shard < 0 || shard >= manifest.shards) {
    throw std::invalid_argument("shard " + std::to_string(shard) +
                                " out of range (manifest has " +
                                std::to_string(manifest.shards) + ")");
  }
  ScanResult scan = scan_journal(path_, manifest, shard);
  if (scan.torn) {
    // A killed writer left a partial line; rewrite the intact prefix so
    // the journal is clean JSONL again. The unit mid-write simply reruns.
    truncate_to(path_, scan.valid_bytes);
    recovered_torn_tail_ = true;
  }
  for (const UnitRecord& rec : scan.records) completed_.insert(rec.unit);

  out_ = std::fopen(path_.c_str(), "a");
  if (out_ == nullptr) {
    throw std::runtime_error("cannot open " + path_ +
                             " (does the campaign directory exist?)");
  }
  if (!scan.have_header) {
    std::fprintf(out_, "%s\n", header_line(manifest, shard).c_str());
    std::fflush(out_);
  }
}

ShardJournal::~ShardJournal() {
  if (out_ != nullptr) std::fclose(out_);
}

void ShardJournal::append(std::uint64_t unit, const std::string& line) {
  std::lock_guard<std::mutex> lock(mutex_);
  std::fprintf(out_, "%s\n", line.c_str());
  std::fflush(out_);
  completed_.insert(unit);
}

// ---- run --------------------------------------------------------------------

namespace {

std::uint64_t run_fuzz_units(const Manifest& m,
                             const std::vector<std::uint64_t>& pending,
                             ShardJournal& journal, int threads) {
  fuzz::FuzzSpec spec;
  if (!m.fuzz.spec.empty()) {
    spec = fuzz::FuzzSpec::from_json_file(m.fuzz.spec);
  }
  spec.validate();
  fuzz::DifferentialConfig config;
  config.policies = m.fuzz.policies;
  config.presets = m.fuzz.presets;
  config.cores = m.fuzz.cores;
  config.mutation = mutation_hooks(m.fuzz.mutate);

  std::atomic<std::uint64_t> failures{0};
  experiment::ParallelRunner(threads).parallel_for(
      pending.size(), [&](std::size_t i) {
        const std::uint64_t unit = pending[i];
        const std::uint64_t seed = m.fuzz.first_seed + unit;
        const fuzz::SeedVerdict v = fuzz::check_seed(seed, spec, config);
        // Simulated data only — no wall times, no host identity — so the
        // line is a pure function of (manifest, unit) and merges
        // byte-identically across kills, resumes and shard splits.
        journal.append(unit, experiment::JsonlObject()
                                 .u64("unit", unit)
                                 .u64("seed", seed)
                                 .boolean("ok", v.ok)
                                 .u64("committed", v.committed)
                                 .u64("cells", v.cells)
                                 .strings("violations", v.violations)
                                 .str());
        if (!v.ok) failures.fetch_add(1);
      });
  return failures.load();
}

void run_grid_units(const Manifest& m,
                    const std::vector<std::uint64_t>& pending,
                    ShardJournal& journal, int threads) {
  // Resolve axes once; cells share nothing at run time.
  std::vector<workloads::WorkloadProfile> profiles;
  for (const std::string& w : m.grid.workloads) {
    profiles.push_back(workloads::profile_by_name(w));
  }
  std::vector<sim::MachineSpec> machines;
  for (const std::string& p : m.grid.presets) {
    sim::MachineSpec machine = sim::machine_preset(p);
    for (const std::string& kv : m.grid.overrides) machine.set(kv);
    machines.push_back(std::move(machine));
  }
  const std::uint64_t npolicies = m.grid.policies.size();
  const std::uint64_t npresets = m.grid.presets.size();

  experiment::ParallelRunner(threads).parallel_for(
      pending.size(), [&](std::size_t i) {
        const std::uint64_t unit = pending[i];
        const std::uint64_t r = unit % npresets;
        const std::uint64_t p = (unit / npresets) % npolicies;
        const std::uint64_t w = unit / (npresets * npolicies);
        experiment::Cell cell;
        cell.profile = profiles[w];
        const sim::MachineSpec& machine = machines[r];
        if (!machine.trace.empty()) cell.profile.trace_file = machine.trace;
        cell.config = machine.core;
        cell.config.policy = m.grid.policies[p];
        cell.instrs = m.grid.instrs;
        cell.sampling = machine.sampling;
        const sim::SimResult result = experiment::run_cell(cell);
        journal.append(unit, experiment::JsonlObject()
                                 .u64("unit", unit)
                                 .text("workload", m.grid.workloads[w])
                                 .text("policy", m.grid.policies[p])
                                 .text("preset", m.grid.presets[r])
                                 .text("stop", cpu::to_string(result.stop))
                                 .u64("cycles", result.cycles)
                                 .u64("committed", result.committed_instrs)
                                 .number("ipc", result.ipc)
                                 .str());
      });
}

}  // namespace

RunStats run_shard(const Manifest& manifest, const std::string& dir,
                   int shard, const RunOptions& options) {
  manifest.validate();
  ShardJournal journal(manifest, dir, shard);

  RunStats stats;
  std::vector<std::uint64_t> pending;
  for (std::uint64_t unit = 0; unit < manifest.num_units(); ++unit) {
    if (manifest.shard_of(unit) != shard) continue;
    if (journal.has(unit)) {
      ++stats.skipped;
    } else {
      pending.push_back(unit);
    }
  }
  if (options.max_units > 0 && pending.size() > options.max_units) {
    pending.resize(options.max_units);
  }
  stats.ran = pending.size();

  if (manifest.kind == "fuzz") {
    stats.failures =
        run_fuzz_units(manifest, pending, journal, options.threads);
  } else {
    run_grid_units(manifest, pending, journal, options.threads);
  }
  return stats;
}

// ---- merge / status ---------------------------------------------------------

std::vector<UnitRecord> collect_units(const Manifest& manifest,
                                      const std::string& dir,
                                      bool require_complete) {
  std::unordered_map<std::uint64_t, std::string> by_unit;
  for (int shard = 0; shard < manifest.shards; ++shard) {
    const std::string path = manifest.shard_path(dir, shard);
    const ScanResult scan = scan_journal(path, manifest, shard);
    if (!scan.exists) {
      if (require_complete) {
        throw std::runtime_error("shard journal missing: " + path);
      }
      continue;
    }
    for (const UnitRecord& rec : scan.records) {
      const auto [it, inserted] = by_unit.emplace(rec.unit, rec.line);
      if (!inserted && it->second != rec.line) {
        throw std::runtime_error(
            path + ": unit " + std::to_string(rec.unit) +
            " recorded twice with different results — journals are "
            "corrupt or from mismatched runs");
      }
    }
  }

  std::vector<UnitRecord> out;
  out.reserve(by_unit.size());
  std::uint64_t missing = 0;
  std::uint64_t first_missing = 0;
  for (std::uint64_t unit = 0; unit < manifest.num_units(); ++unit) {
    const auto it = by_unit.find(unit);
    if (it == by_unit.end()) {
      if (missing == 0) first_missing = unit;
      ++missing;
      continue;
    }
    out.push_back({unit, it->second});
  }
  if (require_complete && missing > 0) {
    throw std::runtime_error(
        "campaign incomplete: " + std::to_string(missing) + " of " +
        std::to_string(manifest.num_units()) + " units missing (first: " +
        std::to_string(first_missing) + ") — resume with `campaign_driver "
        "run` before merging");
  }
  return out;
}

MergeStats merge(const Manifest& manifest, const std::string& dir,
                 const std::string& out_path) {
  const std::vector<UnitRecord> records =
      collect_units(manifest, dir, /*require_complete=*/true);
  const std::string tmp = out_path + ".tmp";
  std::FILE* out = std::fopen(tmp.c_str(), "wb");
  if (out == nullptr) {
    throw std::runtime_error("cannot write " + tmp);
  }
  // Unit-sorted verbatim lines, no header: the bytes depend only on the
  // manifest, never on sharding or interruption history.
  for (const UnitRecord& rec : records) {
    std::fprintf(out, "%s\n", rec.line.c_str());
  }
  std::fflush(out);
  std::fclose(out);
  if (std::rename(tmp.c_str(), out_path.c_str()) != 0) {
    throw std::runtime_error("cannot replace " + out_path);
  }
  MergeStats stats;
  stats.units = records.size();
  stats.shards_read = manifest.shards;
  return stats;
}

std::vector<ShardStatus> status(const Manifest& manifest,
                                const std::string& dir) {
  std::vector<ShardStatus> out;
  for (int shard = 0; shard < manifest.shards; ++shard) {
    ShardStatus s;
    s.shard = shard;
    s.expected = manifest.units_of_shard(shard);
    const ScanResult scan =
        scan_journal(manifest.shard_path(dir, shard), manifest, shard);
    s.exists = scan.exists;
    s.done = scan.records.size();
    s.torn_tail = scan.torn;
    out.push_back(s);
  }
  return out;
}

}  // namespace safespec::campaign
