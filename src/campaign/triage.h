// Deduplicated failure triage for fuzz campaigns.
//
// A 10k-seed overnight campaign that trips one real bug does not produce
// one failure — it produces hundreds of seeds all hitting the same
// invariant with different addresses and register values. Triage
// collapses them: each failing unit's first violation is normalized
// (every decimal and hex run replaced by '#') into a fingerprint, seeds
// grouped by fingerprint, and each group reported once with its
// smallest failing seed and a one-line fuzz_driver repro command. The
// grouping is a pure function of the unit lines, so an S-shard campaign
// triages identically to a 1-shard run — pinned by tests.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "campaign/campaign.h"

namespace safespec::campaign {

/// One distinct failure mode.
struct TriageGroup {
  std::string fingerprint;  ///< normalized first violation
  std::string example;      ///< verbatim first violation of `first_seed`
  std::uint64_t first_seed = 0;  ///< smallest failing seed in the group
  std::vector<std::uint64_t> seeds;  ///< all failing seeds, ascending
};

struct TriageReport {
  std::uint64_t units = 0;     ///< unit lines examined
  std::uint64_t failures = 0;  ///< failing seeds across all groups
  /// Groups ordered by first_seed (stable across shard splits).
  std::vector<TriageGroup> groups;
};

/// "baseline/skylake: ... r3 = 0x2a vs 0x2b" ->
/// "baseline/skylake: ... r# = 0x# vs 0x#": every "0x"-prefixed hex run
/// and every decimal run collapses to '#', so seeds differing only in
/// values land in one group.
std::string normalize_violation(const std::string& violation);

/// Triage from unit records (collect_units or a parsed merged file).
TriageReport triage_records(const std::vector<UnitRecord>& records);

/// Triage a fuzz campaign's shard journals in `dir`. Tolerates an
/// incomplete campaign (triages what is there; `units` says how much).
TriageReport triage(const Manifest& manifest, const std::string& dir);

/// Triage a merged artifact written by merge().
TriageReport triage_merged_file(const std::string& merged_path);

/// Human-readable report with one repro command per group
/// ("fuzz_driver --seed=N --count=1 --dump [--spec=...]"); `manifest`
/// may be null when only a merged file was available.
std::string render_triage_text(const TriageReport& report,
                               const Manifest* manifest);

/// Machine-readable single-object JSON of the same report.
std::string render_triage_json(const TriageReport& report);

}  // namespace safespec::campaign
