// Shared loader for BENCH_sim_throughput.json perf artifacts.
//
// perf_driver writes them, perf_compare gates on a base/head pair, and
// the campaign trend report plots a whole directory of them. The cell
// schema and the cell key grammar (workload/policy/preset with "/mode"
// and "/cores=N" appended only when non-default) live here once, so the
// three tools can never drift apart on what a cell is called.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace safespec::campaign {

/// One perf-grid cell as stored in the artifact.
struct PerfCell {
  std::string workload, policy, preset;
  std::string mode = "detailed";
  int cores = 1;
  std::uint64_t committed_instrs = 0;
  std::uint64_t cycles = 0;
  double wall_ms = 0.0;
  double mips = 0.0;

  /// "/mode" and "/cores=N" are appended only when non-default, so keys
  /// from artifacts predating those axes keep matching their successors.
  std::string key() const;
};

/// One whole artifact.
struct PerfRun {
  std::string path;
  std::string label;  ///< file basename without ".json"
  std::uint64_t instrs_per_cell = 0;
  int repeat = 1;
  double aggregate_mips = 0.0;
  std::vector<PerfCell> cells;
};

/// Loads one artifact's cells. Throws std::invalid_argument on a file
/// without a "cells" array or with a malformed cell (schema drift must
/// report, not crash).
std::vector<PerfCell> load_perf_cells(const std::string& path);

/// Loads one artifact with its metadata; aggregate MIPS comes from the
/// "aggregate" object when present, else is recomputed from the cells.
PerfRun load_perf_file(const std::string& path);

/// Loads every "*.json" in `dir` that looks like a perf artifact (has a
/// "cells" array), sorted by filename — the trend's x axis. Files
/// without a "cells" array are skipped (artifact directories mix in
/// other JSON); malformed cells in a perf artifact still throw.
std::vector<PerfRun> load_perf_dir(const std::string& dir);

}  // namespace safespec::campaign
