#include "campaign/perf_artifacts.h"

#include <algorithm>
#include <filesystem>
#include <stdexcept>

#include "common/json.h"

namespace safespec::campaign {

namespace {

/// Member lookup that treats absence as malformed input, so a schema
/// drift between perf_driver versions reports instead of crashing.
const json::Value& require(const json::Value& obj, const char* key,
                           const std::string& path) {
  const json::Value* v = obj.find(key);
  if (v == nullptr) {
    throw std::invalid_argument(path + ": cell missing \"" + key + "\"");
  }
  return *v;
}

std::vector<PerfCell> cells_of(const json::Value& doc,
                               const std::string& path) {
  const json::Value* cells = doc.find("cells");
  if (cells == nullptr || cells->kind != json::Value::Kind::kArray) {
    throw std::invalid_argument(path + ": no \"cells\" array");
  }
  std::vector<PerfCell> out;
  out.reserve(cells->array.size());
  for (const json::Value& v : cells->array) {
    PerfCell c;
    c.workload = require(v, "workload", path).text;
    c.policy = require(v, "policy", path).text;
    c.preset = require(v, "preset", path).text;
    // Optional: artifacts from before the mode/cores axes have no such
    // members; they are all detailed single-core cells.
    if (const json::Value* mode = v.find("mode")) c.mode = mode->text;
    if (const json::Value* cores = v.find("cores")) {
      c.cores = static_cast<int>(json::as_u64(*cores, "cores"));
    }
    c.committed_instrs =
        json::as_u64(require(v, "committed_instrs", path), "committed_instrs");
    c.cycles = json::as_u64(require(v, "cycles", path), "cycles");
    c.wall_ms = json::as_double(require(v, "wall_ms", path), "wall_ms");
    c.mips = json::as_double(require(v, "mips", path), "mips");
    out.push_back(std::move(c));
  }
  return out;
}

}  // namespace

std::string PerfCell::key() const {
  std::string k = workload + "/" + policy + "/" + preset;
  if (mode != "detailed") k += "/" + mode;
  if (cores > 1) k += "/cores=" + std::to_string(cores);
  return k;
}

std::vector<PerfCell> load_perf_cells(const std::string& path) {
  return cells_of(json::parse_file(path), path);
}

PerfRun load_perf_file(const std::string& path) {
  const json::Value doc = json::parse_file(path);
  PerfRun run;
  run.path = path;
  run.label = std::filesystem::path(path).stem().string();
  run.cells = cells_of(doc, path);
  json::read_u64(doc, "instrs_per_cell", run.instrs_per_cell);
  json::read_int(doc, "repeat", run.repeat);
  if (const json::Value* aggregate = doc.find("aggregate")) {
    json::read_double(*aggregate, "mips", run.aggregate_mips);
  } else {
    std::uint64_t instrs = 0;
    double ms = 0.0;
    for (const PerfCell& c : run.cells) {
      instrs += c.committed_instrs;
      ms += c.wall_ms;
    }
    run.aggregate_mips =
        ms <= 0.0 ? 0.0 : static_cast<double>(instrs) / (ms * 1e3);
  }
  return run;
}

std::vector<PerfRun> load_perf_dir(const std::string& dir) {
  std::vector<std::string> paths;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (!entry.is_regular_file()) continue;
    if (entry.path().extension() != ".json") continue;
    paths.push_back(entry.path().string());
  }
  std::sort(paths.begin(), paths.end());
  std::vector<PerfRun> runs;
  for (const std::string& path : paths) {
    const json::Value doc = json::parse_file(path);
    if (doc.find("cells") == nullptr) continue;  // some other JSON
    runs.push_back(load_perf_file(path));
  }
  return runs;
}

}  // namespace safespec::campaign
