#include "workloads/runner.h"

namespace safespec::workloads {

std::unique_ptr<sim::Simulator> make_workload_sim(
    const WorkloadProfile& profile, const cpu::CoreConfig& config,
    std::uint64_t target_instrs) {
  WorkloadImage image = generate(profile, target_instrs);
  auto sim = std::make_unique<sim::Simulator>(config, std::move(image.program));
  sim->map_text();
  sim->map_region(image.data_base, image.data_bytes);
  for (const auto& [addr, value] : image.init_words) sim->poke(addr, value);
  return sim;
}

sim::SimResult run_workload(const WorkloadProfile& profile,
                            const cpu::CoreConfig& config,
                            std::uint64_t measure_instrs) {
  auto sim = make_workload_sim(profile, config, measure_instrs);
  // Generous cycle budget: the worst (pointer-chasing) profiles run well
  // under 10 cycles per instruction.
  return sim->run(measure_instrs * 40 + 1'000'000, measure_instrs);
}

}  // namespace safespec::workloads
