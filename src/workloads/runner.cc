#include "workloads/runner.h"

#include "sim/machine.h"

namespace safespec::workloads {

std::unique_ptr<sim::Simulator> make_workload_sim(
    const WorkloadProfile& profile, const cpu::CoreConfig& config,
    std::uint64_t target_instrs) {
  return make_image_sim(generate(profile, target_instrs), config);
}

std::unique_ptr<sim::Simulator> make_image_sim(
    WorkloadImage image, const cpu::CoreConfig& config) {
  sim::MachineSpec spec;
  spec.core = config;
  // Sweep axes legitimately undersize the shadows (sizing studies, TSA
  // grids); the strict §V bound is enforced on user-authored specs by
  // resolve_machine / from_json, not on this internal path.
  spec.allow_undersized_shadows = true;
  sim::MachineBuilder builder{std::move(spec)};
  // Trace-loaded images carry their address space in `regions` and have
  // no data_base region (validate() rejects zero-byte regions).
  if (image.data_bytes != 0) {
    builder.map_region(image.data_base, image.data_bytes);
  }
  for (const WorkloadRegion& region : image.regions) {
    builder.map_region(region.base, region.bytes,
                       region.kernel ? memory::PagePerm::kKernel
                                     : memory::PagePerm::kUser);
  }
  for (const auto& [addr, value] : image.init_words) {
    builder.poke(addr, value);
  }
  return builder.build(std::move(image.program));
}

sim::SimResult run_workload(const WorkloadProfile& profile,
                            const cpu::CoreConfig& config,
                            std::uint64_t measure_instrs,
                            const sim::SamplingSpec& sampling) {
  auto sim = make_workload_sim(profile, config, measure_instrs);
  // Generous cycle budget: the worst (pointer-chasing) profiles run well
  // under 10 cycles per instruction. run_sampled with a disabled spec is
  // exactly run(), so the default keeps the historical bit-identical path.
  return sim->run_sampled(sampling, measure_instrs * 40 + 1'000'000,
                          measure_instrs);
}

}  // namespace safespec::workloads
