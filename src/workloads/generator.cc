#include <algorithm>
#include <stdexcept>

#include "common/rng.h"
#include "isa/instruction.h"
#include "trace/trace_workload.h"
#include "workloads/workload.h"

namespace safespec::workloads {

using isa::AluOp;
using isa::CondOp;
using isa::ProgramBuilder;

namespace {

constexpr Addr kTextBase = 0x100000;
constexpr Addr kDataBase = 0x10000000;

// Register allocation for generated code.
constexpr RegIndex kLoopCounter = 1;   ///< outer-loop countdown
constexpr RegIndex kDataPtr = 2;       ///< data base
constexpr RegIndex kStreamPtr = 3;     ///< streaming cursor (offset)
constexpr RegIndex kChasePtr = 4;      ///< pointer-chase cursor (address)
constexpr RegIndex kLcg = 5;           ///< in-program LCG state
constexpr RegIndex kScratchA = 6;
constexpr RegIndex kScratchB = 7;
constexpr RegIndex kSink = 8;          ///< load results accumulate here
constexpr RegIndex kStoreVal = 9;

/// Rounds down to a power of two (footprints must be maskable).
std::uint64_t floor_pow2(std::uint64_t v) {
  std::uint64_t p = 1;
  while (p * 2 <= v) p *= 2;
  return p;
}

}  // namespace

WorkloadImage generate(const WorkloadProfile& profile,
                       std::uint64_t target_instrs) {
  // Trace frontend: "@" round-trips the synthetic image through the
  // codec in memory; any other non-empty value is a trace file path.
  // Either way the knobs below never run — the trace *is* the program.
  if (profile.trace_file == "@") {
    WorkloadProfile inner = profile;
    inner.trace_file.clear();
    return trace::to_workload_image(
        trace::decode(trace::encode(
            trace::record_workload(generate(inner, target_instrs)))));
  }
  if (!profile.trace_file.empty()) {
    try {
      return trace::load_workload(profile.trace_file);
    } catch (const std::exception& e) {
      // A missing or unreadable trace file is almost always a workload
      // spelling mistake; name the file and the accepted grammar instead
      // of surfacing the raw reader error alone.
      throw std::runtime_error(
          "workload trace \"" + profile.trace_file +
          "\" could not be loaded: " + e.what() +
          " (the trace axis accepts trace:PATH for a file recorded by "
          "trace_record, or trace:@NAME for an in-memory round-trip of "
          "the synthetic profile NAME)");
    }
  }
  if (profile.code_blocks <= 0 || profile.block_len <= 0) {
    throw std::invalid_argument("generate: empty workload body");
  }
  Rng rng(profile.seed);
  WorkloadImage image;
  image.data_base = kDataBase;

  const std::uint64_t footprint = floor_pow2(
      std::max<std::uint64_t>(profile.data_footprint, 2 * kPageSize));
  const std::uint64_t chase_bytes =
      profile.chase_footprint == 0
          ? 0
          : floor_pow2(std::max<std::uint64_t>(profile.chase_footprint,
                                               kPageSize));
  image.data_bytes = footprint + chase_bytes;
  const Addr chase_base = kDataBase + footprint;

  // Pointer-chase region: a random cycle over the chase words, so chased
  // loads are serially dependent with no locality — the mcf/omnetpp
  // behaviour class.
  if (chase_bytes != 0) {
    const std::uint64_t words = chase_bytes / 8;
    std::vector<std::uint32_t> perm(words);
    for (std::uint64_t i = 0; i < words; ++i) {
      perm[i] = static_cast<std::uint32_t>(i);
    }
    for (std::uint64_t i = words - 1; i > 0; --i) {
      std::swap(perm[i], perm[rng.below(i + 1)]);
    }
    image.init_words.reserve(words);
    for (std::uint64_t i = 0; i < words; ++i) {
      const Addr slot = chase_base + 8 * perm[i];
      const Addr next = chase_base + 8 * perm[(i + 1) % words];
      image.init_words.emplace_back(slot, next);
    }
  }

  ProgramBuilder b(kTextBase);

  // ---- prologue ---------------------------------------------------------
  b.movi(kDataPtr, static_cast<std::int64_t>(kDataBase));
  b.movi(kStreamPtr, 0);
  b.movi(kChasePtr, static_cast<std::int64_t>(chase_base));
  b.movi(kLcg, static_cast<std::int64_t>(profile.seed | 1));
  b.movi(kSink, 0);
  b.movi(kStoreVal, 0x1234);

  // The body executes code_blocks blocks per outer iteration; size the
  // iteration count from the approximate body length.
  const std::uint64_t body_len =
      static_cast<std::uint64_t>(profile.code_blocks) *
      (static_cast<std::uint64_t>(profile.block_len) + 3);
  const std::uint64_t iterations =
      std::max<std::uint64_t>(1, target_instrs / std::max<std::uint64_t>(
                                                     1, body_len));
  b.movi(kLoopCounter, static_cast<std::int64_t>(iterations));
  b.label("outer");

  const std::uint64_t word_mask = footprint / 8 - 1;
  const std::uint64_t chase_mask = chase_bytes == 0 ? 0 : chase_bytes / 8 - 1;
  (void)chase_mask;

  for (int block = 0; block < profile.code_blocks; ++block) {
    // Advance the in-program LCG once per block; branches and random
    // addresses key off it so outcomes are data-dependent, not static.
    b.alui(AluOp::kMul, kLcg, kLcg, 0x5851F42D);  // 32-bit LCG multiplier
    b.alui(AluOp::kAdd, kLcg, kLcg, 0x14057B7F);

    for (int slot = 0; slot < profile.block_len; ++slot) {
      const double roll = rng.uniform();
      if (roll < profile.load_frac) {
        const double kind = rng.uniform();
        if (kind < profile.chase_frac && chase_bytes != 0) {
          // Serially dependent chase: ptr = MEM[ptr].
          b.load(kChasePtr, kChasePtr, 0);
        } else if (kind < profile.chase_frac + profile.stream_frac) {
          // Streaming: word-granular walk (spatial reuse within a line),
          // wrapping in the footprint.
          b.alui(AluOp::kAdd, kStreamPtr, kStreamPtr, 8);
          b.alui(AluOp::kAnd, kStreamPtr, kStreamPtr,
                 static_cast<std::int64_t>(footprint - 1));
          b.alu(AluOp::kAdd, kScratchA, kStreamPtr, kDataPtr);
          b.load(kScratchB, kScratchA, 0);
          b.alu(AluOp::kXor, kSink, kSink, kScratchB);
        } else {
          // Random access with temporal locality: mostly inside a hot
          // set, occasionally anywhere in the footprint.
          const bool hot = rng.uniform() < profile.hot_frac;
          const std::uint64_t region_mask =
              hot ? (floor_pow2(std::max<std::uint64_t>(
                        profile.hot_bytes, kPageSize)) /
                         8 -
                     1)
                  : word_mask;
          b.alui(AluOp::kShr, kScratchA, kLcg,
                 static_cast<std::int64_t>(8 + (slot % 3)));
          b.alui(AluOp::kAnd, kScratchA, kScratchA,
                 static_cast<std::int64_t>(region_mask));
          b.alui(AluOp::kShl, kScratchA, kScratchA, 3);
          b.alu(AluOp::kAdd, kScratchA, kScratchA, kDataPtr);
          b.load(kScratchB, kScratchA, 0);
          b.alu(AluOp::kXor, kSink, kSink, kScratchB);
        }
      } else if (roll < profile.load_frac + profile.store_frac) {
        // Stores land in the hot set (typical write locality).
        const std::uint64_t store_mask =
            floor_pow2(std::max<std::uint64_t>(profile.hot_bytes, kPageSize)) /
                8 -
            1;
        b.alui(AluOp::kShr, kScratchA, kLcg, 5);
        b.alui(AluOp::kAnd, kScratchA, kScratchA,
               static_cast<std::int64_t>(store_mask));
        b.alui(AluOp::kShl, kScratchA, kScratchA, 3);
        b.alu(AluOp::kAdd, kScratchA, kScratchA, kDataPtr);
        b.store(kStoreVal, kScratchA, 0);
      } else {
        // Compute slot.
        const double op = rng.uniform();
        if (op < profile.div_frac) {
          b.alui(AluOp::kDiv, kSink, kSink, 3);
        } else if (op < profile.div_frac + profile.mul_frac) {
          b.alui(AluOp::kMul, kScratchB, kLcg, 0x9E37);
          b.alu(AluOp::kXor, kSink, kSink, kScratchB);
        } else {
          b.alui(AluOp::kAdd, kSink, kSink, 1);
        }
      }
    }

    // Block-terminating data-dependent branch: skip a small epilogue with
    // probability controlled by branch_random_bits (0 bits => coin flip,
    // k bits => taken once per 2^k — highly predictable).
    if (rng.uniform() < profile.branch_frac * profile.block_len / 4.0) {
      const std::string skip = "skip_" + std::to_string(block);
      const std::int64_t mask =
          (1LL << std::max(0, profile.branch_random_bits)) - 1;
      // The condition mixes in the load-result accumulator, so branch
      // resolution waits for in-flight loads — real programs branch on
      // loaded data, and that dependence is what opens deep speculation
      // windows (the entropy still comes from the LCG).
      b.alu(AluOp::kXor, kScratchA, kLcg, kSink);
      b.alui(AluOp::kAnd, kScratchA, kScratchA, mask == 0 ? 1 : mask);
      b.branch(CondOp::kEq, kScratchA, kZeroReg, skip);
      b.alui(AluOp::kAdd, kSink, kSink, 3);
      b.alui(AluOp::kXor, kSink, kSink, 0x55);
      b.label(skip);
    }
  }

  b.alui(AluOp::kSub, kLoopCounter, kLoopCounter, 1);
  b.branch(CondOp::kNe, kLoopCounter, kZeroReg, "outer");
  b.halt();

  image.program = b.build();
  image.program.set_entry(kTextBase);
  return image;
}

}  // namespace safespec::workloads
