// Convenience wrapper running a workload profile on a configured core —
// the shared driver for every performance figure (Figs 6-9, 11-16).
#pragma once

#include <memory>

#include "cpu/core.h"
#include "sim/simulator.h"
#include "workloads/workload.h"

namespace safespec::workloads {

/// Builds the simulator for `profile` (program generated for
/// `target_instrs` committed instructions, address space mapped, chase
/// links initialised).
std::unique_ptr<sim::Simulator> make_workload_sim(
    const WorkloadProfile& profile, const cpu::CoreConfig& config,
    std::uint64_t target_instrs);

/// Builds the simulator for an already-materialised image (the
/// generate() half of make_workload_sim factored out): maps the data
/// region and every extra region, applies the init words. Used directly
/// by trace round-trip verification, where the image comes from a trace
/// file rather than the generator.
std::unique_ptr<sim::Simulator> make_image_sim(WorkloadImage image,
                                               const cpu::CoreConfig& config);

/// Generates, maps, runs, and snapshots one profile under one config.
/// `warmup_instrs` committed instructions run before statistics matter;
/// the run then continues for `measure_instrs` more (statistics are
/// cumulative — the warm-up mainly primes caches/predictors so short
/// simulations are not dominated by cold-start effects).
///
/// When `sampling` is enabled the run alternates functional fast-forward
/// with detailed windows (sim::Simulator::run_sampled); the default
/// (disabled) spec takes the plain detailed path, bit-identical to the
/// three-argument overload.
sim::SimResult run_workload(const WorkloadProfile& profile,
                            const cpu::CoreConfig& config,
                            std::uint64_t measure_instrs,
                            const sim::SamplingSpec& sampling = {});

}  // namespace safespec::workloads
