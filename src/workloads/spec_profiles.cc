// The 21 SPEC CPU2017 stand-in profiles, in the paper's plotting order.
//
// Parameters encode each benchmark's published behaviour class (working
// set, access pattern, branchiness, code footprint, compute density) —
// e.g. mcf is the canonical pointer-chasing cache-hostile benchmark,
// exchange2 is tiny-footprint and branch-heavy-but-predictable, lbm is a
// pure streaming stencil, gcc/xalancbmk have the largest code footprints.
// Absolute numbers are scaled to the simulated 2 MB L3 so that the same
// qualitative ordering (who misses, who doesn't) emerges.
#include <stdexcept>

#include "workloads/workload.h"

namespace safespec::workloads {

namespace {

WorkloadProfile base(const std::string& name, std::uint64_t seed) {
  WorkloadProfile p;
  p.name = name;
  p.seed = seed;
  return p;
}

}  // namespace

std::vector<WorkloadProfile> spec2017_profiles() {
  std::vector<WorkloadProfile> v;

  {  // perlbench: interpreter — medium code, branchy, small-ish data.
    auto p = base("perlbench", 101);
    p.data_footprint = 1 << 21;
    p.load_frac = 0.28;
    p.store_frac = 0.12;
    p.stream_frac = 0.2;
    p.branch_frac = 0.20;
    p.branch_random_bits = 3;
    p.code_blocks = 144;
    p.hot_frac = 0.92;
    p.hot_bytes = 24 * 1024;
    v.push_back(p);
  }
  {  // mcf: pointer-chasing over a huge graph — cache-hostile.
    auto p = base("mcf", 102);
    p.data_footprint = 1 << 22;
    p.chase_footprint = 1 << 20;
    p.load_frac = 0.35;
    p.chase_frac = 0.30;
    p.stream_frac = 0.05;
    p.store_frac = 0.08;
    p.branch_frac = 0.18;
    p.branch_random_bits = 3;
    p.code_blocks = 24;
    p.hot_frac = 0.75;
    p.hot_bytes = 16 * 1024;
    v.push_back(p);
  }
  {  // omnetpp: discrete-event simulation — pointer-heavy, large heap.
    auto p = base("omnetpp", 103);
    p.data_footprint = 1 << 22;
    p.chase_footprint = 1 << 20;
    p.load_frac = 0.30;
    p.chase_frac = 0.25;
    p.stream_frac = 0.10;
    p.store_frac = 0.12;
    p.branch_frac = 0.17;
    p.branch_random_bits = 3;
    p.code_blocks = 96;
    p.hot_frac = 0.8;
    p.hot_bytes = 16 * 1024;
    v.push_back(p);
  }
  {  // xalancbmk: XSLT — biggest code footprints, data moderate.
    auto p = base("xalancbmk", 104);
    p.data_footprint = 1 << 22;
    p.load_frac = 0.30;
    p.store_frac = 0.10;
    p.stream_frac = 0.25;
    p.branch_frac = 0.20;
    p.branch_random_bits = 4;
    p.code_blocks = 288;
    p.hot_frac = 0.85;
    p.hot_bytes = 24 * 1024;
    v.push_back(p);
  }
  {  // x264: video encode — streaming + compute.
    auto p = base("x264", 105);
    p.data_footprint = 1 << 22;
    p.load_frac = 0.30;
    p.stream_frac = 0.7;
    p.store_frac = 0.12;
    p.branch_frac = 0.08;
    p.branch_random_bits = 5;
    p.mul_frac = 0.25;
    p.code_blocks = 48;
    p.hot_frac = 0.95;
    p.hot_bytes = 16 * 1024;
    v.push_back(p);
  }
  {  // deepsjeng: chess search — branchy with poorly predictable branches.
    auto p = base("deepsjeng", 106);
    p.data_footprint = 1 << 21;
    p.load_frac = 0.25;
    p.stream_frac = 0.1;
    p.store_frac = 0.10;
    p.branch_frac = 0.24;
    p.branch_random_bits = 2;  // near-random branches
    p.code_blocks = 56;
    p.hot_frac = 0.93;
    p.hot_bytes = 16 * 1024;
    v.push_back(p);
  }
  {  // exchange2: tiny recursive solver — smallest footprint, predictable.
    auto p = base("exchange2", 107);
    p.data_footprint = 1 << 16;
    p.load_frac = 0.18;
    p.stream_frac = 0.4;
    p.store_frac = 0.10;
    p.branch_frac = 0.22;
    p.branch_random_bits = 6;
    p.code_blocks = 32;
    p.hot_frac = 0.99;
    p.hot_bytes = 8 * 1024;
    v.push_back(p);
  }
  {  // xz: compression — mixed random access, medium footprint.
    auto p = base("xz", 108);
    p.data_footprint = 1 << 22;
    p.load_frac = 0.30;
    p.stream_frac = 0.3;
    p.store_frac = 0.14;
    p.branch_frac = 0.15;
    p.branch_random_bits = 3;
    p.code_blocks = 40;
    p.hot_frac = 0.8;
    p.hot_bytes = 32 * 1024;
    v.push_back(p);
  }
  {  // bwaves: FP stencil — streaming, very regular, mul-dense.
    auto p = base("bwaves", 109);
    p.data_footprint = 1 << 23;
    p.load_frac = 0.33;
    p.stream_frac = 0.9;
    p.store_frac = 0.12;
    p.branch_frac = 0.05;
    p.branch_random_bits = 7;
    p.mul_frac = 0.35;
    p.code_blocks = 24;
    p.hot_frac = 0.92;
    p.hot_bytes = 16 * 1024;
    v.push_back(p);
  }
  {  // cactuBSSN: relativity solver — large code, streaming FP.
    auto p = base("cactuBSSN", 110);
    p.data_footprint = 1 << 22;
    p.load_frac = 0.32;
    p.stream_frac = 0.8;
    p.store_frac = 0.14;
    p.branch_frac = 0.04;
    p.branch_random_bits = 7;
    p.mul_frac = 0.35;
    p.code_blocks = 192;
    p.hot_frac = 0.92;
    p.hot_bytes = 16 * 1024;
    v.push_back(p);
  }
  {  // namd: molecular dynamics — compute-dense, cache-resident.
    auto p = base("namd", 111);
    p.data_footprint = 1 << 19;
    p.load_frac = 0.28;
    p.stream_frac = 0.6;
    p.store_frac = 0.08;
    p.branch_frac = 0.05;
    p.branch_random_bits = 6;
    p.mul_frac = 0.4;
    p.code_blocks = 40;
    p.hot_frac = 0.97;
    p.hot_bytes = 12 * 1024;
    v.push_back(p);
  }
  {  // povray: ray tracing — compute, small data, some branches.
    auto p = base("povray", 112);
    p.data_footprint = 1 << 18;
    p.load_frac = 0.24;
    p.stream_frac = 0.3;
    p.store_frac = 0.08;
    p.branch_frac = 0.14;
    p.branch_random_bits = 4;
    p.mul_frac = 0.35;
    p.div_frac = 0.03;
    p.code_blocks = 64;
    p.hot_frac = 0.97;
    p.hot_bytes = 8 * 1024;
    v.push_back(p);
  }
  {  // lbm: lattice-Boltzmann — pure streaming over a huge grid.
    auto p = base("lbm", 113);
    p.data_footprint = 1 << 23;
    p.load_frac = 0.34;
    p.stream_frac = 0.95;
    p.store_frac = 0.18;
    p.branch_frac = 0.02;
    p.branch_random_bits = 8;
    p.mul_frac = 0.3;
    p.code_blocks = 16;
    p.hot_frac = 0.9;
    p.hot_bytes = 16 * 1024;
    v.push_back(p);
  }
  {  // wrf: weather — large code, mixed FP.
    auto p = base("wrf", 114);
    p.data_footprint = 1 << 22;
    p.load_frac = 0.30;
    p.stream_frac = 0.65;
    p.store_frac = 0.12;
    p.branch_frac = 0.08;
    p.branch_random_bits = 5;
    p.mul_frac = 0.3;
    p.code_blocks = 176;
    p.hot_frac = 0.9;
    p.hot_bytes = 24 * 1024;
    v.push_back(p);
  }
  {  // blender: rendering — mixed everything.
    auto p = base("blender", 115);
    p.data_footprint = 1 << 21;
    p.load_frac = 0.28;
    p.stream_frac = 0.4;
    p.store_frac = 0.10;
    p.branch_frac = 0.12;
    p.branch_random_bits = 3;
    p.mul_frac = 0.25;
    p.code_blocks = 144;
    p.hot_frac = 0.92;
    p.hot_bytes = 16 * 1024;
    v.push_back(p);
  }
  {  // cam4: atmosphere model — large code footprint FP.
    auto p = base("cam4", 116);
    p.data_footprint = 1 << 22;
    p.load_frac = 0.30;
    p.stream_frac = 0.6;
    p.store_frac = 0.12;
    p.branch_frac = 0.10;
    p.branch_random_bits = 4;
    p.mul_frac = 0.3;
    p.code_blocks = 224;
    p.hot_frac = 0.88;
    p.hot_bytes = 24 * 1024;
    v.push_back(p);
  }
  {  // pop2: ocean model — large code, streaming.
    auto p = base("pop2", 117);
    p.data_footprint = 1 << 22;
    p.load_frac = 0.30;
    p.stream_frac = 0.7;
    p.store_frac = 0.12;
    p.branch_frac = 0.08;
    p.branch_random_bits = 5;
    p.mul_frac = 0.3;
    p.code_blocks = 256;
    p.hot_frac = 0.9;
    p.hot_bytes = 24 * 1024;
    v.push_back(p);
  }
  {  // imagick: image ops — streaming compute, tight kernels.
    auto p = base("imagick", 118);
    p.data_footprint = 1 << 21;
    p.load_frac = 0.30;
    p.stream_frac = 0.85;
    p.store_frac = 0.14;
    p.branch_frac = 0.04;
    p.branch_random_bits = 7;
    p.mul_frac = 0.4;
    p.code_blocks = 20;
    p.hot_frac = 0.96;
    p.hot_bytes = 12 * 1024;
    v.push_back(p);
  }
  {  // nab: molecular modelling — compute, small data.
    auto p = base("nab", 119);
    p.data_footprint = 1 << 19;
    p.load_frac = 0.26;
    p.stream_frac = 0.5;
    p.store_frac = 0.08;
    p.branch_frac = 0.06;
    p.branch_random_bits = 6;
    p.mul_frac = 0.35;
    p.code_blocks = 32;
    p.hot_frac = 0.97;
    p.hot_bytes = 8 * 1024;
    v.push_back(p);
  }
  {  // fotonik3d: FDTD — streaming large grid.
    auto p = base("fotonik3d", 120);
    p.data_footprint = 1 << 23;
    p.load_frac = 0.33;
    p.stream_frac = 0.9;
    p.store_frac = 0.14;
    p.branch_frac = 0.03;
    p.branch_random_bits = 8;
    p.mul_frac = 0.3;
    p.code_blocks = 20;
    p.hot_frac = 0.92;
    p.hot_bytes = 16 * 1024;
    v.push_back(p);
  }
  {  // roms: ocean model — streaming FP.
    auto p = base("roms", 121);
    p.data_footprint = 1 << 23;
    p.load_frac = 0.32;
    p.stream_frac = 0.85;
    p.store_frac = 0.12;
    p.branch_frac = 0.05;
    p.branch_random_bits = 6;
    p.mul_frac = 0.3;
    p.code_blocks = 48;
    p.hot_frac = 0.92;
    p.hot_bytes = 16 * 1024;
    v.push_back(p);
  }
  {  // gcc: compiler — the branchiest large-code benchmark.
    auto p = base("gcc", 122);
    p.data_footprint = 1 << 22;
    p.chase_footprint = 1 << 19;
    p.load_frac = 0.30;
    p.chase_frac = 0.10;
    p.stream_frac = 0.15;
    p.store_frac = 0.12;
    p.branch_frac = 0.22;
    p.branch_random_bits = 3;
    p.code_blocks = 320;
    p.hot_frac = 0.85;
    p.hot_bytes = 16 * 1024;
    v.push_back(p);
  }
  return v;
}

std::vector<std::string> spec2017_profile_names() {
  std::vector<std::string> names;
  for (const auto& p : spec2017_profiles()) names.push_back(p.name);
  return names;
}

WorkloadProfile profile_by_name(const std::string& name) {
  // "trace:@NAME" — profile NAME round-tripped through the trace codec
  // in memory; "trace:PATH" — replay the trace file at PATH.
  if (name.rfind("trace:", 0) == 0) {
    const std::string arg = name.substr(6);
    if (arg.empty()) {
      throw std::out_of_range(
          "empty trace workload spec (want trace:PATH or trace:@PROFILE): " +
          name);
    }
    if (arg[0] == '@') {
      WorkloadProfile p;
      try {
        p = profile_by_name(arg.substr(1));
      } catch (const std::out_of_range& e) {
        throw std::out_of_range(
            std::string(e.what()) +
            " (in trace:@NAME, NAME must be a registered synthetic "
            "profile; use trace:PATH to replay a trace file)");
      }
      p.name = name;
      p.trace_file = "@";
      return p;
    }
    WorkloadProfile p;
    p.name = name;
    p.trace_file = arg;
    return p;
  }
  for (const auto& p : spec2017_profiles()) {
    if (p.name == name) return p;
  }
  throw std::out_of_range("unknown workload profile: " + name);
}

}  // namespace safespec::workloads
