// Synthetic SPEC CPU2017 stand-ins.
//
// The paper evaluates on 22 SPEC2017 benchmarks. SPEC sources and inputs
// are proprietary, so (per the substitution policy in DESIGN.md) each
// benchmark is replaced by a *parameterised synthetic program* generated
// in the micro-ISA, tuned to the published behaviour class of its
// namesake: data footprint, pointer-chasing vs. streaming access mix,
// branch predictability, code footprint and compute density. Figures 6-16
// report distributional microarchitectural properties (occupancy
// percentiles, miss rates, relative IPC), which depend on exactly these
// characteristics rather than on program semantics.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.h"
#include "isa/program.h"

namespace safespec::workloads {

/// Tuning knobs for one synthetic benchmark.
struct WorkloadProfile {
  std::string name;

  // ---- data side -------------------------------------------------------
  std::uint64_t data_footprint = 1 << 20;  ///< bytes; swept by random/stream
  std::uint64_t chase_footprint = 0;       ///< bytes of pointer-chase region
  double load_frac = 0.25;    ///< fraction of body instructions that load
  double store_frac = 0.10;
  double chase_frac = 0.0;    ///< of loads: dependent pointer-chase
  double stream_frac = 0.3;   ///< of loads: sequential streaming (8 B steps)
  // Remainder of loads: random — mostly within a small hot set
  // (temporal locality), occasionally anywhere in the footprint.
  double hot_frac = 0.90;            ///< of random loads hitting the hot set
  std::uint64_t hot_bytes = 16 * 1024;

  // ---- control side ----------------------------------------------------
  double branch_frac = 0.15;  ///< of body instructions that branch
  int branch_random_bits = 4; ///< taken with p = 2^-bits (0 => 50/50 noise)
  int code_blocks = 24;       ///< basic blocks (code footprint)
  int block_len = 12;         ///< instructions per block (pre-branch)

  // ---- compute side ----------------------------------------------------
  double mul_frac = 0.10;     ///< of ALU ops: 3-cycle multiplies
  double div_frac = 0.0;      ///< of ALU ops: 20-cycle divides

  std::uint64_t seed = 1;

  // ---- trace frontend --------------------------------------------------
  /// Empty: synthetic generation from the knobs above. "@": generate
  /// synthetically, then round-trip the image through the trace codec
  /// in memory (encode → decode — exercises the trace path with no
  /// file; bit-identical by construction and by test). Anything else:
  /// a trace file path to load instead of generating (the knobs above
  /// are ignored; see src/trace/trace_format.h for the format).
  std::string trace_file;
};

/// One extra mapped region a workload needs beyond data_base/data_bytes
/// (trace-loaded workloads carry their full region list, including
/// kernel-only secret regions recorded from fuzz programs).
struct WorkloadRegion {
  Addr base = 0;
  std::uint64_t bytes = 0;
  bool kernel = false;
};

/// A generated benchmark: the program plus everything needed to set up
/// the address space.
struct WorkloadImage {
  isa::Program program;
  Addr data_base = 0;
  std::uint64_t data_bytes = 0;  ///< map [data_base, +data_bytes) as user
  /// Initial memory words (pointer-chase permutation links).
  std::vector<std::pair<Addr, std::uint64_t>> init_words;
  /// Additional regions to map (empty for synthetic workloads).
  std::vector<WorkloadRegion> regions;
};

/// Generates a program whose committed instruction count is approximately
/// `target_instrs` (one outer loop around the synthetic body).
WorkloadImage generate(const WorkloadProfile& profile,
                       std::uint64_t target_instrs);

/// The 22 SPEC2017-rate benchmarks in the order the paper's figures plot
/// them (perlbench ... gcc).
std::vector<WorkloadProfile> spec2017_profiles();

/// Just the names, in the same plotting order (convenience for CLIs and
/// the experiment engine; builds the profile table internally).
std::vector<std::string> spec2017_profile_names();

/// Look up one profile by name (throws std::out_of_range if unknown).
/// Besides the 22 SPEC names, two trace spellings are accepted:
///   "trace:PATH"   — replay the trace file at PATH;
///   "trace:@NAME"  — profile NAME, round-tripped through the trace
///                    codec in memory (see WorkloadProfile::trace_file).
WorkloadProfile profile_by_name(const std::string& name);

}  // namespace safespec::workloads
