// Transient Speculation Attack (§V, Fig 10).
//
// SafeSpec closes the speculative->committed channel, but while an
// eventually-committed instruction is still speculative it shares the
// shadow structures with wrong-path instructions. If a shadow structure
// can fill up, the full-handling policy becomes the channel:
//   * kDrop:  the Spy's shadow entry is discarded; after commit the Spy's
//             line is missing from the caches — detectable by timing.
//   * kStall: the Spy's load is delayed until the Trojan squashes —
//             detectable in end-to-end execution time.
//
// Construction (all inside ONE speculation window, which is what makes
// TSAs "substantially more difficult" than Spectre — §V):
//   program order:  [spy delay chain] -> spy load A ->
//                   [branch delay chain] -> mistrained branch (actually
//                   taken) -> TROJAN (wrong path): read "secret", issue K
//                   filler loads into cold lines iff secret bit == 1 ->
//                   reconverge: timed reload of A.
//   issue order:    Trojan fillers (~cycle 15) -> spy load (~cycle 250,
//                   held back by a dependent div chain) -> branch
//                   resolution (~cycle 520, longer div chain) squashes
//                   the Trojan.
// With an undersized shadow d-cache the Trojan's fills leave no room for
// the Spy at cycle ~250. Under the worst-case ("Secure") sizing bounded
// by the LDQ the Trojan cannot create contention at all (§V), closing
// the channel.
#include <sstream>

#include "attacks/attacks.h"
#include "predictor/branch_predictor.h"
#include "sim/machine.h"

namespace safespec::attacks {

using isa::AluOp;
using isa::CondOp;
using isa::ProgramBuilder;

namespace {

constexpr Addr kA = 0x8000000;        ///< the Spy's marker line
constexpr Addr kTSecret = 0x8100000;  ///< Trojan's "unauthorized" datum
constexpr Addr kWarm = 0x8200000;     ///< pre-warmed filler region (bit 0)
constexpr Addr kCold = 0x8300000;     ///< cold filler region (bit 1)
constexpr int kFillers = 12;
constexpr int kSpyDelayDivs = 12;     ///< ~240 cycles
constexpr int kBranchDelayDivs = 26;  ///< ~520 cycles

isa::Program build_tsa_program() {
  ProgramBuilder b(Layout::kText);

  // Bases.
  b.movi(1, static_cast<std::int64_t>(kA));
  b.movi(2, static_cast<std::int64_t>(kTSecret));
  b.movi(3, static_cast<std::int64_t>(kWarm));
  b.movi(4, static_cast<std::int64_t>(kCold - kWarm));

  // Warm phase: filler region for bit==0 and the Trojan's secret line
  // must be L1-resident so the Trojan never waits on memory. Each load is
  // fenced so its shadow entry is promoted before the next one issues —
  // otherwise the warm-up itself would overflow an undersized shadow
  // d-cache and leave the "warm" region partially cold.
  for (int i = 0; i < kFillers; ++i) {
    b.load(5, 3, i * 64);
    b.fence();
  }
  b.load(5, 2, 0);
  b.fence();
  // Warm A's *translation* (a neighbouring line on the same page — A's
  // own line stays cold): the spy's observable must be the shadow-entry
  // fate, not page-walk noise.
  b.load(5, 1, 1024);
  b.fence();
  // Warm the reconvergence block's i-cache line (it shares a line with
  // this one-instruction helper). Otherwise the post-squash refetch of
  // the receiver costs one memory access that exactly shadows the spy's
  // stall-deferred load, masking the timing channel.
  b.call("rec_warm");
  b.fence();

  // Spy delay chain: r6 becomes available only after ~20*kSpyDelayDivs
  // cycles, holding the spy load's issue inside the window.
  b.movi(6, 1);
  for (int i = 0; i < kSpyDelayDivs; ++i) b.alui(AluOp::kDiv, 6, 6, 1);
  b.alui(AluOp::kAnd, 7, 6, 0);
  b.alu(AluOp::kAdd, 7, 7, 1);  // r7 = A (data-dependent on the chain)
  b.load(8, 7, 0);              // SPY LOAD — will commit

  // Branch delay chain: keeps the window open past the spy load.
  b.movi(9, 1);
  for (int i = 0; i < kBranchDelayDivs; ++i) b.alui(AluOp::kDiv, 9, 9, 1);
  b.label("tsa_branch");
  b.branch(CondOp::kGeu, 9, kZeroReg, "reconverge");  // always taken

  // ---- Trojan: wrong path only (the branch above is actually taken,
  // but mistrained to predict not-taken).
  b.load(10, 2, 0);                  // v = secret bit (L1 hit, fast)
  b.alu(AluOp::kMul, 11, 10, 4);     // 0 or (kCold - kWarm)
  b.alu(AluOp::kAdd, 11, 11, 3);     // filler base: warm or cold region
  for (int i = 0; i < kFillers; ++i) b.load(12, 11, i * 64);

  // ---- Reconvergence: committed-path receiver. Placed at a fresh
  // 64-byte-aligned line together with `rec_warm` so the warm phase can
  // make the refetch after the squash an L1I hit (see above).
  b.at((b.here() + 63) & ~Addr{63});
  b.label("rec_warm");
  b.ret();
  b.label("reconverge");
  b.fence();
  b.rdcycle(13);
  b.load(14, 1, 0);  // timed reload of A
  b.fence();
  b.rdcycle(15);
  b.alu(AluOp::kSub, 16, 15, 13);   // probe latency
  b.rdcycle(17);                    // ~total execution time
  b.halt();

  auto program = b.build();
  program.set_entry(Layout::kText);
  return program;
}

struct TsaRun {
  Cycle probe_latency = 0;
  Cycle total_cycles = 0;
  bool ok = false;
};

TsaRun run_once(const TsaConfig& config, int secret_bit) {
  auto program = build_tsa_program();
  // The branch pc is needed for mistraining; rebuild to find the label.
  ProgramBuilder finder(Layout::kText);
  // (Label addresses are deterministic; rebuild the program and query.)
  auto core_config = attack_machine(config.policy);
  core_config.predictor.direction.kind = predictor::DirectionKind::kBimodal;
  core_config.shadow_dcache.entries = config.shadow_entries;
  core_config.shadow_dcache.full_policy = config.full_policy;

  sim::Simulator sim(core_config, std::move(program));
  sim.map_text();
  sim.map_region(kA, kPageSize);
  sim.map_region(kTSecret, kPageSize);
  sim.map_region(kWarm, kPageSize);
  sim.map_region(kCold, kPageSize);
  sim.poke(kTSecret, static_cast<std::uint64_t>(secret_bit));

  // Locate the branch: it is the only conditional branch in the program.
  Addr branch_pc = 0;
  for (const Addr pc : sim.program().pcs()) {
    if (sim.program().at(pc)->op == isa::OpClass::kBranch) {
      branch_pc = pc;
      break;
    }
  }
  sim.core().predictor().mistrain_direction(branch_pc, /*taken=*/false, 64);

  const auto result = sim.run();
  TsaRun out;
  out.ok = result.stop == cpu::StopReason::kHalted;
  out.probe_latency = sim.core().reg(16);
  out.total_cycles = sim.core().reg(17);
  return out;
}

}  // namespace

TsaOutcome run_tsa_attack(const TsaConfig& config) {
  const TsaRun bit0 = run_once(config, 0);
  const TsaRun bit1 = run_once(config, 1);

  TsaOutcome out;
  out.secret_bit = 1;
  out.probe_latency_bit0 = bit0.probe_latency;
  out.probe_latency_bit1 = bit1.probe_latency;

  if (!bit0.ok || !bit1.ok) {
    out.detail = "run failed";
    return out;
  }

  // Receiver decision rule, by channel flavour:
  //  * kDrop:  the spy's reload of A is slow iff its shadow entry was
  //    dropped. Threshold halfway between an L1 hit and a memory access.
  //  * kStall: the spy observes its own execution being delayed; compare
  //    total cycles against the bit-0 reference.
  if (config.full_policy == shadow::FullPolicy::kDrop) {
    out.recovered_bit = bit1.probe_latency > 100 ? 1 : 0;
    out.leaked = out.recovered_bit == 1 &&
                 bit0.probe_latency <= 100;  // bit 0 must read as 0
  } else {
    const auto delta = bit1.total_cycles > bit0.total_cycles
                           ? bit1.total_cycles - bit0.total_cycles
                           : 0;
    out.recovered_bit = delta > 100 ? 1 : 0;
    out.leaked = out.recovered_bit == 1;
  }
  std::ostringstream oss;
  oss << "probe(bit0)=" << bit0.probe_latency
      << " probe(bit1)=" << bit1.probe_latency
      << " total(bit0)=" << bit0.total_cycles
      << " total(bit1)=" << bit1.total_cycles;
  out.detail = oss.str();
  return out;
}

}  // namespace safespec::attacks
