#include "attacks/attack_common.h"

#include <algorithm>

#include "isa/instruction.h"
#include "sim/machine.h"

namespace safespec::attacks {

using isa::AluOp;
using isa::CondOp;
using isa::ProgramBuilder;

cpu::CoreConfig attack_machine(const std::string& policy) {
  cpu::CoreConfig config = sim::machine_preset("skylake").core;
  config.policy = policy;
  return config;
}

void emit_probe_flush(ProgramBuilder& b, const std::string& label_prefix) {
  const std::string loop = label_prefix + "_flush_loop";
  b.movi(kRegC, 0);
  b.movi(kRegProbeBase, static_cast<std::int64_t>(Layout::kProbe));
  b.label(loop);
  b.alui(AluOp::kMul, kRegTmp1, kRegC, Layout::kProbeStride);
  b.alu(AluOp::kAdd, kRegTmp1, kRegTmp1, kRegProbeBase);
  b.flush(kRegTmp1, 0);
  b.alui(AluOp::kAdd, kRegC, kRegC, 1);
  b.movi(kRegTmp2, Layout::kCandidates);
  b.branch(CondOp::kLt, kRegC, kRegTmp2, loop);
  b.fence();
}

void emit_receiver(ProgramBuilder& b, const std::string& label_prefix) {
  const std::string loop = label_prefix + "_rx_loop";
  b.movi(kRegC, 0);
  b.movi(kRegProbeBase, static_cast<std::int64_t>(Layout::kProbe));
  b.movi(kRegResultBase, static_cast<std::int64_t>(Layout::kResults));
  b.label(loop);
  b.alui(AluOp::kMul, kRegTmp1, kRegC, Layout::kProbeStride);
  b.alu(AluOp::kAdd, kRegTmp1, kRegTmp1, kRegProbeBase);
  b.fence();
  b.rdcycle(kRegT1);
  b.load(kRegTmp2, kRegTmp1, 0);
  b.fence();  // the timed load must be architecturally complete
  b.rdcycle(kRegT2);
  b.alu(AluOp::kSub, kRegT2, kRegT2, kRegT1);
  b.alui(AluOp::kMul, kRegTmp1, kRegC, 8);
  b.alu(AluOp::kAdd, kRegTmp1, kRegTmp1, kRegResultBase);
  b.store(kRegT2, kRegTmp1, 0);
  b.alui(AluOp::kAdd, kRegC, kRegC, 1);
  b.movi(kRegTmp2, Layout::kCandidates);
  b.branch(CondOp::kLt, kRegC, kRegTmp2, loop);
  b.fence();
}

void map_attack_regions(sim::Simulator& sim) {
  sim.map_text();
  sim.map_region(Layout::kProbe,
                 static_cast<std::uint64_t>(Layout::kCandidates) *
                     Layout::kProbeStride);
  sim.map_region(Layout::kResults,
                 static_cast<std::uint64_t>(Layout::kCandidates) * 8);
  sim.map_region(Layout::kArray1, kPageSize);
  sim.map_region(Layout::kBound, kPageSize);
  sim.map_region(Layout::kSecretUser, kPageSize);
  sim.map_region(Layout::kFptr, kPageSize);
}

void warm_secret(sim::Simulator& sim, Addr addr, bool kernel_page) {
  sim.core().hierarchy().fill_all_levels(line_of(addr), memory::Side::kData);
  sim.core().dtlb().fill({page_of(addr), page_of(addr), kernel_page});
}

ReceiverReading read_receiver(const sim::Simulator& sim) {
  return read_receiver(sim, 0);
}

ReceiverReading read_receiver(const sim::Simulator& sim, int core) {
  ReceiverReading r;
  r.latencies.reserve(Layout::kCandidates);
  for (int c = 0; c < Layout::kCandidates; ++c) {
    r.latencies.push_back(sim.peek_on(core, Layout::kResults + 8ull * c));
  }
  std::uint64_t best = ~0ull, second = ~0ull;
  for (int c = 0; c < Layout::kCandidates; ++c) {
    const auto v = r.latencies[static_cast<std::size_t>(c)];
    if (v < best) {
      second = best;
      best = v;
      r.best_candidate = c;
    } else if (v < second) {
      second = v;
    }
  }
  r.best_latency = best;
  r.margin = second == ~0ull ? 0 : second - best;
  return r;
}

}  // namespace safespec::attacks
