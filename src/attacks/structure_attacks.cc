// Spectre-style attacks on structures other than the d-cache (Table IV):
// the paper's new I-cache variant (Fig 5) plus iTLB and dTLB channels.
//
// All three use a v1-style mistrained bounds check to open the window.
// Inside the window a data-dependent control transfer (I-side) or a
// page-granular load (D-side) encodes the secret in which line/page gets
// touched. The receiver is a residency oracle over the relevant primary
// structure (see attack_common.h for the receiver-model discussion).
#include <sstream>

#include "attacks/attacks.h"
#include "predictor/branch_predictor.h"
#include "sim/machine.h"

namespace safespec::attacks {

using isa::AluOp;
using isa::CondOp;
using isa::ProgramBuilder;

namespace {

constexpr Addr kFnPages = 0x7000000;  ///< iTLB variant: one target per page

cpu::CoreConfig attack_config(const std::string& policy) {
  auto config = attack_machine(policy);
  config.predictor.direction.kind = predictor::DirectionKind::kBimodal;
  return config;
}

/// Emits the common prologue: train the victim's bounds check with
/// in-bounds offsets (value 0 everywhere, so candidate 0 is the only
/// polluted one), pre-warm the secret's line so the inner data-dependent
/// step resolves well before the flushed bounds check, then strike.
void emit_train_and_strike(ProgramBuilder& b) {
  b.movi(7, 0);
  b.label("train_loop");
  b.alui(AluOp::kAnd, 1, 7, 0x7);
  b.call("victim");
  b.alui(AluOp::kAdd, 7, 7, 1);
  b.movi(6, 24);
  b.branch(CondOp::kLt, 7, 6, "train_loop");

  // Pre-warm the secret line: the inner (data-dependent) transfer must
  // resolve before the outer bounds check does.
  b.movi(2, static_cast<std::int64_t>(Layout::kSecretUser));
  b.load(3, 2, 0);
  b.fence();

  b.movi(2, static_cast<std::int64_t>(Layout::kBound));
  b.flush(2, 0);
  b.fence();
  const std::int64_t malicious =
      static_cast<std::int64_t>((Layout::kSecretUser - Layout::kArray1) / 8);
  b.movi(1, malicious);
  b.call("victim");
  b.fence();
  b.halt();
}

/// Emits the victim for the I-side variants: bounds check, then an
/// indirect jump to `base + value * stride` (the Fig 5 "256 if
/// structures" collapsed into a computed branch fan).
void emit_ijump_victim(ProgramBuilder& b, Addr fn_base, int fn_stride) {
  b.label("victim");
  b.movi(3, static_cast<std::int64_t>(Layout::kBound));
  b.load(3, 3, 0);
  b.branch(CondOp::kGeu, 1, 3, "skip");
  b.alui(AluOp::kMul, 4, 1, 8);
  b.movi(5, static_cast<std::int64_t>(Layout::kArray1));
  b.alu(AluOp::kAdd, 4, 4, 5);
  b.load(4, 4, 0);  // v = array1[offset]
  b.alui(AluOp::kMul, 4, 4, fn_stride);
  b.movi(5, static_cast<std::int64_t>(fn_base));
  b.alu(AluOp::kAdd, 4, 4, 5);
  b.jump_reg(4);  // speculative, data-dependent fetch target
  b.label("fn_done");
  b.label("skip");
  b.ret();
}

/// Places the 256 one-instruction landing stubs (each jumps straight
/// back) at `base + c*stride`.
void place_stubs(ProgramBuilder& b, Addr base, int stride) {
  for (int c = 0; c < Layout::kCandidates; ++c) {
    b.at(base + static_cast<Addr>(c) * static_cast<Addr>(stride));
    b.jump("fn_done");
  }
}

void setup_victim_memory(sim::Simulator& sim, int secret) {
  sim.poke(Layout::kBound, 16);
  for (int i = 0; i < 16; ++i) sim.poke(Layout::kArray1 + 8ull * i, 0);
  sim.poke(Layout::kSecretUser, static_cast<std::uint64_t>(secret));
}

AttackOutcome finish(const std::string& name, const std::string& policy, int secret,
                     const std::vector<int>& resident,
                     cpu::StopReason stop) {
  AttackOutcome out;
  out.name = name;
  out.policy = policy;
  out.secret = secret;
  // Candidate 0 is architecturally polluted by training; ignore it.
  int hot = -1;
  int hot_count = 0;
  for (int c : resident) {
    if (c == 0) continue;
    hot = c;
    ++hot_count;
  }
  out.recovered = hot_count == 1 ? hot : -1;
  out.leaked = stop == cpu::StopReason::kHalted && out.recovered == secret;
  std::ostringstream oss;
  oss << "resident(non-zero)=" << hot_count;
  if (hot_count >= 1) oss << " first=" << hot;
  out.detail = oss.str();
  return out;
}

}  // namespace

AttackOutcome run_icache_attack(const std::string& policy, int secret) {
  ProgramBuilder b(Layout::kText);
  emit_train_and_strike(b);
  emit_ijump_victim(b, Layout::kFnArea, Layout::kFnStride);
  place_stubs(b, Layout::kFnArea, Layout::kFnStride);

  auto program = b.build();
  program.set_entry(Layout::kText);
  sim::Simulator sim(attack_config(policy), std::move(program));
  map_attack_regions(sim);
  setup_victim_memory(sim, secret);

  // The receiver's reference state: candidate lines must start cold.
  // (They do: the fn area is only ever touched by the attack itself and
  // by training's candidate-0 stub.)
  const auto result = sim.run();

  std::vector<int> resident;
  for (int c = 0; c < Layout::kCandidates; ++c) {
    const Addr line = line_of(Layout::kFnArea +
                              static_cast<Addr>(c) * Layout::kFnStride);
    if (sim.core().hierarchy().resident_l1(line, memory::Side::kInstr) ||
        sim.core().hierarchy().resident_l2(line) ||
        sim.core().hierarchy().resident_l3(line)) {
      resident.push_back(c);
    }
  }
  return finish("icache", policy, secret, resident, result.stop);
}

AttackOutcome run_itlb_attack(const std::string& policy, int secret) {
  ProgramBuilder b(Layout::kText);
  emit_train_and_strike(b);
  emit_ijump_victim(b, kFnPages, static_cast<int>(kPageSize));
  place_stubs(b, kFnPages, static_cast<int>(kPageSize));

  auto program = b.build();
  program.set_entry(Layout::kText);
  sim::Simulator sim(attack_config(policy), std::move(program));
  map_attack_regions(sim);
  setup_victim_memory(sim, secret);

  const auto result = sim.run();

  std::vector<int> resident;
  for (int c = 0; c < Layout::kCandidates; ++c) {
    const Addr vpage = page_of(kFnPages + static_cast<Addr>(c) * kPageSize);
    if (sim.core().itlb().probe(vpage)) resident.push_back(c);
  }
  return finish("itlb", policy, secret, resident, result.stop);
}

AttackOutcome run_dtlb_attack(const std::string& policy, int secret) {
  ProgramBuilder b(Layout::kText);
  emit_train_and_strike(b);

  // Victim: bounds check, then a load whose *page* encodes the value.
  b.label("victim");
  b.movi(3, static_cast<std::int64_t>(Layout::kBound));
  b.load(3, 3, 0);
  b.branch(CondOp::kGeu, 1, 3, "skip");
  b.alui(AluOp::kMul, 4, 1, 8);
  b.movi(5, static_cast<std::int64_t>(Layout::kArray1));
  b.alu(AluOp::kAdd, 4, 4, 5);
  b.load(4, 4, 0);  // v = array1[offset]
  b.alui(AluOp::kMul, 4, 4, static_cast<std::int64_t>(kPageSize));
  b.movi(5, static_cast<std::int64_t>(Layout::kTlbProbe));
  b.alu(AluOp::kAdd, 4, 4, 5);
  b.load(6, 4, 0);  // speculative page-granular touch
  b.label("fn_done");
  b.label("skip");
  b.ret();

  auto program = b.build();
  program.set_entry(Layout::kText);
  sim::Simulator sim(attack_config(policy), std::move(program));
  map_attack_regions(sim);
  sim.map_region(Layout::kTlbProbe,
                 static_cast<std::uint64_t>(Layout::kCandidates) * kPageSize);
  setup_victim_memory(sim, secret);

  const auto result = sim.run();

  std::vector<int> resident;
  for (int c = 0; c < Layout::kCandidates; ++c) {
    const Addr vpage =
        page_of(Layout::kTlbProbe + static_cast<Addr>(c) * kPageSize);
    if (sim.core().dtlb().probe(vpage)) resident.push_back(c);
  }
  return finish("dtlb", policy, secret, resident, result.stop);
}

std::vector<AttackOutcome> run_all_attacks(const std::string& policy) {
  std::vector<AttackOutcome> out;
  out.push_back(run_spectre_v1(policy, 0x5A));
  out.push_back(run_spectre_v2(policy, 0xC3));
  out.push_back(run_meltdown(policy, 0x7E));
  out.push_back(run_icache_attack(policy, 0x42));
  out.push_back(run_itlb_attack(policy, 0x42));
  out.push_back(run_dtlb_attack(policy, 0x42));
  return out;
}

}  // namespace safespec::attacks
