// Shared attack infrastructure: memory layout constants, program
// fragments (flush loops, flush+reload receiver), and outcome records.
//
// Receiver models. Two receivers are used across the PoCs:
//   * In-program Flush+Reload: the attacker times 256 candidate probe
//     loads with rdcycle+fence and stores the latencies; the harness
//     reads them back and picks the hot line. This is the faithful
//     end-to-end receiver and is used for all d-cache attacks.
//   * Residency oracle: for i-cache and TLB channels the harness inspects
//     structure state directly (L1I lines / TLB entries). This models the
//     strongest possible attacker — anything a timing receiver could
//     infer is a function of this state — and matches the paper's
//     security argument, which is about which structures carry a trace.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.h"
#include "isa/program.h"
#include "safespec/shadow_structures.h"
#include "sim/simulator.h"

namespace safespec::attacks {

/// Canonical attack address map (all offsets page-aligned, disjoint).
struct Layout {
  static constexpr Addr kText = 0x10000;        ///< attacker+victim code
  static constexpr Addr kProbe = 0x1000000;     ///< flush+reload probe array
  static constexpr int kProbeStride = 256;      ///< bytes between candidates
  static constexpr int kCandidates = 256;       ///< byte-value alphabet
  static constexpr Addr kResults = 0x2000000;   ///< receiver latencies
  static constexpr Addr kArray1 = 0x3000000;    ///< victim bounds-checked array
  static constexpr Addr kBound = 0x3100000;     ///< array1_size location
  static constexpr Addr kSecretUser = 0x3200000;   ///< v1/v2 secret (user)
  static constexpr Addr kSecretKernel = 0x4000000; ///< Meltdown secret (kernel)
  static constexpr Addr kFptr = 0x3300000;      ///< v2 function pointer
  static constexpr Addr kTlbProbe = 0x5000000;  ///< 256 pages, TLB channels
  static constexpr Addr kFnArea = 0x6000000;    ///< i-cache channel targets
  static constexpr int kFnStride = 256;         ///< bytes between i-targets
};

/// Registers reserved by the shared fragments (attack bodies use r1-r19).
inline constexpr RegIndex kRegC = 20;        ///< receiver loop counter
inline constexpr RegIndex kRegTmp1 = 21;
inline constexpr RegIndex kRegTmp2 = 22;
inline constexpr RegIndex kRegT1 = 23;
inline constexpr RegIndex kRegT2 = 24;
inline constexpr RegIndex kRegProbeBase = 25;
inline constexpr RegIndex kRegResultBase = 26;

/// Emits a loop flushing every probe-array candidate line, then a fence.
/// Clobbers the shared registers above. `label_prefix` keeps builder
/// labels unique when the fragment is emitted more than once.
void emit_probe_flush(isa::ProgramBuilder& b, const std::string& label_prefix);

/// Emits the Flush+Reload receiver: for each candidate c, time a load of
/// probe[c] and store the latency to results[c]. Ends with a fence.
void emit_receiver(isa::ProgramBuilder& b, const std::string& label_prefix);

/// Maps all the common regions of `Layout` into `sim` (text must already
/// be placed; call after program construction).
void map_attack_regions(sim::Simulator& sim);

/// Warms the line and TLB entry of `addr`, modelling a victim/kernel that
/// recently used the datum. Speculation attacks need the secret's *value*
/// to arrive inside the speculation window; in the published PoCs the
/// secret is cached victim data (only the branch condition / function
/// pointer is flushed).
void warm_secret(sim::Simulator& sim, Addr addr, bool kernel_page);

/// Reads the receiver's latency table and returns the candidate with the
/// minimum latency, together with a confidence margin (second-smallest
/// minus smallest, in cycles).
struct ReceiverReading {
  int best_candidate = -1;
  std::uint64_t best_latency = 0;
  std::uint64_t margin = 0;  ///< separation from the runner-up
  std::vector<std::uint64_t> latencies;
};
ReceiverReading read_receiver(const sim::Simulator& sim);
/// Same, but reads the table from core `c`'s private memory — the
/// cross-core PoCs run the receiver on the spy core, so its latencies
/// live in that core's address space.
ReceiverReading read_receiver(const sim::Simulator& sim, int c);

/// Outcome of one attack run.
struct AttackOutcome {
  std::string name;
  std::string policy = "baseline";  ///< protection-policy registry name
  int secret = -1;        ///< planted value
  int recovered = -1;     ///< attacker's best guess (-1: nothing recovered)
  bool leaked = false;    ///< recovered == secret with clear margin
  /// Shared-level evictions where the victim way belonged to another
  /// core. Zero for the single-core PoCs; the cross-core variants report
  /// the contention their spy activity caused at the shared L2/L3.
  std::uint64_t cross_core_evictions = 0;
  /// SHARP-family telemetry (SimResult::sharp_alarms /
  /// sharp_detections); zero under every other policy.
  std::uint64_t sharp_alarms = 0;
  std::uint64_t sharp_detections = 0;
  std::string detail;
};

/// The machine every PoC runs on: the "skylake" preset core with the
/// named protection policy selected (throws std::out_of_range, listing
/// the registered policies, on an unknown name).
cpu::CoreConfig attack_machine(const std::string& policy);

}  // namespace safespec::attacks
