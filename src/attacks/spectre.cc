// Spectre v1 (bounds-check bypass) and v2 (branch target injection).
#include <sstream>

#include "attacks/attacks.h"
#include "predictor/branch_predictor.h"
#include "sim/machine.h"

namespace safespec::attacks {

using isa::AluOp;
using isa::CondOp;
using isa::ProgramBuilder;

namespace {

/// Attacks use a bimodal direction predictor: its pc-indexed counters
/// make in-program mistraining deterministic, which keeps the PoCs
/// robust. (The threat model grants the attacker full predictor control
/// anyway — §II-C assumes predictor state is effectively programmable.)
cpu::CoreConfig attack_config(const std::string& policy) {
  auto config = attack_machine(policy);
  config.predictor.direction.kind = predictor::DirectionKind::kBimodal;
  return config;
}

constexpr RegIndex kRegOffset = 1;   ///< victim call argument
constexpr RegIndex kRegBoundP = 2;
constexpr RegIndex kRegV1 = 3;
constexpr RegIndex kRegV2 = 4;
constexpr RegIndex kRegV3 = 5;
constexpr RegIndex kRegV4 = 6;
constexpr RegIndex kRegTrainC = 7;

bool clearly_leaked(const ReceiverReading& rx, int secret) {
  // The hot candidate must match and be separated from the runner-up by
  // more than any plausible timing noise (an L2-vs-memory gap).
  return rx.best_candidate == secret && rx.margin > 50;
}

std::string describe(const ReceiverReading& rx) {
  std::ostringstream oss;
  oss << "hot=" << rx.best_candidate << " lat=" << rx.best_latency
      << " margin=" << rx.margin;
  return oss.str();
}

}  // namespace

AttackOutcome run_spectre_v1(const std::string& policy, int secret) {
  // Program layout:
  //   main: train loop (8 in-bounds victim calls)
  //         flush probe lines; flush array1_size; fence
  //         call victim with the malicious offset
  //         receiver loop; halt
  //   victim(offset in r1):
  //         r = load [kBound]
  //         if (offset >= r) goto skip          <- mistrained branch
  //         v = load [kArray1 + offset*8]       <- reads the secret
  //         junk = load [kProbe + v*stride]     <- transmits it
  //   skip: ret
  ProgramBuilder b(Layout::kText);

  // ---- main: training --------------------------------------------------
  b.movi(kRegTrainC, 0);
  b.label("train_loop");
  b.alui(AluOp::kAnd, kRegOffset, kRegTrainC, 0x7);  // offsets 0..7, in bounds
  b.call("victim");
  b.alui(AluOp::kAdd, kRegTrainC, kRegTrainC, 1);
  b.movi(kRegV4, 24);
  b.branch(CondOp::kLt, kRegTrainC, kRegV4, "train_loop");

  // ---- main: widen the window and strike --------------------------------
  emit_probe_flush(b, "v1");
  b.movi(kRegBoundP, static_cast<std::int64_t>(Layout::kBound));
  b.flush(kRegBoundP, 0);  // delay the bounds check (step b of §II-B2)
  b.fence();
  const std::int64_t malicious =
      static_cast<std::int64_t>((Layout::kSecretUser - Layout::kArray1) / 8);
  b.movi(kRegOffset, malicious);
  b.call("victim");
  b.fence();

  // ---- main: receive -----------------------------------------------------
  emit_receiver(b, "v1");
  b.halt();

  // ---- victim ------------------------------------------------------------
  b.label("victim");
  b.movi(kRegBoundP, static_cast<std::int64_t>(Layout::kBound));
  b.load(kRegV1, kRegBoundP, 0);                     // r3 = array1_size
  b.branch(CondOp::kGeu, kRegOffset, kRegV1, "skip");
  b.alui(AluOp::kShl, kRegV2, kRegOffset, 3);        // offset * 8
  b.movi(kRegV3, static_cast<std::int64_t>(Layout::kArray1));
  b.alu(AluOp::kAdd, kRegV2, kRegV2, kRegV3);
  b.load(kRegV2, kRegV2, 0);                         // v = array1[offset]
  // Short transmit chain (one shift, probe base as displacement): the
  // probe touch must issue before the bounds check resolves.
  b.alui(AluOp::kShl, kRegV2, kRegV2, 8);            // v * kProbeStride
  b.load(kRegV4, kRegV2,
         static_cast<std::int64_t>(Layout::kProbe));  // touch probe[v]
  b.label("skip");
  b.ret();

  auto program = b.build();
  program.set_entry(Layout::kText);

  sim::Simulator sim(attack_config(policy), std::move(program));
  map_attack_regions(sim);
  sim.poke(Layout::kBound, 16);  // array1_size
  for (int i = 0; i < 16; ++i) {
    sim.poke(Layout::kArray1 + 8ull * i, static_cast<std::uint64_t>(i % 7));
  }
  sim.poke(Layout::kSecretUser, static_cast<std::uint64_t>(secret));
  warm_secret(sim, Layout::kSecretUser, /*kernel_page=*/false);

  const auto result = sim.run();
  const auto rx = read_receiver(sim);

  AttackOutcome out;
  out.name = "spectre-v1";
  out.policy = policy;
  out.secret = secret;
  out.recovered = rx.best_candidate;
  out.leaked = result.stop == cpu::StopReason::kHalted &&
               clearly_leaked(rx, secret);
  out.detail = describe(rx);
  return out;
}

AttackOutcome run_spectre_v2(const std::string& policy, int secret) {
  // Victim: loads a function pointer (flushed by the attacker, so the
  // indirect branch's target arrives late) and jumps through it. The
  // attacker has poisoned the BTB so speculation runs the gadget.
  ProgramBuilder b(Layout::kText);

  emit_probe_flush(b, "v2");
  b.movi(kRegV1, static_cast<std::int64_t>(Layout::kFptr));
  b.flush(kRegV1, 0);  // delay target resolution
  b.fence();
  // The "attacker-controlled argument" the gadget will use: address of
  // the secret.
  b.movi(kRegOffset, static_cast<std::int64_t>(Layout::kSecretUser));
  b.call("victim");
  b.fence();
  emit_receiver(b, "v2");
  b.halt();

  // Victim function with an indirect jump through memory.
  b.label("victim");
  b.movi(kRegV1, static_cast<std::int64_t>(Layout::kFptr));
  b.load(kRegV2, kRegV1, 0);
  b.label("indirect_site");
  b.jump_reg(kRegV2);  // architectural target: benign (below)

  b.label("benign");
  b.movi(kRegV3, 0);
  b.ret();

  // Gadget: never architecturally reached; runs only under the poisoned
  // prediction. Reads [r1] and touches probe[value].
  b.label("gadget");
  b.load(kRegV2, kRegOffset, 0);
  b.alui(AluOp::kShl, kRegV2, kRegV2, 8);  // v * kProbeStride
  b.load(kRegV4, kRegV2, static_cast<std::int64_t>(Layout::kProbe));
  b.ret();

  auto program = b.build();
  program.set_entry(Layout::kText);
  const Addr indirect_pc = b.label_addr("indirect_site");
  const Addr gadget = b.label_addr("gadget");
  const Addr benign = b.label_addr("benign");

  sim::Simulator sim(attack_config(policy), std::move(program));
  map_attack_regions(sim);
  sim.poke(Layout::kFptr, benign);
  sim.poke(Layout::kSecretUser, static_cast<std::uint64_t>(secret));
  warm_secret(sim, Layout::kSecretUser, /*kernel_page=*/false);

  // Threat-model P3: the attacker's colliding branch installs the gadget
  // as the predicted target of the victim's indirect branch.
  sim.core().predictor().poison_btb(indirect_pc, gadget);

  const auto result = sim.run();
  const auto rx = read_receiver(sim);

  AttackOutcome out;
  out.name = "spectre-v2";
  out.policy = policy;
  out.secret = secret;
  out.recovered = rx.best_candidate;
  out.leaked = result.stop == cpu::StopReason::kHalted &&
               clearly_leaked(rx, secret);
  out.detail = describe(rx);
  return out;
}

}  // namespace safespec::attacks
