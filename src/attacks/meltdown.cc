// Meltdown: user-mode read of kernel memory through the deferred
// permission check (P1), recovered via Flush+Reload after the fault.
#include <sstream>

#include "attacks/attacks.h"
#include "sim/machine.h"

namespace safespec::attacks {

using isa::AluOp;
using isa::ProgramBuilder;

AttackOutcome run_meltdown(const std::string& policy, int secret) {
  return run_meltdown_with_delay(policy, secret, -1);
}

AttackOutcome run_meltdown_with_delay(const std::string& policy, int secret,
                                      int commit_delay) {
  ProgramBuilder b(Layout::kText);

  emit_probe_flush(b, "md");
  // The illegal access. No branch anywhere: this is why WFB cannot stop
  // Meltdown (Table III) — by the time the fault is raised at commit the
  // dependent probe line has no unresolved older branch.
  b.movi(1, static_cast<std::int64_t>(Layout::kSecretKernel));
  b.load(2, 1, 0);                                // faults at commit
  // Minimal dependent chain: the transmit load must issue inside the
  // completion-to-retire window of the faulting load.
  b.alui(AluOp::kShl, 3, 2, 8);                   // v * kProbeStride
  b.load(5, 3, static_cast<std::int64_t>(Layout::kProbe));  // transmit
  b.halt();  // never commits; the fault redirects to the handler

  // Fault handler doubles as the receiver (the attack "recovers from the
  // segmentation fault", §II-B4).
  b.label("handler");
  emit_receiver(b, "md");
  b.halt();

  auto program = b.build();
  program.set_entry(Layout::kText);
  program.set_fault_handler(b.label_addr("handler"));

  auto config = attack_machine(policy);
  if (commit_delay >= 0) config.commit_delay = commit_delay;
  sim::Simulator sim(config, std::move(program));
  map_attack_regions(sim);
  sim.map_region(Layout::kSecretKernel, kPageSize, memory::PagePerm::kKernel);
  sim.poke(Layout::kSecretKernel, static_cast<std::uint64_t>(secret));
  // Kernel data the kernel itself recently touched: cached, translation
  // present — the conditions under which Meltdown reads reliably.
  warm_secret(sim, Layout::kSecretKernel, /*kernel_page=*/true);

  const auto result = sim.run();
  const auto rx = read_receiver(sim);

  AttackOutcome out;
  out.name = "meltdown";
  out.policy = policy;
  out.secret = secret;
  out.recovered = rx.best_candidate;
  out.leaked = result.stop == cpu::StopReason::kHalted &&
               rx.best_candidate == secret && rx.margin > 50;
  std::ostringstream oss;
  oss << "hot=" << rx.best_candidate << " lat=" << rx.best_latency
      << " margin=" << rx.margin << " faults=" << result.faults;
  out.detail = oss.str();
  return out;
}

}  // namespace safespec::attacks
