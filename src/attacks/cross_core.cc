// Cross-core attack variants: two cores sharing the L2/L3.
//
// The single-core PoCs put attacker and victim in one program; here the
// roles split across cores. The shared levels are tag-only and the
// address spaces are identity-mapped, so equal addresses on both cores
// alias the same shared line — the classic shared-library flush+reload
// setting. Private L1s stay coherent through flush_line (global) and
// inclusive back-invalidation, which is exactly the remote-eviction
// channel run_cross_core_evict exercises.
//
// Synchronisation: the round-robin interleaving steps every live core
// once per global cycle, so both cores' cycle counters advance in
// lockstep and rdcycle spin barriers give a deterministic phase order:
//   t≈0      victim trains its branch (and, for the evict variant, the
//            harness warms the secret)
//   kSpyAt   spy flushes / primes the shared levels
//   kStrike  victim strikes with the out-of-bounds offset
//   kRxAt    spy times its probe reloads
#include <sstream>

#include "attacks/attacks.h"
#include "predictor/branch_predictor.h"
#include "sim/machine.h"

namespace safespec::attacks {

using isa::AluOp;
using isa::CondOp;
using isa::ProgramBuilder;

namespace {

/// Bimodal predictor for deterministic in-program mistraining (same
/// rationale as the single-core PoCs).
cpu::CoreConfig attack_config(const std::string& policy) {
  auto config = attack_machine(policy);
  config.predictor.direction.kind = predictor::DirectionKind::kBimodal;
  return config;
}

// Phase barriers (cycles). Training and each spy phase finish in a few
// thousand cycles, so the 30k spacing leaves generous slack.
constexpr std::int64_t kSpyAt = 30'000;    ///< spy flush / prime phase
constexpr std::int64_t kStrikeAt = 60'000; ///< victim's malicious call
constexpr std::int64_t kRxAt = 90'000;     ///< spy receiver phase

// Victim-program registers (the spy program reuses the same numbers —
// different core, different register file).
constexpr RegIndex kRegOffset = 1;  ///< victim call argument
constexpr RegIndex kRegBoundP = 2;
constexpr RegIndex kRegV1 = 3;
constexpr RegIndex kRegV2 = 4;
constexpr RegIndex kRegV3 = 5;
constexpr RegIndex kRegV4 = 6;
constexpr RegIndex kRegTrainC = 7;
constexpr RegIndex kRegIter = 10;   ///< storm iteration counter

/// Spin until the core-local cycle counter reaches `cycle`.
void emit_wait_until(ProgramBuilder& b, const std::string& label,
                     std::int64_t cycle) {
  b.label(label);
  b.rdcycle(kRegT1);
  b.movi(kRegT2, cycle);
  b.branch(CondOp::kLt, kRegT1, kRegT2, label);
  b.fence();
}

bool clearly_leaked(const ReceiverReading& rx, int secret) {
  return rx.best_candidate == secret && rx.margin > 50;
}

std::string describe(const ReceiverReading& rx) {
  std::ostringstream oss;
  oss << "hot=" << rx.best_candidate << " lat=" << rx.best_latency
      << " margin=" << rx.margin;
  return oss.str();
}

/// The Spectre-v1 victim function: bounds check, secret read, probe
/// touch. Identical gadget to the single-core PoC; only the attacker
/// moved to another core.
void emit_victim_fn(ProgramBuilder& b) {
  b.label("victim");
  b.movi(kRegBoundP, static_cast<std::int64_t>(Layout::kBound));
  b.load(kRegV1, kRegBoundP, 0);
  b.branch(CondOp::kGeu, kRegOffset, kRegV1, "skip");
  b.alui(AluOp::kShl, kRegV2, kRegOffset, 3);
  b.movi(kRegV3, static_cast<std::int64_t>(Layout::kArray1));
  b.alu(AluOp::kAdd, kRegV2, kRegV2, kRegV3);
  b.load(kRegV2, kRegV2, 0);
  b.alui(AluOp::kShl, kRegV2, kRegV2, 8);
  b.load(kRegV4, kRegV2, static_cast<std::int64_t>(Layout::kProbe));
  b.label("skip");
  b.ret();
}

/// Victim main: train in-bounds, wait for the strike barrier, make the
/// malicious call. `rewarm_secret` re-touches the secret architecturally
/// right before striking (the evict variant's spy collaterally evicts it
/// from the shared set, and a victim that recently used its own datum is
/// the same assumption warm_secret models).
isa::Program build_victim(int /*secret*/, bool rewarm_secret) {
  ProgramBuilder b(Layout::kText);
  b.movi(kRegTrainC, 0);
  b.label("train_loop");
  b.alui(AluOp::kAnd, kRegOffset, kRegTrainC, 0x7);  // offsets 0..7, in bounds
  b.call("victim");
  b.alui(AluOp::kAdd, kRegTrainC, kRegTrainC, 1);
  b.movi(kRegV4, 24);
  b.branch(CondOp::kLt, kRegTrainC, kRegV4, "train_loop");

  emit_wait_until(b, "v_strike_wait", kStrikeAt);
  if (rewarm_secret) {
    b.movi(kRegV3, static_cast<std::int64_t>(Layout::kSecretUser));
    b.load(kRegV4, kRegV3, 0);
    b.fence();
  }
  const std::int64_t malicious =
      static_cast<std::int64_t>((Layout::kSecretUser - Layout::kArray1) / 8);
  b.movi(kRegOffset, malicious);
  b.call("victim");
  b.fence();
  b.halt();

  emit_victim_fn(b);
  auto program = b.build();
  program.set_entry(Layout::kText);
  return program;
}

void plant_secret(sim::Simulator& sim, int secret) {
  sim.poke(Layout::kBound, 16);  // array1_size
  for (int i = 0; i < 16; ++i) {
    sim.poke(Layout::kArray1 + 8ull * i, static_cast<std::uint64_t>(i % 7));
  }
  sim.poke(Layout::kSecretUser, static_cast<std::uint64_t>(secret));
  warm_secret(sim, Layout::kSecretUser, /*kernel_page=*/false);
}

AttackOutcome finish(const char* name, const std::string& policy, int secret,
                     sim::Simulator& sim, const sim::SimResult& result) {
  const auto rx = read_receiver(sim, /*core=*/1);
  AttackOutcome out;
  out.name = name;
  out.policy = policy;
  out.secret = secret;
  out.recovered = rx.best_candidate;
  out.leaked = result.stop == cpu::StopReason::kHalted &&
               sim.core(1).halted() && clearly_leaked(rx, secret);
  out.cross_core_evictions = sim.shared_levels().cross_core_evictions();
  out.sharp_alarms = result.sharp_alarms;
  out.sharp_detections = result.sharp_detections;
  std::ostringstream oss;
  oss << describe(rx) << " xevict=" << out.cross_core_evictions
      << " alarms=" << out.sharp_alarms;
  out.detail = oss.str();
  return out;
}

}  // namespace

AttackOutcome run_cross_core_flush_reload(const std::string& policy,
                                          int secret) {
  // Spy (core 1) performs the whole Flush+Reload cycle remotely: flush
  // the probe lines and the bounds word (flush_line is coherence-global,
  // so the victim's private copies vanish too), then time the reloads
  // after the victim's transient transmit.
  ProgramBuilder s(Layout::kText);
  emit_wait_until(s, "s_flush_wait", kSpyAt);
  emit_probe_flush(s, "xc");
  s.movi(kRegV1, static_cast<std::int64_t>(Layout::kBound));
  s.flush(kRegV1, 0);  // widen the victim's window from the other core
  s.fence();
  emit_wait_until(s, "s_rx_wait", kRxAt);
  emit_receiver(s, "xc");
  s.halt();
  auto spy = s.build();
  spy.set_entry(Layout::kText);

  std::vector<isa::Program> programs;
  programs.push_back(build_victim(secret, /*rewarm_secret=*/false));
  programs.push_back(std::move(spy));

  sim::Simulator sim(attack_config(policy), std::move(programs));
  map_attack_regions(sim);
  plant_secret(sim, secret);

  const auto result = sim.run();
  return finish("cross-core-flush-reload", policy, secret, sim, result);
}

AttackOutcome run_cross_core_evict(const std::string& policy, int secret) {
  // The spy flushes nothing the victim owns. It primes the L3 set of the
  // victim's bounds word with committed fills of conflicting lines;
  // inclusive back-invalidation then removes the bound from the victim's
  // private L1/L2, so the bounds check is slow and the window opens.
  const auto config = attack_config(policy);
  const auto& l3 = config.hierarchy.l3;
  const std::int64_t set_stride =
      static_cast<std::int64_t>(l3.num_sets()) * l3.line_bytes;
  const int conflicts = l3.ways + 8;  // overfill the set with margin
  constexpr Addr kEvictBase = 0x8000000;  // clear of every Layout region
  static_assert(kEvictBase % (2048 * 64) == 0,
                "eviction lines must land in kBound's L3 set (set 0)");

  ProgramBuilder s(Layout::kText);
  emit_wait_until(s, "e_prime_wait", kSpyAt);
  emit_probe_flush(s, "xe");  // clear training residue from the shared levels
  s.movi(kRegV1, static_cast<std::int64_t>(kEvictBase));
  s.movi(kRegV2, 0);
  s.label("prime");
  s.load(kRegV3, kRegV1, 0);
  s.alui(AluOp::kAdd, kRegV1, kRegV1, set_stride);
  s.alui(AluOp::kAdd, kRegV2, kRegV2, 1);
  s.movi(kRegV4, conflicts);
  s.branch(CondOp::kLt, kRegV2, kRegV4, "prime");
  s.fence();
  emit_wait_until(s, "e_rx_wait", kRxAt);
  emit_receiver(s, "xe");
  s.halt();
  auto spy = s.build();
  spy.set_entry(Layout::kText);

  std::vector<isa::Program> programs;
  // The priming also evicts the warmed secret (every Layout constant is
  // 1MiB-aligned, so they all sit in L3 set 0); the victim re-warms it
  // architecturally at the strike barrier.
  programs.push_back(build_victim(secret, /*rewarm_secret=*/true));
  programs.push_back(std::move(spy));

  sim::Simulator sim(attack_config(policy), std::move(programs));
  map_attack_regions(sim);
  for (int k = 0; k < conflicts; ++k) {
    sim.map_region(kEvictBase + static_cast<Addr>(k) *
                                    static_cast<Addr>(set_stride),
                   static_cast<std::uint64_t>(l3.line_bytes));
  }
  plant_secret(sim, secret);

  const auto result = sim.run();
  return finish("cross-core-evict", policy, secret, sim, result);
}

AttackOutcome run_cross_core_prime_detect(const std::string& policy) {
  // Shrink the shared levels so a short sweep fills every set: the spy
  // then has to face sets that are *completely* victim-owned, which is
  // the situation SHARP's forced-eviction alarm exists for. The detector
  // threshold scales down with the hierarchy (the exemplar's 2,000
  // alarms/epoch matches a full-size cache being swept set by set).
  auto config = attack_config(policy);
  config.hierarchy.l2.size_bytes = 32 * 1024;  // 128 sets x 4 ways
  config.hierarchy.l3.size_bytes = 64 * 1024;  // 64 sets x 16 ways
  config.sharp_alarm_threshold = 50;

  const std::int64_t sweep_bytes = 64 * 1024;  // one full L3 of lines
  const std::int64_t lines = sweep_bytes / config.hierarchy.l3.line_bytes;
  constexpr Addr kVictimSweep = 0x9000000;
  constexpr Addr kSpySweep = 0x8000000;

  const auto emit_sweep = [&](ProgramBuilder& b, const std::string& tag,
                              Addr base) {
    b.movi(kRegV1, static_cast<std::int64_t>(base));
    b.movi(kRegV2, 0);
    b.label(tag);
    b.load(kRegV3, kRegV1, 0);
    b.alui(AluOp::kAdd, kRegV1, kRegV1, 64);
    b.alui(AluOp::kAdd, kRegV2, kRegV2, 1);
    b.movi(kRegV4, lines);
    b.branch(CondOp::kLt, kRegV2, kRegV4, tag);
    b.fence();
  };

  ProgramBuilder v(Layout::kText);
  emit_sweep(v, "v_sweep", kVictimSweep);
  v.halt();
  auto victim = v.build();
  victim.set_entry(Layout::kText);

  ProgramBuilder s(Layout::kText);
  emit_wait_until(s, "p_spy_wait", kSpyAt);
  emit_sweep(s, "p_sweep", kSpySweep);
  s.halt();
  auto spy = s.build();
  spy.set_entry(Layout::kText);

  std::vector<isa::Program> programs;
  programs.push_back(std::move(victim));
  programs.push_back(std::move(spy));
  sim::Simulator sim(config, std::move(programs));
  map_attack_regions(sim);
  sim.map_region(kVictimSweep, static_cast<std::uint64_t>(sweep_bytes));
  sim.map_region(kSpySweep, static_cast<std::uint64_t>(sweep_bytes));

  const auto result = sim.run();
  AttackOutcome out;
  out.name = "cross-core-prime-detect";
  out.policy = policy;
  out.leaked = false;  // no secret: the signal here is the telemetry
  out.cross_core_evictions = sim.shared_levels().cross_core_evictions();
  out.sharp_alarms = result.sharp_alarms;
  out.sharp_detections = result.sharp_detections;
  std::ostringstream oss;
  oss << "xevict=" << out.cross_core_evictions
      << " alarms=" << out.sharp_alarms
      << " detections=" << out.sharp_detections;
  out.detail = oss.str();
  return out;
}

ShadowContentionOutcome run_cross_core_shadow_contention(
    const std::string& policy) {
  // Core 0 runs a speculation storm: a bounds branch mistrained 7-of-8,
  // whose wrong path issues a chain of 8 independent probe-line loads.
  // Core 1 halts immediately. Shadow structures are per-core, so the
  // storm's speculative fills must never appear in the idle core's
  // shadow d-cache.
  ProgramBuilder b(Layout::kText);
  b.movi(kRegIter, 0);
  b.label("storm");
  b.alui(AluOp::kAnd, kRegOffset, kRegIter, 0x7);
  b.movi(kRegV1, 7);
  b.branch(CondOp::kLt, kRegOffset, kRegV1, "inb");
  b.movi(kRegOffset, 0x100000);  // out of bounds: wrong path this time
  b.label("inb");
  b.movi(kRegBoundP, static_cast<std::int64_t>(Layout::kBound));
  b.flush(kRegBoundP, 0);  // keep the window open every iteration
  b.fence();
  b.call("gadget");
  b.alui(AluOp::kAdd, kRegIter, kRegIter, 1);
  b.movi(kRegV1, 64);
  b.branch(CondOp::kLt, kRegIter, kRegV1, "storm");
  b.halt();

  b.label("gadget");
  b.movi(kRegBoundP, static_cast<std::int64_t>(Layout::kBound));
  b.load(kRegV1, kRegBoundP, 0);
  b.branch(CondOp::kGeu, kRegOffset, kRegV1, "g_skip");
  // 8 independent loads from lines that vary per iteration (512 bytes =
  // 8 lines per step, wrapped into the 64KiB probe region).
  b.alui(AluOp::kShl, kRegV2, kRegIter, 9);
  b.alui(AluOp::kAnd, kRegV2, kRegV2, 0xFFFF);
  b.movi(kRegV3, static_cast<std::int64_t>(Layout::kProbe));
  b.alu(AluOp::kAdd, kRegV2, kRegV2, kRegV3);
  for (int line = 0; line < 8; ++line) {
    b.load(kRegV4, kRegV2, 64 * line);
  }
  b.label("g_skip");
  b.ret();

  auto storm = b.build();
  storm.set_entry(Layout::kText);

  ProgramBuilder idle_b(Layout::kText);
  idle_b.halt();
  auto idle = idle_b.build();
  idle.set_entry(Layout::kText);

  // The idle core is not shadow-silent — its first fetch page-walks
  // through the d-side, and those walk lines are shadowed like any other
  // speculative fill. Privacy therefore means its shadow *lifecycle* is
  // unchanged by the neighbour, not that it is empty: run the pair once
  // with the storm and once with both cores idle, and compare.
  struct IdleLifecycle {
    std::uint64_t inserts, hits, committed, squashed;
    bool operator==(const IdleLifecycle& o) const {
      return inserts == o.inserts && hits == o.hits &&
             committed == o.committed && squashed == o.squashed;
    }
  };
  const auto idle_lifecycle = [](sim::Simulator& sim) {
    const auto& st = sim.core(1).shadow_dcache().stats();
    return IdleLifecycle{st.inserts.value(), st.hits.value(),
                         st.committed.value(), st.squashed.value()};
  };

  std::vector<isa::Program> storm_pair;
  storm_pair.push_back(std::move(storm));
  storm_pair.push_back(idle);
  sim::Simulator sim(attack_config(policy), std::move(storm_pair));
  map_attack_regions(sim);
  sim.poke(Layout::kBound, 16);
  sim.run();

  std::vector<isa::Program> control_pair;
  control_pair.push_back(idle);
  control_pair.push_back(std::move(idle));
  sim::Simulator control(attack_config(policy), std::move(control_pair));
  map_attack_regions(control);
  control.poke(Layout::kBound, 16);
  control.run();

  const auto& storm_stats = sim.core(0).shadow_dcache().stats();
  const auto with_storm = idle_lifecycle(sim);
  const auto solo = idle_lifecycle(control);
  ShadowContentionOutcome out;
  out.policy = policy;
  out.storm_shadow_fills = storm_stats.inserts.value();
  out.storm_occupancy_p9999 = storm_stats.occupancy.percentile(0.9999);
  out.idle_shadow_fills = with_storm.inserts;
  out.idle_shadow_fills_solo = solo.inserts;
  out.shadows_private = with_storm == solo;
  std::ostringstream oss;
  oss << "storm_fills=" << out.storm_shadow_fills
      << " storm_p9999=" << out.storm_occupancy_p9999
      << " idle_fills=" << out.idle_shadow_fills << "/"
      << out.idle_shadow_fills_solo
      << " xevict=" << sim.shared_levels().cross_core_evictions();
  out.detail = oss.str();
  return out;
}

std::vector<AttackOutcome> run_cross_core_attacks(const std::string& policy) {
  std::vector<AttackOutcome> out;
  out.push_back(run_cross_core_flush_reload(policy, 0xAD));
  out.push_back(run_cross_core_evict(policy, 0x5C));
  out.push_back(run_cross_core_prime_detect(policy));
  return out;
}

}  // namespace safespec::attacks
