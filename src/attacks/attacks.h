// Proof-of-concept speculation attacks (§II, §IV-A, §V of the paper),
// each runnable under any protection policy. Every PoC plants a secret,
// runs the full attack end-to-end in the simulator, and reports what the
// attacker recovered — the Table III / Table IV benches simply tabulate
// `leaked` across policies.
#pragma once

#include "attacks/attack_common.h"
#include "safespec/shadow_structures.h"

namespace safespec::attacks {

/// Spectre variant 1: bounds-check bypass (Fig. in §II-B2). The victim's
/// branch is trained in-program with in-bounds offsets; the attack call
/// flushes array1_size to widen the window and supplies an out-of-bounds
/// offset reaching the secret. Flush+Reload receiver.
AttackOutcome run_spectre_v1(const std::string& policy, int secret);

/// Spectre variant 2: indirect branch target poisoning (§II-B3). The
/// attacker installs the gadget address in the BTB (threat model P3),
/// flushes the victim's function pointer, and triggers one indirect call.
AttackOutcome run_spectre_v2(const std::string& policy, int secret);

/// Meltdown (§II-B4): a user-mode load of a kernel address executes
/// speculatively (P1: the permission check bites only at commit); the
/// dependent probe load encodes the value; the fault handler runs the
/// receiver.
AttackOutcome run_meltdown(const std::string& policy, int secret);

/// Meltdown with an explicit writeback-to-retire latency. The attack is a
/// race: the dependent transmit load must issue inside this window, so
/// sweeping it shows the structural condition for Meltdown on the
/// *baseline* (ablation 3 in bench/ablation_design).
AttackOutcome run_meltdown_with_delay(const std::string& policy, int secret,
                                      int commit_delay);

/// The paper's new I-cache variant (Fig 5, simplified to the micro-ISA):
/// a speculative data-dependent indirect jump fetches one of 256 target
/// lines; the receiver is an L1I residency oracle.
AttackOutcome run_icache_attack(const std::string& policy, int secret);

/// iTLB variant: the speculative jump targets one of 256 *pages*; the
/// receiver is an iTLB residency oracle.
AttackOutcome run_itlb_attack(const std::string& policy, int secret);

/// dTLB variant: the speculative gadget loads from one of 256 pages; the
/// receiver is a dTLB residency oracle.
AttackOutcome run_dtlb_attack(const std::string& policy, int secret);

/// Transient Speculation Attack (Fig 10): a wrong-path Trojan creates
/// contention in the shadow d-cache that a committed-path Spy observes
/// *within* the speculation window. Parameterised by the shadow sizing
/// and full policy so the bench can show the channel opening when the
/// structure is undersized and closing under worst-case sizing (§V).
struct TsaConfig {
  std::string policy = "WFC";  ///< protection-policy registry name
  int shadow_entries = 8;  ///< undersized by default; 72 = secure sizing
  shadow::FullPolicy full_policy = shadow::FullPolicy::kDrop;
};

struct TsaOutcome {
  int secret_bit = 0;
  int recovered_bit = -1;
  bool leaked = false;
  Cycle probe_latency_bit0 = 0;  ///< timed reload when Trojan idle
  Cycle probe_latency_bit1 = 0;  ///< timed reload when Trojan fills
  std::string detail;
};

TsaOutcome run_tsa_attack(const TsaConfig& config);

/// Runs every table-III/IV attack under `policy` (secrets fixed by seed).
std::vector<AttackOutcome> run_all_attacks(const std::string& policy);

}  // namespace safespec::attacks
