// Proof-of-concept speculation attacks (§II, §IV-A, §V of the paper),
// each runnable under any protection policy. Every PoC plants a secret,
// runs the full attack end-to-end in the simulator, and reports what the
// attacker recovered — the Table III / Table IV benches simply tabulate
// `leaked` across policies.
#pragma once

#include "attacks/attack_common.h"
#include "safespec/shadow_structures.h"

namespace safespec::attacks {

/// Spectre variant 1: bounds-check bypass (Fig. in §II-B2). The victim's
/// branch is trained in-program with in-bounds offsets; the attack call
/// flushes array1_size to widen the window and supplies an out-of-bounds
/// offset reaching the secret. Flush+Reload receiver.
AttackOutcome run_spectre_v1(const std::string& policy, int secret);

/// Spectre variant 2: indirect branch target poisoning (§II-B3). The
/// attacker installs the gadget address in the BTB (threat model P3),
/// flushes the victim's function pointer, and triggers one indirect call.
AttackOutcome run_spectre_v2(const std::string& policy, int secret);

/// Meltdown (§II-B4): a user-mode load of a kernel address executes
/// speculatively (P1: the permission check bites only at commit); the
/// dependent probe load encodes the value; the fault handler runs the
/// receiver.
AttackOutcome run_meltdown(const std::string& policy, int secret);

/// Meltdown with an explicit writeback-to-retire latency. The attack is a
/// race: the dependent transmit load must issue inside this window, so
/// sweeping it shows the structural condition for Meltdown on the
/// *baseline* (ablation 3 in bench/ablation_design).
AttackOutcome run_meltdown_with_delay(const std::string& policy, int secret,
                                      int commit_delay);

/// The paper's new I-cache variant (Fig 5, simplified to the micro-ISA):
/// a speculative data-dependent indirect jump fetches one of 256 target
/// lines; the receiver is an L1I residency oracle.
AttackOutcome run_icache_attack(const std::string& policy, int secret);

/// iTLB variant: the speculative jump targets one of 256 *pages*; the
/// receiver is an iTLB residency oracle.
AttackOutcome run_itlb_attack(const std::string& policy, int secret);

/// dTLB variant: the speculative gadget loads from one of 256 pages; the
/// receiver is a dTLB residency oracle.
AttackOutcome run_dtlb_attack(const std::string& policy, int secret);

/// Transient Speculation Attack (Fig 10): a wrong-path Trojan creates
/// contention in the shadow d-cache that a committed-path Spy observes
/// *within* the speculation window. Parameterised by the shadow sizing
/// and full policy so the bench can show the channel opening when the
/// structure is undersized and closing under worst-case sizing (§V).
struct TsaConfig {
  std::string policy = "WFC";  ///< protection-policy registry name
  int shadow_entries = 8;  ///< undersized by default; 72 = secure sizing
  shadow::FullPolicy full_policy = shadow::FullPolicy::kDrop;
};

struct TsaOutcome {
  int secret_bit = 0;
  int recovered_bit = -1;
  bool leaked = false;
  Cycle probe_latency_bit0 = 0;  ///< timed reload when Trojan idle
  Cycle probe_latency_bit1 = 0;  ///< timed reload when Trojan fills
  std::string detail;
};

TsaOutcome run_tsa_attack(const TsaConfig& config);

// ---- cross-core variants (two cores sharing the L2/L3) ---------------------
//
// The multi-core machine shares the L2/L3 (tag-only, identity-mapped, so
// equal addresses on two cores alias the same shared line — the classic
// shared-library flush+reload setting) while L1s, TLBs and SafeSpec
// shadow structures stay per-core. The PoCs below split the single-core
// Spectre harness across cores: the victim speculates on core 0, the spy
// observes from core 1, synchronised with rdcycle spin barriers (the
// round-robin schedule keeps both cores' cycle counters in lockstep).

/// Cross-core Flush+Reload: the spy (core 1) flushes the shared probe
/// lines, the victim (core 0) is mistrained in-program and strikes with
/// an out-of-bounds offset, and the spy times its reloads. On the
/// baseline the victim's transient probe touch fills the shared L2/L3,
/// so the spy sees an L2-vs-memory gap; under WFC/WFB the fill stays in
/// the victim's private shadow and is annulled on squash.
AttackOutcome run_cross_core_flush_reload(const std::string& policy,
                                          int secret);

/// Cross-core eviction mistraining: the spy never flushes anything the
/// victim owns — instead it *primes* the L3 set of the victim's bounds
/// word with conflicting committed fills. Inclusive back-invalidation
/// then removes the bound from the victim's private L1/L2 too, so the
/// victim's own bounds check is slow and the speculation window opens
/// remotely. Transmission and reception as in the flush+reload variant.
/// The outcome's detail records the shared-level cross-owner eviction
/// count, which is non-zero under every policy (the priming itself is
/// architectural).
AttackOutcome run_cross_core_evict(const std::string& policy, int secret);

/// Cross-core prime sweep against the SHARP detector: the victim
/// (core 0) first fills every set of a deliberately shrunken shared
/// L2/L3 with its own lines, then the spy (core 1) sweeps an aliased
/// region trying to take the whole hierarchy over — the textbook
/// Prime+Probe preparation. There is no secret; the outcome reports the
/// telemetry: under "SHARP" every spy fill into a fully victim-owned
/// set is a forced cross-owner eviction (one alarm per set, enough to
/// cross the scaled-down detector threshold), under "detect-only" every
/// cross-owner eviction alarms, and under the shadow policies the sweep
/// proceeds silently (alarms = 0) because nothing watches replacement.
AttackOutcome run_cross_core_prime_detect(const std::string& policy);

/// Shadow-structure contention probe: core 0 runs a speculation storm
/// (mistrained branches with wrong-path load chains) while core 1 halts
/// almost immediately (its only shadow activity is the page-table walk
/// of its first fetch). A control run replaces the storm with the same
/// idle program. Shadow structures are per-core, so the idle core's
/// shadow d-cache lifecycle (inserts/hits/committed/squashed) must be
/// identical whether its neighbour storms or idles — `shadows_private`
/// asserts exactly that, while the storm core's own occupancy shows the
/// speculation was real.
struct ShadowContentionOutcome {
  std::string policy;
  std::uint64_t storm_shadow_fills = 0;   ///< storm core shadow d-cache fills
  std::uint64_t storm_occupancy_p9999 = 0;
  std::uint64_t idle_shadow_fills = 0;       ///< idle core, storm running
  std::uint64_t idle_shadow_fills_solo = 0;  ///< idle core, control run
  bool shadows_private = false;  ///< idle lifecycle identical in both runs
  std::string detail;
};

ShadowContentionOutcome run_cross_core_shadow_contention(
    const std::string& policy);

/// Runs the cross-core PoCs under `policy`: flush+reload and eviction
/// mistraining (secrets fixed), then the prime/detect sweep.
std::vector<AttackOutcome> run_cross_core_attacks(const std::string& policy);

/// Runs every table-III/IV attack under `policy` (secrets fixed by seed).
std::vector<AttackOutcome> run_all_attacks(const std::string& policy);

}  // namespace safespec::attacks
