// Pluggable protection policies (§III, §IV-B).
//
// The paper evaluates a *family* of protection designs — insecure
// baseline, wait-for-branch and wait-for-commit, crossed with shadow
// sizing and full-table handling. Rather than hard-coding that family as
// an enum switched inside cpu::Core, each member is a ProtectionPolicy:
// an object answering the four decision points the core consults —
//
//   * may speculative fills go straight into the primary structures?
//     (shadows_speculation: the baseline answers no-shadowing)
//   * when does an instruction's shadow state become promotable?
//     (promote_at_branch_resolution: WFB promotes once no older branch
//     is unresolved; WFC only at the instruction's own commit)
//   * what happens to shadow state on squash?
//     (annul_on_squash: every SafeSpec policy annuls in place, Fig 3)
//   * what happens when a shadow table fills up?
//     (full_policy_override: §V — drop the update or stall the
//     requester; nullopt keeps the per-structure configuration)
//
// A fifth decision point, cache_protection(), lets a policy defend at
// the replacement level instead of shadowing speculation — the SHARP
// family ("SHARP" protects + alarms, "detect-only" only alarms) lives
// there; see docs/mitigations.md for the family comparison.
//
// Policies are stateless singletons registered under a string key, so a
// new variant is selectable from a config file or --set flag without
// recompiling anything that builds machines. The registry ships the
// three paper policies plus "WFB-stall" (WFB whose shadows stall on
// full — the §V closure of the TSA channel applied to WFB sizing
// studies), "SHARP" and "detect-only".
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "memory/replacement.h"
#include "safespec/shadow_structures.h"

namespace safespec::memory {
struct HierarchyConfig;
}  // namespace safespec::memory

namespace safespec::policy {

/// One member of the protection-design family. Implementations are
/// stateless and shared by every core built with the policy's name.
class ProtectionPolicy {
 public:
  virtual ~ProtectionPolicy() = default;

  /// Registry key ("baseline", "WFB", "WFC", "WFB-stall", ...).
  virtual const char* name() const = 0;
  virtual const char* description() const = 0;

  /// False for the insecure baseline: speculative fills go straight
  /// into the primary caches/TLBs and no shadow state exists.
  virtual bool shadows_speculation() const = 0;

  /// True for wait-for-branch: shadow state is promotable as soon as no
  /// older branch is unresolved. False for wait-for-commit: promotion
  /// happens only when the producing instruction commits.
  virtual bool promote_at_branch_resolution() const = 0;

  /// Squash handling: true (every shipped policy) annuls shadow state in
  /// place; false would promote it anyway — the insecure strawman a
  /// sizing ablation can use to isolate the cost of annulment.
  virtual bool annul_on_squash() const { return true; }

  /// Full-table handling this policy imposes on every shadow structure
  /// (§V); nullopt keeps the per-structure configuration.
  virtual std::optional<shadow::FullPolicy> full_policy_override() const {
    return std::nullopt;
  }

  /// Cache-level protection applied at replacement victim selection: the
  /// SHARP family defends here instead of (not in addition to) shadowing
  /// speculation. kNone for the baseline and every shadow-based policy.
  virtual memory::CacheProtection cache_protection() const {
    return memory::CacheProtection::kNone;
  }

  /// Applies full_policy_override() to one shadow-structure config.
  void tune(shadow::ShadowConfig& config) const {
    if (const auto fp = full_policy_override()) config.full_policy = *fp;
  }

  /// Applies cache_protection() and the SHARP detector configuration to
  /// every cache level of a hierarchy config (idempotent — both the core
  /// and the shared-level builder run it on the same spec).
  void tune(memory::HierarchyConfig& config, std::uint64_t alarm_threshold,
            std::uint64_t alarm_epoch_ticks) const;

  /// The legacy enum value this policy's promotion semantics correspond
  /// to (attack PoCs and older tests still speak CommitPolicy).
  shadow::CommitPolicy commit_policy() const {
    if (!shadows_speculation()) return shadow::CommitPolicy::kBaseline;
    return promote_at_branch_resolution() ? shadow::CommitPolicy::kWFB
                                          : shadow::CommitPolicy::kWFC;
  }
};

/// Looks up a registered policy. Throws std::out_of_range with a message
/// listing every registered name when `name` is unknown.
const ProtectionPolicy& named_policy(const std::string& name);

bool is_registered_policy(const std::string& name);

/// All registered names, sorted (the three paper policies plus any
/// registered variants).
std::vector<std::string> registered_policy_names();

/// Registers a new policy under policy->name(). Throws
/// std::invalid_argument if the name is already taken.
void register_policy(std::unique_ptr<const ProtectionPolicy> policy);

}  // namespace safespec::policy
