#include "safespec/policy.h"

#include <utility>

#include "common/registry.h"
#include "memory/cache_hierarchy.h"

namespace safespec::policy {

namespace {

class BaselinePolicy final : public ProtectionPolicy {
 public:
  const char* name() const override { return "baseline"; }
  const char* description() const override {
    return "insecure out-of-order baseline: speculative fills go straight "
           "into the primary caches/TLBs";
  }
  bool shadows_speculation() const override { return false; }
  bool promote_at_branch_resolution() const override { return false; }
};

class WfbPolicy final : public ProtectionPolicy {
 public:
  const char* name() const override { return "WFB"; }
  const char* description() const override {
    return "wait-for-branch: shadow state promotes once every older "
           "branch has resolved";
  }
  bool shadows_speculation() const override { return true; }
  bool promote_at_branch_resolution() const override { return true; }
};

class WfcPolicy final : public ProtectionPolicy {
 public:
  const char* name() const override { return "WFC"; }
  const char* description() const override {
    return "wait-for-commit: shadow state promotes only when its "
           "producing instruction commits";
  }
  bool shadows_speculation() const override { return true; }
  bool promote_at_branch_resolution() const override { return false; }
};

class WfbStallPolicy final : public ProtectionPolicy {
 public:
  const char* name() const override { return "WFB-stall"; }
  const char* description() const override {
    return "wait-for-branch with stall-on-full shadows: undersized "
           "tables stall the requester instead of dropping (closes the "
           "TSA drop channel, §V)";
  }
  bool shadows_speculation() const override { return true; }
  bool promote_at_branch_resolution() const override { return true; }
  std::optional<shadow::FullPolicy> full_policy_override() const override {
    return shadow::FullPolicy::kStall;
  }
};

class SharpPolicy final : public ProtectionPolicy {
 public:
  const char* name() const override { return "SHARP"; }
  const char* description() const override {
    return "SHARP-style protected replacement: victims prefer "
           "requester-owned ways, forced cross-owner evictions raise "
           "alarms and feed a threshold/epoch detector (no shadow "
           "structures; speculative fills are unshadowed)";
  }
  bool shadows_speculation() const override { return false; }
  bool promote_at_branch_resolution() const override { return false; }
  memory::CacheProtection cache_protection() const override {
    return memory::CacheProtection::kSharp;
  }
};

class DetectOnlyPolicy final : public ProtectionPolicy {
 public:
  const char* name() const override { return "detect-only"; }
  const char* description() const override {
    return "baseline timing plus telemetry: victim selection is "
           "unchanged, but every cross-owner eviction raises an alarm "
           "and feeds the threshold/epoch detector";
  }
  bool shadows_speculation() const override { return false; }
  bool promote_at_branch_resolution() const override { return false; }
  memory::CacheProtection cache_protection() const override {
    return memory::CacheProtection::kDetectOnly;
  }
};

NamedRegistry<std::unique_ptr<const ProtectionPolicy>>& registry() {
  static auto* r = [] {
    auto* reg = new NamedRegistry<std::unique_ptr<const ProtectionPolicy>>(
        "protection policy");
    auto add = [&](std::unique_ptr<const ProtectionPolicy> p) {
      const std::string key = p->name();
      reg->add(key, std::move(p));
    };
    add(std::make_unique<BaselinePolicy>());
    add(std::make_unique<WfbPolicy>());
    add(std::make_unique<WfcPolicy>());
    add(std::make_unique<WfbStallPolicy>());
    add(std::make_unique<SharpPolicy>());
    add(std::make_unique<DetectOnlyPolicy>());
    return reg;
  }();
  return *r;
}

}  // namespace

void ProtectionPolicy::tune(memory::HierarchyConfig& config,
                            std::uint64_t alarm_threshold,
                            std::uint64_t alarm_epoch_ticks) const {
  const memory::CacheProtection prot = cache_protection();
  for (memory::CacheConfig* level :
       {&config.l1i, &config.l1d, &config.l2, &config.l3}) {
    level->protection = prot;
    level->alarm_threshold = alarm_threshold;
    level->alarm_epoch_ticks = alarm_epoch_ticks;
  }
}

const ProtectionPolicy& named_policy(const std::string& name) {
  return *registry().at(name);
}

bool is_registered_policy(const std::string& name) {
  return registry().contains(name);
}

std::vector<std::string> registered_policy_names() {
  return registry().names();
}

void register_policy(std::unique_ptr<const ProtectionPolicy> policy) {
  const std::string key = policy->name();
  registry().add(key, std::move(policy));
}

}  // namespace safespec::policy
