#include "safespec/shadow_structures.h"

namespace safespec::shadow {

const char* to_string(CommitPolicy policy) {
  switch (policy) {
    case CommitPolicy::kBaseline:
      return "baseline";
    case CommitPolicy::kWFB:
      return "WFB";
    case CommitPolicy::kWFC:
      return "WFC";
  }
  return "?";
}

const char* to_string(FullPolicy policy) {
  switch (policy) {
    case FullPolicy::kDrop:
      return "drop";
    case FullPolicy::kStall:
      return "stall";
  }
  return "?";
}

}  // namespace safespec::shadow
