// SafeSpec shadow structures (§III, §IV).
//
// A shadow structure is a fully-associative, associatively-filled lookup
// table that holds the side effects of speculative execution — fetched
// cache lines or TLB translations — until the instruction that produced
// them is safe to commit (policy WFB or WFC). On commit the payload is
// *promoted* into the primary structure; on squash it is *annulled* in
// place. Entries are reference-counted because several in-flight
// instructions can depend on the same speculatively fetched line, and the
// paper's design has LSQ/ROB entries carry pointers into these tables.
//
// Security-relevant sizing (§V): when a shadow structure can fill up, the
// full-handling policy (drop the new entry, or stall the requester)
// becomes a transient covert channel (TSA). The worst-case-sized "Secure"
// configuration (LDQ entries for the d-side, ROB entries for the i-side)
// makes contention impossible; both undersized policies are implemented
// so the TSA PoC can demonstrate the channel and its closure.
#pragma once

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/hash.h"
#include "common/stats.h"
#include "common/types.h"

namespace safespec::shadow {

/// What to do when an insert finds the table full (§V).
enum class FullPolicy : std::uint8_t {
  kDrop,   ///< discard the update (committed state silently loses it)
  kStall,  ///< caller must retry; the requesting instruction stalls
};

/// Commit policy: when is an instruction's shadow state promotable?
enum class CommitPolicy : std::uint8_t {
  kBaseline,  ///< no shadowing at all — classic insecure speculation
  kWFB,       ///< wait-for-branch: all older branches resolved
  kWFC,       ///< wait-for-commit: the instruction itself commits
};

const char* to_string(CommitPolicy policy);
const char* to_string(FullPolicy policy);

struct ShadowConfig {
  std::string name = "shadow";
  int entries = 72;  ///< worst case: LDQ size (d-side) / ROB size (i-side)
  FullPolicy full_policy = FullPolicy::kDrop;
};

/// Aggregated lifecycle statistics for one shadow structure. Fig 16's
/// commit rate is committed / (committed + squashed); Figs 6-9 use the
/// occupancy histogram's 99.99th percentile.
struct ShadowStats {
  Counter inserts;        ///< entries allocated
  Counter hits;           ///< speculative lookups served from shadow
  Counter committed;      ///< entries promoted to the primary structure
  Counter squashed;       ///< entries annulled without promotion
  Counter full_drops;     ///< inserts rejected by kDrop
  Counter full_stalls;    ///< insert attempts rejected by kStall
  Histogram occupancy;    ///< sampled by the core every cycle

  double commit_rate() const {
    const auto done = committed.value() + squashed.value();
    return done == 0 ? 0.0 : static_cast<double>(committed.value()) / done;
  }
};

/// Generic reference-counted shadow table. `Payload` is the datum being
/// shadowed (nothing for cache lines — presence is the datum — or a
/// physical page + permission for TLB entries).
///
/// Internals are built for the simulator's hot path: entries live in a
/// fixed slab, a free list makes allocation O(1), and an open-addressing
/// key->EntryId index (linear probing, backward-shift deletion) makes
/// acquire_existing / contains O(1) amortized instead of an O(entries)
/// scan. The index relies on the callers' access discipline — always try
/// acquire_existing before insert — which keeps live keys unique (the
/// core upholds this; insert asserts it in debug builds).
template <typename Payload>
class ShadowTable {
 public:
  using EntryId = int;
  static constexpr EntryId kNone = -1;

  explicit ShadowTable(const ShadowConfig& config)
      : config_(config),
        entries_(static_cast<std::size_t>(config.entries)),
        slots_(index_capacity(config.entries), kNone),
        mask_(slots_.size() - 1) {
    reset_free_list();
  }

  /// Looks up `key` among live entries; bumps the refcount on hit so the
  /// caller co-owns the entry. Records a shadow hit unless `count_stats`
  /// is false (used when several instructions of one fetch group share a
  /// line, which would otherwise inflate per-access hit statistics).
  EntryId acquire_existing(Addr key, bool count_stats = true) {
    const EntryId id = slots_[find_slot(key)];
    if (id == kNone) return kNone;
    ++entries_[static_cast<std::size_t>(id)].refs;
    if (count_stats) stats_.hits.add();
    return id;
  }

  /// Side-effect-free presence test (tests / attack assertions).
  bool contains(Addr key) const { return slots_[find_slot(key)] != kNone; }

  /// Allocates a new entry for `key` with refcount 1. Returns kNone when
  /// the table is full; the per-policy counter records whether that means
  /// a dropped update (kDrop) or a stalled requester (kStall) — the
  /// *caller* implements the stall by retrying next cycle.
  EntryId insert(Addr key, const Payload& payload) {
    if (!free_.empty()) {
      const EntryId id = free_.back();
      free_.pop_back();
      Entry& e = entries_[static_cast<std::size_t>(id)];
      e.live = true;
      e.key = key;
      e.payload = payload;
      e.refs = 1;
      e.promoted = false;
      const std::size_t slot = find_slot(key);
      assert(slots_[slot] == kNone && "duplicate live key");
      slots_[slot] = id;
      stats_.inserts.add();
      ++live_count_;
      return id;
    }
    if (config_.full_policy == FullPolicy::kDrop) {
      stats_.full_drops.add();
    } else {
      stats_.full_stalls.add();
    }
    return kNone;
  }

  /// True when at least one entry is free (kStall callers check this
  /// before issuing).
  bool has_room() const { return live_count_ < config_.entries; }

  /// Marks the entry as promoted (its payload has been moved to the
  /// primary structure). Idempotent; counted once.
  void mark_promoted(EntryId id) {
    Entry& e = entry(id);
    if (!e.promoted) {
      e.promoted = true;
      stats_.committed.add();
    }
  }

  /// Drops one reference. When the last reference dies the entry is
  /// annulled in place; if it was never promoted that is a squash.
  void release(EntryId id) {
    Entry& e = entry(id);
    --e.refs;
    if (e.refs == 0) {
      if (!e.promoted) stats_.squashed.add();
      e.live = false;
      --live_count_;
      index_erase(e.key);
      free_.push_back(id);
    }
  }

  /// Alias of payload_of() (the historical accessor name).
  const Payload& payload(EntryId id) const { return entry(id).payload; }
  Addr key(EntryId id) const { return entry(id).key; }
  const Payload& payload_of(EntryId id) const { return entry(id).payload; }
  bool is_promoted(EntryId id) const { return entry(id).promoted; }

  int live_count() const { return live_count_; }
  int capacity() const { return config_.entries; }
  /// No live entries: the state every shadow structure must reach after
  /// the final commit/squash drain (a differential-harness invariant).
  bool empty() const { return live_count_ == 0; }

  /// Cycle-granularity occupancy sample (Figs 6-9). Run-length batched:
  /// occupancy rarely changes between consecutive cycles, so most samples
  /// cost one compare-and-increment (see Histogram::record_run).
  void sample_occupancy() {
    stats_.occupancy.record_run(static_cast<std::uint64_t>(live_count_));
  }

  ShadowStats& stats() { return stats_; }
  const ShadowStats& stats() const { return stats_; }
  const ShadowConfig& config() const { return config_; }

  /// Empties the table (between attack trials). Live entries are counted
  /// as squashed.
  void flush_all() {
    for (Entry& e : entries_) {
      if (e.live && !e.promoted) stats_.squashed.add();
      e.live = false;
      e.refs = 0;
    }
    live_count_ = 0;
    std::fill(slots_.begin(), slots_.end(), kNone);
    reset_free_list();
  }

 private:
  struct Entry {
    Addr key = 0;
    Payload payload{};
    int refs = 0;
    bool live = false;
    bool promoted = false;
  };

  /// Power-of-two index size at <= 50% load so probe chains stay short.
  static std::size_t index_capacity(int entries) {
    std::size_t cap = 16;
    while (cap < 2 * static_cast<std::size_t>(entries < 0 ? 0 : entries)) {
      cap *= 2;
    }
    return cap;
  }

  /// Linear probe to `key`'s slot: either the slot holding it or the
  /// first empty slot on its chain (a miss).
  std::size_t find_slot(Addr key) const {
    std::size_t i = mix64(key) & mask_;
    while (slots_[i] != kNone &&
           entries_[static_cast<std::size_t>(slots_[i])].key != key) {
      i = (i + 1) & mask_;
    }
    return i;
  }

  /// Backward-shift deletion: refill the emptied slot from the tail of
  /// its probe chain so later lookups never stop at a false empty.
  void index_erase(Addr key) {
    std::size_t i = find_slot(key);
    assert(slots_[i] != kNone && "erasing a key absent from the index");
    slots_[i] = kNone;
    std::size_t j = i;
    while (true) {
      j = (j + 1) & mask_;
      const EntryId moved = slots_[j];
      if (moved == kNone) break;
      const std::size_t ideal =
          mix64(entries_[static_cast<std::size_t>(moved)].key) & mask_;
      // Move slot j's entry into the hole at i unless its ideal slot
      // lies cyclically within (i, j] — then the hole doesn't break its
      // probe chain.
      const bool keep = (i <= j) ? (ideal > i && ideal <= j)
                                 : (ideal > i || ideal <= j);
      if (!keep) {
        slots_[i] = moved;
        slots_[j] = kNone;
        i = j;
      }
    }
  }

  void reset_free_list() {
    free_.clear();
    free_.reserve(entries_.size());
    for (EntryId id = config_.entries; id-- > 0;) free_.push_back(id);
  }

  Entry& entry(EntryId id) { return entries_[static_cast<std::size_t>(id)]; }
  const Entry& entry(EntryId id) const {
    return entries_[static_cast<std::size_t>(id)];
  }

  ShadowConfig config_;
  std::vector<Entry> entries_;
  std::vector<EntryId> slots_;  ///< open-addressing key->EntryId index
  std::size_t mask_;            ///< slots_.size() - 1 (power of two)
  std::vector<EntryId> free_;   ///< LIFO free list (top = next allocation)
  int live_count_ = 0;
  ShadowStats stats_;
};

/// Cache-line shadow: presence is the payload.
struct LinePayload {};

/// TLB shadow payload: the translation being held speculatively.
struct TranslationPayload {
  Addr ppage = 0;
  bool kernel_only = false;
};

using ShadowCache = ShadowTable<LinePayload>;
using ShadowTlb = ShadowTable<TranslationPayload>;

}  // namespace safespec::shadow
